package faultinject

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	data := []byte("0123456789")
	if err := TornWrite(path, data, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn content %q, want first half", got)
	}
	// frac >= 1 still tears: a "torn" write must never equal the full
	// file, or the fault disappears.
	if err := TornWrite(path, data, 1.5); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if len(got) >= len(data) {
		t.Fatalf("frac>=1 produced a whole file (%d bytes)", len(got))
	}
}

func TestSlowOpener(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.bin")
	if err := os.WriteFile(path, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}
	delays := 0
	open := SlowOpener(
		func(p string) (io.ReadCloser, error) { return os.Open(p) },
		func(p string) bool { return strings.HasSuffix(p, ".bin") },
		func() { delays++ },
	)
	rc, err := open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdef" {
		t.Fatalf("slow read content %q", got)
	}
	if delays == 0 {
		t.Error("delay never invoked on a matching path")
	}

	// Non-matching paths bypass the delay wrapper entirely.
	other := filepath.Join(dir, "fast.txt")
	if err := os.WriteFile(other, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := delays
	rc, err = open(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(rc); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if delays != before {
		t.Error("delay invoked on a non-matching path")
	}
}

// TestServeChaosTearHeal: tearing is deterministic per seed, healing
// restores byte-identical files atomically, and counts accumulate.
func TestServeChaosTearHeal(t *testing.T) {
	mkdir := func() (string, map[string][]byte) {
		dir := t.TempDir()
		good := map[string][]byte{
			"jobs.supremm": bytes.Repeat([]byte("SNAPSHOT"), 64),
			"jobs.jsonl":   []byte("{\"job\":1}\n"),
		}
		for name, b := range good {
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir, good
	}

	dir1, good := mkdir()
	dir2, _ := mkdir()
	c1 := NewServeChaos(7, dir1, good)
	c2 := NewServeChaos(7, dir2, good)
	f1, err := c1.TearSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := c2.TearSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Errorf("same seed tore different fractions: %v vs %v", f1, f2)
	}
	torn, err := os.ReadFile(filepath.Join(dir1, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) >= len(good["jobs.supremm"]) {
		t.Fatal("tear left a whole snapshot")
	}

	if err := c1.Storm(2); err != nil {
		t.Fatal(err)
	}
	if err := c1.Heal(); err != nil {
		t.Fatal(err)
	}
	for name, want := range good {
		got, err := os.ReadFile(filepath.Join(dir1, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("heal left %s diverged", name)
		}
	}
	// Heal's temp files must not survive.
	entries, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".heal") {
			t.Errorf("leaked heal temp %s", e.Name())
		}
	}
	counts := c1.Counts()
	if counts[KindTornSnapshot] != 1 {
		t.Errorf("torn count %d, want 1", counts[KindTornSnapshot])
	}
	if counts[KindReloadStorm] != 4 { // 2 rewrites x 2 files
		t.Errorf("storm count %d, want 4", counts[KindReloadStorm])
	}
}

func TestServeKinds(t *testing.T) {
	kinds := ServeKinds()
	if len(kinds) != 7 {
		t.Fatalf("ServeKinds() = %v", kinds)
	}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		seen[k] = true
	}
	for _, k := range []Kind{KindTornSnapshot, KindSlowRead, KindReloadStorm, KindSlowClient,
		KindTornShard, KindStaleManifest, KindBitRot} {
		if !seen[k] {
			t.Errorf("missing kind %s", k)
		}
	}
}

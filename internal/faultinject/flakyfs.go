package faultinject

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// TransientError marks an injected failure as retryable. It satisfies
// the same Temporary() contract syscall errors use, so ingest retry
// logic keyed on that interface treats real EAGAIN/EINTR-class errors
// and injected ones identically.
type TransientError struct {
	Op   string
	Path string
	N    int // which attempt this error failed (1-based)
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faultinject: transient %s error on %s (attempt %d)", e.Op, e.Path, e.N)
}

// Temporary reports that the failure is retryable.
func (e *TransientError) Temporary() bool { return true }

// IsTransient reports whether any error in err's chain declares itself
// Temporary(), the stdlib convention for retryable I/O failures.
func IsTransient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// FailMode selects where a FlakyFS injects its failures.
type FailMode int

const (
	// FailOpen fails fs.FS.Open calls.
	FailOpen FailMode = iota
	// FailRead lets Open succeed and fails the first Read on the handle.
	FailRead
)

// FlakyFS wraps an fs.FS and fails a configured number of operations on
// chosen paths with TransientError, then behaves normally — the shape
// of an overloaded parallel filesystem during ingest. It is safe for
// concurrent use and fully deterministic: failures are consumed in
// per-path counts, not by chance.
type FlakyFS struct {
	inner fs.FS
	mode  FailMode

	mu        sync.Mutex
	remaining map[string]int
	injected  int
}

// NewFlakyFS wraps inner so that each path in failures errors that many
// times (at mode's failure point) before succeeding.
func NewFlakyFS(inner fs.FS, mode FailMode, failures map[string]int) *FlakyFS {
	rem := make(map[string]int, len(failures))
	for p, n := range failures {
		if n > 0 {
			rem[p] = n
		}
	}
	return &FlakyFS{inner: inner, mode: mode, remaining: rem}
}

// Injected returns how many errors have been injected so far.
func (f *FlakyFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// take consumes one failure for path if any remain, returning the
// attempt number (1-based) and true.
func (f *FlakyFS) take(path string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.remaining[path]
	if !ok || n <= 0 {
		return 0, false
	}
	f.remaining[path] = n - 1
	f.injected++
	return f.injected, true
}

// Open implements fs.FS.
func (f *FlakyFS) Open(name string) (fs.File, error) {
	if f.mode == FailOpen {
		if n, ok := f.take(name); ok {
			return nil, &fs.PathError{Op: "open", Path: name,
				Err: &TransientError{Op: "open", Path: name, N: n}}
		}
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	if f.mode == FailRead {
		if n, ok := f.take(name); ok {
			// The handle fails its first Read, then reads normally.
			return &flakyFile{File: file, err: &TransientError{Op: "read", Path: name, N: n}}, nil
		}
	}
	return file, nil
}

// ReadDir implements fs.ReadDirFS by delegating to the inner FS.
func (f *FlakyFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return fs.ReadDir(f.inner, name)
}

// flakyFile fails its first Read with the configured error.
type flakyFile struct {
	fs.File
	err error
}

func (f *flakyFile) Read(p []byte) (int, error) {
	if f.err != nil {
		err := f.err
		f.err = nil
		return 0, err
	}
	return f.File.Read(p)
}

package faultinject

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/fstest"
)

// writeCleanArchive builds a minimal-but-valid clean raw archive:
// nHosts hosts, filesPerHost numerically named day files, recsPerFile
// records each at 600 s spacing, counters advancing monotonically.
func writeCleanArchive(t *testing.T, dir string, nHosts, filesPerHost, recsPerFile int) {
	t.Helper()
	for h := 0; h < nHosts; h++ {
		host := fmt.Sprintf("c%03d", h+1)
		hostDir := filepath.Join(dir, host)
		if err := os.MkdirAll(hostDir, 0o755); err != nil {
			t.Fatal(err)
		}
		ts := int64(1000)
		for f := 0; f < filesPerHost; f++ {
			var sb strings.Builder
			sb.WriteString("$tacc_stats 2.0\n")
			sb.WriteString("$hostname " + host + "\n")
			sb.WriteString("$arch amd64_opteron\n")
			sb.WriteString("!cpu user,E,U=cs system,E,U=cs idle,E,U=cs iowait,E,U=cs\n")
			sb.WriteString("!mem MemUsed,U=KB\n")
			for r := 0; r < recsPerFile; r++ {
				base := uint64(ts) * 10
				fmt.Fprintf(&sb, "%d\n", ts)
				fmt.Fprintf(&sb, "cpu 0 %d %d %d %d\n", base, base/2, base*3, base/4)
				fmt.Fprintf(&sb, "cpu 1 %d %d %d %d\n", base+7, base/2+3, base*3+11, base/4+1)
				fmt.Fprintf(&sb, "mem 0 524288\n")
				ts += 600
			}
			name := fmt.Sprintf("%d.raw", f+1)
			if err := os.WriteFile(filepath.Join(hostDir, name), []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// readTree maps relative path -> contents for every file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		out[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInjectDeterministic(t *testing.T) {
	src := t.TempDir()
	writeCleanArchive(t, src, 6, 3, 5)
	spec := Spec{Seed: 42, HostFrac: 0.5}

	dst1, dst2 := t.TempDir(), t.TempDir()
	m1, err := Inject(src, dst1, spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Inject(src, dst2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("manifests differ:\n%+v\n%+v", m1, m2)
	}
	t1, t2 := readTree(t, dst1), readTree(t, dst2)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("corrupted trees differ between identical runs")
	}

	m3, err := Inject(src, t.TempDir(), Spec{Seed: 43, HostFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1.Faults, m3.Faults) {
		t.Fatal("different seeds produced identical fault lists")
	}
}

func TestInjectVictimSelectionAndIsolation(t *testing.T) {
	src := t.TempDir()
	writeCleanArchive(t, src, 10, 3, 5)
	dst := t.TempDir()
	m, err := Inject(src, dst, Spec{Seed: 7, HostFrac: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hosts) != 3 {
		t.Fatalf("HostFrac 0.3 of 10 hosts: got %d victims, want 3", len(m.Hosts))
	}
	clean := readTree(t, src)
	dirty := readTree(t, dst)
	for rel, want := range clean {
		host := filepath.Dir(rel)
		if m.Corrupted(host) {
			continue
		}
		got, ok := dirty[rel]
		if !ok {
			t.Fatalf("untouched host file %s missing from dst", rel)
		}
		if got != want {
			t.Fatalf("untouched host file %s differs from src", rel)
		}
	}
	// Every victim must differ from clean somewhere.
	for _, host := range m.Hosts {
		same := true
		for rel, want := range clean {
			if filepath.Dir(rel) != host {
				continue
			}
			if dirty[rel] != want {
				same = false
			}
		}
		if same {
			t.Fatalf("victim host %s is byte-identical to clean archive", host)
		}
	}
}

func TestInjectKinds(t *testing.T) {
	src := t.TempDir()
	writeCleanArchive(t, src, 4, 3, 6)

	check := func(t *testing.T, kind Kind, m *Manifest, dirty map[string]string, clean map[string]string) {
		if len(m.Faults) != len(m.Hosts) {
			t.Fatalf("%d faults for %d victims", len(m.Faults), len(m.Hosts))
		}
		f := m.Faults[0]
		if f.Kind != kind {
			t.Fatalf("fault kind = %s, want %s", f.Kind, kind)
		}
		rel := filepath.Join(f.Host, f.File)
		switch kind {
		case KindMissingDay:
			if _, ok := dirty[rel]; ok {
				t.Fatalf("missing-day target %s still present", rel)
			}
			if m.Expect.IntervalsClamped != len(m.Hosts) {
				t.Fatalf("Expect.IntervalsClamped = %d", m.Expect.IntervalsClamped)
			}
		case KindTruncate:
			got := dirty[rel]
			if strings.HasSuffix(got, "\n") {
				t.Fatalf("truncated file %s ends with newline", rel)
			}
			if len(got) >= len(clean[rel]) {
				t.Fatalf("truncated file %s not shorter than clean", rel)
			}
			if m.Expect.FilesQuarantined != len(m.Hosts) {
				t.Fatalf("Expect.FilesQuarantined = %d", m.Expect.FilesQuarantined)
			}
		case KindGarble:
			if !strings.Contains(dirty[rel], "###bitrot###") {
				t.Fatalf("garbled file %s lacks corruption marker", rel)
			}
			if f.Line == 0 {
				t.Fatal("garble fault has no line number")
			}
			lines := strings.Split(dirty[rel], "\n")
			if !strings.Contains(lines[f.Line-1], "###bitrot###") {
				t.Fatalf("manifest line %d does not point at the garbled line", f.Line)
			}
		case KindDuplicate:
			if strings.Count(dirty[rel], "\n") != strings.Count(clean[rel], "\n")+4 {
				t.Fatalf("duplicate did not add exactly one record (4 lines)")
			}
			if m.Expect.DuplicatesSkipped != len(m.Hosts) {
				t.Fatalf("Expect.DuplicatesSkipped = %d", m.Expect.DuplicatesSkipped)
			}
		case KindReorder:
			if dirty[rel] == clean[rel] {
				t.Fatalf("reorder left %s unchanged", rel)
			}
			if m.Expect.RecordsDropped != len(m.Hosts) {
				t.Fatalf("Expect.RecordsDropped = %d", m.Expect.RecordsDropped)
			}
		case KindClockSkew:
			if dirty[rel] == clean[rel] {
				t.Fatalf("clock-skew left %s unchanged", rel)
			}
			if m.Expect.IntervalsClamped != len(m.Hosts) {
				t.Fatalf("Expect.IntervalsClamped = %d", m.Expect.IntervalsClamped)
			}
		case KindCounterReset:
			if dirty[rel] == clean[rel] {
				t.Fatalf("counter-reset left %s unchanged", rel)
			}
			if m.Expect.ResetsDetected != len(m.Hosts) {
				t.Fatalf("Expect.ResetsDetected = %d", m.Expect.ResetsDetected)
			}
		}
	}

	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			dst := t.TempDir()
			m, err := Inject(src, dst, Spec{Seed: 99, HostFrac: 0.25, Kinds: []Kind{kind}})
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Hosts) != 1 {
				t.Fatalf("got %d victims, want 1", len(m.Hosts))
			}
			check(t, kind, m, readTree(t, dst), readTree(t, src))
		})
	}
}

func TestInjectCounterResetRebasesForward(t *testing.T) {
	src := t.TempDir()
	writeCleanArchive(t, src, 1, 3, 6)
	dst := t.TempDir()
	m, err := Inject(src, dst, Spec{Seed: 3, HostFrac: 1, Kinds: []Kind{KindCounterReset}})
	if err != nil {
		t.Fatal(err)
	}
	f := m.Faults[0]
	// The record at the reset point must read near zero: its first cpu
	// value rebased against itself is exactly 0.
	content := dirty(t, dst, f.Host, f.File)
	if !strings.Contains(content, "\ncpu 0 0 ") {
		t.Fatalf("reset record not rebased to zero:\n%s", content)
	}
	// Later files must also be rebased (reboot persists), so file 3
	// differs from clean whenever the reset started in file 2 or earlier.
	if f.File != "3.raw" {
		cleanLast, _ := os.ReadFile(filepath.Join(src, f.Host, "3.raw"))
		dirtyLast, _ := os.ReadFile(filepath.Join(dst, f.Host, "3.raw"))
		if string(cleanLast) == string(dirtyLast) {
			t.Fatal("counter reset did not propagate to later files")
		}
	}
}

func dirty(t *testing.T, dir, host, file string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, host, file))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestInjectClockSkewMonotoneAfterJump(t *testing.T) {
	src := t.TempDir()
	writeCleanArchive(t, src, 1, 3, 6)
	dst := t.TempDir()
	m, err := Inject(src, dst, Spec{Seed: 5, HostFrac: 1, Kinds: []Kind{KindClockSkew}, SkewSec: 7200})
	if err != nil {
		t.Fatal(err)
	}
	// Collect all timestamps across the host's files in day order; there
	// must be exactly one jump of ~7200+600 and no backwards steps (the
	// skew persists, so time stays monotone after the jump).
	var ts []int64
	for _, name := range []string{"1.raw", "2.raw", "3.raw"} {
		rf, err := parseRawLines(filepath.Join(dst, m.Hosts[0], name))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range rf.blocks {
			ts = append(ts, b.ts)
		}
	}
	jumps := 0
	for i := 1; i < len(ts); i++ {
		d := ts[i] - ts[i-1]
		if d < 0 {
			t.Fatalf("clock skew produced backwards time at index %d", i)
		}
		if d > 600 {
			jumps++
			if d != 7200+600 {
				t.Fatalf("jump of %d s, want %d", d, 7200+600)
			}
		}
	}
	if jumps != 1 {
		t.Fatalf("got %d jumps, want 1", jumps)
	}
}

func TestFlakyFSOpen(t *testing.T) {
	inner := fstest.MapFS{
		"h/1.raw": &fstest.MapFile{Data: []byte("hello")},
		"h/2.raw": &fstest.MapFile{Data: []byte("world")},
	}
	ffs := NewFlakyFS(inner, FailOpen, map[string]int{"h/1.raw": 2})

	for i := 0; i < 2; i++ {
		_, err := ffs.Open("h/1.raw")
		if err == nil {
			t.Fatalf("attempt %d: expected injected error", i+1)
		}
		if !IsTransient(err) {
			t.Fatalf("injected error not transient: %v", err)
		}
	}
	f, err := ffs.Open("h/1.raw")
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	b, _ := io.ReadAll(f)
	f.Close()
	if string(b) != "hello" {
		t.Fatalf("read %q after failures drained", b)
	}
	if f, err := ffs.Open("h/2.raw"); err != nil {
		t.Fatalf("untargeted path failed: %v", err)
	} else {
		f.Close()
	}
	if ffs.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", ffs.Injected())
	}
}

func TestFlakyFSRead(t *testing.T) {
	inner := fstest.MapFS{"h/1.raw": &fstest.MapFile{Data: []byte("payload")}}
	ffs := NewFlakyFS(inner, FailRead, map[string]int{"h/1.raw": 1})

	f, err := ffs.Open("h/1.raw")
	if err != nil {
		t.Fatalf("open should succeed in FailRead mode: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err == nil || !IsTransient(err) {
		t.Fatalf("first read should fail transiently, got %v", err)
	}
	b, err := io.ReadAll(f)
	f.Close()
	if err != nil || string(b) != "payload" {
		t.Fatalf("post-failure read = %q, %v", b, err)
	}

	// Second open: failure budget exhausted, reads clean.
	f2, err := ffs.Open("h/1.raw")
	if err != nil {
		t.Fatal(err)
	}
	b, err = io.ReadAll(f2)
	f2.Close()
	if err != nil || string(b) != "payload" {
		t.Fatalf("drained open read = %q, %v", b, err)
	}
}

func TestIsTransientPlainError(t *testing.T) {
	if IsTransient(fmt.Errorf("ordinary failure")) {
		t.Fatal("plain error reported transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil error reported transient")
	}
	wrapped := fmt.Errorf("outer: %w", &TransientError{Op: "read", Path: "x", N: 1})
	if !IsTransient(wrapped) {
		t.Fatal("wrapped TransientError not detected")
	}
}

// Package faultinject corrupts a clean simulated raw archive under a
// seeded specification, reproducing the fault model an 18-month
// production deployment actually sees: nodes crashing mid-write
// (truncated final records), cosmic-ray/disk garbling, duplicated and
// out-of-order samples from retransmitting collectors, whole host-days
// lost to full disks, clocks stepping after reboots, and counters
// restarting when a node reboots. The injector is byte-deterministic:
// the same (archive, Spec) pair always produces the same corrupted tree
// and the same Manifest, so differential tests can assert exactly what
// a degraded-mode ingest must detect and survive.
//
// The Manifest records every fault applied plus the DataQuality totals
// a lenient ingest is expected to account for, making "ingest detected
// exactly what the injector did" a testable equality.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Kind names one fault class.
type Kind string

// The injectable fault classes, ordered so that small victim sets still
// exercise the parse-breaking kinds first.
const (
	// KindGarble corrupts one data line (bit rot / torn write): the
	// parser rejects the line, quarantining the file.
	KindGarble Kind = "garble"
	// KindTruncate cuts the host's last file mid-line, as a node dying
	// mid-write leaves it; the parser rejects the partial line.
	KindTruncate Kind = "truncate"
	// KindReorder swaps two adjacent records, producing one
	// non-monotonic timestamp the ingest must drop.
	KindReorder Kind = "reorder"
	// KindCounterReset rebases every counter from one record onward to
	// restart near zero, as a node reboot does; CPU counters moving
	// backwards is the ingest's reset signal.
	KindCounterReset Kind = "counter-reset"
	// KindDuplicate repeats one record verbatim (collector retransmit),
	// producing a zero-dt interval the ingest must skip.
	KindDuplicate Kind = "duplicate"
	// KindMissingDay deletes an interior day file, leaving a gap whose
	// bridging interval exceeds any plausible sampling delta.
	KindMissingDay Kind = "missing-day"
	// KindClockSkew steps the host clock forward mid-file (NTP jump
	// after reboot), skewing one interval beyond the plausible maximum.
	KindClockSkew Kind = "clock-skew"
)

// AllKinds lists every fault class in injection-priority order.
func AllKinds() []Kind {
	return []Kind{
		KindGarble, KindTruncate, KindReorder, KindCounterReset,
		KindDuplicate, KindMissingDay, KindClockSkew,
	}
}

// Spec parameterizes one injection run.
type Spec struct {
	// Seed drives every random choice; equal seeds give equal output.
	Seed int64
	// HostFrac is the fraction of hosts to corrupt, rounded up to at
	// least one victim when positive.
	HostFrac float64
	// Kinds cycles over the victims in sorted-host order; nil means
	// AllKinds().
	Kinds []Kind
	// SkewSec is the forward clock step KindClockSkew applies; 0 means
	// 2 days, which exceeds the ingest's default plausibility bound.
	SkewSec int64
}

// Fault is one applied corruption.
type Fault struct {
	Host string `json:"host"`
	File string `json:"file"` // "" for whole-host faults (none today)
	Kind Kind   `json:"kind"`
	// Line is the 1-based line number of the corruption within the
	// rewritten file, when the fault is line-addressable.
	Line   int    `json:"line,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Expected is the DataQuality accounting a lenient ingest of the
// corrupted archive must report, assuming its plausibility bound
// (MaxIntervalSec) is below the injected gap/skew magnitudes.
type Expected struct {
	FilesQuarantined  int `json:"files_quarantined"`
	RecordsDropped    int `json:"records_dropped"`
	DuplicatesSkipped int `json:"duplicates_skipped"`
	ResetsDetected    int `json:"resets_detected"`
	IntervalsClamped  int `json:"intervals_clamped"`
}

// Manifest records everything one injection run did.
type Manifest struct {
	Seed   int64    `json:"seed"`
	Hosts  []string `json:"hosts"` // corrupted hosts, sorted
	Faults []Fault  `json:"faults"`
	Expect Expected `json:"expect"`
}

// Corrupted reports whether host was touched by any fault.
func (m *Manifest) Corrupted(host string) bool {
	for _, h := range m.Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// Inject copies the raw archive at src (host/day.raw layout) into dst,
// corrupting a deterministic subset of hosts per spec. dst must not
// already contain conflicting files; parent directories are created.
func Inject(src, dst string, spec Spec) (*Manifest, error) {
	if spec.SkewSec == 0 {
		spec.SkewSec = 2 * 86400
	}
	kinds := spec.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return nil, fmt.Errorf("faultinject: read src: %w", err)
	}
	var hosts []string
	for _, e := range entries {
		if e.IsDir() {
			hosts = append(hosts, e.Name())
		}
	}
	sort.Strings(hosts)

	rng := rand.New(rand.NewSource(spec.Seed))
	victims := pickVictims(rng, hosts, spec.HostFrac)

	m := &Manifest{Seed: spec.Seed, Hosts: victims}
	victimKind := make(map[string]Kind, len(victims))
	for i, h := range victims {
		victimKind[h] = kinds[i%len(kinds)]
	}

	for _, host := range hosts {
		srcHost := filepath.Join(src, host)
		dstHost := filepath.Join(dst, host)
		if err := os.MkdirAll(dstHost, 0o755); err != nil {
			return nil, err
		}
		files, err := rawFileNames(srcHost)
		if err != nil {
			return nil, err
		}
		kind, isVictim := victimKind[host]
		if !isVictim {
			for _, name := range files {
				if err := copyFile(filepath.Join(srcHost, name), filepath.Join(dstHost, name)); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := corruptHost(rng, m, srcHost, dstHost, host, files, kind, spec.SkewSec); err != nil {
			return nil, fmt.Errorf("faultinject: host %s kind %s: %w", host, kind, err)
		}
	}
	return m, nil
}

// pickVictims chooses ceil(frac*len(hosts)) distinct hosts, returned
// sorted so downstream random draws are order-independent.
func pickVictims(rng *rand.Rand, hosts []string, frac float64) []string {
	if frac <= 0 || len(hosts) == 0 {
		return nil
	}
	n := int(math.Ceil(frac * float64(len(hosts))))
	if n > len(hosts) {
		n = len(hosts)
	}
	perm := rng.Perm(len(hosts))
	victims := make([]string, 0, n)
	for _, idx := range perm[:n] {
		victims = append(victims, hosts[idx])
	}
	sort.Strings(victims)
	return victims
}

// corruptHost applies one fault kind to one host, copying every file
// (corrupted or verbatim) into dstHost and recording the fault.
func corruptHost(rng *rand.Rand, m *Manifest, srcHost, dstHost, host string, files []string, kind Kind, skewSec int64) error {
	if len(files) == 0 {
		return fmt.Errorf("no raw files")
	}
	// Kinds that need structure the host lacks degrade to garble, which
	// only needs one data line; the manifest records what actually ran.
	if kind == KindMissingDay && len(files) < 3 {
		kind = KindGarble
	}
	target := files[len(files)/2]
	if kind == KindTruncate {
		target = files[len(files)-1]
	}

	switch kind {
	case KindMissingDay:
		// Delete an interior file so the remaining neighbours bridge an
		// implausibly long interval.
		target = files[1+rng.Intn(len(files)-2)]
		for _, name := range files {
			if name == target {
				continue
			}
			if err := copyFile(filepath.Join(srcHost, name), filepath.Join(dstHost, name)); err != nil {
				return err
			}
		}
		m.Faults = append(m.Faults, Fault{Host: host, File: target, Kind: kind,
			Detail: "interior day file deleted"})
		m.Expect.IntervalsClamped++
		return nil

	case KindClockSkew, KindCounterReset:
		// These propagate from a chosen record to the end of the host's
		// archive, so every file from the target onward is rewritten.
		started := false
		var baselines map[string][]uint64
		for _, name := range files {
			srcPath := filepath.Join(srcHost, name)
			if !started && name != target {
				if err := copyFile(srcPath, filepath.Join(dstHost, name)); err != nil {
					return err
				}
				continue
			}
			rf, err := parseRawLines(srcPath)
			if err != nil {
				return err
			}
			if len(rf.blocks) < 2 {
				return fmt.Errorf("%s: need >= 2 records", name)
			}
			from := 0
			if !started {
				started = true
				from = 1 + rng.Intn(len(rf.blocks)-1)
				if kind == KindClockSkew {
					m.Faults = append(m.Faults, Fault{Host: host, File: name, Kind: kind,
						Detail: fmt.Sprintf("clock stepped +%ds from t=%d", skewSec, rf.blocks[from].ts)})
					m.Expect.IntervalsClamped++
				} else {
					baselines = blockBaselines(rf.blocks[from])
					m.Faults = append(m.Faults, Fault{Host: host, File: name, Kind: kind,
						Detail: fmt.Sprintf("counters rebased (reboot) at t=%d", rf.blocks[from].ts)})
					m.Expect.ResetsDetected++
				}
			}
			for bi := from; bi < len(rf.blocks); bi++ {
				if kind == KindClockSkew {
					rf.blocks[bi].setTime(rf.blocks[bi].ts + skewSec)
				} else {
					rebaseBlock(&rf.blocks[bi], baselines)
				}
			}
			if err := os.WriteFile(filepath.Join(dstHost, name), rf.bytes(), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	// Single-file faults: every other file copies verbatim.
	for _, name := range files {
		if name == target {
			continue
		}
		if err := copyFile(filepath.Join(srcHost, name), filepath.Join(dstHost, name)); err != nil {
			return err
		}
	}
	rf, err := parseRawLines(filepath.Join(srcHost, target))
	if err != nil {
		return err
	}
	if len(rf.blocks) < 3 {
		return fmt.Errorf("%s: need >= 3 records", target)
	}
	switch kind {
	case KindGarble:
		bi := 1 + rng.Intn(len(rf.blocks)-1)
		b := &rf.blocks[bi]
		li := rng.Intn(len(b.data))
		line := b.data[li]
		// Clobber the tail of the line: the value tokenizer rejects
		// non-digits, so the parser fails exactly here.
		cut := len(line) / 2
		b.data[li] = line[:cut] + "\x7f###bitrot###"
		m.Faults = append(m.Faults, Fault{Host: host, File: target, Kind: kind,
			Line: rf.lineOf(bi, li), Detail: "data line garbled"})
		m.Expect.FilesQuarantined++

	case KindTruncate:
		// Cut mid-line inside the final record so the file ends with a
		// partial data line — the shape a crash mid-write leaves.
		b := &rf.blocks[len(rf.blocks)-1]
		keep := len(b.data) / 2
		lastLine := b.data[keep]
		b.data = append(b.data[:keep], lastLine[:len(lastLine)*2/3])
		rf.truncated = true
		m.Faults = append(m.Faults, Fault{Host: host, File: target, Kind: kind,
			Line: rf.lineOf(len(rf.blocks)-1, keep), Detail: "file cut mid-line (crash mid-write)"})
		m.Expect.FilesQuarantined++

	case KindDuplicate:
		bi := rng.Intn(len(rf.blocks))
		dup := rf.blocks[bi].clone()
		rf.blocks = append(rf.blocks[:bi+1], append([]rawBlock{dup}, rf.blocks[bi+1:]...)...)
		m.Faults = append(m.Faults, Fault{Host: host, File: target, Kind: kind,
			Detail: fmt.Sprintf("record t=%d duplicated", dup.ts)})
		m.Expect.DuplicatesSkipped++

	case KindReorder:
		i := rng.Intn(len(rf.blocks) - 1)
		rf.blocks[i], rf.blocks[i+1] = rf.blocks[i+1], rf.blocks[i]
		m.Faults = append(m.Faults, Fault{Host: host, File: target, Kind: kind,
			Detail: fmt.Sprintf("records t=%d and t=%d swapped", rf.blocks[i].ts, rf.blocks[i+1].ts)})
		m.Expect.RecordsDropped++

	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	return os.WriteFile(filepath.Join(dstHost, target), rf.bytes(), 0o644)
}

// ---------------------------------------------------------------------
// Raw-format line surgery.
// ---------------------------------------------------------------------

// rawBlock is one record: its timestamp line plus the data lines that
// follow it.
type rawBlock struct {
	ts     int64
	tsLine string
	data   []string
}

func (b *rawBlock) clone() rawBlock {
	c := *b
	c.data = append([]string(nil), b.data...)
	return c
}

// setTime rewrites the timestamp while preserving any job mark.
func (b *rawBlock) setTime(ts int64) {
	b.ts = ts
	if sp := strings.IndexByte(b.tsLine, ' '); sp >= 0 {
		b.tsLine = strconv.FormatInt(ts, 10) + b.tsLine[sp:]
	} else {
		b.tsLine = strconv.FormatInt(ts, 10)
	}
}

// rawFile is a parsed raw file: the header/schema prefix verbatim, then
// record blocks.
type rawFile struct {
	header    []string
	blocks    []rawBlock
	truncated bool // suppress the trailing newline (crash mid-line)
}

func parseRawLines(path string) (*rawFile, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rf := &rawFile{}
	for _, line := range strings.Split(strings.TrimSuffix(string(content), "\n"), "\n") {
		if len(line) > 0 && line[0] >= '0' && line[0] <= '9' {
			tok := line
			if sp := strings.IndexByte(line, ' '); sp >= 0 {
				tok = line[:sp]
			}
			ts, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad timestamp line %q", path, line)
			}
			rf.blocks = append(rf.blocks, rawBlock{ts: ts, tsLine: line})
			continue
		}
		if len(rf.blocks) == 0 {
			rf.header = append(rf.header, line)
		} else {
			b := &rf.blocks[len(rf.blocks)-1]
			b.data = append(b.data, line)
		}
	}
	return rf, nil
}

func (rf *rawFile) bytes() []byte {
	var sb strings.Builder
	for _, l := range rf.header {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	for bi := range rf.blocks {
		b := &rf.blocks[bi]
		sb.WriteString(b.tsLine)
		sb.WriteByte('\n')
		for li, l := range b.data {
			sb.WriteString(l)
			if rf.truncated && bi == len(rf.blocks)-1 && li == len(b.data)-1 {
				break // crash mid-line: no trailing newline
			}
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

// lineOf returns the 1-based line number of data line li of block bi in
// the serialized file.
func (rf *rawFile) lineOf(bi, li int) int {
	n := len(rf.header)
	for i := 0; i < bi; i++ {
		n += 1 + len(rf.blocks[i].data)
	}
	return n + 1 + li + 1
}

// blockBaselines captures the counter values of one record per
// "type dev" key, the rebasing origin for a simulated reboot.
func blockBaselines(b rawBlock) map[string][]uint64 {
	base := make(map[string][]uint64, len(b.data))
	for _, line := range b.data {
		key, vals, ok := splitDataLine(line)
		if !ok {
			continue
		}
		base[key] = vals
	}
	return base
}

// rebaseBlock subtracts the baseline from every counter so the record
// reads as a freshly booted node would. Values below their baseline
// (gauges that moved) are kept as-is.
func rebaseBlock(b *rawBlock, base map[string][]uint64) {
	for li, line := range b.data {
		key, vals, ok := splitDataLine(line)
		if !ok {
			continue
		}
		bs := base[key]
		if bs == nil {
			continue
		}
		parts := strings.Fields(line)
		for i, v := range vals {
			if i < len(bs) && v >= bs[i] {
				parts[2+i] = strconv.FormatUint(v-bs[i], 10)
			}
		}
		b.data[li] = strings.Join(parts, " ")
	}
}

// splitDataLine tokenizes "type dev v0 v1 ..." into a "type dev" key
// and its values; non-data lines (headers, schemas) report !ok.
func splitDataLine(line string) (key string, vals []uint64, ok bool) {
	if len(line) == 0 || line[0] == '$' || line[0] == '!' {
		return "", nil, false
	}
	parts := strings.Fields(line)
	if len(parts) < 3 {
		return "", nil, false
	}
	vals = make([]uint64, 0, len(parts)-2)
	for _, p := range parts[2:] {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return "", nil, false
		}
		vals = append(vals, v)
	}
	return parts[0] + " " + parts[1], vals, true
}

// rawFileNames lists a host dir's day files in numeric day order,
// mirroring the ingest's ordering.
func rawFileNames(hostDir string) ([]string, error) {
	entries, err := os.ReadDir(hostDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".raw") {
			names = append(names, e.Name())
		}
	}
	dayOf := func(name string) int {
		n, err := strconv.Atoi(strings.TrimSuffix(name, ".raw"))
		if err != nil {
			return 1 << 30
		}
		return n
	}
	sort.Slice(names, func(i, j int) bool { return dayOf(names[i]) < dayOf(names[j]) })
	return names, nil
}

func copyFile(src, dst string) error {
	content, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, content, 0o644)
}

package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Serve-layer fault kinds: the failure modes the query daemon
// (internal/serve) must survive, as opposed to the archive-corruption
// kinds the ingest faces. DESIGN.md §13 is the taxonomy.
const (
	// KindTornSnapshot overwrites jobs.supremm with a prefix of its
	// bytes, in place and without a rename — the footprint of a legacy
	// non-atomic writer (or a half-copied restore) caught mid-rewrite.
	// The daemon's reload must fail the decode, keep serving the
	// last-good generation, and trip the reload breaker.
	KindTornSnapshot Kind = "torn-snapshot"
	// KindSlowRead delays snapshot-file reads (an overloaded shared
	// filesystem); queries must keep answering from the current
	// in-memory snapshot while a reload crawls.
	KindSlowRead Kind = "slow-read"
	// KindReloadStorm rewrites the data directory rapidly and
	// non-atomically, churning the fingerprint so the poll loop sees a
	// "new batch" every tick and may catch files mid-write.
	KindReloadStorm Kind = "reload-storm"
	// KindSlowClient is a client that reads its response a few bytes at
	// a time or disconnects mid-body; the daemon's goroutines and
	// admission slots must not leak on its account.
	KindSlowClient Kind = "slow-client"
	// KindTornShard overwrites one shard-<day>.supremm with a prefix of
	// its bytes while MANIFEST.supremm keeps naming the healthy version
	// — a shard writer killed mid-rewrite. The reload must fail the
	// manifest verification (size/hash mismatch), keep serving the
	// last-good generation, and trip the reload breaker.
	KindTornShard Kind = "torn-shard"
	// KindStaleManifest deletes a shard file the manifest still lists —
	// a manifest landing without its shard (or a shard lost to cleanup/
	// restore skew). Same required outcome: failed reload, last-good
	// generation keeps serving, /readyz goes not-ready once the breaker
	// opens.
	KindStaleManifest Kind = "stale-manifest"
	// KindBitRot flips bytes inside a committed shard file without
	// changing its size — and with its mtime restored afterwards, so the
	// poll fingerprint (size + mtime) is unchanged and no reload fires.
	// Silent media corruption: only re-reading the bytes and checking
	// them against the manifest hash (the scrubber) can catch it, after
	// which the daemon must quarantine the day and serve degraded.
	KindBitRot Kind = "bit-rot"
)

// ServeKinds lists the serve-layer fault classes.
func ServeKinds() []Kind {
	return []Kind{KindTornSnapshot, KindSlowRead, KindReloadStorm, KindSlowClient,
		KindTornShard, KindStaleManifest, KindBitRot}
}

// TornWrite overwrites path in place with the first frac of data, no
// temp file and no rename — exactly the torn state a non-atomic writer
// leaves when killed mid-rewrite. frac is clamped to [0,1).
func TornWrite(path string, data []byte, frac float64) error {
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = 0.99
	}
	n := int(frac * float64(len(data)))
	if n >= len(data) {
		n = len(data) - 1
	}
	if n < 0 {
		n = 0
	}
	return os.WriteFile(path, data[:n], 0o644)
}

// SlowOpener wraps a file opener so reads of paths matching slow are
// preceded by delay() per Read call — an overloaded parallel
// filesystem, injected at serve.Config.Open. The delay is a caller
// -supplied func so this package stays clock-free and tests stay
// deterministic (a channel receive, a counter, or a real sleep).
func SlowOpener(base func(path string) (io.ReadCloser, error), slow func(path string) bool,
	delay func()) func(path string) (io.ReadCloser, error) {

	return func(path string) (io.ReadCloser, error) {
		rc, err := base(path)
		if err != nil || slow == nil || !slow(path) {
			return rc, err
		}
		return &slowReader{rc: rc, delay: delay}, nil
	}
}

type slowReader struct {
	rc    io.ReadCloser
	delay func()
}

func (s *slowReader) Read(p []byte) (int, error) {
	if s.delay != nil {
		s.delay()
	}
	return s.rc.Read(p)
}

func (s *slowReader) Close() error { return s.rc.Close() }

// ServeChaos drives serve-layer faults against one data directory. It
// holds the known-good bytes of every data file so it can tear them
// and heal them deterministically; the same seed produces the same
// sequence of torn fractions. Safe for concurrent use.
type ServeChaos struct {
	dir string

	mu     sync.Mutex
	rng    *rand.Rand
	good   map[string][]byte
	counts map[Kind]int
}

// NewServeChaos captures dir's current files as the known-good state.
// good maps file name (e.g. "jobs.supremm") to its healthy content.
func NewServeChaos(seed int64, dir string, good map[string][]byte) *ServeChaos {
	g := make(map[string][]byte, len(good))
	for name, b := range good {
		g[name] = append([]byte(nil), b...)
	}
	return &ServeChaos{
		dir:    dir,
		rng:    rand.New(rand.NewSource(seed)),
		good:   g,
		counts: make(map[Kind]int),
	}
}

// TearSnapshot tears jobs.supremm in place, returning the fraction
// kept. The torn prefix always destroys the decode: the columnar codec
// authenticates its trailer, so any proper prefix fails.
func (c *ServeChaos) TearSnapshot() (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.good["jobs.supremm"]
	if !ok {
		return 0, fmt.Errorf("faultinject: no known-good jobs.supremm")
	}
	frac := 0.05 + 0.9*c.rng.Float64()
	c.counts[KindTornSnapshot]++
	return frac, TornWrite(filepath.Join(c.dir, "jobs.supremm"), data, frac)
}

// shardNames returns the known-good shard file names, sorted, so the
// seeded rng picks victims deterministically.
func (c *ServeChaos) shardNames() []string {
	var names []string
	for name := range c.good {
		if strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".supremm") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// TearShard tears one shard file in place (seeded pick, seeded
// fraction), leaving MANIFEST.supremm untouched — the manifest now
// describes bytes that no longer exist. Returns the victim file name
// and the fraction kept. TornWrite always leaves a strict prefix, so
// the file's size disagrees with its manifest entry and even an
// incremental reload holding the healthy shard in memory must notice.
func (c *ServeChaos) TearShard() (string, float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.shardNames()
	if len(names) == 0 {
		return "", 0, fmt.Errorf("faultinject: no known-good shard files")
	}
	name := names[c.rng.Intn(len(names))]
	frac := 0.05 + 0.9*c.rng.Float64()
	c.counts[KindTornShard]++
	return name, frac, TornWrite(filepath.Join(c.dir, name), c.good[name], frac)
}

// Rot flips bytes in one shard file (seeded pick, seeded positions,
// seeded masks) without changing its size, then restores the file's
// mtime so the directory fingerprint cannot see the damage. Returns
// the victim file name and how many bytes were flipped (at least one,
// each xored with a non-zero mask, so the content — and its CRC32,
// which detects all single-byte errors — always differs from the
// known-good bytes).
func (c *ServeChaos) Rot() (string, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.shardNames()
	if len(names) == 0 {
		return "", 0, fmt.Errorf("faultinject: no known-good shard files")
	}
	name := names[c.rng.Intn(len(names))]
	flips := 1 + c.rng.Intn(4)
	if err := c.rotLocked(name, flips); err != nil {
		return "", 0, err
	}
	return name, flips, nil
}

// RotFile is Rot with the victim chosen by the caller — chaos tests
// that need a specific day damaged use this; positions and masks stay
// seeded.
func (c *ServeChaos) RotFile(name string, flips int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.good[name]; !ok {
		return fmt.Errorf("faultinject: no known-good %s", name)
	}
	return c.rotLocked(name, flips)
}

func (c *ServeChaos) rotLocked(name string, flips int) error {
	if flips < 1 {
		flips = 1
	}
	path := filepath.Join(c.dir, name)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	data := append([]byte(nil), c.good[name]...)
	if len(data) == 0 {
		return fmt.Errorf("faultinject: %s is empty, nothing to rot", name)
	}
	for i := 0; i < flips; i++ {
		pos := c.rng.Intn(len(data))
		data[pos] ^= byte(1 + c.rng.Intn(255)) // non-zero mask: the byte changes
	}
	if bytes.Equal(data, c.good[name]) {
		// Two seeded flips can land on one byte and cancel; the fault
		// must actually corrupt.
		data[0] ^= 0x01
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	// Put the mtime back: rot is silent, the fingerprint must not
	// notice. (Writing the same byte count keeps the size unchanged.)
	if err := os.Chtimes(path, st.ModTime(), st.ModTime()); err != nil {
		return err
	}
	c.counts[KindBitRot]++
	return nil
}

// StaleManifest deletes one shard file (seeded pick) while the
// manifest keeps listing it, returning the victim file name.
func (c *ServeChaos) StaleManifest() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.shardNames()
	if len(names) == 0 {
		return "", fmt.Errorf("faultinject: no known-good shard files")
	}
	name := names[c.rng.Intn(len(names))]
	c.counts[KindStaleManifest]++
	return name, os.Remove(filepath.Join(c.dir, name))
}

// Storm rewrites every known-good file non-atomically, rewrites times
// over — fingerprint churn with windows where a reader can catch a
// file half-written, the shape of a legacy ingest rewriting in place.
func (c *ServeChaos) Storm(rewrites int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.good))
	for name := range c.good {
		names = append(names, name)
	}
	sort.Strings(names)
	for i := 0; i < rewrites; i++ {
		for _, name := range names {
			c.counts[KindReloadStorm]++
			if err := os.WriteFile(filepath.Join(c.dir, name), c.good[name], 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// Heal atomically restores every known-good file (temp + rename, the
// cmd/ingest discipline), returning the directory to a loadable state
// in one step per file.
func (c *ServeChaos) Heal() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.good))
	for name := range c.good {
		names = append(names, name)
	}
	sort.Strings(names)
	return c.healLocked(names)
}

// HealFiles atomically restores only the named known-good files —
// self-heal chaos scenarios use it to give the daemon back a usable
// monolithic backing (jobs.supremm) while leaving a rotted shard for
// the daemon's own repair path to rebuild.
func (c *ServeChaos) HealFiles(names ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range names {
		if _, ok := c.good[name]; !ok {
			return fmt.Errorf("faultinject: no known-good %s", name)
		}
	}
	return c.healLocked(names)
}

func (c *ServeChaos) healLocked(names []string) error {
	for _, name := range names {
		dst := filepath.Join(c.dir, name)
		tmp, err := os.CreateTemp(c.dir, "."+name+".heal*")
		if err != nil {
			return err
		}
		if _, err := tmp.Write(c.good[name]); err != nil {
			_ = tmp.Close() // already failing; surface the write error
			_ = os.Remove(tmp.Name())
			return err
		}
		if err := tmp.Close(); err != nil {
			_ = os.Remove(tmp.Name())
			return err
		}
		if err := os.Rename(tmp.Name(), dst); err != nil {
			_ = os.Remove(tmp.Name())
			return err
		}
	}
	return nil
}

// Counts reports how many faults of each kind this chaos run injected.
func (c *ServeChaos) Counts() map[Kind]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Kind]int, len(c.counts))
	for k, n := range c.counts {
		out[k] = n
	}
	return out
}

// SlowClient issues a raw HTTP/1.0 GET for path against addr and reads
// at most readBytes of the response one byte at a time, calling delay()
// between reads, then closes the connection — possibly mid-body. The
// daemon under test must tolerate the abandoned connection without
// leaking a goroutine or an admission slot.
func SlowClient(addr, path string, readBytes int, delay func()) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.0\r\nHost: chaos\r\n\r\n", path); err != nil {
		return err
	}
	buf := make([]byte, 1)
	for i := 0; i < readBytes; i++ {
		if delay != nil {
			delay()
		}
		if _, err := conn.Read(buf); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

package sched

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"supremm/internal/workload"
)

func sampleRecord() AcctRecord {
	return AcctRecord{
		Cluster: "ranger", Owner: "user0042", JobName: "namd", JobID: 123456,
		Account: "Molecular Biosciences",
		Submit:  1307000000, Start: 1307000600, End: 1307036600,
		Status: workload.Completed, Slots: 64,
		NodeList: []string{"c001-001.ranger", "c001-002.ranger", "c001-003.ranger", "c001-004.ranger"},
	}
}

func TestAcctRoundTrip(t *testing.T) {
	r := sampleRecord()
	parsed, err := ParseAcct(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Cluster != r.Cluster || parsed.Owner != r.Owner ||
		parsed.JobName != r.JobName || parsed.JobID != r.JobID ||
		parsed.Account != r.Account || parsed.Submit != r.Submit ||
		parsed.Start != r.Start || parsed.End != r.End ||
		parsed.Status != r.Status || parsed.Slots != r.Slots ||
		len(parsed.NodeList) != len(r.NodeList) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", r, parsed)
	}
	for i := range r.NodeList {
		if parsed.NodeList[i] != r.NodeList[i] {
			t.Fatalf("node %d: %q vs %q", i, parsed.NodeList[i], r.NodeList[i])
		}
	}
}

func TestAcctRoundTripAllStatuses(t *testing.T) {
	for _, st := range []workload.ExitStatus{workload.Completed, workload.Failed, workload.Timeout, workload.NodeFail} {
		r := sampleRecord()
		r.Status = st
		parsed, err := ParseAcct(r.String())
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if parsed.Status != st {
			t.Errorf("status %v round-tripped to %v", st, parsed.Status)
		}
	}
}

func TestParseAcctErrors(t *testing.T) {
	bad := []string{
		"",
		"too:few:fields",
		"ranger:u:app:NOTANUMBER:acct:1:2:3:COMPLETED:4:n1",
		"ranger:u:app:1:acct:X:2:3:COMPLETED:4:n1",
		"ranger:u:app:1:acct:1:X:3:COMPLETED:4:n1",
		"ranger:u:app:1:acct:1:2:X:COMPLETED:4:n1",
		"ranger:u:app:1:acct:1:2:3:WEIRD:4:n1",
		"ranger:u:app:1:acct:1:2:3:COMPLETED:X:n1",
	}
	for _, line := range bad {
		if _, err := ParseAcct(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestParseAcctEmptyNodeList(t *testing.T) {
	r := sampleRecord()
	r.NodeList = nil
	parsed, err := ParseAcct(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.NodeList) != 0 {
		t.Errorf("node list = %v, want empty", parsed.NodeList)
	}
}

func TestWriteReadAcctFile(t *testing.T) {
	records := []AcctRecord{sampleRecord(), sampleRecord()}
	records[1].JobID = 2
	records[1].Status = workload.Timeout
	var buf bytes.Buffer
	if err := WriteAcct(&buf, records); err != nil {
		t.Fatal(err)
	}
	// Add comments and blanks like a real accounting file.
	content := "# accounting file\n\n" + buf.String()
	got, err := ReadAcct(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	if got[1].JobID != 2 || got[1].Status != workload.Timeout {
		t.Errorf("record 1: %+v", got[1])
	}
	// Corrupt file reports the line number.
	_, err = ReadAcct(strings.NewReader("garbage line\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("corrupt file error = %v", err)
	}
}

func TestAcctPropertyRoundTrip(t *testing.T) {
	f := func(jobID int64, slots uint8, submit, dur uint32) bool {
		if jobID < 0 {
			jobID = -jobID
		}
		r := AcctRecord{
			Cluster: "ranger", Owner: "u", JobName: "app", JobID: jobID,
			Account: "Physics", Submit: int64(submit),
			Start: int64(submit) + 60, End: int64(submit) + 60 + int64(dur),
			Status: workload.Completed, Slots: int(slots),
			NodeList: []string{"n1", "n2"},
		}
		parsed, err := ParseAcct(r.String())
		return err == nil && parsed.JobID == r.JobID && parsed.End == r.End && parsed.Slots == r.Slots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDerivedFields(t *testing.T) {
	r := sampleRecord()
	if r.WaitSec() != 600 {
		t.Errorf("wait = %d", r.WaitSec())
	}
	if r.WallclockSec() != 36000 {
		t.Errorf("wallclock = %d", r.WallclockSec())
	}
	if r.NodeCount() != 4 {
		t.Errorf("nodes = %d", r.NodeCount())
	}
	if r.NodeHours() != 40 {
		t.Errorf("node-hours = %v", r.NodeHours())
	}
}

// Package sched implements the batch system substrate: a FIFO scheduler
// with EASY backfill over whole nodes, producing SGE-style accounting
// records of the kind the paper's ingest pipeline joins with TACC_Stats
// data by job ID. Job start/end events also drive the monitors' job-aware
// rotation (§3: TACC_Stats executes at the beginning of a job,
// periodically during it, and at the end).
package sched

import (
	"fmt"
	"sort"

	"supremm/internal/cluster"
	"supremm/internal/workload"
)

// RunningJob is an allocation of nodes to a started job.
type RunningJob struct {
	Job      *workload.Job
	Nodes    []*cluster.Node
	StartMin float64
	// EndMin is the time the job will finish given its sampled runtime
	// (or its wallclock limit for timeouts). Node failures can end it
	// earlier.
	EndMin float64
	// Behavior carries the per-job resource process; owned by the sim
	// engine, stored here so engines can look it up per allocation.
	Behavior *workload.Behavior
}

// Scheduler queues submissions and places them on idle nodes.
type Scheduler struct {
	cluster *cluster.Cluster
	queue   []*workload.Job
	running map[int64]*RunningJob
	acct    []AcctRecord
	epoch   int64 // unix seconds at sim minute 0

	// MaxBackfillScan bounds how deep into the queue backfill looks.
	MaxBackfillScan int
	// Policy selects the discipline; zero value is EASY backfill.
	Policy Policy
}

// New creates a scheduler over a cluster. epochUnix anchors accounting
// timestamps (simulation minute 0).
func New(c *cluster.Cluster, epochUnix int64) *Scheduler {
	return &Scheduler{
		cluster:         c,
		running:         make(map[int64]*RunningJob),
		epoch:           epochUnix,
		MaxBackfillScan: 128,
	}
}

// Epoch returns the unix time of simulation minute 0.
func (s *Scheduler) Epoch() int64 { return s.epoch }

// Submit enqueues a job.
func (s *Scheduler) Submit(j *workload.Job) { s.queue = append(s.queue, j) }

// QueueLength reports the number of queued (not yet started) jobs.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// Running returns the currently running allocations (unordered map).
func (s *Scheduler) Running() map[int64]*RunningJob { return s.running }

// Accounting returns all records emitted so far.
func (s *Scheduler) Accounting() []AcctRecord { return s.acct }

// unix converts a sim minute to unix seconds.
func (s *Scheduler) unix(min float64) int64 { return s.epoch + int64(min*60) }

// Step advances the scheduler to time nowMin: it completes jobs whose
// end time has passed, then starts queued jobs under FIFO + EASY
// backfill. It returns the allocations started and the allocations
// finished during this step.
func (s *Scheduler) Step(nowMin float64) (started, finished []*RunningJob) {
	finished = s.finishDue(nowMin)
	started = s.startJobs(nowMin)
	return started, finished
}

// finishDue completes running jobs with EndMin <= now.
func (s *Scheduler) finishDue(nowMin float64) []*RunningJob {
	var done []*RunningJob
	for _, rj := range s.running {
		if rj.EndMin <= nowMin {
			done = append(done, rj)
		}
	}
	// Deterministic order regardless of map iteration.
	sort.Slice(done, func(i, j int) bool {
		if done[i].EndMin != done[j].EndMin {
			return done[i].EndMin < done[j].EndMin
		}
		return done[i].Job.ID < done[j].Job.ID
	})
	for _, rj := range done {
		s.complete(rj, rj.EndMin, rj.Job.Status)
	}
	return done
}

// complete frees nodes and emits the accounting record.
func (s *Scheduler) complete(rj *RunningJob, endMin float64, status workload.ExitStatus) {
	for _, n := range rj.Nodes {
		if n.State == cluster.NodeBusy {
			n.State = cluster.NodeIdle
		}
		n.JobID = 0
	}
	delete(s.running, rj.Job.ID)
	s.acct = append(s.acct, AcctRecord{
		Cluster:  s.cluster.Config.Name,
		Owner:    rj.Job.User.Name,
		JobName:  rj.Job.App.Name,
		JobID:    rj.Job.ID,
		Account:  string(rj.Job.User.Science),
		Submit:   s.unix(rj.Job.SubmitMin),
		Start:    s.unix(rj.StartMin),
		End:      s.unix(endMin),
		Status:   status,
		Slots:    rj.Job.Nodes * s.cluster.Config.CoresPerNode(),
		NodeList: hostnames(rj.Nodes),
	})
}

// startJobs runs the FIFO + EASY backfill pass.
func (s *Scheduler) startJobs(nowMin float64) []*RunningJob {
	var started []*RunningJob
	for {
		idle := s.cluster.IdleNodes()
		if len(s.queue) == 0 {
			break
		}
		head := s.queue[0]
		if head.Nodes <= len(idle) {
			started = append(started, s.start(head, idle[:head.Nodes], nowMin))
			s.queue = s.queue[1:]
			continue
		}
		if s.Policy == PolicyFIFO {
			// Strict FIFO never starts anything ahead of the head.
			break
		}
		// Head does not fit: EASY backfill. Compute the shadow time at
		// which the head job could start if nothing new were scheduled,
		// then start a later job that fits in the idle nodes and is
		// short enough to finish before the shadow time. EASY takes the
		// first eligible candidate; the complementary policy scores all
		// of them against the running mix (§4.3.4 future work) and takes
		// the best.
		shadow, spareNodes := s.shadow(head, nowMin, len(idle))
		scan := s.queue[1:]
		if len(scan) > s.MaxBackfillScan {
			scan = scan[:s.MaxBackfillScan]
		}
		bestIdx := -1
		bestScore := 0.0
		for i, j := range scan {
			if j.Nodes > len(idle) {
				continue
			}
			// A backfill candidate must either finish before the shadow
			// time or use only nodes beyond what the head job needs.
			if nowMin+j.ReqMin > shadow && j.Nodes > spareNodes {
				continue
			}
			if s.Policy != PolicyComplementary {
				bestIdx = i
				break
			}
			if score := s.complementScore(j); bestIdx < 0 || score < bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break
		}
		j := s.queue[1+bestIdx]
		started = append(started, s.start(j, idle[:j.Nodes], nowMin))
		s.queue = append(s.queue[:1+bestIdx], s.queue[2+bestIdx:]...)
		if j.Nodes <= spareNodes {
			spareNodes -= j.Nodes
		}
	}
	return started
}

// shadow computes the earliest time the head job could start based on
// currently running jobs' end times, plus how many idle nodes would
// remain unclaimed by the head job at that time (spare for backfill).
func (s *Scheduler) shadow(head *workload.Job, nowMin float64, idleNow int) (shadowMin float64, spare int) {
	type rel struct {
		end   float64
		nodes int
	}
	rels := make([]rel, 0, len(s.running))
	for _, rj := range s.running {
		rels = append(rels, rel{rj.EndMin, len(rj.Nodes)})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].end < rels[j].end })
	avail := idleNow
	for _, r := range rels {
		if avail >= head.Nodes {
			break
		}
		avail += r.nodes
		shadowMin = r.end
	}
	if avail < head.Nodes {
		// Even with everything finished it never fits (oversized job);
		// park the shadow far away so nothing is held back.
		return nowMin + 1e9, idleNow
	}
	return shadowMin, avail - head.Nodes
}

// start allocates nodes to a job.
func (s *Scheduler) start(j *workload.Job, nodes []*cluster.Node, nowMin float64) *RunningJob {
	alloc := make([]*cluster.Node, len(nodes))
	copy(alloc, nodes)
	for _, n := range alloc {
		n.State = cluster.NodeBusy
		n.JobID = j.ID
	}
	rj := &RunningJob{
		Job:      j,
		Nodes:    alloc,
		StartMin: nowMin,
		EndMin:   nowMin + j.RuntimeMin,
	}
	s.running[j.ID] = rj
	return rj
}

// KillJob terminates a running job immediately with the given status
// (used for node failures and shutdowns). It returns the allocation, or
// nil if the job is not running.
func (s *Scheduler) KillJob(jobID int64, nowMin float64, status workload.ExitStatus) *RunningJob {
	rj, ok := s.running[jobID]
	if !ok {
		return nil
	}
	rj.EndMin = nowMin
	s.complete(rj, nowMin, status)
	return rj
}

// NodeDown marks a node down. If a job was running there the whole job
// is killed with NODE_FAIL (gang-scheduled MPI semantics). The killed
// allocation (or nil) is returned.
func (s *Scheduler) NodeDown(n *cluster.Node, nowMin float64) *RunningJob {
	jobID := n.JobID
	var killed *RunningJob
	if jobID != 0 {
		killed = s.KillJob(jobID, nowMin, workload.NodeFail)
	}
	n.State = cluster.NodeDown
	n.JobID = 0
	return killed
}

// NodeUp returns a node to service.
func (s *Scheduler) NodeUp(n *cluster.Node) {
	if n.State == cluster.NodeDown {
		n.State = cluster.NodeIdle
	}
}

func hostnames(nodes []*cluster.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Hostname
	}
	return out
}

// String summarizes scheduler state for logs.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sched{queued=%d running=%d acct=%d}", len(s.queue), len(s.running), len(s.acct))
}

package sched

import (
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/workload"
)

func testCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.RangerConfig().Scaled(nodes))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func job(id int64, nodes int, submit, runtime float64) *workload.Job {
	apps := workload.DefaultApps()
	return &workload.Job{
		ID:    id,
		User:  &workload.User{ID: 1, Name: "alice", Science: workload.Physics},
		App:   apps[0],
		Nodes: nodes, SubmitMin: submit, RuntimeMin: runtime,
		ReqMin: runtime * 1.5, Status: workload.Completed,
	}
}

func TestFIFOStartAndFinish(t *testing.T) {
	c := testCluster(t, 4)
	s := New(c, 1_307_000_000)
	s.Submit(job(1, 2, 0, 30))
	s.Submit(job(2, 2, 0, 60))

	started, finished := s.Step(0)
	if len(started) != 2 || len(finished) != 0 {
		t.Fatalf("t0: started=%d finished=%d", len(started), len(finished))
	}
	if c.BusyNodes() != 4 {
		t.Fatalf("busy = %d, want 4", c.BusyNodes())
	}
	_, finished = s.Step(30)
	if len(finished) != 1 || finished[0].Job.ID != 1 {
		t.Fatalf("t30: finished %v", finished)
	}
	if c.BusyNodes() != 2 {
		t.Fatalf("busy after finish = %d, want 2", c.BusyNodes())
	}
	_, finished = s.Step(60)
	if len(finished) != 1 || finished[0].Job.ID != 2 {
		t.Fatalf("t60: finished %v", finished)
	}
	if got := len(s.Accounting()); got != 2 {
		t.Fatalf("accounting records = %d, want 2", got)
	}
}

func TestFIFOBlocksWhenHeadDoesNotFit(t *testing.T) {
	c := testCluster(t, 4)
	s := New(c, 0)
	s.Submit(job(1, 3, 0, 100))
	s.Submit(job(2, 3, 0, 100)) // cannot fit beside job 1
	started, _ := s.Step(0)
	if len(started) != 1 {
		t.Fatalf("started = %d, want 1", len(started))
	}
	if s.QueueLength() != 1 {
		t.Fatalf("queue = %d, want 1", s.QueueLength())
	}
}

func TestEASYBackfill(t *testing.T) {
	c := testCluster(t, 4)
	s := New(c, 0)
	// Job 1 takes 3 nodes for 100 min. Head job 2 needs all 4 nodes.
	// Job 3 needs 1 node for 50 min (ReqMin 75 < 100): it must backfill
	// into the idle node without delaying job 2.
	s.Submit(job(1, 3, 0, 100))
	started, _ := s.Step(0)
	if len(started) != 1 {
		t.Fatal("setup failed")
	}
	s.Submit(job(2, 4, 1, 100))
	s.Submit(job(3, 1, 2, 50))
	started, _ = s.Step(2)
	if len(started) != 1 || started[0].Job.ID != 3 {
		t.Fatalf("backfill: started %+v, want job 3", started)
	}
	// A long job must NOT backfill (it would delay the head).
	s.Submit(job(4, 1, 3, 2000))
	started, _ = s.Step(3)
	if len(started) != 0 {
		t.Fatalf("long job should not backfill, started %v", started[0].Job.ID)
	}
	// When jobs 1 and 3 finish, head job 2 starts.
	started, finished := s.Step(100)
	if len(finished) != 2 {
		t.Fatalf("finished = %d, want 2", len(finished))
	}
	if len(started) != 1 || started[0].Job.ID != 2 {
		t.Fatalf("head start: %+v", started)
	}
}

func TestBackfillSpareNodes(t *testing.T) {
	// Head needs 3 of 4 busy-free nodes; one node is spare even when the
	// head eventually runs, so a long 1-node job may take it.
	c := testCluster(t, 4)
	s := New(c, 0)
	s.Submit(job(1, 2, 0, 100))
	s.Step(0)
	s.Submit(job(2, 3, 1, 100))  // head, needs 3 (only 2 idle)
	s.Submit(job(3, 1, 2, 5000)) // long, but fits in the spare node
	started, _ := s.Step(2)
	// shadow: head starts when job 1 ends; avail = 2 idle + 2 = 4,
	// spare = 4-3 = 1, so job 3 (1 node) backfills despite its length.
	if len(started) != 1 || started[0].Job.ID != 3 {
		t.Fatalf("spare-node backfill failed: %+v", started)
	}
}

func TestOversizedJobDoesNotBlockForever(t *testing.T) {
	c := testCluster(t, 2)
	s := New(c, 0)
	s.Submit(job(1, 100, 0, 10)) // can never fit
	s.Submit(job(2, 1, 0, 10))
	started, _ := s.Step(0)
	// The oversized head gets a far-future shadow, so job 2 backfills.
	if len(started) != 1 || started[0].Job.ID != 2 {
		t.Fatalf("oversized head blocked the queue: %+v", started)
	}
}

func TestKillJobAndNodeDown(t *testing.T) {
	c := testCluster(t, 4)
	s := New(c, 0)
	s.Submit(job(1, 2, 0, 1000))
	started, _ := s.Step(0)
	rj := started[0]

	killed := s.NodeDown(rj.Nodes[0], 50)
	if killed == nil || killed.Job.ID != 1 {
		t.Fatalf("NodeDown should kill job 1, got %v", killed)
	}
	if rj.Nodes[0].State != cluster.NodeDown {
		t.Error("node should be down")
	}
	// The second node of the allocation goes back to idle.
	if rj.Nodes[1].State != cluster.NodeIdle {
		t.Error("surviving node should be idle")
	}
	acct := s.Accounting()
	if len(acct) != 1 || acct[0].Status != workload.NodeFail {
		t.Fatalf("acct = %+v, want NODE_FAIL", acct)
	}
	if acct[0].End != s.Epoch()+50*60 {
		t.Errorf("end = %d, want %d", acct[0].End, s.Epoch()+50*60)
	}
	// Bring the node back.
	s.NodeUp(rj.Nodes[0])
	if rj.Nodes[0].State != cluster.NodeIdle {
		t.Error("NodeUp should restore idle state")
	}
	// Killing an unknown job is a no-op.
	if got := s.KillJob(999, 60, workload.Failed); got != nil {
		t.Errorf("killing unknown job returned %v", got)
	}
	// NodeDown on an idle node kills nothing.
	if got := s.NodeDown(c.Nodes[3], 60); got != nil {
		t.Errorf("down on idle node returned %v", got)
	}
}

func TestAccountingRecordFields(t *testing.T) {
	c := testCluster(t, 2)
	s := New(c, 1_000_000)
	j := job(7, 2, 5, 30)
	s.Submit(j)
	s.Step(10) // starts at minute 10 (waited 5 min)
	_, finished := s.Step(40)
	if len(finished) != 1 {
		t.Fatal("job did not finish")
	}
	r := s.Accounting()[0]
	if r.JobID != 7 || r.Owner != "alice" || r.Cluster != "ranger" {
		t.Errorf("record identity wrong: %+v", r)
	}
	if r.WaitSec() != 5*60 {
		t.Errorf("wait = %d, want 300", r.WaitSec())
	}
	if r.WallclockSec() != 30*60 {
		t.Errorf("wallclock = %d, want 1800", r.WallclockSec())
	}
	if r.NodeCount() != 2 || r.Slots != 32 {
		t.Errorf("alloc: nodes=%d slots=%d", r.NodeCount(), r.Slots)
	}
	if r.NodeHours() != 1.0 {
		t.Errorf("node-hours = %v, want 1", r.NodeHours())
	}
	if r.Account != string(workload.Physics) {
		t.Errorf("account = %q", r.Account)
	}
}

func TestSchedulerString(t *testing.T) {
	s := New(testCluster(t, 2), 0)
	if got := s.String(); !strings.Contains(got, "queued=0") {
		t.Errorf("String() = %q", got)
	}
}

func TestDeterministicFinishOrder(t *testing.T) {
	// Jobs ending at the same minute must complete in job-ID order so
	// repeated runs produce identical accounting files.
	for trial := 0; trial < 5; trial++ {
		c := testCluster(t, 8)
		s := New(c, 0)
		for id := int64(1); id <= 8; id++ {
			s.Submit(job(id, 1, 0, 10))
		}
		s.Step(0)
		s.Step(10)
		acct := s.Accounting()
		for i, r := range acct {
			if r.JobID != int64(i+1) {
				t.Fatalf("trial %d: acct order %v", trial, acct)
			}
		}
	}
}

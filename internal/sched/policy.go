package sched

import (
	"math"
	"sort"

	"supremm/internal/workload"
)

// Policy selects the scheduling discipline.
type Policy int

// Policies.
const (
	// PolicyEASY is FIFO with EASY backfill (the default; what Ranger's
	// SGE deployment effectively ran).
	PolicyEASY Policy = iota
	// PolicyFIFO is strict FIFO: nothing starts ahead of the queue head.
	PolicyFIFO
	// PolicyComplementary is the paper's §4.3.4/§5 future-work idea made
	// concrete: "jobs could be selected from the queue to complement the
	// present resource usage e.g. add high I/O jobs when I/O is
	// relatively free". Among EASY-eligible backfill candidates it picks
	// the one whose expected IO and network demand best complements the
	// currently running mix, instead of the first that fits.
	PolicyComplementary
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyEASY:
		return "easy"
	case PolicyFIFO:
		return "fifo"
	case PolicyComplementary:
		return "complementary"
	default:
		return "policy?"
	}
}

// currentLoad sums the running jobs' expected per-node IO and network
// rates (profile expectations — the scheduler does not see live
// counters, matching how a production policy would be bootstrapped from
// historical profiles, §4.3.4).
func (s *Scheduler) currentLoad() (ioMBps, netMBps float64) {
	for _, rj := range s.running {
		p := rj.Job.App.Profile
		n := float64(len(rj.Nodes))
		ioMBps += (p.ScratchWriteMBps + p.WorkWriteMBps + p.ReadMBps) * n
		netMBps += p.IBTxMBps * n
	}
	return ioMBps, netMBps
}

// jobLoad returns a job's expected total IO and network demand.
func jobLoad(j *workload.Job) (ioMBps, netMBps float64) {
	p := j.App.Profile
	n := float64(j.Nodes)
	return (p.ScratchWriteMBps + p.WorkWriteMBps + p.ReadMBps) * n, p.IBTxMBps * n
}

// complementScore ranks a candidate against the current load: lower is
// better. Loads are normalized per busy node so the score is
// scale-free; a candidate that adds IO pressure while IO is already hot
// scores badly, one that fills a cold dimension scores well.
func (s *Scheduler) complementScore(j *workload.Job) float64 {
	busy := 0.0
	for _, rj := range s.running {
		busy += float64(len(rj.Nodes))
	}
	if busy == 0 {
		return 0
	}
	curIO, curNet := s.currentLoad()
	jIO, jNet := jobLoad(j)
	// Reference scales: typical per-node rates in the archetype mix.
	const refIO, refNet = 4.0, 20.0 // MB/s per node
	normCurIO := curIO / busy / refIO
	normCurNet := curNet / busy / refNet
	normJIO := jIO / float64(j.Nodes) / refIO
	normJNet := jNet / float64(j.Nodes) / refNet
	return normCurIO*normJIO + normCurNet*normJNet
}

// WaitStats summarizes queue waits from the accounting log — the
// §4.3.4 systems-administration report for "determining 'optimal'
// settings for system software such as job schedulers".
type WaitStats struct {
	Jobs          int
	MeanWaitMin   float64
	MedianWaitMin float64
	MaxWaitMin    float64
	// By size class: small (1 node), medium (2-15), large (16+).
	SmallMeanMin  float64
	MediumMeanMin float64
	LargeMeanMin  float64
}

// ComputeWaitStats derives wait statistics from accounting records.
func ComputeWaitStats(acct []AcctRecord) WaitStats {
	var all, small, medium, large []float64
	for _, r := range acct {
		w := float64(r.WaitSec()) / 60
		all = append(all, w)
		switch n := r.NodeCount(); {
		case n <= 1:
			small = append(small, w)
		case n < 16:
			medium = append(medium, w)
		default:
			large = append(large, w)
		}
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return math.NaN()
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	st := WaitStats{Jobs: len(all)}
	if len(all) == 0 {
		st.MeanWaitMin, st.MedianWaitMin, st.MaxWaitMin = math.NaN(), math.NaN(), math.NaN()
		st.SmallMeanMin, st.MediumMeanMin, st.LargeMeanMin = math.NaN(), math.NaN(), math.NaN()
		return st
	}
	st.MeanWaitMin = mean(all)
	sorted := append([]float64(nil), all...)
	sort.Float64s(sorted)
	st.MedianWaitMin = sorted[len(sorted)/2]
	st.MaxWaitMin = sorted[len(sorted)-1]
	st.SmallMeanMin = mean(small)
	st.MediumMeanMin = mean(medium)
	st.LargeMeanMin = mean(large)
	return st
}

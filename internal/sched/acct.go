package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supremm/internal/workload"
)

// AcctRecord is one SGE-style accounting line: the per-job record the
// ingest pipeline joins with TACC_Stats raw data by job ID. Field order
// follows the classic SGE accounting(5) layout, trimmed to the fields
// the paper's analyses use, plus the node list needed for the join.
type AcctRecord struct {
	Cluster  string
	Owner    string
	JobName  string // application
	JobID    int64
	Account  string // charge account; we carry the science area here
	Submit   int64  // unix seconds
	Start    int64
	End      int64
	Status   workload.ExitStatus
	Slots    int // total cores allocated
	NodeList []string
}

// WallclockSec returns end - start.
func (r AcctRecord) WallclockSec() int64 { return r.End - r.Start }

// WaitSec returns start - submit (queue wait).
func (r AcctRecord) WaitSec() int64 { return r.Start - r.Submit }

// NodeCount returns the size of the allocation.
func (r AcctRecord) NodeCount() int { return len(r.NodeList) }

// NodeHours returns nodes * wallclock in hours.
func (r AcctRecord) NodeHours() float64 {
	return float64(r.NodeCount()) * float64(r.WallclockSec()) / 3600
}

// String renders the record as one colon-separated accounting line.
// Node lists use comma separation inside the field, as SGE does for
// PE hostlists.
func (r AcctRecord) String() string {
	return strings.Join([]string{
		r.Cluster,
		r.Owner,
		r.JobName,
		strconv.FormatInt(r.JobID, 10),
		r.Account,
		strconv.FormatInt(r.Submit, 10),
		strconv.FormatInt(r.Start, 10),
		strconv.FormatInt(r.End, 10),
		r.Status.String(),
		strconv.Itoa(r.Slots),
		strings.Join(r.NodeList, ","),
	}, ":")
}

// ParseAcct parses one accounting line produced by String.
func ParseAcct(line string) (AcctRecord, error) {
	f := strings.Split(strings.TrimSpace(line), ":")
	if len(f) != 11 {
		return AcctRecord{}, fmt.Errorf("acct: expected 11 fields, got %d in %q", len(f), line)
	}
	jobID, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil {
		return AcctRecord{}, fmt.Errorf("acct: bad job id %q: %v", f[3], err)
	}
	parse64 := func(s, what string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("acct: bad %s %q: %v", what, s, err)
		}
		return v, nil
	}
	submit, err := parse64(f[5], "submit")
	if err != nil {
		return AcctRecord{}, err
	}
	start, err := parse64(f[6], "start")
	if err != nil {
		return AcctRecord{}, err
	}
	end, err := parse64(f[7], "end")
	if err != nil {
		return AcctRecord{}, err
	}
	status, err := parseStatus(f[8])
	if err != nil {
		return AcctRecord{}, err
	}
	slots, err := strconv.Atoi(f[9])
	if err != nil {
		return AcctRecord{}, fmt.Errorf("acct: bad slots %q: %v", f[9], err)
	}
	var nodes []string
	if f[10] != "" {
		nodes = strings.Split(f[10], ",")
	}
	return AcctRecord{
		Cluster: f[0], Owner: f[1], JobName: f[2], JobID: jobID,
		Account: f[4], Submit: submit, Start: start, End: end,
		Status: status, Slots: slots, NodeList: nodes,
	}, nil
}

func parseStatus(s string) (workload.ExitStatus, error) {
	switch s {
	case "COMPLETED":
		return workload.Completed, nil
	case "FAILED":
		return workload.Failed, nil
	case "TIMEOUT":
		return workload.Timeout, nil
	case "NODE_FAIL":
		return workload.NodeFail, nil
	default:
		return 0, fmt.Errorf("acct: unknown status %q", s)
	}
}

// WriteAcct writes records as an accounting file, one line each.
func WriteAcct(w io.Writer, records []AcctRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if _, err := bw.WriteString(r.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAcct parses an accounting file. Blank lines and lines starting
// with '#' are skipped, matching SGE's comment convention.
func ReadAcct(r io.Reader) ([]AcctRecord, error) {
	var out []AcctRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseAcct(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

package sched

import (
	"math"
	"testing"

	"supremm/internal/workload"
)

func TestPolicyStrings(t *testing.T) {
	if PolicyEASY.String() != "easy" || PolicyFIFO.String() != "fifo" ||
		PolicyComplementary.String() != "complementary" {
		t.Error("policy strings wrong")
	}
	if Policy(9).String() != "policy?" {
		t.Error("unknown policy string")
	}
}

func TestFIFOPolicyNeverBackfills(t *testing.T) {
	c := testCluster(t, 4)
	s := New(c, 0)
	s.Policy = PolicyFIFO
	s.Submit(job(1, 3, 0, 100))
	s.Step(0)
	s.Submit(job(2, 4, 1, 100)) // head, cannot fit
	s.Submit(job(3, 1, 2, 10))  // would backfill under EASY
	started, _ := s.Step(2)
	if len(started) != 0 {
		t.Fatalf("FIFO started %d jobs ahead of the head", len(started))
	}
}

// jobWithApp builds a job bound to a named archetype.
func jobWithApp(id int64, appName string, nodes int, submit, runtime float64) *workload.Job {
	apps := workload.DefaultApps()
	return &workload.Job{
		ID:    id,
		User:  &workload.User{ID: 1, Name: "u", Science: workload.Physics},
		App:   workload.AppByName(apps, appName),
		Nodes: nodes, SubmitMin: submit, RuntimeMin: runtime,
		ReqMin: runtime * 1.2, Status: workload.Completed,
	}
}

func TestComplementaryPolicyPicksTheComplement(t *testing.T) {
	// The cluster is running a heavy-IO job (datamover). Two backfill
	// candidates fit: another datamover (IO-hot) and a milc (network-
	// hot, IO-cold). Complementary must pick milc; EASY would take the
	// first in queue order.
	build := func(policy Policy) int64 {
		c := testCluster(t, 8)
		s := New(c, 0)
		s.Policy = policy
		s.Submit(jobWithApp(1, "datamover", 4, 0, 500))
		s.Step(0)
		s.Submit(jobWithApp(2, "milc", 8, 1, 500))     // head, cannot fit
		s.Submit(jobWithApp(3, "datamover", 2, 2, 50)) // first candidate
		s.Submit(jobWithApp(4, "milc", 2, 3, 50))      // complement
		started, _ := s.Step(3)
		if len(started) == 0 {
			t.Fatalf("policy %v: nothing started", policy)
		}
		// Both candidates may eventually backfill; the policy shows in
		// which one is picked first.
		return started[0].Job.ID
	}
	if got := build(PolicyEASY); got != 3 {
		t.Errorf("EASY picked job %d, want first eligible (3)", got)
	}
	if got := build(PolicyComplementary); got != 4 {
		t.Errorf("complementary picked job %d, want the IO-cold milc (4)", got)
	}
}

func TestComplementaryFallsBackWhenIdle(t *testing.T) {
	// With nothing running, the score is flat zero and the first
	// eligible candidate starts, exactly like EASY.
	c := testCluster(t, 2)
	s := New(c, 0)
	s.Policy = PolicyComplementary
	s.Submit(jobWithApp(1, "milc", 100, 0, 10)) // oversized head
	s.Submit(jobWithApp(2, "namd", 1, 0, 10))
	s.Submit(jobWithApp(3, "namd", 1, 0, 10))
	started, _ := s.Step(0)
	if len(started) == 0 || started[0].Job.ID != 2 {
		t.Fatalf("idle complementary: %+v", started)
	}
}

func TestComputeWaitStats(t *testing.T) {
	mk := func(id int64, nodes int, waitSec int64) AcctRecord {
		nodesList := make([]string, nodes)
		for i := range nodesList {
			nodesList[i] = "n"
		}
		return AcctRecord{
			JobID: id, Submit: 1000, Start: 1000 + waitSec, End: 1000 + waitSec + 600,
			Status: workload.Completed, NodeList: nodesList,
		}
	}
	acct := []AcctRecord{
		mk(1, 1, 60),    // small, 1 min
		mk(2, 4, 600),   // medium, 10 min
		mk(3, 32, 1800), // large, 30 min
		mk(4, 1, 120),   // small, 2 min
	}
	st := ComputeWaitStats(acct)
	if st.Jobs != 4 {
		t.Fatalf("jobs = %d", st.Jobs)
	}
	if math.Abs(st.MeanWaitMin-(1+10+30+2)/4.0) > 1e-9 {
		t.Errorf("mean = %v", st.MeanWaitMin)
	}
	if st.MaxWaitMin != 30 {
		t.Errorf("max = %v", st.MaxWaitMin)
	}
	if math.Abs(st.SmallMeanMin-1.5) > 1e-9 {
		t.Errorf("small mean = %v", st.SmallMeanMin)
	}
	if st.MediumMeanMin != 10 || st.LargeMeanMin != 30 {
		t.Errorf("medium/large = %v/%v", st.MediumMeanMin, st.LargeMeanMin)
	}
	empty := ComputeWaitStats(nil)
	if empty.Jobs != 0 || !math.IsNaN(empty.MeanWaitMin) {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestEASYStillWorksWithPolicyField(t *testing.T) {
	// The refactored backfill loop must preserve the original EASY
	// semantics (regression guard for the policy change).
	c := testCluster(t, 4)
	s := New(c, 0)
	s.Submit(job(1, 3, 0, 100))
	s.Step(0)
	s.Submit(job(2, 4, 1, 100))
	s.Submit(job(3, 1, 2, 50))
	started, _ := s.Step(2)
	if len(started) != 1 || started[0].Job.ID != 3 {
		t.Fatalf("EASY regression: %+v", started)
	}
}

// Package leakcheck is a test helper that fails a test when it leaks
// goroutines. The serve layer's overload controls (admission queue,
// request deadlines, drain) all manage goroutine lifetimes; every
// concurrency test registers a check so a forgotten waiter or an
// abandoned handler shows up as a failure with stack traces, not as a
// slow leak in production.
//
// It lives outside internal/serve so cmd/* tests can use it too, and
// it is test-only by convention: importing it from production code
// would drag testing.TB into the binary.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Check records the current goroutine count and registers a cleanup
// that fails the test if, after a settling window, more goroutines are
// running than at registration. Register it FIRST in the test (cleanups
// run LIFO) so servers and clients registered later are torn down
// before the count is taken.
//
// The settling loop tolerates runtime-managed goroutines finishing
// asynchronously (http connection teardown, timer goroutines): it polls
// until the count returns to the baseline or the window expires.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at exit, %d at start; stacks:\n%s",
			n, base, buf)
	})
}

// Within runs fn and fails the test if it does not return inside d —
// the guard the drain test uses so a stuck shutdown fails fast with a
// message instead of hitting the package test timeout.
func Within(t testing.TB, d time.Duration, what string, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(d):
		t.Fatal(fmt.Sprintf("%s: not done within %v", what, d))
	}
}

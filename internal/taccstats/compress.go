package taccstats

import (
	"compress/gzip"
	"io"
)

// GzipRotate wraps a RotateFunc so raw files are gzip-compressed on the
// way out. The paper reports Ranger's raw volume as 60 GB/month
// uncompressed and 20 GB compressed (§4.1); the deployed tool keeps
// rotated files gzipped for exactly this reason.
// BenchmarkRawVolumeCompressed measures the ratio our format achieves.
func GzipRotate(inner RotateFunc) RotateFunc {
	return func(day int) (io.WriteCloser, error) {
		wc, err := inner(day)
		if err != nil {
			return nil, err
		}
		return &gzipFile{gz: gzip.NewWriter(wc), file: wc}, nil
	}
}

// gzipFile closes both the gzip stream and the underlying file.
type gzipFile struct {
	gz   *gzip.Writer
	file io.WriteCloser
}

// Write implements io.Writer.
func (g *gzipFile) Write(p []byte) (int, error) { return g.gz.Write(p) }

// Close flushes the gzip stream, then closes the file. The first error
// wins but the file is always closed.
func (g *gzipFile) Close() error {
	gzErr := g.gz.Close()
	fileErr := g.file.Close()
	if gzErr != nil {
		return gzErr
	}
	return fileErr
}

// GzipReader wraps a raw-file reader for parsing compressed files:
// ParseFile(GzipReader(f)).
func GzipReader(r io.Reader) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}

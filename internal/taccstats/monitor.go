package taccstats

import (
	"fmt"
	"io"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
)

// RotateFunc supplies the output sink for a given day index (raw files
// are per node per day on the deployed systems). Returning an error
// aborts the sample that triggered rotation.
type RotateFunc func(day int) (io.WriteCloser, error)

// Monitor is the per-node TACC_Stats agent. It samples the node's
// synthetic /proc snapshot at job begin, periodically (every ten minutes
// in the deployed configuration), and at job end; tags records with job
// marks; reprograms the hardware performance counters only at job begin
// (periodic samples read without reprogramming, §3); and rotates output
// daily.
type Monitor struct {
	snap   *procfs.Snapshot
	arch   cluster.Microarch
	rotate RotateFunc

	cur     io.WriteCloser
	w       *Writer
	curDay  int
	started bool

	// SampleIntervalSec is the periodic cadence; 600 in production.
	SampleIntervalSec int64

	totalBytes int64
	samples    int64
}

// NewMonitor creates a monitor over a node snapshot.
func NewMonitor(snap *procfs.Snapshot, arch cluster.Microarch, rotate RotateFunc) *Monitor {
	return &Monitor{
		snap:              snap,
		arch:              arch,
		rotate:            rotate,
		curDay:            -1,
		SampleIntervalSec: 600,
	}
}

// TotalBytes reports raw bytes emitted over the monitor's lifetime,
// including already-rotated files.
func (m *Monitor) TotalBytes() int64 {
	b := m.totalBytes
	if m.w != nil {
		b += m.w.BytesWritten()
	}
	return b
}

// Samples reports how many records have been written.
func (m *Monitor) Samples() int64 { return m.samples }

// ensureFile rotates to the file for the snapshot's current day,
// writing the header block into each new file so every raw file is
// self-describing on its own.
func (m *Monitor) ensureFile() error {
	day := int(m.snap.Time / 86400)
	if m.cur != nil && day == m.curDay {
		return nil
	}
	if err := m.closeCurrent(); err != nil {
		return err
	}
	wc, err := m.rotate(day)
	if err != nil {
		return fmt.Errorf("taccstats: rotate day %d: %w", day, err)
	}
	m.cur = wc
	m.w = NewWriter(wc)
	m.curDay = day
	return m.w.WriteHeader(m.snap, m.arch.String())
}

func (m *Monitor) closeCurrent() error {
	if m.cur == nil {
		return nil
	}
	m.totalBytes += m.w.BytesWritten()
	err := m.cur.Close()
	m.cur, m.w = nil, nil
	return err
}

// BeginJob is invoked by the batch system prolog: it reprograms the
// PMCs (which zeroes the count registers, exactly as reprogramming the
// event-select MSRs does on hardware) and writes a sample marked
// "begin JOBID".
func (m *Monitor) BeginJob(jobID int64) error {
	m.reprogramPMCs()
	return m.writeSample(fmt.Sprintf("begin %d", jobID))
}

// EndJob is invoked by the epilog: a final sample marked "end JOBID".
func (m *Monitor) EndJob(jobID int64) error {
	return m.writeSample(fmt.Sprintf("end %d", jobID))
}

// Sample is the periodic invocation: it only reads counters, never
// reprograms them, "to avoid overriding measurements initiated by
// users" (§3).
func (m *Monitor) Sample() error {
	return m.writeSample("")
}

func (m *Monitor) writeSample(mark string) error {
	if err := m.ensureFile(); err != nil {
		return err
	}
	if err := m.w.WriteRecord(m.snap, mark); err != nil {
		return err
	}
	m.samples++
	m.started = true
	return nil
}

// reprogramPMCs zeroes the hardware performance counter block, the
// observable effect of writing the event-select registers.
func (m *Monitor) reprogramPMCs() {
	typ := procfs.PMCType(m.arch)
	ts := m.snap.Type(typ)
	if ts == nil {
		return
	}
	for _, dev := range ts.Devices() {
		vals := ts.Values(dev)
		for i := range vals {
			vals[i] = 0
		}
	}
}

// Close flushes and closes the current raw file.
func (m *Monitor) Close() error { return m.closeCurrent() }

package taccstats

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedCorpus renders the round-trip fixture plus the malformed-input
// corpus exercised by TestParseRejectsMalformed, so the fuzzer starts
// from both accepting and rejecting paths.
func fuzzSeedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteRecord(snap, "begin 42"); err != nil {
		tb.Fatal(err)
	}
	snap.Time += 600
	if err := w.WriteRecord(snap, ""); err != nil {
		tb.Fatal(err)
	}
	snap.Time += 600
	if err := w.WriteRecord(snap, "end 42"); err != nil {
		tb.Fatal(err)
	}
	header := "$tacc_stats 2.0\n$hostname h\n$arch a\n!cpu user,E,U=cs idle,E\n"
	return [][]byte{
		buf.Bytes(),
		[]byte(header + "100 rotate\ncpu 0 1 2\n\n200\ncpu 0 3 4\n"),
		[]byte(header + "cpu 0 1 2\n"),
		[]byte(header + "100\nmem 0 1 2\n"),
		[]byte(header + "100\ncpu 0 1 2 3\n"),
		[]byte(header + "100\ncpu 0 1 x\n"),
		[]byte(header + "100 weird\n"),
		[]byte(header + "100 begin abc\n"),
		[]byte(header + "100 begin 1 extra\n"),
		[]byte("!cpu\n"),
		[]byte("!cpu user,Z\n"),
		[]byte("$loner\n"),
		[]byte(header + "100\ncpu 0\n"),
	}
}

// FuzzParseFile throws mutated raw files at both parser entry points:
// neither may panic, both must agree on accept/reject, and on accepted
// inputs the streamed records (materialized) must equal the ParseFile
// records exactly.
func FuzzParseFile(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, errFile := ParseFile(bytes.NewReader(data))

		var streamed []Record
		sf, errStream := ParseStream(bytes.NewReader(data), func(rec *Record) error {
			streamed = append(streamed, rec.Materialize())
			return nil
		})

		if (errFile == nil) != (errStream == nil) {
			t.Fatalf("ParseFile err=%v, ParseStream err=%v", errFile, errStream)
		}
		if errFile != nil {
			return
		}
		if pf.Hostname != sf.Hostname || pf.Arch != sf.Arch || pf.Version != sf.Version {
			t.Fatalf("headers differ: %+v vs %+v", pf, sf)
		}
		if !reflect.DeepEqual(pf.Schemas, sf.Schemas) {
			t.Fatalf("schemas differ")
		}
		if len(pf.Records) != len(streamed) {
			t.Fatalf("record counts differ: %d vs %d", len(pf.Records), len(streamed))
		}
		for i := range streamed {
			if !reflect.DeepEqual(pf.Records[i], streamed[i]) {
				t.Fatalf("record %d differs:\n file   %+v\n stream %+v", i, pf.Records[i], streamed[i])
			}
		}
	})
}

package taccstats

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"supremm/internal/faultinject"
)

var updateCorpus = flag.Bool("update-corpus", false,
	"rewrite the committed testdata/fuzz seed corpus from fuzzSeedCorpus")

// fuzzSeedCorpus renders the round-trip fixture plus the malformed-input
// corpus exercised by TestParseRejectsMalformed, so the fuzzer starts
// from both accepting and rejecting paths.
func fuzzSeedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		tb.Fatal(err)
	}
	if err := w.WriteRecord(snap, "begin 42"); err != nil {
		tb.Fatal(err)
	}
	snap.Time += 600
	if err := w.WriteRecord(snap, ""); err != nil {
		tb.Fatal(err)
	}
	snap.Time += 600
	if err := w.WriteRecord(snap, "end 42"); err != nil {
		tb.Fatal(err)
	}
	header := "$tacc_stats 2.0\n$hostname h\n$arch a\n!cpu user,E,U=cs idle,E\n"
	seeds := [][]byte{
		buf.Bytes(),
		[]byte(header + "100 rotate\ncpu 0 1 2\n\n200\ncpu 0 3 4\n"),
		[]byte(header + "cpu 0 1 2\n"),
		[]byte(header + "100\nmem 0 1 2\n"),
		[]byte(header + "100\ncpu 0 1 2 3\n"),
		[]byte(header + "100\ncpu 0 1 x\n"),
		[]byte(header + "100 weird\n"),
		[]byte(header + "100 begin abc\n"),
		[]byte(header + "100 begin 1 extra\n"),
		[]byte("!cpu\n"),
		[]byte("!cpu user,Z\n"),
		[]byte("$loner\n"),
		[]byte(header + "100\ncpu 0\n"),
	}
	return append(seeds, injectedSeeds(tb)...)
}

// injectedSeeds runs the fault injector over a minimal clean archive
// and returns the parse-breaking files it produced (garbled line,
// mid-line truncation), so the fuzzer starts from the injector's real
// corruption shapes rather than hand-written approximations. The
// injector is byte-deterministic, so these seeds are stable.
func injectedSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	src := filepath.Join(tb.TempDir(), "src")
	header := "$tacc_stats 2.0\n$hostname h\n$arch a\n!cpu user,E,U=cs idle,E\n"
	for _, host := range []string{"h0", "h1"} {
		dir := filepath.Join(src, host)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			tb.Fatal(err)
		}
		for day := 0; day < 2; day++ {
			var sb strings.Builder
			sb.WriteString(header)
			for rec := 0; rec < 3; rec++ {
				fmt.Fprintf(&sb, "%d\ncpu 0 %d %d\n", 1000+86400*day+600*rec, rec*5, rec*7)
			}
			name := filepath.Join(dir, fmt.Sprintf("%d.raw", day+1))
			if err := os.WriteFile(name, []byte(sb.String()), 0o644); err != nil {
				tb.Fatal(err)
			}
		}
	}
	dst := filepath.Join(tb.TempDir(), "dst")
	m, err := faultinject.Inject(src, dst, faultinject.Spec{
		Seed:     7,
		HostFrac: 1,
		Kinds:    []faultinject.Kind{faultinject.KindGarble, faultinject.KindTruncate},
	})
	if err != nil {
		tb.Fatal(err)
	}
	var seeds [][]byte
	for _, f := range m.Faults {
		b, err := os.ReadFile(filepath.Join(dst, f.Host, f.File))
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// corpusEntry renders one seed in the `go test fuzz v1` corpus file
// format.
func corpusEntry(seed []byte) string {
	return fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
}

// TestSeedCorpusCommitted pins the committed seed corpus under
// testdata/fuzz/FuzzParseFile to the in-code seeds, so `go test` and
// `make fuzz-smoke` replay them even on machines with an empty fuzz
// cache. Regenerate with -update-corpus after changing fuzzSeedCorpus.
func TestSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzParseFile")
	seeds := fuzzSeedCorpus(t)
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(corpusEntry(seed)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, seed := range seeds {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("corpus file missing (regenerate with -update-corpus): %v", err)
		}
		if want := corpusEntry(seed); string(got) != want {
			t.Errorf("%s is stale (regenerate with -update-corpus):\n got  %q\n want %q",
				name, got, want)
		}
	}
}

// FuzzParseFile throws mutated raw files at both parser entry points:
// neither may panic, both must agree on accept/reject, and on accepted
// inputs the streamed records (materialized) must equal the ParseFile
// records exactly.
func FuzzParseFile(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pf, errFile := ParseFile(bytes.NewReader(data))

		var streamed []Record
		sf, errStream := ParseStream(bytes.NewReader(data), func(rec *Record) error {
			streamed = append(streamed, rec.Materialize())
			return nil
		})

		if (errFile == nil) != (errStream == nil) {
			t.Fatalf("ParseFile err=%v, ParseStream err=%v", errFile, errStream)
		}
		if errFile != nil {
			return
		}
		if pf.Hostname != sf.Hostname || pf.Arch != sf.Arch || pf.Version != sf.Version {
			t.Fatalf("headers differ: %+v vs %+v", pf, sf)
		}
		if !reflect.DeepEqual(pf.Schemas, sf.Schemas) {
			t.Fatalf("schemas differ")
		}
		if len(pf.Records) != len(streamed) {
			t.Fatalf("record counts differ: %d vs %d", len(pf.Records), len(streamed))
		}
		for i := range streamed {
			if !reflect.DeepEqual(pf.Records[i], streamed[i]) {
				t.Fatalf("record %d differs:\n file   %+v\n stream %+v", i, pf.Records[i], streamed[i])
			}
		}
	})
}

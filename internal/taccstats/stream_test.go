package taccstats

import (
	"bytes"
	"strings"
	"testing"

	"supremm/internal/procfs"
)

func TestParseStreamRecordsMatchParseFile(t *testing.T) {
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.WriteRecord(snap, ""); err != nil {
			t.Fatal(err)
		}
		snap.Time += 600
		snap.Add(procfs.TypeCPU, "0", "user", 500)
	}
	data := buf.Bytes()

	pf, err := ParseFile(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var times []int64
	sf, err := ParseStream(bytes.NewReader(data), func(rec *Record) error {
		times = append(times, rec.Time)
		i := len(times) - 1
		// Streamed Get must agree with the materialized record.
		for typ, devs := range pf.Records[i].Data {
			for dev, vals := range devs {
				for ki, want := range vals {
					key := pf.Schemas[typ][ki].Name
					got, ok := rec.Get(pf.Schemas, typ, dev, key)
					if !ok || got != want {
						t.Errorf("rec %d %s/%s/%s = %d (%v), want %d", i, typ, dev, key, got, ok, want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != len(pf.Records) {
		t.Fatalf("streamed %d records, ParseFile %d", len(times), len(pf.Records))
	}
	if sf.Hostname != pf.Hostname || sf.Version != pf.Version {
		t.Errorf("headers differ: %+v vs %+v", sf, pf)
	}
	if len(sf.Records) != 0 {
		t.Errorf("ParseStream must not materialize Records, got %d", len(sf.Records))
	}
}

func TestLayoutColumns(t *testing.T) {
	content := "$tacc_stats 2.0\n!cpu user,E idle,E\n!mem MemUsed,U=KB\n" +
		"100\ncpu 0 1 2\ncpu 1 3 4\nmem 0 500\n" +
		"200\ncpu 0 5 6\ncpu 1 7 8\nmem 0 600\n"
	var lay *Layout
	var lastFlat []uint64
	_, err := ParseStream(strings.NewReader(content), func(rec *Record) error {
		lay = rec.Layout()
		lastFlat = append(lastFlat[:0], rec.Flat()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cols := lay.Columns("cpu", "idle")
	if len(cols) != 2 || cols[0].Dev != "0" || cols[1].Dev != "1" {
		t.Fatalf("cpu idle columns: %+v", cols)
	}
	if lastFlat[cols[0].Col] != 6 || lastFlat[cols[1].Col] != 8 {
		t.Errorf("idle values via columns: %d %d", lastFlat[cols[0].Col], lastFlat[cols[1].Col])
	}
	if c := lay.Column("mem", "0", "MemUsed"); lastFlat[c] != 600 {
		t.Errorf("mem via Column: %d", lastFlat[c])
	}
	// Unknown paths resolve to -1 rather than erroring.
	if c := lay.Column("cpu", "9", "user"); c != -1 {
		t.Errorf("missing dev col = %d", c)
	}
	if c := lay.Column("nope", "0", "user"); c != -1 {
		t.Errorf("missing type col = %d", c)
	}
	if cols := lay.Columns("cpu", "nokey"); len(cols) != 2 || cols[0].Col != -1 {
		t.Errorf("missing key columns: %+v", cols)
	}
}

func TestParseStreamLateDevice(t *testing.T) {
	// A device appearing mid-file grows the layout; earlier records must
	// read absent for it and the new columns must work.
	content := "$tacc_stats 2.0\n!cpu user,E\n" +
		"100\ncpu 0 1\n" +
		"200\ncpu 0 2\ncpu 1 9\n" +
		"300\ncpu 0 3\n"
	var vals []uint64
	var oks []bool
	var versions []int
	_, err := ParseStream(strings.NewReader(content), func(rec *Record) error {
		v, ok := rec.Get(nil, "cpu", "1", "user")
		vals = append(vals, v)
		oks = append(oks, ok)
		versions = append(versions, rec.Layout().Version())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false}
	for i := range want {
		if oks[i] != want[i] {
			t.Errorf("rec %d: dev 1 present = %v, want %v", i, oks[i], want[i])
		}
	}
	if vals[1] != 9 {
		t.Errorf("rec 1: dev 1 user = %d", vals[1])
	}
	if versions[0] == versions[1] {
		t.Error("layout version must bump when a device appears")
	}
	if versions[1] != versions[2] {
		t.Error("layout version must be stable once devices are known")
	}
}

func TestParseStreamCallbackError(t *testing.T) {
	content := "$tacc_stats 2.0\n!cpu user,E\n100\ncpu 0 1\n200\ncpu 0 2\n"
	calls := 0
	_, err := ParseStream(strings.NewReader(content), func(rec *Record) error {
		calls++
		return errStop
	})
	if err != errStop {
		t.Fatalf("err = %v, want errStop", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (abort on first error)", calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestMaterializeDetachesFromParserBuffers(t *testing.T) {
	content := "$tacc_stats 2.0\n!cpu user,E\n100\ncpu 0 1\n200\ncpu 0 2\n"
	var mats []Record
	_, err := ParseStream(strings.NewReader(content), func(rec *Record) error {
		mats = append(mats, rec.Materialize())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The parser reuses its flat buffer; materialized copies must keep
	// the values they had at callback time.
	if v := mats[0].Data["cpu"]["0"][0]; v != 1 {
		t.Errorf("rec 0 user = %d, want 1", v)
	}
	if v := mats[1].Data["cpu"]["0"][0]; v != 2 {
		t.Errorf("rec 1 user = %d, want 2", v)
	}
}

package taccstats

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
)

func TestGzipRotateRoundTrip(t *testing.T) {
	cfg := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cfg, "gz-node")
	snap.Time = 100

	var buf bytes.Buffer
	rotate := GzipRotate(func(day int) (io.WriteCloser, error) {
		return nopCloser{&buf}, nil
	})
	m := NewMonitor(snap, cfg.Arch, rotate)
	if err := m.BeginJob(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		snap.Time += 600
		snap.Add(procfs.TypeCPU, "0", "user", 50000)
		if err := m.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The buffer holds gzip data, not plain text.
	if bytes.HasPrefix(buf.Bytes(), []byte("$tacc_stats")) {
		t.Fatal("output not compressed")
	}
	zr, err := GzipReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer zr.Close()
	f, err := ParseFile(zr)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hostname != "gz-node" || len(f.Records) != 11 {
		t.Errorf("parsed %d records for %q", len(f.Records), f.Hostname)
	}
}

func TestGzipCompressionRatio(t *testing.T) {
	// The paper's 60 GB -> 20 GB monthly volume implies ~3x; our format
	// with realistic counter magnitudes should do at least that.
	cfg := cluster.RangerConfig()
	write := func(rotate RotateFunc) {
		snap := procfs.NewNodeSnapshot(cfg, "node")
		snap.Time = 1306886400
		m := NewMonitor(snap, cfg.Arch, rotate)
		for i := 0; i < 144; i++ {
			snap.Time += 600
			for c := 0; c < 16; c++ {
				dev := snap.Type(procfs.TypeCPU).Devices()[c]
				snap.Add(procfs.TypeCPU, dev, "user", 53000)
				snap.Add(procfs.TypeCPU, dev, "idle", 7000)
			}
			snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 18_000_000_000)
			snap.Add(procfs.TypeLlite, "scratch", "write_bytes", 900_000_000)
			if err := m.Sample(); err != nil {
				t.Fatal(err)
			}
		}
		m.Close()
	}
	var plain, compressed bytes.Buffer
	write(func(day int) (io.WriteCloser, error) { return nopCloser{&plain}, nil })
	write(GzipRotate(func(day int) (io.WriteCloser, error) { return nopCloser{&compressed}, nil }))
	ratio := float64(plain.Len()) / float64(compressed.Len())
	if ratio < 3 {
		t.Errorf("compression ratio = %.2f, want >= 3 (paper: 60->20 GB)", ratio)
	}
}

func TestGzipRotateInnerError(t *testing.T) {
	boom := errors.New("nope")
	rotate := GzipRotate(func(day int) (io.WriteCloser, error) { return nil, boom })
	if _, err := rotate(0); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestGzipReaderRejectsPlainText(t *testing.T) {
	if _, err := GzipReader(bytes.NewReader([]byte("$tacc_stats 2.0\n"))); err == nil {
		t.Error("plain text should not gunzip")
	}
}

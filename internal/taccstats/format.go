// Package taccstats reproduces the TACC_Stats resource monitor (§3): a
// single agent that samples every performance-measurement function of
// sysstat and more, outputs a unified, self-describing plain-text format,
// is batch-job aware (records are tagged with the job ID, with explicit
// begin/end marks), reprograms hardware performance counters at job start
// and only reads them at periodic samples, and rotates raw files daily.
//
// The on-disk format follows the deployed tool's layout:
//
//	$tacc_stats 2.0
//	$hostname c101-301.ranger
//	$arch amd64_opteron
//	!cpu user,E,U=cs nice,E,U=cs ...
//	!mem MemTotal,U=KB MemUsed,U=KB ...
//	1307000600 begin 123456
//	cpu 0 4000 0 100 59000 20 0 0
//	mem 0 8388608 524288 ...
//	1307001200
//	cpu 0 4400 0 110 64800 22 0 0
//	...
//	1307036600 end 123456
//
// Header lines begin with '$', schema lines with '!', a record starts
// with a timestamp line (optionally carrying a job mark) and continues
// with "type device value..." lines until the next timestamp.
package taccstats

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supremm/internal/procfs"
)

// FormatVersion is written in the file preamble.
const FormatVersion = "2.0"

// Writer emits the raw TACC_Stats format for one node.
type Writer struct {
	w       *bufio.Writer
	written int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// BytesWritten reports the bytes emitted so far (§3's data volume
// accounting: ~0.5 MB per node per day on Ranger).
func (w *Writer) BytesWritten() int64 { return w.written }

// WriteHeader emits the preamble and the schema block for every stat
// type registered in the snapshot, in registration order.
func (w *Writer) WriteHeader(snap *procfs.Snapshot, arch string) error {
	if err := w.printf("$tacc_stats %s\n", FormatVersion); err != nil {
		return err
	}
	if err := w.printf("$hostname %s\n", snap.Hostname); err != nil {
		return err
	}
	if err := w.printf("$arch %s\n", arch); err != nil {
		return err
	}
	for _, name := range snap.TypeNames() {
		ts := snap.Type(name)
		parts := make([]string, len(ts.Schema))
		for i, k := range ts.Schema {
			parts[i] = k.String()
		}
		if err := w.printf("!%s %s\n", name, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// WriteRecord emits one full sample of every registered type. mark is
// "" for periodic samples, or "begin JOBID" / "end JOBID" / "rotate" for
// the job-aware markers.
func (w *Writer) WriteRecord(snap *procfs.Snapshot, mark string) error {
	if mark != "" {
		if err := w.printf("%d %s\n", snap.Time, mark); err != nil {
			return err
		}
	} else {
		if err := w.printf("%d\n", snap.Time); err != nil {
			return err
		}
	}
	var sb strings.Builder
	for _, name := range snap.TypeNames() {
		ts := snap.Type(name)
		for _, dev := range ts.Devices() {
			sb.Reset()
			sb.WriteString(name)
			sb.WriteByte(' ')
			sb.WriteString(dev)
			for _, v := range ts.Values(dev) {
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(v, 10))
			}
			sb.WriteByte('\n')
			if err := w.printString(sb.String()); err != nil {
				return err
			}
		}
	}
	return w.w.Flush()
}

func (w *Writer) printf(format string, args ...any) error {
	n, err := fmt.Fprintf(w.w, format, args...)
	w.written += int64(n)
	return err
}

func (w *Writer) printString(s string) error {
	n, err := w.w.WriteString(s)
	w.written += int64(n)
	return err
}

// Record is one parsed sample: a timestamp, an optional job mark, and
// the counter values. Records built by ParseFile carry the nested Data
// view; records delivered by ParseStream instead store their values in a
// flat array described by the per-file Layout (see Flat/Layout) and have
// a nil Data map.
type Record struct {
	Time int64
	// Mark is "", "begin", "end" or "rotate".
	Mark string
	// JobID accompanies begin/end marks.
	JobID int64
	Data  map[string]map[string][]uint64

	// Streaming representation: flat values at layout-assigned columns,
	// with per-(type,device) presence bits.
	flat    []uint64
	present []bool
	layout  *Layout
}

// Layout returns the per-file column layout backing a streamed record,
// or nil for records holding the nested Data view.
func (r *Record) Layout() *Layout { return r.layout }

// Flat returns the flat value array of a streamed record, indexed by the
// columns its Layout assigns. Absent devices read zero. The slice is
// reused by the parser and only valid until the ParseStream callback
// returns.
func (r *Record) Flat() []uint64 { return r.flat }

// Materialize returns a deep, self-contained copy of the record with the
// nested Data view populated; safe to retain after the ParseStream
// callback returns.
func (r *Record) Materialize() Record {
	out := Record{Time: r.Time, Mark: r.Mark, JobID: r.JobID}
	if r.layout == nil {
		out.Data = r.Data
		return out
	}
	out.Data = make(map[string]map[string][]uint64)
	for i, s := range r.layout.slots {
		if i >= len(r.present) || !r.present[i] {
			continue
		}
		w := len(s.t.schema)
		vals := make([]uint64, w)
		copy(vals, r.flat[s.off:s.off+w])
		devs := out.Data[s.t.name]
		if devs == nil {
			devs = make(map[string][]uint64)
			out.Data[s.t.name] = devs
		}
		devs[s.dev] = vals
	}
	return out
}

// File is a fully parsed raw file.
type File struct {
	Hostname string
	Arch     string
	Version  string
	Schemas  map[string]procfs.Schema
	Records  []Record
}

// ParseFile reads a complete raw file, materializing every record. It is
// a compatibility wrapper over the streaming fast path (ParseStream).
func ParseFile(r io.Reader) (*File, error) {
	var recs []Record
	f, err := ParseStream(r, func(rec *Record) error {
		recs = append(recs, rec.Materialize())
		return nil
	})
	if err != nil {
		return nil, err
	}
	f.Records = recs
	return f, nil
}

// parseSchemaLine parses "!name key[,E][,U=unit] ..." by walking the
// line's bytes in place; the only copies made are the name, key and
// unit strings the schema retains.
func parseSchemaLine(line []byte) (string, procfs.Schema, error) {
	body := line[1:]
	i := 0
	nameTok := nextField(body, &i)
	var schema procfs.Schema
	for {
		spec := nextField(body, &i)
		if spec == nil {
			break
		}
		k, err := parseKeySpec(spec)
		if err != nil {
			return "", nil, err
		}
		schema = append(schema, k)
	}
	if nameTok == nil || len(schema) == 0 {
		return "", nil, fmt.Errorf("malformed schema %q", line)
	}
	name := string(nameTok) //supremmlint:allow hotalloc: schema name is retained, once per schema line
	return name, schema, nil
}

// parseKeySpec parses one "key[,E][,U=unit]" schema column descriptor.
func parseKeySpec(spec []byte) (procfs.Key, error) {
	var k procfs.Key
	j := bytes.IndexByte(spec, ',')
	if j < 0 {
		k.Name = string(spec) //supremmlint:allow hotalloc: key name is retained by the schema
		return k, nil
	}
	k.Name = string(spec[:j]) //supremmlint:allow hotalloc: key name is retained by the schema
	rest := spec[j+1:]
	for {
		var p []byte
		if c := bytes.IndexByte(rest, ','); c >= 0 {
			p, rest = rest[:c], rest[c+1:]
		} else {
			p, rest = rest, nil
		}
		switch {
		case len(p) == 1 && p[0] == 'E':
			k.Class = procfs.Event
		case len(p) >= 2 && p[0] == 'U' && p[1] == '=':
			k.Unit = string(p[2:]) //supremmlint:allow hotalloc: unit string is retained by the schema
		default:
			return procfs.Key{}, fmt.Errorf("unknown key annotation %q in %q", p, spec)
		}
		if rest == nil {
			return k, nil
		}
	}
}

// Get reads one value from a record; missing entries read 0 with
// ok=false. Streamed records resolve through their Layout (ignoring
// schemas); materialized records resolve through the nested maps.
func (r *Record) Get(schemas map[string]procfs.Schema, typ, dev, key string) (uint64, bool) {
	if r.layout != nil {
		tc := r.layout.byName[typ]
		if tc == nil {
			return 0, false
		}
		di, ok := tc.byDev[dev]
		if !ok {
			return 0, false
		}
		d := tc.devs[di]
		if d.slot >= len(r.present) || !r.present[d.slot] {
			return 0, false
		}
		ki, ok := tc.keyIdx[key]
		if !ok {
			return 0, false
		}
		return r.flat[d.off+ki], true
	}
	devs, ok := r.Data[typ]
	if !ok {
		return 0, false
	}
	vals, ok := devs[dev]
	if !ok {
		return 0, false
	}
	schema, ok := schemas[typ]
	if !ok {
		return 0, false
	}
	i := schema.Index(key)
	if i < 0 || i >= len(vals) {
		return 0, false
	}
	return vals[i], true
}

// Package taccstats reproduces the TACC_Stats resource monitor (§3): a
// single agent that samples every performance-measurement function of
// sysstat and more, outputs a unified, self-describing plain-text format,
// is batch-job aware (records are tagged with the job ID, with explicit
// begin/end marks), reprograms hardware performance counters at job start
// and only reads them at periodic samples, and rotates raw files daily.
//
// The on-disk format follows the deployed tool's layout:
//
//	$tacc_stats 2.0
//	$hostname c101-301.ranger
//	$arch amd64_opteron
//	!cpu user,E,U=cs nice,E,U=cs ...
//	!mem MemTotal,U=KB MemUsed,U=KB ...
//	1307000600 begin 123456
//	cpu 0 4000 0 100 59000 20 0 0
//	mem 0 8388608 524288 ...
//	1307001200
//	cpu 0 4400 0 110 64800 22 0 0
//	...
//	1307036600 end 123456
//
// Header lines begin with '$', schema lines with '!', a record starts
// with a timestamp line (optionally carrying a job mark) and continues
// with "type device value..." lines until the next timestamp.
package taccstats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"supremm/internal/procfs"
)

// FormatVersion is written in the file preamble.
const FormatVersion = "2.0"

// Writer emits the raw TACC_Stats format for one node.
type Writer struct {
	w       *bufio.Writer
	written int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// BytesWritten reports the bytes emitted so far (§3's data volume
// accounting: ~0.5 MB per node per day on Ranger).
func (w *Writer) BytesWritten() int64 { return w.written }

// WriteHeader emits the preamble and the schema block for every stat
// type registered in the snapshot, in registration order.
func (w *Writer) WriteHeader(snap *procfs.Snapshot, arch string) error {
	if err := w.printf("$tacc_stats %s\n", FormatVersion); err != nil {
		return err
	}
	if err := w.printf("$hostname %s\n", snap.Hostname); err != nil {
		return err
	}
	if err := w.printf("$arch %s\n", arch); err != nil {
		return err
	}
	for _, name := range snap.TypeNames() {
		ts := snap.Type(name)
		parts := make([]string, len(ts.Schema))
		for i, k := range ts.Schema {
			parts[i] = k.String()
		}
		if err := w.printf("!%s %s\n", name, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// WriteRecord emits one full sample of every registered type. mark is
// "" for periodic samples, or "begin JOBID" / "end JOBID" / "rotate" for
// the job-aware markers.
func (w *Writer) WriteRecord(snap *procfs.Snapshot, mark string) error {
	if mark != "" {
		if err := w.printf("%d %s\n", snap.Time, mark); err != nil {
			return err
		}
	} else {
		if err := w.printf("%d\n", snap.Time); err != nil {
			return err
		}
	}
	var sb strings.Builder
	for _, name := range snap.TypeNames() {
		ts := snap.Type(name)
		for _, dev := range ts.Devices() {
			sb.Reset()
			sb.WriteString(name)
			sb.WriteByte(' ')
			sb.WriteString(dev)
			for _, v := range ts.Values(dev) {
				sb.WriteByte(' ')
				sb.WriteString(strconv.FormatUint(v, 10))
			}
			sb.WriteByte('\n')
			if err := w.printString(sb.String()); err != nil {
				return err
			}
		}
	}
	return w.w.Flush()
}

func (w *Writer) printf(format string, args ...any) error {
	n, err := fmt.Fprintf(w.w, format, args...)
	w.written += int64(n)
	return err
}

func (w *Writer) printString(s string) error {
	n, err := w.w.WriteString(s)
	w.written += int64(n)
	return err
}

// Record is one parsed sample: a timestamp, an optional job mark, and
// the value vectors keyed by type then device.
type Record struct {
	Time int64
	// Mark is "", "begin", "end" or "rotate".
	Mark string
	// JobID accompanies begin/end marks.
	JobID int64
	Data  map[string]map[string][]uint64
}

// File is a fully parsed raw file.
type File struct {
	Hostname string
	Arch     string
	Version  string
	Schemas  map[string]procfs.Schema
	Records  []Record
}

// ParseFile reads a complete raw file.
func ParseFile(r io.Reader) (*File, error) {
	f := &File{Schemas: make(map[string]procfs.Schema)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)

	var cur *Record
	lineNo := 0
	flush := func() {
		if cur != nil {
			f.Records = append(f.Records, *cur)
			cur = nil
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case '$':
			if err := f.parseHeader(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case '!':
			name, schema, err := parseSchemaLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			f.Schemas[name] = schema
		default:
			if line[0] >= '0' && line[0] <= '9' {
				// Timestamp line: new record.
				flush()
				rec, err := parseTimestampLine(line)
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				cur = rec
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("line %d: data before first timestamp", lineNo)
			}
			if err := parseDataLine(line, f.Schemas, cur); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return f, nil
}

func (f *File) parseHeader(line string) error {
	fields := strings.SplitN(line[1:], " ", 2)
	if len(fields) != 2 {
		return fmt.Errorf("malformed header %q", line)
	}
	switch fields[0] {
	case "tacc_stats":
		f.Version = fields[1]
	case "hostname":
		f.Hostname = fields[1]
	case "arch":
		f.Arch = fields[1]
	default:
		// Unknown headers are tolerated (forward compatibility), as the
		// deployed parser does.
	}
	return nil
}

func parseSchemaLine(line string) (string, procfs.Schema, error) {
	fields := strings.Fields(line[1:])
	if len(fields) < 2 {
		return "", nil, fmt.Errorf("malformed schema %q", line)
	}
	name := fields[0]
	schema := make(procfs.Schema, 0, len(fields)-1)
	for _, spec := range fields[1:] {
		parts := strings.Split(spec, ",")
		k := procfs.Key{Name: parts[0]}
		for _, p := range parts[1:] {
			switch {
			case p == "E":
				k.Class = procfs.Event
			case strings.HasPrefix(p, "U="):
				k.Unit = p[2:]
			default:
				return "", nil, fmt.Errorf("unknown key annotation %q in %q", p, spec)
			}
		}
		schema = append(schema, k)
	}
	return name, schema, nil
}

func parseTimestampLine(line string) (*Record, error) {
	fields := strings.Fields(line)
	ts, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad timestamp %q", fields[0])
	}
	rec := &Record{Time: ts, Data: make(map[string]map[string][]uint64)}
	switch len(fields) {
	case 1:
	case 2:
		if fields[1] != "rotate" {
			return nil, fmt.Errorf("unknown bare mark %q", fields[1])
		}
		rec.Mark = fields[1]
	case 3:
		if fields[1] != "begin" && fields[1] != "end" {
			return nil, fmt.Errorf("unknown job mark %q", fields[1])
		}
		rec.Mark = fields[1]
		id, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad job id %q", fields[2])
		}
		rec.JobID = id
	default:
		return nil, fmt.Errorf("malformed timestamp line %q", line)
	}
	return rec, nil
}

func parseDataLine(line string, schemas map[string]procfs.Schema, rec *Record) error {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return fmt.Errorf("malformed data line %q", line)
	}
	typ, dev := fields[0], fields[1]
	schema, ok := schemas[typ]
	if !ok {
		return fmt.Errorf("data for undeclared type %q", typ)
	}
	if len(fields)-2 != len(schema) {
		return fmt.Errorf("type %q: %d values for %d-key schema", typ, len(fields)-2, len(schema))
	}
	vals := make([]uint64, len(schema))
	for i, s := range fields[2:] {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %v", s, err)
		}
		vals[i] = v
	}
	devs := rec.Data[typ]
	if devs == nil {
		devs = make(map[string][]uint64)
		rec.Data[typ] = devs
	}
	devs[dev] = vals
	return nil
}

// Get reads one value from a record; missing entries read 0 with ok=false.
func (r *Record) Get(schemas map[string]procfs.Schema, typ, dev, key string) (uint64, bool) {
	devs, ok := r.Data[typ]
	if !ok {
		return 0, false
	}
	vals, ok := devs[dev]
	if !ok {
		return 0, false
	}
	schema, ok := schemas[typ]
	if !ok {
		return 0, false
	}
	i := schema.Index(key)
	if i < 0 || i >= len(vals) {
		return 0, false
	}
	return vals[i], true
}

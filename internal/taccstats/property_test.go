package taccstats

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"supremm/internal/procfs"
)

// TestFormatPropertyRoundTrip fuzzes random schemas, devices and values
// through the writer and parser: whatever is written must parse back
// identically.
func TestFormatPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, nTypes, nDevs, nKeys uint8, jobID int64) bool {
		rng := rand.New(rand.NewSource(seed))
		types := int(nTypes)%4 + 1
		devs := int(nDevs)%3 + 1
		keys := int(nKeys)%5 + 1
		if jobID < 0 {
			jobID = -jobID
		}

		type path struct{ typ, dev, key string }
		snap := procfs.NewSnapshot("fuzz-host")
		snap.Time = 1 + rng.Int63n(1e9)
		expect := make(map[path]uint64)
		for ti := 0; ti < types; ti++ {
			typ := fmt.Sprintf("type%d", ti)
			schema := make(procfs.Schema, keys)
			for ki := range schema {
				class := procfs.Gauge
				if ki%2 == 0 {
					class = procfs.Event
				}
				unit := ""
				if ki%3 == 0 {
					unit = "KB"
				}
				schema[ki] = procfs.Key{Name: fmt.Sprintf("k%d", ki), Class: class, Unit: unit}
			}
			snap.Register(typ, schema)
			for di := 0; di < devs; di++ {
				dev := fmt.Sprintf("d%d", di)
				for ki := range schema {
					v := rng.Uint64()
					snap.Set(typ, dev, schema[ki].Name, v)
					expect[path{typ, dev, schema[ki].Name}] = v
				}
			}
		}

		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteHeader(snap, "fuzz_arch"); err != nil {
			return false
		}
		if err := w.WriteRecord(snap, fmt.Sprintf("begin %d", jobID)); err != nil {
			return false
		}
		parsed, err := ParseFile(&buf)
		if err != nil {
			return false
		}
		if parsed.Hostname != "fuzz-host" || len(parsed.Records) != 1 {
			return false
		}
		rec := parsed.Records[0]
		if rec.Time != snap.Time || rec.Mark != "begin" || rec.JobID != jobID {
			return false
		}
		for p, want := range expect {
			got, ok := rec.Get(parsed.Schemas, p.typ, p.dev, p.key)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestParsePropertyNeverPanics throws random byte soup at the parser:
// it may reject, but must never panic.
func TestParsePropertyNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseFile(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParsePropertyStructuredGarbage mutates a valid file and checks
// the parser either accepts or rejects cleanly.
func TestParsePropertyStructuredGarbage(t *testing.T) {
	base := "$tacc_stats 2.0\n$hostname h\n!cpu user,E idle,E\n100\ncpu 0 1 2\n200\ncpu 0 3 4\n"
	f := func(pos uint16, b byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		data := []byte(base)
		data[int(pos)%len(data)] = b
		_, _ = ParseFile(bytes.NewReader(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package taccstats

import (
	"bytes"
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
)

func rangerSnap() *procfs.Snapshot {
	cfg := cluster.RangerConfig()
	s := procfs.NewNodeSnapshot(cfg, "c001-001.ranger")
	s.Time = 1307000600
	s.Add(procfs.TypeCPU, "0", "user", 4000)
	s.Add(procfs.TypeCPU, "0", "idle", 59000)
	s.Set(procfs.TypeMem, "0", "MemUsed", 4_000_000)
	s.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 123456789)
	s.Add(procfs.TypeLlite, "scratch", "write_bytes", 987654321)
	s.Add(procfs.TypeAMDPMC, "0", "FLOPS", 42)
	return s
}

func TestWriteAndParseRoundTrip(t *testing.T) {
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(snap, "begin 42"); err != nil {
		t.Fatal(err)
	}
	snap.Time += 600
	snap.Add(procfs.TypeCPU, "0", "user", 500)
	if err := w.WriteRecord(snap, ""); err != nil {
		t.Fatal(err)
	}
	snap.Time += 600
	if err := w.WriteRecord(snap, "end 42"); err != nil {
		t.Fatal(err)
	}

	f, err := ParseFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Hostname != "c001-001.ranger" || f.Arch != "amd64_opteron" || f.Version != FormatVersion {
		t.Errorf("header: %+v", f)
	}
	if len(f.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(f.Records))
	}
	r0, r1, r2 := f.Records[0], f.Records[1], f.Records[2]
	if r0.Mark != "begin" || r0.JobID != 42 {
		t.Errorf("r0 mark: %+v", r0)
	}
	if r1.Mark != "" || r1.JobID != 0 {
		t.Errorf("r1 mark: %+v", r1)
	}
	if r2.Mark != "end" || r2.JobID != 42 {
		t.Errorf("r2 mark: %+v", r2)
	}
	if r1.Time-r0.Time != 600 {
		t.Errorf("timestamps: %d %d", r0.Time, r1.Time)
	}
	// Counter values round trip.
	v, ok := r0.Get(f.Schemas, procfs.TypeCPU, "0", "user")
	if !ok || v != 4000 {
		t.Errorf("r0 cpu user = %d (%v)", v, ok)
	}
	v, ok = r1.Get(f.Schemas, procfs.TypeCPU, "0", "user")
	if !ok || v != 4500 {
		t.Errorf("r1 cpu user = %d (%v)", v, ok)
	}
	v, ok = r0.Get(f.Schemas, procfs.TypeIB, "mlx4_0.1", "tx_bytes")
	if !ok || v != 123456789 {
		t.Errorf("ib tx = %d (%v)", v, ok)
	}
	// Schema annotations survive.
	cpuSchema := f.Schemas[procfs.TypeCPU]
	if cpuSchema.Index("idle") != 3 {
		t.Errorf("cpu schema order lost: %+v", cpuSchema)
	}
	if cpuSchema[0].Class != procfs.Event || cpuSchema[0].Unit != "cs" {
		t.Errorf("cpu user key annotations lost: %+v", cpuSchema[0])
	}
	memSchema := f.Schemas[procfs.TypeMem]
	if memSchema[0].Class != procfs.Gauge || memSchema[0].Unit != "KB" {
		t.Errorf("mem key annotations lost: %+v", memSchema[0])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	header := "$tacc_stats 2.0\n$hostname h\n$arch a\n!cpu user,E idle,E\n"
	bad := []struct {
		name, content string
	}{
		{"data before timestamp", header + "cpu 0 1 2\n"},
		{"undeclared type", header + "100\nmem 0 1 2\n"},
		{"value count mismatch", header + "100\ncpu 0 1 2 3\n"},
		{"bad value", header + "100\ncpu 0 1 x\n"},
		{"bad timestamp mark", header + "100 weird\n"},
		{"bad job id", header + "100 begin abc\n"},
		{"overlong timestamp line", header + "100 begin 1 extra\n"},
		{"malformed schema", "!cpu\n"},
		{"unknown key annotation", "!cpu user,Z\n"},
		{"malformed header", "$loner\n"},
		{"short data line", header + "100\ncpu 0\n"},
	}
	for _, c := range bad {
		if _, err := ParseFile(strings.NewReader(c.content)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseToleratesUnknownHeadersAndBlanks(t *testing.T) {
	content := "$tacc_stats 2.0\n$hostname h\n$future stuff\n\n!cpu user,E\n100\ncpu 0 7\n\n"
	f, err := ParseFile(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 1 {
		t.Fatalf("records = %d", len(f.Records))
	}
	if v, ok := f.Records[0].Get(f.Schemas, "cpu", "0", "user"); !ok || v != 7 {
		t.Errorf("value = %d (%v)", v, ok)
	}
}

func TestRotateMark(t *testing.T) {
	content := "$tacc_stats 2.0\n!cpu user,E\n100 rotate\ncpu 0 1\n"
	f, err := ParseFile(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if f.Records[0].Mark != "rotate" {
		t.Errorf("mark = %q", f.Records[0].Mark)
	}
}

func TestRecordGetMisses(t *testing.T) {
	content := "$tacc_stats 2.0\n!cpu user,E\n100\ncpu 0 1\n"
	f, err := ParseFile(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	r := f.Records[0]
	if _, ok := r.Get(f.Schemas, "mem", "0", "MemUsed"); ok {
		t.Error("missing type should not be ok")
	}
	if _, ok := r.Get(f.Schemas, "cpu", "9", "user"); ok {
		t.Error("missing device should not be ok")
	}
	if _, ok := r.Get(f.Schemas, "cpu", "0", "nokey"); ok {
		t.Error("missing key should not be ok")
	}
}

func TestWriterByteAccounting(t *testing.T) {
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(snap, ""); err != nil {
		t.Fatal(err)
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Errorf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
}

func TestSelfDescribingFormatIsPlainText(t *testing.T) {
	// §3: "unified, consistent, and self-describing plain-text format".
	snap := rangerSnap()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(snap, ""); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf.Bytes() {
		if b != '\n' && (b < 0x20 || b > 0x7e) {
			t.Fatalf("non-printable byte %#x in output", b)
		}
	}
	// Every registered type has a schema line.
	text := buf.String()
	for _, typ := range snap.TypeNames() {
		if !strings.Contains(text, "!"+typ+" ") {
			t.Errorf("missing schema line for %q", typ)
		}
	}
}

package taccstats

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"supremm/internal/procfs"
)

// Layout assigns every (type, device) pair that appears in one raw file
// a fixed column range inside a flat per-record value array. It is built
// incrementally while streaming: a type's schema line declares its keys,
// and a device claims its columns the first time it appears in a data
// line. Type and device names are interned once per file, so the hot
// parse loop performs no string allocation, and consumers can compile
// (type, device, key) paths down to plain integer indices once per file
// (the "schema compilation" the ingest metric plan performs).
type Layout struct {
	byName  map[string]*typeCols
	slots   []slotRef
	width   int
	version int
}

type typeCols struct {
	name   string
	schema procfs.Schema
	keyIdx map[string]int
	devs   []devCols
	byDev  map[string]int
}

type devCols struct {
	dev  string
	off  int
	slot int
}

// slotRef identifies one (type, device) presence slot; records track
// per-slot presence so absent devices stay distinguishable from zeros.
type slotRef struct {
	t   *typeCols
	dev string
	off int
}

func newLayout() *Layout {
	return &Layout{byName: make(map[string]*typeCols)}
}

// Version increments whenever a new type or device claims columns;
// compiled plans use it to detect that they must be rebuilt.
func (l *Layout) Version() int { return l.version }

// Width is the current length of the flat value array.
func (l *Layout) Width() int { return l.width }

// ColRef locates one key of one device in a record's flat value array.
type ColRef struct {
	Dev string
	Col int // index into Record.Flat; -1 when the key is absent
}

// Columns returns a ColRef for key on every device of typ seen so far,
// in first-appearance order. Devices whose schema lacks the key get
// Col = -1 so callers can still enumerate them by name.
func (l *Layout) Columns(typ, key string) []ColRef {
	tc := l.byName[typ]
	if tc == nil {
		return nil
	}
	ki, ok := tc.keyIdx[key]
	out := make([]ColRef, 0, len(tc.devs))
	for _, d := range tc.devs {
		col := -1
		if ok {
			col = d.off + ki
		}
		out = append(out, ColRef{Dev: d.dev, Col: col})
	}
	return out
}

// Column returns the flat index of (typ, dev, key), or -1 if any part of
// the path is unknown to this layout.
func (l *Layout) Column(typ, dev, key string) int {
	tc := l.byName[typ]
	if tc == nil {
		return -1
	}
	ki, ok := tc.keyIdx[key]
	if !ok {
		return -1
	}
	di, ok := tc.byDev[dev]
	if !ok {
		return -1
	}
	return tc.devs[di].off + ki
}

// registerType declares typ's schema. Re-declaring an identical schema
// is a no-op; a changed schema starts a fresh column block so columns
// already assigned keep their meaning for records parsed earlier.
func (l *Layout) registerType(name string, schema procfs.Schema) {
	if tc := l.byName[name]; tc != nil && schemasEqual(tc.schema, schema) {
		return
	}
	tc := &typeCols{
		name:   name,
		schema: schema,
		keyIdx: make(map[string]int, len(schema)),
		byDev:  make(map[string]int),
	}
	for i, k := range schema {
		if _, dup := tc.keyIdx[k.Name]; !dup {
			tc.keyIdx[k.Name] = i // first occurrence wins, like Schema.Index
		}
	}
	l.byName[name] = tc
	l.version++
}

// ensureDev returns the presence slot and column offset for dev,
// claiming new columns on first appearance.
func (tc *typeCols) ensureDev(l *Layout, dev []byte) (slot, off int) {
	if i, ok := tc.byDev[string(dev)]; ok {
		d := tc.devs[i]
		return d.slot, d.off
	}
	name := string(dev) //supremmlint:allow hotalloc: device name interned once on first appearance
	d := devCols{dev: name, off: l.width, slot: len(l.slots)}
	tc.byDev[name] = len(tc.devs)
	tc.devs = append(tc.devs, d)
	l.slots = append(l.slots, slotRef{t: tc, dev: name, off: d.off})
	l.width += len(tc.schema)
	l.version++
	return d.slot, d.off
}

func schemasEqual(a, b procfs.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ParseStream reads a raw file record by record, invoking fn for each
// complete record in file order. The Record passed to fn stores its
// values in a flat array described by its Layout and is reused between
// calls: it, its Flat array and its Layout-resolved reads are only valid
// until fn returns — callers that retain data must copy it (or call
// Materialize). The returned File carries the header fields and schemas
// but no Records.
//
// This is the zero-allocation fast path: data lines are tokenized in
// place from the scanner's byte buffer, values are parsed without any
// intermediate strings, and after the per-file layout has seen every
// (type, device) pair the steady-state loop allocates nothing.
func ParseStream(r io.Reader, fn func(*Record) error) (*File, error) {
	f := &File{Schemas: make(map[string]procfs.Schema)}
	lay := newLayout()
	sc := bufio.NewScanner(r)
	// Start small; the scanner grows on demand up to 16 MB for
	// pathological lines, so steady-state memory stays near one line.
	sc.Buffer(make([]byte, 64<<10), 16<<20)

	rec := Record{layout: lay}
	var flat []uint64
	var present []bool
	inRec := false
	lineNo := 0

	emit := func() error {
		if !inRec {
			return nil
		}
		inRec = false
		rec.flat = flat[:lay.width]
		rec.present = present
		return fn(&rec)
	}

	for sc.Scan() {
		lineNo++
		line := trimASCII(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		switch {
		case line[0] == '$':
			if err := f.parseHeaderBytes(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case line[0] == '!':
			name, schema, err := parseSchemaLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			f.Schemas[name] = schema
			lay.registerType(name, schema)
		case line[0] >= '0' && line[0] <= '9':
			// Timestamp line: deliver the previous record, start a new one.
			if err := emit(); err != nil {
				return nil, err
			}
			ts, mark, jobID, err := parseTimestampBytes(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			rec.Time, rec.Mark, rec.JobID = ts, mark, jobID
			if len(flat) < lay.width {
				flat = append(flat, make([]uint64, lay.width-len(flat))...)
			}
			clear(flat[:lay.width])
			if len(present) < len(lay.slots) {
				present = append(present, make([]bool, len(lay.slots)-len(present))...)
			}
			clear(present)
			inRec = true
		default:
			if !inRec {
				return nil, fmt.Errorf("line %d: data before first timestamp", lineNo)
			}
			if err := parseDataBytes(line, lay, &flat, &present); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := emit(); err != nil {
		return nil, err
	}
	return f, nil
}

// asciiSpace is the whitespace set the plain-text format can contain.
var asciiSpace = [256]bool{' ': true, '\t': true, '\n': true, '\v': true, '\f': true, '\r': true}

func trimASCII(b []byte) []byte {
	for len(b) > 0 && asciiSpace[b[0]] {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace[b[len(b)-1]] {
		b = b[:len(b)-1]
	}
	return b
}

// nextField returns the next whitespace-delimited token at *i, advancing
// *i past it; nil when the line is exhausted.
func nextField(b []byte, i *int) []byte {
	j := *i
	for j < len(b) && asciiSpace[b[j]] {
		j++
	}
	if j >= len(b) {
		*i = j
		return nil
	}
	k := j
	for k < len(b) && !asciiSpace[b[k]] {
		k++
	}
	*i = k
	return b[j:k]
}

// parseUint64 parses base-10 digits with strconv.ParseUint semantics
// (no sign, overflow rejected) without allocating.
func parseUint64(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	const maxU = ^uint64(0)
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		if v > maxU/10 {
			return 0, false
		}
		v *= 10
		d := uint64(c - '0')
		if v > maxU-d {
			return 0, false
		}
		v += d
	}
	return v, true
}

func parseInt64(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
	}
	u, ok := parseUint64(b)
	if !ok {
		return 0, false
	}
	if neg {
		if u > 1<<63 {
			return 0, false
		}
		return -int64(u), true
	}
	if u > 1<<63-1 {
		return 0, false
	}
	return int64(u), true
}

func (f *File) parseHeaderBytes(line []byte) error {
	rest := line[1:]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return fmt.Errorf("malformed header %q", line)
	}
	key, val := rest[:sp], rest[sp+1:]
	switch string(key) {
	case "tacc_stats":
		f.Version = string(val) //supremmlint:allow hotalloc: header field retained, once per file
	case "hostname":
		f.Hostname = string(val) //supremmlint:allow hotalloc: header field retained, once per file
	case "arch":
		f.Arch = string(val) //supremmlint:allow hotalloc: header field retained, once per file
	default:
		// Unknown headers are tolerated (forward compatibility), as the
		// deployed parser does.
	}
	return nil
}

func parseTimestampBytes(line []byte) (ts int64, mark string, jobID int64, err error) {
	i := 0
	tsTok := nextField(line, &i)
	ts, ok := parseInt64(tsTok)
	if !ok {
		return 0, "", 0, fmt.Errorf("bad timestamp %q", tsTok)
	}
	markTok := nextField(line, &i)
	if markTok == nil {
		return ts, "", 0, nil
	}
	idTok := nextField(line, &i)
	if idTok == nil {
		if string(markTok) == "rotate" {
			return ts, "rotate", 0, nil
		}
		return 0, "", 0, fmt.Errorf("unknown bare mark %q", markTok)
	}
	if extra := nextField(line, &i); extra != nil {
		return 0, "", 0, fmt.Errorf("malformed timestamp line %q", line)
	}
	switch {
	case string(markTok) == "begin":
		mark = "begin"
	case string(markTok) == "end":
		mark = "end"
	default:
		return 0, "", 0, fmt.Errorf("unknown job mark %q", markTok)
	}
	jobID, ok = parseInt64(idTok)
	if !ok {
		return 0, "", 0, fmt.Errorf("bad job id %q", idTok)
	}
	return ts, mark, jobID, nil
}

// parseDataBytes parses "type device v0 v1 ..." directly from the
// scanner's buffer into the record's flat array.
func parseDataBytes(line []byte, lay *Layout, flat *[]uint64, present *[]bool) error {
	i := 0
	typ := nextField(line, &i)
	dev := nextField(line, &i)
	if len(dev) == 0 {
		return fmt.Errorf("malformed data line %q", line)
	}
	tc := lay.byName[string(typ)]
	if tc == nil {
		return fmt.Errorf("data for undeclared type %q", typ)
	}
	width := len(tc.schema)
	slot, off := tc.ensureDev(lay, dev)
	if len(*flat) < lay.width {
		*flat = append(*flat, make([]uint64, lay.width-len(*flat))...)
	}
	if len(*present) < len(lay.slots) {
		*present = append(*present, make([]bool, len(lay.slots)-len(*present))...)
	}
	dst := (*flat)[off : off+width]
	n := 0
	for {
		tok := nextField(line, &i)
		if tok == nil {
			break
		}
		if n < width {
			v, ok := parseUint64(tok)
			if !ok {
				return fmt.Errorf("bad value %q", tok)
			}
			dst[n] = v
		}
		n++
	}
	if n != width {
		return fmt.Errorf("type %q: %d values for %d-key schema", tc.name, n, width)
	}
	(*present)[slot] = true
	return nil
}

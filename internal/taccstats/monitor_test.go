package taccstats

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
)

// memFiles is an in-memory RotateFunc capturing one buffer per day.
type memFiles struct {
	days    []int
	buffers map[int]*bytes.Buffer
}

func newMemFiles() *memFiles {
	return &memFiles{buffers: make(map[int]*bytes.Buffer)}
}

type nopCloser struct{ *bytes.Buffer }

func (nopCloser) Close() error { return nil }

func (m *memFiles) rotate(day int) (io.WriteCloser, error) {
	buf := &bytes.Buffer{}
	m.buffers[day] = buf
	m.days = append(m.days, day)
	return nopCloser{buf}, nil
}

func newTestMonitor(t *testing.T) (*Monitor, *procfs.Snapshot, *memFiles) {
	t.Helper()
	cfg := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cfg, "c000-000.ranger")
	snap.Time = 0
	files := newMemFiles()
	m := NewMonitor(snap, cfg.Arch, files.rotate)
	return m, snap, files
}

func TestMonitorJobLifecycle(t *testing.T) {
	m, snap, files := newTestMonitor(t)
	snap.Time = 1000

	if err := m.BeginJob(77); err != nil {
		t.Fatal(err)
	}
	snap.Time = 1600
	snap.Add(procfs.TypeCPU, "0", "user", 550)
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	snap.Time = 2200
	if err := m.EndJob(77); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFile(bytes.NewReader(files.buffers[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(f.Records))
	}
	if f.Records[0].Mark != "begin" || f.Records[0].JobID != 77 {
		t.Errorf("begin mark: %+v", f.Records[0])
	}
	if f.Records[2].Mark != "end" || f.Records[2].JobID != 77 {
		t.Errorf("end mark: %+v", f.Records[2])
	}
	if m.Samples() != 3 {
		t.Errorf("samples = %d", m.Samples())
	}
}

func TestPMCReprogramOnlyAtJobBegin(t *testing.T) {
	m, snap, files := newTestMonitor(t)
	snap.Time = 100
	snap.Add(procfs.TypeAMDPMC, "0", "FLOPS", 999) // stale user counts

	if err := m.BeginJob(1); err != nil { // reprogram zeroes PMCs
		t.Fatal(err)
	}
	snap.Time = 700
	snap.Add(procfs.TypeAMDPMC, "0", "FLOPS", 500)
	if err := m.Sample(); err != nil { // periodic read must not reset
		t.Fatal(err)
	}
	snap.Time = 1300
	snap.Add(procfs.TypeAMDPMC, "0", "FLOPS", 500)
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	f, err := ParseFile(bytes.NewReader(files.buffers[0].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	get := func(i int) uint64 {
		v, _ := f.Records[i].Get(f.Schemas, procfs.TypeAMDPMC, "0", "FLOPS")
		return v
	}
	if get(0) != 0 {
		t.Errorf("begin sample FLOPS = %d, want 0 after reprogram", get(0))
	}
	if get(1) != 500 || get(2) != 1000 {
		t.Errorf("periodic FLOPS = %d, %d; want 500, 1000 (no reset)", get(1), get(2))
	}
}

func TestDailyRotation(t *testing.T) {
	m, snap, files := newTestMonitor(t)
	snap.Time = 86000 // near end of day 0
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	snap.Time = 86600 // day 1
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	snap.Time = 90000 // still day 1
	if err := m.Sample(); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if len(files.days) != 2 || files.days[0] != 0 || files.days[1] != 1 {
		t.Fatalf("rotation days = %v, want [0 1]", files.days)
	}
	// Each file is independently parseable (self-describing headers).
	for day, buf := range files.buffers {
		f, err := ParseFile(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if f.Hostname != "c000-000.ranger" {
			t.Errorf("day %d hostname = %q", day, f.Hostname)
		}
	}
	// TotalBytes covers both files.
	want := int64(files.buffers[0].Len() + files.buffers[1].Len())
	if m.TotalBytes() != want {
		t.Errorf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
}

func TestRotateErrorPropagates(t *testing.T) {
	cfg := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cfg, "h")
	boom := errors.New("disk full")
	m := NewMonitor(snap, cfg.Arch, func(day int) (io.WriteCloser, error) {
		return nil, boom
	})
	if err := m.Sample(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped disk full", err)
	}
}

func TestIntelPMCReprogram(t *testing.T) {
	cfg := cluster.Lonestar4Config()
	snap := procfs.NewNodeSnapshot(cfg, "h")
	files := newMemFiles()
	m := NewMonitor(snap, cfg.Arch, files.rotate)
	snap.Add(procfs.TypeIntelPMC, "3", "L1D_HITS", 12345)
	if err := m.BeginJob(9); err != nil {
		t.Fatal(err)
	}
	if got := snap.Get(procfs.TypeIntelPMC, "3", "L1D_HITS"); got != 0 {
		t.Errorf("Intel PMC not reprogrammed: %d", got)
	}
	m.Close()
}

package taccstats

import (
	"bytes"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
)

// benchFile renders a Ranger-shaped raw file with the given number of
// records, one full sample of every stat type each.
func benchFile(tb testing.TB, records int) []byte {
	tb.Helper()
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, "c101-301.ranger")
	snap.Time = 1307000600
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < records; i++ {
		snap.Time += 600
		for c := 0; c < 16; c++ {
			dev := snap.Type(procfs.TypeCPU).Devices()[c]
			snap.Add(procfs.TypeCPU, dev, "user", 54000)
			snap.Add(procfs.TypeCPU, dev, "idle", 6000)
			snap.Add(procfs.TypeAMDPMC, dev, "FLOPS", 600e9/16)
		}
		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 1200e6)
		snap.Add(procfs.TypeLlite, "scratch", "write_bytes", 600e6)
		if err := w.WriteRecord(snap, ""); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// BenchmarkParseStream measures the zero-allocation streaming fast path
// over the same file; the delta to BenchmarkParseFile is the cost of
// materializing nested maps.
func BenchmarkParseStream(b *testing.B) {
	data := benchFile(b, 144)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_, err := ParseStream(bytes.NewReader(data), func(rec *Record) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != 144 {
			b.Fatal("bad parse")
		}
	}
}

// BenchmarkParseFile measures the materializing parser over a 144-record
// (one day at 10-minute cadence) Ranger node file.
func BenchmarkParseFile(b *testing.B) {
	data := benchFile(b, 144)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := ParseFile(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Records) != 144 {
			b.Fatal("bad parse")
		}
	}
}

package appkernels

import (
	"math"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/sim"
	"supremm/internal/store"
	"supremm/internal/workload"
)

func TestDefaultKernels(t *testing.T) {
	ks := DefaultKernels(workload.DefaultApps())
	if len(ks) != 3 {
		t.Fatalf("kernels = %d", len(ks))
	}
	for _, k := range ks {
		if k.App == nil {
			t.Errorf("%s: missing app", k.Name)
		}
		if k.Nodes < 1 || k.RuntimeMin <= 0 || k.PeriodMin <= 0 {
			t.Errorf("%s: bad geometry %+v", k.Name, k)
		}
	}
}

func TestInjectProducesPeriodicRuns(t *testing.T) {
	ks := DefaultKernels(workload.DefaultApps())
	horizon := 5 * 24 * 60.0
	jobs := Inject(nil, ks, horizon, 1_000_000, 7)
	// 3 kernels every 12h over 5 days = ~10 runs each.
	if len(jobs) < 27 || len(jobs) > 33 {
		t.Fatalf("injected %d kernel jobs, want ~30", len(jobs))
	}
	perKernel := map[string]int{}
	var prev float64
	for _, j := range jobs {
		if j.SubmitMin < prev {
			t.Fatal("stream not sorted")
		}
		prev = j.SubmitMin
		if j.User.Name != KernelUser {
			t.Errorf("kernel user = %q", j.User.Name)
		}
		perKernel[j.App.Name]++
		if j.ID < 1_000_000 {
			t.Errorf("kernel id %d below base", j.ID)
		}
	}
	if len(perKernel) != 3 {
		t.Errorf("kernels seen: %v", perKernel)
	}
	// Kernel app names must be the kernel names, not the base codes.
	if perKernel["milc"] != 0 || perKernel["ak.compute"] == 0 {
		t.Errorf("kernel naming broken: %v", perKernel)
	}
	// Merging with a production stream keeps both.
	base := []*workload.Job{{ID: 1, SubmitMin: 10, User: kernelUserRecord, App: ks[0].App}}
	merged := Inject(base, ks, horizon, 1_000_000, 7)
	if len(merged) != len(jobs)+1 {
		t.Errorf("merge lost jobs: %d vs %d+1", len(merged), len(jobs))
	}
	// Nil apps are skipped, not crashed on.
	if got := Inject(nil, []Kernel{{Name: "x"}}, horizon, 1, 1); len(got) != 0 {
		t.Errorf("nil-app kernel injected %d jobs", len(got))
	}
}

func TestKernelsThroughSimulation(t *testing.T) {
	// End-to-end: inject kernels into a production stream, run the full
	// simulation, extract the kernel series and audit them.
	cc := cluster.RangerConfig().Scaled(24)
	cfg := sim.DefaultConfig(cc, 17)
	cfg.DurationMin = 14 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.HorizonMin = cfg.DurationMin
	ks := DefaultKernels(workload.DefaultApps())
	production := workload.NewGenerator(cfg.Gen).Generate()
	cfg.Jobs = Inject(production, ks, cfg.DurationMin, 1_000_000, 17)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		runs := Series(res.Store, k.Name)
		// 14 days at 12h cadence = ~28 submissions; nearly all should
		// run (kernels are small and the queue drains them).
		if len(runs) < 15 {
			t.Errorf("%s: only %d runs made it through", k.Name, len(runs))
			continue
		}
		v, err := NewAuditor().Audit(k.Name, runs)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		// A healthy system must not flag its own kernels.
		if v.Degraded {
			t.Errorf("%s flagged degraded on a healthy run: %+v", k.Name, v)
		}
		if v.BaselineMean <= 0 {
			t.Errorf("%s: no flops measured", k.Name)
		}
	}
}

// synthRuns builds a flops history with an optional degradation at the
// tail.
func synthRuns(n int, base float64, tailDrop float64) []RunPoint {
	runs := make([]RunPoint, n)
	for i := range runs {
		v := base + 0.02*base*math.Sin(float64(i))
		if i >= n-5 {
			v *= 1 - tailDrop
		}
		runs[i] = RunPoint{JobID: int64(i), End: int64(i * 3600), FlopsGF: v}
	}
	return runs
}

func TestAuditHealthyKernel(t *testing.T) {
	a := NewAuditor()
	v, err := a.Audit("ak.compute", synthRuns(20, 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v.Degraded {
		t.Errorf("healthy kernel flagged: %+v", v)
	}
	if math.Abs(v.DeltaPct) > 5 {
		t.Errorf("healthy delta = %v%%", v.DeltaPct)
	}
}

func TestAuditDegradedKernel(t *testing.T) {
	a := NewAuditor()
	v, err := a.Audit("ak.io", synthRuns(20, 100, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Degraded {
		t.Errorf("30%% regression not flagged: %+v", v)
	}
	if v.DeltaPct > -20 {
		t.Errorf("delta = %v%%, want about -30", v.DeltaPct)
	}
}

func TestAuditShortHistoryErrors(t *testing.T) {
	a := NewAuditor()
	if _, err := a.Audit("x", synthRuns(5, 100, 0)); err == nil {
		t.Error("short history should error")
	}
}

func TestAuditAll(t *testing.T) {
	st := store.New()
	for i := 0; i < 20; i++ {
		flops := 50.0
		if i >= 15 {
			flops = 20 // degraded tail
		}
		st.Add(store.JobRecord{
			JobID: int64(i + 1), Cluster: "ranger", User: KernelUser,
			App: "ak.compute", Nodes: 4, Start: int64(i * 7200),
			End: int64(i*7200 + 3600), Status: "COMPLETED", Samples: 6,
			FlopsGF: flops,
		})
	}
	ks := []Kernel{{Name: "ak.compute", App: workload.DefaultApps()[0], Nodes: 4, RuntimeMin: 60, PeriodMin: 720}}
	verdicts := NewAuditor().AuditAll(st, ks)
	if len(verdicts) != 1 {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	if !verdicts[0].Degraded {
		t.Errorf("planted regression not flagged: %+v", verdicts[0])
	}
	// Kernels with no runs are skipped without error.
	ks = append(ks, Kernel{Name: "ak.ghost", App: workload.DefaultApps()[0]})
	if got := NewAuditor().AuditAll(st, ks); len(got) != 1 {
		t.Errorf("ghost kernel should be skipped, got %d verdicts", len(got))
	}
}

func TestSeriesOrdering(t *testing.T) {
	st := store.New()
	for _, end := range []int64{300, 100, 200} {
		st.Add(store.JobRecord{
			JobID: end, Cluster: "r", User: KernelUser, App: "ak.x",
			Nodes: 1, Start: end - 50, End: end, Status: "COMPLETED",
			Samples: 2, FlopsGF: 1,
		})
	}
	runs := Series(st, "ak.x")
	if len(runs) != 3 || runs[0].End != 100 || runs[2].End != 300 {
		t.Errorf("series not ordered: %+v", runs)
	}
}

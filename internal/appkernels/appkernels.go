// Package appkernels reproduces the other half of XDMoD the paper
// builds on (its reference [2], Furlani et al.): application kernels —
// small, fixed benchmark jobs injected into the batch queue at a regular
// cadence whose measured performance audits the system over time.
// A performance regression in a kernel's series (after a software-stack
// update, a filesystem degradation, a fabric fault) is flagged by a
// control-band test against the kernel's own baseline.
package appkernels

import (
	"fmt"
	"math"
	"sort"

	"supremm/internal/stats"
	"supremm/internal/store"
	"supremm/internal/workload"
)

// KernelUser is the synthetic account kernels run under; analyses key
// on it to separate audit jobs from the production mix.
const KernelUser = "appkernel"

// Kernel is one benchmark definition.
type Kernel struct {
	// Name identifies the kernel; it is stored in the job's App field.
	Name string
	// App is the archetype whose behaviour the kernel exercises.
	App *workload.App
	// Nodes is the fixed job size (kernels always run the same shape so
	// runs are comparable).
	Nodes int
	// RuntimeMin is the fixed kernel runtime.
	RuntimeMin float64
	// PeriodMin is the injection cadence.
	PeriodMin float64
}

// DefaultKernels returns the audit set: a compute-bound, a
// memory/IO-bound and a network-bound kernel, mirroring the XDMoD
// application-kernel suite's coverage dimensions.
func DefaultKernels(apps []*workload.App) []Kernel {
	get := func(name string) *workload.App { return workload.AppByName(apps, name) }
	return []Kernel{
		{Name: "ak.compute", App: get("milc"), Nodes: 4, RuntimeMin: 60, PeriodMin: 12 * 60},
		{Name: "ak.io", App: get("enzo"), Nodes: 2, RuntimeMin: 60, PeriodMin: 12 * 60},
		{Name: "ak.network", App: get("namd"), Nodes: 4, RuntimeMin: 60, PeriodMin: 12 * 60},
	}
}

// kernelUserRecord is the shared synthetic user.
var kernelUserRecord = &workload.User{
	ID: 100000, Name: KernelUser, Science: workload.OtherScience,
	IdleMul: 1, ScaleMul: 1,
}

// Inject merges periodic kernel submissions into a production job
// stream. IDs are allocated from baseID upward; the combined stream is
// returned sorted by submit time. Kernels carry unit multipliers so
// run-to-run variation reflects only the (simulated) system, which is
// exactly what makes them audits.
func Inject(jobs []*workload.Job, kernels []Kernel, horizonMin float64, baseID int64, seed int64) []*workload.Job {
	out := append([]*workload.Job(nil), jobs...)
	id := baseID
	for ki, k := range kernels {
		if k.App == nil {
			continue
		}
		// Stagger kernels so they do not contend with each other.
		for t := float64(ki+1) * 30; t < horizonMin; t += k.PeriodMin {
			out = append(out, &workload.Job{
				ID: id, User: kernelUserRecord, App: kernelApp(k),
				Nodes: k.Nodes, SubmitMin: t, RuntimeMin: k.RuntimeMin,
				ReqMin: k.RuntimeMin * 1.2, Status: workload.Completed,
				IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1,
				Seed: seed ^ id*7919,
			})
			id++
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SubmitMin < out[j].SubmitMin })
	return out
}

// kernelApp clones the archetype under the kernel's name so records
// group by kernel, not by the underlying code.
func kernelApp(k Kernel) *workload.App {
	clone := *k.App
	clone.Name = k.Name
	return &clone
}

// RunPoint is one kernel execution's audited performance.
type RunPoint struct {
	JobID   int64
	End     int64 // unix seconds
	FlopsGF float64
	IBTxMB  float64
	ReadMB  float64
}

// Series extracts a kernel's run history from the job store, ordered by
// end time.
func Series(st *store.Store, kernelName string) []RunPoint {
	recs := st.Records(store.Filter{User: KernelUser, App: kernelName, MinSamples: 1})
	out := make([]RunPoint, 0, len(recs))
	for _, r := range recs {
		out = append(out, RunPoint{
			JobID: r.JobID, End: r.End,
			FlopsGF: r.FlopsGF, IBTxMB: r.IBTxMB, ReadMB: r.ReadMB,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].End < out[j].End })
	return out
}

// Verdict is the audit outcome for one kernel.
type Verdict struct {
	Kernel string
	Runs   int
	// BaselineMean/SD summarize the first half of the history.
	BaselineMean float64
	BaselineSD   float64
	// RecentMean summarizes the last Window runs.
	RecentMean float64
	// Degraded is set when the recent mean falls below the control band
	// (baseline mean - Sigmas * sd).
	Degraded bool
	// DeltaPct is (recent-baseline)/baseline*100.
	DeltaPct float64
}

// Auditor configures the control-band regression test.
type Auditor struct {
	// Window is how many trailing runs form the "recent" sample.
	Window int
	// Sigmas is the control-band width.
	Sigmas float64
	// MinRuns is the minimum history length to judge at all.
	MinRuns int
}

// NewAuditor returns the default audit configuration.
func NewAuditor() *Auditor { return &Auditor{Window: 5, Sigmas: 2, MinRuns: 10} }

// Audit applies the control-band test to one kernel's flops history.
func (a *Auditor) Audit(kernelName string, runs []RunPoint) (Verdict, error) {
	v := Verdict{Kernel: kernelName, Runs: len(runs)}
	if len(runs) < a.MinRuns {
		return v, fmt.Errorf("appkernels: %s has %d runs, need %d", kernelName, len(runs), a.MinRuns)
	}
	half := len(runs) / 2
	baseline := make([]float64, half)
	for i := 0; i < half; i++ {
		baseline[i] = runs[i].FlopsGF
	}
	w := a.Window
	if w > len(runs)-half {
		w = len(runs) - half
	}
	recent := make([]float64, 0, w)
	for _, r := range runs[len(runs)-w:] {
		recent = append(recent, r.FlopsGF)
	}
	v.BaselineMean = stats.Mean(baseline)
	v.BaselineSD = stats.StdDev(baseline)
	v.RecentMean = stats.Mean(recent)
	if v.BaselineMean != 0 {
		v.DeltaPct = (v.RecentMean - v.BaselineMean) / v.BaselineMean * 100
	}
	band := v.BaselineMean - a.Sigmas*v.BaselineSD
	v.Degraded = v.RecentMean < band && !math.IsNaN(band)
	return v, nil
}

// AuditAll audits every kernel present in the store.
func (a *Auditor) AuditAll(st *store.Store, kernels []Kernel) []Verdict {
	var out []Verdict
	for _, k := range kernels {
		runs := Series(st, k.Name)
		if v, err := a.Audit(k.Name, runs); err == nil {
			out = append(out, v)
		}
	}
	return out
}

package procfs

import (
	"math"
	"testing"
	"testing/quick"

	"supremm/internal/cluster"
)

func TestKeyString(t *testing.T) {
	cases := []struct {
		k    Key
		want string
	}{
		{Key{Name: "user", Class: Event, Unit: "cs"}, "user,E,U=cs"},
		{Key{Name: "MemUsed", Class: Gauge, Unit: "KB"}, "MemUsed,U=KB"},
		{Key{Name: "rx_packets", Class: Event}, "rx_packets,E"},
		{Key{Name: "segs_used", Class: Gauge}, "segs_used"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestSchemaIndex(t *testing.T) {
	s := CPUSchema()
	if i := s.Index("idle"); i != 3 {
		t.Errorf("Index(idle) = %d, want 3", i)
	}
	if i := s.Index("bogus"); i != -1 {
		t.Errorf("Index(bogus) = %d, want -1", i)
	}
}

func TestSnapshotAddGetSet(t *testing.T) {
	s := NewSnapshot("node0")
	s.Register(TypeCPU, CPUSchema())
	s.Add(TypeCPU, "0", "user", 100)
	s.Add(TypeCPU, "0", "user", 50)
	if got := s.Get(TypeCPU, "0", "user"); got != 150 {
		t.Errorf("user = %d, want 150", got)
	}
	s.Register(TypeMem, MemSchema())
	s.Set(TypeMem, "0", "MemUsed", 1234)
	s.Set(TypeMem, "0", "MemUsed", 999) // gauges overwrite
	if got := s.Get(TypeMem, "0", "MemUsed"); got != 999 {
		t.Errorf("MemUsed = %d, want 999", got)
	}
	// Unknown reads are zero, never panic.
	if got := s.Get("nope", "x", "y"); got != 0 {
		t.Errorf("unknown type read = %d", got)
	}
	if got := s.Get(TypeCPU, "99", "user"); got != 0 {
		t.Errorf("unknown device read = %d", got)
	}
	if got := s.Get(TypeCPU, "0", "nokey"); got != 0 {
		t.Errorf("unknown key read = %d", got)
	}
}

func TestSnapshotAddPanics(t *testing.T) {
	s := NewSnapshot("n")
	s.Register(TypeCPU, CPUSchema())
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("unregistered type add", func() { s.Add("zzz", "0", "user", 1) })
	mustPanic("unknown key add", func() { s.Add(TypeCPU, "0", "zzz", 1) })
	mustPanic("unregistered type set", func() { s.Set("zzz", "0", "user", 1) })
	mustPanic("unknown key set", func() { s.Set(TypeCPU, "0", "zzz", 1) })
}

func TestCounterWraparound(t *testing.T) {
	s := NewSnapshot("n")
	s.Register(TypeNet, NetSchema())
	s.Add(TypeNet, "eth0", "rx_bytes", math.MaxUint64)
	s.Add(TypeNet, "eth0", "rx_bytes", 5)
	if got := s.Get(TypeNet, "eth0", "rx_bytes"); got != 4 {
		t.Errorf("wrapped counter = %d, want 4", got)
	}
}

func TestDeviceRegistrationOrder(t *testing.T) {
	ts := NewTypeStats(NetSchema())
	ts.Values("eth1")
	ts.Values("eth0")
	ts.Values("eth1") // repeat must not duplicate
	devs := ts.Devices()
	if len(devs) != 2 || devs[0] != "eth1" || devs[1] != "eth0" {
		t.Errorf("devices = %v", devs)
	}
}

func TestRegisterReplaces(t *testing.T) {
	s := NewSnapshot("n")
	s.Register(TypeCPU, CPUSchema())
	s.Add(TypeCPU, "0", "user", 7)
	s.Register(TypeCPU, CPUSchema()) // re-register clears
	if got := s.Get(TypeCPU, "0", "user"); got != 0 {
		t.Errorf("re-registered value = %d, want 0", got)
	}
	if names := s.TypeNames(); len(names) != 1 {
		t.Errorf("type names = %v, want 1 entry", names)
	}
}

func TestSortedTypeNames(t *testing.T) {
	s := NewSnapshot("n")
	s.Register("zeta", CPUSchema())
	s.Register("alpha", CPUSchema())
	sorted := s.SortedTypeNames()
	if sorted[0] != "alpha" || sorted[1] != "zeta" {
		t.Errorf("sorted = %v", sorted)
	}
	// Registration order preserved separately.
	if names := s.TypeNames(); names[0] != "zeta" {
		t.Errorf("registration order = %v", names)
	}
}

func TestNewNodeSnapshotRanger(t *testing.T) {
	cfg := cluster.RangerConfig()
	s := NewNodeSnapshot(cfg, "c000-000.ranger")
	if s.Hostname != "c000-000.ranger" {
		t.Errorf("hostname = %q", s.Hostname)
	}
	if got := len(s.Type(TypeCPU).Devices()); got != 16 {
		t.Errorf("cpu devices = %d, want 16", got)
	}
	if got := len(s.Type(TypeMem).Devices()); got != 4 {
		t.Errorf("mem sockets = %d, want 4", got)
	}
	// Per-socket MemTotal should sum to the node's 32 GB.
	var total uint64
	for _, dev := range s.Type(TypeMem).Devices() {
		total += s.Get(TypeMem, dev, "MemTotal")
	}
	if want := uint64(32 << 20); total != want { // KB
		t.Errorf("MemTotal sum = %d KB, want %d", total, want)
	}
	if s.Type(TypeAMDPMC) == nil {
		t.Error("Ranger snapshot missing AMD PMC block")
	}
	if s.Type(TypeIntelPMC) != nil {
		t.Error("Ranger snapshot should not have Intel PMC block")
	}
	if s.Type(TypeNFS) != nil {
		t.Error("Ranger has no NFS mount")
	}
	if got := len(s.Type(TypeLlite).Devices()); got != 3 {
		t.Errorf("Ranger lustre mounts = %d, want 3 (scratch/share/work)", got)
	}
}

func TestNewNodeSnapshotLonestar4(t *testing.T) {
	cfg := cluster.Lonestar4Config()
	s := NewNodeSnapshot(cfg, "c000-000.lonestar4")
	if got := len(s.Type(TypeCPU).Devices()); got != 12 {
		t.Errorf("cpu devices = %d, want 12", got)
	}
	if s.Type(TypeIntelPMC) == nil {
		t.Error("LS4 snapshot missing Intel PMC block")
	}
	if s.Type(TypeNFS) == nil {
		t.Error("LS4 snapshot missing NFS block")
	}
	if got := len(s.Type(TypeIntelPMC).Schema); got != 3 {
		t.Errorf("Intel PMC schema size = %d, want 3", got)
	}
}

func TestPMCType(t *testing.T) {
	if PMCType(cluster.AMDOpteron) != TypeAMDPMC {
		t.Error("AMD PMC type wrong")
	}
	if PMCType(cluster.IntelWestmere) != TypeIntelPMC {
		t.Error("Intel PMC type wrong")
	}
}

func TestEventCountersMonotonicProperty(t *testing.T) {
	// Property: a sequence of Adds never decreases a counter unless it
	// wraps, i.e. sum of deltas mod 2^64 equals the final value.
	f := func(deltas []uint32) bool {
		s := NewSnapshot("n")
		s.Register(TypeIRQ, IRQSchema())
		var want uint64
		for _, d := range deltas {
			s.Add(TypeIRQ, "-", "hw_irq", uint64(d))
			want += uint64(d)
		}
		return s.Get(TypeIRQ, "-", "hw_irq") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllSchemasHaveUniqueKeys(t *testing.T) {
	schemas := map[string]Schema{
		"cpu": CPUSchema(), "mem": MemSchema(), "vm": VMSchema(),
		"net": NetSchema(), "ib": IBSchema(), "llite": LliteSchema(),
		"lnet": LnetSchema(), "nfs": NFSSchema(), "block": BlockSchema(),
		"sysv": SysvSchema(), "irq": IRQSchema(), "numa": NUMASchema(),
		"ps": PSSchema(), "tmpfs": TmpfsSchema(),
		"amd_pmc": AMDPMCSchema(), "intel_pmc": IntelPMCSchema(),
	}
	for name, s := range schemas {
		seen := map[string]bool{}
		for _, k := range s {
			if k.Name == "" {
				t.Errorf("%s: empty key name", name)
			}
			if seen[k.Name] {
				t.Errorf("%s: duplicate key %q", name, k.Name)
			}
			seen[k.Name] = true
		}
	}
}

func TestPanasasMountsRegistered(t *testing.T) {
	cfg := cluster.RangerConfig()
	cfg.PanasasMounts = []string{"panfs_scratch"}
	s := NewNodeSnapshot(cfg, "h")
	if s.Type(TypePanfs) == nil {
		t.Fatal("panfs not registered")
	}
	if got := s.Type(TypePanfs).Devices(); len(got) != 1 || got[0] != "panfs_scratch" {
		t.Errorf("panfs devices = %v", got)
	}
	// Absent by default.
	plain := NewNodeSnapshot(cluster.RangerConfig(), "h2")
	if plain.Type(TypePanfs) != nil {
		t.Error("panfs should not be registered without mounts")
	}
}

package procfs

import (
	"fmt"

	"supremm/internal/cluster"
)

// Canonical stat type names, matching the TACC_Stats type vocabulary.
const (
	TypeCPU      = "cpu"       // per core
	TypeMem      = "mem"       // per socket
	TypeVM       = "vm"        // node-wide virtual memory activity
	TypeNet      = "net"       // per ethernet device
	TypeIB       = "ib"        // per IB HCA port
	TypeLlite    = "llite"     // Lustre client, per mount
	TypeLnet     = "lnet"      // Lustre networking, node-wide
	TypeNFS      = "nfs"       // NFS client, per mount
	TypeBlock    = "block"     // per block device
	TypeSysv     = "sysv_shm"  // SysV shared memory
	TypeIRQ      = "irq"       // interrupt counts, node-wide
	TypeNUMA     = "numa"      // per socket
	TypePS       = "ps"        // process/scheduler statistics
	TypeTmpfs    = "tmpfs"     // ram-backed filesystem, per mount
	TypePanfs    = "panfs"     // Panasas client, per mount
	TypeAMDPMC   = "amd64_pmc" // per core, AMD hardware counters
	TypeIntelPMC = "intel_pmc" // per core, Intel hardware counters
)

// CPUSchema: per-core scheduler accounting in centiseconds, the
// /proc/stat resolution.
func CPUSchema() Schema {
	return Schema{
		{Name: "user", Class: Event, Unit: "cs"},
		{Name: "nice", Class: Event, Unit: "cs"},
		{Name: "system", Class: Event, Unit: "cs"},
		{Name: "idle", Class: Event, Unit: "cs"},
		{Name: "iowait", Class: Event, Unit: "cs"},
		{Name: "irq", Class: Event, Unit: "cs"},
		{Name: "softirq", Class: Event, Unit: "cs"},
	}
}

// MemSchema: per-socket memory gauges in KB, the /sys/devices/system/node
// resolution TACC_Stats uses.
func MemSchema() Schema {
	return Schema{
		{Name: "MemTotal", Class: Gauge, Unit: "KB"},
		{Name: "MemUsed", Class: Gauge, Unit: "KB"},
		{Name: "MemFree", Class: Gauge, Unit: "KB"},
		{Name: "Buffers", Class: Gauge, Unit: "KB"},
		{Name: "Cached", Class: Gauge, Unit: "KB"},
		{Name: "AnonPages", Class: Gauge, Unit: "KB"},
		{Name: "Slab", Class: Gauge, Unit: "KB"},
	}
}

// VMSchema: node-wide paging and swapping event counters from /proc/vmstat.
func VMSchema() Schema {
	return Schema{
		{Name: "pgpgin", Class: Event, Unit: "KB"},
		{Name: "pgpgout", Class: Event, Unit: "KB"},
		{Name: "pswpin", Class: Event},
		{Name: "pswpout", Class: Event},
		{Name: "pgfault", Class: Event},
		{Name: "pgmajfault", Class: Event},
	}
}

// NetSchema: per-device /proc/net/dev counters.
func NetSchema() Schema {
	return Schema{
		{Name: "rx_bytes", Class: Event, Unit: "B"},
		{Name: "rx_packets", Class: Event},
		{Name: "rx_errs", Class: Event},
		{Name: "tx_bytes", Class: Event, Unit: "B"},
		{Name: "tx_packets", Class: Event},
		{Name: "tx_errs", Class: Event},
	}
}

// IBSchema: per-port InfiniBand extended counters. Real hardware exposes
// port_xmit_data in 4-byte words; we keep bytes for clarity and note the
// unit in the schema so the parser has no ambiguity.
func IBSchema() Schema {
	return Schema{
		{Name: "rx_bytes", Class: Event, Unit: "B"},
		{Name: "rx_packets", Class: Event},
		{Name: "tx_bytes", Class: Event, Unit: "B"},
		{Name: "tx_packets", Class: Event},
	}
}

// LliteSchema: per-mount Lustre client counters.
func LliteSchema() Schema {
	return Schema{
		{Name: "read_bytes", Class: Event, Unit: "B"},
		{Name: "write_bytes", Class: Event, Unit: "B"},
		{Name: "open", Class: Event},
		{Name: "close", Class: Event},
		{Name: "fsync", Class: Event},
	}
}

// LnetSchema: node-wide Lustre networking counters.
func LnetSchema() Schema {
	return Schema{
		{Name: "rx_bytes", Class: Event, Unit: "B"},
		{Name: "tx_bytes", Class: Event, Unit: "B"},
		{Name: "rx_msgs", Class: Event},
		{Name: "tx_msgs", Class: Event},
	}
}

// NFSSchema: per-mount NFS client counters.
func NFSSchema() Schema {
	return Schema{
		{Name: "read_bytes", Class: Event, Unit: "B"},
		{Name: "write_bytes", Class: Event, Unit: "B"},
		{Name: "ops", Class: Event},
	}
}

// BlockSchema: per-device block layer counters in 512-byte sectors, the
// /sys/block/<dev>/stat resolution.
func BlockSchema() Schema {
	return Schema{
		{Name: "rd_ios", Class: Event},
		{Name: "rd_sectors", Class: Event},
		{Name: "wr_ios", Class: Event},
		{Name: "wr_sectors", Class: Event},
		{Name: "in_flight", Class: Gauge},
	}
}

// SysvSchema: SysV shared memory segment usage.
func SysvSchema() Schema {
	return Schema{
		{Name: "mem_used", Class: Gauge, Unit: "B"},
		{Name: "segs_used", Class: Gauge},
	}
}

// IRQSchema: node-wide interrupt counts.
func IRQSchema() Schema {
	return Schema{
		{Name: "hw_irq", Class: Event},
		{Name: "sw_irq", Class: Event},
	}
}

// NUMASchema: per-socket NUMA allocation counters from
// /sys/devices/system/node/nodeN/numastat.
func NUMASchema() Schema {
	return Schema{
		{Name: "numa_hit", Class: Event},
		{Name: "numa_miss", Class: Event},
		{Name: "numa_foreign", Class: Event},
		{Name: "local_node", Class: Event},
		{Name: "other_node", Class: Event},
	}
}

// PSSchema: process and scheduler statistics; loads are scaled by 100 to
// stay integral (the kernel exposes fixed-point loads too).
func PSSchema() Schema {
	return Schema{
		{Name: "load_1", Class: Gauge, Unit: "c"},
		{Name: "load_5", Class: Gauge, Unit: "c"},
		{Name: "load_15", Class: Gauge, Unit: "c"},
		{Name: "nr_running", Class: Gauge},
		{Name: "nr_threads", Class: Gauge},
		{Name: "processes", Class: Event},
		{Name: "ctxt", Class: Event},
	}
}

// TmpfsSchema: ram-backed filesystem usage per mount.
func TmpfsSchema() Schema {
	return Schema{
		{Name: "bytes_used", Class: Gauge, Unit: "B"},
		{Name: "files_used", Class: Gauge},
	}
}

// AMDPMCSchema: the four events TACC_Stats programs on Opteron (§3).
func AMDPMCSchema() Schema {
	return Schema{
		{Name: "FLOPS", Class: Event},
		{Name: "MEM_ACCESS", Class: Event},
		{Name: "DCACHE_FILLS", Class: Event},
		{Name: "NUMA_TRAFFIC", Class: Event},
	}
}

// IntelPMCSchema: the three events TACC_Stats programs on
// Nehalem/Westmere (§3).
func IntelPMCSchema() Schema {
	return Schema{
		{Name: "FLOPS", Class: Event},
		{Name: "NUMA_TRAFFIC", Class: Event},
		{Name: "L1D_HITS", Class: Event},
	}
}

// PMCType returns the stat type name of the hardware counter block for a
// microarchitecture.
func PMCType(arch cluster.Microarch) string {
	if arch == cluster.AMDOpteron {
		return TypeAMDPMC
	}
	return TypeIntelPMC
}

// PanasasSchema: per-mount Panasas (panfs) client counters; §3 lists
// Panasas among the filesystems TACC_Stats covers. None of the preset
// clusters mount it, but the collector is registered on any config that
// declares mounts in PanasasMounts.
func PanasasSchema() Schema {
	return Schema{
		{Name: "read_bytes", Class: Event, Unit: "B"},
		{Name: "write_bytes", Class: Event, Unit: "B"},
		{Name: "ops", Class: Event},
	}
}

// NewNodeSnapshot builds a Snapshot for one node of cfg with every stat
// type registered, devices created for each core, socket, mount and
// device, and capacity gauges initialized (MemTotal per socket).
func NewNodeSnapshot(cfg cluster.Config, hostname string) *Snapshot {
	s := NewSnapshot(hostname)

	cpu := s.Register(TypeCPU, CPUSchema())
	for c := 0; c < cfg.CoresPerNode(); c++ {
		cpu.Values(fmt.Sprintf("%d", c))
	}

	mem := s.Register(TypeMem, MemSchema())
	perSocketKB := uint64(cfg.MemPerNodeGB * 1024 * 1024 / float64(cfg.SocketsPerNode))
	for so := 0; so < cfg.SocketsPerNode; so++ {
		dev := fmt.Sprintf("%d", so)
		mem.Values(dev)
		s.Set(TypeMem, dev, "MemTotal", perSocketKB)
		s.Set(TypeMem, dev, "MemFree", perSocketKB)
	}

	s.Register(TypeVM, VMSchema()).Values("-")

	net := s.Register(TypeNet, NetSchema())
	for _, d := range cfg.EthernetDevices {
		net.Values(d)
	}

	s.Register(TypeIB, IBSchema()).Values("mlx4_0.1")

	llite := s.Register(TypeLlite, LliteSchema())
	for _, m := range cfg.LustreMounts {
		llite.Values(m.Name)
	}

	s.Register(TypeLnet, LnetSchema()).Values("-")

	if cfg.HasNFS {
		s.Register(TypeNFS, NFSSchema()).Values("home")
	}

	if len(cfg.PanasasMounts) > 0 {
		panfs := s.Register(TypePanfs, PanasasSchema())
		for _, m := range cfg.PanasasMounts {
			panfs.Values(m)
		}
	}

	block := s.Register(TypeBlock, BlockSchema())
	for _, d := range cfg.BlockDevices {
		block.Values(d)
	}

	s.Register(TypeSysv, SysvSchema()).Values("-")
	s.Register(TypeIRQ, IRQSchema()).Values("-")

	numa := s.Register(TypeNUMA, NUMASchema())
	for so := 0; so < cfg.SocketsPerNode; so++ {
		numa.Values(fmt.Sprintf("%d", so))
	}

	s.Register(TypePS, PSSchema()).Values("-")
	s.Register(TypeTmpfs, TmpfsSchema()).Values("dev_shm")

	var pmcSchema Schema
	var pmcType string
	if cfg.Arch == cluster.AMDOpteron {
		pmcSchema, pmcType = AMDPMCSchema(), TypeAMDPMC
	} else {
		pmcSchema, pmcType = IntelPMCSchema(), TypeIntelPMC
	}
	pmc := s.Register(pmcType, pmcSchema)
	for c := 0; c < cfg.CoresPerNode(); c++ {
		pmc.Values(fmt.Sprintf("%d", c))
	}
	return s
}

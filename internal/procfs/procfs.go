// Package procfs provides a synthetic, in-memory equivalent of the Linux
// /proc and /sys counter trees that TACC_Stats reads on a real node.
//
// On production hardware TACC_Stats collectors read key/value counter
// sets resolved per core, per socket, per device or per mount, where most
// values are monotonically increasing event counters (which wrap at the
// register width) and some are gauges. This package reproduces exactly
// that data model: a Snapshot holds, for each stat type, a schema of
// typed keys and a value vector per device. The simulation engine mutates
// snapshots through the same Add/Set operations the kernel would perform,
// and the taccstats collectors read them through the same read-only view
// they would use for real /proc files, so the measurement pipeline
// downstream is identical to the deployed tool's.
package procfs

import (
	"fmt"
	"sort"
)

// KeyClass distinguishes monotonically increasing event counters from
// point-in-time gauges. This mirrors the ",E" (event) annotation in the
// real TACC_Stats schema descriptors.
type KeyClass int

const (
	// Gauge values are instantaneous readings (e.g. MemUsed).
	Gauge KeyClass = iota
	// Event values are cumulative counters that only move forward and
	// wrap at 64 bits (e.g. rx_bytes).
	Event
)

// Key is one column of a stat type's schema.
type Key struct {
	Name  string
	Class KeyClass
	Unit  string // "KB", "B", "cs" (centiseconds), "" for counts
}

// String renders the key in TACC_Stats schema descriptor form:
// name[,E][,U=unit].
func (k Key) String() string {
	s := k.Name
	if k.Class == Event {
		s += ",E"
	}
	if k.Unit != "" {
		s += ",U=" + k.Unit
	}
	return s
}

// Schema is an ordered list of keys for one stat type.
type Schema []Key

// Index returns the position of the named key, or -1.
func (s Schema) Index(name string) int {
	for i, k := range s {
		if k.Name == name {
			return i
		}
	}
	return -1
}

// TypeStats holds the per-device value vectors for one stat type.
type TypeStats struct {
	Schema  Schema
	values  map[string][]uint64
	devices []string // insertion-ordered device names
}

// NewTypeStats creates an empty TypeStats with the given schema.
func NewTypeStats(schema Schema) *TypeStats {
	return &TypeStats{Schema: schema, values: make(map[string][]uint64)}
}

// Devices returns the device names in registration order.
func (t *TypeStats) Devices() []string { return t.devices }

// Values returns the value vector for dev, registering the device with a
// zeroed vector on first use.
func (t *TypeStats) Values(dev string) []uint64 {
	v, ok := t.values[dev]
	if !ok {
		v = make([]uint64, len(t.Schema))
		t.values[dev] = v
		t.devices = append(t.devices, dev)
	}
	return v
}

// Get returns the value of key on dev; missing devices or keys read 0.
func (t *TypeStats) Get(dev, key string) uint64 {
	i := t.Schema.Index(key)
	if i < 0 {
		return 0
	}
	v, ok := t.values[dev]
	if !ok {
		return 0
	}
	return v[i]
}

// Snapshot is the full synthetic /proc view of one node at an instant.
type Snapshot struct {
	Hostname string
	Time     int64 // unix seconds
	types    map[string]*TypeStats
	names    []string // insertion-ordered type names
}

// NewSnapshot creates an empty snapshot for a host.
func NewSnapshot(hostname string) *Snapshot {
	return &Snapshot{Hostname: hostname, types: make(map[string]*TypeStats)}
}

// Register installs a stat type with its schema. Registering the same
// name twice replaces the schema and clears its values.
func (s *Snapshot) Register(name string, schema Schema) *TypeStats {
	if _, ok := s.types[name]; !ok {
		s.names = append(s.names, name)
	}
	ts := NewTypeStats(schema)
	s.types[name] = ts
	return ts
}

// Type returns the TypeStats for name, or nil if unregistered.
func (s *Snapshot) Type(name string) *TypeStats { return s.types[name] }

// TypeNames returns the registered type names in registration order.
func (s *Snapshot) TypeNames() []string { return s.names }

// Add increments an Event counter by delta with 64-bit wraparound
// semantics (uint64 addition wraps naturally, exactly like the kernel's
// counters). Adding to an unknown type or key is a programming error and
// panics, because the simulator and the schema registry must agree.
func (s *Snapshot) Add(typ, dev, key string, delta uint64) {
	t := s.types[typ]
	if t == nil {
		panic(fmt.Sprintf("procfs: add to unregistered type %q", typ))
	}
	i := t.Schema.Index(key)
	if i < 0 {
		panic(fmt.Sprintf("procfs: unknown key %q in type %q", key, typ))
	}
	t.Values(dev)[i] += delta
}

// Set stores a Gauge value.
func (s *Snapshot) Set(typ, dev, key string, value uint64) {
	t := s.types[typ]
	if t == nil {
		panic(fmt.Sprintf("procfs: set on unregistered type %q", typ))
	}
	i := t.Schema.Index(key)
	if i < 0 {
		panic(fmt.Sprintf("procfs: unknown key %q in type %q", key, typ))
	}
	t.Values(dev)[i] = value
}

// Get reads one value; unknown types, devices and keys read 0 so
// collectors degrade the way they do on kernels missing a counter.
func (s *Snapshot) Get(typ, dev, key string) uint64 {
	t := s.types[typ]
	if t == nil {
		return 0
	}
	return t.Get(dev, key)
}

// SortedTypeNames returns type names sorted lexically; used by writers
// that need deterministic output regardless of registration order.
func (s *Snapshot) SortedTypeNames() []string {
	out := append([]string(nil), s.names...)
	sort.Strings(out)
	return out
}

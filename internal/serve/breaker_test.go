package serve

import "testing"

// TestBreakerLifecycle walks the full state machine: closed under the
// threshold, open at it, cooldown ticks to a half-open probe, a failed
// probe doubles the backoff, a successful probe closes and resets.
func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 2)

	// Two failures: still closed, loads still allowed.
	b.onFailure()
	b.onFailure()
	if st := b.currentState(); st != breakerClosed {
		t.Fatalf("state %v after 2 failures, want closed", st)
	}
	if !b.tick() {
		t.Fatal("closed breaker refused a load")
	}

	// Third failure opens with the initial cooldown (2 ticks).
	b.onFailure()
	if st := b.currentState(); st != breakerOpen {
		t.Fatalf("state %v after threshold, want open", st)
	}
	if b.tick() {
		t.Fatal("open breaker allowed a load on tick 1")
	}
	if !b.tick() {
		t.Fatal("cooldown elapsed but no half-open probe allowed")
	}
	if st := b.currentState(); st != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	// While the probe is outstanding no second probe runs.
	if b.tick() {
		t.Fatal("half-open breaker allowed a second probe")
	}

	// Failed probe: reopen with doubled cooldown (4 ticks).
	b.onFailure()
	if st := b.currentState(); st != breakerOpen {
		t.Fatalf("state %v after failed probe, want open", st)
	}
	for i := 0; i < 3; i++ {
		if b.tick() {
			t.Fatalf("open breaker allowed a load on doubled-cooldown tick %d", i+1)
		}
	}
	if !b.tick() {
		t.Fatal("doubled cooldown never elapsed")
	}

	// Successful probe closes and resets everything.
	b.onSuccess()
	d := b.dto()
	if d.State != "closed" || d.ConsecutiveFailures != 0 || d.CooldownPolls != 0 {
		t.Errorf("dto after success = %+v", d)
	}
	if d.Opens != 2 {
		t.Errorf("opens = %d, want 2", d.Opens)
	}
	if d.ReloadsSkipped == 0 {
		t.Error("no skipped loads recorded")
	}
}

// TestBreakerBackoffCap: repeated failed probes stop doubling at the
// cap.
func TestBreakerBackoffCap(t *testing.T) {
	b := newBreaker(1, 2)
	b.onFailure() // opens, backoff 2
	for i := 0; i < 12; i++ {
		// Burn the cooldown to half-open, then fail the probe.
		for !b.tick() {
		}
		b.onFailure()
	}
	b.mu.Lock()
	backoff := b.backoff
	b.mu.Unlock()
	if backoff != maxBreakerBackoff {
		t.Errorf("backoff = %d, want capped at %d", backoff, maxBreakerBackoff)
	}
}

// TestBreakerDefaults: zero config values take the documented
// defaults.
func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != defaultBreakerThreshold || b.backoff0 != defaultBreakerBackoff {
		t.Errorf("defaults = %d/%d, want %d/%d",
			b.threshold, b.backoff0, defaultBreakerThreshold, defaultBreakerBackoff)
	}
}

// TestBreakerFailureWhileOpen: a forced reload failing while open
// restarts the cooldown without growing the backoff.
func TestBreakerFailureWhileOpen(t *testing.T) {
	b := newBreaker(1, 2)
	b.onFailure() // open, cooldown 2
	if b.tick() { // cooldown 1
		t.Fatal("open breaker allowed a load")
	}
	b.onFailure() // forced reload failed: cooldown back to 2
	d := b.dto()
	if d.CooldownPolls != 2 || d.State != "open" || d.Opens != 1 {
		t.Errorf("dto = %+v, want cooldown restarted at 2, still open, 1 open", d)
	}
}

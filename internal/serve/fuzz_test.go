package serve

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// fuzzServer is shared across fuzz iterations; building a snapshot per
// input would drown the fuzzer in setup.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		dir := t.TempDir()
		writeDataDir(t, dir, fixtureStore(30), fixtureSeries(8), nil)
		srv, err := New(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv = srv
	})
	return fuzzSrv
}

// fuzzPaths cycle through every parameterized endpoint so each corpus
// entry exercises each decoder scope.
var fuzzPaths = []string{
	"/api/v1/aggregate",
	"/api/v1/distribution",
	"/api/v1/query",
	"/api/v1/profiles/users",
	"/api/v1/profiles/apps",
	"/api/v1/efficiency",
	"/api/v1/trends",
	"/api/v1/workload",
	"/api/v1/report",
}

// FuzzQueryParams feeds raw query strings through both the parameter
// decoder and the full HTTP stack. Malformed input must come back as a
// 4xx — never a panic, never a 5xx.
func FuzzQueryParams(f *testing.F) {
	seeds := []string{
		"",
		"metric=cpu_idle",
		"metric=cpu_flops&app=namd&user=u01",
		"metrics=cpu_idle,cpu_flops,mem_used&group=app&limit=5",
		"group=science&normalize=true",
		"metric=mem_used&bins=8&minsamples=2",
		"n=3&min_nodehours=10.5",
		"apps=namd,amber,gromacs",
		"suite=manager",
		"endafter=100&endbefore=200&status=completed&cluster=ranger&science=Physics",
		// Hostile shapes.
		"metric=cpu_idle&metric=cpu_idle",
		"metric=%00%ff",
		"limit=-999999999999999999999",
		"bins=1e309",
		"minsamples=0x10",
		"n=+-5",
		"group=;drop",
		"metrics=" + strings.Repeat("cpu_idle,", 500),
		strings.Repeat("a", 4096) + "=1",
		"%zz=%zz&==&&&;;;",
		"normalize=TRUE\x00",
		"min_nodehours=NaN",
		"min_nodehours=Inf",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := fuzzServer(f)

	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err == nil {
			// The decoder must classify, never panic, for any parsed
			// query under any endpoint's allowlist.
			_, _ = decodeParams(q, allParamKeys...)
			_, _ = decodeParams(q, "metric", "cluster")
		}

		path := fuzzPaths[len(raw)%len(fuzzPaths)]
		target := path
		if raw != "" {
			target += "?" + raw
		}
		req, err := http.NewRequest(http.MethodGet, target, nil)
		if err != nil {
			return // unencodable as a request-line; nothing to serve
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("GET %s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s: unexpected status %d", target, rec.Code)
		}
	})
}

package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"supremm/internal/leakcheck"
)

// TestShedWhenSaturated holds the single admission slot with a blocked
// request and checks a second request sheds with 503 + Retry-After and
// the shed counter moves.
func TestShedWhenSaturated(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(20), fixtureSeries(5), nil)

	block := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv, err := New(Config{
		DataDir:       dir,
		MaxInFlight:   1,
		MaxQueue:      -1, // no queue: shed at the limit
		RetryAfterSec: 7,
		Hooks: Hooks{BeforeHandle: func(context.Context, string) func() {
			entered <- struct{}{}
			<-block
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _ := get(t, srv, "/api/v1/workload")
		if status != http.StatusOK {
			t.Errorf("blocked request finished with %d", status)
		}
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never entered")
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/trends", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request: status %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q, want 7", got)
	}
	if n := srv.met.shed.Load(); n != 1 {
		t.Errorf("shed counter = %d, want 1", n)
	}

	// Ops endpoints keep answering while queries shed.
	for _, target := range []string{"/healthz", "/metrics", "/api/v1/health"} {
		if status, body := get(t, srv, target); status != http.StatusOK {
			t.Errorf("%s while saturated: %d (%s)", target, status, body)
		}
	}

	close(block)
	wg.Wait()
}

// TestRequestDeadlineCancelsAggregation blocks an admitted request
// until its per-request deadline fires, then checks the aggregation
// path surfaces 503 + Retry-After and counts a deadline timeout.
func TestRequestDeadlineCancelsAggregation(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(50), fixtureSeries(5), nil)

	srv, err := New(Config{
		DataDir:        dir,
		CacheSize:      -1, // no cache: the render must run
		RequestTimeout: 20 * time.Millisecond,
		Hooks: Hooks{BeforeHandle: func(ctx context.Context, _ string) func() {
			<-ctx.Done() // park until the deadline fires
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/aggregate?metric=cpu_idle", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("timed-out response lacks Retry-After")
	}
	if n := srv.met.deadlineTimeouts.Load(); n != 1 {
		t.Errorf("deadline_timeouts = %d, want 1", n)
	}
}

// TestPanicRecovery: a panicking handler (injected through the chaos
// hook) becomes a counted 500, and the daemon keeps serving.
func TestPanicRecovery(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(10), fixtureSeries(2), nil)

	var bomb sync.Once
	armed := true
	var mu sync.Mutex
	srv, err := New(Config{DataDir: dir, Hooks: Hooks{
		BeforeHandle: func(context.Context, string) func() {
			mu.Lock()
			a := armed
			mu.Unlock()
			if a {
				bomb.Do(func() {
					mu.Lock()
					armed = false
					mu.Unlock()
				})
				panic("chaos: injected handler panic")
			}
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	status, body := get(t, srv, "/api/v1/workload")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d (%s)", status, body)
	}
	if n := srv.met.panics.Load(); n != 1 {
		t.Errorf("panics_recovered = %d, want 1", n)
	}
	// The daemon survived; the same endpoint now answers, and the
	// admission slot the panicking request held was released.
	if status, body := get(t, srv, "/api/v1/workload"); status != http.StatusOK {
		t.Fatalf("request after panic: status %d (%s)", status, body)
	}
	if d := srv.adm.dto(); d.InFlight != 0 {
		t.Errorf("in_flight = %d after panic, want 0 (slot leaked)", d.InFlight)
	}
}

// TestHealthzReadyzProbes: /healthz stays 200 always; /readyz flips to
// 503 while the reload breaker is open and recovers on heal.
func TestHealthzReadyzProbes(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, series := fixtureStore(30), fixtureSeries(6)
	writeDataDir(t, dir, st, series, nil)
	good, err := os.ReadFile(filepath.Join(dir, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DataDir: dir, BreakerThreshold: 2, BreakerBackoffPolls: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"/healthz", "/readyz"} {
		if status, body := get(t, srv, target); status != http.StatusOK {
			t.Fatalf("%s on healthy daemon: %d (%s)", target, status, body)
		}
	}

	// Tear the snapshot and fail reloads until the breaker opens.
	if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), good[:len(good)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := srv.Reload(); err == nil {
			t.Fatal("reload of a torn snapshot succeeded")
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: %d (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("not-ready response lacks Retry-After")
	}
	var rz struct {
		Ready   bool   `json:"ready"`
		Breaker string `json:"breaker"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Ready || rz.Breaker != "open" {
		t.Errorf("readyz body = %+v", rz)
	}
	// Liveness is unaffected; queries still serve the last-good data.
	if status, _ := get(t, srv, "/healthz"); status != http.StatusOK {
		t.Errorf("healthz with open breaker: %d", status)
	}
	if status, _ := get(t, srv, "/api/v1/workload"); status != http.StatusOK {
		t.Errorf("query with open breaker: %d", status)
	}

	// Heal and force a reload: readyz recovers.
	if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if status, _ := get(t, srv, "/readyz"); status != http.StatusOK {
		t.Errorf("readyz after heal: %d", status)
	}
}

// TestMaybeReloadBreakerSkips drives the poll path against a torn
// directory: the breaker opens after the threshold, subsequent polls
// are skipped without touching the directory, the served generation
// never changes, and the half-open probe after heal recovers.
func TestMaybeReloadBreakerSkips(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, series := fixtureStore(25), fixtureSeries(4)
	writeDataDir(t, dir, st, series, nil)
	good, err := os.ReadFile(filepath.Join(dir, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DataDir: dir, BreakerThreshold: 3, BreakerBackoffPolls: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := srv.Snapshot().Gen

	if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), good[:len(good)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// Three polls fail (breaker closed -> open at the third).
	for i := 0; i < 3; i++ {
		if _, err := srv.MaybeReload(); err == nil {
			t.Fatalf("poll %d succeeded on a torn directory", i)
		}
	}
	if st := srv.brk.currentState(); st != breakerOpen {
		t.Fatalf("breaker %v after threshold polls, want open", st)
	}
	// Next poll is skipped: no error, no reload, cooldown burns.
	if reloaded, err := srv.MaybeReload(); reloaded || err != nil {
		t.Fatalf("skipped poll: reloaded=%v err=%v", reloaded, err)
	}
	if skipped := srv.brk.dto().ReloadsSkipped; skipped == 0 {
		t.Error("no skipped polls recorded while open")
	}
	if g := srv.Snapshot().Gen; g != gen {
		t.Fatalf("served generation moved to %d during failed reloads", g)
	}

	// Heal; the next allowed probe closes the breaker and advances.
	if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), good, 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Gen == gen {
		if time.Now().After(deadline) {
			t.Fatal("daemon never recovered after heal")
		}
		if _, err := srv.MaybeReload(); err != nil {
			t.Fatalf("probe after heal failed: %v", err)
		}
	}
	if st := srv.brk.currentState(); st != breakerClosed {
		t.Errorf("breaker %v after recovery, want closed", st)
	}
	if n := srv.met.reloadErrors.Load(); n != 3 {
		t.Errorf("reload_errors = %d, want 3 (skipped polls must not attempt loads)", n)
	}
}

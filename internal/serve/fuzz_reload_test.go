package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// fuzzReloadValidBinary renders the fixture store to its columnar
// binary form once; truncations of it seed the fuzzer with inputs that
// pass the magic check and fail deeper in the decoder.
func fuzzReloadValidBinary(tb testing.TB) []byte {
	var buf bytes.Buffer
	if err := fixtureStore(12).SaveBinary(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzReloadSeeds are the committed-corpus inputs: truncations of a
// valid snapshot (torn writes at several depths), plain garbage, a
// valid file, and an empty file.
func fuzzReloadSeeds(tb testing.TB) [][]byte {
	valid := fuzzReloadValidBinary(tb)
	return [][]byte{
		{},
		[]byte("not a snapshot at all"),
		[]byte("SUPRMMC1"), // magic alone, nothing behind it
		valid[:len(valid)/4],
		valid[:len(valid)/2],
		valid[:len(valid)-1],
		valid,
	}
}

// FuzzReloadCorrupt feeds arbitrary bytes through the poll-reload path
// as jobs.supremm and asserts the self-healing contract: a failed
// decode must never change the served snapshot (same pointer, same
// generation) and the daemon keeps answering, while a byte-for-byte
// valid file reloads normally. This is the breaker/reload analogue of
// the codec-level FuzzColumnsDecode: here the property under test is
// the daemon's behavior, not the decoder's.
func FuzzReloadCorrupt(f *testing.F) {
	for _, seed := range fuzzReloadSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		writeDataDir(t, dir, fixtureStore(6), fixtureSeries(3), nil)
		srv, err := New(Config{DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		before := srv.Snapshot()
		if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rerr := srv.Reload()
		after := srv.Snapshot()
		if rerr != nil {
			if after != before {
				t.Fatalf("failed reload changed the served snapshot (gen %d -> %d)",
					before.Gen, after.Gen)
			}
			if status, body := get(t, srv, "/api/v1/health"); status != http.StatusOK {
				t.Fatalf("health after failed reload: %d (%s)", status, body)
			}
			if status, _ := get(t, srv, "/healthz"); status != http.StatusOK {
				t.Fatalf("healthz after failed reload: %d", status)
			}
		} else if after.Gen != before.Gen+1 {
			t.Fatalf("successful reload: generation %d -> %d, want +1", before.Gen, after.Gen)
		}
	})
}

// TestRegenReloadCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzReloadCorrupt when -update is set, mirroring the
// golden-file update flow. The corpus pins the torn-write shapes so
// `make fuzz-smoke` replays them even without new fuzzing.
func TestRegenReloadCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the reload fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReloadCorrupt")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzReloadSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

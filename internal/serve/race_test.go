package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"supremm/internal/leakcheck"
)

// raceTargets mix cached data endpoints, the uncached health/metrics
// pair, and a deliberately bad request so the error path runs hot too.
var raceTargets = []string{
	"/api/v1/health",
	"/api/v1/aggregate?metric=cpu_idle",
	"/api/v1/aggregate?metric=cpu_flops&app=namd",
	"/api/v1/query?group=app&limit=5",
	"/api/v1/profiles/users?n=2",
	"/api/v1/efficiency",
	"/api/v1/distribution?metric=mem_used&bins=6",
	"/api/v1/workload",
	"/metrics",
	"/api/v1/aggregate?metric=bogus", // 400 path
}

// TestConcurrentQueriesDuringReload hammers every endpoint from many
// goroutines while the data directory is rewritten and hot-reloaded
// underneath them. Run under -race; a torn store shows up either as a
// race report or as a response that mixes generations (job counts that
// match neither snapshot).
func TestConcurrentQueriesDuringReload(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	// Two alternating corpora with distinct, recognizable job counts.
	stA, seriesA := fixtureStore(40), fixtureSeries(12)
	stB, seriesB := fixtureStore(90), fixtureSeries(24)
	writeDataDir(t, dir, stA, seriesA, nil)
	srv := newTestServer(t, dir)

	const (
		queriers = 8
		reloads  = 25
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, queriers)

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				target := raceTargets[(g+i)%len(raceTargets)]
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				switch rec.Code {
				case http.StatusOK, http.StatusBadRequest:
				default:
					select {
					case errc <- fmt.Errorf("%s: status %d: %s", target, rec.Code, rec.Body.String()):
					default:
					}
					return
				}
				// Health reports whole-snapshot facts; a torn store
				// would surface as a count from neither corpus.
				if target == "/api/v1/health" && rec.Code == http.StatusOK {
					var h struct {
						Jobs int `json:"jobs"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
						select {
						case errc <- fmt.Errorf("health unmarshal: %v", err):
						default:
						}
						return
					}
					if h.Jobs != 40 && h.Jobs != 90 {
						select {
						case errc <- fmt.Errorf("torn snapshot: %d jobs", h.Jobs):
						default:
						}
						return
					}
				}
			}
		}(g)
	}

	for i := 0; i < reloads; i++ {
		if i%2 == 0 {
			writeDataDir(t, dir, stB, seriesB, nil)
		} else {
			writeDataDir(t, dir, stA, seriesA, nil)
		}
		if _, err := srv.Reload(); err != nil {
			t.Errorf("reload %d: %v", i, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if gen := srv.Snapshot().Gen; gen != uint64(reloads)+1 {
		t.Errorf("final generation %d, want %d", gen, reloads+1)
	}
}

// TestConcurrentMaybeReload drives the polling entry point from many
// goroutines at once; reloadMu must serialize the loads so exactly one
// generation bump happens per directory change.
func TestConcurrentMaybeReload(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(10), fixtureSeries(4), nil)
	srv := newTestServer(t, dir)

	writeDataDir(t, dir, fixtureStore(20), fixtureSeries(4), nil)
	fixed := time.Unix(1700000100, 0)
	if err := os.Chtimes(filepath.Join(dir, "jobs.jsonl"), fixed, fixed); err != nil {
		t.Fatal(err)
	}

	var reloaded atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := srv.MaybeReload()
			if err != nil {
				t.Error(err)
			}
			if ok {
				reloaded.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := reloaded.Load(); n != 1 {
		t.Errorf("%d goroutines reloaded, want exactly 1", n)
	}
	if gen := srv.Snapshot().Gen; gen != 2 {
		t.Errorf("generation %d after one change, want 2", gen)
	}
}

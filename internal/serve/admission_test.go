package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestAdmissionLimitAndShed fills the valve to its limit plus queue
// and checks the next arrival sheds instead of waiting.
func TestAdmissionLimitAndShed(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()

	rel1, v := a.acquire(ctx)
	if v != admitOK {
		t.Fatalf("first acquire: %v", v)
	}
	rel2, v := a.acquire(ctx)
	if v != admitOK {
		t.Fatalf("second acquire: %v", v)
	}

	// Third waits in the queue; park it in a goroutine.
	got3 := make(chan admitVerdict, 1)
	var rel3 func()
	var mu sync.Mutex
	go func() {
		rel, v := a.acquire(ctx)
		mu.Lock()
		rel3 = rel
		mu.Unlock()
		got3 <- v
	}()
	// Wait for it to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("third acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Fourth finds limit and queue full: shed.
	if rel, v := a.acquire(ctx); v != admitShed {
		t.Fatalf("fourth acquire: %v, want shed", v)
	} else if rel != nil {
		t.Fatal("shed returned a release")
	}

	// Releasing a slot admits the queued waiter.
	rel1()
	select {
	case v := <-got3:
		if v != admitOK {
			t.Fatalf("queued acquire: %v, want ok", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
	rel2()
	mu.Lock()
	rel3()
	mu.Unlock()

	d := a.dto()
	if d.Admitted != 3 || d.Queued != 1 || d.InFlight != 0 || d.InFlightPeak != 2 {
		t.Errorf("dto = %+v", d)
	}
}

// TestAdmissionCancelWhileQueued: a queued client whose context dies
// must report admitCancelled and free its queue slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 1)
	rel, v := a.acquire(context.Background())
	if v != admitOK {
		t.Fatalf("first acquire: %v", v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan admitVerdict, 1)
	go func() {
		r, v := a.acquire(ctx)
		if r != nil {
			r()
		}
		got <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case v := <-got:
		if v != admitCancelled {
			t.Fatalf("verdict %v, want cancelled", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	// The queue slot came back.
	deadline = time.Now().Add(5 * time.Second)
	for len(a.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot leaked after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
}

// TestAdmissionDrain: beginDrain sheds queued waiters and all later
// arrivals, while held slots stay valid.
func TestAdmissionDrain(t *testing.T) {
	a := newAdmission(1, 2)
	rel, v := a.acquire(context.Background())
	if v != admitOK {
		t.Fatalf("first acquire: %v", v)
	}
	got := make(chan admitVerdict, 1)
	go func() {
		r, v := a.acquire(context.Background())
		if r != nil {
			r()
		}
		got <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never queued")
		}
		time.Sleep(time.Millisecond)
	}
	a.beginDrain()
	a.beginDrain() // idempotent
	select {
	case v := <-got:
		if v != admitShed {
			t.Fatalf("queued waiter verdict %v, want shed", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter not shed by drain")
	}
	if _, v := a.acquire(context.Background()); v != admitShed {
		t.Fatalf("post-drain acquire verdict %v, want shed", v)
	}
	rel() // releasing a pre-drain slot must not panic
	if !a.dto().Draining {
		t.Error("dto does not report draining")
	}
}

// TestAdmissionNilAdmitsEverything: admission disabled is a nil
// pointer that admits unconditionally.
func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *admission
	rel, v := a.acquire(context.Background())
	if v != admitOK || rel == nil {
		t.Fatalf("nil admission: verdict %v", v)
	}
	rel()
	a.beginDrain() // no-op, no panic
	if d := a.dto(); d.Enabled {
		t.Error("nil admission reports enabled")
	}
}

// TestAdmissionNoQueue: queueCap 0 sheds immediately at the limit.
func TestAdmissionNoQueue(t *testing.T) {
	a := newAdmission(1, 0)
	rel, v := a.acquire(context.Background())
	if v != admitOK {
		t.Fatalf("first acquire: %v", v)
	}
	if _, v := a.acquire(context.Background()); v != admitShed {
		t.Fatalf("second acquire: %v, want immediate shed", v)
	}
	rel()
}

package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"supremm/internal/store"
)

// benchStore builds a 100k-job store with 500 distinct users, so a
// user filter is selective (~0.2% of rows) — the regime where the
// posting-list index should beat the scan by a wide margin.
func benchStore(n int) *store.Store {
	st := store.New()
	apps := []string{"namd", "amber", "gromacs", "wrf", "hpl", "charmm"}
	for i := 0; i < n; i++ {
		r := store.JobRecord{
			JobID:   int64(100 + i),
			Cluster: "ranger",
			User:    fmt.Sprintf("u%03d", i%500),
			App:     apps[i%len(apps)],
			Science: []string{"Chemistry", "Physics", "Biology"}[i%3],
			Nodes:   1 + i%64,
			Submit:  int64(100 * i),
			Start:   int64(100*i + 60),
			End:     int64(100*i + 60 + 1800*(1+i%8)),
			Status:  "completed",
			Samples: 1 + i%5,
		}
		r.CPUIdleFrac = float64(i%100) / 100
		r.MemUsedGB = float64(i % 29)
		r.FlopsGF = 0.7 * float64(i%17)
		st.Add(r)
	}
	return st
}

const benchJobs = 100_000

// selectiveFilter hits one user out of 500.
var selectiveFilter = store.Filter{Cluster: "ranger", User: "u042", MinSamples: 1}

// BenchmarkServeAggregate measures the aggregation path at both layers:
// the store (scan vs index+shards) and the HTTP surface (cache-off vs
// cache-on). bench-serve greps these names, and the indexed-vs-scan
// ratio here backs the ≥5x acceptance criterion.
func BenchmarkServeAggregate(b *testing.B) {
	st := benchStore(benchJobs)
	workers := runtime.GOMAXPROCS(0)

	b.Run("store-scan", func(b *testing.B) {
		// Sequential full-table scan: the pre-index baseline.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.Aggregate(store.MetricFlops, selectiveFilter)
		}
	})

	st.BuildIndex()
	b.Run("store-indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(store.MetricFlops, selectiveFilter, workers)
		}
	})

	b.Run("store-indexed-broad", func(b *testing.B) {
		// Unselective filter: every row matches, so the index cannot
		// prune and the win comes only from sharded accumulation.
		broad := store.Filter{Cluster: "ranger", MinSamples: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(store.MetricFlops, broad, workers)
		}
	})

	dir := b.TempDir()
	writeDataDir(b, dir, st, fixtureSeries(8), nil)
	const target = "/api/v1/aggregate?metric=cpu_flops&user=u042"

	serveOnce := func(b *testing.B, srv *Server) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}

	b.Run("http-cold", func(b *testing.B) {
		// Cache disabled: every request re-runs the indexed aggregate
		// and re-marshals the body.
		srv, err := New(Config{DataDir: dir, CacheSize: -1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, srv)
		}
	})

	b.Run("http-cached", func(b *testing.B) {
		srv, err := New(Config{DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		serveOnce(b, srv) // warm the entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOnce(b, srv)
		}
	})
}

// BenchmarkLoadRealm compares the two snapshot load paths on a
// 100k-job realm: JSON-lines decode vs the columnar binary format.
// bench-store greps this name; the binary/jsonl ratio here backs the
// ≥5x load-speedup acceptance criterion enforced by
// TestLoadRealmSpeedupFloor.
func BenchmarkLoadRealm(b *testing.B) {
	st := benchStore(benchJobs)
	dir := b.TempDir()
	writeDataDir(b, dir, st, fixtureSeries(8), nil)
	jsonlDir := b.TempDir()
	writeDataDir(b, jsonlDir, st, fixtureSeries(8), nil)
	if err := os.Remove(filepath.Join(jsonlDir, "jobs.supremm")); err != nil {
		b.Fatal(err)
	}

	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			realm, source, err := LoadRealmSource(jsonlDir)
			if err != nil {
				b.Fatal(err)
			}
			if source != SourceJSONL || realm.Store.Len() != benchJobs {
				b.Fatalf("source %q, %d jobs", source, realm.Store.Len())
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			realm, source, err := LoadRealmSource(dir)
			if err != nil {
				b.Fatal(err)
			}
			if source != SourceBinary || realm.Store.Len() != benchJobs {
				b.Fatalf("source %q, %d jobs", source, realm.Store.Len())
			}
		}
	})
}

// TestLoadRealmSpeedupFloor is the executable form of the load-path
// acceptance criterion: on a 100k-job realm, loading the columnar
// binary snapshot must be at least 5x faster than decoding the same
// store from JSON lines. The measured ratio is far higher; 5x keeps
// scheduler noise from flaking it.
func TestLoadRealmSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row load comparison in -short mode")
	}
	st := benchStore(benchJobs)
	dir := t.TempDir()
	writeDataDir(t, dir, st, fixtureSeries(8), nil)
	jsonlDir := t.TempDir()
	writeDataDir(t, jsonlDir, st, fixtureSeries(8), nil)
	if err := os.Remove(filepath.Join(jsonlDir, "jobs.supremm")); err != nil {
		t.Fatal(err)
	}

	jsonl := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadRealmSource(jsonlDir); err != nil {
				b.Fatal(err)
			}
		}
	})
	bin := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadRealmSource(dir); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(jsonl.NsPerOp()) / float64(bin.NsPerOp())
	t.Logf("jsonl %v/op, binary %v/op, speedup %.1fx", jsonl.NsPerOp(), bin.NsPerOp(), ratio)
	if ratio < 5 {
		t.Errorf("binary load only %.1fx faster than jsonl, want >= 5x", ratio)
	}
}

// TestIndexedSpeedupFloor is the executable form of the acceptance
// criterion: on a 100k-job store, the indexed aggregate must be at
// least 5x faster than the scan for a selective filter. Benchmarks
// don't fail CI; this does. The bar is deliberately below the ~100x
// typically measured, so scheduler noise can't flake it.
func TestIndexedSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row timing comparison in -short mode")
	}
	st := benchStore(benchJobs)
	scan := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = st.Aggregate(store.MetricFlops, selectiveFilter)
		}
	})
	st.BuildIndex()
	indexed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = st.AggregateParallel(store.MetricFlops, selectiveFilter, runtime.GOMAXPROCS(0))
		}
	})
	ratio := float64(scan.NsPerOp()) / float64(indexed.NsPerOp())
	t.Logf("scan %v/op, indexed %v/op, speedup %.1fx", scan.NsPerOp(), indexed.NsPerOp(), ratio)
	if ratio < 5 {
		t.Errorf("indexed aggregate only %.1fx faster than scan, want >= 5x", ratio)
	}
}

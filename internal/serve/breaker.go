package serve

import "sync"

// breakerState is the reload circuit breaker's position.
type breakerState int

const (
	// breakerClosed: reloads flow normally.
	breakerClosed breakerState = iota
	// breakerOpen: consecutive reload failures crossed the threshold;
	// load attempts are skipped for a cooldown counted in poll ticks
	// while the daemon keeps serving the last-good snapshot.
	breakerOpen
	// breakerHalfOpen: the cooldown elapsed and exactly one probe load
	// is in flight; its outcome closes or re-opens the breaker.
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the snapshot-reload circuit breaker. A torn or corrupt
// data directory (a legacy non-atomic writer caught mid-rewrite, a
// half-copied restore) makes every poll's load fail; without a breaker
// the daemon would burn a full parse of the broken directory per tick
// while queries contend with it. The breaker counts consecutive
// failures, opens at a threshold, and then skips load attempts for an
// exponentially growing cooldown before letting a single half-open
// probe through. Serving is never interrupted: the last-good
// generation stays published the whole time, and /readyz reports the
// breaker state so operators and balancers can see the daemon is
// degraded but alive.
//
// Cooldowns are counted in poll ticks, not seconds: internal/serve is
// clock-free by the walltime lint invariant, and tick counting makes
// breaker tests and the chaos harness fully deterministic.
type breaker struct {
	mu         sync.Mutex
	threshold  int // consecutive failures that open the breaker
	backoff0   int // initial cooldown, in poll ticks
	maxBackoff int // cooldown growth cap

	state       breakerState
	consecutive int // reload failures since the last success
	cooldown    int // ticks remaining before the next probe while open
	backoff     int // current cooldown length
	opens       int64
	skipped     int64 // load attempts suppressed while open
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerBackoff   = 2
	maxBreakerBackoff       = 64
)

func newBreaker(threshold, backoff0 int) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if backoff0 <= 0 {
		backoff0 = defaultBreakerBackoff
	}
	return &breaker{threshold: threshold, backoff0: backoff0, maxBackoff: maxBreakerBackoff}
}

// tick is called once per poll that found the directory changed; it
// decides whether a load attempt may run now. While open it burns one
// cooldown tick, transitioning to half-open (probe allowed) when the
// cooldown hits zero.
func (b *breaker) tick() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		b.cooldown--
		if b.cooldown <= 0 {
			b.state = breakerHalfOpen
			return true
		}
		b.skipped++
		return false
	default: // half-open: one probe already outstanding
		b.skipped++
		return false
	}
}

// onSuccess records a completed reload: whatever the state, the
// directory is loadable again, so the breaker closes and the backoff
// resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.cooldown = 0
	b.backoff = 0
}

// onFailure records a failed reload. The half-open probe failing
// re-opens with a doubled cooldown (capped); the closed breaker opens
// once consecutive failures reach the threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case breakerHalfOpen:
		b.backoff = min(b.backoff*2, b.maxBackoff)
		b.state = breakerOpen
		b.cooldown = b.backoff
		b.opens++
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.backoff = b.backoff0
			b.cooldown = b.backoff
			b.opens++
		}
	case breakerOpen:
		// A forced reload (POST /api/v1/reload) failed while open:
		// restart the current cooldown, no extra growth.
		b.cooldown = b.backoff
	}
}

// breakerDTO is the /metrics and /readyz view of the breaker.
type breakerDTO struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int64  `json:"opens"`
	ReloadsSkipped      int64  `json:"reloads_skipped"`
	CooldownPolls       int    `json:"cooldown_polls"`
}

func (b *breaker) dto() breakerDTO {
	b.mu.Lock()
	defer b.mu.Unlock()
	return breakerDTO{
		State:               b.state.String(),
		ConsecutiveFailures: b.consecutive,
		Opens:               b.opens,
		ReloadsSkipped:      b.skipped,
		CooldownPolls:       b.cooldown,
	}
}

// currentState returns the state alone (readyz's gate).
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

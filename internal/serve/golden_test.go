package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
)

// update regenerates the committed golden responses:
//
//	go test ./internal/serve -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeed pins the end-to-end corpus. Changing it (or anything in
// the simulate→ingest chain) is a deliberate act recorded by the
// golden-file diff.
const goldenSeed = 7

// goldenTargets are the pinned API requests. Each response must be
// byte-stable for the pinned seed, run after run, machine after
// machine.
var goldenTargets = []string{
	"/api/v1/health",
	"/api/v1/aggregate?metric=cpu_idle",
	"/api/v1/aggregate?metric=cpu_flops&app=namd",
	"/api/v1/aggregate?metric=mem_used&minsamples=2",
	"/api/v1/distribution?metric=mem_used&bins=8",
	"/api/v1/query?group=app&metrics=cpu_idle,cpu_flops&limit=5",
	"/api/v1/query?group=science&normalize=true",
	"/api/v1/profiles/users?n=3",
	"/api/v1/profiles/apps?apps=namd,amber",
	"/api/v1/efficiency?n=3",
	"/api/v1/trends",
	"/api/v1/workload",
	"/api/v1/quality",
	"/api/v1/report?suite=manager",
}

// simGoldenRaw simulates the golden ranger into raw TACC_Stats
// archives under root and round-trips the accounting log through its
// wire format, exactly as cmd/ingest reads it.
func simGoldenRaw(t testing.TB, root string) (string, []sched.AcctRecord) {
	t.Helper()
	rawDir := filepath.Join(root, "raw")
	cfg := sim.DefaultConfig(cluster.RangerConfig().Scaled(32), goldenSeed)
	cfg.DurationMin = 4 * 24 * 60
	cfg.RawDir = rawDir
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	acctPath := filepath.Join(root, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, res.Acct); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := sched.ReadAcct(rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	return rawDir, acct
}

// writeGoldenDataDir ingests the raw archives and writes the full data
// directory in the cmd/ingest discipline: rows regrouped by job-end
// day first, so the monolithic files hold exactly the concatenation of
// the day shards, then jsonl + binary + series + quality + the shard
// set with its manifest.
func writeGoldenDataDir(t testing.TB, rawDir string, acct []sched.AcctRecord, dataDir string) {
	t.Helper()
	ing, err := ingest.IngestRawOpts(rawDir, acct, ingest.Options{Policy: ingest.Lenient, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	ing.Store.ReorderByEndDay()
	writeStoreFile(t, filepath.Join(dataDir, "jobs.jsonl"), ing.Store)
	writeBinaryFile(t, filepath.Join(dataDir, "jobs.supremm"), ing.Store)
	writeSeriesFile(t, filepath.Join(dataDir, "series.jsonl"), ing.Series)
	if err := ingest.SaveQuality(filepath.Join(dataDir, "quality.json"), &ing.Quality); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteShardDir(dataDir, ing.Store); err != nil {
		t.Fatal(err)
	}
}

// buildGoldenData runs the full pipeline in-process: simulate a small
// ranger with raw TACC_Stats archives, round-trip the accounting log
// through its file format, ingest the archives, and write the data
// directory the daemon loads — the same byte path production takes.
func buildGoldenData(t testing.TB, root string) string {
	t.Helper()
	rawDir, acct := simGoldenRaw(t, root)
	dataDir := filepath.Join(root, "data")
	writeGoldenDataDir(t, rawDir, acct, dataDir)
	return dataDir
}

func writeStoreFile(t testing.TB, path string, st *store.Store) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeBinaryFile(t testing.TB, path string, st *store.Store) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeSeriesFile(t testing.TB, path string, series []store.SystemSample) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSeries(f, series); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// goldenFileName maps an API target to its committed file.
func goldenFileName(target string) string {
	name := strings.TrimPrefix(target, "/api/v1/")
	r := strings.NewReplacer("/", "_", "?", ".", "&", ".", "=", "-", ",", "+")
	return r.Replace(name) + ".golden"
}

func fetchAll(t testing.TB, srv *Server) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(goldenTargets))
	for _, target := range goldenTargets {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		out[target] = rec.Body.Bytes()
	}
	return out
}

// stripHealth re-marshals a health body with the named keys removed,
// for comparisons across servers that legitimately differ in them
// (load source, shard count, generation) while every data-bearing
// field must still match.
func stripHealth(t testing.TB, body []byte, drop ...string) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("health body not JSON: %v", err)
	}
	for _, k := range drop {
		delete(m, k)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenEndToEnd pins the full pipeline: simulate → raw archives →
// ingest → supremmd responses, compared byte-for-byte against the
// committed golden files, and re-run from scratch to prove the chain
// is bit-stable. The daemon must be answering from the sharded form —
// the preferred load source is part of the pinned behavior.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	dataDir := buildGoldenData(t, t.TempDir())
	srv := newTestServer(t, dataDir)
	if src := srv.Snapshot().Source; src != SourceShards {
		t.Fatalf("golden pipeline loaded from %q, want %q", src, SourceShards)
	}
	got := fetchAll(t, srv)

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, target := range goldenTargets {
			path := filepath.Join("testdata", "golden", goldenFileName(target))
			if err := os.WriteFile(path, got[target], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden files", len(goldenTargets))
		return
	}

	for _, target := range goldenTargets {
		path := filepath.Join("testdata", "golden", goldenFileName(target))
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", target, err)
		}
		if !bytes.Equal(got[target], want) {
			t.Errorf("%s: response differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
				target, path, clip(got[target]), clip(want))
		}
	}

	// Second full pipeline run from scratch: every byte must repeat.
	dataDir2 := buildGoldenData(t, t.TempDir())
	srv2 := newTestServer(t, dataDir2)
	again := fetchAll(t, srv2)
	for _, target := range goldenTargets {
		if !bytes.Equal(got[target], again[target]) {
			t.Errorf("%s: two pipeline runs disagree — the chain is not deterministic", target)
		}
	}
}

// TestGoldenLoadPaths proves the three load paths are observationally
// identical: a daemon that loaded the shard set answers every pinned
// endpoint with exactly the bytes of one that loaded jobs.supremm, and
// of one that loaded jobs.jsonl. The backing is a pure encoding choice
// — no data response may depend on which files backed the store. Only
// /health may differ, and only in the fields that name the backing.
func TestGoldenLoadPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	shardDir := buildGoldenData(t, t.TempDir())

	// binDir drops the manifest and shards, forcing the monolithic
	// binary; jsonlDir additionally drops the binary, forcing jsonl.
	copyInto := func(names []string) string {
		dir := filepath.Join(t.TempDir(), "data")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			b, err := os.ReadFile(filepath.Join(shardDir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}
	binDir := copyInto([]string{"jobs.supremm", "jobs.jsonl", "series.jsonl", "quality.json"})
	jsonlDir := copyInto([]string{"jobs.jsonl", "series.jsonl", "quality.json"})

	servers := []struct {
		name   string
		srv    *Server
		source string
	}{
		{"shards", newTestServer(t, shardDir), SourceShards},
		{"binary", newTestServer(t, binDir), SourceBinary},
		{"jsonl", newTestServer(t, jsonlDir), SourceJSONL},
	}
	bodies := make([]map[string][]byte, len(servers))
	for i, s := range servers {
		if got := s.srv.Snapshot().Source; got != s.source {
			t.Fatalf("%s directory loaded from %q, want %q", s.name, got, s.source)
		}
		bodies[i] = fetchAll(t, s.srv)
	}

	for _, target := range goldenTargets {
		for i := 1; i < len(servers); i++ {
			got, want := bodies[i][target], bodies[0][target]
			if target == "/api/v1/health" {
				// The health endpoint names its backing; everything else
				// in it must still agree across sources.
				got = stripHealth(t, got, "source", "shards")
				want = stripHealth(t, want, "source", "shards")
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: %s-loaded response differs from shards-loaded\n%s:\n%s\nshards:\n%s",
					target, servers[i].name, servers[i].name, clip(got), clip(want))
			}
		}
	}
}

// maxRawDay scans the raw tree (rawDir/<host>/<day>.raw) for the
// latest day any archive covers.
func maxRawDay(t testing.TB, rawDir string) int64 {
	t.Helper()
	hosts, err := os.ReadDir(rawDir)
	if err != nil {
		t.Fatal(err)
	}
	maxDay := int64(-1 << 62)
	for _, h := range hosts {
		if !h.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(rawDir, h.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			day, err := strconv.ParseInt(strings.TrimSuffix(f.Name(), ".raw"), 10, 64)
			if err != nil {
				t.Fatalf("unexpected raw file %s/%s: %v", h.Name(), f.Name(), err)
			}
			if day > maxDay {
				maxDay = day
			}
		}
	}
	return maxDay
}

// stageRawBefore copies the raw tree, keeping only archives for days
// strictly before cutoff — the corpus as it stood before the last
// day's collection landed.
func stageRawBefore(t testing.TB, rawDir string, cutoff int64) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "raw")
	hosts, err := os.ReadDir(rawDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if !h.IsDir() {
			continue
		}
		if err := os.MkdirAll(filepath.Join(dst, h.Name()), 0o755); err != nil {
			t.Fatal(err)
		}
		files, err := os.ReadDir(filepath.Join(rawDir, h.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			day, err := strconv.ParseInt(strings.TrimSuffix(f.Name(), ".raw"), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if day >= cutoff {
				continue
			}
			b, err := os.ReadFile(filepath.Join(rawDir, h.Name(), f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, h.Name(), f.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dst
}

// TestGoldenIncrementalReload pins the operational loop the shard
// store exists for: ingest a partial corpus (the raw tree minus its
// last day), serve it, then land the full ingest in the same directory
// and poll. The daemon must pick the batch up incrementally — adopting
// the byte-identical history shards from the previous generation — and
// afterwards answer every pinned endpoint with exactly the committed
// golden bytes, indistinguishable from a cold full load.
func TestGoldenIncrementalReload(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	root := t.TempDir()
	rawDir, acct := simGoldenRaw(t, root)
	partialRaw := stageRawBefore(t, rawDir, maxRawDay(t, rawDir))

	dataDir := filepath.Join(root, "data")
	writeGoldenDataDir(t, partialRaw, acct, dataDir)
	srv := newTestServer(t, dataDir)
	snapA := srv.Snapshot()
	if snapA.Source != SourceShards {
		t.Fatalf("partial corpus loaded from %q, want %q", snapA.Source, SourceShards)
	}
	if snapA.Shards < 2 {
		t.Fatalf("partial corpus produced %d shards; need >= 2 for a reuse check", snapA.Shards)
	}

	// The full batch lands in place; the poll must catch it.
	writeGoldenDataDir(t, rawDir, acct, dataDir)
	reloaded, err := srv.MaybeReload()
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded {
		t.Fatal("MaybeReload missed the full batch")
	}
	snapB := srv.Snapshot()
	if snapB.Gen <= snapA.Gen {
		t.Fatalf("generation did not advance (%d -> %d)", snapA.Gen, snapB.Gen)
	}
	if snapB.Shards < snapA.Shards {
		t.Fatalf("full corpus has %d shards, fewer than partial's %d", snapB.Shards, snapA.Shards)
	}
	// History days re-ingest to byte-identical shards, so the reload
	// must have adopted them rather than re-decoded. Jobs straddling
	// the cutoff can shift the last partial day's shard, so the floor
	// is "some reuse", not "all but one".
	if snapB.ShardsReused < 1 {
		t.Fatalf("incremental reload reused %d shards, want >= 1 (%d total)",
			snapB.ShardsReused, snapB.Shards)
	}
	t.Logf("incremental reload: %d -> %d shards, %d reused",
		snapA.Shards, snapB.Shards, snapB.ShardsReused)

	// The incrementally-reloaded daemon is indistinguishable from a
	// cold load of the full corpus — and from the committed goldens.
	got := fetchAll(t, srv)
	cold := fetchAll(t, newTestServer(t, dataDir))
	for _, target := range goldenTargets {
		gotBody, coldBody := got[target], cold[target]
		if target == "/api/v1/health" {
			// Generation is the one legitimate difference: the live
			// daemon is on gen 2, the cold reference on gen 1.
			gotBody = stripHealth(t, gotBody, "generation")
			coldBody = stripHealth(t, coldBody, "generation")
		}
		if !bytes.Equal(gotBody, coldBody) {
			t.Errorf("%s: incrementally-reloaded response differs from cold full load\ngot:\n%s\ncold:\n%s",
				target, clip(gotBody), clip(coldBody))
		}
		if *update || target == "/api/v1/health" {
			continue // goldens are written by TestGoldenEndToEnd at gen 1
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden", goldenFileName(target)))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", target, err)
		}
		if !bytes.Equal(got[target], want) {
			t.Errorf("%s: post-reload response differs from committed golden", target)
		}
	}
}

func clip(b []byte) string {
	const max = 2000
	if len(b) > max {
		return string(b[:max]) + fmt.Sprintf("... (%d more bytes)", len(b)-max)
	}
	return string(b)
}

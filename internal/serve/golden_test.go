package serve

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/sched"
	"supremm/internal/sim"
	"supremm/internal/store"
)

// update regenerates the committed golden responses:
//
//	go test ./internal/serve -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenSeed pins the end-to-end corpus. Changing it (or anything in
// the simulate→ingest chain) is a deliberate act recorded by the
// golden-file diff.
const goldenSeed = 7

// goldenTargets are the pinned API requests. Each response must be
// byte-stable for the pinned seed, run after run, machine after
// machine.
var goldenTargets = []string{
	"/api/v1/health",
	"/api/v1/aggregate?metric=cpu_idle",
	"/api/v1/aggregate?metric=cpu_flops&app=namd",
	"/api/v1/aggregate?metric=mem_used&minsamples=2",
	"/api/v1/distribution?metric=mem_used&bins=8",
	"/api/v1/query?group=app&metrics=cpu_idle,cpu_flops&limit=5",
	"/api/v1/query?group=science&normalize=true",
	"/api/v1/profiles/users?n=3",
	"/api/v1/profiles/apps?apps=namd,amber",
	"/api/v1/efficiency?n=3",
	"/api/v1/trends",
	"/api/v1/workload",
	"/api/v1/quality",
	"/api/v1/report?suite=manager",
}

// buildGoldenData runs the full pipeline in-process: simulate a small
// ranger with raw TACC_Stats archives, round-trip the accounting log
// through its file format, ingest the archives, and write the data
// directory the daemon loads — the same byte path production takes.
func buildGoldenData(t testing.TB, root string) string {
	t.Helper()
	rawDir := filepath.Join(root, "raw")
	cfg := sim.DefaultConfig(cluster.RangerConfig().Scaled(32), goldenSeed)
	cfg.DurationMin = 4 * 24 * 60
	cfg.RawDir = rawDir
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Accounting goes through its wire format, as cmd/ingest reads it.
	acctPath := filepath.Join(root, "accounting.log")
	af, err := os.Create(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.WriteAcct(af, res.Acct); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(acctPath)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := sched.ReadAcct(rf)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}

	ing, err := ingest.IngestRawOpts(rawDir, acct, ingest.Options{Policy: ingest.Lenient, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(root, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeStoreFile(t, filepath.Join(dataDir, "jobs.jsonl"), ing.Store)
	writeBinaryFile(t, filepath.Join(dataDir, "jobs.supremm"), ing.Store)
	writeSeriesFile(t, filepath.Join(dataDir, "series.jsonl"), ing.Series)
	if err := ingest.SaveQuality(filepath.Join(dataDir, "quality.json"), &ing.Quality); err != nil {
		t.Fatal(err)
	}
	return dataDir
}

func writeStoreFile(t testing.TB, path string, st *store.Store) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeBinaryFile(t testing.TB, path string, st *store.Store) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func writeSeriesFile(t testing.TB, path string, series []store.SystemSample) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSeries(f, series); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// goldenFileName maps an API target to its committed file.
func goldenFileName(target string) string {
	name := strings.TrimPrefix(target, "/api/v1/")
	r := strings.NewReplacer("/", "_", "?", ".", "&", ".", "=", "-", ",", "+")
	return r.Replace(name) + ".golden"
}

func fetchAll(t testing.TB, srv *Server) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(goldenTargets))
	for _, target := range goldenTargets {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body.String())
		}
		out[target] = rec.Body.Bytes()
	}
	return out
}

// TestGoldenEndToEnd pins the full pipeline: simulate → raw archives →
// ingest → supremmd responses, compared byte-for-byte against the
// committed golden files, and re-run from scratch to prove the chain
// is bit-stable.
func TestGoldenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	dataDir := buildGoldenData(t, t.TempDir())
	srv := newTestServer(t, dataDir)
	got := fetchAll(t, srv)

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, target := range goldenTargets {
			path := filepath.Join("testdata", "golden", goldenFileName(target))
			if err := os.WriteFile(path, got[target], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden files", len(goldenTargets))
		return
	}

	for _, target := range goldenTargets {
		path := filepath.Join("testdata", "golden", goldenFileName(target))
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", target, err)
		}
		if !bytes.Equal(got[target], want) {
			t.Errorf("%s: response differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
				target, path, clip(got[target]), clip(want))
		}
	}

	// Second full pipeline run from scratch: every byte must repeat.
	dataDir2 := buildGoldenData(t, t.TempDir())
	srv2 := newTestServer(t, dataDir2)
	again := fetchAll(t, srv2)
	for _, target := range goldenTargets {
		if !bytes.Equal(got[target], again[target]) {
			t.Errorf("%s: two pipeline runs disagree — the chain is not deterministic", target)
		}
	}
}

// TestGoldenLoadPaths proves the two load paths are observationally
// identical: a daemon that loaded jobs.supremm answers every pinned
// endpoint with exactly the bytes of a daemon that loaded jobs.jsonl.
// The binary snapshot is a pure encoding change — no response may
// depend on which file backed the store.
func TestGoldenLoadPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end pipeline in -short mode")
	}
	dataDir := buildGoldenData(t, t.TempDir())

	// jsonlDir is the same directory minus the binary snapshot, forcing
	// the fallback path.
	jsonlDir := filepath.Join(t.TempDir(), "data")
	if err := os.MkdirAll(jsonlDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"jobs.jsonl", "series.jsonl", "quality.json"} {
		b, err := os.ReadFile(filepath.Join(dataDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jsonlDir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srvBin := newTestServer(t, dataDir)
	srvJSON := newTestServer(t, jsonlDir)
	if got := srvBin.Snapshot().Source; got != SourceBinary {
		t.Fatalf("snapshot with jobs.supremm loaded from %q, want %q", got, SourceBinary)
	}
	if got := srvJSON.Snapshot().Source; got != SourceJSONL {
		t.Fatalf("snapshot without jobs.supremm loaded from %q, want %q", got, SourceJSONL)
	}

	fromBin := fetchAll(t, srvBin)
	fromJSON := fetchAll(t, srvJSON)
	for _, target := range goldenTargets {
		if !bytes.Equal(fromBin[target], fromJSON[target]) {
			t.Errorf("%s: binary-loaded response differs from jsonl-loaded\nbinary:\n%s\njsonl:\n%s",
				target, clip(fromBin[target]), clip(fromJSON[target]))
		}
	}
}

func clip(b []byte) string {
	const max = 2000
	if len(b) > max {
		return string(b[:max]) + fmt.Sprintf("... (%d more bytes)", len(b)-max)
	}
	return string(b)
}

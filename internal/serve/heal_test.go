package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"supremm/internal/faultinject"
	"supremm/internal/ingest"
	"supremm/internal/leakcheck"
	"supremm/internal/store"
)

// healQuality is the ingest report the self-heal fixtures share; the
// /api/v1/quality body depends on it, so baseline servers must use the
// same one.
var healQuality = &ingest.DataQuality{FilesScanned: 9}

// withoutDay rebuilds a store minus one epoch day's rows — the corpus a
// healthy-shards-only baseline server loads, for bit-exact comparison
// against degraded serving.
func withoutDay(full *store.Store, day int64) *store.Store {
	st := store.New()
	for i := 0; i < full.Len(); i++ {
		r := full.Record(i)
		if store.EpochDay(r.End) == day {
			continue
		}
		st.Add(r)
	}
	return st
}

// corruptFile flips one byte in the middle of a file in place (size
// preserved, mtime updated — the damage a fingerprint CAN see).
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// getRec is get plus headers: one in-process request, full recorder.
func getRec(srv *Server, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

// readyzBody is the subset of the /readyz body the tests assert on.
type readyzBody struct {
	Ready    bool     `json:"ready"`
	Status   string   `json:"status"`
	Breaker  string   `json:"breaker"`
	Coverage Coverage `json:"coverage"`
}

func readyz(t *testing.T, srv *Server) (int, readyzBody, http.Header) {
	t.Helper()
	rec := getRec(srv, "/readyz")
	var body readyzBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("readyz body: %v (%s)", err, rec.Body.Bytes())
	}
	return rec.Code, body, rec.Header()
}

// TestHealDegradedServing: a shard is damaged and no monolithic backing
// exists, so repair is impossible. With SelfHeal on the load must
// SUCCEED degraded — honest coverage accounting everywhere, quarantine
// evidence on disk, and every data response bit-identical to a server
// that never had the missing day.
func TestHealDegradedServing(t *testing.T) {
	const perDay = 40
	full := dayStore(3, perDay)
	dir := t.TempDir()
	writeShardDataDir(t, dir, full, fixtureSeries(30), healQuality)
	corruptFile(t, filepath.Join(dir, store.ShardFileName(1)))
	for _, backing := range []string{"jobs.supremm", "jobs.jsonl"} {
		if err := os.Remove(filepath.Join(dir, backing)); err != nil {
			t.Fatal(err)
		}
	}

	// The healthy-shards-only baseline: the same corpus minus day 1.
	dirP := t.TempDir()
	writeShardDataDir(t, dirP, withoutDay(full, 1), fixtureSeries(30), healQuality)
	baseline := newTestServer(t, dirP)

	srv, err := New(Config{DataDir: dir, SelfHeal: true, ScrubBudgetBytes: -1})
	if err != nil {
		t.Fatalf("degraded startup failed outright: %v", err)
	}

	snap := srv.Snapshot()
	cov := snap.Coverage
	if !cov.Degraded || cov.RowsServed != 2*perDay || cov.RowsTotal != 3*perDay || cov.MissingShards != 1 {
		t.Fatalf("coverage = %+v, want degraded 80/120 with 1 missing shard", cov)
	}
	if len(cov.MissingDays) != 1 || cov.MissingDays[0].FromDay != 1 || cov.MissingDays[0].ToDay != 1 {
		t.Fatalf("missing days = %+v, want exactly day 1", cov.MissingDays)
	}
	if cov.MissingDays[0].From != "1970-01-02" {
		t.Fatalf("missing day date = %q, want 1970-01-02", cov.MissingDays[0].From)
	}

	// Quarantine evidence: the damaged bytes moved aside, the log says why.
	if _, err := os.Stat(filepath.Join(dir, store.QuarantinedShardFile(1))); err != nil {
		t.Fatalf("quarantined shard file: %v", err)
	}
	events, err := store.LoadQuarantineLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Day != 1 || events[0].Action != store.ActionQuarantine {
		t.Fatalf("quarantine log = %+v, want one quarantine event for day 1", events)
	}
	if n := srv.met.quarantines.Load(); n != 1 {
		t.Errorf("quarantines metric = %d, want 1", n)
	}

	// Readiness: degraded, not down — the breaker stayed closed.
	code, body, _ := readyz(t, srv)
	if code != http.StatusOK || !body.Ready || body.Status != "degraded" {
		t.Fatalf("readyz = %d %+v, want 200 ready degraded", code, body)
	}
	if body.Breaker != "closed" {
		t.Errorf("breaker %q after degraded load, want closed", body.Breaker)
	}

	// The coverage ratio rides on every response, ops and data alike.
	wantHdr := strconv.FormatFloat(cov.Ratio, 'g', 6, 64)
	for _, target := range []string{"/healthz", chaosTargets[0]} {
		if got := getRec(srv, target).Header().Get("X-Supremm-Coverage"); got != wantHdr {
			t.Errorf("%s X-Supremm-Coverage = %q, want %q", target, got, wantHdr)
		}
	}
	var hz struct {
		Coverage Coverage `json:"coverage"`
	}
	if err := json.Unmarshal(getRec(srv, "/healthz").Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if !coverageEqual(hz.Coverage, cov) {
		t.Errorf("healthz coverage = %+v, want %+v", hz.Coverage, cov)
	}

	// Degraded answers are the healthy-shards-only answers, bit for bit.
	for _, target := range chaosTargets {
		status, got := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("degraded %s: status %d (%s)", target, status, got)
		}
		bstatus, want := get(t, baseline, target)
		if bstatus != http.StatusOK {
			t.Fatalf("baseline %s: status %d", target, bstatus)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("degraded %s diverges from healthy-shards-only baseline", target)
		}
	}
}

func coverageEqual(a, b Coverage) bool {
	if a.RowsServed != b.RowsServed || a.RowsTotal != b.RowsTotal || a.Ratio != b.Ratio ||
		a.Degraded != b.Degraded || a.MissingShards != b.MissingShards ||
		len(a.MissingDays) != len(b.MissingDays) {
		return false
	}
	for i := range a.MissingDays {
		if a.MissingDays[i] != b.MissingDays[i] {
			return false
		}
	}
	return true
}

// TestHealRepairFromBacking: a damaged shard with the monolithic
// backing intact is quarantined AND repaired inside one poll tick; the
// rebuilt shard is byte-identical, coverage returns to 1, and the
// quarantine log records the full custody chain.
func TestHealRepairFromBacking(t *testing.T) {
	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(3, 40), fixtureSeries(30), healQuality)
	shardPath := filepath.Join(dir, store.ShardFileName(1))
	pristine, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(1700000000, 0)
	srv, err := New(Config{DataDir: dir, SelfHeal: true, ScrubBudgetBytes: -1,
		Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	if cov := srv.Snapshot().Coverage; cov.Degraded || cov.Ratio != 1 {
		t.Fatalf("healthy startup coverage = %+v", cov)
	}

	corruptFile(t, shardPath)
	reloaded, err := srv.MaybeReload()
	if err != nil {
		t.Fatalf("poll over damaged shard: %v", err)
	}
	if !reloaded {
		t.Fatal("poll did not reload after shard damage")
	}

	snap := srv.Snapshot()
	if cov := snap.Coverage; cov.Degraded || cov.Ratio != 1 || cov.RowsServed != 120 {
		t.Fatalf("post-repair coverage = %+v, want full", cov)
	}
	repaired, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, pristine) {
		t.Fatal("repaired shard bytes differ from pristine")
	}
	if _, err := os.Stat(filepath.Join(dir, store.QuarantinedShardFile(1))); !os.IsNotExist(err) {
		t.Errorf("quarantined copy still present after repair: %v", err)
	}

	events, err := store.LoadQuarantineLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Action != store.ActionQuarantine || events[1].Action != store.ActionRepair {
		t.Fatalf("quarantine log = %+v, want quarantine then repair", events)
	}
	if events[1].At != now.Unix() {
		t.Errorf("repair event At = %d, want the injected clock %d", events[1].At, now.Unix())
	}
	if q, r := srv.met.quarantines.Load(), srv.met.repairs.Load(); q != 1 || r != 1 {
		t.Errorf("metrics quarantines=%d repairs=%d, want 1 and 1", q, r)
	}
	if code, body, _ := readyz(t, srv); code != http.StatusOK || body.Status != "ready" {
		t.Errorf("readyz after repair = %d %+v, want 200 ready", code, body)
	}
}

// TestHealMinCoverageFloor: below the configured coverage floor, data
// queries are refused 503 with Retry-After and the missing day ranges,
// readyz reports down, and the ops endpoints keep answering.
func TestHealMinCoverageFloor(t *testing.T) {
	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(3, 40), fixtureSeries(30), healQuality)
	corruptFile(t, filepath.Join(dir, store.ShardFileName(1)))
	for _, backing := range []string{"jobs.supremm", "jobs.jsonl"} {
		if err := os.Remove(filepath.Join(dir, backing)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(Config{DataDir: dir, SelfHeal: true, ScrubBudgetBytes: -1,
		MinCoverage: 0.9, RetryAfterSec: 7})
	if err != nil {
		t.Fatal(err)
	}

	rec := getRec(srv, chaosTargets[0])
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("data query below floor: status %d (%s)", rec.Code, rec.Body.Bytes())
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
	var refusal struct {
		Error    string   `json:"error"`
		Coverage Coverage `json:"coverage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &refusal); err != nil {
		t.Fatal(err)
	}
	if refusal.Error == "" || len(refusal.Coverage.MissingDays) != 1 || refusal.Coverage.MissingDays[0].FromDay != 1 {
		t.Fatalf("refusal body = %+v, want error text and missing day 1", refusal)
	}

	code, body, hdr := readyz(t, srv)
	if code != http.StatusServiceUnavailable || body.Ready || body.Status != "down" {
		t.Fatalf("readyz below floor = %d %+v, want 503 down", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("readyz down without Retry-After")
	}
	// Liveness and metrics must not couple to the floor.
	for _, target := range []string{"/healthz", "/metrics"} {
		if rec := getRec(srv, target); rec.Code != http.StatusOK {
			t.Errorf("%s below floor: status %d", target, rec.Code)
		}
	}
}

// TestHealScrubCatchesSilentRot: mtime-preserving bit rot is invisible
// to the directory fingerprint; only the scrubber's byte re-read can
// catch it. One poll tick must go rot -> quarantine -> repair -> fresh
// full-coverage generation.
func TestHealScrubCatchesSilentRot(t *testing.T) {
	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(3, 40), fixtureSeries(30), healQuality)
	victim := store.ShardFileName(2)
	good := make(map[string][]byte)
	for _, name := range []string{victim, "jobs.supremm", "jobs.jsonl"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		good[name] = b
	}
	chaos := faultinject.NewServeChaos(20260809, dir, good)

	srv, err := New(Config{DataDir: dir, SelfHeal: true, ScrubBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	genBefore := srv.Snapshot().Gen

	if err := chaos.RotFile(victim, 3); err != nil {
		t.Fatal(err)
	}
	// The rot is silent: size and mtime are unchanged, so the poll's
	// fingerprint check alone would find nothing to do.
	if fp := DirFingerprint(dir); fp != srv.Snapshot().Fingerprint {
		t.Fatal("bit rot changed the directory fingerprint; it must be silent")
	}

	reloaded, err := srv.MaybeReload()
	if err != nil {
		t.Fatalf("poll over rotted shard: %v", err)
	}
	if !reloaded {
		t.Fatal("scrub tick did not flow into a reload")
	}
	snap := srv.Snapshot()
	if snap.Gen == genBefore {
		t.Fatal("generation did not advance")
	}
	if cov := snap.Coverage; cov.Degraded || cov.Ratio != 1 {
		t.Fatalf("post-scrub coverage = %+v, want full (repaired)", cov)
	}
	repaired, err := os.ReadFile(filepath.Join(dir, victim))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, good[victim]) {
		t.Fatal("repaired shard differs from pristine bytes")
	}
	if s, v := srv.met.scrubSweeps.Load(), srv.met.shardsScrubbed.Load(); s < 1 || v < 3 {
		t.Errorf("scrub metrics sweeps=%d verified=%d, want >=1 and >=3", s, v)
	}
	if q, r := srv.met.quarantines.Load(), srv.met.repairs.Load(); q != 1 || r != 1 {
		t.Errorf("metrics quarantines=%d repairs=%d, want 1 and 1", q, r)
	}

	// /metrics exports the heal counters.
	var met struct {
		ScrubSweeps    int64   `json:"scrub_sweeps"`
		ShardsScrubbed int64   `json:"shards_scrubbed"`
		Quarantines    int64   `json:"quarantines"`
		Repairs        int64   `json:"repairs"`
		CoverageRatio  float64 `json:"coverage_ratio"`
	}
	if err := json.Unmarshal(getRec(srv, "/metrics").Body.Bytes(), &met); err != nil {
		t.Fatal(err)
	}
	if met.Quarantines != 1 || met.Repairs != 1 || met.CoverageRatio != 1 || met.ScrubSweeps < 1 {
		t.Errorf("/metrics heal counters = %+v", met)
	}
}

// TestChaosSelfHeal is the self-heal acceptance proof (DESIGN.md §15),
// run under -race via make test-scrub: 16 clients hammer the valve
// while the data directory goes healthy -> silently rotted (backing
// removed, so unrepairable) -> healed backing. Invariants:
//
//  1. every 200 body is bit-identical to EITHER the fault-free baseline
//     or the healthy-shards-only baseline — degraded serving narrows
//     answers, never corrupts them;
//  2. the degraded transition is honest: readyz says degraded, the
//     coverage ratio drops below 1 on the wire, the breaker stays
//     closed throughout (degradation is not an outage);
//  3. restoring the monolithic backing repairs the quarantined shard
//     byte-identically and converges back to ready/full coverage with
//     fault-free-baseline answers;
//  4. true handler concurrency never exceeds MaxInFlight, every 503
//     carries Retry-After, and goroutines return to baseline.
func TestChaosSelfHeal(t *testing.T) {
	leakcheck.Check(t)
	const perDay = 40
	full := dayStore(3, perDay)
	dir := t.TempDir()
	writeShardDataDir(t, dir, full, fixtureSeries(30), healQuality)
	victim := store.ShardFileName(1)
	good := make(map[string][]byte)
	for _, name := range []string{victim, "jobs.supremm", "jobs.jsonl"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		good[name] = b
	}
	chaos := faultinject.NewServeChaos(20260809, dir, good)

	// Two legitimate answer sets: the fault-free corpus and the
	// healthy-shards-only corpus (day 1 missing).
	fullSrv := newTestServer(t, dir)
	dirP := t.TempDir()
	writeShardDataDir(t, dirP, withoutDay(full, 1), fixtureSeries(30), healQuality)
	partSrv := newTestServer(t, dirP)
	fullBody := make(map[string][]byte, len(chaosTargets))
	partBody := make(map[string][]byte, len(chaosTargets))
	for _, target := range chaosTargets {
		status, body := get(t, fullSrv, target)
		if status != http.StatusOK {
			t.Fatalf("full baseline %s: %d", target, status)
		}
		fullBody[target] = body
		if status, body = get(t, partSrv, target); status != http.StatusOK {
			t.Fatalf("partial baseline %s: %d", target, status)
		}
		partBody[target] = body
	}

	const (
		maxInFlight = 4
		clients     = 16
	)
	var cur, peak atomic.Int64
	hooks := Hooks{BeforeHandle: func(_ context.Context, _ string) func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		return func() { cur.Add(-1) }
	}}
	srv, err := New(Config{
		DataDir:          dir,
		SelfHeal:         true,
		ScrubBudgetBytes: -1,
		MaxInFlight:      maxInFlight,
		MaxQueue:         8,
		RetryAfterSec:    1,
		Hooks:            hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGen := srv.Snapshot().Gen

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				target := chaosTargets[(g+i)%len(chaosTargets)]
				rec := getRec(srv, target)
				switch rec.Code {
				case http.StatusOK:
					body := rec.Body.Bytes()
					if !bytes.Equal(body, fullBody[target]) && !bytes.Equal(body, partBody[target]) {
						report(errNotBaseline(target, body))
						return
					}
				case http.StatusServiceUnavailable:
					if rec.Header().Get("Retry-After") == "" {
						report(errNoRetryAfter(target))
						return
					}
				default:
					report(errBadStatus(target, rec.Code, rec.Body.String()))
					return
				}
			}
		}(g)
	}
	fail := func(format string, args ...any) {
		stop.Store(true)
		wg.Wait()
		t.Fatalf(format, args...)
	}

	// --- Phase 1: remove the monolithic backing so the coming rot is
	// unrepairable. The fingerprint sees the removal; the reload stays
	// full-coverage (every shard is still healthy).
	for _, backing := range []string{"jobs.supremm", "jobs.jsonl"} {
		if err := os.Remove(filepath.Join(dir, backing)); err != nil {
			fail("remove backing: %v", err)
		}
	}
	if _, err := srv.MaybeReload(); err != nil {
		fail("reload after backing removal: %v", err)
	}
	if cov := srv.Snapshot().Coverage; cov.Degraded {
		fail("coverage degraded before any shard damage: %+v", cov)
	}

	// --- Phase 2: silent rot on the victim shard. The fingerprint must
	// not move; the scrub tick must quarantine and the same poll must
	// publish a degraded generation.
	if err := chaos.RotFile(victim, 3); err != nil {
		fail("rot: %v", err)
	}
	if DirFingerprint(dir) != srv.Snapshot().Fingerprint {
		fail("rot was not silent")
	}
	reloaded, err := srv.MaybeReload()
	if err != nil {
		fail("poll over rot: %v", err)
	}
	if !reloaded {
		fail("scrub tick did not trigger the degraded reload")
	}
	cov := srv.Snapshot().Coverage
	if !cov.Degraded || cov.RowsServed != 2*perDay || cov.RowsTotal != 3*perDay {
		fail("degraded coverage = %+v, want 80/120", cov)
	}
	code, body, _ := readyz(t, srv)
	if code != http.StatusOK || body.Status != "degraded" || !body.Ready {
		fail("readyz during degradation = %d %+v, want 200 degraded", code, body)
	}
	if body.Breaker != "closed" {
		fail("breaker %q during degradation, want closed (degradation is not an outage)", body.Breaker)
	}
	if hdr := getRec(srv, chaosTargets[1]).Header().Get("X-Supremm-Coverage"); hdr == "" || hdr == "1" {
		fail("degraded X-Supremm-Coverage = %q, want a ratio below 1", hdr)
	}
	// Soak a little in the degraded steady state: polls find nothing new.
	for i := 0; i < 5; i++ {
		if reloaded, err := srv.MaybeReload(); err != nil || reloaded {
			fail("degraded steady state not steady: reloaded=%v err=%v", reloaded, err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// --- Phase 3: heal the backing. The next poll repairs the
	// quarantined day from it and converges to ready, full coverage.
	if err := chaos.HealFiles("jobs.supremm"); err != nil {
		fail("heal backing: %v", err)
	}
	if reloaded, err := srv.MaybeReload(); err != nil || !reloaded {
		fail("repair poll: reloaded=%v err=%v", reloaded, err)
	}
	if cov := srv.Snapshot().Coverage; cov.Degraded || cov.Ratio != 1 {
		fail("post-repair coverage = %+v, want full", cov)
	}

	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Post-soak invariants.
	repairedBytes, err := os.ReadFile(filepath.Join(dir, victim))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repairedBytes, good[victim]) {
		t.Error("repaired shard differs from pristine bytes")
	}
	events, err := store.LoadQuarantineLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Action != store.ActionQuarantine || events[1].Action != store.ActionRepair {
		t.Errorf("quarantine log = %+v, want quarantine then repair", events)
	}
	if code, body, _ := readyz(t, srv); code != http.StatusOK || body.Status != "ready" {
		t.Errorf("final readyz = %d %+v, want 200 ready", code, body)
	}
	if opens := srv.brk.dto().Opens; opens != 0 {
		t.Errorf("breaker opened %d times; self-heal must not trip it", opens)
	}
	if g := srv.Snapshot().Gen; g <= startGen {
		t.Errorf("final generation %d not past start %d", g, startGen)
	}
	if p := peak.Load(); p > maxInFlight {
		t.Errorf("true concurrency peaked at %d, limit %d", p, maxInFlight)
	}
	for _, target := range chaosTargets {
		status, got := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("post-heal %s: status %d", target, status)
		}
		if !bytes.Equal(got, fullBody[target]) {
			t.Errorf("post-heal %s diverges from fault-free baseline", target)
		}
	}
	if counts := chaos.Counts(); counts[faultinject.KindBitRot] == 0 {
		t.Errorf("fault counts incomplete: %v", counts)
	}
}

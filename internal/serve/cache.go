package serve

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
)

// cacheEntry is one rendered response.
type cacheEntry struct {
	body        []byte
	contentType string
}

// Cache is the query-result cache: an LRU over fully rendered response
// bodies, keyed by (store generation, path, canonical query). The
// generation prefix is the invalidation mechanism — after a hot reload
// every lookup misses because the key changed, and PurgeGeneration
// reclaims the dead entries eagerly rather than waiting for LRU aging.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recent
	entries map[string]*list.Element // key -> element holding *cacheItem

	hits, misses atomic.Int64
}

type cacheItem struct {
	key string
	cacheEntry
}

// newCache builds a cache holding up to max entries; max <= 0 disables
// caching entirely (every Get misses, Put is a no-op) so benchmarks can
// measure the cold path.
func newCache(max int) *Cache {
	return &Cache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// cacheKey builds the canonical lookup key. The query string must
// already be in canonical (sorted, url.Values.Encode) form.
func cacheKey(gen uint64, path, canonicalQuery string) string {
	return "g" + strconv.FormatUint(gen, 10) + "|" + path + "?" + canonicalQuery
}

// Get returns the cached response for key, if present.
func (c *Cache) Get(key string) (cacheEntry, bool) {
	if c.max <= 0 {
		c.misses.Add(1)
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheItem).cacheEntry, true
}

// Put stores a rendered response, evicting the least recently used
// entry when full.
func (c *Cache) Put(key string, e cacheEntry) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).cacheEntry = e
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, cacheEntry: e})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheItem).key)
	}
}

// PurgeGeneration drops every entry belonging to the given store
// generation (called after a reload swaps it out).
func (c *Cache) PurgeGeneration(gen uint64) {
	prefix := "g" + strconv.FormatUint(gen, 10) + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

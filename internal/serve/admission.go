package serve

import (
	"context"
	"sync/atomic"
)

// admitVerdict classifies one admission attempt.
type admitVerdict int

const (
	// admitOK: a slot was granted; the caller must invoke the release.
	admitOK admitVerdict = iota
	// admitShed: no slot and no queue room (or the daemon is draining);
	// the request must be load-shed with 503 + Retry-After.
	admitShed
	// admitCancelled: the client gave up (context done) while queued.
	admitCancelled
)

// admission is the daemon's overload valve: a counting semaphore over
// concurrently executing data queries plus a bounded wait queue in
// front of it. Requests beyond limit+queue are shed immediately — the
// defined behavior under overload is a fast 503 with Retry-After, not
// an unbounded goroutine pile-up that takes every query down together
// (DESIGN.md §13). A nil *admission admits everything (admission
// disabled).
//
// The semaphore is a buffered channel (send = acquire, receive =
// release) so queued waiters block in a select that also observes the
// client's context and the drain signal; no mutex is held while
// waiting.
type admission struct {
	limit    int
	queueCap int

	slots chan struct{} // cap = limit; len = in-flight
	queue chan struct{} // cap = queueCap; len = currently waiting

	// drainC is closed by beginDrain: every queued waiter wakes and
	// sheds, and later arrivals shed without queueing, so shutdown never
	// waits on work that has not started.
	drainC   chan struct{}
	draining atomic.Bool

	inFlight atomic.Int64
	peak     atomic.Int64 // high-water mark of inFlight, for /metrics and the chaos invariant
	admitted atomic.Int64
	queued   atomic.Int64 // requests that had to wait for a slot
}

// newAdmission sizes the valve. limit must be positive; queueCap <= 0
// means no queue (anything beyond the in-flight limit sheds at once).
func newAdmission(limit, queueCap int) *admission {
	if queueCap < 0 {
		queueCap = 0
	}
	return &admission{
		limit:    limit,
		queueCap: queueCap,
		slots:    make(chan struct{}, limit),
		queue:    make(chan struct{}, queueCap),
		drainC:   make(chan struct{}),
	}
}

// acquire tries to claim an execution slot, waiting in the bounded
// queue when the daemon is at its in-flight limit. On admitOK the
// returned release must be called exactly once when the request
// finishes; on any other verdict release is nil.
func (a *admission) acquire(ctx context.Context) (release func(), verdict admitVerdict) {
	if a == nil {
		return func() {}, admitOK
	}
	if a.draining.Load() {
		return nil, admitShed
	}
	select {
	case a.slots <- struct{}{}:
		return a.admit(), admitOK
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, admitShed
	}
	a.queued.Add(1)
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return a.admit(), admitOK
	case <-ctx.Done():
		return nil, admitCancelled
	case <-a.drainC:
		return nil, admitShed
	}
}

// admit records the grant and returns its release.
func (a *admission) admit() func() {
	a.admitted.Add(1)
	cur := a.inFlight.Add(1)
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return func() {
		a.inFlight.Add(-1)
		<-a.slots
	}
}

// beginDrain flips the valve shut: queued waiters shed immediately and
// new arrivals shed without queueing. In-flight requests are
// unaffected — http.Server.Shutdown waits for those. Idempotent.
func (a *admission) beginDrain() {
	if a == nil {
		return
	}
	if a.draining.CompareAndSwap(false, true) {
		close(a.drainC)
	}
}

// admissionDTO is the /metrics view of the valve.
type admissionDTO struct {
	Enabled      bool  `json:"enabled"`
	MaxInFlight  int   `json:"max_in_flight"`
	MaxQueue     int   `json:"max_queue"`
	InFlight     int64 `json:"in_flight"`
	InFlightPeak int64 `json:"in_flight_peak"`
	InQueue      int   `json:"in_queue"`
	Admitted     int64 `json:"admitted"`
	Queued       int64 `json:"queued"`
	Draining     bool  `json:"draining"`
}

func (a *admission) dto() admissionDTO {
	if a == nil {
		return admissionDTO{Enabled: false}
	}
	return admissionDTO{
		Enabled:      true,
		MaxInFlight:  a.limit,
		MaxQueue:     a.queueCap,
		InFlight:     a.inFlight.Load(),
		InFlightPeak: a.peak.Load(),
		InQueue:      len(a.queue),
		Admitted:     a.admitted.Load(),
		Queued:       a.queued.Load(),
		Draining:     a.draining.Load(),
	}
}

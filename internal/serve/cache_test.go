package serve

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(3)
	for i := 0; i < 3; i++ {
		c.Put(cacheKey(1, fmt.Sprintf("/p%d", i), ""), cacheEntry{body: []byte{byte(i)}})
	}
	// Touch p0 so p1 becomes the eviction victim.
	if _, ok := c.Get(cacheKey(1, "/p0", "")); !ok {
		t.Fatal("p0 missing before eviction")
	}
	c.Put(cacheKey(1, "/p3", ""), cacheEntry{body: []byte{3}})
	if _, ok := c.Get(cacheKey(1, "/p1", "")); ok {
		t.Fatal("LRU victim p1 survived eviction")
	}
	for _, p := range []string{"/p0", "/p2", "/p3"} {
		if _, ok := c.Get(cacheKey(1, p, "")); !ok {
			t.Fatalf("%s evicted unexpectedly", p)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache len %d, want 3", c.Len())
	}
}

func TestCachePurgeGeneration(t *testing.T) {
	c := newCache(10)
	c.Put(cacheKey(1, "/a", "x=1"), cacheEntry{body: []byte("old")})
	c.Put(cacheKey(2, "/a", "x=1"), cacheEntry{body: []byte("new")})
	c.PurgeGeneration(1)
	if _, ok := c.Get(cacheKey(1, "/a", "x=1")); ok {
		t.Fatal("generation-1 entry survived purge")
	}
	if e, ok := c.Get(cacheKey(2, "/a", "x=1")); !ok || string(e.body) != "new" {
		t.Fatal("generation-2 entry lost by purge")
	}
	// g1 prefix must not purge g11 (prefix includes the separator).
	c.Put(cacheKey(11, "/b", ""), cacheEntry{body: []byte("g11")})
	c.PurgeGeneration(1)
	if _, ok := c.Get(cacheKey(11, "/b", "")); !ok {
		t.Fatal("purging generation 1 removed generation 11")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0)
	c.Put("k", cacheEntry{body: []byte("v")})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("disabled cache stats hits=%d misses=%d", hits, misses)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newCache(2)
	c.Put("k", cacheEntry{body: []byte("v1")})
	c.Put("k", cacheEntry{body: []byte("v2")})
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache to %d", c.Len())
	}
	if e, _ := c.Get("k"); string(e.body) != "v2" {
		t.Fatalf("Put did not update in place: %q", e.body)
	}
}

package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"supremm/internal/ingest"
	"supremm/internal/leakcheck"
	"supremm/internal/store"
)

// dayStore builds a store whose rows land in exactly days consecutive
// epoch days, perDay rows each, already in day order — the shape the
// shard tests need full control over (appending a day must leave every
// earlier day's rows, and therefore its shard bytes, untouched).
func dayStore(days, perDay int) *store.Store {
	st := store.New()
	for d := 0; d < days; d++ {
		for j := 0; j < perDay; j++ {
			i := d*perDay + j
			r := store.JobRecord{
				JobID:   int64(1000 + i),
				Cluster: "ranger",
				User:    fmt.Sprintf("u%02d", i%9),
				App:     []string{"namd", "amber", "gromacs", "wrf"}[i%4],
				Science: []string{"Chemistry", "Physics"}[i%2],
				Nodes:   1 + i%16,
				Status:  "completed",
				Samples: 1 + i%4,
			}
			r.End = int64(d)*store.SecondsPerDay + int64(3600+60*j)
			r.Start = r.End - 1800
			r.Submit = r.Start - 120
			r.CPUIdleFrac = float64(i%10) / 10
			r.MemUsedGB = float64(i % 13)
			r.FlopsGF = 1.5 * float64(i%9)
			st.Add(r)
		}
	}
	return st
}

// writeShardDataDir writes the full sharded data directory: day shards
// plus manifest (the preferred load source) alongside the monolithic
// files, exactly the set cmd/ingest lands.
func writeShardDataDir(t testing.TB, dir string, st *store.Store, series []store.SystemSample, q *ingest.DataQuality) {
	t.Helper()
	st.ReorderByEndDay()
	writeDataDir(t, dir, st, series, q)
	if err := store.WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalReloadSharing is the incremental-reload invariant
// suite: append one day's shard under a query storm and assert that
// (a) unchanged shards are shared by pointer across generations — the
// previous generation's column arrays, not copies;
// (b) every response served mid-reload is bit-identical to either the
// old generation's answer or the new one's, never a mixture;
// (c) goroutines return to baseline (leakcheck).
func TestIncrementalReloadSharing(t *testing.T) {
	leakcheck.Check(t)
	const perDay = 40
	quality := &ingest.DataQuality{FilesScanned: 9}

	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(3, perDay), fixtureSeries(30), quality)
	srv := newTestServer(t, dir)
	snapA := srv.Snapshot()
	if snapA.Source != SourceShards {
		t.Fatalf("loaded from %q, want %q", snapA.Source, SourceShards)
	}
	if snapA.Shards != 3 || snapA.ShardsReused != 0 {
		t.Fatalf("initial snapshot: %d shards (%d reused), want 3 (0)", snapA.Shards, snapA.ShardsReused)
	}
	ssA := snapA.Realm.Store.(*store.ShardSet)

	// The two legitimate generations' bodies: gen A from the live
	// server before the append, gen B from an independent server over
	// the appended corpus.
	dirB := t.TempDir()
	writeShardDataDir(t, dirB, dayStore(4, perDay), fixtureSeries(30), quality)
	srvB := newTestServer(t, dirB)
	bodyA := make(map[string][]byte, len(chaosTargets))
	bodyB := make(map[string][]byte, len(chaosTargets))
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d", target, status)
		}
		bodyA[target] = body
		if status, body = get(t, srvB, target); status != http.StatusOK {
			t.Fatalf("reference %s: status %d", target, status)
		}
		bodyB[target] = body
	}

	// Query storm across the reload: every 200 body must be exactly one
	// generation's answer.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				target := chaosTargets[(g+i)%len(chaosTargets)]
				status, body := get(t, srv, target)
				if status != http.StatusOK {
					select {
					case errc <- fmt.Errorf("%s: status %d mid-reload", target, status):
					default:
					}
					return
				}
				if !bytes.Equal(body, bodyA[target]) && !bytes.Equal(body, bodyB[target]) {
					select {
					case errc <- fmt.Errorf("%s: mid-reload body matches neither generation", target):
					default:
					}
					return
				}
			}
		}(g)
	}

	// Day 4 lands; the poll picks it up.
	writeShardDataDir(t, dir, dayStore(4, perDay), fixtureSeries(30), quality)
	reloaded, err := srv.MaybeReload()
	stop.Store(true)
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Error(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded {
		t.Fatal("MaybeReload missed the appended day")
	}

	snapB := srv.Snapshot()
	if snapB.Shards != 4 || snapB.ShardsReused != 3 {
		t.Fatalf("incremental snapshot: %d shards (%d reused), want 4 (3)", snapB.Shards, snapB.ShardsReused)
	}
	ssB := snapB.Realm.Store.(*store.ShardSet)
	for i := 0; i < ssA.NumShards(); i++ {
		old, now := ssA.ShardAt(i), ssB.ShardAt(i)
		if old.ID() != now.ID() {
			t.Fatalf("shard %d changed ID %d -> %d", i, old.ID(), now.ID())
		}
		if old != now {
			t.Errorf("unchanged shard %d re-decoded instead of adopted", old.ID())
		}
		if &old.Columns().JobID[0] != &now.Columns().JobID[0] {
			t.Errorf("shard %d column arrays copied instead of pointer-shared", old.ID())
		}
	}

	// Post-reload the live server answers bit-identically to the
	// reference server that cold-loaded the full corpus.
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("post-reload %s: status %d", target, status)
		}
		if !bytes.Equal(body, bodyB[target]) {
			t.Errorf("post-reload %s diverges from cold full load", target)
		}
	}
}

// BenchmarkIncrementalReload compares a full snapshot load against the
// incremental path after a one-day append on a ~90-day shard history.
// bench-store greps this name; the ratio backs the O(1 day) reload
// acceptance criterion enforced by TestIncrementalReloadSpeedupFloor.
func BenchmarkIncrementalReload(b *testing.B) {
	const days, perDay = 90, 150
	dir := b.TempDir()
	writeShardDataDir(b, dir, dayStore(days, perDay), fixtureSeries(8), nil)
	base, err := loadSnapshot(dir, 1, 0, nil, osOpen, nil)
	if err != nil {
		b.Fatal(err)
	}
	// One new day lands; history shards are rewritten byte-identically.
	writeShardDataDir(b, dir, dayStore(days+1, perDay), fixtureSeries(8), nil)

	b.Run("full-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := loadSnapshot(dir, 2, 0, nil, osOpen, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, err := loadSnapshot(dir, 2, 0, nil, osOpen, base)
			if err != nil {
				b.Fatal(err)
			}
			if snap.ShardsReused != days {
				b.Fatalf("reused %d shards, want %d", snap.ShardsReused, days)
			}
		}
	})
}

// TestIncrementalReloadSpeedupFloor is the executable form of the
// incremental-reload acceptance criterion: after appending one day to a
// 90-day history, reloading against the previous generation must be at
// least 5x faster than a cold full load. Measured ratios are far
// higher; 5x keeps scheduler noise from flaking it.
func TestIncrementalReloadSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("90-day load comparison in -short mode")
	}
	const days, perDay = 90, 150
	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(days, perDay), fixtureSeries(8), nil)
	base, err := loadSnapshot(dir, 1, 0, nil, osOpen, nil)
	if err != nil {
		t.Fatal(err)
	}
	writeShardDataDir(t, dir, dayStore(days+1, perDay), fixtureSeries(8), nil)

	full := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loadSnapshot(dir, 2, 0, nil, osOpen, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	incr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loadSnapshot(dir, 2, 0, nil, osOpen, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(full.NsPerOp()) / float64(incr.NsPerOp())
	t.Logf("full %v/op, incremental %v/op, speedup %.1fx", full.NsPerOp(), incr.NsPerOp(), ratio)
	if ratio < 5 {
		t.Errorf("one-day append reload only %.1fx faster than full load, want >= 5x", ratio)
	}
}

package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketsMicros are the upper bounds (µs) of the request-latency
// histogram, expvar-style cumulative-free buckets plus an implicit
// overflow bucket.
var latencyBucketsMicros = []int64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1000000,
}

// Metrics is the daemon's instrumentation: per-endpoint request counts,
// status-class counters, a latency histogram, and reload accounting.
// Cache hit/miss and store generation are reported alongside from their
// owners at render time. All counters are atomics so handlers never
// serialize on a metrics lock.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Int64

	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64

	latencyCounts   []atomic.Int64 // len(latencyBucketsMicros)+1, last = overflow
	latencyTotalUS  atomic.Int64
	latencyObserved atomic.Int64

	reloads       atomic.Int64
	reloadErrors  atomic.Int64
	requestsTotal atomic.Int64
	// writeFailures counts responses whose body write failed (client
	// gone mid-response).
	writeFailures atomic.Int64

	// Overload accounting (DESIGN.md §13): shed counts load-shed
	// requests (queue full or draining), cancelled counts clients that
	// gave up while queued or mid-render, deadlineTimeouts counts
	// requests cancelled by the per-request deadline, panics counts
	// handler panics the recovery middleware absorbed.
	shed             atomic.Int64
	cancelled        atomic.Int64
	deadlineTimeouts atomic.Int64
	panics           atomic.Int64

	// Self-heal accounting (DESIGN.md §15): scrubSweeps counts full
	// verification passes over the shard set, shardsScrubbed individual
	// shard re-verifications, quarantines shards moved aside after
	// failing verification, repairs shards rebuilt byte-identically from
	// the monolithic backing.
	scrubSweeps    atomic.Int64
	shardsScrubbed atomic.Int64
	quarantines    atomic.Int64
	repairs        atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{
		requests:      make(map[string]*atomic.Int64),
		latencyCounts: make([]atomic.Int64, len(latencyBucketsMicros)+1),
	}
}

// endpoint returns the request counter for a route, creating it on
// first use.
func (m *Metrics) endpoint(path string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.requests[path]
	if !ok {
		c = &atomic.Int64{}
		m.requests[path] = c
	}
	return c
}

// observe records one finished request.
func (m *Metrics) observe(path string, status int, elapsed time.Duration) {
	m.requestsTotal.Add(1)
	m.endpoint(path).Add(1)
	switch {
	case status >= 500:
		m.status5xx.Add(1)
	case status >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
	if elapsed <= 0 {
		return // no clock injected (deterministic tests)
	}
	us := elapsed.Microseconds()
	m.latencyTotalUS.Add(us)
	m.latencyObserved.Add(1)
	for i, hi := range latencyBucketsMicros {
		if us <= hi {
			m.latencyCounts[i].Add(1)
			return
		}
	}
	m.latencyCounts[len(latencyBucketsMicros)].Add(1)
}

// metricsDTO is the /metrics response body.
type metricsDTO struct {
	StoreGeneration uint64           `json:"store_generation"`
	Jobs            int              `json:"jobs"`
	RequestsTotal   int64            `json:"requests_total"`
	Requests        map[string]int64 `json:"requests_by_endpoint"`
	Status2xx       int64            `json:"responses_2xx"`
	Status4xx       int64            `json:"responses_4xx"`
	Status5xx       int64            `json:"responses_5xx"`
	CacheHits       int64            `json:"cache_hits"`
	CacheMisses     int64            `json:"cache_misses"`
	CacheHitRatio   F                `json:"cache_hit_ratio"`
	CacheEntries    int              `json:"cache_entries"`
	Reloads         int64            `json:"reloads"`
	ReloadErrors    int64            `json:"reload_errors"`
	WriteFailures   int64            `json:"write_failures"`
	Shed            int64            `json:"shed"`
	Cancelled       int64            `json:"cancelled"`
	DeadlineTimeout int64            `json:"deadline_timeouts"`
	PanicsRecovered int64            `json:"panics_recovered"`
	ScrubSweeps     int64            `json:"scrub_sweeps"`
	ShardsScrubbed  int64            `json:"shards_scrubbed"`
	Quarantines     int64            `json:"quarantines"`
	Repairs         int64            `json:"repairs"`
	CoverageRatio   F                `json:"coverage_ratio"`
	Degraded        bool             `json:"degraded"`
	Admission       admissionDTO     `json:"admission"`
	Breaker         breakerDTO       `json:"breaker"`
	Latency         latencyDTO       `json:"latency"`
}

type latencyDTO struct {
	Observed    int64           `json:"observed"`
	TotalMicros int64           `json:"total_us"`
	MeanMicros  F               `json:"mean_us"`
	Buckets     []latencyBucket `json:"buckets"`
}

type latencyBucket struct {
	LeMicros int64 `json:"le_us"` // 0 on the overflow bucket
	Count    int64 `json:"count"`
}

// snapshotDTO renders the current counter values, folding in the
// admission valve's gauges and the breaker's state.
func (m *Metrics) snapshotDTO(gen uint64, jobs int, cache *Cache, adm *admission, brk *breaker, cov Coverage) metricsDTO {
	hits, misses := cache.Stats()
	dto := metricsDTO{
		StoreGeneration: gen,
		Jobs:            jobs,
		RequestsTotal:   m.requestsTotal.Load(),
		Requests:        make(map[string]int64),
		Status2xx:       m.status2xx.Load(),
		Status4xx:       m.status4xx.Load(),
		Status5xx:       m.status5xx.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEntries:    cache.Len(),
		Reloads:         m.reloads.Load(),
		ReloadErrors:    m.reloadErrors.Load(),
		WriteFailures:   m.writeFailures.Load(),
		Shed:            m.shed.Load(),
		Cancelled:       m.cancelled.Load(),
		DeadlineTimeout: m.deadlineTimeouts.Load(),
		PanicsRecovered: m.panics.Load(),
		ScrubSweeps:     m.scrubSweeps.Load(),
		ShardsScrubbed:  m.shardsScrubbed.Load(),
		Quarantines:     m.quarantines.Load(),
		Repairs:         m.repairs.Load(),
		CoverageRatio:   F(cov.Ratio),
		Degraded:        cov.Degraded,
		Admission:       adm.dto(),
		Breaker:         brk.dto(),
	}
	if total := hits + misses; total > 0 {
		dto.CacheHitRatio = F(float64(hits) / float64(total))
	}
	m.mu.Lock()
	paths := make([]string, 0, len(m.requests))
	for p := range m.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		dto.Requests[p] = m.requests[p].Load()
	}
	m.mu.Unlock()
	dto.Latency.Observed = m.latencyObserved.Load()
	dto.Latency.TotalMicros = m.latencyTotalUS.Load()
	if dto.Latency.Observed > 0 {
		dto.Latency.MeanMicros = F(float64(dto.Latency.TotalMicros) / float64(dto.Latency.Observed))
	}
	for i := range m.latencyCounts {
		b := latencyBucket{Count: m.latencyCounts[i].Load()}
		if i < len(latencyBucketsMicros) {
			b.LeMicros = latencyBucketsMicros[i]
		}
		dto.Latency.Buckets = append(dto.Latency.Buckets, b)
	}
	return dto
}

package serve

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/ingest"
	"supremm/internal/store"
)

// osOpen is the default file opener for snapshot loads; Config.Open
// replaces it in tests and the chaos harness (slow-fs injection).
func osOpen(path string) (io.ReadCloser, error) { return os.Open(path) }

// Snapshot is one immutable, fully loaded view of a data directory:
// the indexed store wrapped in a realm, the ingest quality report, and
// the fingerprint of the files it came from. The daemon swaps whole
// snapshots atomically, so a query either sees the old store or the new
// one — never a torn mixture.
type Snapshot struct {
	Gen         uint64
	Realm       *core.Realm
	Quality     *ingest.DataQuality
	Fingerprint string
	// Source records which jobs file backed the load: "binary"
	// (jobs.supremm) or "jsonl" (jobs.jsonl). Informational only — the
	// two paths produce bit-identical stores (see TestGoldenLoadPaths).
	Source string
}

// snapshotFiles are the data-directory members whose change forces a
// reload, in fingerprint order. The binary snapshot is listed first:
// it is the preferred load source.
var snapshotFiles = []string{"jobs.supremm", "jobs.jsonl", "series.jsonl", "quality.json"}

// DirFingerprint summarizes the load-relevant files of a data directory
// (size + mtime per file). The daemon polls this instead of watching
// the filesystem: cmd/ingest rewrites whole files, so a changed
// fingerprint is exactly "a new batch landed".
func DirFingerprint(dir string) string {
	fp := ""
	for _, name := range snapshotFiles {
		fp += name + ":"
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
			fp += strconv.FormatInt(st.Size(), 10) + "," + strconv.FormatInt(st.ModTime().UnixNano(), 10)
		} else {
			fp += "absent"
		}
		fp += ";"
	}
	return fp
}

// LoadRealm loads the job store (+ optional series.jsonl) from a data
// directory and assembles the realm, inferring the cluster shape from
// the records the way cmd/xdmod always has. The returned realm's store
// is unindexed; callers wanting indexed queries call BuildIndex.
func LoadRealm(dir string) (*core.Realm, error) {
	realm, _, err := LoadRealmSource(dir)
	return realm, err
}

// loadStore reads the job store, preferring the columnar binary
// snapshot (jobs.supremm) and falling back to JSON lines (jobs.jsonl)
// when the binary file is absent. A binary file that exists but fails
// to decode is an error, not a fallback: the two files are written by
// the same ingest batch, so a damaged binary alongside a readable JSON
// means the directory is torn and the load should retry, not silently
// serve the other file.
func loadStore(dir string, open func(path string) (io.ReadCloser, error)) (*store.Store, string, error) {
	bf, err := open(filepath.Join(dir, "jobs.supremm"))
	if err == nil {
		defer bf.Close()
		st, err := store.LoadBinary(bf)
		if err != nil {
			return nil, "", fmt.Errorf("serve: jobs.supremm: %w", err)
		}
		return st, SourceBinary, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, "", err
	}
	jf, err := open(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		return nil, "", err
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		return nil, "", err
	}
	return st, SourceJSONL, nil
}

// Snapshot source labels.
const (
	SourceBinary = "binary"
	SourceJSONL  = "jsonl"
)

// LoadRealmSource is LoadRealm plus the job-store source label
// (SourceBinary or SourceJSONL).
func LoadRealmSource(dir string) (*core.Realm, string, error) {
	return loadRealmSource(dir, osOpen)
}

// loadRealmSource is LoadRealmSource with the file opener injected —
// the daemon's snapshot loads route through Config.Open here.
func loadRealmSource(dir string, open func(path string) (io.ReadCloser, error)) (*core.Realm, string, error) {
	st, source, err := loadStore(dir, open)
	if err != nil {
		return nil, "", err
	}
	var series []store.SystemSample
	if sf, err := open(filepath.Join(dir, "series.jsonl")); err == nil {
		defer sf.Close()
		series, err = store.LoadSeries(sf)
		if err != nil {
			return nil, "", err
		}
	}
	// Infer the cluster shape from the records; the active-node peak in
	// the series keeps the peak-TF scale honest for scaled runs.
	name := "unknown"
	if st.Len() > 0 {
		name = st.Record(0).Cluster
	}
	cc := cluster.RangerConfig()
	if name == "lonestar4" {
		cc = cluster.Lonestar4Config()
	}
	nodes := cc.Nodes
	if len(series) > 0 {
		peak := 0
		for _, s := range series {
			if s.ActiveNodes > peak {
				peak = s.ActiveNodes
			}
		}
		if peak > 0 {
			nodes = peak
		}
	}
	cc = cc.Scaled(nodes)
	return core.NewRealm(name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), st, series), source, nil
}

// LoadQuality reads the directory's ingest quality report; a missing
// file is not an error (cmd/simulate writes none), it just means no
// completeness view.
func LoadQuality(dir string) (*ingest.DataQuality, error) {
	q, err := ingest.LoadQuality(filepath.Join(dir, "quality.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return q, err
}

// loadSnapshot reads the data directory into an immutable indexed
// snapshot. A load racing an in-flight ingest rewrite can fail
// transiently (half-written JSON); the retry/backoff idiom from
// internal/ingest applies — retryMax extra attempts with the injected
// backoff between them.
func loadSnapshot(dir string, gen uint64, retryMax int, backoff func(attempt int), open func(path string) (io.ReadCloser, error)) (*Snapshot, error) {
	var lastErr error
	for attempt := 0; attempt <= retryMax; attempt++ {
		if attempt > 0 && backoff != nil {
			backoff(attempt)
		}
		fp := DirFingerprint(dir)
		realm, source, err := loadRealmSource(dir, open)
		if err != nil {
			lastErr = err
			continue
		}
		quality, err := LoadQuality(dir)
		if err != nil {
			lastErr = err
			continue
		}
		if DirFingerprint(dir) != fp {
			// The directory changed mid-load; what we read may mix
			// batches. Treat as transient and retry.
			lastErr = fmt.Errorf("serve: %s changed during load", dir)
			continue
		}
		realm.Store.BuildIndex()
		return &Snapshot{Gen: gen, Realm: realm, Quality: quality, Fingerprint: fp, Source: source}, nil
	}
	return nil, fmt.Errorf("serve: load %s: %w", dir, lastErr)
}

package serve

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/ingest"
	"supremm/internal/store"
)

// osOpen is the default file opener for snapshot loads; Config.Open
// replaces it in tests and the chaos harness (slow-fs injection).
func osOpen(path string) (io.ReadCloser, error) { return os.Open(path) }

// Snapshot is one immutable, fully loaded view of a data directory:
// the indexed store wrapped in a realm, the ingest quality report, and
// the fingerprint of the files it came from. The daemon swaps whole
// snapshots atomically, so a query either sees the old store or the new
// one — never a torn mixture.
type Snapshot struct {
	Gen         uint64
	Realm       *core.Realm
	Quality     *ingest.DataQuality
	Fingerprint string
	// Source records which jobs backing served the load: "shards"
	// (MANIFEST.supremm + shard files), "binary" (jobs.supremm) or
	// "jsonl" (jobs.jsonl). Informational only — the three paths
	// produce bit-identical responses (see TestGoldenLoadPaths).
	Source string
	// Shards and ShardsReused describe a sharded load: how many
	// partitions back the realm and how many were adopted pointer-wise
	// from the previous generation instead of decoded (both zero for
	// monolithic sources).
	Shards       int
	ShardsReused int
	// Coverage is the snapshot's honesty accounting (DESIGN.md §15):
	// rows served versus rows the manifest promised, with the missing
	// day ranges. Ratio 1 for monolithic and fully-healthy loads.
	Coverage Coverage
	// heal records what the healing load did (quarantines, repairs) for
	// the server's metrics; nil for strict loads.
	heal *healLoad
}

// snapshotFiles are the fixed-name data-directory members whose change
// forces a reload, in fingerprint order. The manifest is listed first:
// the sharded form is the preferred load source.
var snapshotFiles = []string{store.ManifestFile, "jobs.supremm", "jobs.jsonl", "series.jsonl", "quality.json"}

// DirFingerprint summarizes the load-relevant files of a data directory
// (size + mtime per file, plus every shard file the directory holds).
// The daemon polls this instead of watching the filesystem: cmd/ingest
// rewrites whole files, so a changed fingerprint is exactly "a new
// batch landed" — including a new day's shard appearing or an existing
// day's shard being rewritten.
func DirFingerprint(dir string) string {
	fp := ""
	stamp := func(path string) {
		if st, err := os.Stat(path); err == nil {
			fp += strconv.FormatInt(st.Size(), 10) + "," + strconv.FormatInt(st.ModTime().UnixNano(), 10)
		} else {
			fp += "absent"
		}
		fp += ";"
	}
	for _, name := range snapshotFiles {
		fp += name + ":"
		stamp(filepath.Join(dir, name))
	}
	shardFiles, _ := filepath.Glob(filepath.Join(dir, "shard-*.supremm"))
	sort.Strings(shardFiles)
	for _, p := range shardFiles {
		fp += filepath.Base(p) + ":"
		stamp(p)
	}
	return fp
}

// LoadRealm loads the job store (+ optional series.jsonl) from a data
// directory and assembles the realm, inferring the cluster shape from
// the records the way cmd/xdmod always has. The returned realm's store
// is unindexed; callers wanting indexed queries call BuildIndex.
func LoadRealm(dir string) (*core.Realm, error) {
	realm, _, err := LoadRealmSource(dir)
	return realm, err
}

// loadStore reads the job store, preferring the time-partitioned shard
// form (MANIFEST.supremm + shard-<day>.supremm, loaded incrementally
// against prev's shards), then the monolithic columnar binary
// (jobs.supremm), then JSON lines (jobs.jsonl). A preferred form that
// exists but fails to load is an error, not a fallback: the files are
// written by the same ingest batch, so a damaged manifest or shard
// alongside readable fallbacks means the directory is torn and the
// load should retry, not silently serve another file.
func loadStore(dir string, open func(path string) (io.ReadCloser, error), prev *store.ShardSet, heal *healLoad) (store.Reader, string, error) {
	mdata, err := readManifest(dir, open)
	if err == nil {
		entries, err := store.DecodeManifest(mdata)
		if err != nil {
			return nil, "", fmt.Errorf("serve: %s: %w", store.ManifestFile, err)
		}
		if heal != nil {
			// Self-heal path: per-shard fault isolation with quarantine and
			// repair instead of all-or-nothing (see heal.go).
			heal.entries = entries
			ss, err := healShardLoad(dir, entries, prev, store.Opener(open), heal)
			if err != nil {
				return nil, "", err
			}
			return ss, SourceShards, nil
		}
		ss, err := store.LoadShards(dir, entries, prev, store.Opener(open))
		if err != nil {
			return nil, "", err
		}
		return ss, SourceShards, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, "", err
	}
	bf, err := open(filepath.Join(dir, "jobs.supremm"))
	if err == nil {
		defer bf.Close()
		st, err := store.LoadBinary(bf)
		if err != nil {
			return nil, "", fmt.Errorf("serve: jobs.supremm: %w", err)
		}
		return st, SourceBinary, nil
	}
	if !errors.Is(err, fs.ErrNotExist) {
		return nil, "", err
	}
	jf, err := open(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		return nil, "", err
	}
	defer jf.Close()
	st, err := store.Load(jf)
	if err != nil {
		return nil, "", err
	}
	return st, SourceJSONL, nil
}

// readManifest reads the shard manifest bytes through the injected
// opener (so chaos slow-fs wrapping applies to the manifest too).
func readManifest(dir string, open func(path string) (io.ReadCloser, error)) ([]byte, error) {
	mf, err := open(filepath.Join(dir, store.ManifestFile))
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(mf)
	cerr := mf.Close()
	if rerr != nil {
		return nil, rerr
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// Snapshot source labels.
const (
	SourceShards = "shards"
	SourceBinary = "binary"
	SourceJSONL  = "jsonl"
)

// LoadRealmSource is LoadRealm plus the job-store source label
// (SourceShards, SourceBinary or SourceJSONL).
func LoadRealmSource(dir string) (*core.Realm, string, error) {
	return loadRealmSource(dir, osOpen, nil, nil)
}

// loadRealmSource is LoadRealmSource with the file opener, the
// previous generation's shard set, and the self-heal context injected
// — the daemon's snapshot loads route through Config.Open, incremental
// shard reuse, and (when enabled) quarantine/repair here.
func loadRealmSource(dir string, open func(path string) (io.ReadCloser, error), prev *store.ShardSet, heal *healLoad) (*core.Realm, string, error) {
	st, source, err := loadStore(dir, open, prev, heal)
	if err != nil {
		return nil, "", err
	}
	var series []store.SystemSample
	if sf, err := open(filepath.Join(dir, "series.jsonl")); err == nil {
		defer sf.Close()
		series, err = store.LoadSeries(sf)
		if err != nil {
			return nil, "", err
		}
	}
	// Infer the cluster shape from the records; the active-node peak in
	// the series keeps the peak-TF scale honest for scaled runs.
	name := "unknown"
	if st.Len() > 0 {
		name = st.Record(0).Cluster
	}
	cc := cluster.RangerConfig()
	if name == "lonestar4" {
		cc = cluster.Lonestar4Config()
	}
	nodes := cc.Nodes
	if len(series) > 0 {
		peak := 0
		for _, s := range series {
			if s.ActiveNodes > peak {
				peak = s.ActiveNodes
			}
		}
		if peak > 0 {
			nodes = peak
		}
	}
	cc = cc.Scaled(nodes)
	return core.NewRealm(name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), st, series), source, nil
}

// LoadQuality reads the directory's ingest quality report; a missing
// file is not an error (cmd/simulate writes none), it just means no
// completeness view.
func LoadQuality(dir string) (*ingest.DataQuality, error) {
	q, err := ingest.LoadQuality(filepath.Join(dir, "quality.json"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return q, err
}

// loadSnapshot reads the data directory into an immutable indexed
// snapshot. A load racing an in-flight ingest rewrite can fail
// transiently (half-written JSON); the retry/backoff idiom from
// internal/ingest applies — retryMax extra attempts with the injected
// backoff between them.
// prev, when non-nil, enables incremental shard reuse: shards whose
// manifest entry (and on-disk size) are unchanged from the previous
// snapshot's set are adopted by pointer instead of re-decoded, making
// a one-day append reload O(1 day) instead of O(history).
func loadSnapshot(dir string, gen uint64, retryMax int, backoff func(attempt int), open func(path string) (io.ReadCloser, error), prev *Snapshot) (*Snapshot, error) {
	return loadSnapshotHeal(dir, gen, retryMax, backoff, open, prev, nil)
}

// loadSnapshotHeal is loadSnapshot with an optional self-heal context:
// non-nil heal routes the shard load through quarantine/repair and
// fills the snapshot's coverage accounting from what survived.
func loadSnapshotHeal(dir string, gen uint64, retryMax int, backoff func(attempt int), open func(path string) (io.ReadCloser, error), prev *Snapshot, heal *healLoad) (*Snapshot, error) {
	var prevShards *store.ShardSet
	if prev != nil {
		if ss, ok := prev.Realm.Store.(*store.ShardSet); ok {
			prevShards = ss
		}
	}
	var lastErr error
	for attempt := 0; attempt <= retryMax; attempt++ {
		if attempt > 0 && backoff != nil {
			backoff(attempt)
		}
		if heal != nil {
			heal.outcome = healOutcome{} // a retry is a fresh heal attempt
		}
		fp := DirFingerprint(dir)
		realm, source, err := loadRealmSource(dir, open, prevShards, heal)
		if err != nil {
			lastErr = err
			continue
		}
		quality, err := LoadQuality(dir)
		if err != nil {
			lastErr = err
			continue
		}
		if post := DirFingerprint(dir); post != fp {
			if heal == nil || !heal.outcome.mutated {
				// The directory changed mid-load; what we read may mix
				// batches. Treat as transient and retry.
				lastErr = fmt.Errorf("serve: %s changed during load", dir)
				continue
			}
			// The healing load itself moved files (quarantine renames,
			// repair rewrites); adopt the post-heal fingerprint so the
			// poll loop does not re-fire on our own mutations. A racing
			// ingest writer is still caught: its next file lands after
			// this stat pass and changes the fingerprint again.
			fp = post
		}
		// Indexing skips shards adopted from prev (they already carry
		// their postings), so an incremental reload indexes only the new
		// day's rows.
		realm.Store.BuildIndex()
		snap := &Snapshot{Gen: gen, Realm: realm, Quality: quality, Fingerprint: fp, Source: source, heal: heal}
		if ss, ok := realm.Store.(*store.ShardSet); ok {
			stats := ss.LoadStats()
			snap.Shards = ss.NumShards()
			snap.ShardsReused = stats.Reused
		}
		if heal != nil && source == SourceShards {
			snap.Coverage = coverageFrom(heal.entries, heal.outcome.faults)
		} else {
			snap.Coverage = fullCoverage(realm.Store.Len())
		}
		return snap, nil
	}
	return nil, fmt.Errorf("serve: load %s: %w", dir, lastErr)
}

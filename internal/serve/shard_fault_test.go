package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"supremm/internal/faultinject"
	"supremm/internal/ingest"
	"supremm/internal/leakcheck"
)

// readGoodFiles captures every data file in dir — monolithic files,
// manifest, and shards — as the chaos driver's known-good state.
func readGoodFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		good[e.Name()] = b
	}
	return good
}

// newShardFaultServer builds a sharded data directory, a chaos driver
// over it, and a server with a hair-trigger breaker (threshold 1,
// backoff 1 poll) so each test drives exactly the transition it is
// about: one bad poll opens the breaker, the next allowed poll probes.
func newShardFaultServer(t *testing.T) (*Server, *faultinject.ServeChaos, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	writeShardDataDir(t, dir, dayStore(3, 40), fixtureSeries(30),
		&ingest.DataQuality{FilesScanned: 6})
	good := readGoodFiles(t, dir)
	chaos := faultinject.NewServeChaos(20260810, dir, good)
	srv, err := New(Config{DataDir: dir, BreakerThreshold: 1, BreakerBackoffPolls: 1})
	if err != nil {
		t.Fatal(err)
	}
	if src := srv.Snapshot().Source; src != SourceShards {
		t.Fatalf("loaded from %q, want %q", src, SourceShards)
	}
	return srv, chaos, good
}

// driveFault injects one shard-layer fault via inject, then asserts the
// serve-layer contract shared by every fault kind: the reload fails,
// the breaker opens, /readyz flips to 503 with Retry-After, the served
// generation and every data body stay pinned to the last-good
// snapshot — and after Heal the daemon converges back to ready with
// baseline bodies intact.
func driveFault(t *testing.T, srv *Server, chaos *faultinject.ServeChaos, inject func() error) {
	t.Helper()

	baseline := make(map[string][]byte, len(chaosTargets))
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d (%s)", target, status, body)
		}
		baseline[target] = body
	}
	if status, _ := get(t, srv, "/readyz"); status != http.StatusOK {
		t.Fatalf("readyz before fault: status %d", status)
	}
	genBefore := srv.Snapshot().Gen

	if err := inject(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := srv.MaybeReload()
	if err == nil {
		t.Fatal("reload over damaged shard directory succeeded")
	}
	if reloaded {
		t.Fatal("failed reload reported a swapped snapshot")
	}
	if st := srv.brk.currentState(); st != breakerOpen {
		t.Fatalf("breaker %v after failed poll, want open (threshold 1)", st)
	}

	// Not ready, and says so the way balancers expect.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("readyz 503 without Retry-After")
	}

	// The last-good generation keeps answering, bit-identically.
	if g := srv.Snapshot().Gen; g != genBefore {
		t.Fatalf("served generation moved %d -> %d under fault", genBefore, g)
	}
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("%s under fault: status %d", target, status)
		}
		if !bytes.Equal(body, baseline[target]) {
			t.Errorf("%s under fault diverges from last-good baseline", target)
		}
	}

	// Heal and poll until the half-open probe lands: fresh generation,
	// closed breaker, ready again, same bodies (the healed corpus is
	// byte-identical to the original).
	if err := chaos.Heal(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().Gen == genBefore || srv.brk.currentState() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never converged after heal (gen %d, breaker %v)",
				srv.Snapshot().Gen, srv.brk.currentState())
		}
		_, _ = srv.MaybeReload()
		time.Sleep(time.Millisecond)
	}
	if status, _ := get(t, srv, "/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after heal: status %d", status)
	}
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("post-heal %s: status %d", target, status)
		}
		if !bytes.Equal(body, baseline[target]) {
			t.Errorf("post-heal %s diverges from baseline", target)
		}
	}
}

// TestShardTornReloadBreaker tears one shard file in place while the
// manifest keeps naming the healthy bytes — a shard writer killed
// mid-rewrite. The incremental reload holds a healthy in-memory copy of
// that very shard, so this also pins the reuse rule: adoption requires
// the on-disk size to match the manifest entry, and a torn file must
// fail the reload rather than be papered over by the previous
// generation's memory.
func TestShardTornReloadBreaker(t *testing.T) {
	leakcheck.Check(t)
	srv, chaos, _ := newShardFaultServer(t)
	driveFault(t, srv, chaos, func() error {
		name, frac, err := chaos.TearShard()
		if err == nil {
			t.Logf("tore %s at %.2f", name, frac)
		}
		return err
	})
	if n := chaos.Counts()[faultinject.KindTornShard]; n != 1 {
		t.Errorf("torn-shard count %d, want 1", n)
	}
}

// TestShardStaleManifestReadyz deletes one shard the manifest still
// lists — a manifest landing without its shard. The reload must fail on
// the missing file (not fall back to the monolithic forms sitting right
// there: the directory is torn, and serving a different file would mask
// it), and /readyz must reflect the open breaker.
func TestShardStaleManifestReadyz(t *testing.T) {
	leakcheck.Check(t)
	srv, chaos, _ := newShardFaultServer(t)
	driveFault(t, srv, chaos, func() error {
		name, err := chaos.StaleManifest()
		if err == nil {
			t.Logf("deleted %s", name)
		}
		return err
	})
	if n := chaos.Counts()[faultinject.KindStaleManifest]; n != 1 {
		t.Errorf("stale-manifest count %d, want 1", n)
	}
}

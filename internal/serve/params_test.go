package serve

import (
	"net/url"
	"testing"

	"supremm/internal/store"
)

var allParamKeys = []string{
	"metric", "metrics", "group", "cluster", "user", "app", "science",
	"status", "minsamples", "endafter", "endbefore", "limit", "normalize",
	"bins", "n", "apps", "min_nodehours", "suite",
}

func TestDecodeParamsDefaults(t *testing.T) {
	p, err := decodeParams(url.Values{}, allParamKeys...)
	if err != nil {
		t.Fatal(err)
	}
	if p.Limit != 20 || p.Bins != 20 || p.N != 5 {
		t.Errorf("defaults limit=%d bins=%d n=%d", p.Limit, p.Bins, p.N)
	}
	if p.Filter.MinSamples != 1 {
		t.Errorf("default minsamples=%d, want 1 (the paper's population)", p.Filter.MinSamples)
	}
	if p.Group != store.ByUser {
		t.Errorf("default group = %v, want ByUser", p.Group)
	}
	if len(p.Metrics) != len(store.KeyMetrics()) {
		t.Errorf("default metrics = %v", p.Metrics)
	}
}

func TestDecodeParamsFull(t *testing.T) {
	q, err := url.ParseQuery("metric=cpu_flops&metrics=cpu_idle,mem_used&group=app" +
		"&cluster=ranger&user=bob&app=namd&science=Physics&status=completed" +
		"&minsamples=2&endafter=100&endbefore=200&limit=7&normalize=true" +
		"&bins=50&n=9&apps=namd,wrf&min_nodehours=12.5&suite=admin")
	if err != nil {
		t.Fatal(err)
	}
	p, err := decodeParams(q, allParamKeys...)
	if err != nil {
		t.Fatal(err)
	}
	if p.Metric != store.MetricFlops || p.Group != store.ByApp || p.Limit != 7 ||
		!p.Normalize || p.Bins != 50 || p.N != 9 || p.MinNodeHours != 12.5 ||
		p.Suite != "admin" || len(p.Apps) != 2 || len(p.Metrics) != 2 {
		t.Errorf("decoded %+v", p)
	}
	f := p.Filter
	if f.Cluster != "ranger" || f.User != "bob" || f.App != "namd" ||
		f.Science != "Physics" || f.Status != "completed" ||
		f.MinSamples != 2 || f.EndAfter != 100 || f.EndBefore != 200 {
		t.Errorf("decoded filter %+v", f)
	}
}

func TestDecodeParamsRejects(t *testing.T) {
	cases := []string{
		"nosuchkey=1",
		"metric=not_a_metric",
		"metrics=cpu_idle,bogus",
		"group=nope",
		"minsamples=-1",
		"minsamples=many",
		"endafter=-5",
		"endbefore=1.5",
		"limit=0",
		"limit=10001",
		"normalize=definitely",
		"bins=0",
		"bins=1001",
		"n=-1",
		"n=1001",
		"min_nodehours=-1",
		"min_nodehours=lots",
		"metric=cpu_idle&metric=cpu_idle", // repeated
	}
	for _, raw := range cases {
		q, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		if _, err := decodeParams(q, allParamKeys...); err == nil {
			t.Errorf("decodeParams(%q) accepted bad input", raw)
		}
	}
}

func TestDecodeParamsScopedAllowlist(t *testing.T) {
	q := url.Values{"suite": {"admin"}}
	if _, err := decodeParams(q, "metric"); err == nil {
		t.Error("suite accepted by an endpoint that does not take it")
	}
	if _, err := decodeParams(q, "suite"); err != nil {
		t.Errorf("suite rejected by its own endpoint: %v", err)
	}
}

package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"supremm/internal/store"
)

// Params is the decoded query-parameter set shared by the data
// endpoints. Each endpoint passes decodeParams the keys it understands;
// anything else — unknown keys, repeated keys, malformed values — is a
// client error surfaced as 400, never a panic (FuzzQueryParams holds
// that line).
type Params struct {
	Metric  store.Metric
	Metrics []store.Metric
	Group   store.GroupKey
	Filter  store.Filter

	Limit        int
	Normalize    bool
	Bins         int
	N            int
	Apps         []string
	MinNodeHours float64
	Suite        string
}

// Decode limits mirroring the store's plausible ranges: a malicious
// bins=1e9 must not allocate gigabytes.
const (
	maxBins  = 1000
	maxLimit = 10000
	maxTopN  = 1000
)

// decodeParams validates q against the allowed key set and fills
// Params with defaults matching the paper's analysis population
// (minsamples=1: jobs longer than one sampling interval).
func decodeParams(q url.Values, allowed ...string) (Params, error) {
	p := Params{
		Group:   store.ByUser,
		Metrics: store.KeyMetrics(),
		Filter:  store.Filter{MinSamples: 1},
		Limit:   20,
		Bins:    20,
		N:       5,
	}
	allow := make(map[string]bool, len(allowed))
	for _, k := range allowed {
		allow[k] = true
	}
	for key, vals := range q {
		if !allow[key] {
			return Params{}, fmt.Errorf("unknown parameter %q", key)
		}
		if len(vals) != 1 {
			return Params{}, fmt.Errorf("parameter %q repeated %d times", key, len(vals))
		}
		value := vals[0]
		var err error
		switch key {
		case "metric":
			if !validMetric(store.Metric(value)) {
				return Params{}, fmt.Errorf("unknown metric %q", value)
			}
			p.Metric = store.Metric(value)
		case "metrics":
			p.Metrics = p.Metrics[:0]
			for _, m := range strings.Split(value, ",") {
				if !validMetric(store.Metric(m)) {
					return Params{}, fmt.Errorf("unknown metric %q", m)
				}
				p.Metrics = append(p.Metrics, store.Metric(m))
			}
		case "group":
			p.Group, err = parseGroupKey(value)
		case "cluster":
			p.Filter.Cluster = value
		case "user":
			p.Filter.User = value
		case "app":
			p.Filter.App = value
		case "science":
			p.Filter.Science = value
		case "status":
			p.Filter.Status = value
		case "minsamples":
			p.Filter.MinSamples, err = parseInt(key, value, 0, 1<<30)
		case "endafter":
			p.Filter.EndAfter, err = parseInt64(key, value)
		case "endbefore":
			p.Filter.EndBefore, err = parseInt64(key, value)
		case "limit":
			p.Limit, err = parseInt(key, value, 1, maxLimit)
		case "normalize":
			p.Normalize, err = strconv.ParseBool(value)
			if err != nil {
				err = fmt.Errorf("bad normalize %q", value)
			}
		case "bins":
			p.Bins, err = parseInt(key, value, 1, maxBins)
		case "n":
			p.N, err = parseInt(key, value, 0, maxTopN)
		case "apps":
			p.Apps = strings.Split(value, ",")
		case "min_nodehours":
			p.MinNodeHours, err = strconv.ParseFloat(value, 64)
			if err != nil || p.MinNodeHours < 0 {
				err = fmt.Errorf("bad min_nodehours %q", value)
			}
		case "suite":
			p.Suite = value
		}
		if err != nil {
			return Params{}, err
		}
	}
	return p, nil
}

func parseInt(key, value string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(value)
	if err != nil || n < lo || n > hi {
		return 0, fmt.Errorf("bad %s %q (want integer in [%d, %d])", key, value, lo, hi)
	}
	return n, nil
}

func parseInt64(key, value string) (int64, error) {
	n, err := strconv.ParseInt(value, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q (want non-negative unix seconds)", key, value)
	}
	return n, nil
}

func parseGroupKey(s string) (store.GroupKey, error) {
	switch s {
	case "user":
		return store.ByUser, nil
	case "app":
		return store.ByApp, nil
	case "science":
		return store.ByScience, nil
	case "cluster":
		return store.ByCluster, nil
	case "status":
		return store.ByStatus, nil
	default:
		return 0, fmt.Errorf("unknown group %q", s)
	}
}

func validMetric(m store.Metric) bool {
	for _, known := range store.AllMetrics() {
		if m == known {
			return true
		}
	}
	return false
}

// filterKeys are the parameter names shared by every endpoint that
// filters the job population.
var filterKeys = []string{
	"cluster", "user", "app", "science", "status",
	"minsamples", "endafter", "endbefore",
}

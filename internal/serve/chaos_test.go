package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"supremm/internal/faultinject"
	"supremm/internal/ingest"
	"supremm/internal/leakcheck"
)

// chaosTargets are the data endpoints the soak hammers. They must all
// be generation-independent in body (no /metrics, no /api/v1/health)
// so successful responses can be compared bit-for-bit against a
// fault-free baseline across reloads.
var chaosTargets = []string{
	"/api/v1/aggregate?metric=cpu_idle",
	"/api/v1/aggregate?metric=cpu_flops&app=namd",
	"/api/v1/distribution?metric=mem_used&bins=8",
	"/api/v1/query?group=app&metrics=cpu_idle,cpu_flops&limit=4",
	"/api/v1/profiles/users?n=3",
	"/api/v1/efficiency?limit=5",
	"/api/v1/trends",
	"/api/v1/workload",
	"/api/v1/quality",
	"/api/v1/report?suite=admin",
}

// TestChaosSoak is the serve-layer chaos harness (DESIGN.md §13): a
// seeded fault driver tears the snapshot, storms the data directory,
// and slows snapshot reads while concurrent clients hammer the data
// endpoints through a tight admission valve. Invariants asserted:
//
//  1. every 200 body is bit-identical to the fault-free baseline —
//     faults may shed or delay queries, never corrupt them;
//  2. every 503 carries Retry-After;
//  3. true handler concurrency (measured independently of the
//     admission gauge) never exceeds MaxInFlight;
//  4. the breaker opens under the torn directory, skips polls, and the
//     daemon converges back to healthy (closed breaker, fresh
//     generation, baseline bodies) after heal;
//  5. goroutines return to baseline (leakcheck).
//
// Run under -race via `make test-chaos`.
func TestChaosSoak(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, series := fixtureStore(120), fixtureSeries(30)
	writeDataDir(t, dir, st, series, &ingest.DataQuality{FilesScanned: 12, FilesQuarantined: 1})

	good := make(map[string][]byte)
	for _, name := range []string{"jobs.supremm", "jobs.jsonl", "series.jsonl", "quality.json"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		good[name] = b
	}
	chaos := faultinject.NewServeChaos(20260809, dir, good)

	// Fault-free baseline bodies from a pristine server over the same
	// corpus.
	baselineSrv := newTestServer(t, dir)
	baseline := make(map[string][]byte, len(chaosTargets))
	for _, target := range chaosTargets {
		status, body := get(t, baselineSrv, target)
		if status != http.StatusOK {
			t.Fatalf("baseline %s: status %d (%s)", target, status, body)
		}
		baseline[target] = body
	}

	// The chaos server: tight valve, slow reads of jobs.supremm, a gate
	// the saturation phase uses to pin handlers inside their slots, and
	// an independent concurrency meter.
	const (
		maxInFlight = 4
		maxQueue    = 8
		clients     = 16
	)
	var cur, peak atomic.Int64
	var gateOn atomic.Bool
	gate := make(chan struct{})
	hooks := Hooks{BeforeHandle: func(context.Context, string) func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		if gateOn.Load() {
			<-gate
		}
		return func() { cur.Add(-1) }
	}}
	slowOpen := faultinject.SlowOpener(osOpen,
		func(path string) bool { return filepath.Base(path) == "jobs.supremm" },
		func() { time.Sleep(20 * time.Microsecond) })
	srv, err := New(Config{
		DataDir:             dir,
		MaxInFlight:         maxInFlight,
		MaxQueue:            maxQueue,
		RetryAfterSec:       1,
		BreakerThreshold:    3,
		BreakerBackoffPolls: 2,
		Open:                slowOpen,
		Hooks:               hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	startGen := srv.Snapshot().Gen

	// Client fleet: round-robin over the targets, validating every
	// response against the invariants.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				target := chaosTargets[(g+i)%len(chaosTargets)]
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				switch rec.Code {
				case http.StatusOK:
					if !bytes.Equal(rec.Body.Bytes(), baseline[target]) {
						report(errNotBaseline(target, rec.Body.Bytes()))
						return
					}
				case http.StatusServiceUnavailable:
					if rec.Header().Get("Retry-After") == "" {
						report(errNoRetryAfter(target))
						return
					}
				default:
					report(errBadStatus(target, rec.Code, rec.Body.String()))
					return
				}
			}
		}(g)
	}

	waitAdm := func(cond func(admissionDTO) bool, what string) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond(srv.adm.dto()) {
			if time.Now().After(deadline) {
				stop.Store(true)
				close(gate)
				wg.Wait()
				t.Fatalf("saturation never reached: %s (adm %+v)", what, srv.adm.dto())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// --- Phase 1: saturation. Gate the handlers so the fleet pins the
	// valve at its limits, then verify deterministic shedding.
	gateOn.Store(true)
	waitAdm(func(d admissionDTO) bool {
		return d.InFlight == maxInFlight && d.InQueue == maxQueue
	}, "in_flight at limit and queue full")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, chaosTargets[0], nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		stop.Store(true)
		close(gate)
		wg.Wait()
		t.Fatalf("request at full valve: status %d, Retry-After %q",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	gateOn.Store(false)
	close(gate)

	// --- Phase 2: reload storm + slow reads. The directory is
	// rewritten rapidly (non-atomic legacy writer); polls land on
	// loadable bytes here, so reloads succeed while queries keep
	// matching baseline.
	for i := 0; i < 3; i++ {
		if err := chaos.Storm(2); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.MaybeReload(); err != nil {
			// A poll can catch a storm rewrite mid-flight; the breaker
			// absorbs it and the last-good snapshot keeps serving.
			t.Logf("storm poll %d: %v (tolerated)", i, err)
		}
	}

	// --- Phase 3: torn snapshot. Polls fail until the breaker opens;
	// the served snapshot must not change.
	genBeforeTear := srv.Snapshot().Gen
	if _, err := chaos.TearSnapshot(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.brk.currentState() != breakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under torn snapshot")
		}
		_, _ = srv.MaybeReload() // failures feed the breaker
		time.Sleep(time.Millisecond)
	}
	if g := srv.Snapshot().Gen; g != genBeforeTear {
		t.Fatalf("served generation moved %d -> %d during torn phase", genBeforeTear, g)
	}
	skippedBefore := srv.brk.dto().ReloadsSkipped
	for i := 0; i < 2; i++ {
		_, _ = srv.MaybeReload()
	}
	if skipped := srv.brk.dto().ReloadsSkipped; skipped <= skippedBefore {
		t.Errorf("open breaker skipped no polls (%d -> %d)", skippedBefore, skipped)
	}

	// --- Phase 4: heal. Polls keep coming; the half-open probe lands
	// on good bytes and the daemon converges back to healthy.
	if err := chaos.Heal(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for srv.Snapshot().Gen == genBeforeTear || srv.brk.currentState() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never converged after heal (gen %d, breaker %v)",
				srv.Snapshot().Gen, srv.brk.currentState())
		}
		_, _ = srv.MaybeReload()
		time.Sleep(time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Post-soak invariants.
	if p := peak.Load(); p > maxInFlight {
		t.Errorf("true concurrency peaked at %d, limit %d", p, maxInFlight)
	}
	if n := srv.met.shed.Load(); n == 0 {
		t.Error("soak shed nothing despite the saturation phase")
	}
	if opens := srv.brk.dto().Opens; opens < 1 {
		t.Errorf("breaker opened %d times, want >= 1", opens)
	}
	if g := srv.Snapshot().Gen; g <= startGen {
		t.Errorf("final generation %d not past start %d", g, startGen)
	}
	counts := chaos.Counts()
	if counts[faultinject.KindTornSnapshot] == 0 || counts[faultinject.KindReloadStorm] == 0 {
		t.Errorf("fault counts incomplete: %v", counts)
	}
	// Converged: every target matches the fault-free baseline again.
	for _, target := range chaosTargets {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Fatalf("post-heal %s: status %d (%s)", target, status, body)
		}
		if !bytes.Equal(body, baseline[target]) {
			t.Errorf("post-heal %s diverges from baseline", target)
		}
	}
}

// TestChaosSlowClient runs the daemon on a real listener and hits it
// with clients that read a byte at a time and hang up mid-body; the
// daemon must neither leak goroutines nor wedge its admission valve.
func TestChaosSlowClient(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(40), fixtureSeries(8), nil)
	srv, err := New(Config{DataDir: dir, MaxInFlight: 2, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	addr := ts.Listener.Addr().String()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Read a handful of bytes slowly, then disconnect mid-body.
			err := faultinject.SlowClient(addr, "/api/v1/workload", 8+i,
				func() { time.Sleep(time.Millisecond) })
			if err != nil {
				t.Errorf("slow client %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	// The valve fully recovered: a normal client gets a full answer.
	resp, err := http.Get(ts.URL + "/api/v1/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after slow clients: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.dto().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slots wedged: %+v", srv.adm.dto())
		}
		time.Sleep(time.Millisecond)
	}
}

// Error constructors kept out of the hot loop for readability.

func errNotBaseline(target string, body []byte) error {
	return &chaosErr{msg: "response for " + target + " diverged from fault-free baseline: " + trim(body)}
}

func errNoRetryAfter(target string) error {
	return &chaosErr{msg: "503 for " + target + " without Retry-After"}
}

func errBadStatus(target string, code int, body string) error {
	return &chaosErr{msg: target + ": unexpected status " + http.StatusText(code) + ": " + trim([]byte(body))}
}

type chaosErr struct{ msg string }

func (e *chaosErr) Error() string { return e.msg }

func trim(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

package serve

import (
	"encoding/json"
	"math"

	"supremm/internal/core"
	"supremm/internal/stats"
	"supremm/internal/store"
)

// F is a JSON-safe float: NaN and ±Inf marshal as null instead of
// failing the whole response, which matters because empty aggregates
// are NaN by contract in internal/store.
type F float64

// MarshalJSON implements json.Marshaler.
func (f F) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func fmap(in map[store.Metric]float64) map[string]F {
	if in == nil {
		return nil
	}
	out := make(map[string]F, len(in))
	for k, v := range in {
		out[string(k)] = F(v)
	}
	return out
}

// aggDTO mirrors store.Agg for the /aggregate response.
type aggDTO struct {
	Metric         string `json:"metric"`
	N              int    `json:"n"`
	NodeHours      F      `json:"node_hours"`
	Mean           F      `json:"mean"`
	StdDev         F      `json:"stddev"`
	Min            F      `json:"min"`
	Max            F      `json:"max"`
	UnweightedMean F      `json:"unweighted_mean"`
}

func newAggDTO(m store.Metric, a store.Agg) aggDTO {
	return aggDTO{
		Metric: string(m), N: a.N, NodeHours: F(a.NodeHours),
		Mean: F(a.Mean), StdDev: F(a.StdDev), Min: F(a.Min), Max: F(a.Max),
		UnweightedMean: F(a.UnweightedMean),
	}
}

// groupDTO is one group-by bucket.
type groupDTO struct {
	Key       string       `json:"key"`
	N         int          `json:"n"`
	NodeHours F            `json:"node_hours"`
	Mean      map[string]F `json:"mean"`
}

// queryDTO is the /query response.
type queryDTO struct {
	GroupBy    string       `json:"group_by"`
	Metrics    []string     `json:"metrics"`
	Normalized bool         `json:"normalized"`
	FleetMeans map[string]F `json:"fleet_means"`
	Groups     []groupDTO   `json:"groups"`
}

func newQueryDTO(res core.QueryResult) queryDTO {
	out := queryDTO{
		GroupBy:    groupKeyName(res.Query.GroupBy),
		Normalized: res.Query.Normalize,
		FleetMeans: fmap(res.FleetMeans),
		Groups:     make([]groupDTO, 0, len(res.Groups)),
	}
	for _, m := range res.Query.Metrics {
		out.Metrics = append(out.Metrics, string(m))
	}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, groupDTO{
			Key: g.Key, N: g.N, NodeHours: F(g.NodeHours), Mean: fmap(g.Mean),
		})
	}
	return out
}

// profileDTO mirrors core.Profile (the Fig 2/3 radar data).
type profileDTO struct {
	Key        string       `json:"key"`
	Cluster    string       `json:"cluster"`
	N          int          `json:"n"`
	NodeHours  F            `json:"node_hours"`
	Normalized map[string]F `json:"normalized"`
	Raw        map[string]F `json:"raw"`
}

func newProfileDTOs(ps []core.Profile) []profileDTO {
	out := make([]profileDTO, 0, len(ps))
	for _, p := range ps {
		out = append(out, profileDTO{
			Key: p.Key, Cluster: p.Cluster, N: p.N, NodeHours: F(p.NodeHours),
			Normalized: fmap(p.Normalized), Raw: fmap(p.Raw),
		})
	}
	return out
}

// efficiencyDTO is the /efficiency response (the Fig 4 scatter).
type efficiencyDTO struct {
	Cluster         string        `json:"cluster"`
	FleetEfficiency F             `json:"fleet_efficiency"`
	WastedTotal     F             `json:"wasted_node_hours_total"`
	Users           []userEffDTO  `json:"users"`
	Worst           []userEffDTO  `json:"worst,omitempty"`
}

type userEffDTO struct {
	User            string `json:"user"`
	Jobs            int    `json:"jobs"`
	NodeHours       F      `json:"node_hours"`
	WastedNodeHours F      `json:"wasted_node_hours"`
	IdleFrac        F      `json:"idle_frac"`
	Efficiency      F      `json:"efficiency"`
}

func newUserEffDTOs(us []core.UserEfficiency) []userEffDTO {
	out := make([]userEffDTO, 0, len(us))
	for _, u := range us {
		out = append(out, userEffDTO{
			User: u.User, Jobs: u.Jobs, NodeHours: F(u.NodeHours),
			WastedNodeHours: F(u.WastedNodeHours), IdleFrac: F(u.IdleFrac),
			Efficiency: F(u.Efficiency()),
		})
	}
	return out
}

// trendDTO mirrors core.Trend.
type trendDTO struct {
	Metric           string `json:"metric"`
	SlopePerDay      F      `json:"slope_per_day"`
	RelativePerMonth F      `json:"relative_per_month"`
	P                F      `json:"p"`
	Significant      bool   `json:"significant"`
	R2               F      `json:"r2"`
	N                int    `json:"n"`
}

// distributionDTO is a binned histogram of one metric.
type distributionDTO struct {
	Metric     string `json:"metric"`
	N          int    `json:"n"`
	Lo         F      `json:"lo"`
	Hi         F      `json:"hi"`
	Counts     []int  `json:"counts"`
	BinCenters []F    `json:"bin_centers"`
}

func newDistributionDTO(m store.Metric, h *stats.Histogram) distributionDTO {
	d := distributionDTO{
		Metric: string(m), N: h.N, Lo: F(h.Lo), Hi: F(h.Hi), Counts: h.Counts,
	}
	d.BinCenters = make([]F, len(h.Counts))
	for i := range h.Counts {
		d.BinCenters[i] = F(h.BinCenter(i))
	}
	return d
}

// describeDTO mirrors stats.Describe.
type describeDTO struct {
	N      int `json:"n"`
	Mean   F   `json:"mean"`
	StdDev F   `json:"stddev"`
	Min    F   `json:"min"`
	Q25    F   `json:"q25"`
	Median F   `json:"median"`
	Q75    F   `json:"q75"`
	Max    F   `json:"max"`
}

func newDescribeDTO(d stats.Describe) describeDTO {
	return describeDTO{
		N: d.N, Mean: F(d.Mean), StdDev: F(d.StdDev), Min: F(d.Min),
		Q25: F(d.Q25), Median: F(d.Median), Q75: F(d.Q75), Max: F(d.Max),
	}
}

// workloadDTO mirrors core.Characterization.
type workloadDTO struct {
	Cluster                string          `json:"cluster"`
	Jobs                   int             `json:"jobs"`
	TotalNodeHours         F               `json:"total_node_hours"`
	SizeBuckets            []sizeBucketDTO `json:"size_buckets"`
	Runtime                describeDTO     `json:"runtime_min"`
	WeightedMeanRuntimeMin F               `json:"weighted_mean_runtime_min"`
	ScienceShare           []shareDTO      `json:"science_share"`
	AppShare               []shareDTO      `json:"app_share"`
}

type sizeBucketDTO struct {
	Label     string `json:"label"`
	Jobs      int    `json:"jobs"`
	NodeHours F      `json:"node_hours"`
	Share     F      `json:"share"`
}

type shareDTO struct {
	Key       string `json:"key"`
	Jobs      int    `json:"jobs"`
	NodeHours F      `json:"node_hours"`
	Share     F      `json:"share"`
}

func newWorkloadDTO(cluster string, c core.Characterization) workloadDTO {
	out := workloadDTO{
		Cluster: cluster, Jobs: c.Jobs, TotalNodeHours: F(c.TotalNodeHours),
		Runtime:                newDescribeDTO(c.Runtime),
		WeightedMeanRuntimeMin: F(c.WeightedMeanRuntimeMin),
	}
	for _, b := range c.SizeBuckets {
		out.SizeBuckets = append(out.SizeBuckets, sizeBucketDTO{
			Label: b.Label, Jobs: b.Jobs, NodeHours: F(b.NodeHours), Share: F(b.NodeHoursShare),
		})
	}
	toShares := func(rows []core.ShareRow) []shareDTO {
		s := make([]shareDTO, 0, len(rows))
		for _, r := range rows {
			s = append(s, shareDTO{Key: r.Key, Jobs: r.Jobs, NodeHours: F(r.NodeHours), Share: F(r.Share)})
		}
		return s
	}
	out.ScienceShare = toShares(c.ScienceShare)
	out.AppShare = toShares(c.AppShare)
	return out
}

// healthDTO is the /health response. It deliberately excludes paths and
// timestamps so responses stay byte-stable for the golden harness.
type healthDTO struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Cluster    string `json:"cluster"`
	Jobs       int    `json:"jobs"`
	Series     int    `json:"series_samples"`
	Indexed    bool   `json:"indexed"`
	Source     string `json:"source"`
	Shards     int    `json:"shards"`
}

func groupKeyName(k store.GroupKey) string {
	switch k {
	case store.ByUser:
		return "user"
	case store.ByApp:
		return "app"
	case store.ByScience:
		return "science"
	case store.ByCluster:
		return "cluster"
	case store.ByStatus:
		return "status"
	default:
		return "unknown"
	}
}

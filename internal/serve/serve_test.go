package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"supremm/internal/ingest"
	"supremm/internal/store"
)

// fixtureStore builds a small deterministic ranger store.
func fixtureStore(n int) *store.Store {
	st := store.New()
	for i := 0; i < n; i++ {
		r := store.JobRecord{
			JobID:   int64(100 + i),
			Cluster: "ranger",
			User:    fmt.Sprintf("u%02d", i%7),
			App:     []string{"namd", "amber", "gromacs", "wrf"}[i%4],
			Science: []string{"Chemistry", "Physics"}[i%2],
			Nodes:   1 + i%16,
			Submit:  int64(1000 * i),
			Start:   int64(1000*i + 120),
			End:     int64(1000*i + 120 + 3600*(1+i%6)),
			Status:  "completed",
			Samples: 1 + i%4,
		}
		r.CPUIdleFrac = float64(i%10) / 10
		r.MemUsedGB = float64(i % 13)
		r.FlopsGF = 1.5 * float64(i%9)
		st.Add(r)
	}
	return st
}

func fixtureSeries(n int) []store.SystemSample {
	out := make([]store.SystemSample, n)
	for i := range out {
		out[i] = store.SystemSample{
			Time:        int64(600 * (i + 1)),
			ActiveNodes: 16,
			BusyNodes:   8 + i%8,
			TotalTFlops: 1 + float64(i%5),
			MemPerNode:  8 + float64(i%3),
			CPUIdleFrac: 0.1,
		}
	}
	return out
}

// writeDataDir materializes a data directory for the daemon to load.
func writeDataDir(t testing.TB, dir string, st *store.Store, series []store.SystemSample, q *ingest.DataQuality) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(jf); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}
	bf, err := os.Create(filepath.Join(dir, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBinary(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	sf, err := os.Create(filepath.Join(dir, "series.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SaveSeries(sf, series); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	if q != nil {
		if err := ingest.SaveQuality(filepath.Join(dir, "quality.json"), q); err != nil {
			t.Fatal(err)
		}
	}
}

func newTestServer(t testing.TB, dir string) *Server {
	t.Helper()
	srv, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// get performs one in-process request and returns status and body.
func get(t testing.TB, srv *Server, target string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec.Code, rec.Body.Bytes()
}

func TestEndpointsBasic(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(200), fixtureSeries(50),
		&ingest.DataQuality{FilesScanned: 10, FilesQuarantined: 1})
	srv := newTestServer(t, dir)

	for _, target := range []string{
		"/api/v1/health",
		"/api/v1/aggregate?metric=cpu_idle",
		"/api/v1/aggregate?metric=cpu_flops&user=u03&minsamples=2",
		"/api/v1/distribution?metric=mem_used&bins=10",
		"/api/v1/query?group=app&metrics=cpu_idle,cpu_flops&limit=3",
		"/api/v1/query?group=science&normalize=true",
		"/api/v1/profiles/users?n=3",
		"/api/v1/profiles/apps?apps=namd,amber",
		"/api/v1/efficiency?n=2&min_nodehours=1",
		"/api/v1/trends",
		"/api/v1/workload",
		"/api/v1/quality",
		"/api/v1/report?suite=support",
		"/metrics",
	} {
		status, body := get(t, srv, target)
		if status != http.StatusOK {
			t.Errorf("%s: status %d, body %s", target, status, body)
			continue
		}
		if !strings.Contains(target, "report") {
			var v any
			if err := json.Unmarshal(body, &v); err != nil {
				t.Errorf("%s: invalid JSON: %v", target, err)
			}
		}
	}
}

func TestClientErrors(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(20), fixtureSeries(5), nil)
	srv := newTestServer(t, dir)

	for _, target := range []string{
		"/api/v1/aggregate",                          // missing metric
		"/api/v1/aggregate?metric=bogus",             // unknown metric
		"/api/v1/aggregate?metric=cpu_idle&foo=1",    // unknown key
		"/api/v1/aggregate?metric=cpu_idle&metric=x", // repeated key
		"/api/v1/query?group=bogus",
		"/api/v1/query?limit=0",
		"/api/v1/query?limit=999999999",
		"/api/v1/distribution?metric=cpu_idle&bins=-1",
		"/api/v1/distribution?metric=cpu_idle&bins=100000",
		"/api/v1/profiles/users?n=abc",
		"/api/v1/efficiency?min_nodehours=-3",
		"/api/v1/report",                // missing suite
		"/api/v1/report?suite=nobody",   // unknown suite
		"/api/v1/health?unexpected=1",   // health takes no params
		"/api/v1/query?minsamples=-1",   // negative
		"/api/v1/query?endafter=later",  // non-numeric
		"/api/v1/query?normalize=maybe", // non-bool
	} {
		status, body := get(t, srv, target)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", target, status, body)
			continue
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON {error}: %s", target, body)
		}
	}

	if status, _ := get(t, srv, "/api/v1/nothing"); status != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", status)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/aggregate?metric=cpu_idle", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST to GET endpoint: status %d, want 405", rec.Code)
	}
}

func TestCacheHitsAndGenerationInvalidation(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(100), fixtureSeries(10), nil)
	srv := newTestServer(t, dir)

	target := "/api/v1/aggregate?metric=cpu_idle"
	_, first := get(t, srv, target)
	hits0, _ := srv.cache.Stats()
	_, second := get(t, srv, target)
	hits1, _ := srv.cache.Stats()
	if hits1 != hits0+1 {
		t.Fatalf("second request did not hit the cache: hits %d -> %d", hits0, hits1)
	}
	if string(first) != string(second) {
		t.Fatal("cached response differs from rendered response")
	}

	// Same filter expressed in a different parameter order must hit the
	// same cache entry (canonical key).
	_, _ = get(t, srv, "/api/v1/aggregate?user=u01&metric=cpu_idle")
	hitsA, _ := srv.cache.Stats()
	_, _ = get(t, srv, "/api/v1/aggregate?metric=cpu_idle&user=u01")
	hitsB, _ := srv.cache.Stats()
	if hitsB != hitsA+1 {
		t.Fatal("parameter order changed the cache key")
	}

	// A reload bumps the generation: the old entry must not serve.
	writeDataDir(t, dir, fixtureStore(150), fixtureSeries(10), nil)
	gen0 := srv.Snapshot().Gen
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d, body %s", rec.Code, rec.Body.String())
	}
	if srv.Snapshot().Gen != gen0+1 {
		t.Fatalf("generation %d after reload, want %d", srv.Snapshot().Gen, gen0+1)
	}
	_, third := get(t, srv, target)
	var before, after aggDTO
	if err := json.Unmarshal(first, &before); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(third, &after); err != nil {
		t.Fatal(err)
	}
	if before.N == after.N {
		t.Fatalf("post-reload response still reflects the old store (n=%d)", after.N)
	}
}

func TestMaybeReloadPolling(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(50), fixtureSeries(5), nil)
	srv := newTestServer(t, dir)

	reloaded, err := srv.MaybeReload()
	if err != nil {
		t.Fatal(err)
	}
	if reloaded {
		t.Fatal("MaybeReload reloaded with an unchanged directory")
	}
	// Rewrite with different content; ensure the mtime-or-size
	// fingerprint moves even on coarse-mtime filesystems.
	writeDataDir(t, dir, fixtureStore(60), fixtureSeries(5), nil)
	fixed := time.Unix(1700000000, 0)
	if err := os.Chtimes(filepath.Join(dir, "jobs.jsonl"), fixed, fixed); err != nil {
		t.Fatal(err)
	}
	reloaded, err = srv.MaybeReload()
	if err != nil {
		t.Fatal(err)
	}
	if !reloaded {
		t.Fatal("MaybeReload missed a changed data directory")
	}
	if got := srv.Snapshot().Realm.Store.Len(); got != 60 {
		t.Fatalf("reloaded store has %d jobs, want 60", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(30), fixtureSeries(5), nil)
	// A fake strictly increasing clock exercises the latency histogram
	// deterministically.
	var tick int64
	srv, err := New(Config{DataDir: dir, Now: func() time.Time {
		tick++
		return time.Unix(0, tick*int64(200*time.Microsecond))
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = get(t, srv, "/api/v1/aggregate?metric=cpu_idle")
	_, _ = get(t, srv, "/api/v1/aggregate?metric=cpu_idle") // cache hit
	_, _ = get(t, srv, "/api/v1/aggregate?metric=nope")     // 400
	status, body := get(t, srv, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d", status)
	}
	var m metricsDTO
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, body)
	}
	if m.Requests["/api/v1/aggregate"] != 3 {
		t.Errorf("aggregate requests = %d, want 3", m.Requests["/api/v1/aggregate"])
	}
	if m.Status4xx != 1 || m.Status2xx < 2 {
		t.Errorf("status counters 2xx=%d 4xx=%d", m.Status2xx, m.Status4xx)
	}
	if m.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", m.CacheHits)
	}
	if m.StoreGeneration != 1 {
		t.Errorf("store generation = %d, want 1", m.StoreGeneration)
	}
	if m.Latency.Observed == 0 {
		t.Error("latency histogram recorded nothing despite injected clock")
	}
}

func TestQualityAbsent(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(10), fixtureSeries(2), nil)
	srv := newTestServer(t, dir)
	_, body := get(t, srv, "/api/v1/quality")
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v["available"] != false {
		t.Fatalf("quality without quality.json: %v", v)
	}
}

func TestNaNSafeJSONOnEmptyPopulation(t *testing.T) {
	dir := t.TempDir()
	writeDataDir(t, dir, fixtureStore(10), fixtureSeries(2), nil)
	srv := newTestServer(t, dir)
	// No job matches this user: the aggregate is all-NaN, which must
	// render as nulls, not fail to marshal.
	status, body := get(t, srv, "/api/v1/aggregate?metric=cpu_idle&user=nobody")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v["mean"] != nil {
		t.Fatalf("empty aggregate mean = %v, want null", v["mean"])
	}
	if v["n"] != float64(0) {
		t.Fatalf("empty aggregate n = %v, want 0", v["n"])
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
)

// Hooks are instrumentation seams for the chaos harness and tests;
// production builds leave them unset and pay a nil check.
type Hooks struct {
	// BeforeHandle runs inside the admission slot, before the handler
	// body, for every guarded data request. A non-nil returned func runs
	// when the handler finishes — the pair brackets exactly the
	// in-flight window, which is how the chaos soak measures true
	// concurrency independently of the admission gauge.
	BeforeHandle func(ctx context.Context, path string) func()
}

// guard wraps a data handler with the overload controls, outermost
// first: admission (shed or queue), then the per-request deadline,
// then the chaos hook. Ops endpoints (/healthz, /readyz, /metrics,
// /api/v1/health, reload) are deliberately unguarded — they must keep
// answering while the daemon sheds query load, or operators lose sight
// of the overload exactly when they need it.
func (s *Server) guard(fn func(http.ResponseWriter, *http.Request) int) func(http.ResponseWriter, *http.Request) int {
	return func(w http.ResponseWriter, r *http.Request) int {
		release, verdict := s.adm.acquire(r.Context())
		switch verdict {
		case admitShed:
			s.met.shed.Add(1)
			return s.writeOverloaded(w, "in-flight limit and queue full")
		case admitCancelled:
			s.met.cancelled.Add(1)
			return s.writeOverloaded(w, "client gave up while queued")
		}
		defer release()
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if h := s.cfg.Hooks.BeforeHandle; h != nil {
			if done := h(r.Context(), r.URL.Path); done != nil {
				defer done()
			}
		}
		return fn(w, r)
	}
}

// recoverWrap invokes fn, converting a handler panic into a counted
// 500: one bad request (or one bug in one endpoint) must never take
// the whole daemon down. The response write is best-effort — if the
// handler panicked mid-body the client sees a torn reply, but the
// daemon survives to serve the next request and the panic is visible
// at /metrics (panics_recovered).
func (s *Server) recoverWrap(fn func(http.ResponseWriter, *http.Request) int, w http.ResponseWriter, r *http.Request) (status int) {
	defer func() {
		if p := recover(); p != nil {
			s.met.panics.Add(1)
			status = s.writeError(w, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
		}
	}()
	return fn(w, r)
}

// writeOverloaded answers a shed, timed-out, or abandoned request: 503
// with Retry-After, so well-behaved clients and balancers back off
// instead of hammering a daemon that has just told them it is at
// capacity.
func (s *Server) writeOverloaded(w http.ResponseWriter, reason string) int {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter))
	return s.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("overloaded: %s", reason))
}

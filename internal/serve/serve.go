// Package serve is the query-serving layer of the reproduction: the
// XDMoD-style HTTP JSON API (cmd/supremmd) over an ingested data
// directory. It holds the warehouse in immutable, atomically swapped
// snapshots (indexed store + realm + quality report), caches rendered
// responses keyed by store generation, and instruments itself with an
// expvar-style /metrics endpoint. See DESIGN.md §10.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"supremm/internal/core"
	"supremm/internal/report"
	"supremm/internal/stats"
	"supremm/internal/store"
)

// Config configures a Server.
type Config struct {
	// DataDir is the ingested data directory (jobs.jsonl, series.jsonl,
	// optional quality.json).
	DataDir string
	// Workers bounds the aggregation fan-out; 0 means GOMAXPROCS. The
	// worker count never changes results (store.AggregateParallel).
	Workers int
	// CacheSize caps the query-result cache entries; 0 means the
	// default (1024), negative disables caching.
	CacheSize int
	// RetryMax and Backoff carry the ingest retry idiom into snapshot
	// loads: a load racing an ingest rewrite is retried rather than
	// failed (see loadSnapshot).
	RetryMax int
	Backoff  func(attempt int)
	// Now supplies the clock for latency metrics. The serve core never
	// reads the wall clock itself (the walltime invariant); cmd/supremmd
	// injects time.Now, tests inject fakes or nothing.
	Now func() time.Time

	// MaxInFlight bounds concurrently executing data queries; 0 means
	// the default (64), negative disables admission control entirely.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an in-flight slot; beyond it
	// requests are shed with 503 + Retry-After. 0 means the default
	// (2x MaxInFlight), negative means no queue (shed at the limit).
	MaxQueue int
	// RequestTimeout is the per-request deadline for admitted data
	// queries, propagated through context into the aggregation kernels
	// so a slow query is cancelled instead of piling up; 0 disables.
	RequestTimeout time.Duration
	// RetryAfterSec is the Retry-After header value on shed and
	// timed-out responses; 0 means the default (1).
	RetryAfterSec int
	// BreakerThreshold is the consecutive reload failures that open the
	// snapshot-reload circuit breaker; 0 means the default (3).
	BreakerThreshold int
	// BreakerBackoffPolls is the breaker's initial open cooldown in
	// poll ticks (doubling per failed probe, capped); 0 means the
	// default (2).
	BreakerBackoffPolls int
	// Open, when non-nil, replaces os.Open for snapshot data files —
	// the seam the chaos harness uses to inject slow-fs reads. Reads of
	// jobs.supremm, jobs.jsonl and series.jsonl go through it.
	Open func(path string) (io.ReadCloser, error)
	// Hooks are chaos/test instrumentation; see Hooks.
	Hooks Hooks

	// SelfHeal enables the self-healing shard pipeline (DESIGN.md §15):
	// background scrubbing, quarantine + repair of damaged shards, and
	// degraded-mode serving with coverage accounting instead of failing
	// reloads wholesale. Off (the zero value) preserves the strict
	// all-or-nothing reload policy.
	SelfHeal bool
	// ScrubBudgetBytes bounds the shard bytes the scrubber re-reads per
	// poll tick; 0 means the default (4 MiB), negative scrubs the whole
	// set every tick (tests). Ignored unless SelfHeal is on.
	ScrubBudgetBytes int64
	// MinCoverage is the coverage floor for data queries: a degraded
	// snapshot covering less than this fraction of the manifest's rows
	// answers data queries 503 (with Retry-After and the missing day
	// ranges) instead of serving misleadingly partial results. 0 serves
	// at any coverage. Ops endpoints always answer.
	MinCoverage float64
}

const (
	defaultCacheSize   = 1024
	defaultMaxInFlight = 64
	defaultRetryAfter  = 1
	defaultScrubBudget = 4 << 20
)

// Server is the query daemon: an http.Handler over the current
// snapshot. Safe for concurrent use; Reload may run concurrently with
// requests.
type Server struct {
	cfg     Config
	workers int
	mux     *http.ServeMux
	// routeMethods maps exact route paths to their method, so the
	// catch-all can answer 405 (the mux's own 405 is shadowed by the
	// catch-all pattern).
	routeMethods map[string]string
	snap         atomic.Pointer[Snapshot]
	lastGen      atomic.Uint64
	cache        *Cache
	met          *Metrics
	adm          *admission // nil = admission disabled
	brk          *breaker
	retryAfter   int
	open         func(path string) (io.ReadCloser, error)

	// Self-heal state (nil/zero unless Config.SelfHeal): the scrubber
	// cursor over the served generation's shards and its budget.
	scrubBudget int64
	scrubMu     sync.Mutex
	scrubber    *store.Scrubber
	scrubGen    uint64

	// reloadMu serializes snapshot loads; queries never take it.
	reloadMu sync.Mutex
}

// New loads the initial snapshot from cfg.DataDir and assembles the
// routing table.
func New(cfg Config) (*Server, error) {
	s := &Server{cfg: cfg, workers: cfg.Workers, met: newMetrics()}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size == 0 {
		size = defaultCacheSize
	}
	if size < 0 {
		size = 0 // disabled
	}
	s.cache = newCache(size)
	limit := cfg.MaxInFlight
	if limit == 0 {
		limit = defaultMaxInFlight
	}
	if limit > 0 {
		queueCap := cfg.MaxQueue
		if queueCap == 0 {
			queueCap = 2 * limit
		}
		s.adm = newAdmission(limit, queueCap)
	}
	s.retryAfter = cfg.RetryAfterSec
	if s.retryAfter <= 0 {
		s.retryAfter = defaultRetryAfter
	}
	s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoffPolls)
	s.open = cfg.Open
	if s.open == nil {
		s.open = osOpen
	}
	if cfg.SelfHeal {
		s.scrubBudget = cfg.ScrubBudgetBytes
		if s.scrubBudget == 0 {
			s.scrubBudget = defaultScrubBudget
		}
	}
	snap, err := loadSnapshotHeal(cfg.DataDir, s.lastGen.Add(1), cfg.RetryMax, cfg.Backoff, s.open, nil, s.newHealLoad())
	if err != nil {
		return nil, err
	}
	s.noteHeal(snap)
	s.snap.Store(snap)
	s.routes()
	return s, nil
}

// newHealLoad builds the per-load heal context, nil when self-healing
// is off (strict legacy loading).
func (s *Server) newHealLoad() *healLoad {
	if !s.cfg.SelfHeal {
		return nil
	}
	return &healLoad{now: s.nowUnix()}
}

// noteHeal folds a completed healing load's outcome into the metrics.
func (s *Server) noteHeal(snap *Snapshot) {
	if snap.heal == nil {
		return
	}
	s.met.quarantines.Add(int64(snap.heal.outcome.quarantines))
	s.met.repairs.Add(int64(snap.heal.outcome.repairs))
}

// BeginDrain puts the daemon into shed-aware shutdown: every queued
// request and every new arrival is answered 503 + Retry-After
// immediately, while requests already executing run to completion
// (http.Server.Shutdown collects those). Called by cmd/supremmd when
// SIGTERM/SIGINT arrives, before the listener drain, so the drain
// budget is spent on work that started — never on a queue that would
// be killed anyway.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Snapshot returns the current snapshot (never nil after New).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Reload loads a fresh snapshot from the data directory and swaps it
// in. Concurrent queries keep using the old snapshot until the swap;
// the old generation's cache entries are purged afterwards. A failed
// load leaves the served snapshot untouched — the daemon keeps
// answering from the last-good generation — and feeds the reload
// circuit breaker; a success closes the breaker whatever its state.
// Reload is the forced path (POST /api/v1/reload and the half-open
// probe): it always attempts the load, even while the breaker is open.
func (s *Server) Reload() (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	// The current snapshot seeds incremental shard reuse: unchanged
	// shards are shared by pointer with the generation still serving.
	snap, err := loadSnapshotHeal(s.cfg.DataDir, s.lastGen.Add(1), s.cfg.RetryMax, s.cfg.Backoff, s.open, s.snap.Load(), s.newHealLoad())
	if err != nil {
		s.met.reloadErrors.Add(1)
		s.brk.onFailure()
		return nil, err
	}
	s.noteHeal(snap)
	s.brk.onSuccess()
	old := s.snap.Swap(snap)
	s.met.reloads.Add(1)
	if old != nil {
		s.cache.PurgeGeneration(old.Gen)
	}
	return snap, nil
}

// MaybeReload reloads only if the data directory's fingerprint differs
// from the loaded snapshot's — the poll step cmd/supremmd drives on a
// ticker (fsnotify-free hot reload). When the breaker is open the
// attempt is skipped (no load, no error) until the cooldown elapses
// and a half-open probe is due; the daemon keeps serving the last-good
// snapshot throughout.
func (s *Server) MaybeReload() (bool, error) {
	if s.cfg.SelfHeal {
		// The scrub tick runs before the fingerprint check: a quarantine
		// it performs renames a shard file, which changes the fingerprint
		// and flows into a (degraded or repaired) reload this same tick.
		s.scrubTick()
	}
	if DirFingerprint(s.cfg.DataDir) == s.snap.Load().Fingerprint {
		return false, nil
	}
	if !s.brk.tick() {
		return false, nil
	}
	if _, err := s.Reload(); err != nil {
		return false, err
	}
	return true, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers a handler under method+path and records the pair for
// the catch-all's 405 handling.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	s.routeMethods[path] = method
	s.mux.HandleFunc(method+" "+path, h)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.routeMethods = make(map[string]string)
	// Ops endpoints bypass admission: they must answer while the daemon
	// sheds query load (panic recovery still applies via instrument).
	s.route("GET", "/api/v1/health", s.instrument("/api/v1/health", s.handleHealth))
	s.route("GET", "/healthz", s.instrument("/healthz", s.handleHealthz))
	s.route("GET", "/readyz", s.instrument("/readyz", s.handleReadyz))
	s.route("GET", "/metrics", s.instrument("/metrics", s.handleMetrics))
	s.route("POST", "/api/v1/reload", s.instrument("/api/v1/reload", s.handleReload))
	s.data("/api/v1/aggregate", append([]string{"metric"}, filterKeys...), s.aggregate)
	s.data("/api/v1/distribution", append([]string{"metric", "bins"}, filterKeys...), s.distribution)
	s.data("/api/v1/query", append([]string{"group", "metrics", "limit", "normalize"}, filterKeys...), s.query)
	s.data("/api/v1/profiles/users", []string{"n"}, s.userProfiles)
	s.data("/api/v1/profiles/apps", []string{"apps"}, s.appProfiles)
	s.data("/api/v1/efficiency", []string{"limit", "n", "min_nodehours"}, s.efficiency)
	s.data("/api/v1/trends", nil, s.trends)
	s.data("/api/v1/workload", nil, s.workload)
	s.data("/api/v1/quality", nil, s.quality)
	s.text("/api/v1/report", []string{"suite"}, s.reportSuite)
	s.mux.HandleFunc("/", s.instrument("other", func(w http.ResponseWriter, r *http.Request) int {
		if method, ok := s.routeMethods[r.URL.Path]; ok && method != r.Method {
			w.Header().Set("Allow", method)
			return s.writeError(w, http.StatusMethodNotAllowed,
				fmt.Errorf("%s requires %s", r.URL.Path, method))
		}
		return s.writeError(w, http.StatusNotFound, fmt.Errorf("no such endpoint %q", r.URL.Path))
	}))
}

// instrument wraps a handler with panic recovery, request counting and
// the latency histogram. Handlers return the status code they wrote.
func (s *Server) instrument(path string, fn func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		status := s.recoverWrap(fn, w, r)
		var elapsed time.Duration
		if !start.IsZero() {
			elapsed = s.now().Sub(start)
		}
		s.met.observe(path, status, elapsed)
	}
}

func (s *Server) now() time.Time {
	if s.cfg.Now == nil {
		return time.Time{}
	}
	return s.cfg.Now()
}

// data registers a cached JSON GET endpoint behind the admission
// guard: admit (or shed), decode params, consult the generation-keyed
// cache, compute under the request deadline, render, store.
func (s *Server) data(path string, keys []string, fn func(context.Context, *Snapshot, Params) (any, error)) {
	s.route("GET", path, s.instrument(path, s.guard(func(w http.ResponseWriter, r *http.Request) int {
		return s.serveCached(w, r, path, keys, "application/json", func(ctx context.Context, snap *Snapshot, p Params) ([]byte, error) {
			v, err := fn(ctx, snap, p)
			if err != nil {
				return nil, err
			}
			return marshalBody(v)
		})
	})))
}

// text registers a cached plain-text GET endpoint (the report suites),
// guarded like data.
func (s *Server) text(path string, keys []string, fn func(context.Context, *Snapshot, Params) ([]byte, error)) {
	s.route("GET", path, s.instrument(path, s.guard(func(w http.ResponseWriter, r *http.Request) int {
		return s.serveCached(w, r, path, keys, "text/plain; charset=utf-8", fn)
	})))
}

func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, path string, keys []string,
	contentType string, render func(context.Context, *Snapshot, Params) ([]byte, error)) int {

	q := r.URL.Query()
	p, err := decodeParams(q, keys...)
	if err != nil {
		return s.writeError(w, http.StatusBadRequest, err)
	}
	snap := s.snap.Load()
	if s.cfg.MinCoverage > 0 && snap.Coverage.Degraded && snap.Coverage.Ratio < s.cfg.MinCoverage {
		return s.writeBelowCoverage(w, snap)
	}
	key := cacheKey(snap.Gen, path, q.Encode())
	if e, ok := s.cache.Get(key); ok {
		return s.writeBody(w, http.StatusOK, e.contentType, e.body)
	}
	body, err := render(r.Context(), snap, p)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request deadline fired mid-computation: the
			// aggregation was cancelled, nothing is cached, and the
			// client is told to back off.
			s.met.deadlineTimeouts.Add(1)
			return s.writeOverloaded(w, "request deadline exceeded")
		case errors.Is(err, context.Canceled):
			s.met.cancelled.Add(1)
			return s.writeOverloaded(w, "request cancelled")
		}
		if _, ok := err.(*badRequestError); ok {
			return s.writeError(w, http.StatusBadRequest, err)
		}
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	s.cache.Put(key, cacheEntry{body: body, contentType: contentType})
	return s.writeBody(w, http.StatusOK, contentType, body)
}

// badRequestError marks handler failures caused by the request itself.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func marshalBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) writeBody(w http.ResponseWriter, status int, contentType string, body []byte) int {
	w.Header().Set("Content-Type", contentType)
	// Every response carries the served snapshot's coverage ratio, so a
	// client can always tell whether its answer came from a degraded
	// store — even a cached or error response.
	w.Header().Set("X-Supremm-Coverage",
		strconv.FormatFloat(s.snap.Load().Coverage.Ratio, 'g', 6, 64))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		// The client went away mid-response; nothing can be sent to it,
		// so the failure is only counted.
		s.met.writeFailures.Add(1)
	}
	return status
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) int {
	body, merr := marshalBody(map[string]string{"error": err.Error()})
	if merr != nil {
		body = []byte(`{"error":"internal error"}` + "\n")
	}
	return s.writeBody(w, status, "application/json", body)
}

// writeBelowCoverage refuses a data query because the degraded
// snapshot covers less of the manifest than Config.MinCoverage allows:
// 503 with Retry-After (a repair may restore coverage on any poll
// tick) and a body naming exactly which day ranges are missing, so the
// caller knows what a partial answer would have silently dropped.
func (s *Server) writeBelowCoverage(w http.ResponseWriter, snap *Snapshot) int {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter))
	body, err := marshalBody(map[string]any{
		"error": fmt.Sprintf("degraded coverage %.6g is below the serving floor %.6g",
			snap.Coverage.Ratio, s.cfg.MinCoverage),
		"coverage": snap.Coverage,
	})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	return s.writeBody(w, http.StatusServiceUnavailable, "application/json", body)
}

// ---- endpoint handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) int {
	if _, err := decodeParams(r.URL.Query()); err != nil {
		return s.writeError(w, http.StatusBadRequest, err)
	}
	snap := s.snap.Load()
	body, err := marshalBody(healthDTO{
		Status:     "ok",
		Generation: snap.Gen,
		Cluster:    snap.Realm.Cluster,
		Jobs:       snap.Realm.Store.Len(),
		Series:     len(snap.Realm.Series),
		Indexed:    snap.Realm.Store.HasIndex(),
		Source:     snap.Source,
		Shards:     snap.Shards,
	})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	return s.writeBody(w, http.StatusOK, "application/json", body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	snap := s.snap.Load()
	body, err := marshalBody(s.met.snapshotDTO(snap.Gen, snap.Realm.Store.Len(), s.cache, s.adm, s.brk, snap.Coverage))
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	return s.writeBody(w, http.StatusOK, "application/json", body)
}

// handleHealthz is the liveness probe: it answers 200 whenever the
// process can serve HTTP at all, regardless of data-directory health —
// restarting the daemon does not fix a corrupt directory, so liveness
// must not couple to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	snap := s.snap.Load()
	body, err := marshalBody(map[string]any{
		"status":     "live",
		"generation": snap.Gen,
		"jobs":       snap.Realm.Store.Len(),
		"coverage":   snap.Coverage,
	})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	return s.writeBody(w, http.StatusOK, "application/json", body)
}

// handleReadyz is the readiness probe, now three-state:
//
//   - "down" (503 + Retry-After): the reload breaker is open — the
//     daemon still serves the last-good generation, but balancers
//     should prefer replicas with fresh data — or self-healing is on
//     with a coverage floor and the snapshot is below it (data queries
//     are being refused, so the replica is not useful);
//   - "degraded" (200, with the coverage block saying exactly what is
//     missing): serving, but from a partial shard set — balancers may
//     keep routing here, operators should look at the quarantine;
//   - "ready" (200): full coverage, breaker closed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) int {
	snap := s.snap.Load()
	brk := s.brk.dto()
	status := "ready"
	switch {
	case brk.State == breakerOpen.String():
		status = "down"
	case s.cfg.MinCoverage > 0 && snap.Coverage.Degraded && snap.Coverage.Ratio < s.cfg.MinCoverage:
		status = "down"
	case snap.Coverage.Degraded:
		status = "degraded"
	}
	body, err := marshalBody(map[string]any{
		"ready":                status != "down",
		"status":               status,
		"breaker":              brk.State,
		"consecutive_failures": brk.ConsecutiveFailures,
		"generation":           snap.Gen,
		"coverage":             snap.Coverage,
	})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	if status == "down" {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter))
		return s.writeBody(w, http.StatusServiceUnavailable, "application/json", body)
	}
	return s.writeBody(w, http.StatusOK, "application/json", body)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) int {
	snap, err := s.Reload()
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	body, err := marshalBody(map[string]any{
		"generation": snap.Gen,
		"jobs":       snap.Realm.Store.Len(),
		"cluster":    snap.Realm.Cluster,
	})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, err)
	}
	return s.writeBody(w, http.StatusOK, "application/json", body)
}

// realmFilter applies the realm's cluster default, mirroring
// core.Realm.RunQuery: a serve realm never leaks another cluster's
// jobs unless the query names one explicitly.
func realmFilter(snap *Snapshot, f store.Filter) store.Filter {
	if f.Cluster == "" {
		f.Cluster = snap.Realm.Cluster
	}
	return f
}

func (s *Server) aggregate(ctx context.Context, snap *Snapshot, p Params) (any, error) {
	if p.Metric == "" {
		return nil, badRequest("parameter metric is required")
	}
	f := realmFilter(snap, p.Filter)
	agg, err := snap.Realm.Store.AggregateParallelCtx(ctx, p.Metric, f, s.workers)
	if err != nil {
		return nil, err
	}
	return newAggDTO(p.Metric, agg), nil
}

func (s *Server) distribution(ctx context.Context, snap *Snapshot, p Params) (any, error) {
	if p.Metric == "" {
		return nil, badRequest("parameter metric is required")
	}
	f := realmFilter(snap, p.Filter)
	vals, _ := snap.Realm.Store.Values(p.Metric, f)
	lo, hi := 0.0, 0.0
	if len(vals) > 0 {
		lo, hi = stats.MinMax(vals)
	}
	return newDistributionDTO(p.Metric, stats.NewHistogram(vals, lo, hi, p.Bins)), nil
}

func (s *Server) query(_ context.Context, snap *Snapshot, p Params) (any, error) {
	q := core.Query{
		GroupBy:   p.Group,
		Metrics:   p.Metrics,
		Filter:    p.Filter,
		Limit:     p.Limit,
		Normalize: p.Normalize,
	}
	return newQueryDTO(snap.Realm.RunQuery(q)), nil
}

func (s *Server) userProfiles(_ context.Context, snap *Snapshot, p Params) (any, error) {
	return newProfileDTOs(snap.Realm.TopUserProfiles(p.N)), nil
}

func (s *Server) appProfiles(_ context.Context, snap *Snapshot, p Params) (any, error) {
	apps := p.Apps
	if len(apps) == 0 {
		apps = []string{"namd", "amber", "gromacs"} // the Fig 3 MD codes
	}
	return newProfileDTOs(snap.Realm.AppProfiles(apps)), nil
}

func (s *Server) efficiency(_ context.Context, snap *Snapshot, p Params) (any, error) {
	users := snap.Realm.EfficiencyReport()
	if len(users) > p.Limit {
		users = users[:p.Limit]
	}
	return efficiencyDTO{
		Cluster:         snap.Realm.Cluster,
		FleetEfficiency: F(snap.Realm.FleetEfficiency()),
		WastedTotal:     F(snap.Realm.WastedNodeHoursTotal()),
		Users:           newUserEffDTOs(users),
		Worst:           newUserEffDTOs(snap.Realm.WorstUsers(p.N, p.MinNodeHours)),
	}, nil
}

func (s *Server) trends(_ context.Context, snap *Snapshot, _ Params) (any, error) {
	out := []trendDTO{}
	for _, t := range snap.Realm.TrendReport() {
		out = append(out, trendDTO{
			Metric: t.Metric, SlopePerDay: F(t.SlopePerDay),
			RelativePerMonth: F(t.RelativePerMonth), P: F(t.P),
			Significant: t.Significant, R2: F(t.R2), N: t.N,
		})
	}
	return out, nil
}

func (s *Server) workload(_ context.Context, snap *Snapshot, _ Params) (any, error) {
	return newWorkloadDTO(snap.Realm.Cluster, snap.Realm.Characterize()), nil
}

func (s *Server) quality(_ context.Context, snap *Snapshot, _ Params) (any, error) {
	if snap.Quality == nil {
		return map[string]any{"available": false}, nil
	}
	return map[string]any{
		"available":    true,
		"quality":      snap.Quality,
		"completeness": F(snap.Quality.Completeness()),
		"degraded":     snap.Quality.Degraded(),
	}, nil
}

func (s *Server) reportSuite(_ context.Context, snap *Snapshot, p Params) ([]byte, error) {
	if p.Suite == "" {
		return nil, badRequest("parameter suite is required")
	}
	valid := false
	for _, who := range report.Stakeholders() {
		if string(who) == p.Suite {
			valid = true
			break
		}
	}
	if !valid {
		return nil, badRequest("unknown suite %q", p.Suite)
	}
	var buf bytes.Buffer
	if err := report.SuiteWithQuality(&buf, report.Stakeholder(p.Suite), snap.Quality, snap.Realm); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

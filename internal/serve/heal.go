package serve

import (
	"sort"
	"time"

	"supremm/internal/store"
)

// Self-healing shard serving (DESIGN.md §15).
//
// With Config.SelfHeal off (the zero value) the daemon treats its data
// directory as all-or-nothing: any damaged shard fails the reload, the
// breaker opens, and the last-good generation keeps serving. That is
// the right default for a directory whose files are supposed to be one
// consistent batch — but a facility-scale deployment holds years of
// day shards, and one rotted day must not hold 364 healthy days
// hostage behind an open breaker. With SelfHeal on the policy inverts:
//
//   - a background scrubber re-reads shard bytes on a byte budget per
//     poll tick and catches bit rot that the size+mtime fingerprint
//     can never see;
//   - a shard that fails verification is quarantined — moved aside to
//     shard-<day>.supremm.quarantined with a record appended to
//     QUARANTINE.supremm — and repair from the monolithic backing
//     (jobs.supremm, else jobs.jsonl) is attempted immediately,
//     accepted only if the rebuilt bytes match the manifest's size and
//     hash exactly;
//   - a reload that still has unserved days SUCCEEDS degraded: the
//     healthy shards are published with honest coverage accounting
//     (rows served / rows promised, missing day ranges) on /healthz,
//     /readyz, /metrics, and an X-Supremm-Coverage header on every
//     response, instead of tripping the breaker wholesale.
//
// The breaker still protects against total-directory damage (a corrupt
// manifest, an unreadable directory) — degraded loading only absorbs
// per-shard faults.

// DayRange is an inclusive range of epoch days, as served in coverage
// bodies; From and To are UTC dates for operators, FromDay/ToDay the
// raw partition keys.
type DayRange struct {
	FromDay int64  `json:"from_day"`
	ToDay   int64  `json:"to_day"`
	From    string `json:"from"`
	To      string `json:"to"`
}

func dayDate(day int64) string {
	return time.Unix(day*store.SecondsPerDay, 0).UTC().Format("2006-01-02")
}

// Coverage is a snapshot's honesty accounting: how many of the rows
// the manifest promised are actually being served, and which days are
// missing. A monolithic or fully-healthy sharded load has Ratio 1 and
// no missing days.
type Coverage struct {
	RowsServed int     `json:"rows_served"`
	RowsTotal  int     `json:"rows_total"`
	Ratio      float64 `json:"ratio"`
	Degraded   bool    `json:"degraded"`
	// MissingShards counts manifest entries not being served;
	// MissingDays collapses them into contiguous day ranges.
	MissingShards int        `json:"missing_shards,omitempty"`
	MissingDays   []DayRange `json:"missing_days,omitempty"`
}

// fullCoverage is the Coverage of an undamaged load of rows rows.
func fullCoverage(rows int) Coverage {
	return Coverage{RowsServed: rows, RowsTotal: rows, Ratio: 1}
}

// coverageFrom computes Coverage for a degraded shard load: entries is
// the full manifest, faults the entries that could not be served.
func coverageFrom(entries []store.ShardInfo, faults []store.ShardFault) Coverage {
	cov := Coverage{}
	for _, e := range entries {
		cov.RowsTotal += e.Rows
	}
	cov.RowsServed = cov.RowsTotal
	days := make([]int64, 0, len(faults))
	for _, f := range faults {
		cov.RowsServed -= f.Info.Rows
		days = append(days, f.Info.ID)
	}
	if cov.RowsTotal > 0 {
		cov.Ratio = float64(cov.RowsServed) / float64(cov.RowsTotal)
	} else {
		cov.Ratio = 1
	}
	cov.Degraded = len(faults) > 0
	cov.MissingShards = len(faults)
	cov.MissingDays = collapseDays(days)
	return cov
}

// collapseDays turns a set of epoch days into sorted inclusive ranges.
func collapseDays(days []int64) []DayRange {
	if len(days) == 0 {
		return nil
	}
	sort.Slice(days, func(a, b int) bool { return days[a] < days[b] })
	var out []DayRange
	lo, hi := days[0], days[0]
	flush := func() {
		out = append(out, DayRange{FromDay: lo, ToDay: hi, From: dayDate(lo), To: dayDate(hi)})
	}
	for _, d := range days[1:] {
		if d == hi || d == hi+1 {
			hi = d
			continue
		}
		flush()
		lo, hi = d, d
	}
	flush()
	return out
}

// healLoad threads the self-heal policy and its outcome through one
// snapshot load attempt. loadStore fills entries and outcome when the
// load takes the shard path; nil healLoad means strict (legacy)
// loading.
type healLoad struct {
	now     int64 // caller's clock reading for quarantine records; 0 = clock-free
	entries []store.ShardInfo
	outcome healOutcome
}

// healOutcome is what one healing load did to the directory.
type healOutcome struct {
	// mutated: quarantine renames or repairs changed the directory —
	// the load's own fingerprint guard must adopt the post-heal
	// fingerprint instead of treating the change as a racing writer.
	mutated     bool
	quarantines int
	repairs     int
	// faults are the manifest entries still unserved after repair.
	faults []store.ShardFault
}

// healShardLoad loads a shard set with per-shard fault isolation,
// quarantining and repairing what it can:
//
//  1. degraded load — healthy shards in, faults out;
//  2. every fault not already quarantined is moved aside and recorded;
//  3. repair is attempted from the monolithic backing, accepted only
//     byte-identical to the manifest entry, and recorded;
//  4. if anything was repaired, a second degraded pass picks the
//     repaired shards up (healthy shards are adopted by pointer from
//     the first pass, so the extra pass costs only the repaired days).
//
// Heal bookkeeping failures (rename, log append) are real errors — the
// custody chain must not silently diverge from the directory — but a
// failed repair is not: the shard simply stays quarantined and the
// load stays degraded.
func healShardLoad(dir string, entries []store.ShardInfo, prev *store.ShardSet, open store.Opener, h *healLoad) (*store.ShardSet, error) {
	set, faults := store.LoadShardsDegraded(dir, entries, prev, open)
	if len(faults) == 0 {
		h.outcome.faults = nil
		return set, nil
	}
	var backing *store.Store
	var backingSrc string
	backingTried := false
	repaired := false
	for _, f := range faults {
		if !store.IsQuarantined(dir, f.Info.ID) {
			if err := store.QuarantineShard(dir, f.Info, f.Err.Error(), h.now); err != nil {
				return nil, err
			}
			h.outcome.quarantines++
			h.outcome.mutated = true
		}
		if !backingTried {
			backingTried = true
			// No usable backing is not an error: serving degraded is the
			// whole point when repair is impossible.
			backing, backingSrc, _ = store.LoadBackingStore(dir, open)
		}
		if backing == nil {
			continue
		}
		if err := store.RepairShard(dir, f.Info, backing); err != nil {
			continue // stays quarantined; still counted in faults
		}
		repaired = true
		h.outcome.repairs++
		h.outcome.mutated = true
		if err := store.AppendQuarantineEvent(dir, store.QuarantineEvent{
			Day: f.Info.ID, Action: store.ActionRepair, Reason: "rebuilt from " + backingSrc,
			At: h.now, Size: f.Info.Size, Hash: f.Info.Hash,
		}); err != nil {
			return nil, err
		}
	}
	if repaired {
		set, faults = store.LoadShardsDegraded(dir, entries, set, open)
	}
	h.outcome.faults = faults
	return set, nil
}

// scrubTick runs one budget-limited scrubber pass over the current
// snapshot's shards, quarantining any shard whose on-disk bytes no
// longer match the manifest. The quarantine rename changes the
// directory fingerprint, so the poll step that called us reloads —
// degraded or repaired — in the same tick. The scrubber cursor is
// rebuilt whenever the served generation changes, so it always walks
// the shard set actually being served (and never re-finds days already
// quarantined out of it).
func (s *Server) scrubTick() {
	snap := s.snap.Load()
	ss, ok := snap.Realm.Store.(*store.ShardSet)
	if !ok {
		return
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()
	if s.scrubber == nil || s.scrubGen != snap.Gen {
		entries := make([]store.ShardInfo, ss.NumShards())
		for i := range entries {
			entries[i] = ss.ShardAt(i).Info()
		}
		s.scrubber = store.NewScrubber(s.cfg.DataDir, entries, store.Opener(s.open))
		s.scrubGen = snap.Gen
	}
	before := s.scrubber.Verified()
	findings, sweeps := s.scrubber.Tick(s.scrubBudget)
	s.met.shardsScrubbed.Add(s.scrubber.Verified() - before)
	s.met.scrubSweeps.Add(int64(sweeps))
	for _, f := range findings {
		if store.IsQuarantined(s.cfg.DataDir, f.Info.ID) {
			continue
		}
		if err := store.QuarantineShard(s.cfg.DataDir, f.Info, f.Err.Error(), s.nowUnix()); err != nil {
			// The shard is damaged but could not be moved aside; the next
			// reload's degraded pass will fault it out anyway.
			continue
		}
		s.met.quarantines.Add(1)
	}
}

func (s *Server) nowUnix() int64 {
	if t := s.now(); !t.IsZero() {
		return t.Unix()
	}
	return 0
}

package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/sched"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// writeRawHost writes a hand-built raw file tree for one host: a job
// running from t=1000 to t=2800 with three samples, with known counter
// rates.
func writeRawHost(t *testing.T, dir, host string) {
	t.Helper()
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, host)
	snap.Time = 1000

	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Create(filepath.Join(hostDir, "0.raw"))
	if err != nil {
		t.Fatal(err)
	}
	w := taccstats.NewWriter(f2)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	// Sample at t=1000 (job begin), 1600, 2200, 2800 (job end).
	write := func(mark string) {
		if err := w.WriteRecord(snap, mark); err != nil {
			t.Fatal(err)
		}
	}
	write("begin 7")
	for i := 0; i < 3; i++ {
		snap.Time += 600
		// 16 cores at 90% user / 10% idle; 600 GFLOP per interval;
		// 600 MB scratch writes; 1.2 GB IB tx; constant 8 GB memory.
		for c := 0; c < 16; c++ {
			dev := snap.Type(procfs.TypeCPU).Devices()[c]
			snap.Add(procfs.TypeCPU, dev, "user", 54000)
			snap.Add(procfs.TypeCPU, dev, "idle", 6000)
			snap.Add(procfs.TypeAMDPMC, dev, "FLOPS", 600e9/16)
		}
		for s := 0; s < 4; s++ {
			dev := snap.Type(procfs.TypeMem).Devices()[s]
			snap.Set(procfs.TypeMem, dev, "MemUsed", 8*1024*1024/4)
		}
		snap.Add(procfs.TypeLlite, "scratch", "write_bytes", 600e6)
		snap.Add(procfs.TypeLlite, "work", "write_bytes", 60e6)
		snap.Add(procfs.TypeLlite, "scratch", "read_bytes", 120e6)
		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 1200e6)
		snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", 1100e6)
		snap.Add(procfs.TypeLnet, "-", "tx_bytes", 240e6)
		if i == 2 {
			write("end 7")
		} else {
			write("")
		}
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

func acctForHost(host string) []sched.AcctRecord {
	return []sched.AcctRecord{{
		Cluster: "ranger", Owner: "alice", JobName: "namd", JobID: 7,
		Account: "Physics", Submit: 900, Start: 1000, End: 2800,
		Status: workload.Completed, Slots: 16, NodeList: []string{host},
	}}
}

func TestIngestRawHandBuiltFile(t *testing.T) {
	dir := t.TempDir()
	writeRawHost(t, dir, "c000-000.ranger")
	res, err := IngestRaw(dir, acctForHost("c000-000.ranger"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 1 {
		t.Fatalf("records = %d", res.Store.Len())
	}
	rec := res.Store.Record(0)
	if rec.JobID != 7 || rec.User != "alice" || rec.App != "namd" {
		t.Errorf("identity: %+v", rec)
	}
	if rec.Samples != 3 {
		t.Errorf("samples = %d, want 3", rec.Samples)
	}
	// CPU split 90/10.
	if rec.CPUUserFrac < 0.89 || rec.CPUUserFrac > 0.91 {
		t.Errorf("user frac = %v", rec.CPUUserFrac)
	}
	if rec.CPUIdleFrac < 0.09 || rec.CPUIdleFrac > 0.11 {
		t.Errorf("idle frac = %v", rec.CPUIdleFrac)
	}
	// 600 GFLOP / 600 s = 1 GF/s.
	if rec.FlopsGF < 0.99 || rec.FlopsGF > 1.01 {
		t.Errorf("flops = %v GF", rec.FlopsGF)
	}
	// 600 MB / 600 s = 1 MB/s scratch, 0.1 MB/s work, 0.2 read.
	if rec.ScratchWriteMB < 0.99 || rec.ScratchWriteMB > 1.01 {
		t.Errorf("scratch = %v", rec.ScratchWriteMB)
	}
	if rec.WorkWriteMB < 0.099 || rec.WorkWriteMB > 0.101 {
		t.Errorf("work = %v", rec.WorkWriteMB)
	}
	if rec.ReadMB < 0.199 || rec.ReadMB > 0.201 {
		t.Errorf("read = %v", rec.ReadMB)
	}
	// IB: 2 MB/s tx.
	if rec.IBTxMB < 1.99 || rec.IBTxMB > 2.01 {
		t.Errorf("ib tx = %v", rec.IBTxMB)
	}
	// Memory: constant 8 GB, so mean == max == 8.
	if rec.MemUsedGB < 7.99 || rec.MemUsedGB > 8.01 {
		t.Errorf("mem = %v", rec.MemUsedGB)
	}
	if rec.MemUsedMaxGB != rec.MemUsedGB {
		t.Errorf("mem max %v != mean %v for constant gauge", rec.MemUsedMaxGB, rec.MemUsedGB)
	}
	if res.Unattributed != 0 {
		t.Errorf("unattributed = %d, want 0 (job covers all intervals)", res.Unattributed)
	}
	// System series: one bucket per sample time after the first.
	if len(res.Series) != 3 {
		t.Errorf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.ActiveNodes != 1 || s.BusyNodes != 1 {
			t.Errorf("series counts: %+v", s)
		}
		if s.TotalTFlops < 0.0009 || s.TotalTFlops > 0.0011 {
			t.Errorf("series tflops = %v", s.TotalTFlops)
		}
	}
}

func TestIngestRawMultiHostAggregation(t *testing.T) {
	dir := t.TempDir()
	writeRawHost(t, dir, "c000-000.ranger")
	writeRawHost(t, dir, "c000-001.ranger")
	acct := []sched.AcctRecord{{
		Cluster: "ranger", Owner: "alice", JobName: "namd", JobID: 7,
		Account: "Physics", Submit: 900, Start: 1000, End: 2800,
		Status: workload.Completed, Slots: 32,
		NodeList: []string{"c000-000.ranger", "c000-001.ranger"},
	}}
	res, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Store.Record(0)
	// Two hosts contribute: per-node rates unchanged, samples doubled.
	if rec.Samples != 6 {
		t.Errorf("samples = %d, want 6", rec.Samples)
	}
	if rec.FlopsGF < 0.99 || rec.FlopsGF > 1.01 {
		t.Errorf("per-node flops = %v, want 1 (rates are per node)", rec.FlopsGF)
	}
	// The system series sums hosts.
	for _, s := range res.Series {
		if s.ActiveNodes != 2 {
			t.Errorf("active = %d", s.ActiveNodes)
		}
		if s.TotalTFlops < 0.0019 || s.TotalTFlops > 0.0021 {
			t.Errorf("cluster tflops = %v, want 0.002", s.TotalTFlops)
		}
	}
}

func TestIngestRawSkipsNonRawFiles(t *testing.T) {
	dir := t.TempDir()
	writeRawHost(t, dir, "c000-000.ranger")
	// Stray files that must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "c000-000.ranger", "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := IngestRaw(dir, acctForHost("c000-000.ranger"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 1 {
		t.Errorf("records = %d", res.Store.Len())
	}
}

func TestIngestRawPMCResetHandling(t *testing.T) {
	// A second job begins mid-file: the monitor reprograms (zeroes) the
	// PMCs, so the counter moves backwards. eventDelta must treat the
	// new value as the delta rather than produce a wild wraparound.
	dir := t.TempDir()
	host := "c000-000.ranger"
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, host)
	snap.Time = 1000
	f, err := os.Create(filepath.Join(hostDir, "0.raw"))
	if err != nil {
		t.Fatal(err)
	}
	w := taccstats.NewWriter(f)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	rec := func(mark string) {
		if err := w.WriteRecord(snap, mark); err != nil {
			t.Fatal(err)
		}
	}
	// Job 1: accumulates big PMC counts.
	rec("begin 1")
	snap.Time = 1600
	snap.Add(procfs.TypeAMDPMC, "0", "FLOPS", 1e12)
	addCPU(snap, 60000)
	rec("end 1")
	// Reprogram for job 2: PMCs zeroed, then modest counts.
	for c := 0; c < 16; c++ {
		dev := snap.Type(procfs.TypeAMDPMC).Devices()[c]
		vals := snap.Type(procfs.TypeAMDPMC).Values(dev)
		for i := range vals {
			vals[i] = 0
		}
	}
	snap.Time = 1600
	rec("begin 2")
	snap.Time = 2200
	snap.Add(procfs.TypeAMDPMC, "0", "FLOPS", 6e11)
	addCPU(snap, 60000)
	rec("end 2")
	f.Close()

	acct := []sched.AcctRecord{
		{Cluster: "ranger", Owner: "a", JobName: "x", JobID: 1, Account: "P",
			Submit: 900, Start: 1000, End: 1600, Status: workload.Completed,
			Slots: 16, NodeList: []string{host}},
		{Cluster: "ranger", Owner: "b", JobName: "y", JobID: 2, Account: "P",
			Submit: 900, Start: 1601, End: 2200, Status: workload.Completed,
			Slots: 16, NodeList: []string{host}},
	}
	res, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	var job2 bool
	for i := 0; i < res.Store.Len(); i++ {
		r := res.Store.Record(i)
		if r.JobID == 2 && r.Samples > 0 {
			job2 = true
			// 6e11 flops over 600 s = 1 GF/s; a wraparound bug would
			// produce ~3e7 GF/s.
			if r.FlopsGF < 0.9 || r.FlopsGF > 1.1 {
				t.Errorf("job 2 flops = %v GF, reset handling broken", r.FlopsGF)
			}
		}
	}
	if !job2 {
		t.Fatal("job 2 not ingested")
	}
}

func TestIngestRawCounterWraparound(t *testing.T) {
	// A long-lived 64-bit event counter (here IB tx_bytes) wraps past
	// 2^64 mid-job. The raw file then carries a sample whose value is
	// numerically below its predecessor; eventDelta must fold it with
	// its reset semantics (the post-wrap value is the delta) instead of
	// producing an astronomical ~1.8e19-byte interval.
	dir := t.TempDir()
	host := "c000-000.ranger"
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, host)
	snap.Time = 1000
	// Park the counter 600 MB below the wrap point, as a node up for
	// months would be.
	snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", ^uint64(0)-600e6+1)
	f, err := os.Create(filepath.Join(hostDir, "0.raw"))
	if err != nil {
		t.Fatal(err)
	}
	w := taccstats.NewWriter(f)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	write := func(mark string) {
		if err := w.WriteRecord(snap, mark); err != nil {
			t.Fatal(err)
		}
	}
	write("begin 7")
	for i := 0; i < 3; i++ {
		snap.Time += 600
		addCPU(snap, 60000)
		// Interval 1 crosses 2^64: the stored value wraps to exactly
		// 600e6. Intervals 2 and 3 advance normally by 1200e6.
		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 1200e6)
		if i == 2 {
			write("end 7")
		} else {
			write("")
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := IngestRaw(dir, acctForHost(host))
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 1 {
		t.Fatalf("records = %d", res.Store.Len())
	}
	rec := res.Store.Record(0)
	if rec.Samples != 3 {
		t.Fatalf("samples = %d, want 3", rec.Samples)
	}
	// Reset semantics on the wrapped interval yield 600e6 bytes (the
	// post-wrap value); the other two intervals are plain 1200e6 deltas.
	// Time-weighted tx rate: (600e6+1200e6+1200e6)/1800 s = 5/3 MB/s.
	want := (600e6 + 1200e6 + 1200e6) / 1800.0 / 1e6
	if rec.IBTxMB < want-0.01 || rec.IBTxMB > want+0.01 {
		t.Errorf("ib tx = %v MB/s, want %.3f (wraparound mishandled)", rec.IBTxMB, want)
	}
	for _, s := range res.Series {
		if s.IBTxMBps < 0 || s.IBTxMBps > 2.01 {
			t.Errorf("series ib tx = %v MB/s, wraparound leaked into the system series", s.IBTxMBps)
		}
	}
}

func addCPU(snap *procfs.Snapshot, cs uint64) {
	for c := 0; c < 16; c++ {
		dev := snap.Type(procfs.TypeCPU).Devices()[c]
		snap.Add(procfs.TypeCPU, dev, "user", cs)
	}
}

func TestIngestRawParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	hosts := []string{"c000-000.ranger", "c000-001.ranger", "c000-002.ranger", "c000-003.ranger"}
	for _, h := range hosts {
		writeRawHost(t, dir, h)
	}
	acct := []sched.AcctRecord{{
		Cluster: "ranger", Owner: "alice", JobName: "namd", JobID: 7,
		Account: "Physics", Submit: 900, Start: 1000, End: 2800,
		Status: workload.Completed, Slots: 64, NodeList: hosts,
	}}
	seq, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		par, err := IngestRawParallel(dir, acct, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Store.Len() != seq.Store.Len() {
			t.Fatalf("workers=%d: %d vs %d records", workers, par.Store.Len(), seq.Store.Len())
		}
		for i := 0; i < seq.Store.Len(); i++ {
			if par.Store.Record(i) != seq.Store.Record(i) {
				t.Fatalf("workers=%d: record %d differs:\n seq %+v\n par %+v",
					workers, i, seq.Store.Record(i), par.Store.Record(i))
			}
		}
		if len(par.Series) != len(seq.Series) {
			t.Fatalf("workers=%d: series %d vs %d", workers, len(par.Series), len(seq.Series))
		}
		for i := range seq.Series {
			if par.Series[i] != seq.Series[i] {
				t.Fatalf("workers=%d: series %d differs", workers, i)
			}
		}
		if par.Unattributed != seq.Unattributed {
			t.Fatalf("workers=%d: unattributed %d vs %d", workers, par.Unattributed, seq.Unattributed)
		}
	}
}

func TestIngestRawParallelErrors(t *testing.T) {
	if _, err := IngestRawParallel("/nonexistent", nil, 4); err == nil {
		t.Error("missing dir should error")
	}
	dir := t.TempDir()
	host := filepath.Join(dir, "h1")
	if err := os.MkdirAll(host, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(host, "0.raw"), []byte("$tacc_stats 2.0\n100\ncpu 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := IngestRawParallel(dir, nil, 4); err == nil {
		t.Error("corrupt file should error through the pool")
	}
}

func TestIngestRawIrregularTimestamps(t *testing.T) {
	// Production monitors jitter around the 10-minute cadence and emit
	// extra records at job boundaries. Intervals of varying length must
	// aggregate to correct time-weighted means.
	dir := t.TempDir()
	host := "h.irregular"
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, host)
	snap.Time = 1000
	f, err := os.Create(filepath.Join(hostDir, "0.raw"))
	if err != nil {
		t.Fatal(err)
	}
	w := taccstats.NewWriter(f)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		t.Fatal(err)
	}
	write := func() {
		if err := w.WriteRecord(snap, ""); err != nil {
			t.Fatal(err)
		}
	}
	write()
	// Interval 1: 300 s fully busy; interval 2: 900 s fully idle.
	// Time-weighted idle = 900/1200 = 0.75.
	advance := func(dtSec int64, busy bool) {
		snap.Time += dtSec
		for c := 0; c < 16; c++ {
			dev := snap.Type(procfs.TypeCPU).Devices()[c]
			if busy {
				snap.Add(procfs.TypeCPU, dev, "user", uint64(dtSec*100))
			} else {
				snap.Add(procfs.TypeCPU, dev, "idle", uint64(dtSec*100))
			}
		}
		write()
	}
	advance(300, true)
	advance(900, false)
	f.Close()

	acct := []sched.AcctRecord{{
		Cluster: "ranger", Owner: "u", JobName: "x", JobID: 1, Account: "P",
		Submit: 900, Start: 1000, End: 2200, Status: workload.Completed,
		Slots: 16, NodeList: []string{host},
	}}
	res, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Store.Record(0)
	if rec.Samples != 2 {
		t.Fatalf("samples = %d", rec.Samples)
	}
	if rec.CPUIdleFrac < 0.74 || rec.CPUIdleFrac > 0.76 {
		t.Errorf("time-weighted idle = %v, want 0.75", rec.CPUIdleFrac)
	}
}

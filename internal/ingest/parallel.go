package ingest

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"supremm/internal/sched"
	"supremm/internal/store"
)

// hostResult is everything one host's raw files contribute: attributed
// intervals and the host's slice of every system bucket.
type hostResult struct {
	host         string
	intervals    []attributedInterval
	buckets      map[int64]*sysBucket
	unattributed int
	err          error
}

type attributedInterval struct {
	jobID int64
	iv    Interval
}

// IngestRawParallel is IngestRaw with a per-host worker pool: hosts are
// parsed and delta-reduced concurrently, then merged in sorted host
// order so the result is byte-identical to the sequential path (float
// summation order is fixed by the merge order, not by goroutine
// scheduling). workers <= 0 uses GOMAXPROCS.
func IngestRawParallel(dir string, acct []sched.AcctRecord, workers int) (*RawResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	windowsByHost, identities := indexAccounting(acct)

	hostDirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read raw dir: %w", err)
	}
	hosts := sortedDirs(hostDirs)

	jobs := make(chan string)
	results := make(map[string]*hostResult, len(hosts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for host := range jobs {
				res := processHost(dir, host, windowsByHost[host])
				mu.Lock()
				results[host] = res
				mu.Unlock()
			}
		}()
	}
	for _, hd := range hosts {
		jobs <- hd.Name()
	}
	close(jobs)
	wg.Wait()

	// Deterministic merge in sorted host order.
	acc := NewAccumulator()
	buckets := make(map[int64]*sysBucket)
	unattributed := 0
	for _, hd := range hosts {
		res := results[hd.Name()]
		if res.err != nil {
			return nil, res.err
		}
		unattributed += res.unattributed
		for _, ai := range res.intervals {
			if !acc.Started(ai.jobID) {
				acc.StartJob(identities[ai.jobID])
			}
			if err := acc.AddInterval(ai.jobID, ai.iv); err != nil {
				return nil, err
			}
		}
		for t, hb := range res.buckets {
			b := buckets[t]
			if b == nil {
				b = &sysBucket{}
				buckets[t] = b
			}
			b.merge(hb)
		}
	}

	st := store.New()
	ids := make([]int64, 0, len(identities))
	for id := range identities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !acc.Started(id) {
			acc.StartJob(identities[id])
		}
		rec, err := acc.FinishJob(id)
		if err != nil {
			return nil, err
		}
		st.Add(rec)
	}
	return &RawResult{Store: st, Series: flattenBuckets(buckets), Unattributed: unattributed}, nil
}

// processHost streams one host's files into attributed intervals and
// per-time buckets through the schema-compiled fast path. It never
// touches shared state.
func processHost(dir, host string, windows []jobWindow) *hostResult {
	res := &hostResult{host: host, buckets: make(map[int64]*sysBucket)}
	err := streamHost(dir, host, func(prevTime, curTime int64, iv Interval) {
		mid := prevTime + int64(iv.DtSec/2)
		jobID := findJob(windows, mid)
		if jobID != 0 {
			res.intervals = append(res.intervals, attributedInterval{jobID: jobID, iv: iv})
		} else {
			res.unattributed++
		}
		b := res.buckets[curTime]
		if b == nil {
			b = &sysBucket{}
			res.buckets[curTime] = b
		}
		b.fold(iv, jobID != 0)
	})
	if err != nil {
		res.err = err
	}
	return res
}

// merge adds another bucket's partial sums (same sample instant,
// different hosts).
func (b *sysBucket) merge(o *sysBucket) {
	b.hosts += o.hosts
	b.busy += o.busy
	b.flops += o.flops
	if o.dt > 0 {
		b.dt = o.dt
	}
	b.memKB += o.memKB
	b.user += o.user
	b.sys += o.sys
	b.idle += o.idle
	b.scratchB += o.scratchB
	b.workB += o.workB
	b.ibTxB += o.ibTxB
	b.lnetTxB += o.lnetTxB
}

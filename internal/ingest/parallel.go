package ingest

import (
	"fmt"
	"io/fs"
	"runtime"
	"sync"

	"supremm/internal/sched"
)

// hostResult is everything one host's raw files contribute: attributed
// intervals, the host's slice of every system bucket, and its data-
// quality accounting.
type hostResult struct {
	host         string
	intervals    []attributedInterval
	buckets      map[int64]*sysBucket
	unattributed int
	quality      DataQuality
	err          error
}

type attributedInterval struct {
	jobID int64
	iv    Interval
}

// IngestRawParallel is IngestRaw with a per-host worker pool: hosts are
// parsed and delta-reduced concurrently, then merged in sorted host
// order so the result is byte-identical to the sequential path (float
// summation order is fixed by the merge order, not by goroutine
// scheduling; quarantine decisions are per-host and deterministic).
// workers <= 0 uses GOMAXPROCS.
func IngestRawParallel(dir string, acct []sched.AcctRecord, workers int) (*RawResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return IngestRawOpts(dir, acct, Options{Policy: Strict, Workers: workers})
}

// ingestParallel is the Workers > 1 arm of IngestRawOpts.
func ingestParallel(dir string, acct []sched.AcctRecord, opts Options) (*RawResult, error) {
	workers := opts.Workers
	o := opts.resolve(dir)
	windowsByHost, identities := indexAccounting(acct)

	hostDirs, err := fs.ReadDir(o.fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("ingest: read raw dir: %w", err)
	}
	hosts := sortedDirs(hostDirs)

	jobs := make(chan string)
	results := make(map[string]*hostResult, len(hosts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for host := range jobs {
				res := processHost(o, host, windowsByHost[host])
				mu.Lock()
				results[host] = res
				mu.Unlock()
			}
		}()
	}
	for _, hd := range hosts {
		jobs <- hd.Name()
	}
	close(jobs)
	wg.Wait()

	// Deterministic merge in sorted host order.
	acc := NewAccumulator()
	buckets := make(map[int64]*sysBucket)
	unattributed := 0
	var quality DataQuality
	for _, hd := range hosts {
		res := results[hd.Name()]
		if res.err != nil {
			return nil, res.err
		}
		unattributed += res.unattributed
		quality.add(&res.quality)
		for _, ai := range res.intervals {
			if !acc.Started(ai.jobID) {
				acc.StartJob(identities[ai.jobID])
			}
			if err := acc.AddInterval(ai.jobID, ai.iv); err != nil {
				return nil, err
			}
		}
		for t, hb := range res.buckets {
			b := buckets[t]
			if b == nil {
				b = &sysBucket{}
				buckets[t] = b
			}
			b.merge(hb)
		}
	}
	return finalize(acc, identities, buckets, unattributed, &quality)
}

// processHost streams one host's files into attributed intervals and
// per-time buckets through the schema-compiled fast path. It never
// touches shared state; its quarantine decisions depend only on the
// host's own files, so they match the sequential path exactly.
func processHost(o rawOptions, host string, windows []jobWindow) *hostResult {
	res := &hostResult{host: host, buckets: make(map[int64]*sysBucket)}
	err := streamHost(o, host, &res.quality, func(prevTime, curTime int64, iv Interval) {
		mid := prevTime + int64(iv.DtSec/2)
		jobID := findJob(windows, mid)
		if jobID != 0 {
			res.intervals = append(res.intervals, attributedInterval{jobID: jobID, iv: iv})
		} else {
			res.unattributed++
		}
		b := res.buckets[curTime]
		if b == nil {
			b = &sysBucket{}
			res.buckets[curTime] = b
		}
		b.fold(iv, jobID != 0)
	})
	if err != nil {
		res.err = err
	}
	return res
}

// merge adds another bucket's partial sums (same sample instant,
// different hosts).
func (b *sysBucket) merge(o *sysBucket) {
	b.hosts += o.hosts
	b.busy += o.busy
	b.flops += o.flops
	if o.dt > 0 {
		b.dt = o.dt
	}
	b.memKB += o.memKB
	b.user += o.user
	b.sys += o.sys
	b.idle += o.idle
	b.scratchB += o.scratchB
	b.workB += o.workB
	b.ibTxB += o.ibTxB
	b.lnetTxB += o.lnetTxB
}

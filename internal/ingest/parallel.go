package ingest

import (
	"fmt"
	"io/fs"
	"runtime"
	"sort"
	"sync"

	"supremm/internal/sched"
)

// hostResult is everything one host's raw files contribute: attributed
// intervals, the host's slice of every system bucket, and its data-
// quality accounting.
type hostResult struct {
	host         string
	intervals    []attributedInterval
	buckets      []timedBucket
	unattributed int
	quality      DataQuality
	err          error
}

// timedBucket is one sampling instant's partial sums for a single host,
// kept in a time-sorted slice: sample times within a host's sorted day
// files are (almost always) non-decreasing, so appending with a
// last-element fast path replaces a per-interval map lookup and the
// per-bucket heap allocation the map forced.
type timedBucket struct {
	t int64
	b sysBucket
}

// bucketAt returns the bucket for sample time t, keeping the slice
// sorted. The common case is t == last (fold into it) or t > last
// (append); a clock step that rewinds time falls back to a binary
// search + insert, so the result is identical to the map it replaced.
func bucketAt(buckets []timedBucket, t int64) ([]timedBucket, *sysBucket) {
	if n := len(buckets); n > 0 {
		if last := &buckets[n-1]; last.t == t {
			return buckets, &last.b
		} else if t > last.t {
			buckets = append(buckets, timedBucket{t: t})
			return buckets, &buckets[len(buckets)-1].b
		}
		i := sort.Search(n, func(i int) bool { return buckets[i].t >= t })
		if i < n && buckets[i].t == t {
			return buckets, &buckets[i].b
		}
		buckets = append(buckets, timedBucket{})
		copy(buckets[i+1:], buckets[i:])
		buckets[i] = timedBucket{t: t}
		return buckets, &buckets[i].b
	}
	buckets = append(buckets, timedBucket{t: t})
	return buckets, &buckets[0].b
}

type attributedInterval struct {
	jobID int64
	iv    Interval
}

// IngestRawParallel is IngestRaw with a per-host worker pool: hosts are
// parsed and delta-reduced concurrently, then merged in sorted host
// order so the result is byte-identical to the sequential path (float
// summation order is fixed by the merge order, not by goroutine
// scheduling; quarantine decisions are per-host and deterministic).
// workers <= 0 uses GOMAXPROCS.
func IngestRawParallel(dir string, acct []sched.AcctRecord, workers int) (*RawResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return IngestRawOpts(dir, acct, Options{Policy: Strict, Workers: workers})
}

// ingestParallel is the Workers > 1 arm of IngestRawOpts.
func ingestParallel(dir string, acct []sched.AcctRecord, opts Options) (*RawResult, error) {
	workers := opts.Workers
	o := opts.resolve(dir)
	windowsByHost, identities := indexAccounting(acct)

	hostDirs, err := fs.ReadDir(o.fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("ingest: read raw dir: %w", err)
	}
	hosts := sortedDirs(hostDirs)

	// Workers pull host indices from a buffered channel and write their
	// result into a per-host slot: no results mutex, and the producer
	// never blocks handing out work.
	jobs := make(chan int, len(hosts))
	results := make([]*hostResult, len(hosts))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for hi := range jobs {
				host := hosts[hi].Name()
				results[hi] = processHost(o, host, windowsByHost[host])
			}
		}()
	}
	for hi := range hosts {
		jobs <- hi
	}
	close(jobs)
	wg.Wait()

	// Deterministic merge in sorted host order.
	acc := NewAccumulator()
	buckets := make(map[int64]*sysBucket)
	unattributed := 0
	var quality DataQuality
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		unattributed += res.unattributed
		quality.add(&res.quality)
		for _, ai := range res.intervals {
			if !acc.Started(ai.jobID) {
				acc.StartJob(identities[ai.jobID])
			}
			if err := acc.AddInterval(ai.jobID, ai.iv); err != nil {
				return nil, err
			}
		}
		for i := range res.buckets {
			t := res.buckets[i].t
			b := buckets[t]
			if b == nil {
				b = &sysBucket{}
				buckets[t] = b
			}
			b.merge(&res.buckets[i].b)
		}
	}
	return finalize(acc, identities, buckets, unattributed, &quality)
}

// processHost streams one host's files into attributed intervals and
// per-time buckets through the schema-compiled fast path. It never
// touches shared state; its quarantine decisions depend only on the
// host's own files, so they match the sequential path exactly.
func processHost(o rawOptions, host string, windows []jobWindow) *hostResult {
	res := &hostResult{host: host}
	err := streamHost(o, host, &res.quality, func(prevTime, curTime int64, iv Interval) {
		mid := prevTime + int64(iv.DtSec/2)
		jobID := findJob(windows, mid)
		if jobID != 0 {
			res.intervals = append(res.intervals, attributedInterval{jobID: jobID, iv: iv})
		} else {
			res.unattributed++
		}
		var b *sysBucket
		res.buckets, b = bucketAt(res.buckets, curTime)
		b.fold(iv, jobID != 0)
	})
	if err != nil {
		res.err = err
	}
	return res
}

// merge adds another bucket's partial sums (same sample instant,
// different hosts).
func (b *sysBucket) merge(o *sysBucket) {
	b.hosts += o.hosts
	b.busy += o.busy
	b.flops += o.flops
	if o.dt > 0 {
		b.dt = o.dt
	}
	b.memKB += o.memKB
	b.user += o.user
	b.sys += o.sys
	b.idle += o.idle
	b.scratchB += o.scratchB
	b.workB += o.workB
	b.ibTxB += o.ibTxB
	b.lnetTxB += o.lnetTxB
}

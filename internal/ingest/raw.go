package ingest

import (
	"os"
	"sort"
	"strconv"
	"strings"

	"supremm/internal/sched"
	"supremm/internal/store"
)

// jobWindow is one job's occupancy of one host.
type jobWindow struct {
	start, end int64
	jobID      int64
}

// RawResult is what the raw-path ETL produces.
type RawResult struct {
	Store  *store.Store
	Series []store.SystemSample
	// Unattributed counts intervals that matched no accounting window
	// (idle nodes or clock skew); reported, not silently dropped.
	Unattributed int
	// Quality accounts for everything degraded-mode ingest dropped,
	// repaired, or retried; zero (plus FilesScanned) on clean archives.
	Quality DataQuality
}

// IngestRaw parses every raw TACC_Stats file under dir (layout:
// dir/<hostname>/<day>.raw) and joins the counter deltas with the
// accounting records to produce per-job summaries and the cluster-wide
// series. This is the paper's Netezza/MySQL ingest stage.
//
// Files stream through the schema-compiled fast path: records are
// reduced to Intervals as they are parsed, so peak memory per host is
// two flat records rather than a materialized file. IngestRaw keeps the
// legacy strict policy (abort on the first fault); IngestRawOpts exposes
// the lenient degraded-mode path.
func IngestRaw(dir string, acct []sched.AcctRecord) (*RawResult, error) {
	return IngestRawOpts(dir, acct, Options{Policy: Strict})
}

// finalize turns the accumulated state into the RawResult: every
// accounting job is finished (zero-metric records for jobs that
// contributed no intervals), in sorted job order.
func finalize(acc *Accumulator, identities map[int64]store.JobRecord,
	buckets map[int64]*sysBucket, unattributed int, quality *DataQuality) (*RawResult, error) {

	st := store.New()
	ids := make([]int64, 0, len(identities))
	for id := range identities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !acc.Started(id) {
			// Jobs shorter than one sampling interval contribute no
			// intervals; record identity with zero metrics, as the
			// deployed pipeline does (they are filtered by Samples).
			acc.StartJob(identities[id])
		}
		rec, err := acc.FinishJob(id)
		if err != nil {
			return nil, err
		}
		if rec.Samples == 0 {
			// Too short to sample, or starved because its host files
			// were quarantined; either way the completeness view must
			// know, so Unattributed and Quality never silently disagree.
			quality.JobsNoData++
		}
		st.Add(rec)
	}
	return &RawResult{
		Store: st, Series: flattenBuckets(buckets),
		Unattributed: unattributed, Quality: *quality,
	}, nil
}

// indexAccounting builds per-host occupancy windows and the identity
// records, keyed by job ID.
func indexAccounting(acct []sched.AcctRecord) (map[string][]jobWindow, map[int64]store.JobRecord) {
	windows := make(map[string][]jobWindow)
	identities := make(map[int64]store.JobRecord, len(acct))
	for _, r := range acct {
		identities[r.JobID] = store.JobRecord{
			JobID:   r.JobID,
			Cluster: r.Cluster,
			User:    r.Owner,
			App:     r.JobName,
			Science: r.Account,
			Nodes:   r.NodeCount(),
			Submit:  r.Submit,
			Start:   r.Start,
			End:     r.End,
			Status:  r.Status.String(),
		}
		for _, host := range r.NodeList {
			windows[host] = append(windows[host], jobWindow{start: r.Start, end: r.End, jobID: r.JobID})
		}
	}
	for host := range windows {
		ws := windows[host]
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
	}
	return windows, identities
}

// findJob returns the job occupying the host at time t, or 0.
func findJob(windows []jobWindow, t int64) int64 {
	// Binary search on start, then check containment; windows on one
	// host never overlap (whole-node scheduling).
	i := sort.Search(len(windows), func(i int) bool { return windows[i].start > t })
	if i == 0 {
		return 0
	}
	w := windows[i-1]
	if t >= w.start && t <= w.end {
		return w.jobID
	}
	return 0
}

// eventDelta computes a counter delta with reset semantics: counters
// that moved backwards were reprogrammed (zeroed) at a job boundary, so
// the new value is the delta since the reset. This is the one blessed
// place raw counters are differenced; everything else must call it.
//
//supremmlint:wrapsafe — backwards movement is a reset, handled above.
func eventDelta(prev, cur uint64) float64 {
	if cur >= prev {
		return float64(cur - prev)
	}
	return float64(cur)
}

// foldInterval attributes one interval to a job and folds it into the
// system buckets. Returns 1 if the interval matched no job window (still
// folded into the system series, since idle nodes are part of the
// cluster view).
func foldInterval(acc *Accumulator, buckets map[int64]*sysBucket,
	windows []jobWindow, identities map[int64]store.JobRecord,
	prevTime, curTime int64, iv Interval) int {

	// Attribute to the occupying job at the interval midpoint.
	mid := prevTime + int64(iv.DtSec/2)
	jobID := findJob(windows, mid)
	unattributed := 0
	if jobID != 0 {
		if !acc.Started(jobID) {
			acc.StartJob(identities[jobID])
		}
		// Errors can only be "unknown job", excluded by the check above.
		_ = acc.AddInterval(jobID, iv)
	} else {
		unattributed = 1
	}

	// System bucket keyed by sample time.
	b := buckets[curTime]
	if b == nil {
		b = &sysBucket{}
		buckets[curTime] = b
	}
	b.fold(iv, jobID != 0)
	return unattributed
}

// sysBucket accumulates one sampling instant across hosts.
type sysBucket struct {
	hosts, busy            int
	flops                  float64 // total FP ops over the interval
	dt                     float64
	memKB                  float64
	user, sys, idle        float64
	scratchB, workB, ibTxB float64
	lnetTxB                float64
}

func (b *sysBucket) fold(iv Interval, busy bool) {
	b.hosts++
	if busy {
		b.busy++
	}
	b.flops += iv.Flops
	if iv.DtSec > 0 {
		// Keep the last positive dt, mirroring merge: a zero-dt interval
		// must not wipe the rate denominator for the whole bucket.
		b.dt = iv.DtSec
	}
	b.memKB += iv.MemUsedKB
	b.user += iv.UserFrac
	b.sys += iv.SysFrac
	b.idle += iv.IdleFrac
	b.scratchB += iv.ScratchB
	b.workB += iv.WorkB
	b.ibTxB += iv.IBTxB
	b.lnetTxB += iv.LnetTxB
}

func flattenBuckets(buckets map[int64]*sysBucket) []store.SystemSample {
	times := make([]int64, 0, len(buckets))
	for t := range buckets {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([]store.SystemSample, 0, len(times))
	for _, t := range times {
		b := buckets[t]
		s := store.SystemSample{
			Time:        t,
			ActiveNodes: b.hosts,
			BusyNodes:   b.busy,
		}
		if b.dt > 0 {
			s.TotalTFlops = b.flops / b.dt / 1e12
			s.ScratchMBps = b.scratchB / b.dt * bytesToMB
			s.WorkMBps = b.workB / b.dt * bytesToMB
			s.IBTxMBps = b.ibTxB / b.dt * bytesToMB
			s.LnetTxMBps = b.lnetTxB / b.dt * bytesToMB
		}
		if b.hosts > 0 {
			s.MemPerNode = b.memKB / float64(b.hosts) * kbToGB
			s.CPUUserFrac = b.user / float64(b.hosts)
			s.CPUSysFrac = b.sys / float64(b.hosts)
			s.CPUIdleFrac = b.idle / float64(b.hosts)
		}
		out = append(out, s)
	}
	return out
}

func sortedDirs(entries []os.DirEntry) []os.DirEntry {
	dirs := make([]os.DirEntry, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e)
		}
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].Name() < dirs[j].Name() })
	return dirs
}

// sortedRawFiles orders day files numerically ("2.raw" before "10.raw").
func sortedRawFiles(entries []os.DirEntry) []os.DirEntry {
	files := make([]os.DirEntry, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".raw") {
			files = append(files, e)
		}
	}
	dayOf := func(name string) int {
		n, err := strconv.Atoi(strings.TrimSuffix(name, ".raw"))
		if err != nil {
			return 1 << 30
		}
		return n
	}
	sort.Slice(files, func(i, j int) bool { return dayOf(files[i].Name()) < dayOf(files[j].Name()) })
	return files
}

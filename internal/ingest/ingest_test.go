package ingest

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/sched"
	"supremm/internal/store"
	"supremm/internal/workload"
)

func identity(id int64) store.JobRecord {
	return store.JobRecord{
		JobID: id, Cluster: "ranger", User: "u", App: "namd",
		Science: "Physics", Nodes: 2, Submit: 0, Start: 100, End: 0,
		Status: "COMPLETED",
	}
}

func TestAccumulatorLifecycle(t *testing.T) {
	a := NewAccumulator()
	a.StartJob(identity(1))
	if !a.Started(1) || a.Started(2) {
		t.Fatal("Started bookkeeping wrong")
	}
	if a.Pending() != 1 {
		t.Fatalf("pending = %d", a.Pending())
	}
	u := workload.NodeUsage{
		IdleFrac: 0.1, UserFrac: 0.85, SysFrac: 0.05,
		MemUsedKB:     4 << 20, // 4 GB
		Flops:         6e12,    // over the interval
		ScratchWriteB: 600e6, WorkWriteB: 60e6, ReadB: 120e6,
		IBTxB: 1.2e9, IBRxB: 1.1e9, LnetTxB: 2.4e8,
	}
	// Two nodes, 600-second interval.
	if err := a.AddUsage(1, 2, 600, u); err != nil {
		t.Fatal(err)
	}
	rec, err := a.FinishJob(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pending() != 0 {
		t.Error("job not removed after finish")
	}
	if rec.Samples != 1 {
		t.Errorf("samples = %d", rec.Samples)
	}
	if math.Abs(rec.CPUIdleFrac-0.1) > 1e-12 {
		t.Errorf("idle = %v", rec.CPUIdleFrac)
	}
	if math.Abs(rec.MemUsedGB-4) > 1e-9 {
		t.Errorf("mem = %v GB", rec.MemUsedGB)
	}
	if math.Abs(rec.MemUsedMaxGB-4) > 1e-9 {
		t.Errorf("mem max = %v GB", rec.MemUsedMaxGB)
	}
	// Flops: 6e12 per node over 600 s = 10 GF/s per node.
	if math.Abs(rec.FlopsGF-10) > 1e-9 {
		t.Errorf("flops = %v GF", rec.FlopsGF)
	}
	// Scratch: 600e6 B per node / 600 s = 1 MB/s.
	if math.Abs(rec.ScratchWriteMB-1) > 1e-9 {
		t.Errorf("scratch = %v MB/s", rec.ScratchWriteMB)
	}
	if math.Abs(rec.IBTxMB-2) > 1e-9 {
		t.Errorf("ib tx = %v MB/s", rec.IBTxMB)
	}
}

func TestAccumulatorUnknownJobErrors(t *testing.T) {
	a := NewAccumulator()
	if err := a.AddUsage(7, 1, 600, workload.NodeUsage{}); err == nil {
		t.Error("AddUsage on unknown job should error")
	}
	if err := a.AddInterval(7, Interval{}); err == nil {
		t.Error("AddInterval on unknown job should error")
	}
	if _, err := a.FinishJob(7); err == nil {
		t.Error("FinishJob on unknown job should error")
	}
}

func TestAccumulatorZeroSampleJob(t *testing.T) {
	a := NewAccumulator()
	a.StartJob(identity(3))
	rec, err := a.FinishJob(3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Samples != 0 || rec.CPUIdleFrac != 0 || rec.FlopsGF != 0 {
		t.Errorf("zero-sample job should have zero metrics: %+v", rec)
	}
}

func TestAddIntervalMatchesAddUsagePerNode(t *testing.T) {
	// One node's interval via the raw path must equal the same usage via
	// the direct path with nodes=1.
	direct := NewAccumulator()
	raw := NewAccumulator()
	direct.StartJob(identity(1))
	raw.StartJob(identity(1))
	u := workload.NodeUsage{
		IdleFrac: 0.2, UserFrac: 0.75, SysFrac: 0.05,
		MemUsedKB: 8 << 20, Flops: 1e12,
		ScratchWriteB: 3e8, WorkWriteB: 2e7, ReadB: 5e7,
		IBTxB: 9e8, IBRxB: 8e8, LnetTxB: 1e8,
	}
	if err := direct.AddUsage(1, 1, 600, u); err != nil {
		t.Fatal(err)
	}
	iv := Interval{
		DtSec: 600, IdleFrac: u.IdleFrac, UserFrac: u.UserFrac, SysFrac: u.SysFrac,
		MemUsedKB: float64(u.MemUsedKB), Flops: u.Flops,
		ScratchB: u.ScratchWriteB, WorkB: u.WorkWriteB, ReadB: u.ReadB,
		IBTxB: u.IBTxB, IBRxB: u.IBRxB, LnetTxB: u.LnetTxB,
	}
	if err := raw.AddInterval(1, iv); err != nil {
		t.Fatal(err)
	}
	dr, _ := direct.FinishJob(1)
	rr, _ := raw.FinishJob(1)
	if dr != rr {
		t.Errorf("paths disagree:\n direct %+v\n raw    %+v", dr, rr)
	}
}

func TestEventDelta(t *testing.T) {
	if got := eventDelta(100, 150); got != 50 {
		t.Errorf("normal delta = %v", got)
	}
	// Counter reset (PMC reprogram at job begin): new value IS the delta.
	if got := eventDelta(1000, 30); got != 30 {
		t.Errorf("reset delta = %v", got)
	}
	if got := eventDelta(5, 5); got != 0 {
		t.Errorf("no-change delta = %v", got)
	}
}

func TestFindJob(t *testing.T) {
	windows := []jobWindow{
		{start: 100, end: 200, jobID: 1},
		{start: 300, end: 400, jobID: 2},
	}
	cases := []struct {
		t    int64
		want int64
	}{
		{50, 0}, {100, 1}, {150, 1}, {200, 1}, {250, 0}, {350, 2}, {450, 0},
	}
	for _, c := range cases {
		if got := findJob(windows, c.t); got != c.want {
			t.Errorf("findJob(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if findJob(nil, 100) != 0 {
		t.Error("empty windows should find nothing")
	}
}

func TestIngestRawErrors(t *testing.T) {
	if _, err := IngestRaw("/nonexistent/path", nil); err == nil {
		t.Error("missing dir should error")
	}
	// Corrupt raw file.
	dir := t.TempDir()
	host := filepath.Join(dir, "c000-000.ranger")
	if err := os.MkdirAll(host, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(host, "0.raw"), []byte("$tacc_stats 2.0\n100\ncpu 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := IngestRaw(dir, nil); err == nil {
		t.Error("corrupt raw file should error")
	}
}

func TestIngestRawEmptyDir(t *testing.T) {
	res, err := IngestRaw(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 0 || len(res.Series) != 0 {
		t.Errorf("empty dir should produce empty result: %+v", res)
	}
}

func TestIngestRawJobWithNoSamples(t *testing.T) {
	// A job in accounting but absent from raw data (shorter than the
	// sampling interval) still gets an identity record with Samples=0.
	dir := t.TempDir()
	acct := []sched.AcctRecord{{
		Cluster: "ranger", Owner: "u", JobName: "namd", JobID: 42,
		Account: "Physics", Submit: 0, Start: 10, End: 20,
		Status: workload.Completed, Slots: 16, NodeList: []string{"hostX"},
	}}
	res, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() != 1 {
		t.Fatalf("store len = %d", res.Store.Len())
	}
	rec := res.Store.Record(0)
	if rec.JobID != 42 || rec.Samples != 0 {
		t.Errorf("record = %+v", rec)
	}
}

func TestIdentityFromJob(t *testing.T) {
	apps := workload.DefaultApps()
	j := &workload.Job{
		ID:   9,
		User: &workload.User{Name: "alice", Science: workload.Chemistry},
		App:  workload.AppByName(apps, "vasp"), Nodes: 8,
	}
	rec := IdentityFromJob(j, "ranger", 10, 20, 30, workload.Timeout)
	if rec.JobID != 9 || rec.User != "alice" || rec.App != "vasp" ||
		rec.Science != string(workload.Chemistry) || rec.Nodes != 8 ||
		rec.Submit != 10 || rec.Start != 20 || rec.End != 30 || rec.Status != "TIMEOUT" {
		t.Errorf("identity = %+v", rec)
	}
}

// Package ingest is the ETL stage of the pipeline (paper Fig 1): it
// turns raw per-node monitor output plus scheduler accounting into the
// per-job summary records the analytics layer queries, joining the two
// sources by job ID. Two paths produce identical records:
//
//   - the raw path parses TACC_Stats text files, computes counter deltas
//     per interval and attributes them to jobs via the accounting windows
//     (IngestRaw);
//   - the direct path accumulates the simulator's per-interval usage
//     in memory, skipping serialization for large sweeps (Accumulator).
//
// Equivalence of the two paths is asserted by the integration tests.
package ingest

import (
	"fmt"

	"supremm/internal/store"
	"supremm/internal/workload"
)

// bytesToMB converts to the MB used throughout the metric vocabulary.
const bytesToMB = 1e-6

// kbToGB converts the memory gauges.
const kbToGB = 1.0 / (1024 * 1024)

// jobAcc accumulates one job's node-second-weighted sums.
type jobAcc struct {
	rec store.JobRecord

	nodeSecs float64 // sum over (nodes * interval seconds)

	idle, user, sys float64 // fraction-weighted node-seconds
	memKB           float64 // gauge-weighted node-seconds
	maxMemKB        float64
	flops           float64 // total FP ops
	scratchB, workB float64 // total bytes
	readB           float64
	ibTxB, ibRxB    float64
	lnetTxB         float64
	samples         int
}

// Accumulator builds JobRecords incrementally.
type Accumulator struct {
	jobs map[int64]*jobAcc
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{jobs: make(map[int64]*jobAcc)}
}

// StartJob registers a job's identity. Usage added for unregistered jobs
// is an error, because it means the accounting join failed.
func (a *Accumulator) StartJob(rec store.JobRecord) {
	a.jobs[rec.JobID] = &jobAcc{rec: rec}
}

// Started reports whether the job is registered.
func (a *Accumulator) Started(jobID int64) bool {
	_, ok := a.jobs[jobID]
	return ok
}

// AddUsage accrues one interval of per-node usage replicated across
// `nodes` nodes (the direct path; SPMD jobs behave coherently across
// their allocation).
func (a *Accumulator) AddUsage(jobID int64, nodes int, dtSec float64, u workload.NodeUsage) error {
	acc, ok := a.jobs[jobID]
	if !ok {
		return fmt.Errorf("ingest: usage for unknown job %d", jobID)
	}
	w := float64(nodes) * dtSec
	acc.nodeSecs += w
	acc.idle += u.IdleFrac * w
	acc.user += u.UserFrac * w
	acc.sys += u.SysFrac * w
	acc.memKB += float64(u.MemUsedKB) * w
	if float64(u.MemUsedKB) > acc.maxMemKB {
		acc.maxMemKB = float64(u.MemUsedKB)
	}
	acc.flops += u.Flops * float64(nodes)
	acc.scratchB += u.ScratchWriteB * float64(nodes)
	acc.workB += u.WorkWriteB * float64(nodes)
	acc.readB += u.ReadB * float64(nodes)
	acc.ibTxB += u.IBTxB * float64(nodes)
	acc.ibRxB += u.IBRxB * float64(nodes)
	acc.lnetTxB += u.LnetTxB * float64(nodes)
	acc.samples++
	return nil
}

// Interval is one raw-path measurement on a single host: counter deltas
// over dtSec seconds, already resolved to metric units.
type Interval struct {
	DtSec float64
	// Fractions of core-time over the interval.
	IdleFrac, UserFrac, SysFrac float64
	// MemUsedKB is the end-of-interval gauge summed over sockets.
	MemUsedKB float64
	// Deltas over the interval.
	Flops           float64
	ScratchB, WorkB float64
	ReadB           float64
	IBTxB, IBRxB    float64
	LnetTxB         float64
}

// AddInterval accrues one raw-path interval from one host.
func (a *Accumulator) AddInterval(jobID int64, iv Interval) error {
	acc, ok := a.jobs[jobID]
	if !ok {
		return fmt.Errorf("ingest: interval for unknown job %d", jobID)
	}
	w := iv.DtSec
	acc.nodeSecs += w
	acc.idle += iv.IdleFrac * w
	acc.user += iv.UserFrac * w
	acc.sys += iv.SysFrac * w
	acc.memKB += iv.MemUsedKB * w
	if iv.MemUsedKB > acc.maxMemKB {
		acc.maxMemKB = iv.MemUsedKB
	}
	acc.flops += iv.Flops
	acc.scratchB += iv.ScratchB
	acc.workB += iv.WorkB
	acc.readB += iv.ReadB
	acc.ibTxB += iv.IBTxB
	acc.ibRxB += iv.IBRxB
	acc.lnetTxB += iv.LnetTxB
	acc.samples++
	return nil
}

// FinishJob finalizes a job into its summary record and removes it from
// the accumulator. Jobs with no accumulated node-seconds produce a
// record with zero metrics (they ran shorter than one sampling interval;
// the §4.1 analyses filter them via Samples).
func (a *Accumulator) FinishJob(jobID int64) (store.JobRecord, error) {
	acc, ok := a.jobs[jobID]
	if !ok {
		return store.JobRecord{}, fmt.Errorf("ingest: finish for unknown job %d", jobID)
	}
	delete(a.jobs, jobID)
	rec := acc.rec
	rec.Samples = acc.samples
	if acc.nodeSecs > 0 {
		ns := acc.nodeSecs
		rec.CPUIdleFrac = acc.idle / ns
		rec.CPUUserFrac = acc.user / ns
		rec.CPUSysFrac = acc.sys / ns
		rec.MemUsedGB = acc.memKB / ns * kbToGB
		rec.MemUsedMaxGB = acc.maxMemKB * kbToGB
		rec.FlopsGF = acc.flops / ns / 1e9
		rec.ScratchWriteMB = acc.scratchB / ns * bytesToMB
		rec.WorkWriteMB = acc.workB / ns * bytesToMB
		rec.ReadMB = acc.readB / ns * bytesToMB
		rec.IBTxMB = acc.ibTxB / ns * bytesToMB
		rec.IBRxMB = acc.ibRxB / ns * bytesToMB
		rec.LnetTxMB = acc.lnetTxB / ns * bytesToMB
	}
	return rec, nil
}

// Pending returns how many jobs are started but not finished.
func (a *Accumulator) Pending() int { return len(a.jobs) }

// IdentityFromJob builds the identity half of a JobRecord from workload
// and scheduling facts. start/end/submit are unix seconds.
func IdentityFromJob(j *workload.Job, clusterName string, submit, start, end int64, status workload.ExitStatus) store.JobRecord {
	return store.JobRecord{
		JobID:   j.ID,
		Cluster: clusterName,
		User:    j.User.Name,
		App:     j.App.Name,
		Science: string(j.User.Science),
		Nodes:   j.Nodes,
		Submit:  submit,
		Start:   start,
		End:     end,
		Status:  status.String(),
	}
}

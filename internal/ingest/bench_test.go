package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/sched"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// benchTree writes a raw tree of hosts×samples at 600 s cadence with a
// single job spanning the whole window, mimicking one Ranger day file
// per host. Returns the accounting records that attribute every
// interval.
func benchTree(tb testing.TB, dir string, hosts, samples int) []sched.AcctRecord {
	tb.Helper()
	start := int64(1000)
	end := start + int64(samples)*600
	names := make([]string, hosts)
	for h := 0; h < hosts; h++ {
		names[h] = benchHostName(h)
		writeBenchHost(tb, dir, names[h], start, samples)
	}
	return []sched.AcctRecord{{
		Cluster: "ranger", Owner: "alice", JobName: "namd", JobID: 7,
		Account: "Physics", Submit: start - 100, Start: start, End: end,
		Status: workload.Completed, Slots: 16 * hosts, NodeList: names,
	}}
}

func benchHostName(h int) string {
	return string([]byte{'c', byte('0' + h/10), byte('0' + h%10), '.', 'r'})
}

func writeBenchHost(tb testing.TB, dir, host string, start int64, samples int) {
	tb.Helper()
	cc := cluster.RangerConfig()
	snap := procfs.NewNodeSnapshot(cc, host)
	snap.Time = start
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		tb.Fatal(err)
	}
	f, err := os.Create(filepath.Join(hostDir, "0.raw"))
	if err != nil {
		tb.Fatal(err)
	}
	if err := writeBenchRecords(f, snap, samples); err != nil {
		tb.Fatal(err)
	}
	if err := f.Close(); err != nil {
		tb.Fatal(err)
	}
}

func writeBenchRecords(f *os.File, snap *procfs.Snapshot, samples int) error {
	w := taccstats.NewWriter(f)
	if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
		return err
	}
	if err := w.WriteRecord(snap, "begin 7"); err != nil {
		return err
	}
	for i := 0; i < samples; i++ {
		snap.Time += 600
		for c := 0; c < 16; c++ {
			dev := snap.Type(procfs.TypeCPU).Devices()[c]
			snap.Add(procfs.TypeCPU, dev, "user", 54000)
			snap.Add(procfs.TypeCPU, dev, "idle", 6000)
			snap.Add(procfs.TypeAMDPMC, dev, "FLOPS", 600e9/16)
		}
		for s := 0; s < 4; s++ {
			dev := snap.Type(procfs.TypeMem).Devices()[s]
			snap.Set(procfs.TypeMem, dev, "MemUsed", 8*1024*1024/4)
		}
		snap.Add(procfs.TypeLlite, "scratch", "write_bytes", 600e6)
		snap.Add(procfs.TypeLlite, "work", "write_bytes", 60e6)
		snap.Add(procfs.TypeLlite, "scratch", "read_bytes", 120e6)
		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", 1200e6)
		snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", 1100e6)
		snap.Add(procfs.TypeLnet, "-", "tx_bytes", 240e6)
		mark := ""
		if i == samples-1 {
			mark = "end 7"
		}
		if err := w.WriteRecord(snap, mark); err != nil {
			return err
		}
	}
	return nil
}

// BenchmarkIngestRaw measures the sequential raw ETL end to end:
// 4 hosts, one day file each, 144 samples (10-minute cadence).
func BenchmarkIngestRaw(b *testing.B) {
	dir := b.TempDir()
	acct := benchTree(b, dir, 4, 144)
	recs := int64(4 * 144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := IngestRaw(dir, acct)
		if err != nil {
			b.Fatal(err)
		}
		if res.Store.Len() != 1 {
			b.Fatal("bad result")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*recs), "ns/record")
}

// BenchmarkIngestRawParallel is the same tree through the worker pool.
// On a single-CPU box this cannot beat the sequential path — the pool
// only adds coordination — so EXPERIMENTS.md records the measured
// break-even rather than this benchmark asserting one.
func BenchmarkIngestRawParallel(b *testing.B) {
	dir := b.TempDir()
	acct := benchTree(b, dir, 4, 144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := IngestRawParallel(dir, acct, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Store.Len() != 1 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkIngestRawLarge compares the two paths on a 24-host, 2-day
// tree (13824 records) — enough per-host work that worker-pool overhead
// amortizes on multi-core machines. The serial/parallel pair under one
// tree makes the crossover directly readable from bench-ingest output.
func BenchmarkIngestRawLarge(b *testing.B) {
	dir := b.TempDir()
	const hosts, samples = 24, 288
	acct := benchTree(b, dir, hosts, samples)
	recs := int64(hosts * samples)

	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := IngestRaw(dir, acct)
			if err != nil {
				b.Fatal(err)
			}
			if res.Store.Len() != 1 {
				b.Fatal("bad result")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*recs), "ns/record")
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := IngestRawParallel(dir, acct, 8)
			if err != nil {
				b.Fatal(err)
			}
			if res.Store.Len() != 1 {
				b.Fatal("bad result")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*recs), "ns/record")
	})
}

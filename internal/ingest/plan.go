package ingest

import (
	"supremm/internal/procfs"
	"supremm/internal/taccstats"
)

// metricPlan is the schema-compiled form of computeInterval: every
// (type, key) pair the interval reduction reads is resolved once per
// file to direct columns in the parser's flat value arrays, so reducing
// a record pair is pure slice indexing with zero map lookups. prev and
// cur columns are resolved separately because an interval can span a
// file boundary where the layouts differ.
type metricPlan struct {
	prevLayout, curLayout *taccstats.Layout
	prevVer, curVer       int
	user, nice, system    []colPair
	irq, softirq          []colPair
	idle, iowait          []colPair
	flopsAMD, flopsIntel  []colPair
	ibTx, ibRx, lnetTx    []colPair
	memUsed               []int
	llite                 []llitePlan
}

// colPair addresses one event counter in the cur and prev flat arrays;
// -1 means the counter is absent there (reads zero).
type colPair struct {
	cur, prev int
}

// llitePlan addresses one Lustre mount's traffic counters; the mount
// name routes the write delta to the scratch or work total.
type llitePlan struct {
	dev         string
	write, read colPair
}

// valid reports whether the plan still matches both layouts; layouts
// grow when a device first appears mid-file, which invalidates plans.
func (p *metricPlan) valid(prev, cur *taccstats.Layout) bool {
	return p != nil && p.curLayout == cur && p.curVer == cur.Version() &&
		p.prevLayout == prev && p.prevVer == prev.Version()
}

// compilePlan resolves every metric path against the two layouts. It
// runs once per file (plus once per rare mid-file device appearance).
func compilePlan(prev, cur *taccstats.Layout) *metricPlan {
	p := &metricPlan{
		prevLayout: prev, prevVer: prev.Version(),
		curLayout: cur, curVer: cur.Version(),
	}
	pairs := func(typ, key string) []colPair {
		cols := cur.Columns(typ, key)
		out := make([]colPair, 0, len(cols))
		for _, c := range cols {
			out = append(out, colPair{cur: c.Col, prev: prev.Column(typ, c.Dev, key)})
		}
		return out
	}
	p.user = pairs(procfs.TypeCPU, "user")
	p.nice = pairs(procfs.TypeCPU, "nice")
	p.system = pairs(procfs.TypeCPU, "system")
	p.irq = pairs(procfs.TypeCPU, "irq")
	p.softirq = pairs(procfs.TypeCPU, "softirq")
	p.idle = pairs(procfs.TypeCPU, "idle")
	p.iowait = pairs(procfs.TypeCPU, "iowait")
	p.flopsAMD = pairs(procfs.TypeAMDPMC, "FLOPS")
	p.flopsIntel = pairs(procfs.TypeIntelPMC, "FLOPS")
	p.ibTx = pairs(procfs.TypeIB, "tx_bytes")
	p.ibRx = pairs(procfs.TypeIB, "rx_bytes")
	p.lnetTx = pairs(procfs.TypeLnet, "tx_bytes")
	for _, c := range cur.Columns(procfs.TypeMem, "MemUsed") {
		p.memUsed = append(p.memUsed, c.Col)
	}
	for _, c := range cur.Columns(procfs.TypeLlite, "write_bytes") {
		p.llite = append(p.llite, llitePlan{
			dev:   c.Dev,
			write: colPair{cur: c.Col, prev: prev.Column(procfs.TypeLlite, c.Dev, "write_bytes")},
			read: colPair{
				cur:  cur.Column(procfs.TypeLlite, c.Dev, "read_bytes"),
				prev: prev.Column(procfs.TypeLlite, c.Dev, "read_bytes"),
			},
		})
	}
	return p
}

// at reads a flat column, treating absent (-1) or out-of-range columns
// as zero; prev arrays can be shorter than cur when a device appeared
// after prev was captured.
func at(flat []uint64, col int) uint64 {
	if col < 0 || col >= len(flat) {
		return 0
	}
	return flat[col]
}

// sumEventCols sums eventDelta over every device column of a metric.
func sumEventCols(prev, cur []uint64, cols []colPair) float64 {
	var total float64
	for _, c := range cols {
		total += eventDelta(at(prev, c.prev), at(cur, c.cur))
	}
	return total
}

// computeIntervalPlan is computeInterval over flat arrays: identical
// arithmetic and summation structure, direct indexing instead of map
// lookups. Device sums run in layout (first-appearance) order; the
// counters are integers well under 2^53, so the float sums are exact and
// order-insensitive, keeping the result bit-identical to the map path.
func computeIntervalPlan(p *metricPlan, prev, cur []uint64, dt float64) Interval {
	user := sumEventCols(prev, cur, p.user) + sumEventCols(prev, cur, p.nice)
	sys := sumEventCols(prev, cur, p.system) +
		sumEventCols(prev, cur, p.irq) + sumEventCols(prev, cur, p.softirq)
	idle := sumEventCols(prev, cur, p.idle)
	iowait := sumEventCols(prev, cur, p.iowait)
	totalCS := user + sys + idle + iowait

	iv := Interval{DtSec: dt}
	if totalCS > 0 {
		iv.UserFrac = user / totalCS
		iv.SysFrac = sys / totalCS
		iv.IdleFrac = (idle + iowait) / totalCS
	}
	var mem float64
	for _, col := range p.memUsed {
		mem += float64(at(cur, col))
	}
	iv.MemUsedKB = mem

	iv.Flops = sumEventCols(prev, cur, p.flopsAMD) + sumEventCols(prev, cur, p.flopsIntel)

	for _, lp := range p.llite {
		d := eventDelta(at(prev, lp.write.prev), at(cur, lp.write.cur))
		switch lp.dev {
		case "scratch":
			iv.ScratchB += d
		case "work":
			iv.WorkB += d
		}
		iv.ReadB += eventDelta(at(prev, lp.read.prev), at(cur, lp.read.cur))
	}
	iv.IBTxB = sumEventCols(prev, cur, p.ibTx)
	iv.IBRxB = sumEventCols(prev, cur, p.ibRx)
	iv.LnetTxB = sumEventCols(prev, cur, p.lnetTx)
	return iv
}

package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"supremm/internal/faultinject"
	"supremm/internal/sched"
	"supremm/internal/store"
	"supremm/internal/workload"
)

// degradeMaxInterval is the plausibility bound the degraded-mode tests
// run with: above the fixture's 600 s cadence and its cross-file gaps,
// below the injector's missing-day gap (4200 s) and clock step.
const degradeMaxInterval = 3600

// writeDegradeArchive writes a clean archive of nHosts hosts, each with
// three numerically named day files of six records at 600 s cadence
// (continuous across files), plus one accounting job per host spanning
// the whole archive. Counter rates are distinct per host so records are
// individually recognizable.
func writeDegradeArchive(t *testing.T, dir string, nHosts int) ([]string, []sched.AcctRecord) {
	t.Helper()
	const (
		filesPerHost = 3
		recsPerFile  = 6
		stepSec      = 600
	)
	hosts := make([]string, 0, nHosts)
	acct := make([]sched.AcctRecord, 0, nHosts)
	for h := 0; h < nHosts; h++ {
		host := fmt.Sprintf("d%03d", h)
		hosts = append(hosts, host)
		hostDir := filepath.Join(dir, host)
		if err := os.MkdirAll(hostDir, 0o755); err != nil {
			t.Fatal(err)
		}
		ts := int64(1000)
		var lastTS int64
		for f := 0; f < filesPerHost; f++ {
			var sb strings.Builder
			sb.WriteString("$tacc_stats 2.0\n$hostname " + host + "\n$arch amd64_opteron\n")
			sb.WriteString("!cpu user,E,U=cs system,E,U=cs idle,E,U=cs iowait,E,U=cs\n")
			sb.WriteString("!mem MemUsed,U=KB\n")
			for r := 0; r < recsPerFile; r++ {
				// Monotone per-host counter ramps: ~70% user, 30% idle.
				el := uint64(ts-1000) * 100
				fmt.Fprintf(&sb, "%d\n", ts)
				fmt.Fprintf(&sb, "cpu 0 %d %d %d %d\n", el*7/10+uint64(h), el/100, el*3/10, el/200)
				fmt.Fprintf(&sb, "cpu 1 %d %d %d %d\n", el*7/10, el/100+uint64(h), el*3/10, el/200)
				fmt.Fprintf(&sb, "mem 0 %d\n", 4*1024*1024+uint64(h)*1024)
				lastTS = ts
				ts += stepSec
			}
			name := fmt.Sprintf("%d.raw", f+1)
			if err := os.WriteFile(filepath.Join(hostDir, name), []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		acct = append(acct, sched.AcctRecord{
			Cluster: "ranger", Owner: "alice", JobName: "app", JobID: int64(100 + h),
			Account: "Physics", Submit: 900, Start: 1000, End: lastTS,
			Status: workload.Completed, Slots: 2, NodeList: []string{host},
		})
	}
	return hosts, acct
}

// recordByJob indexes a result's job records by ID.
func recordByJob(res *RawResult) map[int64]store.JobRecord {
	out := make(map[int64]store.JobRecord, res.Store.Len())
	for i := 0; i < res.Store.Len(); i++ {
		r := res.Store.Record(i)
		out[r.JobID] = r
	}
	return out
}

// requireSameResult asserts two results are identical in full,
// including the quality accounting.
func requireSameResult(t *testing.T, label string, a, b *RawResult) {
	t.Helper()
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("%s: %d vs %d records", label, a.Store.Len(), b.Store.Len())
	}
	for i := 0; i < a.Store.Len(); i++ {
		if a.Store.Record(i) != b.Store.Record(i) {
			t.Fatalf("%s: record %d differs:\n%+v\n%+v", label, i, a.Store.Record(i), b.Store.Record(i))
		}
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		t.Fatalf("%s: system series differ", label)
	}
	if a.Unattributed != b.Unattributed {
		t.Fatalf("%s: unattributed %d vs %d", label, a.Unattributed, b.Unattributed)
	}
	if !reflect.DeepEqual(a.Quality, b.Quality) {
		t.Fatalf("%s: quality differs:\n%+v\n%+v", label, a.Quality, b.Quality)
	}
}

// TestDifferentialDegradation is the headline invariant: corrupting N%
// of hosts must leave every untouched job's record byte-identical to
// the clean run, the DataQuality totals must equal the injector's
// manifest, and the parallel path must agree with the sequential path
// on every quarantine decision.
func TestDifferentialDegradation(t *testing.T) {
	clean := t.TempDir()
	hosts, acct := writeDegradeArchive(t, clean, 20)

	lenient := Options{Policy: Lenient, MaxIntervalSec: degradeMaxInterval}
	cleanRes, err := IngestRawOpts(clean, acct, lenient)
	if err != nil {
		t.Fatal(err)
	}
	if q := cleanRes.Quality; q.Degraded() || q.DuplicatesSkipped != 0 || q.RetriesPerformed != 0 {
		t.Fatalf("clean archive reported degradation: %+v", q)
	}
	if cleanRes.Quality.FilesScanned != len(hosts)*3 {
		t.Fatalf("clean FilesScanned = %d", cleanRes.Quality.FilesScanned)
	}
	cleanRecs := recordByJob(cleanRes)

	for _, frac := range []float64{0.1, 0.5} {
		t.Run(fmt.Sprintf("frac=%v", frac), func(t *testing.T) {
			dirty := t.TempDir()
			m, err := faultinject.Inject(clean, dirty, faultinject.Spec{
				Seed: 1234, HostFrac: frac, SkewSec: 7200,
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := int(frac*float64(len(hosts)) + 0.999); len(m.Hosts) != want {
				t.Fatalf("victims = %d, want %d", len(m.Hosts), want)
			}

			// Lenient ingest never errors on injector output.
			seq, err := IngestRawOpts(dirty, acct, lenient)
			if err != nil {
				t.Fatalf("lenient sequential ingest errored: %v", err)
			}
			par, err := IngestRawOpts(dirty, acct, Options{
				Policy: Lenient, MaxIntervalSec: degradeMaxInterval, Workers: 4,
			})
			if err != nil {
				t.Fatalf("lenient parallel ingest errored: %v", err)
			}
			requireSameResult(t, "seq vs par", seq, par)

			// Quality totals equal the injector's manifest exactly.
			got := faultinject.Expected{
				FilesQuarantined:  seq.Quality.FilesQuarantined,
				RecordsDropped:    seq.Quality.RecordsDropped,
				DuplicatesSkipped: seq.Quality.DuplicatesSkipped,
				ResetsDetected:    seq.Quality.ResetsDetected,
				IntervalsClamped:  seq.Quality.IntervalsClamped,
			}
			if got != m.Expect {
				t.Fatalf("quality totals:\n got  %+v\n want %+v\nfaults: %+v", got, m.Expect, m.Faults)
			}
			if len(seq.Quality.Quarantined) != seq.Quality.FilesQuarantined {
				t.Fatalf("quarantine list length %d != count %d",
					len(seq.Quality.Quarantined), seq.Quality.FilesQuarantined)
			}
			for _, qf := range seq.Quality.Quarantined {
				if !m.Corrupted(qf.Host) {
					t.Fatalf("quarantined file on untouched host: %+v", qf)
				}
			}

			// Untouched jobs are byte-identical to the clean run.
			dirtyRecs := recordByJob(seq)
			for i, host := range hosts {
				jobID := int64(100 + i)
				if m.Corrupted(host) {
					continue
				}
				if dirtyRecs[jobID] != cleanRecs[jobID] {
					t.Errorf("untouched job %d (host %s) differs:\nclean %+v\ndirty %+v",
						jobID, host, cleanRecs[jobID], dirtyRecs[jobID])
				}
			}

			// Strict mode reports the first parse-breaking fault with
			// host/file context (record-level anomalies are tolerated in
			// both policies; only unreadable files abort).
			wantHost, wantFile := firstParseFault(m)
			if wantHost == "" {
				t.Fatalf("victim set has no parse-breaking fault; fix the fixture seed")
			}
			_, err = IngestRawOpts(dirty, acct, Options{Policy: Strict, MaxIntervalSec: degradeMaxInterval})
			var fe *FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("strict ingest error = %v, want FaultError", err)
			}
			if fe.Host != wantHost || fe.File != wantFile {
				t.Fatalf("strict fault at %s/%s, want %s/%s", fe.Host, fe.File, wantHost, wantFile)
			}
			if !strings.Contains(fe.Error(), "line ") {
				t.Fatalf("strict parse fault lacks line context: %v", fe)
			}
		})
	}
}

// firstParseFault returns the host/file of the fault a strict ingest
// must stop at: the first quarantine-class fault in sorted host order.
func firstParseFault(m *faultinject.Manifest) (string, string) {
	faults := append([]faultinject.Fault(nil), m.Faults...)
	sort.Slice(faults, func(i, j int) bool { return faults[i].Host < faults[j].Host })
	for _, f := range faults {
		if f.Kind == faultinject.KindGarble || f.Kind == faultinject.KindTruncate {
			return f.Host, f.File
		}
	}
	return "", ""
}

// TestIngestRetriesTransientErrors drives the bounded-retry path with a
// flaky filesystem: with enough retries the result is identical to the
// clean run; with none, the file is quarantined (lenient) or fatal
// (strict).
func TestIngestRetriesTransientErrors(t *testing.T) {
	dir := t.TempDir()
	_, acct := writeDegradeArchive(t, dir, 3)
	base := Options{Policy: Lenient, MaxIntervalSec: degradeMaxInterval}
	cleanRes, err := IngestRawOpts(dir, acct, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []faultinject.FailMode{faultinject.FailOpen, faultinject.FailRead} {
		name := map[faultinject.FailMode]string{faultinject.FailOpen: "open", faultinject.FailRead: "read"}[mode]
		t.Run(name, func(t *testing.T) {
			failures := map[string]int{"d001/2.raw": 2, "d002/1.raw": 1}
			ffs := faultinject.NewFlakyFS(os.DirFS(dir), mode, failures)
			var backoffs []int
			res, err := IngestRawOpts(dir, acct, Options{
				Policy: Lenient, MaxIntervalSec: degradeMaxInterval,
				FS: ffs, RetryMax: 2,
				Backoff: func(attempt int) { backoffs = append(backoffs, attempt) },
			})
			if err != nil {
				t.Fatalf("ingest with retries errored: %v", err)
			}
			if res.Quality.RetriesPerformed != 3 {
				t.Fatalf("RetriesPerformed = %d, want 3", res.Quality.RetriesPerformed)
			}
			if res.Quality.FilesQuarantined != 0 {
				t.Fatalf("retryable failures were quarantined: %+v", res.Quality)
			}
			if ffs.Injected() != 3 {
				t.Fatalf("injected = %d, want 3", ffs.Injected())
			}
			if len(backoffs) != 3 {
				t.Fatalf("backoff calls = %v", backoffs)
			}
			// Post-retry results are indistinguishable from a clean run.
			res.Quality.RetriesPerformed = 0
			requireSameResult(t, "retried vs clean", res, cleanRes)
		})
	}

	t.Run("exhausted-lenient", func(t *testing.T) {
		ffs := faultinject.NewFlakyFS(os.DirFS(dir), faultinject.FailOpen, map[string]int{"d001/2.raw": 5})
		res, err := IngestRawOpts(dir, acct, Options{
			Policy: Lenient, MaxIntervalSec: degradeMaxInterval, FS: ffs, RetryMax: 1,
		})
		if err != nil {
			t.Fatalf("lenient ingest errored: %v", err)
		}
		if res.Quality.FilesQuarantined != 1 || res.Quality.RetriesPerformed != 1 {
			t.Fatalf("quality = %+v, want 1 quarantine after 1 retry", res.Quality)
		}
		qf := res.Quality.Quarantined[0]
		if qf.Host != "d001" || qf.File != "2.raw" {
			t.Fatalf("quarantined %+v", qf)
		}
	})

	t.Run("exhausted-strict", func(t *testing.T) {
		ffs := faultinject.NewFlakyFS(os.DirFS(dir), faultinject.FailOpen, map[string]int{"d001/2.raw": 5})
		_, err := IngestRawOpts(dir, acct, Options{
			Policy: Strict, MaxIntervalSec: degradeMaxInterval, FS: ffs, RetryMax: 1,
		})
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Host != "d001" || fe.File != "2.raw" {
			t.Fatalf("strict error = %v, want fault at d001/2.raw", err)
		}
	})
}

// TestIngestQuarantineStarvedJob is the satellite fix: a job whose only
// host file is quarantined must still be finalized (zero samples) and
// counted in JobsNoData, so Unattributed and DataQuality agree about
// where its data went.
func TestIngestQuarantineStarvedJob(t *testing.T) {
	dir := t.TempDir()
	host := "d000"
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "$tacc_stats 2.0\n$hostname d000\n$arch amd64_opteron\n" +
		"!cpu user,E,U=cs idle,E,U=cs\n" +
		"1000\ncpu 0 100 900\n1600\ncpu 0 not-a-number 1800\n2200\ncpu 0 300 2700\n"
	if err := os.WriteFile(filepath.Join(hostDir, "1.raw"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	acct := []sched.AcctRecord{{
		Cluster: "ranger", Owner: "bob", JobName: "app", JobID: 42, Account: "P",
		Submit: 900, Start: 1000, End: 2200, Status: workload.Completed,
		Slots: 2, NodeList: []string{host},
	}}
	res, err := IngestRawOpts(dir, acct, Options{Policy: Lenient})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.FilesQuarantined != 1 {
		t.Fatalf("quality = %+v, want 1 quarantined file", res.Quality)
	}
	if res.Quality.JobsNoData != 1 {
		t.Fatalf("JobsNoData = %d, want 1 (job starved by quarantine)", res.Quality.JobsNoData)
	}
	if res.Store.Len() != 1 {
		t.Fatalf("records = %d, want 1 zero-metric identity record", res.Store.Len())
	}
	rec := res.Store.Record(0)
	if rec.JobID != 42 || rec.Samples != 0 {
		t.Fatalf("starved job record = %+v", rec)
	}
	if res.Unattributed != 0 {
		t.Fatalf("unattributed = %d; quarantined data must not leak there", res.Unattributed)
	}
}

// TestIngestClockSkewAttribution is the satellite table-driven test: an
// accounting window shifted by plus or minus one sampling interval
// against the raw timestamps must push the orphaned intervals into
// Unattributed, never into a neighboring job.
func TestIngestClockSkewAttribution(t *testing.T) {
	const step = 600
	dir := t.TempDir()
	host := "d000"
	hostDir := filepath.Join(dir, host)
	if err := os.MkdirAll(hostDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Three records at 1000/1600/2200: two intervals with midpoints
	// 1300 and 1900.
	var sb strings.Builder
	sb.WriteString("$tacc_stats 2.0\n$hostname d000\n$arch amd64_opteron\n!cpu user,E,U=cs idle,E,U=cs\n")
	for _, ts := range []int64{1000, 1600, 2200} {
		el := uint64(ts-1000) * 100
		fmt.Fprintf(&sb, "%d\ncpu 0 %d %d\n", ts, el/2, el/2)
	}
	if err := os.WriteFile(filepath.Join(hostDir, "1.raw"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	mkAcct := func(shift int64) []sched.AcctRecord {
		return []sched.AcctRecord{
			{Cluster: "ranger", Owner: "u", JobName: "a", JobID: 1, Account: "P",
				Submit: 900, Start: 1000 + shift, End: 2200 + shift,
				Status: workload.Completed, Slots: 2, NodeList: []string{host}},
			// Neighboring job on the same host, after a gap.
			{Cluster: "ranger", Owner: "v", JobName: "b", JobID: 2, Account: "P",
				Submit: 900, Start: 2800, End: 4000,
				Status: workload.Completed, Slots: 2, NodeList: []string{host}},
		}
	}

	cases := []struct {
		name             string
		shift            int64
		wantJob1Samples  int
		wantUnattributed int
	}{
		{"aligned", 0, 2, 0},
		{"acct-ahead-one-interval", +step, 1, 1},
		{"acct-behind-one-interval", -step, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := IngestRaw(dir, mkAcct(tc.shift))
			if err != nil {
				t.Fatal(err)
			}
			recs := recordByJob(res)
			if got := recs[1].Samples; got != tc.wantJob1Samples {
				t.Errorf("job 1 samples = %d, want %d", got, tc.wantJob1Samples)
			}
			if recs[2].Samples != 0 {
				t.Errorf("neighbor job stole %d skewed intervals", recs[2].Samples)
			}
			if res.Unattributed != tc.wantUnattributed {
				t.Errorf("unattributed = %d, want %d", res.Unattributed, tc.wantUnattributed)
			}
		})
	}
}

// TestIngestQualityRoundTrip covers the JSON hand-off between
// cmd/ingest and the reporting stage.
func TestIngestQualityRoundTrip(t *testing.T) {
	q := &DataQuality{
		FilesScanned: 10, FilesQuarantined: 2, RecordsDropped: 3,
		DuplicatesSkipped: 1, ResetsDetected: 1, IntervalsClamped: 2,
		RetriesPerformed: 4, JobsNoData: 1,
		Quarantined: []QuarantinedFile{{Host: "h1", File: "2.raw", Reason: "parse: line 9: boom"}},
	}
	path := filepath.Join(t.TempDir(), "quality.json")
	if err := SaveQuality(path, q); err != nil {
		t.Fatal(err)
	}
	got, err := LoadQuality(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Fatalf("round trip:\n got  %+v\n want %+v", got, q)
	}
	if !got.Degraded() {
		t.Fatal("degraded report claims clean")
	}
	if c := got.Completeness(); c != 0.8 {
		t.Fatalf("completeness = %v, want 0.8", c)
	}
}

package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/sched"
	"supremm/internal/store"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// ---------------------------------------------------------------------
// Legacy reference implementation: the pre-streaming ingest path that
// materializes every file via ParseFile and reduces intervals through
// nested map lookups. Kept here verbatim as the oracle the streaming
// and parallel paths must match bit for bit.
// ---------------------------------------------------------------------

type legacySample struct {
	rec     *taccstats.Record
	schemas map[string]procfs.Schema
}

func (h *legacySample) get(typ, dev, key string) (uint64, bool) {
	return h.rec.Get(h.schemas, typ, dev, key)
}

func legacySumDevices(prev, cur *legacySample, typ, key string) float64 {
	devs, ok := cur.rec.Data[typ]
	if !ok {
		return 0
	}
	var total float64
	for dev := range devs {
		c, _ := cur.get(typ, dev, key)
		p, _ := prev.get(typ, dev, key)
		total += eventDelta(p, c)
	}
	return total
}

func legacySumGauge(cur *legacySample, typ, key string) float64 {
	devs, ok := cur.rec.Data[typ]
	if !ok {
		return 0
	}
	var total float64
	for dev := range devs {
		v, _ := cur.get(typ, dev, key)
		total += float64(v)
	}
	return total
}

func legacyComputeInterval(prev, cur *legacySample, dt float64) Interval {
	user := legacySumDevices(prev, cur, procfs.TypeCPU, "user") + legacySumDevices(prev, cur, procfs.TypeCPU, "nice")
	sys := legacySumDevices(prev, cur, procfs.TypeCPU, "system") +
		legacySumDevices(prev, cur, procfs.TypeCPU, "irq") + legacySumDevices(prev, cur, procfs.TypeCPU, "softirq")
	idle := legacySumDevices(prev, cur, procfs.TypeCPU, "idle")
	iowait := legacySumDevices(prev, cur, procfs.TypeCPU, "iowait")
	totalCS := user + sys + idle + iowait

	iv := Interval{DtSec: dt}
	if totalCS > 0 {
		iv.UserFrac = user / totalCS
		iv.SysFrac = sys / totalCS
		iv.IdleFrac = (idle + iowait) / totalCS
	}
	iv.MemUsedKB = legacySumGauge(cur, procfs.TypeMem, "MemUsed")
	iv.Flops = legacySumDevices(prev, cur, procfs.TypeAMDPMC, "FLOPS") +
		legacySumDevices(prev, cur, procfs.TypeIntelPMC, "FLOPS")
	if devs, ok := cur.rec.Data[procfs.TypeLlite]; ok {
		for dev := range devs {
			c, _ := cur.get(procfs.TypeLlite, dev, "write_bytes")
			p, _ := prev.get(procfs.TypeLlite, dev, "write_bytes")
			d := eventDelta(p, c)
			switch dev {
			case "scratch":
				iv.ScratchB += d
			case "work":
				iv.WorkB += d
			}
			cr, _ := cur.get(procfs.TypeLlite, dev, "read_bytes")
			pr, _ := prev.get(procfs.TypeLlite, dev, "read_bytes")
			iv.ReadB += eventDelta(pr, cr)
		}
	}
	iv.IBTxB = legacySumDevices(prev, cur, procfs.TypeIB, "tx_bytes")
	iv.IBRxB = legacySumDevices(prev, cur, procfs.TypeIB, "rx_bytes")
	iv.LnetTxB = legacySumDevices(prev, cur, procfs.TypeLnet, "tx_bytes")
	return iv
}

func legacyIngestRaw(dir string, acct []sched.AcctRecord) (*RawResult, error) {
	windowsByHost, identities := indexAccounting(acct)
	hostDirs, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: read raw dir: %w", err)
	}
	acc := NewAccumulator()
	buckets := make(map[int64]*sysBucket)
	unattributed := 0
	for _, hd := range sortedDirs(hostDirs) {
		host := hd.Name()
		files, err := os.ReadDir(filepath.Join(dir, host))
		if err != nil {
			return nil, err
		}
		var prev *legacySample
		for _, fe := range sortedRawFiles(files) {
			fh, err := os.Open(filepath.Join(dir, host, fe.Name()))
			if err != nil {
				return nil, err
			}
			f, err := taccstats.ParseFile(fh)
			fh.Close()
			if err != nil {
				return nil, err
			}
			for i := range f.Records {
				cur := &legacySample{rec: &f.Records[i], schemas: f.Schemas}
				if prev != nil {
					dt := float64(cur.rec.Time - prev.rec.Time)
					if dt > 0 {
						iv := legacyComputeInterval(prev, cur, dt)
						unattributed += foldInterval(acc, buckets, windowsByHost[host], identities,
							prev.rec.Time, cur.rec.Time, iv)
					}
				}
				prev = cur
			}
		}
	}
	st := store.New()
	ids := make([]int64, 0, len(identities))
	for id := range identities {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if !acc.Started(id) {
			acc.StartJob(identities[id])
		}
		rec, err := acc.FinishJob(id)
		if err != nil {
			return nil, err
		}
		st.Add(rec)
	}
	return &RawResult{Store: st, Series: flattenBuckets(buckets), Unattributed: unattributed}, nil
}

// ---------------------------------------------------------------------
// Equivalence fixture: a simulated multi-host raw tree with per-host
// rate variation, two day files per host (so intervals cross file
// boundaries), a duplicate timestamp across one boundary (zero-dt), a
// PMC reset, and an idle tail no accounting window covers.
// ---------------------------------------------------------------------

func writeEquivalenceTree(t *testing.T, dir string) []sched.AcctRecord {
	t.Helper()
	hosts := []string{"c100-000.ranger", "c100-001.ranger", "c100-002.ranger"}
	for hi, host := range hosts {
		cc := cluster.RangerConfig()
		snap := procfs.NewNodeSnapshot(cc, host)
		snap.Time = 1000
		hostDir := filepath.Join(dir, host)
		if err := os.MkdirAll(hostDir, 0o755); err != nil {
			t.Fatal(err)
		}
		advance := func(w *taccstats.Writer, i int, mark string) {
			for c := 0; c < 16; c++ {
				dev := snap.Type(procfs.TypeCPU).Devices()[c]
				// Vary rates by host, sample and core so sums are not
				// trivially symmetric.
				snap.Add(procfs.TypeCPU, dev, "user", uint64(40000+1000*hi+100*i+c))
				snap.Add(procfs.TypeCPU, dev, "system", uint64(2000+10*c))
				snap.Add(procfs.TypeCPU, dev, "idle", uint64(10000+500*i))
				snap.Add(procfs.TypeCPU, dev, "iowait", uint64(100*hi))
				snap.Add(procfs.TypeAMDPMC, dev, "FLOPS", uint64(4e10+1e9*float64(hi*16+c)))
			}
			for s := 0; s < 4; s++ {
				dev := snap.Type(procfs.TypeMem).Devices()[s]
				snap.Set(procfs.TypeMem, dev, "MemUsed", uint64(2*1024*1024+uint64(100000*(hi+i+s))))
			}
			snap.Add(procfs.TypeLlite, "scratch", "write_bytes", uint64(500e6+1e6*float64(hi)))
			snap.Add(procfs.TypeLlite, "work", "write_bytes", uint64(50e6+1e5*float64(i)))
			snap.Add(procfs.TypeLlite, "scratch", "read_bytes", uint64(100e6))
			snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", uint64(1e9+1e7*float64(hi*10+i)))
			snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", uint64(9e8))
			snap.Add(procfs.TypeLnet, "-", "tx_bytes", uint64(2e8))
			if err := w.WriteRecord(snap, mark); err != nil {
				t.Fatal(err)
			}
		}
		writeDay := func(day int, write func(w *taccstats.Writer)) {
			f, err := os.Create(filepath.Join(hostDir, fmt.Sprintf("%d.raw", day)))
			if err != nil {
				t.Fatal(err)
			}
			w := taccstats.NewWriter(f)
			if err := w.WriteHeader(snap, "amd64_opteron"); err != nil {
				t.Fatal(err)
			}
			write(w)
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		writeDay(0, func(w *taccstats.Writer) {
			if err := w.WriteRecord(snap, "begin 7"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				snap.Time += 600
				advance(w, i, "")
			}
		})
		writeDay(1, func(w *taccstats.Writer) {
			// Rotate record at the same timestamp as day 0's last sample:
			// a zero-dt interval the reduction must skip.
			if err := w.WriteRecord(snap, "rotate"); err != nil {
				t.Fatal(err)
			}
			for i := 4; i < 6; i++ {
				snap.Time += 600
				advance(w, i, "")
			}
			snap.Time += 600
			advance(w, 6, "end 7")
			if hi == 0 {
				// PMC reset at a job boundary: counters move backwards.
				for c := 0; c < 16; c++ {
					dev := snap.Type(procfs.TypeAMDPMC).Devices()[c]
					vals := snap.Type(procfs.TypeAMDPMC).Values(dev)
					for k := range vals {
						vals[k] = 0
					}
				}
			}
			// Idle tail: two more samples after the job ends, attributed
			// to no window.
			snap.Time += 600
			advance(w, 7, "")
			snap.Time += 600
			advance(w, 8, "")
		})
	}
	end := int64(1000 + 7*600)
	return []sched.AcctRecord{{
		Cluster: "ranger", Owner: "alice", JobName: "namd", JobID: 7,
		Account: "Physics", Submit: 900, Start: 1000, End: end,
		Status: workload.Completed, Slots: 16 * len(hosts), NodeList: hosts,
	}}
}

func requireIdenticalResults(t *testing.T, label string, want, got *RawResult) {
	t.Helper()
	if got.Store.Len() != want.Store.Len() {
		t.Fatalf("%s: %d vs %d records", label, got.Store.Len(), want.Store.Len())
	}
	for i := 0; i < want.Store.Len(); i++ {
		if got.Store.Record(i) != want.Store.Record(i) {
			t.Fatalf("%s: record %d differs:\n want %+v\n got  %+v",
				label, i, want.Store.Record(i), got.Store.Record(i))
		}
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: series %d vs %d", label, len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		if got.Series[i] != want.Series[i] {
			t.Fatalf("%s: series %d differs:\n want %+v\n got  %+v",
				label, i, want.Series[i], got.Series[i])
		}
	}
	if got.Unattributed != want.Unattributed {
		t.Fatalf("%s: unattributed %d vs %d", label, got.Unattributed, want.Unattributed)
	}
}

// TestIngestRawStreamingEquivalence runs the same simulated multi-host
// tree through the legacy materializing path, the streaming sequential
// path, and the parallel path at 1 and 4 workers, and requires
// bit-identical RawResults from all four.
func TestIngestRawStreamingEquivalence(t *testing.T) {
	dir := t.TempDir()
	acct := writeEquivalenceTree(t, dir)

	legacy, err := legacyIngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Unattributed == 0 {
		t.Fatal("fixture must produce unattributed intervals")
	}

	streaming, err := IngestRaw(dir, acct)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, "streaming", legacy, streaming)

	for _, workers := range []int{1, 4} {
		par, err := IngestRawParallel(dir, acct, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdenticalResults(t, fmt.Sprintf("parallel workers=%d", workers), legacy, par)
	}
}

// TestSysBucketDtConsistency is the regression test for the historical
// fold/merge divergence: fold used to overwrite the bucket dt
// unconditionally while merge guarded on positive dt. Both must keep the
// last positive dt so a zero-dt interval cannot wipe the bucket's rate
// denominator.
func TestSysBucketDtConsistency(t *testing.T) {
	b := &sysBucket{}
	b.fold(Interval{DtSec: 600, Flops: 1}, true)
	b.fold(Interval{DtSec: 0, Flops: 1}, true)
	if b.dt != 600 {
		t.Errorf("fold: dt = %v after zero-dt interval, want 600", b.dt)
	}

	m := &sysBucket{}
	m.merge(&sysBucket{dt: 600, hosts: 1})
	m.merge(&sysBucket{dt: 0, hosts: 1})
	if m.dt != 600 {
		t.Errorf("merge: dt = %v after zero-dt bucket, want 600", m.dt)
	}

	// Rates must use the surviving dt.
	buckets := map[int64]*sysBucket{100: b}
	s := flattenBuckets(buckets)
	if s[0].TotalTFlops == 0 {
		t.Error("zero-dt interval wiped the rate denominator")
	}
}

package ingest

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path"

	"supremm/internal/sched"
	"supremm/internal/taccstats"
)

// DefaultMaxIntervalSec is the default plausibility bound on one
// interval's duration. Real archives contain multi-hour gaps from node
// repairs and half-day maintenance shutdowns that are legitimate data;
// a gap longer than a full day means a missing day file or a stepped
// clock, and the bridging interval is noise.
const DefaultMaxIntervalSec = 86400

// Options parameterizes IngestRawOpts. The zero value reproduces the
// legacy IngestRaw behavior: strict policy, sequential, reading the
// local filesystem, one-day plausibility bound, no retries.
type Options struct {
	// Policy selects abort-on-fault (Strict) or quarantine-and-account
	// (Lenient).
	Policy Policy
	// Workers > 1 ingests hosts concurrently; <= 1 is sequential. The
	// results are identical either way.
	Workers int
	// FS overrides the archive filesystem; nil reads os.DirFS(dir).
	// Tests inject flaky filesystems here.
	FS fs.FS
	// MaxIntervalSec bounds a plausible interval; longer ones are
	// suppressed and counted as clamped. 0 means DefaultMaxIntervalSec;
	// negative disables the bound.
	MaxIntervalSec int64
	// RetryMax is how many times a transiently failing file read is
	// retried before the failure is treated as permanent.
	RetryMax int
	// Backoff, if set, runs before retry attempt n (1-based). The
	// ingest core never sleeps on its own; callers that want real
	// backoff delays inject them here.
	Backoff func(attempt int)
}

// rawOptions is Options with defaults resolved.
type rawOptions struct {
	policy      Policy
	fsys        fs.FS
	maxInterval float64
	retryMax    int
	backoff     func(int)
}

func (opts Options) resolve(dir string) rawOptions {
	o := rawOptions{
		policy:   opts.Policy,
		fsys:     opts.FS,
		retryMax: opts.RetryMax,
		backoff:  opts.Backoff,
	}
	if o.fsys == nil {
		o.fsys = os.DirFS(dir)
	}
	switch {
	case opts.MaxIntervalSec == 0:
		o.maxInterval = DefaultMaxIntervalSec
	case opts.MaxIntervalSec < 0:
		o.maxInterval = math.Inf(1)
	default:
		o.maxInterval = float64(opts.MaxIntervalSec)
	}
	return o
}

// FaultError is what strict-policy ingest returns: the first fault,
// located to host and file. Parse faults additionally carry the line
// number inside the wrapped error.
type FaultError struct {
	Host string
	File string
	Err  error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("ingest: fault at %s/%s: %v", e.Host, e.File, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// isTransient reports whether err declares itself Temporary(), the
// stdlib convention syscall errors and injected fault-testing errors
// share. (Deliberately local: ingest must not depend on faultinject.)
func isTransient(err error) bool {
	var t interface{ Temporary() bool }
	return errors.As(err, &t) && t.Temporary()
}

// hostState is the carry between consecutive files of one host: the
// last good record, its layout, and the compiled plan.
type hostState struct {
	prevFlat   []uint64
	prevLayout *taccstats.Layout
	prevTime   int64
	havePrev   bool
	plan       *metricPlan
}

// snapshot deep-copies the mutable carry so a failed parse attempt can
// be discarded without corrupting the committed state. Layouts and
// plans are immutable once their file is done, so sharing the pointers
// is safe; a re-parse builds a fresh Layout, which invalidates the plan
// by pointer identity and forces a recompile.
func (s *hostState) snapshot() hostState {
	c := *s
	c.prevFlat = append([]uint64(nil), s.prevFlat...)
	return c
}

// timedInterval is one reduced interval pending commit.
type timedInterval struct {
	prevTime, curTime int64
	iv                Interval
}

// fileQuality is one file's tentative accounting, merged into the host
// totals only if the file commits.
type fileQuality struct {
	recordsDropped    int
	duplicatesSkipped int
	resetsDetected    int
	intervalsClamped  int
}

func (fq *fileQuality) commit(q *DataQuality) {
	q.RecordsDropped += fq.recordsDropped
	q.DuplicatesSkipped += fq.duplicatesSkipped
	q.ResetsDetected += fq.resetsDetected
	q.IntervalsClamped += fq.intervalsClamped
}

// streamHost streams one host's day files in order through ParseStream,
// folding record pairs into Intervals exactly as the schema-compiled
// fast path always has, with degraded-mode isolation around it: each
// file parses into a pending buffer first and only commits — intervals
// emitted, accounting merged, carry state advanced — if the whole file
// is good. A bad file either aborts (Strict) or is quarantined
// (Lenient), and quarantine resets the carry so no interval bridges
// across unread data. Transient read failures retry up to retryMax
// times before counting as permanent. emit receives intervals in
// deterministic file order; peak memory is one file's intervals plus
// two flat records.
func streamHost(o rawOptions, host string, q *DataQuality, emit func(prevTime, curTime int64, iv Interval)) error {
	entries, err := fs.ReadDir(o.fsys, host)
	if err != nil {
		return fmt.Errorf("ingest: read host dir %s: %w", host, err)
	}
	var st hostState
	for _, fe := range sortedRawFiles(entries) {
		name := fe.Name()
		q.FilesScanned++
		pending, next, err := parseFileRetrying(o, host, name, st, q)
		if err != nil {
			if o.policy == Strict {
				return &FaultError{Host: host, File: name, Err: err}
			}
			q.FilesQuarantined++
			q.Quarantined = append(q.Quarantined, QuarantinedFile{
				Host: host, File: name, Reason: err.Error(),
			})
			st = hostState{}
			continue
		}
		for i := range pending {
			emit(pending[i].prevTime, pending[i].curTime, pending[i].iv)
		}
		st = next
	}
	return nil
}

// parseFileRetrying runs parseFileOnce with bounded retry on transient
// errors. Each attempt starts from a snapshot of the committed carry,
// so retries are idempotent.
func parseFileRetrying(o rawOptions, host, name string, base hostState, q *DataQuality) ([]timedInterval, hostState, error) {
	for attempt := 0; ; attempt++ {
		pending, next, fq, err := parseFileOnce(o, host, name, base.snapshot())
		if err == nil {
			fq.commit(q)
			return pending, next, nil
		}
		if !isTransient(err) || attempt >= o.retryMax {
			return nil, hostState{}, err
		}
		q.RetriesPerformed++
		if o.backoff != nil {
			o.backoff(attempt + 1)
		}
	}
}

// parseFileOnce parses one file against the carried state, applying the
// interval-level sanity guards:
//
//   - dt < 0 (non-monotonic timestamp): the interval is dropped and
//     counted, and the record becomes the new baseline (job-boundary
//     marks legitimately arrive out of order in real archives);
//   - dt == 0 (retransmitted sample or rotate mark): counted as a
//     duplicate, refreshes the baseline, adds no interval;
//   - CPU counters moving backwards: a node reboot; counted as a reset
//     (eventDelta's reset semantics already yield the right delta);
//   - dt beyond the plausibility bound (missing day, stepped clock):
//     the bridging interval is suppressed and counted as clamped.
func parseFileOnce(o rawOptions, host, name string, st hostState) ([]timedInterval, hostState, fileQuality, error) {
	var fq fileQuality
	p := path.Join(host, name)
	fh, err := o.fsys.Open(p)
	if err != nil {
		return nil, st, fq, fmt.Errorf("open: %w", err)
	}
	var pending []timedInterval
	_, perr := taccstats.ParseStream(fh, func(rec *taccstats.Record) error {
		lay := rec.Layout()
		cur := rec.Flat()
		if st.havePrev {
			dt := float64(rec.Time - st.prevTime)
			switch {
			case dt < 0:
				// Job begin/end marks legitimately arrive slightly out
				// of order (the monitor stamps them with the event time,
				// between periodic samples), so this is not a fault in
				// either policy: the interval is dropped and counted,
				// and the record becomes the new baseline, exactly as
				// the legacy path behaved.
				fq.recordsDropped++
			case dt == 0:
				fq.duplicatesSkipped++
			default:
				if !st.plan.valid(st.prevLayout, lay) {
					st.plan = compilePlan(st.prevLayout, lay)
				}
				if cpuMovedBackwards(st.plan, st.prevFlat, cur) {
					fq.resetsDetected++
				}
				if dt > o.maxInterval {
					fq.intervalsClamped++
				} else {
					pending = append(pending, timedInterval{
						prevTime: st.prevTime, curTime: rec.Time,
						iv: computeIntervalPlan(st.plan, st.prevFlat, cur, dt),
					})
				}
			}
		}
		st.prevFlat = append(st.prevFlat[:0], cur...)
		st.prevLayout = lay
		st.prevTime = rec.Time
		st.havePrev = true
		return nil
	})
	closeErr := fh.Close()
	if perr != nil {
		return nil, st, fq, fmt.Errorf("parse: %w", perr)
	}
	if closeErr != nil {
		return nil, st, fq, fmt.Errorf("close: %w", closeErr)
	}
	return pending, st, fq, nil
}

// cpuMovedBackwards reports whether any scheduler CPU counter moved
// backwards between the two records. Unlike PMCs (reprogrammed at every
// job start) and long-lived event counters (which wrap), kernel CPU
// centisecond counters only ever restart from zero on reboot, so
// backwards movement here is a reliable reset signal.
func cpuMovedBackwards(p *metricPlan, prev, cur []uint64) bool {
	for _, cols := range [...][]colPair{p.user, p.nice, p.system, p.irq, p.softirq, p.idle, p.iowait} {
		for _, c := range cols {
			if at(cur, c.cur) < at(prev, c.prev) {
				return true
			}
		}
	}
	return false
}

// IngestRawOpts is IngestRaw with the full degraded-mode control
// surface. Sequential (Workers <= 1) and parallel runs produce
// byte-identical results, including every quarantine decision.
func IngestRawOpts(dir string, acct []sched.AcctRecord, opts Options) (*RawResult, error) {
	if opts.Workers > 1 {
		return ingestParallel(dir, acct, opts)
	}
	o := opts.resolve(dir)
	windowsByHost, identities := indexAccounting(acct)

	hostDirs, err := fs.ReadDir(o.fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("ingest: read raw dir: %w", err)
	}
	acc := NewAccumulator()
	buckets := make(map[int64]*sysBucket)
	unattributed := 0
	var quality DataQuality

	for _, hd := range sortedDirs(hostDirs) {
		host := hd.Name()
		windows := windowsByHost[host]
		err := streamHost(o, host, &quality, func(prevTime, curTime int64, iv Interval) {
			unattributed += foldInterval(acc, buckets, windows, identities, prevTime, curTime, iv)
		})
		if err != nil {
			return nil, err
		}
	}
	return finalize(acc, identities, buckets, unattributed, &quality)
}

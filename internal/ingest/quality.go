package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Policy selects how ingest reacts to faulty input.
type Policy int

const (
	// Strict aborts the whole ingest at the first fault, reporting it
	// with host/file(/line) context. This is the legacy behavior and
	// the zero value: existing callers keep their abort-on-error
	// semantics unless they opt into degradation.
	Strict Policy = iota
	// Lenient quarantines faulty files, drops individually implausible
	// records, and accounts for every loss in DataQuality — the posture
	// an 18-month production deployment needs, where partial data is
	// the normal case.
	Lenient
)

func (p Policy) String() string {
	if p == Lenient {
		return "lenient"
	}
	return "strict"
}

// QuarantinedFile identifies one raw file excluded from ingest and why.
type QuarantinedFile struct {
	Host   string `json:"host"`
	File   string `json:"file"`
	Reason string `json:"reason"`
}

// DataQuality accounts for everything a degraded-mode ingest dropped,
// repaired, or retried — the operations-staff "data completeness" view.
// A clean archive yields the zero value (plus FilesScanned).
type DataQuality struct {
	// FilesScanned counts every raw file considered, good or bad.
	FilesScanned int `json:"files_scanned"`
	// FilesQuarantined counts files excluded wholesale because they
	// failed to open, read, or parse (lenient policy only).
	FilesQuarantined int `json:"files_quarantined"`
	// RecordsDropped counts records rejected by sanity guards
	// (non-monotonic timestamps).
	RecordsDropped int `json:"records_dropped"`
	// DuplicatesSkipped counts zero-dt records (collector retransmits
	// and rotate marks); they refresh the baseline but add no interval.
	DuplicatesSkipped int `json:"duplicates_skipped"`
	// ResetsDetected counts intervals where CPU counters moved
	// backwards — the signature of a node reboot mid-archive.
	ResetsDetected int `json:"resets_detected"`
	// IntervalsClamped counts intervals longer than the plausibility
	// bound (missing day files, clock steps); they are suppressed
	// rather than attributed with an implausible dt.
	IntervalsClamped int `json:"intervals_clamped"`
	// RetriesPerformed counts transient read failures that were retried.
	RetriesPerformed int `json:"retries_performed"`
	// JobsNoData counts jobs finalized with zero samples — too short to
	// span a sampling interval, or starved because their only host files
	// were quarantined. Keeping this next to Unattributed means the two
	// can never silently disagree about where a job's data went.
	JobsNoData int `json:"jobs_no_data"`
	// Quarantined lists every excluded file, in sorted host order then
	// day order — identical between sequential and parallel ingest.
	Quarantined []QuarantinedFile `json:"quarantined,omitempty"`
}

// add merges another host's accounting (parallel merge path).
func (q *DataQuality) add(o *DataQuality) {
	q.FilesScanned += o.FilesScanned
	q.FilesQuarantined += o.FilesQuarantined
	q.RecordsDropped += o.RecordsDropped
	q.DuplicatesSkipped += o.DuplicatesSkipped
	q.ResetsDetected += o.ResetsDetected
	q.IntervalsClamped += o.IntervalsClamped
	q.RetriesPerformed += o.RetriesPerformed
	q.JobsNoData += o.JobsNoData
	q.Quarantined = append(q.Quarantined, o.Quarantined...)
}

// Degraded reports whether any data was lost or repaired.
func (q *DataQuality) Degraded() bool {
	return q.FilesQuarantined > 0 || q.RecordsDropped > 0 ||
		q.ResetsDetected > 0 || q.IntervalsClamped > 0 || q.JobsNoData > 0
}

// Completeness is the fraction of scanned files that were ingested;
// 1.0 for an empty or fully clean archive.
func (q *DataQuality) Completeness() float64 {
	if q.FilesScanned == 0 {
		return 1
	}
	return float64(q.FilesScanned-q.FilesQuarantined) / float64(q.FilesScanned)
}

// WriteQuality streams the report as JSON to w — the writer-based form
// cmd/ingest's atomic output path uses.
func WriteQuality(w io.Writer, q *DataQuality) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(q); err != nil {
		return fmt.Errorf("ingest: write quality report: %w", err)
	}
	return nil
}

// SaveQuality writes the report as JSON, the hand-off format between
// cmd/ingest and the reporting stage.
func SaveQuality(path string, q *DataQuality) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteQuality(f, q); err != nil {
		_ = f.Close() // encode error wins
		return err
	}
	return f.Close()
}

// LoadQuality reads a report written by SaveQuality.
func LoadQuality(path string) (*DataQuality, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var q DataQuality
	if err := json.Unmarshal(b, &q); err != nil {
		return nil, fmt.Errorf("ingest: parse quality report %s: %w", path, err)
	}
	return &q, nil
}

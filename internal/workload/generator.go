package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"supremm/internal/cluster"
)

// ExitStatus is the batch system's view of how a job ended.
type ExitStatus int

// Exit statuses, in the vocabulary the accounting log uses.
const (
	Completed ExitStatus = iota
	Failed
	Timeout
	NodeFail
)

// String implements fmt.Stringer.
func (s ExitStatus) String() string {
	switch s {
	case Completed:
		return "COMPLETED"
	case Failed:
		return "FAILED"
	case Timeout:
		return "TIMEOUT"
	case NodeFail:
		return "NODE_FAIL"
	default:
		return fmt.Sprintf("EXIT(%d)", int(s))
	}
}

// Job is one batch submission with its sampled geometry, per-job
// behaviour multipliers and eventual fate. Times are in minutes from the
// simulation epoch.
type Job struct {
	ID    int64
	User  *User
	App   *App
	Nodes int

	SubmitMin  float64
	RuntimeMin float64 // actual runtime once started
	ReqMin     float64 // requested wallclock (jobs Timeout at this limit)

	Status ExitStatus

	// Per-job lognormal multipliers drawn at submission; they express
	// input-dependent variation between runs of the same code.
	IdleMul, FlopsMul, MemMul, IOMul, NetMul float64

	// Seed for the job's private RNG used by its Behavior; derived
	// deterministically from the generator seed and job ID.
	Seed int64
}

// NodeHours returns nodes * runtime in hours.
func (j *Job) NodeHours() float64 { return float64(j.Nodes) * j.RuntimeMin / 60 }

// GenConfig configures workload generation for one cluster.
type GenConfig struct {
	Cluster cluster.Config
	Seed    int64
	Users   []*User
	Apps    []*App

	// HorizonMin is the span of submissions to generate, minutes.
	HorizonMin float64
	// UtilizationTarget is the fraction of cluster node-time the offered
	// load should demand; >1 keeps a queue, as production systems do
	// ("over-request of most if not all HPC resources", §5).
	UtilizationTarget float64
	// IdleBias scales every job's idle multiplier; used to set the
	// cluster-wide efficiency (Ranger ~90%, Lonestar4 ~85%).
	IdleBias float64
	// MemBias scales every job's memory footprint; Lonestar4 runs its
	// 24 GB nodes proportionally fuller than Ranger's 32 GB (Fig 11-12).
	MemBias float64
	// RuntimeBias scales runtimes; Lonestar4's weighted mean job length
	// is shorter than Ranger's (446 vs 549 min).
	RuntimeBias float64

	// Diurnal, when true, modulates the arrival rate with the daily and
	// weekly rhythm of a real user population (submissions peak in the
	// working afternoon and sag overnight and on weekends) while keeping
	// the mean offered load unchanged. The queue smooths most of it out,
	// which is why Fig 8 shows only "smaller variations".
	Diurnal bool
}

// DefaultGenConfig returns a generation config tuned for the named
// preset cluster at the given scale.
func DefaultGenConfig(cfg cluster.Config, seed int64) GenConfig {
	g := GenConfig{
		Cluster:           cfg,
		Seed:              seed,
		HorizonMin:        90 * 24 * 60,
		UtilizationTarget: 1.15,
		// The archetype catalogue's raw mix idles ~15% node-hour
		// weighted; the biases land the presets on the paper's marks
		// (Ranger 10% idle, Lonestar4 15%; Fig 4).
		IdleBias:    0.7,
		MemBias:     1.0,
		RuntimeBias: 1.0,
	}
	if cfg.Name == "lonestar4" {
		g.IdleBias = 1.05
		g.MemBias = 2.0
		g.RuntimeBias = 0.7
	}
	return g
}

// Generator produces the submission stream.
type Generator struct {
	cfg  GenConfig
	rng  *rand.Rand
	next int64
}

// NewGenerator builds a Generator, filling in defaults for zero-valued
// config fields (users, apps, horizon, utilization).
func NewGenerator(cfg GenConfig) *Generator {
	if cfg.Apps == nil {
		cfg.Apps = DefaultApps()
	}
	if cfg.Users == nil {
		pop := DefaultPopulationConfig(cfg.Seed)
		pop.Apps = cfg.Apps
		cfg.Users = NewPopulation(pop)
	}
	if cfg.HorizonMin <= 0 {
		cfg.HorizonMin = 90 * 24 * 60
	}
	if cfg.UtilizationTarget <= 0 {
		cfg.UtilizationTarget = 1.15
	}
	if cfg.IdleBias <= 0 {
		cfg.IdleBias = 1
	}
	if cfg.MemBias <= 0 {
		cfg.MemBias = 1
	}
	if cfg.RuntimeBias <= 0 {
		cfg.RuntimeBias = 1
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), next: 1}
}

// Users returns the population in use.
func (g *Generator) Users() []*User { return g.cfg.Users }

// Apps returns the app catalogue in use.
func (g *Generator) Apps() []*App { return g.cfg.Apps }

// meanJobNodeMinutes estimates E[nodes*runtime] of the offered mix by
// Monte Carlo over the archetype and population distributions, using a
// private RNG so the submission stream is unaffected.
func (g *Generator) meanJobNodeMinutes() float64 {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ 0x5deece66d))
	const samples = 4000
	var total float64
	for i := 0; i < samples; i++ {
		u := g.drawUserWith(rng)
		a := u.PickApp(g.cfg.Apps, rng)
		nodes := drawNodes(a, u, g.cfg.Cluster.Nodes, rng)
		rt := drawRuntime(a, g.cfg.RuntimeBias, rng)
		total += float64(nodes) * rt
	}
	return total / samples
}

// Generate produces the full submission stream for the horizon, sorted
// by submit time. Runtime, geometry and fate are sampled here so the
// stream is reproducible independent of scheduling. Diurnal mode draws
// a non-homogeneous Poisson process by thinning against the day/week
// intensity profile.
func (g *Generator) Generate() []*Job {
	nodeMinPerMin := float64(g.cfg.Cluster.Nodes) * g.cfg.UtilizationTarget
	meanJob := g.meanJobNodeMinutes()
	rate := nodeMinPerMin / meanJob // mean jobs per minute

	var jobs []*Job
	t := 0.0
	maxIntensity := 1.0
	if g.cfg.Diurnal {
		maxIntensity = diurnalPeak
	}
	for {
		t += g.rng.ExpFloat64() / (rate * maxIntensity)
		if t >= g.cfg.HorizonMin {
			break
		}
		if g.cfg.Diurnal && g.rng.Float64() > DiurnalIntensity(t)/maxIntensity {
			continue // thinned
		}
		jobs = append(jobs, g.newJob(t))
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].SubmitMin < jobs[j].SubmitMin })
	return jobs
}

// diurnalPeak bounds DiurnalIntensity for thinning.
const diurnalPeak = 1.75

// DiurnalIntensity is the mean-one submission intensity at simulated
// minute t (minute 0 is midnight Monday): a working-hours bump peaking
// mid-afternoon, an overnight sag, and a weekend dip.
func DiurnalIntensity(tMin float64) float64 {
	const day = 24 * 60
	dow := int(tMin/day) % 7
	hod := math.Mod(tMin, day) / 60 // hour of day
	// Daily shape: cosine trough at 4am, peak at 4pm, amplitude 0.5.
	daily := 1 + 0.5*math.Cos((hod-16)/24*2*math.Pi)
	weekly := 1.0
	if dow >= 5 { // Saturday, Sunday
		weekly = 0.6
	}
	// Normalize: E[daily] = 1; E[weekly] = (5 + 2*0.6)/7.
	return daily * weekly / ((5 + 2*0.6) / 7)
}

// newJob samples one submission at time t.
func (g *Generator) newJob(t float64) *Job {
	u := g.drawUserWith(g.rng)
	a := u.PickApp(g.cfg.Apps, g.rng)
	nodes := drawNodes(a, u, g.cfg.Cluster.Nodes, g.rng)
	runtime := drawRuntime(a, g.cfg.RuntimeBias, g.rng)

	j := &Job{
		ID:         g.next,
		User:       u,
		App:        a,
		Nodes:      nodes,
		SubmitMin:  t,
		RuntimeMin: runtime,
		ReqMin:     math.Min(runtime*(1.3+g.rng.Float64()), a.MaxRuntimeMin),
		IdleMul:    u.IdleMul * g.cfg.IdleBias * logn(g.rng, 0.30),
		FlopsMul:   logn(g.rng, 0.50),
		MemMul:     g.cfg.MemBias * logn(g.rng, 0.45),
		IOMul:      logn(g.rng, 0.70),
		NetMul:     logn(g.rng, 0.50),
		Seed:       g.cfg.Seed ^ int64(uint64(g.next)*0x9e3779b97f4a7c15),
	}
	g.next++

	// Fate.
	switch x := g.rng.Float64(); {
	case x < a.FailureProb:
		j.Status = Failed
		// Failed jobs die early.
		j.RuntimeMin *= 0.1 + 0.8*g.rng.Float64()
	case x < a.FailureProb+a.TimeoutProb:
		j.Status = Timeout
		j.RuntimeMin = j.ReqMin
	case x < a.FailureProb+a.TimeoutProb+0.005:
		j.Status = NodeFail
		j.RuntimeMin *= 0.2 + 0.6*g.rng.Float64()
	default:
		j.Status = Completed
	}
	if j.RuntimeMin < 1 {
		j.RuntimeMin = 1
	}
	return j
}

// drawUserWith samples a user proportional to activity.
func (g *Generator) drawUserWith(rng *rand.Rand) *User {
	x := rng.Float64()
	for _, u := range g.cfg.Users {
		x -= u.Activity
		if x < 0 {
			return u
		}
	}
	return g.cfg.Users[len(g.cfg.Users)-1]
}

// drawNodes samples a node count from the app's lognormal scaled by the
// user's habit, clamped to the app's limits and the machine size (no
// job can request more nodes than the cluster has).
func drawNodes(a *App, u *User, clusterNodes int, rng *rand.Rand) int {
	n := int(math.Round(math.Exp(a.NodesLogMean+a.NodesLogSigma*rng.NormFloat64()) * u.ScaleMul))
	if n < a.MinNodes {
		n = a.MinNodes
	}
	if n > a.MaxNodes {
		n = a.MaxNodes
	}
	if n > clusterNodes {
		n = clusterNodes
	}
	return n
}

// drawRuntime samples a runtime in minutes.
func drawRuntime(a *App, bias float64, rng *rand.Rand) float64 {
	rt := math.Exp(a.RuntimeLogMean+a.RuntimeLogSigma*rng.NormFloat64()) * bias
	if rt > a.MaxRuntimeMin {
		rt = a.MaxRuntimeMin
	}
	if rt < 1 {
		rt = 1
	}
	return rt
}

// logn returns a mean-one lognormal draw with log-sd sigma.
func logn(rng *rand.Rand, sigma float64) float64 {
	return math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
}

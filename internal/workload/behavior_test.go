package workload

import (
	"math"
	"math/rand"
	"testing"

	"supremm/internal/stats"
)

func testJob(appName string, seed int64) *Job {
	apps := DefaultApps()
	return &Job{
		ID:    1,
		User:  &User{ID: 1, Name: "u", IdleMul: 1, ScaleMul: 1},
		App:   AppByName(apps, appName),
		Nodes: 4, RuntimeMin: 600,
		IdleMul: 1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1,
		Seed: seed,
	}
}

func TestBehaviorCPUFractionsSumToOne(t *testing.T) {
	for _, app := range []string{"namd", "amber", "serialfarm", "datamover"} {
		b := NewBehavior(testJob(app, 11), "ranger", 16, 32)
		for i := 0; i < 200; i++ {
			u := b.Step(10)
			sum := u.UserFrac + u.SysFrac + u.IowaitFrac + u.IdleFrac
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s step %d: fractions sum to %v", app, i, sum)
			}
			if u.UserFrac < 0 || u.IdleFrac < 0 || u.SysFrac < 0 || u.IowaitFrac < 0 {
				t.Fatalf("%s step %d: negative fraction %+v", app, i, u)
			}
		}
	}
}

func TestBehaviorMeansTrackProfile(t *testing.T) {
	// Long-run averages of the dynamic process should track the
	// steady-state profile (the AR noise is mean-one).
	j := testJob("namd", 21)
	b := NewBehavior(j, "ranger", 16, 32)
	p := j.App.Profile
	var idles, flops []float64
	for i := 0; i < 5000; i++ {
		u := b.Step(10)
		idles = append(idles, u.IdleFrac)
		flops = append(flops, u.Flops)
	}
	meanIdle := stats.Mean(idles)
	if math.Abs(meanIdle-p.CPUIdleFrac) > 0.05 {
		t.Errorf("mean idle = %v, profile %v", meanIdle, p.CPUIdleFrac)
	}
	// Expected flops per 10-minute step per node.
	wantFlops := p.FlopsPerCoreGF * 1e9 * 16 * (1 - p.CPUIdleFrac) * 600
	gotFlops := stats.Mean(flops)
	if gotFlops < 0.5*wantFlops || gotFlops > 1.8*wantFlops {
		t.Errorf("mean flops = %v, want ~%v", gotFlops, wantFlops)
	}
}

func TestBehaviorMemoryClampAndPeak(t *testing.T) {
	j := testJob("matpy", 31)
	j.MemMul = 10 // force a footprint beyond capacity
	b := NewBehavior(j, "ranger", 16, 32)
	capGB := 0.95 * 32.0
	capKB := uint64(capGB * 1024 * 1024)
	var maxSeen uint64
	for i := 0; i < 300; i++ {
		u := b.Step(10)
		if u.MemUsedKB > capKB {
			t.Fatalf("mem %d exceeds 95%% capacity clamp %d", u.MemUsedKB, capKB)
		}
		if u.MemUsedKB > maxSeen {
			maxSeen = u.MemUsedKB
		}
		if u.BuffCacheKB > u.MemUsedKB {
			t.Fatalf("buffers/cache %d exceeds used %d", u.BuffCacheKB, u.MemUsedKB)
		}
	}
	if b.PeakMemKB() != maxSeen {
		t.Errorf("PeakMemKB = %d, observed max %d", b.PeakMemKB(), maxSeen)
	}
}

func TestBehaviorDeterminism(t *testing.T) {
	a := NewBehavior(testJob("wrf", 77), "ranger", 16, 32)
	b := NewBehavior(testJob("wrf", 77), "ranger", 16, 32)
	for i := 0; i < 100; i++ {
		ua, ub := a.Step(10), b.Step(10)
		if ua != ub {
			t.Fatalf("step %d diverged: %+v vs %+v", i, ua, ub)
		}
	}
	c := NewBehavior(testJob("wrf", 78), "ranger", 16, 32)
	diverged := false
	for i := 0; i < 20; i++ {
		if a.Step(10) != c.Step(10) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds should diverge")
	}
}

func TestBehaviorIOBurstiness(t *testing.T) {
	// Checkpointing codes should show bursty scratch writes: the CV of
	// the write series must exceed the CV of the flops series.
	j := testJob("enzo", 41)
	b := NewBehavior(j, "ranger", 16, 32)
	var writes, flops []float64
	for i := 0; i < 4000; i++ {
		u := b.Step(10)
		writes = append(writes, u.ScratchWriteB)
		flops = append(flops, u.Flops)
	}
	cvW := stats.CoefficientOfVariation(writes)
	cvF := stats.CoefficientOfVariation(flops)
	if cvW <= cvF {
		t.Errorf("write CV %v should exceed flops CV %v (bursty IO)", cvW, cvF)
	}
}

func TestBehaviorIntraJobPersistence(t *testing.T) {
	// The AR(1) compute channel must make consecutive samples of flops
	// correlated — that correlation is what Table 1 measures.
	j := testJob("milc", 51)
	b := NewBehavior(j, "ranger", 16, 32)
	var flops []float64
	for i := 0; i < 8000; i++ {
		flops = append(flops, b.Step(10).Flops)
	}
	rho := stats.Autocorrelation(flops, 1)
	if rho < 0.5 {
		t.Errorf("lag-1 flops autocorrelation = %v, want strong persistence", rho)
	}
	// And it should decay with lag.
	rho30 := stats.Autocorrelation(flops, 30)
	if rho30 >= rho {
		t.Errorf("autocorrelation should decay: lag1=%v lag30=%v", rho, rho30)
	}
}

func TestClusterModAffectsBehavior(t *testing.T) {
	// GROMACS on LS4 has FlopsMul 1.5: long-run flops per core should be
	// visibly higher than on Ranger with the same per-node cores.
	mean := func(clusterName string) float64 {
		b := NewBehavior(testJob("gromacs", 61), clusterName, 12, 24)
		var sum float64
		for i := 0; i < 3000; i++ {
			sum += b.Step(10).Flops
		}
		return sum / 3000
	}
	r, l := mean("ranger"), mean("lonestar4")
	if l < 1.2*r {
		t.Errorf("LS4 gromacs flops %v should exceed Ranger %v by ~1.5x", l, r)
	}
}

func TestBurstSpecDutyCycle(t *testing.T) {
	b := BurstSpec{MeanOnMin: 10, MeanOffMin: 30, OnFactor: 4}
	if got := b.DutyCycle(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("duty = %v, want 0.25", got)
	}
	if got := (BurstSpec{}).DutyCycle(); got != 0 {
		t.Errorf("zero spec duty = %v", got)
	}
	// Duty-weighted mean of on/off factors must be ~1 (rate preserving).
	on, off := b.OnFactor, b.offFactor()
	mean := 0.25*on + 0.75*off
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("rate not preserved: %v", mean)
	}
}

func TestBurstStateLongRunMeanIsOne(t *testing.T) {
	spec := BurstSpec{MeanOnMin: 8, MeanOffMin: 110, OnFactor: 12}
	rng := rand.New(rand.NewSource(71))
	var s burstState
	var sum float64
	const steps = 200000
	for i := 0; i < steps; i++ {
		sum += s.step(spec, 10, rng)
	}
	if mean := sum / steps; math.Abs(mean-1) > 0.05 {
		t.Errorf("burst long-run mean = %v, want ~1", mean)
	}
}

func TestARStateLongRunMeanIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var a arState
	a.init(0.4, rng)
	var sum float64
	const steps = 200000
	for i := 0; i < steps; i++ {
		sum += a.step(240, 0.4, 10, rng)
	}
	if mean := sum / steps; math.Abs(mean-1) > 0.05 {
		t.Errorf("AR long-run mean = %v, want ~1", mean)
	}
	// Degenerate parameters return identity.
	var b arState
	if got := b.step(0, 0.4, 10, rng); got != 1 {
		t.Errorf("theta=0 should return 1, got %v", got)
	}
	if got := b.step(240, 0, 10, rng); got != 1 {
		t.Errorf("sigma=0 should return 1, got %v", got)
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 1) != 1 || clamp(-5, 0, 1) != 0 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp misbehaves")
	}
}

func TestSwapUnderMemoryPressure(t *testing.T) {
	// A job whose demand exceeds node capacity must show swap traffic;
	// a comfortable job must not.
	pressured := testJob("matpy", 91)
	pressured.MemMul = 5 // 16 GB base * 5 >> 32 GB node
	b := NewBehavior(pressured, "ranger", 16, 32)
	var swapped float64
	for i := 0; i < 100; i++ {
		swapped += b.Step(10).SwapOut
	}
	if swapped == 0 {
		t.Error("over-committed job produced no swap events")
	}

	comfy := testJob("namd", 91)
	bc := NewBehavior(comfy, "ranger", 16, 32)
	swapped = 0
	for i := 0; i < 100; i++ {
		swapped += bc.Step(10).SwapOut
	}
	if swapped != 0 {
		t.Errorf("comfortable job swapped %v pages", swapped)
	}
}

package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// User is one account in the synthetic population. Activity follows a
// heavy-tailed (Pareto) distribution so a handful of users dominate
// node-hours, matching the paper's ~2000-user Ranger population where
// the analyses single out "5 heavy users" (Fig 2) and circled outliers
// (Figs 4-5).
type User struct {
	ID      int
	Name    string
	Science Science
	// Activity is the relative submission intensity; the population is
	// normalized so activities sum to 1.
	Activity float64
	// AppWeights maps app names to selection weights for this user.
	AppWeights map[string]float64
	// IdleMul is a personal inefficiency multiplier (process binding
	// mistakes, undersubscription habits); mostly 1, occasionally large.
	IdleMul float64
	// ScaleMul scales the user's typical job size (nodes).
	ScaleMul float64
}

// PickApp draws an application for a new job of this user.
func (u *User) PickApp(apps []*App, rng *rand.Rand) *App {
	var total float64
	for _, a := range apps {
		total += u.AppWeights[a.Name]
	}
	if total <= 0 {
		return apps[rng.Intn(len(apps))]
	}
	x := rng.Float64() * total
	for _, a := range apps {
		x -= u.AppWeights[a.Name]
		if x < 0 {
			return a
		}
	}
	return apps[len(apps)-1]
}

// PopulationConfig controls user population synthesis.
type PopulationConfig struct {
	Users int
	Seed  int64
	// ParetoAlpha shapes the activity tail; smaller is heavier. The
	// default 1.2 makes the top 5 of 200 users carry roughly a third of
	// the load, consistent with typical HPC center accounting.
	ParetoAlpha float64
	// InefficientFrac is the fraction of users given a large personal
	// idle multiplier — the Fig 4 outlier tail.
	InefficientFrac float64
	Apps            []*App
}

// DefaultPopulationConfig returns a 200-user population over the default
// app catalogue.
func DefaultPopulationConfig(seed int64) PopulationConfig {
	return PopulationConfig{
		Users:           200,
		Seed:            seed,
		ParetoAlpha:     1.2,
		InefficientFrac: 0.06,
		Apps:            DefaultApps(),
	}
}

// NewPopulation synthesizes the user population. Determinism: the same
// config yields byte-identical users.
func NewPopulation(cfg PopulationConfig) []*User {
	if cfg.Users <= 0 {
		return nil
	}
	if cfg.ParetoAlpha <= 0 {
		cfg.ParetoAlpha = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sciences := AllSciences()
	// Science popularity: MD-heavy, as at TACC.
	sciWeights := map[Science]float64{
		MolecularBio: 0.22, Physics: 0.13, Astronomy: 0.09, Materials: 0.13,
		ChemEng: 0.08, Atmospheric: 0.08, EarthSciences: 0.07,
		Chemistry: 0.12, OtherScience: 0.08,
	}

	users := make([]*User, cfg.Users)
	var totalAct float64
	for i := range users {
		sci := drawScience(sciences, sciWeights, rng)
		u := &User{
			ID:      i + 1,
			Name:    fmt.Sprintf("user%04d", i+1),
			Science: sci,
			// Pareto(alpha) activity with unit scale.
			Activity:   math.Pow(1-rng.Float64(), -1/cfg.ParetoAlpha),
			AppWeights: make(map[string]float64),
			IdleMul:    1,
			ScaleMul:   math.Exp(0.4 * rng.NormFloat64()),
		}
		// Users concentrate on 1-3 codes, preferring their own field.
		picks := 1 + rng.Intn(3)
		for p := 0; p < picks; p++ {
			app := pickAppForScience(cfg.Apps, sci, rng)
			u.AppWeights[app.Name] += 1 / float64(p+1)
		}
		// A sliver of everything else so profiles are not degenerate.
		for _, a := range cfg.Apps {
			u.AppWeights[a.Name] += 0.02 * a.Popularity
		}
		if rng.Float64() < cfg.InefficientFrac {
			// An inefficient user: strong personal idle multiplier and a
			// dominant habit of serial farming. These create the Fig 4
			// outliers (circled users at 87-89% idle) whose profiles
			// otherwise look normal (Fig 5).
			u.IdleMul = 3 + rng.Float64()*5
			u.AppWeights["serialfarm"] += 8
		}
		users[i] = u
		totalAct += u.Activity
	}
	for _, u := range users {
		u.Activity /= totalAct
	}
	return users
}

func drawScience(order []Science, weights map[Science]float64, rng *rand.Rand) Science {
	var total float64
	for _, s := range order {
		total += weights[s]
	}
	x := rng.Float64() * total
	for _, s := range order {
		x -= weights[s]
		if x < 0 {
			return s
		}
	}
	return order[len(order)-1]
}

// pickAppForScience prefers apps in the user's field (5x weight).
func pickAppForScience(apps []*App, sci Science, rng *rand.Rand) *App {
	var total float64
	for _, a := range apps {
		w := a.Popularity
		if a.Science == sci {
			w *= 5
		}
		total += w
	}
	x := rng.Float64() * total
	for _, a := range apps {
		w := a.Popularity
		if a.Science == sci {
			w *= 5
		}
		x -= w
		if x < 0 {
			return a
		}
	}
	return apps[len(apps)-1]
}

// TopUsersByActivity returns the n most active users, most active first.
func TopUsersByActivity(users []*User, n int) []*User {
	sorted := append([]*User(nil), users...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Activity > sorted[j].Activity })
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

package workload

import (
	"math"
	"math/rand"
	"testing"

	"supremm/internal/cluster"
)

func TestDefaultAppsCatalogue(t *testing.T) {
	apps := DefaultApps()
	if len(apps) < 10 {
		t.Fatalf("expected a rich catalogue, got %d apps", len(apps))
	}
	var totalPop float64
	names := map[string]bool{}
	for _, a := range apps {
		if names[a.Name] {
			t.Errorf("duplicate app %q", a.Name)
		}
		names[a.Name] = true
		totalPop += a.Popularity
		if a.Profile.CPUIdleFrac < 0 || a.Profile.CPUIdleFrac > 0.98 {
			t.Errorf("%s: idle frac %v out of range", a.Name, a.Profile.CPUIdleFrac)
		}
		if a.MinNodes < 1 || a.MaxNodes < a.MinNodes {
			t.Errorf("%s: bad node bounds [%d,%d]", a.Name, a.MinNodes, a.MaxNodes)
		}
		if a.RuntimeLogMean <= 0 || a.MaxRuntimeMin <= 0 {
			t.Errorf("%s: bad runtime params", a.Name)
		}
		if a.FailureProb+a.TimeoutProb > 0.5 {
			t.Errorf("%s: implausible failure rates", a.Name)
		}
	}
	if math.Abs(totalPop-1) > 0.05 {
		t.Errorf("popularity sum = %v, want ~1", totalPop)
	}
	// The paper's three MD codes must be present.
	for _, name := range []string{"namd", "amber", "gromacs"} {
		if AppByName(apps, name) == nil {
			t.Errorf("missing MD code %q", name)
		}
	}
	if AppByName(apps, "doesnotexist") != nil {
		t.Error("AppByName should return nil for unknown app")
	}
}

func TestAmberLessEfficientThanNAMDAndGromacs(t *testing.T) {
	// Fig 3: "NAMD and GROMACS run more efficiently than AMBER".
	apps := DefaultApps()
	amber := AppByName(apps, "amber").Profile.CPUIdleFrac
	namd := AppByName(apps, "namd").Profile.CPUIdleFrac
	gromacs := AppByName(apps, "gromacs").Profile.CPUIdleFrac
	if !(amber > namd && amber > gromacs) {
		t.Errorf("amber idle %v should exceed namd %v and gromacs %v", amber, namd, gromacs)
	}
}

func TestClusterMods(t *testing.T) {
	apps := DefaultApps()
	gromacs := AppByName(apps, "gromacs")
	namd := AppByName(apps, "namd")
	// NAMD is nearly cluster-invariant (no modifier); GROMACS differs.
	if m := namd.Mod("lonestar4"); m != one() {
		t.Errorf("namd should have identity modifier, got %+v", m)
	}
	if m := gromacs.Mod("lonestar4"); m.FlopsMul <= 1 {
		t.Errorf("gromacs LS4 flops modifier = %v, want > 1", m.FlopsMul)
	}
	if m := gromacs.Mod("ranger"); m != one() {
		t.Errorf("unknown cluster should be identity, got %+v", m)
	}
}

func TestPopulationDeterminism(t *testing.T) {
	a := NewPopulation(DefaultPopulationConfig(42))
	b := NewPopulation(DefaultPopulationConfig(42))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Activity != b[i].Activity ||
			a[i].IdleMul != b[i].IdleMul || a[i].Science != b[i].Science {
			t.Fatalf("user %d differs between identically-seeded populations", i)
		}
	}
	c := NewPopulation(DefaultPopulationConfig(43))
	same := true
	for i := range a {
		if a[i].Activity != c[i].Activity {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical activities")
	}
}

func TestPopulationProperties(t *testing.T) {
	users := NewPopulation(DefaultPopulationConfig(7))
	if len(users) != 200 {
		t.Fatalf("users = %d, want 200", len(users))
	}
	var total float64
	inefficient := 0
	for _, u := range users {
		total += u.Activity
		if u.Activity <= 0 {
			t.Errorf("%s: non-positive activity", u.Name)
		}
		if u.IdleMul > 2 {
			inefficient++
		}
		if len(u.AppWeights) == 0 {
			t.Errorf("%s: no app weights", u.Name)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("activities sum to %v, want 1", total)
	}
	// ~6% inefficient, allow wide slack for a 200-user draw.
	if inefficient < 3 || inefficient > 30 {
		t.Errorf("inefficient users = %d, want roughly 12", inefficient)
	}
	// Heavy tail: top 5 users should hold a disproportionate share.
	top := TopUsersByActivity(users, 5)
	var topShare float64
	for _, u := range top {
		topShare += u.Activity
	}
	if topShare < 0.08 {
		t.Errorf("top-5 activity share = %v, want heavy tail > 0.08", topShare)
	}
	if len(TopUsersByActivity(users, 5000)) != 200 {
		t.Error("TopUsersByActivity should clamp n")
	}
	if NewPopulation(PopulationConfig{}) != nil {
		t.Error("zero users should return nil")
	}
}

func TestPickAppPrefersUserWeights(t *testing.T) {
	apps := DefaultApps()
	u := &User{AppWeights: map[string]float64{"namd": 100}}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		counts[u.PickApp(apps, rng).Name]++
	}
	if counts["namd"] < 450 {
		t.Errorf("namd picked %d/500, want dominant", counts["namd"])
	}
	// Empty weights fall back to uniform.
	u2 := &User{AppWeights: map[string]float64{}}
	if a := u2.PickApp(apps, rng); a == nil {
		t.Error("empty weights should still pick an app")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultGenConfig(cluster.RangerConfig().Scaled(32), 99)
	cfg.HorizonMin = 3 * 24 * 60
	a := NewGenerator(cfg).Generate()
	b := NewGenerator(cfg).Generate()
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].SubmitMin != b[i].SubmitMin ||
			a[i].Nodes != b[i].Nodes || a[i].RuntimeMin != b[i].RuntimeMin ||
			a[i].Seed != b[i].Seed {
			t.Fatalf("job %d differs between identically-seeded runs", i)
		}
	}
}

func TestGeneratorStreamProperties(t *testing.T) {
	cc := cluster.RangerConfig().Scaled(64)
	cfg := DefaultGenConfig(cc, 5)
	cfg.HorizonMin = 14 * 24 * 60
	jobs := NewGenerator(cfg).Generate()
	if len(jobs) < 100 {
		t.Fatalf("only %d jobs generated", len(jobs))
	}
	var prev float64
	var nodeMin float64
	statuses := map[ExitStatus]int{}
	for _, j := range jobs {
		if j.SubmitMin < prev {
			t.Fatal("stream not sorted by submit time")
		}
		prev = j.SubmitMin
		if j.Nodes < 1 || j.Nodes > 512 {
			t.Errorf("job %d nodes = %d", j.ID, j.Nodes)
		}
		if j.RuntimeMin < 1 || j.RuntimeMin > 2880 {
			t.Errorf("job %d runtime = %v", j.ID, j.RuntimeMin)
		}
		if j.User == nil || j.App == nil {
			t.Fatalf("job %d missing user/app", j.ID)
		}
		nodeMin += float64(j.Nodes) * j.RuntimeMin
		statuses[j.Status]++
	}
	// Offered load should be near the utilization target.
	offered := nodeMin / (cfg.HorizonMin * float64(cc.Nodes))
	if offered < 0.8*cfg.UtilizationTarget || offered > 1.3*cfg.UtilizationTarget {
		t.Errorf("offered load = %v, want ~%v", offered, cfg.UtilizationTarget)
	}
	if statuses[Completed] < len(jobs)/2 {
		t.Errorf("completed = %d of %d, too few", statuses[Completed], len(jobs))
	}
	if statuses[Failed] == 0 || statuses[Timeout] == 0 {
		t.Error("expected some failures and timeouts in a large stream")
	}
}

func TestWeightedJobLengthNearPaper(t *testing.T) {
	// §4.3.4: Ranger node-hour-weighted mean job length 549 min,
	// Lonestar4 446 min. Check the generator lands in the right
	// neighbourhood and preserves the ordering.
	measure := func(cc cluster.Config, seed int64) float64 {
		cfg := DefaultGenConfig(cc, seed)
		cfg.HorizonMin = 30 * 24 * 60
		jobs := NewGenerator(cfg).Generate()
		var wsum, w float64
		for _, j := range jobs {
			nh := float64(j.Nodes) * j.RuntimeMin
			wsum += nh * j.RuntimeMin
			w += nh
		}
		return wsum / w
	}
	ranger := measure(cluster.RangerConfig().Scaled(64), 3)
	ls4 := measure(cluster.Lonestar4Config().Scaled(64), 3)
	if ranger < 350 || ranger > 850 {
		t.Errorf("Ranger weighted job length = %v min, want ~549", ranger)
	}
	if ls4 < 280 || ls4 > 700 {
		t.Errorf("LS4 weighted job length = %v min, want ~446", ls4)
	}
	if ls4 >= ranger {
		t.Errorf("LS4 weighted length (%v) should be below Ranger (%v)", ls4, ranger)
	}
}

func TestExitStatusString(t *testing.T) {
	want := map[ExitStatus]string{
		Completed: "COMPLETED", Failed: "FAILED",
		Timeout: "TIMEOUT", NodeFail: "NODE_FAIL",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
	if ExitStatus(42).String() != "EXIT(42)" {
		t.Errorf("unknown status = %q", ExitStatus(42).String())
	}
}

func TestNodeHours(t *testing.T) {
	j := &Job{Nodes: 4, RuntimeMin: 90}
	if got := j.NodeHours(); math.Abs(got-6) > 1e-12 {
		t.Errorf("NodeHours = %v, want 6", got)
	}
}

func TestDiurnalIntensityMeanOne(t *testing.T) {
	// Integrate over a full week at 1-minute resolution: mean ~1.
	var sum, peak float64
	const week = 7 * 24 * 60
	for m := 0; m < week; m++ {
		v := DiurnalIntensity(float64(m))
		sum += v
		if v > peak {
			peak = v
		}
		if v <= 0 {
			t.Fatalf("intensity at %d = %v", m, v)
		}
	}
	if mean := sum / week; math.Abs(mean-1) > 0.01 {
		t.Errorf("mean intensity = %v, want 1", mean)
	}
	if peak > diurnalPeak {
		t.Errorf("peak %v exceeds thinning bound %v", peak, diurnalPeak)
	}
	// Afternoon beats pre-dawn on a weekday.
	if DiurnalIntensity(16*60) <= DiurnalIntensity(4*60) {
		t.Error("4pm should out-submit 4am")
	}
	// Weekday beats weekend at the same hour (minute 0 = Monday 00:00,
	// so day 5 = Saturday).
	if DiurnalIntensity(16*60) <= DiurnalIntensity((5*24+16)*60) {
		t.Error("weekday should out-submit weekend")
	}
}

func TestDiurnalGeneration(t *testing.T) {
	cfg := DefaultGenConfig(cluster.RangerConfig().Scaled(64), 13)
	cfg.HorizonMin = 28 * 24 * 60
	cfg.Diurnal = true
	jobs := NewGenerator(cfg).Generate()
	if len(jobs) < 200 {
		t.Fatalf("only %d jobs", len(jobs))
	}
	// Bucket submissions by hour of day: afternoon hours should beat
	// pre-dawn hours clearly.
	byHour := make([]int, 24)
	for _, j := range jobs {
		byHour[int(math.Mod(j.SubmitMin, 24*60))/60]++
	}
	night := byHour[2] + byHour[3] + byHour[4] + byHour[5]
	afternoon := byHour[13] + byHour[14] + byHour[15] + byHour[16]
	if afternoon < night+night/2 {
		t.Errorf("afternoon %d vs night %d: diurnal shape missing", afternoon, night)
	}
	// The offered load stays near the target despite thinning.
	var nodeMin float64
	for _, j := range jobs {
		nodeMin += float64(j.Nodes) * j.RuntimeMin
	}
	offered := nodeMin / (cfg.HorizonMin * 64)
	if offered < 0.75*cfg.UtilizationTarget || offered > 1.35*cfg.UtilizationTarget {
		t.Errorf("diurnal offered load = %v, want ~%v", offered, cfg.UtilizationTarget)
	}
}

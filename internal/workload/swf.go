package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Standard Workload Format (SWF) support: the community format for
// batch traces (Feitelson's Parallel Workloads Archive). Exporting the
// synthetic stream lets other simulators consume it; importing lets
// this pipeline replay real site traces in place of the generator —
// the "bring your own workload" path for validating the analytics
// against production data.
//
// SWF is one line per job with 18 whitespace-separated fields; -1 marks
// unknown. The fields this model round-trips:
//
//	 1 job number          2 submit time (s)     3 wait time (s)
//	 4 run time (s)        5 allocated procs     8 requested procs
//	10 requested time (s) 11 status (0/1/5)     12 user id
//	14 app id
//
// Remaining fields are emitted as -1. Status mapping: 1 = completed,
// 0 = failed, 5 = cancelled (we map TIMEOUT and NODE_FAIL here, the
// closest SWF notion).

// WriteSWF emits jobs in SWF, sorted by submit time. coresPerNode
// converts node counts to processor counts (SWF speaks processors).
// The app id space is assigned by first appearance and the mapping is
// written as header comments, as SWF conversions conventionally do.
func WriteSWF(w io.Writer, jobs []*Job, coresPerNode int) error {
	bw := bufio.NewWriter(w)
	sorted := append([]*Job(nil), jobs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].SubmitMin < sorted[j].SubmitMin })

	appIDs := make(map[string]int)
	var appOrder []string
	userIDs := make(map[string]int)
	for _, j := range sorted {
		if _, ok := appIDs[j.App.Name]; !ok {
			appIDs[j.App.Name] = len(appIDs) + 1
			appOrder = append(appOrder, j.App.Name)
		}
		if _, ok := userIDs[j.User.Name]; !ok {
			userIDs[j.User.Name] = len(userIDs) + 1
		}
	}
	fmt.Fprintf(bw, "; SWF export, %d jobs\n", len(sorted))
	fmt.Fprintf(bw, "; MaxProcs: computed from node counts x %d cores/node\n", coresPerNode)
	for _, name := range appOrder {
		fmt.Fprintf(bw, "; App: %d %s\n", appIDs[name], name)
	}
	for _, j := range sorted {
		status := 1
		switch j.Status {
		case Failed:
			status = 0
		case Timeout, NodeFail:
			status = 5
		}
		procs := j.Nodes * coresPerNode
		// Wait time is a scheduling outcome, unknown at generation: -1.
		fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d -1 %d %d %d -1 %d -1 -1 -1 -1\n",
			j.ID,
			int64(j.SubmitMin*60),
			int64(j.RuntimeMin*60),
			procs,
			procs,
			int64(j.ReqMin*60),
			status,
			userIDs[j.User.Name],
			appIDs[j.App.Name],
		)
	}
	return bw.Flush()
}

// ReadSWF parses an SWF stream into a job stream runnable by the sim
// engine. Processor counts are converted back to whole nodes (rounded
// up). Users and apps referenced by numeric id are materialized as
// synthetic users and app archetypes: app ids are mapped round-robin
// onto the catalogue unless the header carries "; App: <id> <name>"
// comments naming catalogue entries.
func ReadSWF(r io.Reader, coresPerNode int, apps []*App, seed int64) ([]*Job, error) {
	if coresPerNode <= 0 {
		return nil, fmt.Errorf("swf: coresPerNode must be positive")
	}
	if len(apps) == 0 {
		return nil, fmt.Errorf("swf: need an app catalogue")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	appByID := make(map[int]*App)
	users := make(map[int]*User)
	var jobs []*Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			// Recognize app-mapping comments.
			f := strings.Fields(strings.TrimPrefix(line, ";"))
			if len(f) == 3 && f[0] == "App:" {
				id, err := strconv.Atoi(f[1])
				if err == nil {
					if a := AppByName(apps, f[2]); a != nil {
						appByID[id] = a
					}
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 18 {
			return nil, fmt.Errorf("swf line %d: %d fields, want 18", lineNo, len(f))
		}
		fv := make([]int64, 18)
		for i, s := range f {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("swf line %d field %d: %q", lineNo, i+1, s)
			}
			fv[i] = v
		}
		id, submit, runSec := fv[0], fv[1], fv[3]
		procs := fv[4]
		if procs <= 0 {
			procs = fv[7] // fall back to requested
		}
		if id <= 0 || runSec <= 0 || procs <= 0 {
			continue // unusable record; SWF traces carry plenty
		}
		nodes := int((procs + int64(coresPerNode) - 1) / int64(coresPerNode))
		reqSec := fv[9]
		if reqSec <= 0 {
			reqSec = runSec * 2
		}
		appID := int(fv[13])
		app := appByID[appID]
		if app == nil {
			app = apps[((appID%len(apps))+len(apps))%len(apps)]
			appByID[appID] = app
		}
		userID := int(fv[11])
		u := users[userID]
		if u == nil {
			u = &User{
				ID:      userID,
				Name:    fmt.Sprintf("swfuser%04d", userID),
				Science: app.Science,
				IdleMul: 1, ScaleMul: 1,
				AppWeights: map[string]float64{app.Name: 1},
			}
			users[userID] = u
		}
		status := Completed
		switch fv[10] {
		case 0:
			status = Failed
		case 5:
			status = Timeout
		}
		jobs = append(jobs, &Job{
			ID:         id,
			User:       u,
			App:        app,
			Nodes:      nodes,
			SubmitMin:  float64(submit) / 60,
			RuntimeMin: float64(runSec) / 60,
			ReqMin:     float64(reqSec) / 60,
			Status:     status,
			IdleMul:    1, FlopsMul: 1, MemMul: 1, IOMul: 1, NetMul: 1,
			Seed: seed ^ id*0x9e37,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitMin < jobs[j].SubmitMin })
	return jobs, nil
}

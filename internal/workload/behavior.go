package workload

import (
	"math"
	"math/rand"
)

// NodeUsage is the resource consumption of one job on one of its nodes
// over one simulation step. The sim engine translates this into procfs
// counter increments; the analytics layer never sees it directly.
type NodeUsage struct {
	// Core-time fractions over the step; User+Sys+Iowait+Idle == 1.
	UserFrac, SysFrac, IowaitFrac, IdleFrac float64

	// Flops is total floating-point operations on the node this step.
	Flops float64

	// MemUsedKB is the instantaneous memory gauge (working set + page
	// cache attributed to the job).
	MemUsedKB uint64
	// BuffCacheKB is the portion of MemUsedKB that is buffers/cache.
	BuffCacheKB uint64

	// Lustre bytes this step, split by mount.
	ScratchWriteB, WorkWriteB, ShareWriteB, ReadB float64

	// Fabric and network bytes this step.
	IBTxB, IBRxB     float64
	LnetTxB, LnetRxB float64
	EthTxB, EthRxB   float64

	// Block device sectors (512B) this step.
	BlockRdSectors, BlockWrSectors float64

	// Paging events this step.
	PgPgInKB, PgPgOutKB float64
	PgFault, PgMajFault float64
	// Swap events this step: nonzero only under memory pressure (the
	// demand exceeded the capacity clamp), the §3 "swapping/paging
	// activities" signal that precedes OOM kills.
	SwapIn, SwapOut float64

	// Hardware counter events this step (beyond FLOPS).
	MemAccess, CacheFills, L1Hits, NumaTraffic float64
}

// Behavior is a job's runtime resource process: the AR(1) channels and
// IO burst modulator evolved step by step while the job runs. One
// Behavior serves all nodes of the job (SPMD codes behave coherently
// across nodes); per-node jitter is added on top.
type Behavior struct {
	job *Job
	rng *rand.Rand

	arCompute arState // modulates flops and cpu busy
	arMem     arState
	arIO      arState
	arNet     arState
	arLnet    arState
	burst     burstState

	// effective steady-state profile after user/job multipliers and
	// cluster modifiers are applied
	idle     float64
	sys      float64
	iowait   float64
	flopsGF  float64 // per busy core
	memGB    float64
	memCapGB float64
	scratch  float64 // MB/s
	work     float64
	share    float64
	read     float64
	ibTx     float64
	lnetTx   float64
	ethTx    float64
	perFlop  struct{ mem, fill, l1 float64 }

	cores int

	// memSpike is the per-job transient allocation multiplier drawn from
	// MemPeakFactor; rare spike episodes decouple mem_used_max from
	// mem_used without whitening the system memory series.
	memSpike          float64
	memSpikeRemainMin float64

	// Peak tracking for mem_used_max.
	peakMemKB uint64
}

// NewBehavior instantiates the runtime process for a job on a cluster
// with the given per-node core count and memory capacity.
func NewBehavior(j *Job, clusterName string, cores int, memCapGB float64) *Behavior {
	rng := rand.New(rand.NewSource(j.Seed))
	p := j.App.Profile
	m := j.App.Mod(clusterName)

	b := &Behavior{
		job:      j,
		rng:      rng,
		cores:    cores,
		memCapGB: memCapGB,
	}
	b.idle = clamp(p.CPUIdleFrac*j.IdleMul*m.IdleMul, 0, 0.98)
	b.sys = p.CPUSysFrac
	b.iowait = p.IowaitFrac
	b.flopsGF = p.FlopsPerCoreGF * j.FlopsMul * m.FlopsMul
	b.memGB = p.MemUsedGB * j.MemMul * m.MemMul
	b.scratch = p.ScratchWriteMBps * j.IOMul * m.IOMul
	b.work = p.WorkWriteMBps * j.IOMul * m.IOMul
	b.share = p.ShareWriteMBps * j.IOMul * m.IOMul
	b.read = p.ReadMBps * j.IOMul * m.IOMul
	b.ibTx = p.IBTxMBps * j.NetMul * m.NetMul
	b.lnetTx = p.LnetTxMBps * j.IOMul * m.IOMul
	b.ethTx = p.EthTxMBps
	b.perFlop.mem = p.MemAccessPerFlop
	b.perFlop.fill = p.CacheFillPerFlop
	b.perFlop.l1 = p.L1HitPerFlop

	b.memSpike = 1 + (p.MemPeakFactor-1)*(0.5+1.5*rng.Float64())

	d := j.App.Dyn
	b.arCompute.init(d.Sigma, rng)
	b.arMem.init(d.Sigma*0.35, rng)
	b.arIO.init(d.Sigma*1.2, rng)
	b.arNet.init(d.Sigma*1.5, rng)
	b.arLnet.init(d.Sigma, rng)
	return b
}

// PeakMemKB reports the maximum per-node memory gauge observed so far
// (the ingredient of mem_used_max).
func (b *Behavior) PeakMemKB() uint64 { return b.peakMemKB }

// Step advances the job's process by dtMin minutes and returns the
// per-node usage for that interval. All nodes of the job receive this
// usage with small per-node jitter applied by the caller if desired.
func (b *Behavior) Step(dtMin float64) NodeUsage {
	d := b.job.App.Dyn
	fCompute := b.arCompute.step(d.Theta, d.Sigma, dtMin, b.rng)
	fMem := b.arMem.step(d.Theta*2.5, d.Sigma*0.35, dtMin, b.rng)
	fIO := b.arIO.step(d.Theta*0.3, d.Sigma*1.2, dtMin, b.rng)
	// Fabric traffic carries more fast noise than compute or memory:
	// message bursts decorrelate in tens of minutes, matching Table 1's
	// ib_tx column sitting between the write and mem/flops columns.
	fNet := b.arNet.step(d.Theta*0.08, d.Sigma*1.5, dtMin, b.rng)
	fLnet := b.arLnet.step(d.Theta*0.8, d.Sigma, dtMin, b.rng)
	fBurst := b.burst.step(d.IOBurst, dtMin, b.rng)

	dtSec := dtMin * 60

	var u NodeUsage
	// CPU split: the idle fraction wanders mildly with compute noise
	// (inverse relationship: more compute pressure, less idle).
	idle := clamp(b.idle*(2-fCompute), 0.005, 0.985)
	u.SysFrac = clamp(b.sys, 0, 0.5)
	u.IowaitFrac = clamp(b.iowait*fIO, 0, 0.3)
	if idle+u.SysFrac+u.IowaitFrac > 0.99 {
		idle = 0.99 - u.SysFrac - u.IowaitFrac
		if idle < 0 {
			idle = 0
		}
	}
	u.IdleFrac = idle
	u.UserFrac = 1 - u.IdleFrac - u.SysFrac - u.IowaitFrac

	busyCores := float64(b.cores) * (1 - u.IdleFrac)
	u.Flops = b.flopsGF * 1e9 * busyCores * fCompute * dtSec

	memGB := b.memGB * fMem
	// Transient allocation episodes (restart buffers, analysis phases):
	// rare and lasting tens of minutes, they move the job's observed
	// peak without moving its mean much, and stay temporally correlated
	// so the system memory series keeps its Table 1 persistence.
	if b.memSpikeRemainMin <= 0 && b.rng.Float64() < 0.02 {
		b.memSpikeRemainMin = 20 + b.rng.ExpFloat64()*25
	}
	if b.memSpikeRemainMin > 0 {
		memGB *= b.memSpike
		b.memSpikeRemainMin -= dtMin
	}
	demandGB := memGB
	memGB = math.Min(memGB, 0.95*b.memCapGB)
	if demandGB > memGB {
		// The working set did not fit: the kernel swaps the excess. The
		// event volume tracks the overshoot.
		overKB := (demandGB - memGB) * 1024 * 1024
		u.SwapOut = overKB / 4 // 4 KB pages
		u.SwapIn = u.SwapOut * 0.6
	}
	u.MemUsedKB = uint64(memGB * 1024 * 1024)
	u.BuffCacheKB = uint64(0.3 * float64(u.MemUsedKB))
	if u.MemUsedKB > b.peakMemKB {
		b.peakMemKB = u.MemUsedKB
	}

	mb := 1e6 * dtSec
	u.ScratchWriteB = b.scratch * fIO * fBurst * mb
	u.WorkWriteB = b.work * fIO * fBurst * mb
	u.ShareWriteB = b.share * fIO * fBurst * mb
	u.ReadB = b.read * fIO * mb

	u.IBTxB = b.ibTx * fNet * mb
	u.IBRxB = u.IBTxB * (0.9 + 0.2*b.rng.Float64())
	// Lustre networking follows its own channel plus contributions from
	// reads and a slice of the writes (metadata and RPC overhead ride on
	// lnet regardless of which mount the data targets).
	u.LnetTxB = b.lnetTx*fLnet*mb + 0.25*u.ReadB + 0.05*(u.ScratchWriteB+u.WorkWriteB)
	u.LnetRxB = u.ReadB * 1.02
	u.EthTxB = b.ethTx * mb
	u.EthRxB = u.EthTxB * (0.8 + 0.4*b.rng.Float64())

	u.BlockWrSectors = (u.ScratchWriteB + u.WorkWriteB) * 0.02 / 512 // local spill
	u.BlockRdSectors = u.ReadB * 0.01 / 512

	u.PgPgInKB = u.ReadB / 1024 * 0.1
	u.PgPgOutKB = (u.ScratchWriteB + u.WorkWriteB) / 1024 * 0.1
	u.PgFault = busyCores * 1000 * dtSec
	u.PgMajFault = u.PgFault * 1e-4

	u.MemAccess = u.Flops * b.perFlop.mem
	u.CacheFills = u.Flops * b.perFlop.fill
	u.L1Hits = u.Flops * b.perFlop.l1
	u.NumaTraffic = u.MemAccess * 0.1
	return u
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"supremm/internal/cluster"
)

func TestSWFRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig(cluster.RangerConfig().Scaled(64), 5)
	cfg.HorizonMin = 7 * 24 * 60
	jobs := NewGenerator(cfg).Generate()
	if len(jobs) < 50 {
		t.Fatalf("only %d jobs", len(jobs))
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, 16); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf, 16, DefaultApps(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	byID := map[int64]*Job{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for _, j := range back {
		orig := byID[j.ID]
		if orig == nil {
			t.Fatalf("job %d not in original", j.ID)
		}
		if j.Nodes != orig.Nodes {
			t.Errorf("job %d nodes %d vs %d", j.ID, j.Nodes, orig.Nodes)
		}
		// Times quantized to whole seconds.
		if math.Abs(j.SubmitMin-orig.SubmitMin) > 1.0/60+1e-9 {
			t.Errorf("job %d submit %v vs %v", j.ID, j.SubmitMin, orig.SubmitMin)
		}
		if math.Abs(j.RuntimeMin-orig.RuntimeMin) > 1.0/60+1e-9 {
			t.Errorf("job %d runtime %v vs %v", j.ID, j.RuntimeMin, orig.RuntimeMin)
		}
		// The header app mapping restores the archetype by name.
		if j.App.Name != orig.App.Name {
			t.Errorf("job %d app %q vs %q", j.ID, j.App.Name, orig.App.Name)
		}
		// Status survives modulo the SWF 3-state vocabulary.
		switch orig.Status {
		case Completed:
			if j.Status != Completed {
				t.Errorf("job %d status %v", j.ID, j.Status)
			}
		case Failed:
			if j.Status != Failed {
				t.Errorf("job %d status %v", j.ID, j.Status)
			}
		default: // Timeout/NodeFail -> 5 -> Timeout
			if j.Status != Timeout {
				t.Errorf("job %d status %v", j.ID, j.Status)
			}
		}
	}
}

func TestReadSWFForeignTrace(t *testing.T) {
	// A hand-written trace without app-mapping comments: app ids map
	// round-robin onto the catalogue, unusable rows are skipped.
	trace := `; Comment line
; UnixStartTime: 0
1 0 10 3600 32 -1 -1 32 -1 7200 1 3 -1 2 -1 -1 -1 -1
2 60 -1 1800 -1 -1 -1 16 -1 -1 0 4 -1 5 -1 -1 -1 -1
3 120 -1 -1 16 -1 -1 16 -1 -1 1 3 -1 2 -1 -1 -1 -1
4 180 -1 600 8 -1 -1 8 -1 1200 5 9 -1 -7 -1 -1 -1 -1
`
	jobs, err := ReadSWF(strings.NewReader(trace), 16, DefaultApps(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Row 3 has runtime -1: skipped.
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	j1 := jobs[0]
	if j1.ID != 1 || j1.Nodes != 2 || j1.RuntimeMin != 60 {
		t.Errorf("job 1: %+v", j1)
	}
	if j1.ReqMin != 120 {
		t.Errorf("job 1 req = %v", j1.ReqMin)
	}
	// Row 2: procs from requested field; status 0 -> Failed.
	if jobs[1].Nodes != 1 || jobs[1].Status != Failed {
		t.Errorf("job 2: %+v", jobs[1])
	}
	// Row 4: status 5 -> Timeout; negative app id handled.
	if jobs[2].Status != Timeout || jobs[2].App == nil {
		t.Errorf("job 4: %+v", jobs[2])
	}
	// Same user id shares the user object.
	if jobs[0].User != nil && jobs[0].User.Name == "" {
		t.Error("user not materialized")
	}
}

func TestReadSWFErrors(t *testing.T) {
	apps := DefaultApps()
	if _, err := ReadSWF(strings.NewReader("1 2 3\n"), 16, apps, 1); err == nil {
		t.Error("short line should error")
	}
	if _, err := ReadSWF(strings.NewReader("1 x 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18\n"), 16, apps, 1); err == nil {
		t.Error("non-numeric field should error")
	}
	if _, err := ReadSWF(strings.NewReader(""), 0, apps, 1); err == nil {
		t.Error("bad coresPerNode should error")
	}
	if _, err := ReadSWF(strings.NewReader(""), 16, nil, 1); err == nil {
		t.Error("empty catalogue should error")
	}
	empty, err := ReadSWF(strings.NewReader("; only comments\n"), 16, apps, 1)
	if err != nil || len(empty) != 0 {
		t.Errorf("comment-only trace: %v, %v", empty, err)
	}
}

func TestSWFStreamRunsThroughSim(t *testing.T) {
	// The imported trace must be schedulable: submit-sorted, positive
	// geometry. (The full engine replay is exercised in the sim tests
	// via Config.Jobs.)
	trace := "1 0 -1 3600 16 -1 -1 16 -1 7200 1 1 -1 1 -1 -1 -1 -1\n" +
		"2 300 -1 1800 32 -1 -1 32 -1 3600 1 2 -1 2 -1 -1 -1 -1\n"
	jobs, err := ReadSWF(strings.NewReader(trace), 16, DefaultApps(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, j := range jobs {
		if j.SubmitMin < prev {
			t.Fatal("not sorted")
		}
		prev = j.SubmitMin
		if j.Nodes < 1 || j.RuntimeMin <= 0 || j.ReqMin <= 0 {
			t.Errorf("bad geometry: %+v", j)
		}
		if j.Seed == 0 {
			t.Error("seed not derived")
		}
	}
}

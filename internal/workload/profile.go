// Package workload generates the synthetic job mix that stands in for the
// 18 months of real XSEDE workload the paper analyzed (521,010 Ranger
// jobs, 337,011 Lonestar4 jobs). It models a user population with
// heavy-tailed activity, application archetypes patterned on the codes
// the paper names (NAMD, AMBER, GROMACS and the rest of a typical XSEDE
// mix), a Poisson arrival process, and per-job resource behaviour with
// AR(1) intra-job dynamics and bursty on/off IO.
//
// Calibration targets come from the paper's published aggregates: mean
// CPU efficiency ~90% on Ranger and ~85% on Lonestar4 with a tail of
// users above 80% idle (Fig 4), node-hour-weighted mean job length 549
// and 446 minutes (§4.3.4), cluster FLOPS far below peak (Figs 9-10),
// and mean memory below half of capacity on Ranger but ~60% on
// Lonestar4 (Figs 11-12).
package workload

import (
	"math"
	"math/rand"
)

// ResourceProfile is the steady-state per-node resource demand of an
// application archetype while it runs. Rates are per node unless noted.
type ResourceProfile struct {
	// CPUIdleFrac is the fraction of allocated core-time left idle
	// (undersubscribed cores, load imbalance, IO waits).
	CPUIdleFrac float64
	// CPUSysFrac is the fraction of core-time in the kernel.
	CPUSysFrac float64
	// IowaitFrac is the fraction of core-time blocked on IO (carved out
	// of the idle fraction when accounting, as the kernel does).
	IowaitFrac float64
	// FlopsPerCoreGF is the floating-point rate per *busy* core, GFLOP/s.
	FlopsPerCoreGF float64
	// MemUsedGB is the steady working set per node, including page cache.
	MemUsedGB float64
	// MemPeakFactor scales MemUsedGB to the job's peak (mem_used_max).
	MemPeakFactor float64
	// ScratchWriteMBps, WorkWriteMBps, ShareWriteMBps are Lustre write
	// rates per node, MB/s, time-averaged over bursts.
	ScratchWriteMBps float64
	WorkWriteMBps    float64
	ShareWriteMBps   float64
	// ReadMBps is the Lustre read rate per node.
	ReadMBps float64
	// IBTxMBps is MPI fabric transmit per node, MB/s.
	IBTxMBps float64
	// LnetTxMBps is Lustre-networking transmit per node (tracks IO).
	LnetTxMBps float64
	// EthTxMBps is management-network traffic (small).
	EthTxMBps float64
	// MemAccessPerFlop and CacheFillPerFlop shape the extra AMD PMC
	// events; L1HitPerFlop shapes the Intel one.
	MemAccessPerFlop float64
	CacheFillPerFlop float64
	L1HitPerFlop     float64
}

// Dynamics controls how a job's resource use evolves around its
// steady-state profile while it runs.
type Dynamics struct {
	// Theta is the AR(1) relaxation time, in minutes, of the
	// multiplicative log-noise applied to compute rates. Long thetas
	// make within-job usage persistent, which (with job turnover) is
	// what produces the paper's Table 1 persistence curves.
	Theta float64
	// Sigma is the stationary standard deviation of the log-noise.
	Sigma float64
	// IOBurst describes the on/off process modulating writes: IO is
	// emitted in bursts (checkpoint dumps), which makes io_scratch_write
	// the least persistent metric in Table 1.
	IOBurst BurstSpec
}

// BurstSpec is a two-state Markov on/off modulator.
type BurstSpec struct {
	// MeanOnMin and MeanOffMin are the mean dwell times in minutes.
	MeanOnMin  float64
	MeanOffMin float64
	// OnFactor is the rate multiplier while "on"; the off-state rate is
	// scaled so the duty-cycle-weighted mean equals the profile rate.
	OnFactor float64
}

// DutyCycle returns the fraction of time the modulator spends on.
func (b BurstSpec) DutyCycle() float64 {
	if b.MeanOnMin <= 0 {
		return 0
	}
	return b.MeanOnMin / (b.MeanOnMin + b.MeanOffMin)
}

// offFactor solves duty*on + (1-duty)*off = 1 for the off-state
// multiplier, clamped at zero (pure bursts when OnFactor is large).
func (b BurstSpec) offFactor() float64 {
	d := b.DutyCycle()
	if d >= 1 || d <= 0 {
		return 1
	}
	off := (1 - d*b.OnFactor) / (1 - d)
	if off < 0 {
		return 0
	}
	return off
}

// burstState tracks the modulator through time for one job.
type burstState struct {
	on        bool
	remainMin float64
}

// step advances the modulator dt minutes and returns the average rate
// multiplier over the interval (integrating across state flips).
func (s *burstState) step(b BurstSpec, dtMin float64, rng *rand.Rand) float64 {
	if b.MeanOnMin <= 0 || b.OnFactor <= 1 {
		return 1
	}
	onF, offF := b.OnFactor, b.offFactor()
	var weighted float64
	left := dtMin
	for left > 0 {
		if s.remainMin <= 0 {
			// Draw a fresh exponential dwell for the current state.
			if s.on {
				s.remainMin = expDraw(rng, b.MeanOnMin)
			} else {
				s.remainMin = expDraw(rng, b.MeanOffMin)
			}
		}
		span := math.Min(left, s.remainMin)
		f := offF
		if s.on {
			f = onF
		}
		weighted += f * span
		s.remainMin -= span
		left -= span
		if s.remainMin <= 0 {
			s.on = !s.on
		}
	}
	return weighted / dtMin
}

func expDraw(rng *rand.Rand, mean float64) float64 {
	v := rng.ExpFloat64() * mean
	if v < 1e-6 {
		v = 1e-6
	}
	return v
}

// arState is one AR(1) log-noise channel.
type arState struct{ x float64 }

// step advances the Ornstein-Uhlenbeck log-noise by dt minutes and
// returns the multiplicative factor exp(x).
func (a *arState) step(thetaMin, sigma, dtMin float64, rng *rand.Rand) float64 {
	if thetaMin <= 0 || sigma <= 0 {
		return 1
	}
	phi := math.Exp(-dtMin / thetaMin)
	// Stationary discretization: x' = phi*x + sqrt(1-phi^2)*sigma*N(0,1).
	a.x = phi*a.x + math.Sqrt(1-phi*phi)*sigma*rng.NormFloat64()
	return math.Exp(a.x - sigma*sigma/2) // mean-one lognormal
}

// init draws the stationary distribution so jobs start in equilibrium.
func (a *arState) init(sigma float64, rng *rand.Rand) {
	a.x = sigma * rng.NormFloat64()
}

package workload

// Science labels the "parent science" categories used for the Fig 7a
// breakdown. The set mirrors the NSF discipline areas XDMoD reports.
type Science string

// Parent science categories.
const (
	MolecularBio  Science = "Molecular Biosciences"
	Physics       Science = "Physics"
	Astronomy     Science = "Astronomical Sciences"
	Materials     Science = "Materials Research"
	ChemEng       Science = "Chemical, Thermal Systems"
	Atmospheric   Science = "Atmospheric Sciences"
	EarthSciences Science = "Earth Sciences"
	Chemistry     Science = "Chemistry"
	OtherScience  Science = "Other"
)

// AllSciences returns the category list in report order.
func AllSciences() []Science {
	return []Science{
		MolecularBio, Physics, Astronomy, Materials, ChemEng,
		Atmospheric, EarthSciences, Chemistry, OtherScience,
	}
}

// ProfileMod scales selected profile dimensions for one cluster,
// expressing that the same code behaves differently across
// architectures (the paper's Fig 3 observation that GROMACS and AMBER
// differ between Ranger and Lonestar4 while NAMD is similar).
type ProfileMod struct {
	IdleMul  float64
	FlopsMul float64
	MemMul   float64
	IOMul    float64
	NetMul   float64
}

// one is the identity modifier.
func one() ProfileMod { return ProfileMod{1, 1, 1, 1, 1} }

// App is an application archetype: a named code with a science area, a
// steady-state resource profile, intra-job dynamics, and distributions
// for job geometry (nodes, runtime).
type App struct {
	Name    string
	Science Science
	Profile ResourceProfile
	Dyn     Dynamics

	// Node-count distribution: lognormal rounded to ints in
	// [MinNodes, MaxNodes].
	NodesLogMean  float64 // ln of median node count
	NodesLogSigma float64
	MinNodes      int
	MaxNodes      int

	// Runtime distribution, minutes, lognormal truncated at MaxRuntime.
	RuntimeLogMean  float64 // ln of median runtime in minutes
	RuntimeLogSigma float64
	MaxRuntimeMin   float64

	// Popularity weights the archetype in the submission mix.
	Popularity float64

	// Failure model: probabilities of abnormal termination.
	FailureProb float64
	TimeoutProb float64

	// ClusterMod holds per-cluster profile modifiers keyed by cluster
	// name; absent clusters use the identity.
	ClusterMod map[string]ProfileMod
}

// Mod returns the profile modifier for a cluster name.
func (a *App) Mod(clusterName string) ProfileMod {
	if m, ok := a.ClusterMod[clusterName]; ok {
		return m
	}
	return one()
}

// mdDyn is the dynamics shared by the well-behaved MPI codes: slowly
// wandering compute rates with hour-scale memory, and checkpoint-style
// IO bursts every few hours.
func mdDyn() Dynamics {
	return Dynamics{
		Theta: 700, Sigma: 0.35,
		IOBurst: BurstSpec{MeanOnMin: 45, MeanOffMin: 620, OnFactor: 12},
	}
}

// DefaultApps returns the archetype catalogue. Rates are calibrated so a
// Ranger-like cluster reproduces the paper's aggregates: weighted CPU
// idle ~10%, mean FLOPS well under 4% of peak, mean memory under half of
// the 32 GB nodes (see package comment). The three MD codes the paper
// compares in Fig 3 are first; AMBER is deliberately the least efficient
// of the three (higher idle, lower flops), NAMD is nearly
// cluster-invariant, and GROMACS/AMBER carry cluster modifiers.
func DefaultApps() []*App {
	return []*App{
		{
			Name: "namd", Science: MolecularBio,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.06, CPUSysFrac: 0.04, IowaitFrac: 0.005,
				FlopsPerCoreGF: 0.45, MemUsedGB: 6, MemPeakFactor: 1.75,
				ScratchWriteMBps: 0.5, WorkWriteMBps: 0.05,
				ReadMBps: 0.4, IBTxMBps: 30, LnetTxMBps: 1.0, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.6, CacheFillPerFlop: 0.02, L1HitPerFlop: 1.4,
			},
			Dyn:          mdDyn(),
			NodesLogMean: 2.2, NodesLogSigma: 0.9, MinNodes: 1, MaxNodes: 256,
			RuntimeLogMean: 5.1, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.14,
			FailureProb: 0.03, TimeoutProb: 0.05,
		},
		{
			Name: "amber", Science: MolecularBio,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.24, CPUSysFrac: 0.05, IowaitFrac: 0.01,
				FlopsPerCoreGF: 0.22, MemUsedGB: 5, MemPeakFactor: 1.80,
				ScratchWriteMBps: 0.35, WorkWriteMBps: 0.04,
				ReadMBps: 0.3, IBTxMBps: 12, LnetTxMBps: 0.7, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.8, CacheFillPerFlop: 0.03, L1HitPerFlop: 1.2,
			},
			Dyn:          mdDyn(),
			NodesLogMean: 1.6, NodesLogSigma: 0.8, MinNodes: 1, MaxNodes: 128,
			RuntimeLogMean: 5.2, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.09,
			FailureProb: 0.05, TimeoutProb: 0.06,
			ClusterMod: map[string]ProfileMod{
				// On Lonestar4 AMBER idles a bit less but computes no
				// faster per core (Fig 3: different shape across clusters).
				"lonestar4": {IdleMul: 0.8, FlopsMul: 1.1, MemMul: 1.2, IOMul: 1.0, NetMul: 0.9},
			},
		},
		{
			Name: "gromacs", Science: MolecularBio,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.08, CPUSysFrac: 0.04, IowaitFrac: 0.005,
				FlopsPerCoreGF: 0.45, MemUsedGB: 4, MemPeakFactor: 1.70,
				ScratchWriteMBps: 0.4, WorkWriteMBps: 0.05,
				ReadMBps: 0.3, IBTxMBps: 20, LnetTxMBps: 0.8, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.5, CacheFillPerFlop: 0.02, L1HitPerFlop: 1.5,
			},
			Dyn:          mdDyn(),
			NodesLogMean: 1.8, NodesLogSigma: 0.8, MinNodes: 1, MaxNodes: 128,
			RuntimeLogMean: 4.9, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.10,
			FailureProb: 0.03, TimeoutProb: 0.04,
			ClusterMod: map[string]ProfileMod{
				// GROMACS exploits the Westmere SIMD units well: more
				// flops, less idle on Lonestar4.
				"lonestar4": {IdleMul: 0.7, FlopsMul: 1.5, MemMul: 1.1, IOMul: 1.2, NetMul: 1.3},
			},
		},
		{
			Name: "wrf", Science: Atmospheric,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.13, CPUSysFrac: 0.05, IowaitFrac: 0.03,
				FlopsPerCoreGF: 0.30, MemUsedGB: 10, MemPeakFactor: 1.80,
				ScratchWriteMBps: 3.0, WorkWriteMBps: 0.2,
				ReadMBps: 1.5, IBTxMBps: 15, LnetTxMBps: 4.5, EthTxMBps: 0.03,
				MemAccessPerFlop: 0.9, CacheFillPerFlop: 0.04, L1HitPerFlop: 1.1,
			},
			Dyn: Dynamics{
				Theta: 500, Sigma: 0.4,
				IOBurst: BurstSpec{MeanOnMin: 40, MeanOffMin: 360, OnFactor: 9},
			},
			NodesLogMean: 2.6, NodesLogSigma: 0.7, MinNodes: 2, MaxNodes: 256,
			RuntimeLogMean: 5.0, RuntimeLogSigma: 0.8, MaxRuntimeMin: 2880,
			Popularity:  0.08,
			FailureProb: 0.06, TimeoutProb: 0.07,
		},
		{
			Name: "milc", Science: Physics,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.04, CPUSysFrac: 0.03, IowaitFrac: 0.003,
				FlopsPerCoreGF: 0.70, MemUsedGB: 7, MemPeakFactor: 1.65,
				ScratchWriteMBps: 0.8, WorkWriteMBps: 0.05,
				ReadMBps: 0.5, IBTxMBps: 45, LnetTxMBps: 1.2, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.4, CacheFillPerFlop: 0.015, L1HitPerFlop: 1.6,
			},
			Dyn: Dynamics{
				Theta: 900, Sigma: 0.25,
				IOBurst: BurstSpec{MeanOnMin: 50, MeanOffMin: 850, OnFactor: 15},
			},
			NodesLogMean: 3.2, NodesLogSigma: 0.8, MinNodes: 4, MaxNodes: 512,
			RuntimeLogMean: 5.4, RuntimeLogSigma: 0.8, MaxRuntimeMin: 2880,
			Popularity:  0.08,
			FailureProb: 0.04, TimeoutProb: 0.06,
		},
		{
			Name: "enzo", Science: Astronomy,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.16, CPUSysFrac: 0.06, IowaitFrac: 0.05,
				FlopsPerCoreGF: 0.35, MemUsedGB: 12, MemPeakFactor: 1.90,
				ScratchWriteMBps: 5.0, WorkWriteMBps: 0.3,
				ReadMBps: 2.5, IBTxMBps: 18, LnetTxMBps: 7.5, EthTxMBps: 0.03,
				MemAccessPerFlop: 1.0, CacheFillPerFlop: 0.05, L1HitPerFlop: 1.0,
			},
			Dyn: Dynamics{
				Theta: 450, Sigma: 0.45,
				IOBurst: BurstSpec{MeanOnMin: 35, MeanOffMin: 280, OnFactor: 8},
			},
			NodesLogMean: 2.9, NodesLogSigma: 0.8, MinNodes: 2, MaxNodes: 512,
			RuntimeLogMean: 5.3, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.06,
			FailureProb: 0.07, TimeoutProb: 0.08,
		},
		{
			Name: "vasp", Science: Materials,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.10, CPUSysFrac: 0.04, IowaitFrac: 0.01,
				FlopsPerCoreGF: 0.50, MemUsedGB: 14, MemPeakFactor: 1.85,
				ScratchWriteMBps: 0.9, WorkWriteMBps: 0.1,
				ReadMBps: 0.6, IBTxMBps: 25, LnetTxMBps: 1.4, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.9, CacheFillPerFlop: 0.04, L1HitPerFlop: 1.2,
			},
			Dyn:          mdDyn(),
			NodesLogMean: 1.9, NodesLogSigma: 0.7, MinNodes: 1, MaxNodes: 64,
			RuntimeLogMean: 5.2, RuntimeLogSigma: 0.8, MaxRuntimeMin: 2880,
			Popularity:  0.10,
			FailureProb: 0.05, TimeoutProb: 0.07,
		},
		{
			Name: "openfoam", Science: ChemEng,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.14, CPUSysFrac: 0.05, IowaitFrac: 0.02,
				FlopsPerCoreGF: 0.20, MemUsedGB: 8, MemPeakFactor: 1.80,
				ScratchWriteMBps: 1.5, WorkWriteMBps: 0.15,
				ReadMBps: 0.8, IBTxMBps: 14, LnetTxMBps: 2.2, EthTxMBps: 0.03,
				MemAccessPerFlop: 1.1, CacheFillPerFlop: 0.05, L1HitPerFlop: 0.9,
			},
			Dyn: Dynamics{
				Theta: 600, Sigma: 0.4,
				IOBurst: BurstSpec{MeanOnMin: 40, MeanOffMin: 420, OnFactor: 10},
			},
			NodesLogMean: 2.0, NodesLogSigma: 0.8, MinNodes: 1, MaxNodes: 128,
			RuntimeLogMean: 5.0, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.07,
			FailureProb: 0.06, TimeoutProb: 0.06,
		},
		{
			Name: "espresso", Science: Chemistry,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.11, CPUSysFrac: 0.04, IowaitFrac: 0.01,
				FlopsPerCoreGF: 0.50, MemUsedGB: 9, MemPeakFactor: 1.80,
				ScratchWriteMBps: 0.7, WorkWriteMBps: 0.08,
				ReadMBps: 0.5, IBTxMBps: 22, LnetTxMBps: 1.2, EthTxMBps: 0.02,
				MemAccessPerFlop: 0.7, CacheFillPerFlop: 0.03, L1HitPerFlop: 1.3,
			},
			Dyn:          mdDyn(),
			NodesLogMean: 1.8, NodesLogSigma: 0.7, MinNodes: 1, MaxNodes: 64,
			RuntimeLogMean: 5.1, RuntimeLogSigma: 0.8, MaxRuntimeMin: 2880,
			Popularity:  0.08,
			FailureProb: 0.04, TimeoutProb: 0.05,
		},
		{
			Name: "seismic3d", Science: EarthSciences,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.12, CPUSysFrac: 0.05, IowaitFrac: 0.02,
				FlopsPerCoreGF: 0.40, MemUsedGB: 11, MemPeakFactor: 1.80,
				ScratchWriteMBps: 2.2, WorkWriteMBps: 0.2,
				ReadMBps: 1.8, IBTxMBps: 20, LnetTxMBps: 3.8, EthTxMBps: 0.03,
				MemAccessPerFlop: 0.8, CacheFillPerFlop: 0.04, L1HitPerFlop: 1.1,
			},
			Dyn: Dynamics{
				Theta: 650, Sigma: 0.35,
				IOBurst: BurstSpec{MeanOnMin: 38, MeanOffMin: 380, OnFactor: 9},
			},
			NodesLogMean: 2.4, NodesLogSigma: 0.7, MinNodes: 2, MaxNodes: 256,
			RuntimeLogMean: 5.1, RuntimeLogSigma: 0.8, MaxRuntimeMin: 2880,
			Popularity:  0.05,
			FailureProb: 0.05, TimeoutProb: 0.06,
		},
		{
			// Undersubscribed serial farming: one or two ranks on a
			// full node. This archetype produces the paper's "wasted
			// node-hours" tail (Fig 4) — nearly all core-time idle with
			// otherwise unremarkable resource use (Fig 5).
			Name: "serialfarm", Science: OtherScience,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.91, CPUSysFrac: 0.02, IowaitFrac: 0.01,
				FlopsPerCoreGF: 0.30, MemUsedGB: 3.5, MemPeakFactor: 1.90,
				ScratchWriteMBps: 0.3, WorkWriteMBps: 0.05,
				ReadMBps: 0.4, IBTxMBps: 0.4, LnetTxMBps: 0.6, EthTxMBps: 0.05,
				MemAccessPerFlop: 1.0, CacheFillPerFlop: 0.05, L1HitPerFlop: 1.0,
			},
			Dyn: Dynamics{
				Theta: 350, Sigma: 0.5,
				IOBurst: BurstSpec{MeanOnMin: 25, MeanOffMin: 280, OnFactor: 7},
			},
			NodesLogMean: 1.0, NodesLogSigma: 0.9, MinNodes: 1, MaxNodes: 64,
			RuntimeLogMean: 5.3, RuntimeLogSigma: 0.9, MaxRuntimeMin: 2880,
			Popularity:  0.05,
			FailureProb: 0.08, TimeoutProb: 0.10,
		},
		{
			// Data staging / post-processing pipelines: IO-dominated
			// with a high idle fraction (the paper's "user 3" shape in
			// Fig 2 — jobs dominated by IO).
			Name: "datamover", Science: OtherScience,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.72, CPUSysFrac: 0.08, IowaitFrac: 0.15,
				FlopsPerCoreGF: 0.02, MemUsedGB: 4, MemPeakFactor: 2.00,
				ScratchWriteMBps: 22, WorkWriteMBps: 2.5,
				ReadMBps: 30, IBTxMBps: 2, LnetTxMBps: 50, EthTxMBps: 0.1,
				MemAccessPerFlop: 5, CacheFillPerFlop: 0.2, L1HitPerFlop: 0.5,
			},
			Dyn: Dynamics{
				Theta: 180, Sigma: 0.6,
				IOBurst: BurstSpec{MeanOnMin: 45, MeanOffMin: 95, OnFactor: 3},
			},
			NodesLogMean: 0.7, NodesLogSigma: 0.7, MinNodes: 1, MaxNodes: 16,
			RuntimeLogMean: 4.5, RuntimeLogSigma: 0.9, MaxRuntimeMin: 1440,
			Popularity:  0.04,
			FailureProb: 0.07, TimeoutProb: 0.05,
		},
		{
			// Single-node interactive analytics (high memory, mostly
			// idle cores).
			Name: "matpy", Science: OtherScience,
			Profile: ResourceProfile{
				CPUIdleFrac: 0.60, CPUSysFrac: 0.04, IowaitFrac: 0.03,
				FlopsPerCoreGF: 0.12, MemUsedGB: 16, MemPeakFactor: 2.00,
				ScratchWriteMBps: 0.6, WorkWriteMBps: 0.3,
				ReadMBps: 1.2, IBTxMBps: 0.2, LnetTxMBps: 1.5, EthTxMBps: 0.1,
				MemAccessPerFlop: 2, CacheFillPerFlop: 0.1, L1HitPerFlop: 0.8,
			},
			Dyn: Dynamics{
				Theta: 250, Sigma: 0.55,
				IOBurst: BurstSpec{MeanOnMin: 30, MeanOffMin: 300, OnFactor: 6},
			},
			NodesLogMean: 0.1, NodesLogSigma: 0.4, MinNodes: 1, MaxNodes: 4,
			RuntimeLogMean: 4.4, RuntimeLogSigma: 1.0, MaxRuntimeMin: 1440,
			Popularity:  0.06,
			FailureProb: 0.06, TimeoutProb: 0.04,
		},
	}
}

// AppByName returns the archetype with the given name from apps, or nil.
func AppByName(apps []*App, name string) *App {
	for _, a := range apps {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Package cluster models the hardware of a Linux HPC cluster at the
// resolution the TACC_Stats tool chain measures it: nodes composed of
// sockets and cores, per-socket memory, block devices, network devices,
// InfiniBand host channel adapters, and Lustre filesystem mounts.
//
// Two presets mirror the systems studied in the paper (§4.1): Ranger
// (3936 nodes, four quad-core 2.3 GHz AMD Opteron sockets, 32 GB) and
// Lonestar4 (1088 nodes, two hexa-core 3.33 GHz Intel Xeon 5680 sockets,
// 24 GB). Experiments typically run scaled-down instances built with
// Scaled(); the per-node shapes are preserved exactly.
package cluster

import (
	"fmt"
)

// Microarch identifies a processor microarchitecture. It determines which
// hardware performance-counter events TACC_Stats programs (§3): FLOPS,
// memory accesses, data-cache fills and SMP/NUMA traffic on AMD Opteron;
// FLOPS, SMP/NUMA traffic and L1 data-cache hits on Intel
// Nehalem/Westmere.
type Microarch int

const (
	// AMDOpteron is the Barcelona-class quad-core Opteron in Ranger.
	AMDOpteron Microarch = iota
	// IntelWestmere is the Xeon 5680 hexa-core part in Lonestar4.
	IntelWestmere
	// IntelSandyBridge is the Xeon E5-2680 in Stampede (§5: "TACC_Stats
	// will soon be deployed on TACC's Stampede").
	IntelSandyBridge
)

// String implements fmt.Stringer.
func (m Microarch) String() string {
	switch m {
	case AMDOpteron:
		return "amd64_opteron"
	case IntelWestmere:
		return "intel_westmere"
	case IntelSandyBridge:
		return "intel_sandybridge"
	default:
		return fmt.Sprintf("microarch(%d)", int(m))
	}
}

// PMCEvents returns the hardware performance-counter events TACC_Stats
// programs for the microarchitecture, in programming order.
func (m Microarch) PMCEvents() []string {
	switch m {
	case AMDOpteron:
		return []string{"FLOPS", "MEM_ACCESS", "DCACHE_FILLS", "NUMA_TRAFFIC"}
	case IntelWestmere, IntelSandyBridge:
		return []string{"FLOPS", "NUMA_TRAFFIC", "L1D_HITS"}
	default:
		return nil
	}
}

// LustreMount describes one Lustre filesystem mount on a node. The paper
// distinguishes scratch (periodically purged, hundreds-of-TB quota) from
// work (non-purged, 200 GB quota) and share mounts (§4.2, Fig 7c).
type LustreMount struct {
	Name    string // "scratch", "work", "share"
	Purged  bool   // scratch is purged periodically
	QuotaGB int64  // per-user quota
}

// Config describes a cluster's hardware shape.
type Config struct {
	Name            string
	Nodes           int
	SocketsPerNode  int
	CoresPerSocket  int
	ClockGHz        float64
	MemPerNodeGB    float64
	Arch            Microarch
	LustreMounts    []LustreMount
	PanasasMounts   []string // panfs mounts (§3 lists Panasas coverage)
	HasNFS          bool     // Lonestar4 mounts NFS over Ethernet
	IBLinkGbps      float64
	FlopsPerCycle   float64 // peak SSE flops per core cycle
	BlockDevices    []string
	EthernetDevices []string
}

// CoresPerNode returns sockets*cores.
func (c Config) CoresPerNode() int { return c.SocketsPerNode * c.CoresPerSocket }

// TotalCores returns the whole-cluster core count.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode() }

// PeakNodeGFlops returns the per-node peak SSE floating-point rate in
// GFLOP/s implied by the clock, core count and issue width.
func (c Config) PeakNodeGFlops() float64 {
	return c.ClockGHz * float64(c.CoresPerNode()) * c.FlopsPerCycle
}

// PeakTFlops returns the cluster peak in TFLOP/s.
func (c Config) PeakTFlops() float64 {
	return c.PeakNodeGFlops() * float64(c.Nodes) / 1000
}

// Scaled returns a copy of the config with the node count replaced, used
// to run laptop-scale experiments with the paper's per-node shapes.
func (c Config) Scaled(nodes int) Config {
	s := c
	s.Nodes = nodes
	return s
}

// Validate reports configuration errors that would make the simulation
// meaningless.
func (c Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cluster: config needs a name")
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %s: nodes must be positive, got %d", c.Name, c.Nodes)
	case c.SocketsPerNode <= 0 || c.CoresPerSocket <= 0:
		return fmt.Errorf("cluster %s: invalid topology %dx%d", c.Name, c.SocketsPerNode, c.CoresPerSocket)
	case c.MemPerNodeGB <= 0:
		return fmt.Errorf("cluster %s: memory must be positive", c.Name)
	case c.ClockGHz <= 0:
		return fmt.Errorf("cluster %s: clock must be positive", c.Name)
	case len(c.LustreMounts) == 0:
		return fmt.Errorf("cluster %s: at least one Lustre mount required", c.Name)
	}
	return nil
}

// RangerConfig returns the Ranger preset: 3936 nodes, 4 sockets of
// quad-core 2.3 GHz AMD Opteron (16 cores), 32 GB, Lustre scratch/share/
// work, InfiniBand. The paper benchmarks Ranger's peak at 579 TF; with
// 4-wide SSE the model gives 2.3*16*4*3936/1000 ≈ 579 TF, matching.
func RangerConfig() Config {
	return Config{
		Name:           "ranger",
		Nodes:          3936,
		SocketsPerNode: 4,
		CoresPerSocket: 4,
		ClockGHz:       2.3,
		MemPerNodeGB:   32,
		Arch:           AMDOpteron,
		LustreMounts: []LustreMount{
			{Name: "scratch", Purged: true, QuotaGB: 400 << 10},
			{Name: "share", Purged: false, QuotaGB: 1 << 10},
			{Name: "work", Purged: false, QuotaGB: 200},
		},
		HasNFS:          false,
		IBLinkGbps:      16, // SDR 4x IB fabric effective
		FlopsPerCycle:   4,
		BlockDevices:    []string{"sda"},
		EthernetDevices: []string{"eth0"},
	}
}

// Lonestar4Config returns the Lonestar4 preset: 1088 Dell PowerEdge M610
// nodes, two hexa-core 3.33 GHz Xeon 5680 sockets (12 cores), 24 GB,
// Lustre + NFS, InfiniBand.
func Lonestar4Config() Config {
	return Config{
		Name:           "lonestar4",
		Nodes:          1088,
		SocketsPerNode: 2,
		CoresPerSocket: 6,
		ClockGHz:       3.33,
		MemPerNodeGB:   24,
		Arch:           IntelWestmere,
		LustreMounts: []LustreMount{
			{Name: "scratch", Purged: true, QuotaGB: 250 << 10},
			{Name: "work", Purged: false, QuotaGB: 200},
		},
		HasNFS:          true,
		IBLinkGbps:      32, // QDR 4x
		FlopsPerCycle:   4,
		BlockDevices:    []string{"sda"},
		EthernetDevices: []string{"eth0", "eth1"},
	}
}

// StampedeConfig returns the Stampede preset the paper's §5 announces
// TACC_Stats deployment on: 6400 Dell C8220 nodes with two 8-core
// 2.7 GHz Xeon E5-2680 sockets and 32 GB (the Phi coprocessors are out
// of TACC_Stats' scope and out of this model's). AVX doubles the
// per-cycle SSE width, which is why the model uses 8 flops/cycle.
func StampedeConfig() Config {
	return Config{
		Name:           "stampede",
		Nodes:          6400,
		SocketsPerNode: 2,
		CoresPerSocket: 8,
		ClockGHz:       2.7,
		MemPerNodeGB:   32,
		Arch:           IntelSandyBridge,
		LustreMounts: []LustreMount{
			{Name: "scratch", Purged: true, QuotaGB: 850 << 10},
			{Name: "work", Purged: false, QuotaGB: 400},
		},
		HasNFS:          true,
		IBLinkGbps:      56, // FDR 4x
		FlopsPerCycle:   8,
		BlockDevices:    []string{"sda"},
		EthernetDevices: []string{"eth0"},
	}
}

// NodeState enumerates the lifecycle of a node in the simulation.
type NodeState int

const (
	// NodeIdle means powered on and available for scheduling.
	NodeIdle NodeState = iota
	// NodeBusy means running (part of) a job.
	NodeBusy
	// NodeDown means unavailable: a failure or a scheduled shutdown.
	NodeDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case NodeIdle:
		return "idle"
	case NodeBusy:
		return "busy"
	case NodeDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Node is one compute node's identity and scheduling state. Counter
// state lives in procfs.Snapshot; this type intentionally carries only
// what the scheduler and simulator need.
type Node struct {
	Index    int    // 0-based node index
	Hostname string // e.g. "c101-304.ranger"
	State    NodeState
	JobID    int64 // running job, 0 when idle/down
}

// Cluster is a set of nodes sharing a Config.
type Cluster struct {
	Config Config
	Nodes  []*Node
}

// New builds a cluster with hostnames derived from the config name. It
// returns an error if the config is invalid.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Config: cfg, Nodes: make([]*Node, cfg.Nodes)}
	for i := range c.Nodes {
		c.Nodes[i] = &Node{
			Index:    i,
			Hostname: fmt.Sprintf("c%03d-%03d.%s", i/100, i%100, cfg.Name),
		}
	}
	return c, nil
}

// ActiveNodes returns how many nodes are not down (the series of Fig 8).
func (c *Cluster) ActiveNodes() int {
	n := 0
	for _, node := range c.Nodes {
		if node.State != NodeDown {
			n++
		}
	}
	return n
}

// IdleNodes returns the nodes currently available for scheduling.
func (c *Cluster) IdleNodes() []*Node {
	var out []*Node
	for _, node := range c.Nodes {
		if node.State == NodeIdle {
			out = append(out, node)
		}
	}
	return out
}

// BusyNodes returns how many nodes are running jobs.
func (c *Cluster) BusyNodes() int {
	n := 0
	for _, node := range c.Nodes {
		if node.State == NodeBusy {
			n++
		}
	}
	return n
}

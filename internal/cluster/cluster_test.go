package cluster

import (
	"math"
	"strings"
	"testing"
)

func TestRangerConfigMatchesPaper(t *testing.T) {
	cfg := RangerConfig()
	if cfg.Nodes != 3936 {
		t.Errorf("Ranger nodes = %d, want 3936", cfg.Nodes)
	}
	if got := cfg.CoresPerNode(); got != 16 {
		t.Errorf("Ranger cores/node = %d, want 16", got)
	}
	if cfg.MemPerNodeGB != 32 {
		t.Errorf("Ranger mem = %v, want 32", cfg.MemPerNodeGB)
	}
	// The paper quotes a benchmarked peak of 579 TF.
	if peak := cfg.PeakTFlops(); math.Abs(peak-579) > 1 {
		t.Errorf("Ranger peak = %v TF, want ~579", peak)
	}
	if cfg.Arch != AMDOpteron {
		t.Errorf("Ranger arch = %v", cfg.Arch)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Ranger config invalid: %v", err)
	}
}

func TestLonestar4ConfigMatchesPaper(t *testing.T) {
	cfg := Lonestar4Config()
	if cfg.Nodes != 1088 {
		t.Errorf("LS4 nodes = %d, want 1088", cfg.Nodes)
	}
	if got := cfg.CoresPerNode(); got != 12 {
		t.Errorf("LS4 cores/node = %d, want 12", got)
	}
	if cfg.MemPerNodeGB != 24 {
		t.Errorf("LS4 mem = %v, want 24", cfg.MemPerNodeGB)
	}
	if !cfg.HasNFS {
		t.Error("LS4 should mount NFS")
	}
	if cfg.Arch != IntelWestmere {
		t.Errorf("LS4 arch = %v", cfg.Arch)
	}
}

func TestPMCEventsPerArch(t *testing.T) {
	amd := AMDOpteron.PMCEvents()
	if len(amd) != 4 || amd[0] != "FLOPS" {
		t.Errorf("AMD events = %v", amd)
	}
	intel := IntelWestmere.PMCEvents()
	if len(intel) != 3 || intel[2] != "L1D_HITS" {
		t.Errorf("Intel events = %v", intel)
	}
	if Microarch(99).PMCEvents() != nil {
		t.Error("unknown arch should have no events")
	}
}

func TestMicroarchString(t *testing.T) {
	if AMDOpteron.String() != "amd64_opteron" {
		t.Errorf("got %q", AMDOpteron.String())
	}
	if IntelWestmere.String() != "intel_westmere" {
		t.Errorf("got %q", IntelWestmere.String())
	}
	if !strings.Contains(Microarch(7).String(), "7") {
		t.Errorf("unknown arch string: %q", Microarch(7).String())
	}
}

func TestScaledPreservesShape(t *testing.T) {
	cfg := RangerConfig().Scaled(128)
	if cfg.Nodes != 128 {
		t.Errorf("scaled nodes = %d", cfg.Nodes)
	}
	if cfg.CoresPerNode() != 16 || cfg.MemPerNodeGB != 32 {
		t.Error("scaling must not change per-node shape")
	}
	// Peak scales linearly with nodes.
	full := RangerConfig()
	wantPeak := full.PeakTFlops() * 128 / 3936
	if got := cfg.PeakTFlops(); math.Abs(got-wantPeak) > 1e-9 {
		t.Errorf("scaled peak = %v, want %v", got, wantPeak)
	}
}

func TestValidate(t *testing.T) {
	good := RangerConfig()
	bad := []Config{
		{},
		func() Config { c := good; c.Nodes = 0; return c }(),
		func() Config { c := good; c.SocketsPerNode = 0; return c }(),
		func() Config { c := good; c.MemPerNodeGB = 0; return c }(),
		func() Config { c := good; c.ClockGHz = -1; return c }(),
		func() Config { c := good; c.LustreMounts = nil; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewCluster(t *testing.T) {
	c, err := New(RangerConfig().Scaled(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 10 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	seen := map[string]bool{}
	for i, n := range c.Nodes {
		if n.Index != i {
			t.Errorf("node %d index = %d", i, n.Index)
		}
		if seen[n.Hostname] {
			t.Errorf("duplicate hostname %q", n.Hostname)
		}
		seen[n.Hostname] = true
		if !strings.HasSuffix(n.Hostname, ".ranger") {
			t.Errorf("hostname %q missing cluster suffix", n.Hostname)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestNodeCounts(t *testing.T) {
	c, err := New(Lonestar4Config().Scaled(6))
	if err != nil {
		t.Fatal(err)
	}
	if c.ActiveNodes() != 6 || c.BusyNodes() != 0 || len(c.IdleNodes()) != 6 {
		t.Fatalf("fresh cluster counts wrong: active=%d busy=%d idle=%d",
			c.ActiveNodes(), c.BusyNodes(), len(c.IdleNodes()))
	}
	c.Nodes[0].State = NodeBusy
	c.Nodes[1].State = NodeDown
	if c.ActiveNodes() != 5 {
		t.Errorf("active = %d, want 5", c.ActiveNodes())
	}
	if c.BusyNodes() != 1 {
		t.Errorf("busy = %d, want 1", c.BusyNodes())
	}
	if got := len(c.IdleNodes()); got != 4 {
		t.Errorf("idle = %d, want 4", got)
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{NodeIdle: "idle", NodeBusy: "busy", NodeDown: "down"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if !strings.Contains(NodeState(9).String(), "9") {
		t.Errorf("unknown state string: %q", NodeState(9).String())
	}
}

func TestStampedeConfigMatchesSection5(t *testing.T) {
	cfg := StampedeConfig()
	if cfg.Nodes != 6400 || cfg.CoresPerNode() != 16 {
		t.Errorf("Stampede shape: %d nodes x %d cores", cfg.Nodes, cfg.CoresPerNode())
	}
	if cfg.Arch != IntelSandyBridge {
		t.Errorf("arch = %v", cfg.Arch)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Base-CPU peak ~2.2 PF (the machine's headline 10 PF included the
	// Phi coprocessors, out of scope here).
	if peak := cfg.PeakTFlops(); math.Abs(peak-2212) > 10 {
		t.Errorf("peak = %v TF, want ~2212", peak)
	}
	if IntelSandyBridge.String() != "intel_sandybridge" {
		t.Errorf("arch string = %q", IntelSandyBridge.String())
	}
	if got := IntelSandyBridge.PMCEvents(); len(got) != 3 {
		t.Errorf("PMC events = %v", got)
	}
}

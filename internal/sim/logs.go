package sim

import (
	"fmt"
	"time"

	"supremm/internal/eventlog"
)

// initRationalizer wires the engine's log path: kernel, Lustre and OOM
// traffic is generated in its native raw format and normalized through
// the eventlog rationalizer with a live job lookup — the same path a
// production deployment runs (§1.3). Batch-system events carry their
// job IDs natively and are emitted directly.
func (e *engine) initRationalizer() {
	e.hostIndex = make(map[string]int, len(e.clu.Nodes))
	for i, n := range e.clu.Nodes {
		e.hostIndex[n.Hostname] = i
	}
	lookup := func(host string, unix int64) int64 {
		idx, ok := e.hostIndex[host]
		if !ok {
			return 0
		}
		return e.clu.Nodes[idx].JobID
	}
	e.rat = eventlog.NewRationalizer(lookup)
	e.rat.Year = time.Unix(e.cfg.EpochUnix, 0).UTC().Year()
}

// emitRaw pushes one raw log line through the rationalizer.
func (e *engine) emitRaw(raw, host string, nowMin float64) {
	if e.rat == nil {
		e.initRationalizer()
	}
	e.emit(e.rat.Rationalize(raw, host, e.unix(nowMin)))
}

// rawSoftLockup renders a kernel printk line; the timestamp rides in
// the printk seconds field against the epoch boot time, exactly the
// arithmetic the rationalizer must undo.
func (e *engine) rawSoftLockup(nowMin float64) string {
	secs := nowMin * 60
	return fmt.Sprintf("<1>[%12.3f] BUG: soft lockup - CPU#%d stuck for 67s!",
		secs, e.rng.Intn(e.cfg.Cluster.CoresPerNode()))
}

// rawLustreTimeout renders a LustreError line.
func rawLustreTimeout() string {
	return "LustreError: 11234:0:(client.c:1060:ptlrpc_expire_one_request()) @@@ Request sent has timed out for slow reply"
}

// rawOOM renders an OOM-killer line.
func rawOOM(app string, pid int) string {
	return fmt.Sprintf("Out of memory: Kill process %d (%s) score 905 or sacrifice child", pid, app)
}

// emitRationalized must see the raw line *before* the scheduler clears
// the node's job assignment, so the lookup attributes it correctly.
// The callers in faults.go are ordered accordingly.

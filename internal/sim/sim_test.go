package sim

import (
	"math"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/store"
)

// smallConfig is a quick run: 32 Ranger-like nodes, 7 days.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig(cluster.RangerConfig().Scaled(32), seed)
	cfg.DurationMin = 7 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	return cfg
}

func TestRunProducesJobs(t *testing.T) {
	res, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsSubmitted < 50 {
		t.Fatalf("submitted = %d, too few", res.JobsSubmitted)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no job records")
	}
	if res.JobsCompleted != res.Store.Len() {
		t.Errorf("completed %d != store %d", res.JobsCompleted, res.Store.Len())
	}
	if len(res.Acct) == 0 {
		t.Fatal("no accounting records")
	}
	if len(res.Lariat) != res.Store.Len() {
		t.Errorf("lariat %d records, store %d", len(res.Lariat), res.Store.Len())
	}
	// 7 days at 10-minute sampling = 1008 system samples.
	if len(res.Series) != 1008 {
		t.Errorf("series samples = %d, want 1008", len(res.Series))
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("store lengths differ: %d vs %d", a.Store.Len(), b.Store.Len())
	}
	for i := 0; i < a.Store.Len(); i++ {
		if a.Store.Record(i) != b.Store.Record(i) {
			t.Fatalf("record %d differs between identically-seeded runs", i)
		}
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			t.Fatalf("series sample %d differs", i)
		}
	}
}

func TestJobRecordsConsistent(t *testing.T) {
	res, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.Store.Len(); i++ {
		r := res.Store.Record(i)
		if r.Start < r.Submit {
			t.Errorf("job %d started before submit", r.JobID)
		}
		if r.End < r.Start {
			t.Errorf("job %d ended before start", r.JobID)
		}
		if r.Samples > 0 {
			sum := r.CPUIdleFrac + r.CPUUserFrac + r.CPUSysFrac
			if sum < 0.6 || sum > 1.01 {
				t.Errorf("job %d cpu fracs sum to %v", r.JobID, sum)
			}
			if r.MemUsedMaxGB < r.MemUsedGB-1e-9 {
				t.Errorf("job %d mem max %v < mean %v", r.JobID, r.MemUsedMaxGB, r.MemUsedGB)
			}
			if r.MemUsedGB > 32*0.96 {
				t.Errorf("job %d mem %v exceeds capacity clamp", r.JobID, r.MemUsedGB)
			}
			if r.FlopsGF < 0 {
				t.Errorf("job %d negative flops", r.JobID)
			}
		}
	}
}

func TestSystemSeriesSane(t *testing.T) {
	res, err := Run(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.RangerConfig().Scaled(32)
	peakTF := cfg.PeakTFlops()
	var busySum float64
	for _, s := range res.Series {
		if s.ActiveNodes != 32 {
			t.Fatalf("active = %d with no outages", s.ActiveNodes)
		}
		if s.BusyNodes < 0 || s.BusyNodes > 32 {
			t.Fatalf("busy = %d", s.BusyNodes)
		}
		if s.TotalTFlops < 0 || s.TotalTFlops > peakTF {
			t.Fatalf("tflops = %v beyond peak %v", s.TotalTFlops, peakTF)
		}
		if s.MemPerNode < 0 || s.MemPerNode > 32 {
			t.Fatalf("mem/node = %v", s.MemPerNode)
		}
		busySum += float64(s.BusyNodes)
	}
	// The over-requested system should keep most nodes busy.
	util := busySum / float64(len(res.Series)) / 32
	if util < 0.6 {
		t.Errorf("mean utilization = %v, want the loaded regime", util)
	}
}

func TestShutdownsVisibleInSeries(t *testing.T) {
	cfg := smallConfig(9)
	cfg.DurationMin = 10 * 24 * 60
	cfg.Shutdowns = []Shutdown{{StartMin: 3 * 24 * 60, DurationMin: 12 * 60}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	minActive := 1 << 30
	for _, s := range res.Series {
		if s.ActiveNodes < minActive {
			minActive = s.ActiveNodes
		}
	}
	if minActive != 0 {
		t.Errorf("min active nodes = %d, want 0 during shutdown (Fig 8)", minActive)
	}
	// The cluster recovers afterwards.
	last := res.Series[len(res.Series)-1]
	if last.ActiveNodes != 32 {
		t.Errorf("final active = %d, want full recovery", last.ActiveNodes)
	}
	// Shutdown produces NODE_FAIL accounting and log events.
	foundMaint := false
	for _, ev := range res.Events {
		if ev.Component == "sge" && ev.Severity == 1 {
			foundMaint = true
		}
	}
	if !foundMaint {
		t.Error("no maintenance events logged")
	}
}

func TestNodeFailuresKillJobs(t *testing.T) {
	cfg := smallConfig(11)
	cfg.NodeMTBFHours = 100 // aggressively failing hardware
	cfg.NodeRepairMin = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodeFails := 0
	for i := 0; i < res.Store.Len(); i++ {
		if res.Store.Record(i).Status == "NODE_FAIL" {
			nodeFails++
		}
	}
	if nodeFails == 0 {
		t.Error("expected NODE_FAIL jobs with MTBF=100h")
	}
	lockups := 0
	for _, ev := range res.Events {
		if ev.Component == "kernel" {
			lockups++
		}
	}
	if lockups == 0 {
		t.Error("expected soft lockup events")
	}
}

func TestEfficiencyNearPaperTargets(t *testing.T) {
	// Fig 4: Ranger ~90% efficiency (10% idle), Lonestar4 ~85%.
	runIdle := func(cc cluster.Config, seed int64) float64 {
		cfg := DefaultConfig(cc, seed)
		cfg.DurationMin = 14 * 24 * 60
		cfg.Shutdowns = nil
		cfg.NodeMTBFHours = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Store.Aggregate(store.MetricCPUIdle, store.Filter{MinSamples: 1}).Mean
	}
	ranger := runIdle(cluster.RangerConfig().Scaled(48), 21)
	ls4 := runIdle(cluster.Lonestar4Config().Scaled(48), 21)
	if ranger < 0.05 || ranger > 0.20 {
		t.Errorf("Ranger weighted idle = %v, want ~0.10", ranger)
	}
	if ls4 < 0.08 || ls4 > 0.28 {
		t.Errorf("LS4 weighted idle = %v, want ~0.15", ls4)
	}
	if ls4 <= ranger {
		t.Errorf("LS4 idle (%v) should exceed Ranger (%v)", ls4, ranger)
	}
}

func TestFlopsFractionOfPeak(t *testing.T) {
	// Figs 9-10: delivered FLOPS are a few percent of peak.
	cfg := smallConfig(31)
	cfg.DurationMin = 14 * 24 * 60
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := store.SeriesSummary(res.Series, "total_tflops").Mean
	peak := cluster.RangerConfig().Scaled(32).PeakTFlops()
	frac := mean / peak
	if frac < 0.005 || frac > 0.15 {
		t.Errorf("flops fraction of peak = %v, want a few percent", frac)
	}
}

func TestMemoryFractionOfCapacity(t *testing.T) {
	// Figs 11-12: Ranger mean memory under half of 32 GB; LS4 fuller.
	run := func(cc cluster.Config) float64 {
		cfg := DefaultConfig(cc, 41)
		cfg.DurationMin = 14 * 24 * 60
		cfg.Shutdowns = nil
		cfg.NodeMTBFHours = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return store.SeriesSummary(res.Series, "mem_used").Mean / cc.MemPerNodeGB
	}
	ranger := run(cluster.RangerConfig().Scaled(48))
	ls4 := run(cluster.Lonestar4Config().Scaled(48))
	if ranger > 0.5 {
		t.Errorf("Ranger mem fraction = %v, want < 0.5", ranger)
	}
	if ls4 <= ranger {
		t.Errorf("LS4 mem fraction (%v) should exceed Ranger (%v)", ls4, ranger)
	}
	if math.IsNaN(ranger) || math.IsNaN(ls4) {
		t.Fatal("NaN memory fractions")
	}
}

func TestDiurnalWorkloadThroughEngine(t *testing.T) {
	cfg := smallConfig(61)
	cfg.Gen.Diurnal = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsSubmitted < 50 {
		t.Fatalf("submitted = %d", res.JobsSubmitted)
	}
	// The queue smooths the diurnal arrivals: utilization stays high.
	var busy float64
	for _, s := range res.Series {
		busy += float64(s.BusyNodes)
	}
	if util := busy / float64(len(res.Series)) / 32; util < 0.5 {
		t.Errorf("diurnal utilization = %v", util)
	}
}

func TestStampedePresetThroughEngine(t *testing.T) {
	cfg := DefaultConfig(cluster.StampedeConfig().Scaled(24), 71)
	cfg.DurationMin = 5 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no stampede jobs")
	}
	// Sandy Bridge reports through the Intel PMC path: flops exist.
	agg := res.Store.Aggregate(store.MetricFlops, store.Filter{MinSamples: 1})
	if !(agg.Mean > 0) {
		t.Errorf("stampede flops = %v", agg.Mean)
	}
}

package sim

import (
	"fmt"

	"supremm/internal/cluster"
	"supremm/internal/procfs"
	"supremm/internal/sched"
	"supremm/internal/workload"
)

// applyUsageToNodes translates one job-step's per-node usage into
// counter increments on every allocated node's synthetic /proc snapshot
// (raw mode). The mapping mirrors how a real kernel would account the
// same activity: scheduler centiseconds per core, gauges per socket,
// event bytes per device.
func (e *engine) applyUsageToNodes(rj *sched.RunningJob, u workload.NodeUsage, dtMin float64) {
	cfg := e.cfg.Cluster
	cores := cfg.CoresPerNode()
	sockets := cfg.SocketsPerNode
	dtCS := dtMin * 60 * 100 // centiseconds per core

	for _, n := range rj.Nodes {
		snap := e.snaps[n.Index]

		for c := 0; c < cores; c++ {
			dev := fmt.Sprintf("%d", c)
			snap.Add(procfs.TypeCPU, dev, "user", uint64(u.UserFrac*dtCS))
			snap.Add(procfs.TypeCPU, dev, "system", uint64(u.SysFrac*dtCS))
			snap.Add(procfs.TypeCPU, dev, "idle", uint64(u.IdleFrac*dtCS))
			snap.Add(procfs.TypeCPU, dev, "iowait", uint64(u.IowaitFrac*dtCS))
		}

		perSocketKB := u.MemUsedKB / uint64(sockets)
		totalKB := uint64(cfg.MemPerNodeGB * 1024 * 1024 / float64(sockets))
		for s := 0; s < sockets; s++ {
			dev := fmt.Sprintf("%d", s)
			snap.Set(procfs.TypeMem, dev, "MemUsed", perSocketKB)
			free := uint64(0)
			if totalKB > perSocketKB {
				free = totalKB - perSocketKB
			}
			snap.Set(procfs.TypeMem, dev, "MemFree", free)
			snap.Set(procfs.TypeMem, dev, "Cached", u.BuffCacheKB/uint64(sockets))
			snap.Add(procfs.TypeNUMA, dev, "numa_hit", uint64(u.MemAccess/float64(sockets)/1000))
			snap.Add(procfs.TypeNUMA, dev, "numa_miss", uint64(u.NumaTraffic/float64(sockets)/10000))
		}

		snap.Add(procfs.TypeVM, "-", "pswpin", uint64(u.SwapIn))
		snap.Add(procfs.TypeVM, "-", "pswpout", uint64(u.SwapOut))
		snap.Add(procfs.TypeVM, "-", "pgpgin", uint64(u.PgPgInKB))
		snap.Add(procfs.TypeVM, "-", "pgpgout", uint64(u.PgPgOutKB))
		snap.Add(procfs.TypeVM, "-", "pgfault", uint64(u.PgFault))
		snap.Add(procfs.TypeVM, "-", "pgmajfault", uint64(u.PgMajFault))

		for _, dev := range cfg.EthernetDevices {
			snap.Add(procfs.TypeNet, dev, "tx_bytes", uint64(u.EthTxB/float64(len(cfg.EthernetDevices))))
			snap.Add(procfs.TypeNet, dev, "rx_bytes", uint64(u.EthRxB/float64(len(cfg.EthernetDevices))))
		}

		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_bytes", uint64(u.IBTxB))
		snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_bytes", uint64(u.IBRxB))
		snap.Add(procfs.TypeIB, "mlx4_0.1", "tx_packets", uint64(u.IBTxB/2048))
		snap.Add(procfs.TypeIB, "mlx4_0.1", "rx_packets", uint64(u.IBRxB/2048))

		snap.Add(procfs.TypeLlite, "scratch", "write_bytes", uint64(u.ScratchWriteB))
		snap.Add(procfs.TypeLlite, "work", "write_bytes", uint64(u.WorkWriteB))
		if len(cfg.LustreMounts) > 2 {
			snap.Add(procfs.TypeLlite, "share", "write_bytes", uint64(u.ShareWriteB))
		}
		snap.Add(procfs.TypeLlite, "scratch", "read_bytes", uint64(u.ReadB))
		snap.Add(procfs.TypeLnet, "-", "tx_bytes", uint64(u.LnetTxB))
		snap.Add(procfs.TypeLnet, "-", "rx_bytes", uint64(u.LnetRxB))

		for _, dev := range cfg.BlockDevices {
			snap.Add(procfs.TypeBlock, dev, "wr_sectors", uint64(u.BlockWrSectors))
			snap.Add(procfs.TypeBlock, dev, "rd_sectors", uint64(u.BlockRdSectors))
		}

		snap.Add(procfs.TypeIRQ, "-", "hw_irq", uint64((u.IBTxB+u.IBRxB)/16384))
		snap.Set(procfs.TypePS, "-", "load_1", uint64((1-u.IdleFrac)*float64(cores)*100))
		snap.Set(procfs.TypePS, "-", "nr_running", uint64((1-u.IdleFrac)*float64(cores)+1))
		snap.Add(procfs.TypePS, "-", "ctxt", uint64((1-u.IdleFrac)*float64(cores)*dtMin*60*2000))

		// MPI runtimes hold SysV shared-memory segments for intra-node
		// transport; the footprint tracks rank count.
		snap.Set(procfs.TypeSysv, "-", "mem_used", uint64((1-u.IdleFrac)*float64(cores))*32<<20)
		snap.Set(procfs.TypeSysv, "-", "segs_used", uint64((1-u.IdleFrac)*float64(cores))+1)
		snap.Set(procfs.TypeTmpfs, "dev_shm", "bytes_used", uint64((1-u.IdleFrac)*float64(cores))*16<<20)

		// Home directories ride NFS on clusters that mount it (LS4).
		if cfg.HasNFS {
			snap.Add(procfs.TypeNFS, "home", "write_bytes", uint64(u.WorkWriteB*0.1))
			snap.Add(procfs.TypeNFS, "home", "read_bytes", uint64(u.ReadB*0.05))
			snap.Add(procfs.TypeNFS, "home", "ops", uint64((u.WorkWriteB*0.1+u.ReadB*0.05)/32768))
		}

		pmcType := procfs.PMCType(cfg.Arch)
		flopsPerCore := u.Flops / float64(cores)
		for c := 0; c < cores; c++ {
			dev := fmt.Sprintf("%d", c)
			snap.Add(pmcType, dev, "FLOPS", uint64(flopsPerCore))
			snap.Add(pmcType, dev, "NUMA_TRAFFIC", uint64(u.NumaTraffic/float64(cores)))
			if cfg.Arch == cluster.AMDOpteron {
				snap.Add(pmcType, dev, "MEM_ACCESS", uint64(u.MemAccess/float64(cores)))
				snap.Add(pmcType, dev, "DCACHE_FILLS", uint64(u.CacheFills/float64(cores)))
			} else {
				snap.Add(pmcType, dev, "L1D_HITS", uint64(u.L1Hits/float64(cores)))
			}
		}
	}
}

// sampleMonitors ticks every up node's monitor at the step boundary,
// adding OS-background activity to idle nodes so their samples are not
// frozen.
func (e *engine) sampleMonitors(nowMin float64, running []*sched.RunningJob) {
	unix := e.cfg.EpochUnix + int64(nowMin*60)
	busy := make(map[int]bool)
	for _, rj := range running {
		for _, n := range rj.Nodes {
			busy[n.Index] = true
		}
	}
	dtCS := e.cfg.StepMin * 60 * 100
	for i, n := range e.clu.Nodes {
		if n.State == cluster.NodeDown { // down nodes do not report
			continue
		}
		snap := e.snaps[i]
		snap.Time = unix
		if !busy[i] {
			// Idle background: all cores idle, OS footprint only.
			for c := 0; c < e.cfg.Cluster.CoresPerNode(); c++ {
				snap.Add(procfs.TypeCPU, fmt.Sprintf("%d", c), "idle", uint64(dtCS*0.998))
				snap.Add(procfs.TypeCPU, fmt.Sprintf("%d", c), "system", uint64(dtCS*0.002))
			}
			osKB := uint64(512 * 1024 / e.cfg.Cluster.SocketsPerNode)
			for s := 0; s < e.cfg.Cluster.SocketsPerNode; s++ {
				snap.Set(procfs.TypeMem, fmt.Sprintf("%d", s), "MemUsed", osKB)
			}
		}
		// Errors are monitor-local (a full disk on one node does not
		// stop the cluster); they surface via missing data at ingest.
		_ = e.monitors[i].Sample()
	}
}

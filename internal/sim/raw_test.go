package sim

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/ingest"
	"supremm/internal/store"
)

// rawConfig is a tiny raw-mode run: 8 nodes, 2 days.
func rawConfig(t *testing.T, seed int64) Config {
	t.Helper()
	cfg := DefaultConfig(cluster.RangerConfig().Scaled(8), seed)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	// Deepen the queue so the tiny cluster stays packed: at this scale a
	// 1.15x offered load leaves long idle gaps from Poisson sparsity.
	cfg.Gen.UtilizationTarget = 2.5
	cfg.RawDir = t.TempDir()
	return cfg
}

func TestRawModeWritesPerNodePerDayFiles(t *testing.T) {
	cfg := rawConfig(t, 13)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := os.ReadDir(cfg.RawDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 8 {
		t.Fatalf("host dirs = %d, want 8", len(hosts))
	}
	days, err := os.ReadDir(filepath.Join(cfg.RawDir, hosts[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(days) < 2 {
		t.Errorf("day files = %d, want >= 2 for a 2-day run", len(days))
	}
	if res.MonitorBytes == 0 || res.MonitorSamples == 0 {
		t.Error("monitor accounting empty in raw mode")
	}
	// §3: raw volume ~0.5 MB per node per day (scaled: our node has the
	// same 16 cores; accept a broad band around the paper's figure).
	perNodeDay := float64(res.MonitorBytes) / 8 / 2
	if perNodeDay < 100<<10 || perNodeDay > 3<<20 {
		t.Errorf("raw volume = %.0f bytes/node/day, want ~0.5 MB", perNodeDay)
	}
}

func TestRawIngestMatchesFastPath(t *testing.T) {
	// The full-fidelity path (raw text files -> parse -> delta -> join)
	// must reproduce the direct in-memory records. This is the pipeline
	// integrity check: Fig 1's ETL produces what the simulator knows.
	cfg := rawConfig(t, 17)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ingest.IngestRaw(cfg.RawDir, res.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Store.Len() != res.Store.Len() {
		t.Fatalf("raw store has %d records, fast path %d", raw.Store.Len(), res.Store.Len())
	}
	// Compare per-job metrics. The raw path quantizes usage into uint64
	// counters and attributes by interval midpoint, so tolerate a few
	// percent of relative error on jobs with enough samples.
	byID := make(map[int64]store.JobRecord)
	for i := 0; i < res.Store.Len(); i++ {
		r := res.Store.Record(i)
		byID[r.JobID] = r
	}
	checked := 0
	for i := 0; i < raw.Store.Len(); i++ {
		rr := raw.Store.Record(i)
		fr, ok := byID[rr.JobID]
		if !ok {
			t.Fatalf("raw job %d missing from fast path", rr.JobID)
		}
		if rr.User != fr.User || rr.App != fr.App || rr.Nodes != fr.Nodes {
			t.Errorf("job %d identity mismatch: raw %+v fast %+v", rr.JobID, rr, fr)
		}
		if fr.Samples < 12 || rr.Samples < 12 {
			continue // short jobs suffer boundary quantization
		}
		checked++
		relCheck(t, rr.JobID, "cpu_idle", rr.CPUIdleFrac, fr.CPUIdleFrac, 0.15, 0.02)
		relCheck(t, rr.JobID, "flops", rr.FlopsGF, fr.FlopsGF, 0.15, 0.05)
		relCheck(t, rr.JobID, "mem", rr.MemUsedGB, fr.MemUsedGB, 0.15, 0.1)
		relCheck(t, rr.JobID, "scratch", rr.ScratchWriteMB, fr.ScratchWriteMB, 0.35, 0.1)
		relCheck(t, rr.JobID, "ib_tx", rr.IBTxMB, fr.IBTxMB, 0.15, 0.05)
	}
	if checked < 10 {
		t.Errorf("only %d jobs compared; run too small", checked)
	}
}

// relCheck asserts |a-b| <= rel*|b| + abs.
func relCheck(t *testing.T, job int64, what string, a, b, rel, abs float64) {
	t.Helper()
	if math.Abs(a-b) > rel*math.Abs(b)+abs {
		t.Errorf("job %d %s: raw %v vs fast %v", job, what, a, b)
	}
}

func TestRawIngestSystemSeries(t *testing.T) {
	cfg := rawConfig(t, 19)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ingest.IngestRaw(cfg.RawDir, res.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Series) == 0 {
		t.Fatal("no system series from raw path")
	}
	// Active node counts should match the fast-path series where the
	// sample times line up (all nodes up in this config).
	for _, s := range raw.Series {
		if s.ActiveNodes != 8 {
			t.Fatalf("raw active nodes = %d, want 8", s.ActiveNodes)
		}
		if s.BusyNodes > s.ActiveNodes {
			t.Fatalf("busy %d > active %d", s.BusyNodes, s.ActiveNodes)
		}
	}
	// Cluster FLOPS from raw deltas should track fast path to ~15%.
	fastMean := store.SeriesSummary(res.Series, "total_tflops").Mean
	rawMean := store.SeriesSummary(raw.Series, "total_tflops").Mean
	if math.Abs(fastMean-rawMean) > 0.2*fastMean {
		t.Errorf("series flops: raw %v vs fast %v", rawMean, fastMean)
	}
}

func TestRawIngestUnattributedIsSmall(t *testing.T) {
	cfg := rawConfig(t, 23)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ingest.IngestRaw(cfg.RawDir, res.Acct)
	if err != nil {
		t.Fatal(err)
	}
	// Idle intervals are legitimately unattributed, but on a loaded
	// cluster they should be well under half of all intervals.
	totalIntervals := 8 * len(res.Series)
	if raw.Unattributed > totalIntervals/2 {
		t.Errorf("unattributed = %d of ~%d intervals", raw.Unattributed, totalIntervals)
	}
}

func TestRawPipelineLonestar4(t *testing.T) {
	// The Intel PMC path and NFS counters must flow through the raw
	// pipeline too (the other raw tests run the AMD/Ranger path).
	cfg := DefaultConfig(cluster.Lonestar4Config().Scaled(6), 43)
	cfg.DurationMin = 2 * 24 * 60
	cfg.Shutdowns = nil
	cfg.NodeMTBFHours = 0
	cfg.Gen.UtilizationTarget = 2.5
	cfg.RawDir = t.TempDir()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ingest.IngestRaw(cfg.RawDir, res.Acct)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Store.Len() != res.Store.Len() {
		t.Fatalf("raw %d vs fast %d records", raw.Store.Len(), res.Store.Len())
	}
	// FLOPS came from the intel_pmc block.
	agg := raw.Store.Aggregate(store.MetricFlops, store.Filter{MinSamples: 6})
	if !(agg.Mean > 0) {
		t.Errorf("LS4 raw flops = %v, Intel PMC path broken", agg.Mean)
	}
	// The raw files carry the NFS schema.
	hosts, err := os.ReadDir(cfg.RawDir)
	if err != nil || len(hosts) == 0 {
		t.Fatal("no raw hosts")
	}
	days, err := os.ReadDir(filepath.Join(cfg.RawDir, hosts[0].Name()))
	if err != nil || len(days) == 0 {
		t.Fatal("no raw files")
	}
	data, err := os.ReadFile(filepath.Join(cfg.RawDir, hosts[0].Name(), days[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("!nfs ")) {
		t.Error("LS4 raw file missing nfs schema")
	}
	if !bytes.Contains(data, []byte("!intel_pmc ")) {
		t.Error("LS4 raw file missing intel_pmc schema")
	}
}

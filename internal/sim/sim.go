// Package sim is the discrete-event engine that stands in for a running
// production cluster: it executes the synthetic workload on the cluster
// model under the batch scheduler, evolves every node's counters, drives
// the per-node TACC_Stats monitors, emits rationalized log events and
// Lariat summaries, and injects the shutdowns and node failures visible
// in the paper's Fig 8.
//
// Two output modes share one code path:
//
//   - fast mode accumulates job records and the cluster series directly
//     in memory (used by the large benchmark sweeps);
//   - raw mode additionally writes real TACC_Stats text files per node
//     per day, which cmd/ingest parses back — the full-fidelity pipeline.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"supremm/internal/cluster"
	"supremm/internal/eventlog"
	"supremm/internal/ingest"
	"supremm/internal/lariat"
	"supremm/internal/procfs"
	"supremm/internal/sched"
	"supremm/internal/store"
	"supremm/internal/taccstats"
	"supremm/internal/workload"
)

// Shutdown is a whole-cluster outage window (planned or unplanned).
type Shutdown struct {
	StartMin    float64
	DurationMin float64
}

// Config controls one simulation run.
type Config struct {
	Cluster cluster.Config
	Seed    int64
	// DurationMin is the simulated span; StepMin the sampling cadence
	// (10 minutes in the deployed configuration).
	DurationMin float64
	StepMin     float64
	// EpochUnix anchors simulated minute 0 (Ranger study start:
	// 2011-06-01).
	EpochUnix int64

	// Gen overrides workload generation; zero value uses defaults for
	// the cluster.
	Gen workload.GenConfig

	// Jobs, when non-nil, is used as the submission stream instead of
	// generating one from Gen (must be sorted by SubmitMin). This is how
	// application kernels and other hand-built workloads enter the
	// engine.
	Jobs []*workload.Job

	// RawDir, when non-empty, enables raw mode: TACC_Stats files are
	// written under RawDir/<hostname>/<day>.raw.
	RawDir string

	// Shutdowns lists outage windows; DefaultShutdowns provides a
	// realistic set.
	Shutdowns []Shutdown
	// NodeMTBFHours > 0 enables random single-node failures with the
	// given per-node mean time between failures.
	NodeMTBFHours float64
	// NodeRepairMin is how long a failed node stays down.
	NodeRepairMin float64

	// Policy selects the scheduling discipline (EASY backfill by
	// default; FIFO and the complementary policy exist for the
	// scheduling ablations).
	Policy sched.Policy
}

// DefaultConfig returns a 90-day run of the given preset at the given
// node scale with failures and two shutdowns enabled.
func DefaultConfig(cc cluster.Config, seed int64) Config {
	gen := workload.DefaultGenConfig(cc, seed)
	return Config{
		Cluster:       cc,
		Seed:          seed,
		DurationMin:   90 * 24 * 60,
		StepMin:       10,
		EpochUnix:     1306886400, // 2011-06-01T00:00:00Z
		Gen:           gen,
		Shutdowns:     DefaultShutdowns(90 * 24 * 60),
		NodeMTBFHours: 6000,
		NodeRepairMin: 360,
	}
}

// DefaultShutdowns places one planned half-day outage per ~45 days,
// matching the paper's "relatively infrequent" shutdowns.
func DefaultShutdowns(durationMin float64) []Shutdown {
	var out []Shutdown
	for t := 30 * 24 * 60.0; t < durationMin; t += 45 * 24 * 60 {
		out = append(out, Shutdown{StartMin: t, DurationMin: 12 * 60})
	}
	return out
}

// Result carries everything a run produces.
type Result struct {
	Store  *store.Store
	Series []store.SystemSample
	Acct   []sched.AcctRecord
	Events []eventlog.Event
	Lariat []lariat.Record

	JobsSubmitted int
	JobsCompleted int
	// MonitorBytes/MonitorSamples are raw-mode totals (§3 volume and
	// overhead accounting).
	MonitorBytes   int64
	MonitorSamples int64
}

// engine is the run-time state.
type engine struct {
	cfg   Config
	rng   *rand.Rand
	clu   *cluster.Cluster
	sched *sched.Scheduler
	acc   *ingest.Accumulator

	pending []*workload.Job // not yet submitted, sorted by SubmitMin
	next    int

	snaps    []*procfs.Snapshot   // per node, raw mode only
	monitors []*taccstats.Monitor // per node, raw mode only

	repairs map[int]float64 // node index -> repair time
	downAll bool

	hostIndex map[string]int
	rat       *eventlog.Rationalizer

	res *Result
}

// Run executes a simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.StepMin <= 0 {
		cfg.StepMin = 10
	}
	if cfg.DurationMin <= 0 {
		cfg.DurationMin = 90 * 24 * 60
	}
	if cfg.Gen.Cluster.Name == "" {
		cfg.Gen = workload.DefaultGenConfig(cfg.Cluster, cfg.Seed)
	}
	cfg.Gen.HorizonMin = cfg.DurationMin

	clu, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x51c0de)),
		clu:     clu,
		sched:   sched.New(clu, cfg.EpochUnix),
		acc:     ingest.NewAccumulator(),
		repairs: make(map[int]float64),
		res:     &Result{Store: store.New()},
	}
	e.sched.Policy = cfg.Policy
	if cfg.Jobs != nil {
		e.pending = cfg.Jobs
	} else {
		e.pending = workload.NewGenerator(cfg.Gen).Generate()
	}
	e.res.JobsSubmitted = len(e.pending)

	if cfg.RawDir != "" {
		if err := e.initRawMode(); err != nil {
			return nil, err
		}
	}

	for now := 0.0; now < cfg.DurationMin; now += cfg.StepMin {
		if err := e.step(now); err != nil {
			return nil, err
		}
	}
	e.finish(cfg.DurationMin)
	e.res.Acct = e.sched.Accounting()
	e.res.Store.SortByJobID()
	return e.res, nil
}

// initRawMode builds per-node snapshots and monitors.
func (e *engine) initRawMode() error {
	e.snaps = make([]*procfs.Snapshot, len(e.clu.Nodes))
	e.monitors = make([]*taccstats.Monitor, len(e.clu.Nodes))
	for i, n := range e.clu.Nodes {
		snap := procfs.NewNodeSnapshot(e.cfg.Cluster, n.Hostname)
		snap.Time = e.cfg.EpochUnix
		e.snaps[i] = snap
		host := n.Hostname
		rotate := func(day int) (io.WriteCloser, error) {
			dir := filepath.Join(e.cfg.RawDir, host)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			return os.Create(filepath.Join(dir, fmt.Sprintf("%d.raw", day)))
		}
		e.monitors[i] = taccstats.NewMonitor(snap, e.cfg.Cluster.Arch, rotate)
	}
	return nil
}

// step advances one sampling interval ending at now+step.
func (e *engine) step(now float64) error {
	e.applyOutages(now)
	e.submitDue(now)
	started, finished := e.sched.Step(now)
	e.onStarted(started, now)
	if err := e.onFinished(finished, now); err != nil {
		return err
	}

	// Evolve all running jobs by one step and record their usage.
	dtMin := e.cfg.StepMin
	sampleUnix := e.cfg.EpochUnix + int64((now+dtMin)*60)
	running := e.sortedRunning()
	sys := store.SystemSample{
		Time:        sampleUnix,
		ActiveNodes: e.clu.ActiveNodes(),
		BusyNodes:   e.clu.BusyNodes(),
		QueuedJobs:  e.sched.QueueLength(),
		RunningJobs: len(running),
	}
	var busyFracUser, busyFracSys, busyFracIdle float64
	var memKBBusy float64
	for _, rj := range running {
		u := rj.Behavior.Step(dtMin)
		nodes := len(rj.Nodes)
		if err := e.acc.AddUsage(rj.Job.ID, nodes, dtMin*60, u); err != nil {
			return err
		}
		fn := float64(nodes)
		sys.TotalTFlops += u.Flops * fn / (dtMin * 60) / 1e12
		memKBBusy += float64(u.MemUsedKB) * fn
		busyFracUser += u.UserFrac * fn
		busyFracSys += u.SysFrac * fn
		busyFracIdle += (u.IdleFrac + u.IowaitFrac) * fn
		sys.ScratchMBps += u.ScratchWriteB * fn / (dtMin * 60) * 1e-6
		sys.WorkMBps += u.WorkWriteB * fn / (dtMin * 60) * 1e-6
		sys.ShareMBps += u.ShareWriteB * fn / (dtMin * 60) * 1e-6
		sys.IBTxMBps += u.IBTxB * fn / (dtMin * 60) * 1e-6
		sys.LnetTxMBps += u.LnetTxB * fn / (dtMin * 60) * 1e-6

		if e.monitors != nil {
			e.applyUsageToNodes(rj, u, dtMin)
		}
		e.maybeEmitJobEvents(rj, u, sampleUnix)
	}
	if act := float64(sys.ActiveNodes); act > 0 {
		// Memory per active node; idle nodes hold only the OS (~0.5 GB).
		idleNodes := float64(sys.ActiveNodes - sys.BusyNodes)
		sys.MemPerNode = (memKBBusy/1024/1024 + idleNodes*0.5) / act
		// CPU fractions over all active nodes: idle nodes are 100% idle.
		sys.CPUUserFrac = busyFracUser / act
		sys.CPUSysFrac = busyFracSys / act
		sys.CPUIdleFrac = (busyFracIdle + idleNodes) / act
	}
	e.res.Series = append(e.res.Series, sys)

	if e.monitors != nil {
		e.sampleMonitors(now+dtMin, running)
	}
	return nil
}

// sortedRunning returns running allocations in job-ID order for
// determinism.
func (e *engine) sortedRunning() []*sched.RunningJob {
	m := e.sched.Running()
	out := make([]*sched.RunningJob, 0, len(m))
	for _, rj := range m {
		out = append(out, rj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job.ID < out[j].Job.ID })
	return out
}

// submitDue feeds the scheduler every job whose submit time has come.
func (e *engine) submitDue(now float64) {
	for e.next < len(e.pending) && e.pending[e.next].SubmitMin <= now {
		e.sched.Submit(e.pending[e.next])
		e.next++
	}
}

// onStarted wires behaviours, accounting identities and monitor prologs.
func (e *engine) onStarted(started []*sched.RunningJob, now float64) {
	for _, rj := range started {
		rj.Behavior = workload.NewBehavior(
			rj.Job, e.cfg.Cluster.Name,
			e.cfg.Cluster.CoresPerNode(), e.cfg.Cluster.MemPerNodeGB)
		startUnix := e.cfg.EpochUnix + int64(now*60)
		submitUnix := e.cfg.EpochUnix + int64(rj.Job.SubmitMin*60)
		e.acc.StartJob(ingest.IdentityFromJob(
			rj.Job, e.cfg.Cluster.Name, submitUnix, startUnix, 0, rj.Job.Status))
		if e.monitors != nil {
			for _, n := range rj.Nodes {
				e.snaps[n.Index].Time = startUnix
				// Prolog errors are monitor-local; the run continues, as
				// the production tool does when a node's collector hiccups.
				_ = e.monitors[n.Index].BeginJob(rj.Job.ID)
			}
		}
	}
}

// onFinished finalizes job records, Lariat summaries and monitor epilogs.
func (e *engine) onFinished(finished []*sched.RunningJob, now float64) error {
	for _, rj := range finished {
		if err := e.finalize(rj, rj.EndMin, rj.Job.Status); err != nil {
			return err
		}
	}
	_ = now
	return nil
}

// finalize closes out one allocation: job record, Lariat summary and
// monitor epilogs. It is shared by normal completion, node-failure
// kills and horizon drain.
func (e *engine) finalize(rj *sched.RunningJob, endMin float64, status workload.ExitStatus) error {
	endUnix := e.cfg.EpochUnix + int64(endMin*60)
	rec, err := e.acc.FinishJob(rj.Job.ID)
	if err != nil {
		return err
	}
	rec.End = endUnix
	rec.Status = status.String()
	e.res.Store.Add(rec)
	e.res.JobsCompleted++
	e.res.Lariat = append(e.res.Lariat,
		lariat.Summarize(rj.Job, e.cfg.Cluster.CoresPerNode()))
	if e.monitors != nil {
		for _, n := range rj.Nodes {
			e.snaps[n.Index].Time = endUnix
			_ = e.monitors[n.Index].EndJob(rj.Job.ID)
		}
	}
	return nil
}

// finish drains still-running jobs at the horizon.
func (e *engine) finish(endMin float64) {
	running := e.sortedRunning()
	for _, rj := range running {
		e.sched.KillJob(rj.Job.ID, endMin, rj.Job.Status)
		if err := e.finalize(rj, endMin, rj.Job.Status); err != nil {
			continue
		}
	}
	for _, m := range e.monitors {
		e.res.MonitorBytes += m.TotalBytes()
		e.res.MonitorSamples += m.Samples()
		_ = m.Close()
	}
}

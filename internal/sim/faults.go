package sim

import (
	"fmt"

	"supremm/internal/cluster"
	"supremm/internal/eventlog"
	"supremm/internal/sched"
	"supremm/internal/workload"
)

// applyOutages drives shutdown windows, node repairs and random node
// failures at time now.
func (e *engine) applyOutages(now float64) {
	// Whole-cluster shutdown windows (Fig 8's dips to zero).
	inWindow := false
	for _, s := range e.cfg.Shutdowns {
		if now >= s.StartMin && now < s.StartMin+s.DurationMin {
			inWindow = true
			break
		}
	}
	switch {
	case inWindow && !e.downAll:
		e.downAll = true
		e.emit(eventlog.Event{
			Time: e.unix(now), Host: "master", Severity: eventlog.Warning,
			Component: "sge", Message: "scheduled maintenance: draining all nodes",
		})
		for _, n := range e.clu.Nodes {
			if killed := e.sched.NodeDown(n, now); killed != nil {
				e.jobKilledEvent(killed.Job, n.Hostname, now, "node shutdown during maintenance")
				_ = e.finalize(killed, now, workload.NodeFail)
			}
		}
	case !inWindow && e.downAll:
		e.downAll = false
		e.emit(eventlog.Event{
			Time: e.unix(now), Host: "master", Severity: eventlog.Info,
			Component: "sge", Message: "maintenance complete: nodes returning to service",
		})
		for _, n := range e.clu.Nodes {
			// Individually failed nodes stay down until their repair.
			if _, failed := e.repairs[n.Index]; !failed {
				e.sched.NodeUp(n)
			}
		}
	}

	// Individual repairs due.
	for idx, due := range e.repairs {
		if now >= due && !e.downAll {
			e.sched.NodeUp(e.clu.Nodes[idx])
			delete(e.repairs, idx)
			e.emit(eventlog.Event{
				Time: e.unix(now), Host: e.clu.Nodes[idx].Hostname,
				Severity: eventlog.Info, Component: "hw",
				Message: "node repaired and returned to service",
			})
		}
	}

	// Random node failures: Poisson with per-node MTBF.
	if e.cfg.NodeMTBFHours > 0 && !e.downAll {
		p := e.cfg.StepMin / 60 / e.cfg.NodeMTBFHours // per node per step
		expected := p * float64(len(e.clu.Nodes))
		// Thin the Poisson draw with at most a few failures per step.
		for expected > 0 {
			if e.rng.Float64() < expected {
				idx := e.rng.Intn(len(e.clu.Nodes))
				n := e.clu.Nodes[idx]
				if n.State != cluster.NodeDown {
					// The lockup line precedes the scheduler's reaction,
					// so the rationalizer still sees the job on the node.
					e.emitRaw(e.rawSoftLockup(now), n.Hostname, 0)
					killed := e.sched.NodeDown(n, now)
					repair := e.cfg.NodeRepairMin
					if repair <= 0 {
						repair = 360
					}
					e.repairs[idx] = now + repair
					if killed != nil {
						e.jobKilledEvent(killed.Job, n.Hostname, now, "job killed by node failure")
						_ = e.finalize(killed, now, workload.NodeFail)
					}
				}
			}
			expected--
		}
	}
}

// maybeEmitJobEvents produces the anomaly-precursor log traffic that
// ANCOR-style analyses correlate with resource anomalies (§4.3.4):
// Lustre timeouts under heavy IO and OOM warnings near memory capacity.
func (e *engine) maybeEmitJobEvents(rj *sched.RunningJob, u workload.NodeUsage, sampleUnix int64) {
	host := rj.Nodes[0].Hostname
	// Heavy scratch writers occasionally trip Lustre RPC timeouts.
	writeMBps := u.ScratchWriteB / (e.cfg.StepMin * 60) * 1e-6
	if writeMBps > 30 && e.rng.Float64() < 0.02 {
		e.emitRaw(rawLustreTimeout(), host, float64(sampleUnix-e.cfg.EpochUnix)/60)
	}
	// Jobs near the memory clamp risk the OOM killer.
	capKB := e.cfg.Cluster.MemPerNodeGB * 1024 * 1024
	if float64(u.MemUsedKB) > 0.93*capKB && e.rng.Float64() < 0.05 {
		e.emitRaw(rawOOM(rj.Job.App.Name, 2000+e.rng.Intn(30000)), host,
			float64(sampleUnix-e.cfg.EpochUnix)/60)
	}
}

func (e *engine) unix(min float64) int64 { return e.cfg.EpochUnix + int64(min*60) }

func (e *engine) emit(ev eventlog.Event) {
	e.res.Events = append(e.res.Events, ev)
}

func (e *engine) jobKilledEvent(j *workload.Job, host string, now float64, msg string) {
	e.emit(eventlog.Event{
		Time: e.unix(now), Host: host, JobID: j.ID,
		Severity: eventlog.Error, Component: "sge",
		Message: fmt.Sprintf("%s (user %s app %s)", msg, j.User.Name, j.App.Name),
	})
}

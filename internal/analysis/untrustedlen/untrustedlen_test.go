package untrustedlen_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/untrustedlen"
)

func TestUntrustedLen(t *testing.T) {
	analysistest.Run(t, untrustedlen.Analyzer, "untrustedlen")
}

// Package untrustedlen seeds unchecked-length violations in a decoder
// shaped like the store codec: lengths come off the wire and must be
// bounded before they size anything.
package untrustedlen

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
)

const maxRows = 1 << 20

type decoder struct {
	data []byte
	off  int
}

// uint32 reads the next little-endian u32.
//
// supremmlint:untrusted — result comes straight from input bytes.
func (d *decoder) uint32() uint32 {
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

// allocUnchecked sizes an allocation straight from the wire.
func allocUnchecked(d *decoder) []float64 {
	n := d.uint32()
	return make([]float64, n) // want `untrusted length n reaches make without a bound check`
}

// allocChecked bounds the length first: fine.
func allocChecked(d *decoder) ([]float64, error) {
	n := d.uint32()
	if n > maxRows {
		return nil, errors.New("row count out of range")
	}
	return make([]float64, n), nil
}

// indexUnchecked indexes a table with a wire value.
func indexUnchecked(d *decoder, table []string) string {
	i := d.uint32()
	return table[i] // want `untrusted length i reaches indexing without a bound check`
}

// indexChecked compares against the table size first.
func indexChecked(d *decoder, table []string) string {
	i := d.uint32()
	if int(i) >= len(table) {
		return ""
	}
	return table[i]
}

// sliceBoundsUnchecked subslices with a raw wire length.
func sliceBoundsUnchecked(d *decoder) []byte {
	n := binary.BigEndian.Uint32(d.data)
	return d.data[:n] // want `untrusted length n reaches slice bounds without a bound check`
}

// taintFlowsThroughArithmetic: derived values stay tainted.
func taintFlowsThroughArithmetic(d *decoder) []byte {
	n := d.uint32()
	size := int(n) * 8
	return make([]byte, size) // want `untrusted length size reaches make without a bound check`
}

// copyNUnchecked limits an io copy with a wire value.
func copyNUnchecked(d *decoder, w io.Writer) error {
	n := d.uint32()
	_, err := io.CopyN(w, bytes.NewReader(d.data), int64(n)) // want `untrusted length int64\(n\) reaches io.CopyN without a bound check`
	return err
}

// copyNChecked bounds the count first.
func copyNChecked(d *decoder, w io.Writer) error {
	n := d.uint32()
	if n > maxRows {
		return errors.New("too big")
	}
	_, err := io.CopyN(w, bytes.NewReader(d.data), int64(n))
	return err
}

// reassignClearsTaint: overwriting with a trusted value is clean.
func reassignClearsTaint(d *decoder) []byte {
	n := int(d.uint32())
	n = 16
	return make([]byte, n)
}

// blessedSink records a reviewed exception.
func blessedSink(d *decoder) []byte {
	n := d.uint32()
	return make([]byte, n) //supremmlint:allow untrustedlen: caller validated the frame header already
}

// varintTaint: multi-result binary sources taint every integer result.
func varintTaint(d *decoder) []int64 {
	v, n := binary.Varint(d.data)
	if n <= 0 {
		return nil
	}
	return make([]int64, v) // want `untrusted length v reaches make without a bound check`
}

// mapIndexIsFine: map lookups with tainted keys cannot overrun memory.
func mapIndexIsFine(d *decoder, m map[uint32]string) string {
	k := d.uint32()
	return m[k]
}

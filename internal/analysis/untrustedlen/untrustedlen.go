// Package untrustedlen is a taint analysis for decode paths: any
// integer read out of input bytes must pass through a comparison
// against some bound before it is used to size an allocation, index a
// slice or array, take a subslice, or limit an io copy.
//
// The store codec and the taccstats parsers decode lengths from files
// the daemon did not write in this process — a truncated snapshot, a
// corrupt archive, or a hostile upload can carry a length field of
// 2^60 and turn one `make([]T, n)` into an instant OOM kill, which on
// the aggregation node takes every realm's queries down with it. The
// analyzer marks integers as tainted at their source:
//
//   - results of encoding/binary decoders (Uint16/32/64, Varint,
//     Uvarint, ReadVarint, ReadUvarint);
//   - results of in-package functions whose doc comment carries the
//     //supremmlint:untrusted directive (the codec's own take/uint32
//     helpers).
//
// Taint propagates through assignment, arithmetic, and integer
// conversions. A comparison with the tainted variable as an operand
// (either side, any relational operator) sanitizes it — the analyzer
// checks that a bound check exists on the path, not that the bound is
// right. Tainted values reaching make(len/cap), slice/array indexing,
// slice bounds, or io.CopyN are findings. Reviewed exceptions:
//
//	//supremmlint:allow untrustedlen <why the value cannot exceed the bound>
package untrustedlen

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
	"supremm/internal/analysis/cfg"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "untrustedlen",
	Doc:  "flags input-decoded integers reaching make/index/slice/io.CopyN without a bound check",
	Run:  run,
}

// UntrustedDirective marks a function whose integer results come
// straight from input bytes.
const UntrustedDirective = "supremmlint:untrusted"

// binarySources are the encoding/binary decoders that mint untrusted
// integers.
var binarySources = map[string]bool{
	"Uint16": true, "Uint32": true, "Uint64": true,
	"Varint": true, "Uvarint": true,
	"ReadVarint": true, "ReadUvarint": true,
}

type state map[string]bool

func clone(s state) state {
	out := make(state, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func run(pass *analysis.Pass) error {
	decls := pass.FuncDecls()
	for _, f := range pass.Files {
		for _, fn := range pass.Functions(f) {
			checkFunc(pass, decls, fn)
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	decls  map[*types.Func]*ast.FuncDecl
	report func(pos token.Pos, what, sink string)
}

func checkFunc(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, fn analysis.FuncInfo) {
	// Pre-scan: functions with no taint source need no dataflow.
	hasSource := false
	c := &checker{pass: pass, decls: decls}
	cfg.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isSourceCall(call) {
			hasSource = true
		}
		return !hasSource
	})
	if !hasSource {
		return
	}

	g := pass.CFG(fn)
	states := cfg.Forward(g, state{}, cfg.Transfer[state]{
		Flow:  func(b *cfg.Block, in state) state { return c.flowBlock(b, in) },
		Join:  joinStates,
		Equal: equalStates,
	})
	reported := make(map[token.Pos]bool)
	c.report = func(pos token.Pos, what, sink string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "untrusted length %s reaches %s without a bound check", what, sink)
	}
	for _, b := range g.Blocks {
		in, ok := states[b]
		if !b.Reachable || !ok {
			continue
		}
		c.flowBlock(b, in)
	}
	c.report = nil
}

func (c *checker) flowBlock(b *cfg.Block, in state) state {
	out := clone(in)
	for _, n := range b.Nodes {
		// Sinks see the state before this node's own comparisons
		// sanitize anything: the check must precede the use.
		c.checkSinks(n, out)
		c.applyTaint(n, out)
		c.sanitize(n, out)
	}
	return out
}

// applyTaint updates variable taint for assignments and declarations.
func (c *checker) applyTaint(n ast.Node, out state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					c.setTaint(lhs, c.tainted(n.Rhs[i], out), out)
				}
			} else if len(n.Rhs) == 1 {
				// Multi-value: a source call taints every integer result.
				t := c.tainted(n.Rhs[0], out)
				for _, lhs := range n.Lhs {
					c.setTaint(lhs, t, out)
				}
			}
			return
		}
		// Compound ops (+=, <<=, ...): taint is sticky and absorbs the RHS.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			c.setTaint(n.Lhs[0], c.tainted(n.Lhs[0], out) || c.tainted(n.Rhs[0], out), out)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					c.setTaint(name, c.tainted(vs.Values[i], out), out)
				}
			}
		}
	}
}

func (c *checker) setTaint(lhs ast.Expr, tainted bool, out state) {
	key, ok := analysis.ExprKey(c.pass.TypesInfo, lhs)
	if !ok {
		return
	}
	if tainted && isIntegerExpr(c.pass.TypesInfo, lhs) {
		out[key] = true
	} else if !tainted {
		delete(out, key)
	}
}

// tainted reports whether evaluating e can yield an untrusted integer
// under the current state.
func (c *checker) tainted(e ast.Expr, s state) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		key, ok := analysis.ExprKey(c.pass.TypesInfo, e)
		return ok && s[key]
	case *ast.ParenExpr:
		return c.tainted(e.X, s)
	case *ast.StarExpr:
		return c.tainted(e.X, s)
	case *ast.UnaryExpr:
		return c.tainted(e.X, s)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			return c.tainted(e.X, s) || c.tainted(e.Y, s)
		}
		return false
	case *ast.CallExpr:
		if c.isSourceCall(e) {
			return true
		}
		// Integer conversions pass taint through: int(n), uint32(n).
		if len(e.Args) == 1 {
			if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				if isInteger(tv.Type) {
					return c.tainted(e.Args[0], s)
				}
			}
		}
		return false
	}
	return false
}

// isSourceCall recognizes taint sources: encoding/binary decoders and
// in-package helpers carrying the untrusted directive.
func (c *checker) isSourceCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/binary" && binarySources[fn.Name()] {
		return true
	}
	if decl, ok := c.decls[fn]; ok && analysis.FuncHasDirective(decl, UntrustedDirective) {
		return true
	}
	return false
}

// sanitize clears taint for every variable used as a relational
// comparison operand anywhere in n: a bound check on any branch shape
// counts, per the package contract.
func (c *checker) sanitize(n ast.Node, out state) {
	cfg.Inspect(n, func(x ast.Node) bool {
		be, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			c.clearOperand(be.X, out)
			c.clearOperand(be.Y, out)
		}
		return true
	})
}

// clearOperand removes taint from every variable mentioned in a
// comparison operand: bounds are routinely checked through derived
// expressions (`uint64(n)*8+4 > remaining`), and the mention is what
// certifies the author thought about the value's range.
func (c *checker) clearOperand(e ast.Expr, out state) {
	cfg.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.Ident:
			if key, ok := analysis.ExprKey(c.pass.TypesInfo, x); ok {
				delete(out, key)
			}
		case *ast.SelectorExpr:
			if key, ok := analysis.ExprKey(c.pass.TypesInfo, x); ok {
				delete(out, key)
			}
		}
		return true
	})
}

// checkSinks reports tainted values reaching a dangerous use in n.
func (c *checker) checkSinks(n ast.Node, s state) {
	if c.report == nil {
		return
	}
	info := c.pass.TypesInfo
	cfg.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range x.Args[1:] {
						if c.tainted(arg, s) {
							c.report(arg.Pos(), types.ExprString(arg), "make")
						}
					}
				}
			}
			if analysis.IsPkgFunc(info, x, "io", "CopyN") && len(x.Args) == 3 && c.tainted(x.Args[2], s) {
				c.report(x.Args[2].Pos(), types.ExprString(x.Args[2]), "io.CopyN")
			}
		case *ast.IndexExpr:
			if isSliceOrArray(info.TypeOf(x.X)) && c.tainted(x.Index, s) {
				c.report(x.Index.Pos(), types.ExprString(x.Index), "indexing")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
				if bound != nil && c.tainted(bound, s) {
					c.report(bound.Pos(), types.ExprString(bound), "slice bounds")
				}
			}
		}
		return true
	})
}

func joinStates(a, b state) state {
	out := clone(a)
	for k := range b {
		out[k] = true
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func isInteger(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isInteger(t)
}

func isSliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

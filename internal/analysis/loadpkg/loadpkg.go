// Package loadpkg type-checks Go packages for supremmlint without any
// dependency beyond the standard library and the go tool itself. The
// canonical loader (golang.org/x/tools/go/packages) is unavailable in
// the build container, and compiled export data for the standard
// library no longer ships with the toolchain, so this loader rebuilds
// the type information from source: `go list -deps -json` supplies the
// file sets and the dependency-ordered package closure, and go/types
// checks each package against the packages checked before it.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader accumulates type-checked packages across Load calls; standard
// library packages are checked once and shared.
type Loader struct {
	dir   string // module root the go tool runs in
	Fset  *token.FileSet
	typed map[string]*types.Package
}

// New returns a Loader rooted at the module directory.
func New(dir string) *Loader {
	return &Loader{dir: dir, Fset: token.NewFileSet(), typed: make(map[string]*types.Package)}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool and type-checks the full
// dependency closure, returning the directly matched (non-dependency,
// non-standard) packages in listing order. Test files are not loaded:
// supremmlint's invariants govern production code.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	pkgs, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range pkgs {
		p, err := l.check(lp, !lp.Standard)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly && !lp.Standard && p != nil {
			out = append(out, p)
		}
	}
	return out, nil
}

// goList runs `go list -deps -json`, returning the closure in
// dependency order (each package after everything it imports).
func (l *Loader) goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,DepOnly,GoFiles,Imports,ImportMap,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// cgo-free file sets: the type checker reads pure Go sources only.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(stdout)
	var pkgs []*listPkg
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loadpkg: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	for _, lp := range pkgs {
		if lp.Error != nil {
			return nil, fmt.Errorf("loadpkg: %s: %s", lp.ImportPath, lp.Error.Err)
		}
	}
	return pkgs, nil
}

// check type-checks one listed package (dependencies must already be in
// l.typed). withInfo controls whether full expression type information
// is retained; it is needed only for analyzed packages, not their deps.
func (l *Loader) check(lp *listPkg, withInfo bool) (*Package, error) {
	if lp.ImportPath == "unsafe" {
		l.typed["unsafe"] = types.Unsafe
		return nil, nil
	}
	if _, done := l.typed[lp.ImportPath]; done && !withInfo {
		return nil, nil
	}
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loadpkg: %s: %w", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:    &mapImporter{loader: l, importMap: lp.ImportMap},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	tpkg, err := cfg.Check(lp.ImportPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: type-checking %s: %w", lp.ImportPath, err)
	}
	l.typed[lp.ImportPath] = tpkg
	return &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// CheckDir parses and type-checks the .go files of a single directory
// as one package under the given import path, loading any standard
// library imports on demand. It exists for analysistest: testdata
// packages live outside the module's package graph (go tooling ignores
// testdata directories) and may import only the standard library.
func (l *Loader) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("loadpkg: no .go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(goFiles))
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	var missing []string
	for path := range imports {
		if _, ok := l.typed[path]; !ok && path != "unsafe" {
			missing = append(missing, path)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pkgs, err := l.goList(missing)
		if err != nil {
			return nil, err
		}
		for _, lp := range pkgs {
			if _, err := l.check(lp, false); err != nil {
				return nil, err
			}
		}
	}
	lp := &listPkg{ImportPath: importPath, Dir: dir, GoFiles: goFiles}
	// Re-check through the shared path so the package gets full Info.
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{
		Importer:    &mapImporter{loader: l},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
	}
	tpkg, err := cfg.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: type-checking %s: %w", importPath, err)
	}
	return &Package{PkgPath: importPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info}, nil
}

// mapImporter resolves imports against the loader's already-checked
// packages, applying the importing package's vendor map first.
type mapImporter struct {
	loader    *Loader
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.loader.typed[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("loadpkg: import %q not loaded", path)
}

package loadpkg

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestLoadModulePackage type-checks a real module package through the
// full std closure from source.
func TestLoadModulePackage(t *testing.T) {
	l := New(moduleRoot(t))
	pkgs, err := l.Load("./internal/procfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "supremm/internal/procfs" {
		t.Fatalf("PkgPath = %q", p.PkgPath)
	}
	if p.Types.Scope().Lookup("Snapshot") == nil {
		t.Fatal("procfs.Snapshot not in package scope")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("no use information recorded")
	}
}

// TestLoadReusesStd verifies the second Load call reuses the shared std
// packages instead of re-checking them.
func TestLoadReusesStd(t *testing.T) {
	l := New(moduleRoot(t))
	if _, err := l.Load("./internal/procfs"); err != nil {
		t.Fatal(err)
	}
	fmtPkg := l.typed["fmt"]
	if fmtPkg == nil {
		t.Fatal("fmt not loaded")
	}
	if _, err := l.Load("./internal/stats"); err != nil {
		t.Fatal(err)
	}
	if l.typed["fmt"] != fmtPkg {
		t.Fatal("fmt re-checked on second Load")
	}
}

// TestCheckDir type-checks a loose directory the way analysistest does.
func TestCheckDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.go"), `package a

import "fmt"

func Hello() string { return fmt.Sprintf("%d", 42) }
`)
	l := New(moduleRoot(t))
	p, err := l.CheckDir(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	obj := p.Types.Scope().Lookup("Hello")
	if obj == nil {
		t.Fatal("Hello not found")
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		t.Fatalf("Hello has unexpected type %v", obj.Type())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package loadpkg

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestLoadModulePackage type-checks a real module package through the
// full std closure from source.
func TestLoadModulePackage(t *testing.T) {
	l := New(moduleRoot(t))
	pkgs, err := l.Load("./internal/procfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "supremm/internal/procfs" {
		t.Fatalf("PkgPath = %q", p.PkgPath)
	}
	if p.Types.Scope().Lookup("Snapshot") == nil {
		t.Fatal("procfs.Snapshot not in package scope")
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("no use information recorded")
	}
}

// TestLoadReusesStd verifies the second Load call reuses the shared std
// packages instead of re-checking them.
func TestLoadReusesStd(t *testing.T) {
	l := New(moduleRoot(t))
	if _, err := l.Load("./internal/procfs"); err != nil {
		t.Fatal(err)
	}
	fmtPkg := l.typed["fmt"]
	if fmtPkg == nil {
		t.Fatal("fmt not loaded")
	}
	if _, err := l.Load("./internal/stats"); err != nil {
		t.Fatal(err)
	}
	if l.typed["fmt"] != fmtPkg {
		t.Fatal("fmt re-checked on second Load")
	}
}

// TestCheckDir type-checks a loose directory the way analysistest does.
func TestCheckDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.go"), `package a

import "fmt"

func Hello() string { return fmt.Sprintf("%d", 42) }
`)
	l := New(moduleRoot(t))
	p, err := l.CheckDir(dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	obj := p.Types.Scope().Lookup("Hello")
	if obj == nil {
		t.Fatal("Hello not found")
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		t.Fatalf("Hello has unexpected type %v", obj.Type())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// tempModule lays out a throwaway module for failure-mode tests.
func tempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	for name, src := range files {
		writeFile(t, filepath.Join(dir, name), src)
	}
	return dir
}

// TestCheckDirSyntaxErrorFailsLoudly: a broken testdata file must
// surface as an error, never as a silently smaller package.
func TestCheckDirSyntaxErrorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad.go"), "package a\n\nfunc Broken( {\n")
	l := New(moduleRoot(t))
	if _, err := l.CheckDir(dir, "a"); err == nil {
		t.Fatal("CheckDir succeeded on a file with a syntax error")
	}
}

// TestCheckDirTypeErrorFailsLoudly: type errors in testdata packages
// must fail the load, not produce partial type information.
func TestCheckDirTypeErrorFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad.go"), "package a\n\nfunc F() int { return \"not an int\" }\n")
	l := New(moduleRoot(t))
	if _, err := l.CheckDir(dir, "a"); err == nil {
		t.Fatal("CheckDir succeeded on a package with a type error")
	}
}

// TestLoadSyntaxErrorFailsLoudly: go list does not parse function
// bodies, so the loader's own parse step must catch body-level syntax
// errors and name the package.
func TestLoadSyntaxErrorFailsLoudly(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"pkg/bad.go": "package pkg\n\nfunc Broken( {\n",
	})
	l := New(dir)
	_, err := l.Load("./pkg")
	if err == nil {
		t.Fatal("Load succeeded on a package with a syntax error")
	}
	if !strings.Contains(err.Error(), "pkg") {
		t.Errorf("error does not name the failing package: %v", err)
	}
}

// TestLoadBuildTagVariant: files excluded by build constraints are the
// go tool's decision — the loader honors the file list go list
// computes and type-checks what remains.
func TestLoadBuildTagVariant(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"pkg/a.go": "package pkg\n\nfunc A() int { return 1 }\n",
		"pkg/b_tagged.go": "//go:build someotherplatform\n\npackage pkg\n\n" +
			"func B() { callsSomethingUndefined() }\n",
	})
	l := New(dir)
	pkgs, err := l.Load("./pkg")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	scope := pkgs[0].Types.Scope()
	if scope.Lookup("A") == nil {
		t.Error("A missing from package scope")
	}
	if scope.Lookup("B") != nil {
		t.Error("build-tag-excluded B leaked into the package scope")
	}
}

// TestLoadCgoOnlyPackageFailsLoudly: the loader pins CGO_ENABLED=0; a
// package left with no buildable files must be a loud error, not an
// empty success.
func TestLoadCgoOnlyPackageFailsLoudly(t *testing.T) {
	dir := tempModule(t, map[string]string{
		"pkg/c.go": "package pkg\n\nimport \"C\"\n\nfunc UsesCgo() {}\n",
	})
	l := New(dir)
	if _, err := l.Load("./pkg"); err == nil {
		t.Fatal("Load succeeded on a cgo-only package under CGO_ENABLED=0")
	}
}

// Package suite binds the supremmlint analyzers to the parts of the
// tree whose invariants they enforce. The analyzers themselves are
// scope-free (so analysistest can exercise them on testdata packages);
// this registry is the single place that says where each invariant
// holds, and DESIGN.md's "Static analysis" section documents why.
package suite

import (
	"strings"

	"supremm/internal/analysis"
	"supremm/internal/analysis/counterdelta"
	"supremm/internal/analysis/deferclose"
	"supremm/internal/analysis/errsink"
	"supremm/internal/analysis/globalrand"
	"supremm/internal/analysis/hotalloc"
	"supremm/internal/analysis/lockcheck"
	"supremm/internal/analysis/publishmut"
	"supremm/internal/analysis/untrustedlen"
	"supremm/internal/analysis/walltime"
)

// Scoped is an analyzer plus the package/file scope it applies to.
type Scoped struct {
	*analysis.Analyzer
	// PkgMatch gates whole packages by import path.
	PkgMatch func(pkgPath string) bool
	// FileMatch, when non-nil, further gates individual files by base
	// name within a matched package.
	FileMatch func(base string) bool
}

// Analyzers returns the full supremmlint suite with its scopes.
func Analyzers() []Scoped {
	return []Scoped{
		{
			// Raw counters flow from procfs through taccstats into ingest;
			// everywhere else they are already reduced to float deltas.
			Analyzer: counterdelta.Analyzer,
			PkgMatch: pkgIn("supremm/internal/procfs", "supremm/internal/taccstats", "supremm/internal/ingest"),
		},
		{
			// The deterministic core: same (config, seed) in, bit-identical
			// artifacts out. internal/serve joins the scope because its
			// golden responses must not depend on the wall clock — the
			// daemon takes an injected clock (Config.Now) and the real
			// time.Now lives only in cmd/supremmd.
			Analyzer: walltime.Analyzer,
			PkgMatch: pkgIn("supremm/internal/sim", "supremm/internal/workload", "supremm/internal/ingest",
				"supremm/internal/serve"),
		},
		{
			// Reproducibility is a whole-tree property: any package drawing
			// from the process-global generator can perturb a simulation.
			Analyzer: globalrand.Analyzer,
			PkgMatch: pkgUnder("supremm"),
		},
		{
			// The declared hot paths: the streaming parser, the
			// schema-compiled interval reduction (PR 1's alloc budget),
			// and the columnar store — its binary codec and aggregation
			// kernels are the daemon's load and query inner loops.
			Analyzer: hotalloc.Analyzer,
			PkgMatch: pkgIn("supremm/internal/taccstats", "supremm/internal/ingest",
				"supremm/internal/store"),
			FileMatch: func(base string) bool {
				switch base {
				case "stream.go", "format.go", "plan.go", "raw.go", "accumulator.go",
					"columns.go", "codec.go", "query.go", "index.go":
					return true
				}
				return false
			},
		},
		{
			// The artifact emitters (report renderers, cmd tools writing
			// figures and warehouse files) plus the degraded-mode ingest
			// and fault injector: quarantine and retry decisions hinge on
			// seeing every I/O error, so none may be dropped there. The
			// query daemon is a sink too: a dropped response-write error
			// would silently truncate API replies, so internal/serve must
			// check every write (failures feed its write_failures metric).
			// internal/store joins the scope with the binary codec: a
			// dropped SaveBinary write error would leave a torn
			// jobs.supremm that every later daemon start trips over.
			Analyzer: errsink.Analyzer,
			PkgMatch: func(pkgPath string) bool {
				switch pkgPath {
				case "supremm/internal/report", "supremm/internal/ingest", "supremm/internal/faultinject",
					"supremm/internal/serve", "supremm/internal/store":
					return true
				}
				return strings.HasPrefix(pkgPath, "supremm/cmd/")
			},
		},
		{
			// The packages where a leaked mutex is fatal to the
			// always-available promise: serve's reload/cache/metrics/
			// breaker locking, the store's internals, and the chaos
			// driver's shared state (faultinject.ServeChaos runs
			// concurrently with the client fleet it torments). A lock held
			// past a forgotten early return wedges every later reload or
			// query.
			Analyzer: lockcheck.Analyzer,
			PkgMatch: pkgIn("supremm/internal/serve", "supremm/internal/store",
				"supremm/internal/faultinject"),
		},
		{
			// Everywhere Columns/Snapshot values are built and published:
			// the store constructs them, serve swaps them through the
			// atomic pointer, ingest assembles them per realm. One
			// post-publish write reintroduces the reader race the
			// immutable-snapshot design exists to prevent.
			Analyzer: publishmut.Analyzer,
			PkgMatch: pkgIn("supremm/internal/store", "supremm/internal/serve", "supremm/internal/ingest"),
		},
		{
			// The decode surfaces that consume bytes this process did not
			// write: the store's binary codec and the taccstats parsers.
			// A length field must be bounds-checked before it sizes an
			// allocation, an index, or a copy.
			Analyzer: untrustedlen.Analyzer,
			PkgMatch: pkgIn("supremm/internal/store", "supremm/internal/taccstats"),
		},
		{
			// The reload paths and the cmd entry points open files by the
			// thousand (per-host archives) or per SIGHUP (snapshot,
			// realms); a descriptor leaked per iteration kills the daemon
			// with EMFILE long after the faulty commit landed.
			// faultinject joined when it grew the serve-layer chaos
			// drivers: its heal/tear paths open and rename files in loops.
			// internal/store joined with the self-healing pipeline: the
			// scrubber re-opens every shard each sweep, and the
			// quarantine/repair/atomic-write paths open files and
			// directory handles on the reload hot path.
			Analyzer: deferclose.Analyzer,
			PkgMatch: func(pkgPath string) bool {
				switch pkgPath {
				case "supremm/internal/serve", "supremm/internal/ingest",
					"supremm/internal/faultinject", "supremm/internal/store":
					return true
				}
				return strings.HasPrefix(pkgPath, "supremm/cmd/")
			},
		},
	}
}

func pkgIn(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}

func pkgUnder(prefix string) func(string) bool {
	return func(pkgPath string) bool {
		return pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/")
	}
}

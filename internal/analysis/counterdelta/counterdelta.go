// Package counterdelta flags raw subtraction of uint64 counter values.
//
// TACC_Stats event counters are monotonic but wrap at the 64-bit
// register width and are reprogrammed (reset to zero) at job
// boundaries, so `cur - prev` on raw counters silently produces a
// near-2^64 garbage delta whenever a wrap or reset lands inside an
// interval. All counter differencing must go through a reviewed
// wraparound-safe helper; such helpers are blessed by putting the
// `supremmlint:wrapsafe` directive in their doc comment.
//
// Subtractions with a constant operand (digit arithmetic, bounds
// checks like `v > maxU-d`) are not counter deltas and are ignored.
package counterdelta

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
)

// Directive marks a function whose body is allowed to subtract raw
// counter values because its wraparound handling has been reviewed.
const Directive = "supremmlint:wrapsafe"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "counterdelta",
	Doc:  "flags raw a-b on uint64 counter values outside wraparound-safe helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if analysis.FuncHasDirective(n, Directive) {
					return false // reviewed helper: skip its whole body
				}
			case *ast.BinaryExpr:
				if n.Op == token.SUB && isRawCounterOperand(pass, n.X) && isRawCounterOperand(pass, n.Y) {
					pass.Reportf(n.OpPos, "raw subtraction of uint64 counter values wraps at 64 bits; use a wraparound-safe helper (see ingest.eventDelta) or bless the function with //%s", Directive)
				}
			case *ast.AssignStmt:
				if n.Tok == token.SUB_ASSIGN && len(n.Lhs) == 1 && len(n.Rhs) == 1 &&
					isRawCounterOperand(pass, n.Lhs[0]) && isRawCounterOperand(pass, n.Rhs[0]) {
					pass.Reportf(n.TokPos, "raw -= on uint64 counter values wraps at 64 bits; use a wraparound-safe helper (see ingest.eventDelta) or bless the function with //%s", Directive)
				}
			}
			return true
		})
	}
	return nil
}

// isRawCounterOperand reports whether e is a non-constant expression
// whose type is (or is defined on) uint64 — the representation every
// raw counter in the pipeline uses.
func isRawCounterOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // untyped or constant-folded: not a counter read
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

package counterdelta

// eventDelta is the blessed wraparound-safe helper shape.
//
//supremmlint:wrapsafe — reset/wrap semantics reviewed.
func eventDelta(prev, cur uint64) float64 {
	if cur >= prev {
		return float64(cur - prev)
	}
	return float64(cur)
}

func rawDelta(prev, cur uint64) float64 {
	return float64(cur - prev) // want `raw subtraction of uint64 counter values`
}

func rawSubAssign(prev uint64) uint64 {
	acc := ^uint64(0)
	acc -= prev // want `raw -= on uint64 counter values`
	return acc
}

type counter uint64

func namedCounter(a, b counter) counter {
	return a - b // want `raw subtraction of uint64 counter values`
}

func constantOperands(v uint64) uint64 {
	const maxU = ^uint64(0)
	if v > maxU-10 { // constant operand: digit/bounds arithmetic, not a counter delta
		return 0
	}
	return v - 1
}

func signedMath(a, b int64) int64 {
	return a - b // int64 timestamps are not wrap-prone counters
}

func escapeHatch(prev, cur uint64) uint64 {
	return cur - prev //supremmlint:allow counterdelta: exercising the escape hatch
}

var _ = eventDelta
var _ = rawDelta
var _ = rawSubAssign
var _ = namedCounter
var _ = constantOperands
var _ = signedMath
var _ = escapeHatch

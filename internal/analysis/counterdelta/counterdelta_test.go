package counterdelta_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/counterdelta"
)

func TestCounterDelta(t *testing.T) {
	analysistest.Run(t, counterdelta.Analyzer, "counterdelta")
}

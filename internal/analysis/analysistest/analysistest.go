// Package analysistest runs a supremmlint analyzer over a testdata
// package and checks its diagnostics against the `// want` comment
// expectations embedded in the sources, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest:
//
//	rand.Intn(6) // want `seeded \*rand\.Rand`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every diagnostic reported on that line must be
// matched by one of them, and every expectation must be consumed.
// Testdata packages may span multiple files; expectations are matched
// per (file, line).
//
// A pattern may be preceded by a column constraint `@c` or `@c1-c2`,
// which additionally requires the diagnostic's column to equal c (or
// fall within [c1,c2]):
//
//	mu.Lock() // want @2-4 `not released on every path`
//
// Column constraints pin an expectation to one of several expressions
// on the same line — without them, line-only matching cannot tell two
// same-message findings apart.
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"supremm/internal/analysis"
	"supremm/internal/analysis/loadpkg"
)

// Run loads testdata/src/<pkg> relative to the calling test's directory
// and applies the analyzer, failing the test on any mismatch between
// reported diagnostics and want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l := loadpkg.New(root)
	p, err := l.CheckDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		PkgPath:   p.PkgPath,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, l.Fset, dir)
	for _, d := range pass.Diagnostics() {
		key := lineKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if !w.used && w.matchesColumn(d.Pos.Column) && w.re.MatchString(d.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d:%d: %s", key.file, key.line, d.Pos.Column, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic%s matching %q", key.file, key.line, w.colDesc(), w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
	// colLo/colHi constrain the diagnostic's column when colLo > 0.
	colLo, colHi int
}

func (w want) matchesColumn(col int) bool {
	return w.colLo == 0 || (col >= w.colLo && col <= w.colHi)
}

func (w want) colDesc() string {
	switch {
	case w.colLo == 0:
		return ""
	case w.colLo == w.colHi:
		return " at column " + strconv.Itoa(w.colLo)
	default:
		return " in columns " + strconv.Itoa(w.colLo) + "-" + strconv.Itoa(w.colHi)
	}
}

// wantPattern tokenizes a want comment body: column constraints
// (`@c` / `@c1-c2`) apply to the next pattern; patterns are backquoted
// or double-quoted regular expressions.
var wantPattern = regexp.MustCompile("@(\\d+)(?:-(\\d+))?|`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, dir string) map[lineKey][]want {
	t.Helper()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[lineKey][]want)
	for _, pkg := range pkgs {
		for filename, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					key := lineKey{file: filepath.Base(filename), line: fset.Position(c.Pos()).Line}
					colLo, colHi := 0, 0
					for _, m := range wantPattern.FindAllStringSubmatch(text[len("want "):], -1) {
						if m[1] != "" {
							colLo, _ = strconv.Atoi(m[1])
							colHi = colLo
							if m[2] != "" {
								colHi, _ = strconv.Atoi(m[2])
							}
							if colHi < colLo {
								t.Fatalf("%s:%d: bad column range @%s-%s", key.file, key.line, m[1], m[2])
							}
							continue
						}
						expr := m[3]
						if expr == "" {
							expr = m[4]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, expr, err)
						}
						wants[key] = append(wants[key], want{re: re, colLo: colLo, colHi: colHi})
						colLo, colHi = 0, 0
					}
				}
			}
		}
	}
	return wants
}

// Package analysistest runs a supremmlint analyzer over a testdata
// package and checks its diagnostics against the `// want` comment
// expectations embedded in the sources, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest:
//
//	rand.Intn(6) // want `seeded \*rand\.Rand`
//
// Each `// want` comment carries one or more backquoted or quoted
// regular expressions; every diagnostic reported on that line must be
// matched by one of them, and every expectation must be consumed.
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"supremm/internal/analysis"
	"supremm/internal/analysis/loadpkg"
)

// Run loads testdata/src/<pkg> relative to the calling test's directory
// and applies the analyzer, failing the test on any mismatch between
// reported diagnostics and want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	l := loadpkg.New(root)
	p, err := l.CheckDir(dir, pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      l.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		TypesInfo: p.Info,
		PkgPath:   p.PkgPath,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, l.Fset, dir)
	for _, d := range pass.Diagnostics() {
		key := lineKey{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line}
		matched := false
		for i, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", key.file, key.line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantPattern pulls the quoted or backquoted expectations out of a
// want comment.
var wantPattern = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, dir string) map[lineKey][]want {
	t.Helper()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[lineKey][]want)
	for _, pkg := range pkgs {
		for filename, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					key := lineKey{file: filepath.Base(filename), line: fset.Position(c.Pos()).Line}
					for _, m := range wantPattern.FindAllStringSubmatch(text[len("want "):], -1) {
						expr := m[1]
						if expr == "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", key.file, key.line, expr, err)
						}
						wants[key] = append(wants[key], want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// Package cfg builds per-function control-flow graphs for the
// flow-sensitive supremmlint analyzers, on top of go/ast alone (the
// canonical golang.org/x/tools/go/cfg is unavailable in the no-network
// build container).
//
// A Graph has one Block per straight-line statement run plus three
// synthetic blocks: Entry, Exit (every `return` and the fall-off end of
// the body) and Panic (every explicit `panic(...)` statement). Branch
// blocks carry their condition expression and distinguish their true
// and false out-edges, so analyses can refine state per branch (the
// `err != nil` split deferclose relies on). Calls the caller declares
// non-returning (os.Exit, log.Fatal) terminate their block with no
// out-edge at all: state held there reaches no exit, which is exactly
// right for process-death paths where deferred cleanup never runs.
//
// Statement granularity: control statements are decomposed (an if
// contributes its init and cond to the branch block; bodies get their
// own blocks), everything else is appended to the current block as one
// node. Nested function literals are *not* part of the enclosing
// graph — their bodies are separate functions with separate graphs —
// so analyzers walk block nodes with Inspect, which prunes them.
//
// Forward runs a classic iterative forward-dataflow fixpoint over a
// graph; see its doc for the lattice contract.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// EdgeKind distinguishes branch edges from plain fallthrough edges.
type EdgeKind uint8

const (
	// EdgeNormal is an unconditional successor edge.
	EdgeNormal EdgeKind = iota
	// EdgeTrue is taken when the block's Cond evaluated true.
	EdgeTrue
	// EdgeFalse is taken when the block's Cond evaluated false.
	EdgeFalse
)

// Edge is one directed control-flow edge.
type Edge struct {
	To   *Block
	Kind EdgeKind
}

// Block is a straight-line run of statements with no internal control
// transfer.
type Block struct {
	Index int
	// Kind labels the block's origin for debugging ("entry", "if.then",
	// "for.head", ...).
	Kind string
	// Nodes are the statements (and decomposed control expressions)
	// executed in order. Control statements are never included whole;
	// their pieces are.
	Nodes []ast.Node
	// Cond is the branch condition evaluated after Nodes, when the
	// block ends in a two-way branch (if/for conditions). Its EdgeTrue
	// and EdgeFalse out-edges are then meaningful.
	Cond ast.Expr
	// Out are the successor edges; In the predecessor blocks.
	Out []Edge
	In  []*Block
	// Reachable is set when the block can be reached from Entry.
	Reachable bool
}

// Succs returns the successor blocks (edge targets in order).
func (b *Block) Succs() []*Block {
	out := make([]*Block, len(b.Out))
	for i, e := range b.Out {
		out[i] = e.To
	}
	return out
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d(%s)", b.Index, b.Kind)
	return sb.String()
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Body is the function body the graph was built from.
	Body *ast.BlockStmt
	// Blocks holds every block, Entry first.
	Blocks []*Block
	// Entry is the synthetic entry block (it may also carry the first
	// run of statements).
	Entry *Block
	// Exit is the synthetic normal-exit block: every return statement
	// and the fall-off end of the body flow here. It has no nodes.
	Exit *Block
	// Panic is the synthetic panic-exit block: every explicit
	// `panic(...)` statement flows here. Deferred functions still run
	// on these paths, unlike the no-out-edge process-death blocks.
	Panic *Block
}

// Options configures graph construction.
type Options struct {
	// NoReturn reports whether a call never returns control (os.Exit,
	// log.Fatal). Such calls terminate their block with no out-edges.
	// Nil means no calls are treated as non-returning.
	NoReturn func(*ast.CallExpr) bool
}

// New builds the graph for a function body. A nil body (declarations
// without bodies) yields a graph whose Entry connects straight to Exit.
func New(body *ast.BlockStmt, opt Options) *Graph {
	g := &Graph{Body: body}
	b := &builder{g: g, opt: opt, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.edge(b.cur, g.Exit, EdgeNormal)
	}
	g.markReachable()
	return g
}

// markReachable flags every block reachable from Entry.
func (g *Graph) markReachable() {
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Reachable {
			return
		}
		b.Reachable = true
		for _, e := range b.Out {
			visit(e.To)
		}
	}
	visit(g.Entry)
}

// labelInfo tracks one label's target block and, when the labeled
// statement is a loop or switch, its break/continue destinations.
type labelInfo struct {
	start *Block // the labeled statement's block (goto target)
	brk   *Block // break <label> target (set when the label wraps a loop/switch/select)
	cont  *Block // continue <label> target (loops only)
}

type builder struct {
	g   *Graph
	opt Options
	cur *Block // nil while the current point is unreachable (after return/goto)

	labels map[string]*labelInfo
	// pendingLabel is the label wrapping the next loop/switch statement,
	// so its break/continue targets can be recorded.
	pendingLabel *labelInfo

	breakStack    []*Block
	continueStack []*Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, kind EdgeKind) {
	from.Out = append(from.Out, Edge{To: to, Kind: kind})
	to.In = append(to.In, from)
}

// add appends a node to the current block (dropped while unreachable).
func (b *builder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{start: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch statement and
// registers its break (and optionally continue) targets.
func (b *builder) takeLabel(brk, cont *Block) {
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, li.start, EdgeNormal)
		}
		b.cur = li.start
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.edge(b.cur, b.g.Exit, EdgeNormal)
			b.cur = nil
		}

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.switchBody(s.Body, s.Assign)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.cur != nil {
			if isPanicCall(call) {
				b.edge(b.cur, b.g.Panic, EdgeNormal)
				b.cur = nil
			} else if b.opt.NoReturn != nil && b.opt.NoReturn(call) {
				// Process death: no out-edge, deferred cleanup never runs.
				b.cur = nil
			}
		}

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec, empty statements: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) branch(s *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	switch s.Tok {
	case token.BREAK:
		var target *Block
		if s.Label != nil {
			target = b.label(s.Label.Name).brk
		} else if n := len(b.breakStack); n > 0 {
			target = b.breakStack[n-1]
		}
		if target != nil {
			b.edge(b.cur, target, EdgeNormal)
		}
		b.cur = nil
	case token.CONTINUE:
		var target *Block
		if s.Label != nil {
			target = b.label(s.Label.Name).cont
		} else if n := len(b.continueStack); n > 0 {
			target = b.continueStack[n-1]
		}
		if target != nil {
			b.edge(b.cur, target, EdgeNormal)
		}
		b.cur = nil
	case token.GOTO:
		b.edge(b.cur, b.label(s.Label.Name).start, EdgeNormal)
		b.cur = nil
	case token.FALLTHROUGH:
		// Connected by switchBody; the statement itself is a no-op node.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	then := b.newBlock("if.then")
	after := b.newBlock("if.after")
	if head != nil {
		head.Cond = s.Cond
		b.edge(head, then, EdgeTrue)
	}
	var els *Block
	if s.Else != nil {
		els = b.newBlock("if.else")
		if head != nil {
			b.edge(head, els, EdgeFalse)
		}
	} else if head != nil {
		b.edge(head, after, EdgeFalse)
	}
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after, EdgeNormal)
	}
	if s.Else != nil {
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, after, EdgeNormal)
		}
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head, EdgeNormal)
		contTarget = post
	}
	if b.cur != nil {
		b.edge(b.cur, head, EdgeNormal)
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		b.edge(head, body, EdgeTrue)
		b.edge(head, after, EdgeFalse)
	} else {
		b.edge(head, body, EdgeNormal)
	}
	b.takeLabel(after, contTarget)
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, contTarget)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, contTarget, EdgeNormal)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	// The range expression (and its key/value binding) evaluates at the
	// head; analyzers see the whole RangeStmt there but must not walk
	// its Body, which lives in its own blocks (Inspect handles this).
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	if b.cur != nil {
		b.edge(b.cur, head, EdgeNormal)
	}
	b.edge(head, body, EdgeNormal)
	b.edge(head, after, EdgeNormal)
	b.takeLabel(after, head)
	b.breakStack = append(b.breakStack, after)
	b.continueStack = append(b.continueStack, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head, EdgeNormal)
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.continueStack = b.continueStack[:len(b.continueStack)-1]
	b.cur = after
}

// switchBody builds expression and type switches: head fans out to one
// block per case clause; a missing default adds a head→after edge.
func (b *builder) switchBody(body *ast.BlockStmt, assign ast.Stmt) {
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock("switch.after")
	b.takeLabel(after, nil)
	b.breakStack = append(b.breakStack, after)
	hasDefault := false
	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, cc)
		cb := b.newBlock("case")
		for _, e := range cc.List {
			cb.Nodes = append(cb.Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		if head != nil {
			b.edge(head, cb, EdgeNormal)
		}
		clauseBlocks = append(clauseBlocks, cb)
	}
	if head != nil && !hasDefault {
		b.edge(head, after, EdgeNormal)
	}
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			if i+1 < len(clauseBlocks) && endsInFallthrough(cc.Body) {
				b.edge(b.cur, clauseBlocks[i+1], EdgeNormal)
			} else {
				b.edge(b.cur, after, EdgeNormal)
			}
		}
	}
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	for len(body) > 0 {
		last := body[len(body)-1]
		if ls, ok := last.(*ast.LabeledStmt); ok {
			body = []ast.Stmt{ls.Stmt}
			continue
		}
		br, ok := last.(*ast.BranchStmt)
		return ok && br.Tok == token.FALLTHROUGH
	}
	return false
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	after := b.newBlock("select.after")
	b.takeLabel(after, nil)
	b.breakStack = append(b.breakStack, after)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock("comm")
		if cc.Comm != nil {
			cb.Nodes = append(cb.Nodes, cc.Comm)
		}
		if head != nil {
			b.edge(head, cb, EdgeNormal)
		}
		b.cur = cb
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after, EdgeNormal)
		}
	}
	// A select never falls through its head: control leaves only
	// through a clause (an empty select blocks forever).
	b.breakStack = b.breakStack[:len(b.breakStack)-1]
	b.cur = after
}

// isPanicCall recognizes a direct call to the predeclared panic. A
// shadowed panic would be misclassified; no reasonable code shadows it.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Inspect walks n like ast.Inspect but does not descend into nested
// function literals: their statements belong to their own graphs, not
// the enclosing function's blocks.
func Inspect(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return f(x)
	})
}

// Transfer is the lattice contract for Forward.
type Transfer[S any] struct {
	// Flow computes the state after executing b's nodes from the state
	// on entry to b. It must return a fresh value and leave in intact.
	Flow func(b *Block, in S) S
	// Edge optionally refines the out-state along one edge (branch
	// sensitivity: the err != nil split). It must return a fresh value.
	// Nil means no refinement.
	Edge func(b *Block, e Edge, out S) S
	// Join merges two states flowing into the same block. It must
	// return a fresh value.
	Join func(a, b S) S
	// Equal reports lattice-value equality, ending the iteration.
	Equal func(a, b S) bool
}

// Forward computes the forward-dataflow fixpoint over g's reachable
// blocks: in(Entry) = boundary, in(b) = join of the (edge-refined)
// out-states of b's predecessors. It returns the in-state of every
// reachable block; the in-states of g.Exit and g.Panic are the states
// at the function's normal and panicking exits. The lattice must be
// finite-height (sets/bitmasks over program facts) or iteration is
// capped without converging.
func Forward[S any](g *Graph, boundary S, tr Transfer[S]) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = boundary
	// Tiny graphs: round-robin iteration converges in a few sweeps.
	maxSweeps := 2*len(g.Blocks) + 8
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, b := range g.Blocks {
			if !b.Reachable {
				continue
			}
			state, seeded := in[b]
			if !seeded && b != g.Entry {
				continue // no predecessor state has arrived yet
			}
			out := tr.Flow(b, state)
			for _, e := range b.Out {
				eo := out
				if tr.Edge != nil {
					eo = tr.Edge(b, e, out)
				}
				prev, ok := in[e.To]
				var next S
				if ok {
					next = tr.Join(prev, eo)
				} else {
					next = eo
				}
				if !ok || !tr.Equal(prev, next) {
					in[e.To] = next
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a file body containing one function named fn)
// and returns that function's graph.
func buildFunc(t *testing.T, src, fn string, opt Options) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return New(fd.Body, opt), fset
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// exitPreds returns the Kind labels of the blocks flowing into blk.
func kinds(blocks []*Block) []string {
	var out []string
	for _, b := range blocks {
		out = append(out, b.Kind)
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g, _ := buildFunc(t, `func f() { x := 1; _ = x }`, "f", Options{})
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry has %d nodes, want 2", len(g.Entry.Nodes))
	}
	if len(g.Entry.Out) != 1 || g.Entry.Out[0].To != g.Exit {
		t.Fatalf("entry should flow straight to exit, got %v", kinds(g.Entry.Succs()))
	}
	if !g.Exit.Reachable {
		t.Fatal("exit unreachable")
	}
}

func TestIfBranchEdges(t *testing.T) {
	g, _ := buildFunc(t, `func f(c bool) int {
	if c {
		return 1
	} else {
		return 0
	}
}`, "f", Options{})
	if g.Entry.Cond == nil {
		t.Fatal("entry should carry the branch condition")
	}
	var sawTrue, sawFalse bool
	for _, e := range g.Entry.Out {
		switch e.Kind {
		case EdgeTrue:
			sawTrue = true
		case EdgeFalse:
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatalf("want true+false edges, got %+v", g.Entry.Out)
	}
	// Both returns flow into Exit; the if.after block is unreachable
	// (its fall-off edge exists but carries no reachable state).
	reachablePreds := 0
	for _, p := range g.Exit.In {
		if p.Reachable {
			reachablePreds++
		}
	}
	if reachablePreds != 2 {
		t.Fatalf("exit has %d reachable preds, want 2 (%v)", reachablePreds, kinds(g.Exit.In))
	}
	for _, b := range g.Blocks {
		if b.Kind == "if.after" && b.Reachable {
			t.Fatal("if.after should be unreachable (both branches return)")
		}
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
	for i := 0; i < 10; i++ {
		if i == 5 {
			break
		}
	}
}`, "f", Options{})
	var head, post *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.head":
			head = b
		case "for.post":
			post = b
		}
	}
	if head == nil || post == nil {
		t.Fatal("missing for.head/for.post blocks")
	}
	if head.Cond == nil {
		t.Fatal("loop head should carry the condition")
	}
	found := false
	for _, e := range post.Out {
		if e.To == head {
			found = true
		}
	}
	if !found {
		t.Fatal("no back edge from post to head")
	}
	if !g.Exit.Reachable {
		t.Fatal("exit unreachable")
	}
}

func TestRangeLoop(t *testing.T) {
	g, _ := buildFunc(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f", Options{})
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no range.head")
	}
	if len(head.Out) != 2 {
		t.Fatalf("range head should have body+after edges, got %d", len(head.Out))
	}
}

func TestPanicEdge(t *testing.T) {
	g, _ := buildFunc(t, `func f(c bool) {
	if c {
		panic("boom")
	}
}`, "f", Options{})
	if !g.Panic.Reachable {
		t.Fatal("panic exit unreachable")
	}
	if len(g.Panic.In) != 1 {
		t.Fatalf("panic exit has %d preds, want 1", len(g.Panic.In))
	}
	if !g.Exit.Reachable {
		t.Fatal("normal exit should still be reachable")
	}
}

func TestNoReturnCallCutsFlow(t *testing.T) {
	src := `func f(c bool) {
	if c {
		exit(1)
	}
	probe()
}`
	noReturn := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "exit"
	}
	g, _ := buildFunc(t, src, "f", Options{NoReturn: noReturn})
	// The exit(1) block must have no out-edges: its state reaches no
	// function exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "exit" {
				if len(b.Out) != 0 {
					t.Fatalf("no-return block has %d out edges", len(b.Out))
				}
			}
		}
	}
	if !g.Exit.Reachable {
		t.Fatal("exit should be reachable via the c==false path")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, _ := buildFunc(t, `func f(x int) int {
	switch x {
	case 1:
		fallthrough
	case 2:
		return 2
	default:
		return 3
	}
}`, "f", Options{})
	var caseBlocks []*Block
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 3 {
		t.Fatalf("got %d case blocks, want 3", len(caseBlocks))
	}
	// case 1 falls through to case 2's block.
	found := false
	for _, e := range caseBlocks[0].Out {
		if e.To == caseBlocks[1] {
			found = true
		}
	}
	if !found {
		t.Fatal("fallthrough edge missing")
	}
	// With a default present, the head has no direct edge to after.
	for _, e := range g.Entry.Out {
		if e.To.Kind == "switch.after" {
			t.Fatal("head should not reach switch.after when default exists")
		}
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _ := buildFunc(t, `func f(c bool) {
top:
	if c {
		goto done
	}
	goto top
done:
	return
}`, "f", Options{})
	if !g.Exit.Reachable {
		t.Fatal("exit unreachable through goto chain")
	}
	var top *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.top" {
			top = b
		}
	}
	if top == nil || len(top.In) != 2 {
		t.Fatalf("label.top should have 2 preds (entry + backward goto), got %v", top)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g, _ := buildFunc(t, `func f() {
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			break outer
		}
	}
}`, "f", Options{})
	if !g.Exit.Reachable {
		t.Fatal("exit unreachable")
	}
}

func TestSelect(t *testing.T) {
	g, _ := buildFunc(t, `func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`, "f", Options{})
	comms := 0
	for _, b := range g.Blocks {
		if b.Kind == "comm" {
			comms++
		}
	}
	if comms != 2 {
		t.Fatalf("got %d comm blocks, want 2", comms)
	}
	if !g.Exit.Reachable {
		t.Fatal("exit unreachable")
	}
}

func TestInspectPrunesFuncLit(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", `package p
func f() {
	g := func() { inner() }
	g()
}`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	ast.Inspect(file, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok {
			for _, s := range fd.Body.List {
				Inspect(s, func(x ast.Node) bool {
					if c, ok := x.(*ast.CallExpr); ok {
						if id, ok := c.Fun.(*ast.Ident); ok {
							calls = append(calls, id.Name)
						}
					}
					return true
				})
			}
		}
		return true
	})
	if strings.Join(calls, ",") != "g" {
		t.Fatalf("Inspect should see only the outer call, got %v", calls)
	}
}

// TestForwardFixpoint runs a tiny may-analysis: which string facts have
// been "set" on some path. It checks branch-edge refinement too.
func TestForwardFixpoint(t *testing.T) {
	g, _ := buildFunc(t, `func f(c bool) {
	set("a")
	if c {
		set("b")
		return
	}
	set("c")
}`, "f", Options{})

	type S = map[string]bool
	clone := func(s S) S {
		out := make(S, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}
	states := Forward(g, S{}, Transfer[S]{
		Flow: func(b *Block, in S) S {
			out := clone(in)
			for _, n := range b.Nodes {
				Inspect(n, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "set" {
						if lit, ok := call.Args[0].(*ast.BasicLit); ok {
							out[strings.Trim(lit.Value, `"`)] = true
						}
					}
					return true
				})
			}
			return out
		},
		Join: func(a, b S) S {
			out := clone(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b S) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	exit := states[g.Exit]
	if !exit["a"] || !exit["b"] || !exit["c"] {
		t.Fatalf("exit state missing facts: %v", exit)
	}
}

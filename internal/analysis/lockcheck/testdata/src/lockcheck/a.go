// Package lockcheck seeds release-on-every-path violations for the
// lockcheck analyzer, alongside the accepted idioms that must stay
// silent.
package lockcheck

import "sync"

type counterStore struct {
	mu   sync.Mutex
	vals map[string]int
}

// leakOnEarlyReturn forgets the unlock on the miss path.
func (s *counterStore) leakOnEarlyReturn(key string) int {
	s.mu.Lock() // want `s\.mu\.Lock is not released on every path`
	v, ok := s.vals[key]
	if !ok {
		return -1
	}
	s.mu.Unlock()
	return v
}

// deferredIsFine is the preferred idiom: one defer covers every exit.
func (s *counterStore) deferredIsFine(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[key]
}

// pairedOnAllPaths unlocks directly on both paths: allowed.
func (s *counterStore) pairedOnAllPaths(key string) int {
	s.mu.Lock()
	if v, ok := s.vals[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// conditionalLock acquires on only one path; the join with the
// lock-free path must not trip the checker.
func (s *counterStore) conditionalLock(key string, locked bool) int {
	if locked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return s.vals[key]
}

// panicWhileHeld leaks the lock on the panic edge only.
func (s *counterStore) panicWhileHeld(key string) int {
	s.mu.Lock() // want `a panic path leaks it`
	v, ok := s.vals[key]
	if !ok {
		panic("missing " + key)
	}
	s.mu.Unlock()
	return v
}

// handoff intentionally returns holding the lock for the caller to
// release; the reviewed exception is recorded with a directive.
func (s *counterStore) handoff() {
	s.mu.Lock() //supremmlint:allow lockcheck: lock handed to caller, released by commit()
}

// loopReacquire locks and unlocks once per iteration: balanced.
func (s *counterStore) loopReacquire(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		total += s.vals[k]
		s.mu.Unlock()
	}
	return total
}

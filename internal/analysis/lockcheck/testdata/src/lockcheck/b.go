package lockcheck

import "sync"

type gauges struct {
	mu sync.RWMutex
	m  map[string]float64
}

// readLeak leaks the read lock on the early return; read locks are
// tracked separately from write locks.
func (g *gauges) readLeak(key string) float64 {
	g.mu.RLock() // want @2-8 `g\.mu\.RLock is not released on every path`
	v, ok := g.m[key]
	if !ok {
		return 0
	}
	g.mu.RUnlock()
	return v
}

// deferViaClosure releases through a deferred function literal.
func (g *gauges) deferViaClosure() float64 {
	g.mu.RLock()
	defer func() { g.mu.RUnlock() }()
	return g.m["x"]
}

// writeThenRead pairs each mode on every path; no mixing confusion.
func (g *gauges) writeThenRead(key string, v float64) float64 {
	g.mu.Lock()
	g.m[key] = v
	g.mu.Unlock()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.m[key]
}

// lockInGoroutine: the literal body is its own function; the leak
// inside it is reported against the literal, not the host.
func (g *gauges) lockInGoroutine(done chan struct{}) {
	go func() {
		g.mu.Lock() // want `g\.mu\.Lock is not released on every path`
		if g.m == nil {
			return
		}
		g.mu.Unlock()
		<-done
	}()
}

// doubleLeak acquires two locks on one line; column constraints tell
// the two same-line findings apart.
func doubleLeak(a, b *counterStore) {
	a.mu.Lock(); b.mu.Lock() // want @2 `a\.mu\.Lock is not released` @15 `b\.mu\.Lock is not released`
}

package lockcheck_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/lockcheck"
)

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "lockcheck")
}

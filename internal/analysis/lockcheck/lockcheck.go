// Package lockcheck proves, per function, that every sync.Mutex /
// sync.RWMutex acquisition is released on every path out of the
// function — early returns and explicit panics included.
//
// The serve daemon's reload path and the store's internals are the
// packages where a leaked lock is catastrophic: a single return that
// skips Unlock wedges every later reload (or every later query) behind
// a mutex nobody will ever release, which is precisely the
// "always-available aggregates" promise broken in the quietest way
// possible. The analyzer runs a forward dataflow over the function's
// CFG tracking, per lock path (`s.reloadMu`, `c.mu`, ...), the set of
// (held, deferred-unlock) states reachable at each point:
//
//   - `defer mu.Unlock()` (directly or inside a deferred function
//     literal) marks every later exit on that path as covered — the
//     preferred idiom;
//   - a direct `mu.Unlock()` on every path is also accepted (the
//     paired-unlock idiom used mid-function);
//   - a path reaching a return, the fall-off end, or a `panic(...)`
//     while a lock is held with no deferred unlock is a finding,
//     reported at the acquisition site.
//
// Read locks are tracked separately from write locks (RLock pairs with
// RUnlock, Lock with Unlock). sync.Mutex.TryLock is ignored: its
// conditional result makes hold-state a value question this analyzer
// does not model; reviewed call sites use the allow directive. Lock
// handoffs (a function intentionally returning with the lock held for
// its caller to release) are blessed the same way:
//
//	//supremmlint:allow lockcheck <why the lock legitimately outlives the function>
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
	"supremm/internal/analysis/cfg"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "flags mutexes acquired but not released on every path out of the function",
	Run:  run,
}

// Hold-state lattice per lock key: a bitmask over (held, deferred)
// pairs reachable along some path.
const (
	stIdle     = 1 << iota // not held, no deferred unlock pending
	stDeferred             // not held, deferred unlock registered (double-unlock at runtime; not this analyzer's concern)
	stHeld                 // held, no deferred unlock — the dangerous state at an exit
	stHeldDef              // held, deferred unlock registered
)

// lockFacts is the dataflow value for one lock key.
type lockFacts struct {
	mask uint8
	pos  token.Pos // first acquisition site seen (for reporting)
	name string    // display name ("s.reloadMu.Lock")
}

type state map[string]lockFacts

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range pass.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn analysis.FuncInfo) {
	// Fast pre-scan: skip the dataflow for lock-free functions.
	usesLocks := false
	cfg.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, _, ok := lockOp(pass.TypesInfo, call); ok {
				usesLocks = true
			}
		}
		return !usesLocks
	})
	if !usesLocks {
		return
	}

	g := pass.CFG(fn)
	states := cfg.Forward(g, state{}, cfg.Transfer[state]{
		Flow:  func(b *cfg.Block, in state) state { return flowBlock(pass.TypesInfo, b, in) },
		Join:  joinStates,
		Equal: equalStates,
	})

	reported := make(map[token.Pos]bool)
	report := func(s state, how string) {
		for _, facts := range s {
			if facts.mask&stHeld == 0 || reported[facts.pos] {
				continue
			}
			reported[facts.pos] = true
			pass.Reportf(facts.pos, "%s is not released on every path out of %s (%s); unlock on all paths or defer the unlock",
				facts.name, fn.Name, how)
		}
	}
	if s, ok := states[g.Exit]; ok {
		report(s, "a return path leaks it")
	}
	if s, ok := states[g.Panic]; ok {
		report(s, "a panic path leaks it")
	}
}

func flowBlock(info *types.Info, b *cfg.Block, in state) state {
	out := clone(in)
	for _, n := range b.Nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			applyDefer(info, d, out)
			continue
		}
		cfg.Inspect(n, func(x ast.Node) bool {
			if d, ok := x.(*ast.DeferStmt); ok {
				applyDefer(info, d, out)
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, name, op, ok := lockOp(info, call)
			if !ok {
				return true
			}
			facts := out[key]
			switch op {
			case opLock:
				facts.mask = shiftHeld(facts.mask, true)
				if facts.pos == token.NoPos || facts.pos == 0 {
					facts.pos = call.Pos()
					facts.name = name
				}
			case opUnlock:
				facts.mask = shiftHeld(facts.mask, false)
			}
			if facts.mask == 0 {
				facts.mask = stIdle
			}
			out[key] = facts
			return true
		})
	}
	return out
}

// applyDefer marks the deferred-unlock bit for every lock the deferred
// call (or deferred function literal) releases.
func applyDefer(info *types.Info, d *ast.DeferStmt, out state) {
	mark := func(call *ast.CallExpr) {
		key, name, op, ok := lockOp(info, call)
		if !ok || op != opUnlock {
			return
		}
		facts := out[key]
		facts.mask = setDeferred(facts.mask)
		if facts.mask == 0 {
			facts.mask = stDeferred
		}
		if facts.name == "" {
			facts.name = name
		}
		out[key] = facts
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				mark(call)
			}
			return true
		})
		return
	}
	mark(d.Call)
}

// shiftHeld moves every reachable (held, deferred) pair to the given
// held value, preserving the deferred bit.
func shiftHeld(mask uint8, held bool) uint8 {
	if mask == 0 {
		mask = stIdle
	}
	var out uint8
	for _, bit := range []struct {
		from    uint8
		defered bool
	}{{stIdle, false}, {stDeferred, true}, {stHeld, false}, {stHeldDef, true}} {
		if mask&bit.from == 0 {
			continue
		}
		switch {
		case held && bit.defered:
			out |= stHeldDef
		case held:
			out |= stHeld
		case bit.defered:
			out |= stDeferred
		default:
			out |= stIdle
		}
	}
	return out
}

// setDeferred marks the deferred bit on every reachable pair.
func setDeferred(mask uint8) uint8 {
	if mask == 0 {
		mask = stIdle
	}
	var out uint8
	if mask&(stIdle|stDeferred) != 0 {
		out |= stDeferred
	}
	if mask&(stHeld|stHeldDef) != 0 {
		out |= stHeldDef
	}
	return out
}

func joinStates(a, b state) state {
	out := clone(a)
	for k, bf := range b {
		af, ok := out[k]
		if !ok {
			// Absent means "never touched on that path": idle.
			af = lockFacts{mask: stIdle}
		}
		af.mask |= bf.mask
		if af.pos == 0 {
			af.pos, af.name = bf.pos, bf.name
		}
		out[k] = af
	}
	for k, af := range out {
		if _, ok := b[k]; !ok {
			af.mask |= stIdle
			out[k] = af
		}
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.mask != bv.mask || av.pos != bv.pos {
			return false
		}
	}
	return true
}

type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp classifies call as a mutex acquisition or release, returning
// the canonical lock-path key (read locks keyed separately from write
// locks), a display name, and the operation.
func lockOp(info *types.Info, call *ast.CallExpr) (key, name string, op lockOpKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", 0, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", 0, false
	}
	rt := recv.Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", 0, false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", 0, false
	}
	base, keyOK := analysis.ExprKey(info, sel.X)
	if !keyOK {
		return "", "", 0, false
	}
	display := types.ExprString(sel.X) + "." + fn.Name()
	switch fn.Name() {
	case "Lock":
		return base + "/w", display, opLock, true
	case "Unlock":
		return base + "/w", display, opUnlock, true
	case "RLock":
		return base + "/r", display, opLock, true
	case "RUnlock":
		return base + "/r", display, opUnlock, true
	}
	return "", "", 0, false
}

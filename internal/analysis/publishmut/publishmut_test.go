package publishmut_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/publishmut"
)

func TestPublishMut(t *testing.T) {
	analysistest.Run(t, publishmut.Analyzer, "publishmut")
}

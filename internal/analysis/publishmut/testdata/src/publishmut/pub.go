// Package publishmut seeds post-publish mutation violations. The local
// Columns/Snapshot types stand in for the store/serve snapshot types
// (the analyzer matches targets by name).
package publishmut

import "sync/atomic"

type Columns struct {
	N    int
	Vals []float64
}

type Snapshot struct {
	Rows int
	Tags map[string]string
}

var current atomic.Pointer[Snapshot]

var globalCols *Columns

// mutateAfterAtomicStore is the canonical violation: the snapshot is
// live for readers the instant Store returns.
func mutateAfterAtomicStore(rows int) {
	snap := &Snapshot{Rows: rows}
	current.Store(snap)
	snap.Rows = rows + 1 // want `write to snap after it escaped via atomic Store`
}

// buildThenStore writes only before publishing: fine.
func buildThenStore(rows int) {
	snap := &Snapshot{}
	snap.Rows = rows
	snap.Tags = map[string]string{"ok": "yes"}
	current.Store(snap)
}

// mutateAfterSwap leaks through the swap publish too.
func mutateAfterSwap(rows int) *Snapshot {
	snap := &Snapshot{Rows: rows}
	old := current.Swap(snap)
	snap.Tags = nil // want `write to snap after it escaped via atomic Swap`
	return old
}

// mutateAfterSend: a channel hands the value to another goroutine.
func mutateAfterSend(ch chan *Columns) {
	c := &Columns{N: 1}
	ch <- c
	c.N = 2 // want `write to c after it escaped via channel send`
}

// rebindClears: assigning a fresh value to the variable starts a new,
// unpublished object; writes to it are fine.
func rebindClears(ch chan *Columns) {
	c := &Columns{N: 1}
	ch <- c
	c = &Columns{N: 2}
	c.N = 3
	ch <- c
}

// mutateAfterGlobalAssign: package-level variables are shared state.
func mutateAfterGlobalAssign() {
	c := &Columns{}
	globalCols = c
	c.Vals = append(c.Vals, 1) // want `write to c after it escaped via assignment to package-level var globalCols`
}

// publishOnOneBranch: published on one path only; the write after the
// join may race on that path, so it is flagged.
func publishOnOneBranch(share bool, ch chan *Snapshot) {
	snap := &Snapshot{}
	if share {
		ch <- snap
	}
	snap.Rows = 1 // want `write to snap after it escaped via channel send`
}

// indexWriteAfterPublish: element writes count as writes.
func indexWriteAfterPublish(ch chan *Columns) {
	c := &Columns{Vals: make([]float64, 4)}
	ch <- c
	c.Vals[0] = 2.5 // want `write to c after it escaped`
}

// blessedPostPublish records a reviewed exception.
func blessedPostPublish(ch chan *Columns) {
	c := &Columns{}
	ch <- c
	c.N = 9 //supremmlint:allow publishmut: receiver synchronizes before reading N
}

// loopRebuild rebinds each iteration before writing: fine.
func loopRebuild(ch chan *Snapshot, n int) {
	for i := 0; i < n; i++ {
		snap := &Snapshot{}
		snap.Rows = i
		ch <- snap
	}
}

// Package publishmut enforces the publish-then-freeze contract on the
// pipeline's shared snapshot types: once a *Columns or *Snapshot value
// escapes the constructing goroutine — stored into an atomic cell,
// sent on a channel, assigned to a package-level variable, or returned
// to the caller — no code may keep writing through it.
//
// The serve daemon swaps whole immutable snapshots through an atomic
// pointer precisely so queries never race a reload; a single
// post-publish field write reintroduces the data race the design
// removed, invisibly, on whichever query happens to be reading. The
// analyzer runs a forward dataflow per function marking each tracked
// local as published at the escape point, and flags any later
// field/index/pointer write rooted at a published value on any path.
// Rebinding the variable to a fresh value (`snap = &Snapshot{...}`)
// clears its published state: the new object has not escaped.
//
// Target types are matched by name (Columns, Snapshot) so the
// invariant follows the values wherever the scoped packages handle
// them. Writes that are provably pre-publication on every path stay
// silent; intentional post-publish mutation of auxiliary fields must
// be blessed explicitly:
//
//	//supremmlint:allow publishmut <why this write cannot race readers>
package publishmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
	"supremm/internal/analysis/cfg"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "publishmut",
	Doc:  "flags writes through a Columns/Snapshot value after it escapes (atomic store, channel send, global, return)",
	Run:  run,
}

// targetTypes are the shared snapshot types the freeze contract covers,
// matched by type name so testdata packages (stdlib-only imports) and
// the real store/serve packages both resolve.
var targetTypes = map[string]bool{
	"Columns":  true,
	"Snapshot": true,
}

// pub records how a value escaped, for the diagnostic.
type pub struct {
	how string
}

type state map[string]pub

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range pass.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn analysis.FuncInfo) {
	g := pass.CFG(fn)
	flow := func(b *cfg.Block, in state, report func(pos token.Pos, name, how string)) state {
		out := clone(in)
		for _, n := range b.Nodes {
			stepNode(pass, n, out, report)
		}
		return out
	}
	states := cfg.Forward(g, state{}, cfg.Transfer[state]{
		Flow:  func(b *cfg.Block, in state) state { return flow(b, in, nil) },
		Join:  joinStates,
		Equal: equalStates,
	})
	// Replay each reachable block once against its converged in-state,
	// with reporting enabled; the fixpoint loop itself must stay silent
	// or diagnostics would duplicate per sweep.
	reported := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		in, ok := states[b]
		if !b.Reachable || !ok {
			continue
		}
		flow(b, in, func(pos token.Pos, name, how string) {
			if reported[pos] {
				return
			}
			reported[pos] = true
			pass.Reportf(pos, "write to %s after it escaped via %s; published values are read-only", name, how)
		})
	}
}

// stepNode applies one CFG node: write checks against the current
// state first, then any publish events the node performs.
func stepNode(pass *analysis.Pass, n ast.Node, out state, report func(token.Pos, string, string)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			checkWrite(pass, lhs, out, report)
		}
	case *ast.IncDecStmt:
		checkWrite(pass, n.X, out, report)
	case *ast.SendStmt:
		publish(pass, n.Value, "channel send", out)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			publish(pass, r, "return", out)
		}
	}
	// Publishes and rebinds nested anywhere in the node (call
	// arguments, assignment RHS, condition expressions).
	cfg.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			if how, ok := atomicPublish(pass.TypesInfo, x); ok {
				for _, arg := range x.Args {
					publish(pass, arg, how, out)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent {
					continue
				}
				if isPkgLevelVar(pass, id) && i < len(x.Rhs) {
					publish(pass, x.Rhs[i], "assignment to package-level var "+id.Name, out)
					continue
				}
				// Rebinding a tracked local to a fresh value clears its
				// published state: the new object has not escaped.
				if key, ok := analysis.ExprKey(pass.TypesInfo, id); ok {
					delete(out, key)
				}
			}
		}
		return true
	})
}

// checkWrite reports lhs if it writes through a published value: any
// selector, index, or pointer dereference rooted at a published ident.
// A bare ident is a rebind, handled by the caller's publish/clear pass.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, out state, report func(token.Pos, string, string)) {
	if report == nil {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
		return
	}
	key, ok := analysis.ExprKey(pass.TypesInfo, root)
	if !ok {
		return
	}
	if p, published := out[key]; published {
		report(lhs.Pos(), root.Name, p.how)
	}
}

// publish marks e's root value as escaped when e is a trackable
// expression of a target type.
func publish(pass *analysis.Pass, e ast.Expr, how string, out state) {
	if !isTargetType(pass.TypesInfo.TypeOf(e)) {
		return
	}
	root := rootIdent(e)
	if root == nil {
		return
	}
	key, ok := analysis.ExprKey(pass.TypesInfo, root)
	if !ok {
		return
	}
	if _, already := out[key]; !already {
		out[key] = pub{how: how}
	}
}

func joinStates(a, b state) state {
	out := clone(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// rootIdent walks selector/index/star/paren chains to the base
// identifier, or nil when the expression is rooted elsewhere.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isTargetType reports whether t (through pointers) is one of the
// frozen snapshot types.
func isTargetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return targetTypes[named.Obj().Name()]
}

// atomicPublish recognizes method calls that hand a value to the
// sync/atomic package: Value.Store, Pointer.Store/Swap/CompareAndSwap.
func atomicPublish(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
		return "atomic " + fn.Name(), true
	}
	return "", false
}

// isPkgLevelVar reports whether id resolves to a package-level
// variable of the analyzed package.
func isPkgLevelVar(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == pass.Pkg.Scope()
}

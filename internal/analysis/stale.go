package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// AllowDirective is one //supremmlint:allow comment found in a source
// file: the analyzer it names ("all" for a blanket allow) and where it
// sits.
type AllowDirective struct {
	Analyzer string
	Pos      token.Position
}

// CollectAllows extracts every allow directive from the files, in
// position order. The driver cross-references these against the lines
// each pass actually suppressed (Pass.UsedAllows) to find stale allows.
func CollectAllows(fset *token.FileSet, files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := allowTarget(c.Text)
				if !ok {
					continue
				}
				out = append(out, AllowDirective{Analyzer: name, Pos: fset.Position(c.Pos())})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// StaleAllowAnalyzerName labels the driver-level stale-directive check
// in diagnostics. It is not a Pass analyzer: it runs over the union of
// every pass's suppressions, after the whole suite has finished.
const StaleAllowAnalyzerName = "staleallow"

// StaleAllows reports the allow directives that earned nothing: a
// directive naming an analyzer that suppressed no finding on its line
// (including analyzers that no longer run on that file at all), or
// naming an analyzer that does not exist. used maps analyzer name ->
// filename -> directive lines that suppressed a finding; known is the
// set of valid analyzer names. Stale directives are findings
// themselves: a dead allow is an undocumented hole in the invariant it
// once blessed.
func StaleAllows(allows []AllowDirective, used map[string]map[string]map[int]bool, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	usedAt := func(analyzer, file string, line int) bool {
		byFile := used[analyzer]
		if byFile == nil {
			return false
		}
		return byFile[file][line]
	}
	for _, d := range allows {
		switch {
		case d.Analyzer == "all":
			live := false
			for analyzer := range used {
				if usedAt(analyzer, d.Pos.Filename, d.Pos.Line) {
					live = true
					break
				}
			}
			if !live {
				out = append(out, Diagnostic{
					Pos:      d.Pos,
					Analyzer: StaleAllowAnalyzerName,
					Message:  "stale //supremmlint:allow all: no analyzer reports anything here; remove the directive",
				})
			}
		case !known[d.Analyzer]:
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: StaleAllowAnalyzerName,
				Message:  "//supremmlint:allow names unknown analyzer " + d.Analyzer,
			})
		case !usedAt(d.Analyzer, d.Pos.Filename, d.Pos.Line):
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: StaleAllowAnalyzerName,
				Message:  "stale //supremmlint:allow " + d.Analyzer + ": the analyzer reports nothing on this line; remove the directive",
			})
		}
	}
	return out
}

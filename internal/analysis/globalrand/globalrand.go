// Package globalrand flags use of the global math/rand generator.
//
// Every stochastic component of the simulation (workload generation,
// fault injection, user behavior) draws from a seeded *rand.Rand
// threaded through its config, so a (config, seed) pair reproduces a
// run exactly and parallel simulations do not share generator state.
// The package-level math/rand functions draw from the process-global
// source, which is seeded implicitly and shared across goroutines —
// both properties break reproducibility.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are allowed:
// they are how the seeded generators are built.
package globalrand

import (
	"go/ast"

	"supremm/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flags global math/rand functions where a seeded *rand.Rand is required",
	Run:  run,
}

// allowed are the math/rand package-level names that do not touch the
// global generator.
var allowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors, should the tree migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			// Method calls on a *rand.Rand value resolve to objects whose
			// parent scope is not package scope; those are the seeded
			// generators we want people to use.
			if obj.Parent() != obj.Pkg().Scope() || allowed[obj.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "global rand.%s draws from the shared process-wide source; use a seeded *rand.Rand from the config", obj.Name())
			return true
		})
	}
	return nil
}

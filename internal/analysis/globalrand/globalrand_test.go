package globalrand_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "globalrand")
}

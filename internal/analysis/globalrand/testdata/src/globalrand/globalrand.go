package globalrand

import "math/rand"

func globalDraws() {
	_ = rand.Intn(6)                   // want `global rand.Intn draws from the shared process-wide source`
	_ = rand.Float64()                 // want `global rand.Float64`
	_ = rand.Int63()                   // want `global rand.Int63`
	_ = rand.Perm(10)                  // want `global rand.Perm`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle`
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	if r.Intn(6) > 3 {
		return r.Float64()
	}
	z := rand.NewZipf(r, 1.1, 1, 100)
	return float64(z.Uint64())
}

func hatch() int {
	return rand.Int() //supremmlint:allow globalrand: exercising the escape hatch
}

// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that supremmlint's analyzers
// are written against. The container this repo builds in has no module
// cache and no network, so the canonical x/tools framework cannot be
// vendored; this package provides the same Analyzer/Pass/Diagnostic
// contract on top of the standard library's go/ast, go/token and
// go/types, which is all the supremmlint analyzers need.
//
// The escape hatch shared by every analyzer is the comment directive
//
//	//supremmlint:allow <analyzer> [reason]
//
// placed on the flagged line or on the line immediately above it.
// Function-scoped blessings use a doc-comment directive the individual
// analyzer defines (for example counterdelta's supremmlint:wrapsafe).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"supremm/internal/analysis/cfg"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is the one-line invariant statement shown by -help.
	Doc string
	// Run inspects a package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path ("supremm/internal/ingest").
	PkgPath string

	diags      []Diagnostic
	allowLines map[string]map[int]bool // filename -> lines carrying an allow directive
	usedAllows map[string]map[int]bool // filename -> directive lines that suppressed a finding
	cfgs       map[*ast.BlockStmt]*cfg.Graph
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow directive suppresses
// it. Suppressed findings vanish: the directive is the reviewed,
// greppable record of the exception.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// allowed reports whether an "//supremmlint:allow <name>" directive
// covers the given position (same line or the line directly above).
func (p *Pass) allowed(pos token.Position) bool {
	if p.allowLines == nil {
		p.allowLines = make(map[string]map[int]bool)
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := p.allowLines[tf.Name()]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, ok := allowTarget(c.Text)
					if !ok || (name != p.Analyzer.Name && name != "all") {
						continue
					}
					if lines == nil {
						lines = make(map[int]bool)
						p.allowLines[tf.Name()] = lines
					}
					lines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	lines := p.allowLines[pos.Filename]
	if lines == nil || (!lines[pos.Line] && !lines[pos.Line-1]) {
		return false
	}
	// Record which directive line(s) earned their keep, so the driver
	// can flag stale allows (directives suppressing nothing).
	if p.usedAllows == nil {
		p.usedAllows = make(map[string]map[int]bool)
	}
	used := p.usedAllows[pos.Filename]
	if used == nil {
		used = make(map[int]bool)
		p.usedAllows[pos.Filename] = used
	}
	if lines[pos.Line] {
		used[pos.Line] = true
	}
	if lines[pos.Line-1] {
		used[pos.Line-1] = true
	}
	return true
}

// UsedAllows returns, per filename, the allow-directive lines that
// suppressed at least one finding of this pass's analyzer.
func (p *Pass) UsedAllows() map[string]map[int]bool { return p.usedAllows }

// allowTarget extracts the analyzer name from an allow directive
// comment, e.g. "//supremmlint:allow hotalloc: interned once per file".
func allowTarget(comment string) (string, bool) {
	const prefix = "//supremmlint:allow"
	if !strings.HasPrefix(comment, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(comment[len(prefix):])
	if rest == "" {
		return "", false
	}
	name := rest
	if i := strings.IndexAny(rest, " :\t"); i >= 0 {
		name = rest[:i]
	}
	return name, true
}

// FuncHasDirective reports whether fn's doc comment carries the given
// supremmlint directive (e.g. "supremmlint:wrapsafe"). Analyzers use it
// for function-scoped blessings of reviewed helpers.
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, directive) {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the function declaration in f whose body spans
// pos, or nil.
func EnclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}

// ExprKey canonicalizes a lock/resource path expression — identifier
// chains with field selections, possibly parenthesized or dereferenced
// — into a key stable across mentions of the same path in one
// function: the root identifier's object (by declaration position)
// followed by the field names. Expressions rooted in calls, index
// expressions or literals are not trackable and report ok=false.
func ExprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos()), true
	case *ast.SelectorExpr:
		base, ok := ExprKey(info, e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return ExprKey(info, e.X)
	case *ast.StarExpr:
		return ExprKey(info, e.X)
	}
	return "", false
}

// FuncInfo identifies one function-like body in a file: a declared
// function/method (Decl set) or a function literal (Lit set).
type FuncInfo struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is a human-readable identifier for diagnostics: the declared
	// name, or "<decl>.func" for a literal nested in decl.
	Name string
	Body *ast.BlockStmt
}

// Functions enumerates every function declaration and function literal
// in f, outermost first. Flow-sensitive analyzers iterate these and
// build one CFG per entry, so statements inside a literal are analyzed
// against the literal's own control flow, not its host's.
func (p *Pass) Functions(f *ast.File) []FuncInfo {
	var out []FuncInfo
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncInfo{Decl: fd, Name: fd.Name.Name, Body: fd.Body})
		host := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncInfo{Lit: lit, Name: host + ".func", Body: lit.Body})
			}
			return true
		})
	}
	return out
}

// CFG returns the control-flow graph for fn, built on first request and
// cached for the pass. Calls the type checker proves non-returning
// (os.Exit, log.Fatal*) terminate their blocks with no out-edges.
func (p *Pass) CFG(fn FuncInfo) *cfg.Graph {
	if p.cfgs == nil {
		p.cfgs = make(map[*ast.BlockStmt]*cfg.Graph)
	}
	if g, ok := p.cfgs[fn.Body]; ok {
		return g
	}
	g := cfg.New(fn.Body, cfg.Options{NoReturn: p.isNoReturn})
	p.cfgs[fn.Body] = g
	return g
}

// noReturnFuncs never return control to the caller; deferred functions
// do not run past them.
var noReturnFuncs = map[string][]string{
	"os":      {"Exit"},
	"log":     {"Fatal", "Fatalf", "Fatalln"},
	"runtime": {"Goexit"},
}

func (p *Pass) isNoReturn(call *ast.CallExpr) bool {
	for pkg, names := range noReturnFuncs {
		for _, name := range names {
			if IsPkgFunc(p.TypesInfo, call, pkg, name) {
				return true
			}
		}
	}
	return false
}

// FuncDecls maps each declared function/method object in the package's
// files to its declaration, so analyzers can consult doc-comment
// directives on callees (untrustedlen's taint sources).
func (p *Pass) FuncDecls() map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now), resolving through the type checker so
// aliased imports are still caught.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that supremmlint's analyzers
// are written against. The container this repo builds in has no module
// cache and no network, so the canonical x/tools framework cannot be
// vendored; this package provides the same Analyzer/Pass/Diagnostic
// contract on top of the standard library's go/ast, go/token and
// go/types, which is all the supremmlint analyzers need.
//
// The escape hatch shared by every analyzer is the comment directive
//
//	//supremmlint:allow <analyzer> [reason]
//
// placed on the flagged line or on the line immediately above it.
// Function-scoped blessings use a doc-comment directive the individual
// analyzer defines (for example counterdelta's supremmlint:wrapsafe).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is the one-line invariant statement shown by -help.
	Doc string
	// Run inspects a package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path ("supremm/internal/ingest").
	PkgPath string

	diags      []Diagnostic
	allowLines map[string]map[int]bool // filename -> lines carrying an allow directive
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow directive suppresses
// it. Suppressed findings vanish: the directive is the reviewed,
// greppable record of the exception.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// allowed reports whether an "//supremmlint:allow <name>" directive
// covers the given position (same line or the line directly above).
func (p *Pass) allowed(pos token.Position) bool {
	if p.allowLines == nil {
		p.allowLines = make(map[string]map[int]bool)
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := p.allowLines[tf.Name()]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					name, ok := allowTarget(c.Text)
					if !ok || (name != p.Analyzer.Name && name != "all") {
						continue
					}
					if lines == nil {
						lines = make(map[int]bool)
						p.allowLines[tf.Name()] = lines
					}
					lines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	lines := p.allowLines[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}

// allowTarget extracts the analyzer name from an allow directive
// comment, e.g. "//supremmlint:allow hotalloc: interned once per file".
func allowTarget(comment string) (string, bool) {
	const prefix = "//supremmlint:allow"
	if !strings.HasPrefix(comment, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(comment[len(prefix):])
	if rest == "" {
		return "", false
	}
	name := rest
	if i := strings.IndexAny(rest, " :\t"); i >= 0 {
		name = rest[:i]
	}
	return name, true
}

// FuncHasDirective reports whether fn's doc comment carries the given
// supremmlint directive (e.g. "supremmlint:wrapsafe"). Analyzers use it
// for function-scoped blessings of reviewed helpers.
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, directive) {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the function declaration in f whose body spans
// pos, or nil.
func EnclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now), resolving through the type checker so
// aliased imports are still caught.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

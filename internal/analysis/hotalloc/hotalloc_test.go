package hotalloc_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hotalloc")
}

package hotalloc

import (
	"fmt"
	"strings"
)

func allocating(b []byte, name string) {
	_ = fmt.Sprintf("%s-%d", name, 1) // want `fmt.Sprintf allocates on every call`
	_ = strings.Fields(name)          // want `strings.Fields allocates on every call`
	_ = strings.Split(name, ",")      // want `strings.Split allocates on every call`
	_ = strings.SplitN(name, ",", 2)  // want `strings.SplitN allocates on every call`
	s := string(b)                    // want `string\(\[\]byte\) copies in a hot-path file`
	_ = s
}

func compilerOptimized(b []byte, m map[string]int) int {
	if string(b) == "begin" { // comparison against a constant: allocation-free
		return 1
	}
	if "end" != string(b) { // either side
		return 2
	}
	switch string(b) { // switch tag: allocation-free
	case "rotate":
		return 3
	}
	return m[string(b)] // map index: allocation-free
}

func notOptimized(b []byte, xs []string, other string) {
	_ = xs[len(string(b))]  // want `string\(\[\]byte\) copies` (slice index, not map)
	if string(b) == other { // want `string\(\[\]byte\) copies` (non-constant comparison)
		return
	}
}

func interned(b []byte) string {
	return string(b) //supremmlint:allow hotalloc: interned once per file
}

func runeConversion(rs []rune) string {
	return string(rs) // []rune conversions are outside this analyzer's scope
}

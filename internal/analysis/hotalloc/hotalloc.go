// Package hotalloc flags allocation-heavy constructs in the pipeline's
// declared hot paths (the taccstats stream/parse files and the ingest
// plan/fold files).
//
// PR 1 got the streaming ingest to a fixed allocation budget per file;
// this analyzer keeps it there. It flags:
//
//   - fmt.Sprintf — formats through reflection and always allocates
//   - strings.Fields / strings.Split / strings.SplitN — allocate a
//     slice plus headers per call; hot-path tokenizing must walk bytes
//   - string([]byte) conversions — copy the bytes, except in the three
//     forms the compiler optimizes to be allocation-free: indexing a
//     map, comparing against a constant string, and switching on the
//     conversion
//
// A justified allocation (e.g. interning a device name once per file)
// carries a `//supremmlint:allow hotalloc: <reason>` comment.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating constructs (fmt.Sprintf, strings.Fields/Split, string([]byte)) in hot-path files",
	Run:  run,
}

// bannedCalls maps package path to the function names that allocate
// per call.
var bannedCalls = map[string][]string{
	"fmt":     {"Sprintf", "Sprint", "Sprintln"},
	"strings": {"Fields", "FieldsFunc", "Split", "SplitN", "SplitAfter"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		walkWithParent(f, func(n ast.Node, parent ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			for pkg, names := range bannedCalls {
				for _, name := range names {
					if analysis.IsPkgFunc(pass.TypesInfo, call, pkg, name) {
						pass.Reportf(call.Pos(), "%s.%s allocates on every call in a hot-path file; tokenize/format over bytes instead (//supremmlint:allow hotalloc to override)", pkg, name)
						return
					}
				}
			}
			if isByteStringConversion(pass, call) && !isOptimizedConversion(pass, call, parent) {
				pass.Reportf(call.Pos(), "string([]byte) copies in a hot-path file; keep byte slices or intern once (//supremmlint:allow hotalloc to override)")
			}
		})
	}
	return nil
}

// isByteStringConversion reports whether call is a string(b) conversion
// from a byte slice.
func isByteStringConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	funTV, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return false
	}
	dst, ok := funTV.Type.Underlying().(*types.Basic)
	if !ok || dst.Kind() != types.String {
		return false
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	slice, ok := argTV.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && elem.Kind() == types.Uint8
}

// isOptimizedConversion recognizes the parent forms the compiler
// compiles without allocating the intermediate string.
func isOptimizedConversion(pass *analysis.Pass, call *ast.CallExpr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.IndexExpr:
		// m[string(b)] — allocation-free when m is a map.
		if p.Index != call {
			return false
		}
		tv, ok := pass.TypesInfo.Types[p.X]
		if !ok {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	case *ast.BinaryExpr:
		// string(b) == "lit" (either side, == or !=).
		if p.Op != token.EQL && p.Op != token.NEQ {
			return false
		}
		other := p.X
		if other == call {
			other = p.Y
		}
		tv, ok := pass.TypesInfo.Types[other]
		return ok && tv.Value != nil
	case *ast.SwitchStmt:
		// switch string(b) { case "lit": ... }
		return p.Tag == call
	}
	return false
}

// walkWithParent traverses f invoking fn with each node and its parent.
func walkWithParent(f *ast.File, fn func(n, parent ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		fn(n, parent)
		stack = append(stack, n)
		return true
	})
}

// Package errsink flags silently dropped errors from writer-shaped
// calls in the packages that emit artifacts (reports, figures,
// warehouse files).
//
// A figure renderer that ignores fmt.Fprintf's error, or a warehouse
// emitter that ignores Close, produces truncated output on a full disk
// with a zero exit status — the "fails quietly" failure mode
// facility-monitoring pipelines are most criticized for. This analyzer
// flags expression statements that discard the error result of:
//
//   - Write/WriteString/WriteByte/WriteRune/Flush/Close/Sync methods
//   - fmt.Fprint/Fprintf/Fprintln to anything except os.Stdout/Stderr
//   - io.WriteString and io.Copy
//
// Calls on *strings.Builder and *bytes.Buffer are exempt (their writers
// are documented to never return an error), as are deferred calls (the
// best-effort cleanup idiom on early-return paths; the success path
// must still check Close explicitly). Acknowledged drops are written
// `_ = w.Close()` or carry a //supremmlint:allow errsink comment.
package errsink

import (
	"go/ast"
	"go/types"

	"supremm/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flags dropped errors from writer/Close calls in artifact-emitting packages",
	Run:  run,
}

// sinkMethods are method names whose trailing error result must not be
// silently discarded.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Flush": true, "Close": true, "Sync": true,
}

// sinkFuncs are package-level functions whose trailing error result
// must not be silently discarded; fmt writers get special stdout/stderr
// handling below.
var sinkFuncs = map[string][]string{
	"fmt": {"Fprint", "Fprintf", "Fprintln"},
	"io":  {"WriteString", "Copy"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := droppedSink(pass, call); ok {
				pass.Reportf(call.Pos(), "error from %s dropped; check it, or acknowledge with `_ =` if truly best-effort", name)
			}
			return true
		})
	}
	return nil
}

// droppedSink reports whether call is a writer-shaped call whose final
// error result the enclosing expression statement discards, returning a
// human-readable name for it.
func droppedSink(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	if sig.Recv() == nil {
		// Package-level function.
		pkg := fn.Pkg()
		if pkg == nil {
			return "", false
		}
		for _, name := range sinkFuncs[pkg.Path()] {
			if fn.Name() == name {
				if len(call.Args) > 0 {
					if pkg.Path() == "fmt" && isStdStream(pass, call.Args[0]) {
						return "", false // console chatter: conventionally unchecked
					}
					// fmt.Fprintf/io.WriteString/io.Copy take the writer
					// first; writing to strings.Builder/bytes.Buffer
					// cannot fail.
					if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil && isInfallibleWriter(t) {
						return "", false
					}
				}
				return pkg.Name() + "." + fn.Name(), true
			}
		}
		return "", false
	}
	// Method call.
	if !sinkMethods[fn.Name()] {
		return "", false
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if recvType == nil || isInfallibleWriter(recvType) {
		return "", false
	}
	return types.TypeString(recvType, types.RelativeTo(pass.Pkg)) + "." + fn.Name(), true
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// isStdStream recognizes the literal os.Stdout / os.Stderr selectors.
func isStdStream(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false
	}
	return obj.Name() == "Stdout" || obj.Name() == "Stderr"
}

// isInfallibleWriter reports whether t is strings.Builder or
// bytes.Buffer (possibly behind a pointer), whose write methods are
// documented to always return a nil error.
func isInfallibleWriter(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

package errsink_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/errsink"
)

func TestErrSink(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "errsink")
}

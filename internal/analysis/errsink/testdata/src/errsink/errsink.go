package errsink

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func dropped(w io.Writer, f *os.File, bw *bufio.Writer) {
	fmt.Fprintf(w, "x")    // want `error from fmt.Fprintf dropped`
	fmt.Fprintln(w, "x")   // want `error from fmt.Fprintln dropped`
	io.WriteString(w, "x") // want `error from io.WriteString dropped`
	f.Close()              // want `error from \*os\.File\.Close dropped`
	bw.Flush()             // want `error from \*bufio\.Writer\.Flush dropped`
	w.Write(nil)           // want `error from io\.Writer\.Write dropped`
}

func handled(w io.Writer, f *os.File) error {
	var sb strings.Builder
	sb.WriteString("x")       // strings.Builder never errors
	fmt.Fprintf(&sb, "%d", 1) // Fprintf to a Builder cannot fail
	var buf bytes.Buffer
	buf.WriteByte('x')           // bytes.Buffer never errors
	fmt.Fprintln(&buf, "x")      // Fprintln to a Buffer cannot fail
	fmt.Fprintln(os.Stderr, "x") // console chatter is conventionally unchecked
	fmt.Fprintln(os.Stdout, "x")
	defer f.Close() // deferred best-effort cleanup on early-return paths
	_ = f.Sync()    // explicitly acknowledged drop
	if _, err := fmt.Fprintf(w, "x"); err != nil {
		return err
	}
	return f.Close()
}

func hatch(f *os.File) {
	f.Close() //supremmlint:allow errsink: read-side close, nothing to recover
}

package walltime

import "time"

func clockReads() {
	_ = time.Now()                  // want `time.Now reads the wall clock`
	time.Sleep(time.Second)         // want `time.Sleep reads the wall clock`
	_ = time.Since(time.Unix(0, 0)) // want `time.Since reads the wall clock`
	_ = time.After(time.Second)     // want `time.After reads the wall clock`
	_ = time.NewTicker(time.Second) // want `time.NewTicker reads the wall clock`
}

func clockFree() time.Time {
	d, _ := time.ParseDuration("10m")
	_ = d * 2
	_ = time.Duration(600) * time.Second
	return time.Unix(1307000600, 0)
}

func banner() time.Time {
	return time.Now() //supremmlint:allow walltime: wall time for a log banner is fine
}

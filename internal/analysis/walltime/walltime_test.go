package walltime_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, "walltime")
}

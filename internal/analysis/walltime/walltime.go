// Package walltime flags wall-clock reads inside the deterministic
// packages (simulation, workload generation, ingest).
//
// The pipeline's reproducibility contract is that a (config, seed) pair
// always produces bit-identical raw files, accounting logs and job
// summaries; the equivalence and property tests depend on it, and so
// does the paper-figure regression baseline. A single time.Now() — or a
// timer that schedules off the host clock — breaks that silently, so
// simulated time must always flow from the simulation clock carried in
// configs and records.
package walltime

import (
	"go/ast"

	"supremm/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now and other wall-clock/timer use in deterministic packages",
	Run:  run,
}

// banned lists the time package entry points that read or schedule off
// the host clock. Pure constructors (time.Unix, time.Date) and
// formatting are fine: they are clock-free.
var banned = []string{
	"Now", "Since", "Until", "Sleep", "After", "AfterFunc",
	"Tick", "NewTimer", "NewTicker",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range banned {
				if analysis.IsPkgFunc(pass.TypesInfo, call, "time", name) {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; derive time from the simulation clock instead", name)
					break
				}
			}
			return true
		})
	}
	return nil
}

// Package deferclose proves that resources opened on the ingest and
// serve reload paths are closed on every path out of the opening
// function.
//
// The serve daemon reopens snapshot and realm files on every SIGHUP
// reload, and ingest walks thousands of per-host archives per run; a
// single early return between Open and Close leaks a descriptor per
// reload or per file, and the daemon dies of EMFILE days later with no
// error anywhere near the bug. The analyzer tracks each call to an
// Open/OpenFile/Create/CreateTemp-named function whose first result
// has a Close() error method, as a close obligation on the assigned
// variable:
//
//   - the obligation starts pending while the accompanying error is
//     unchecked; the `err != nil` branch cancels it (a failed open
//     returns no resource), the nil branch makes it active;
//   - f.Close() — direct, deferred, or inside an error-capturing
//     assignment — discharges it;
//   - transferring ownership discharges it too: returning the value,
//     assigning it to another variable or struct field, sending it on
//     a channel, handing it to a goroutine, or capturing it in a
//     function literal. Passing it as an ordinary call argument does
//     NOT: lending a handle to a parser leaves the caller responsible
//     for closing it;
//   - an obligation still live at a return, fall-off, or panic exit is
//     a finding, reported at the open site.
//
// Long-lived handles that genuinely outlive the function (a pid file
// held until exit) record the reviewed exception:
//
//	//supremmlint:allow deferclose <who closes it, and when>
package deferclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"supremm/internal/analysis"
	"supremm/internal/analysis/cfg"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "deferclose",
	Doc:  "flags opened resources not closed on every path out of the function",
	Run:  run,
}

// openFuncs are the function names that mint close obligations when
// their first result is a Closer.
var openFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
}

type status int

const (
	// pending: opened, but the accompanying error has not been checked
	// yet — the resource may not exist.
	pending status = iota
	// active: the open succeeded (or had no error to check); Close is
	// owed on every path.
	active
)

type res struct {
	st     status
	pos    token.Pos
	name   string
	errKey string // ExprKey of the error variable, "" if none
}

type state map[string]res

func clone(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, fn := range pass.Functions(f) {
			checkFunc(pass, fn)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// captured holds keys referenced inside nested function literals:
	// the closure may close them, so they are never tracked.
	captured map[string]bool
}

func checkFunc(pass *analysis.Pass, fn analysis.FuncInfo) {
	opens := false
	c := &checker{pass: pass}
	cfg.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isOpenCall(call) {
			opens = true
		}
		return !opens
	})
	if !opens {
		return
	}

	c.captured = capturedKeys(pass.TypesInfo, fn.Body)
	g := pass.CFG(fn)
	states := cfg.Forward(g, state{}, cfg.Transfer[state]{
		Flow:  func(b *cfg.Block, in state) state { return c.flowBlock(b, in) },
		Edge:  func(b *cfg.Block, e cfg.Edge, out state) state { return c.refineEdge(b, e, out) },
		Join:  joinStates,
		Equal: equalStates,
	})

	reported := make(map[token.Pos]bool)
	report := func(s state, how string) {
		for _, r := range s {
			if reported[r.pos] {
				continue
			}
			reported[r.pos] = true
			pass.Reportf(r.pos, "%s opened here is not closed on every path out of %s (%s); close it or defer the close",
				r.name, fn.Name, how)
		}
	}
	if s, ok := states[g.Exit]; ok {
		report(s, "a return path leaks it")
	}
	if s, ok := states[g.Panic]; ok {
		report(s, "a panic path leaks it")
	}
}

func (c *checker) flowBlock(b *cfg.Block, in state) state {
	out := clone(in)
	for _, n := range b.Nodes {
		c.discharges(n, out)
		c.escapes(n, out)
		c.creations(n, out)
	}
	return out
}

// discharges deletes obligations whose resource is closed anywhere in
// n: f.Close() bare, deferred, or error-captured. A tracked value
// passed to a deferred cleanup call is discharged too.
func (c *checker) discharges(n ast.Node, out state) {
	if d, ok := n.(*ast.DeferStmt); ok {
		for _, arg := range d.Call.Args {
			if key, ok := analysis.ExprKey(c.pass.TypesInfo, arg); ok {
				delete(out, key)
			}
		}
	}
	cfg.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if key, ok := analysis.ExprKey(c.pass.TypesInfo, sel.X); ok {
			delete(out, key)
		}
		return true
	})
}

// escapes deletes obligations whose value's ownership leaves the
// function through n: returns, aliasing assignments, composite
// literals, channel sends, and goroutine hand-offs. Ordinary call
// arguments are deliberately not escapes.
func (c *checker) escapes(n ast.Node, out state) {
	dropAll := func(e ast.Expr) {
		// Any mention inside the expression transfers ownership.
		cfg.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if key, ok := analysis.ExprKey(c.pass.TypesInfo, id); ok {
					delete(out, key)
				}
			}
			return true
		})
	}
	dropDirect := func(e ast.Expr) {
		// Only bare mentions and composite-literal elements transfer
		// ownership; call arguments are lends.
		var walk func(ast.Expr)
		walk = func(e ast.Expr) {
			switch e := e.(type) {
			case *ast.Ident:
				if key, ok := analysis.ExprKey(c.pass.TypesInfo, e); ok {
					delete(out, key)
				}
			case *ast.ParenExpr:
				walk(e.X)
			case *ast.UnaryExpr:
				walk(e.X)
			case *ast.CompositeLit:
				for _, el := range e.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						walk(kv.Value)
						continue
					}
					walk(el)
				}
			}
		}
		walk(e)
	}
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			dropAll(r)
		}
	case *ast.AssignStmt:
		for i, r := range n.Rhs {
			if len(n.Lhs) == len(n.Rhs) {
				// `_ = f` discards the value; nothing took ownership.
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
			}
			dropDirect(r)
		}
		// Assigning INTO a struct field or map slot stores the value
		// somewhere that outlives the statement; writes like
		// `o.sink = f` appear on the LHS only when f is the RHS, so
		// RHS handling above covers the tracked value.
	case *ast.SendStmt:
		dropDirect(n.Value)
	case *ast.GoStmt:
		dropAll(n.Call)
	}
}

// creations adds an obligation for each resource-opening assignment in
// n: `f, err := os.Open(p)` or `var f, err = os.Open(p)`.
func (c *checker) creations(n ast.Node, out state) {
	addFrom := func(names []ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !c.isOpenCall(call) || len(names) == 0 {
			return
		}
		id, ok := ast.Unparen(names[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		key, ok := analysis.ExprKey(c.pass.TypesInfo, id)
		if !ok || c.captured[key] {
			return
		}
		r := res{st: active, pos: call.Pos(), name: id.Name + " := " + types.ExprString(call.Fun) + "(...)"}
		if len(names) > 1 {
			if errID, ok := ast.Unparen(names[1]).(*ast.Ident); ok && errID.Name != "_" {
				if errKey, ok := analysis.ExprKey(c.pass.TypesInfo, errID); ok {
					r.st = pending
					r.errKey = errKey
				}
			}
		}
		out[key] = r
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 {
			addFrom(n.Lhs, n.Rhs[0])
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 {
					names := make([]ast.Expr, len(vs.Names))
					for i, nm := range vs.Names {
						names[i] = nm
					}
					addFrom(names, vs.Values[0])
				}
			}
		}
	}
}

// refineEdge resolves pending obligations at `err != nil` / `err == nil`
// branches: the error path cancels the obligation, the nil path
// activates it.
func (c *checker) refineEdge(b *cfg.Block, e cfg.Edge, out state) state {
	if b.Cond == nil || (e.Kind != cfg.EdgeTrue && e.Kind != cfg.EdgeFalse) {
		return out
	}
	errKey, op, ok := c.nilCompare(b.Cond)
	if !ok {
		return out
	}
	// errIsNonNil on this edge?
	errNonNil := (op == token.NEQ) == (e.Kind == cfg.EdgeTrue)
	var refined state
	for k, r := range out {
		if r.st != pending || r.errKey != errKey {
			continue
		}
		if refined == nil {
			refined = clone(out)
		}
		if errNonNil {
			delete(refined, k)
		} else {
			r.st = active
			refined[k] = r
		}
	}
	if refined == nil {
		return out
	}
	return refined
}

// nilCompare matches conditions of the form `x == nil` / `x != nil`
// (either operand order), returning x's key and the operator.
func (c *checker) nilCompare(cond ast.Expr) (string, token.Token, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", 0, false
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := c.pass.TypesInfo.Types[e]
		return ok && tv.IsNil()
	}
	switch {
	case isNil(be.Y):
		if key, ok := analysis.ExprKey(c.pass.TypesInfo, be.X); ok {
			return key, be.Op, true
		}
	case isNil(be.X):
		if key, ok := analysis.ExprKey(c.pass.TypesInfo, be.Y); ok {
			return key, be.Op, true
		}
	}
	return "", 0, false
}

// isOpenCall reports whether call invokes an Open/Create-named
// function or method whose first result has a Close() error method.
func (c *checker) isOpenCall(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if !openFuncs[name] {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	first := tv.Type
	if tup, ok := first.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		first = tup.At(0).Type()
	}
	return hasCloseMethod(first)
}

// hasCloseMethod reports whether t's method set includes
// Close() error.
func hasCloseMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Close" {
			continue
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		return ok && named.Obj().Name() == "error"
	}
	return false
}

// capturedKeys collects the keys of every identifier referenced inside
// a nested function literal of body.
func capturedKeys(info *types.Info, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit.Body == body {
			return true
		}
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if key, ok := analysis.ExprKey(info, id); ok {
					out[key] = true
				}
			}
			return true
		})
		return false
	})
	return out
}

func joinStates(a, b state) state {
	out := clone(a)
	for k, v := range b {
		if cur, ok := out[k]; !ok || (cur.st == pending && v.st == active) {
			out[k] = v
		}
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.st != bv.st || av.pos != bv.pos {
			return false
		}
	}
	return true
}

// Package deferclose seeds leaked-resource violations alongside the
// ownership idioms the analyzer must accept.
package deferclose

import (
	"io"
	"os"
)

var sink *os.File

// leakOnEarlyReturn forgets the close on the short-file path.
func leakOnEarlyReturn(p string) ([]byte, error) {
	f, err := os.Open(p) // want `not closed on every path out of leakOnEarlyReturn`
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, nil
	}
	data, err := io.ReadAll(f)
	f.Close()
	return data, err
}

// deferredIsFine is the preferred idiom.
func deferredIsFine(p string) ([]byte, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// errPathNeedsNoClose: a failed open returns no resource.
func errPathNeedsNoClose(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	return f.Close()
}

// closeCapturedByErr: error-capturing close still discharges.
func closeCapturedByErr(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		f.Close()
		return err
	}
	closeErr := f.Close()
	return closeErr
}

// returnTransfersOwnership: the caller closes.
func returnTransfersOwnership(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// assignTransfersOwnership: stashing the handle in a package variable
// hands it to whoever manages that variable.
func assignTransfersOwnership(p string) error {
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	sink = f
	return nil
}

// lendingIsNotTransfer: passing the handle to a reader does not move
// the close obligation — and this function drops it.
func lendingIsNotTransfer(p string) error {
	f, err := os.Open(p) // want `not closed on every path out of lendingIsNotTransfer`
	if err != nil {
		return err
	}
	_, err = io.ReadAll(f)
	return err
}

// panicLeaks: the panic edge skips the close.
func panicLeaks(p string) []byte {
	f, err := os.Open(p) // want `a panic path leaks it`
	if err != nil {
		panic(err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		panic(err)
	}
	f.Close()
	return data
}

// discardedErrStillOwes: ignoring the open error does not waive the
// close.
func discardedErrStillOwes(p string) {
	f, _ := os.Open(p) // want `not closed on every path out of discardedErrStillOwes`
	_ = f
}

// closureMayClose: a handle captured by a function literal is the
// closure's business.
func closureMayClose(p string) (func(), error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return func() { f.Close() }, nil
}

// goroutineTakesOwnership: the spawned goroutine closes it.
func goroutineTakesOwnership(p string, work func(*os.File)) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	go work(f)
	return nil
}

// pidFileHeldUntilExit records the reviewed exception.
func pidFileHeldUntilExit(p string) error {
	f, err := os.Create(p) //supremmlint:allow deferclose: pid file held for process lifetime, closed by the OS
	if err != nil {
		return err
	}
	_, err = f.WriteString("1")
	return err
}

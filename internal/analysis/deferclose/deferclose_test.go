package deferclose_test

import (
	"testing"

	"supremm/internal/analysis/analysistest"
	"supremm/internal/analysis/deferclose"
)

func TestDeferClose(t *testing.T) {
	analysistest.Run(t, deferclose.Analyzer, "deferclose")
}

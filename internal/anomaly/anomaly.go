// Package anomaly is a compact reproduction of the ANCOR-style analysis
// the paper points to for systems administrators (§4.3.4, ref [26]):
// identifying jobs with anomalous resource-use patterns and linking them
// with rationalized log events to diagnose probable causes of faults and
// failures. It also produces the job-completion failure profiles named
// in the §4.3.1 user reports.
package anomaly

import (
	"fmt"
	"math"
	"sort"

	"supremm/internal/eventlog"
	"supremm/internal/stats"
	"supremm/internal/store"
)

// Anomaly is one job flagged on one metric.
type Anomaly struct {
	JobID  int64
	User   string
	App    string
	Metric store.Metric
	Value  float64
	// Score is the robust z-score against the job's own application
	// population (an anomalous NAMD run is judged against NAMD runs,
	// not against data movers).
	Score float64
}

// Detector finds metric outliers per application population.
type Detector struct {
	// MinScore is the robust z threshold to flag; 4 by default.
	MinScore float64
	// MinPopulation skips apps with too few jobs for stable statistics.
	MinPopulation int
}

// NewDetector returns a Detector with defaults.
func NewDetector() *Detector {
	return &Detector{MinScore: 4, MinPopulation: 20}
}

// robustZ computes (x - median)/ (IQR/1.349), the outlier score the
// detector uses; falls back to NaN for degenerate spreads.
func robustZ(x, median, iqr float64) float64 {
	sigma := iqr / 1.349
	if sigma <= 0 {
		return math.NaN()
	}
	return (x - median) / sigma
}

// Detect scans the realm's jobs and returns anomalies sorted by
// descending |score|.
func (d *Detector) Detect(st store.Reader, f store.Filter, metrics []store.Metric) []Anomaly {
	// Partition rows by app.
	byApp := make(map[string][]store.JobRecord)
	for _, rec := range st.Records(f) {
		byApp[rec.App] = append(byApp[rec.App], rec)
	}
	var out []Anomaly
	for app, recs := range byApp {
		if len(recs) < d.MinPopulation {
			continue
		}
		for _, m := range metrics {
			vals := make([]float64, len(recs))
			for i, rec := range recs {
				vals[i] = rec.Value(m)
			}
			median := stats.Median(vals)
			iqr := stats.Quantile(vals, 0.75) - stats.Quantile(vals, 0.25)
			for i, rec := range recs {
				z := robustZ(vals[i], median, iqr)
				if !math.IsNaN(z) && math.Abs(z) >= d.MinScore {
					out = append(out, Anomaly{
						JobID: rec.JobID, User: rec.User, App: app,
						Metric: m, Value: vals[i], Score: z,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Score), math.Abs(out[j].Score)
		if ai != aj {
			return ai > aj
		}
		if out[i].JobID != out[j].JobID {
			return out[i].JobID < out[j].JobID
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Diagnosis links one job's anomalies with its log events.
type Diagnosis struct {
	JobID     int64
	User      string
	App       string
	Anomalies []Anomaly
	Events    []eventlog.Event
	// Cause is the inferred probable cause label.
	Cause string
}

// Link joins anomalies with job-tagged log events and infers a probable
// cause per job — the ANCOR step of "linking resource usage anomalies
// with system failures from cluster log data".
func Link(anomalies []Anomaly, events []eventlog.Event) []Diagnosis {
	evByJob := make(map[int64][]eventlog.Event)
	for _, ev := range events {
		if ev.JobID != 0 {
			evByJob[ev.JobID] = append(evByJob[ev.JobID], ev)
		}
	}
	byJob := make(map[int64]*Diagnosis)
	var order []int64
	for _, a := range anomalies {
		d := byJob[a.JobID]
		if d == nil {
			d = &Diagnosis{JobID: a.JobID, User: a.User, App: a.App, Events: evByJob[a.JobID]}
			byJob[a.JobID] = d
			order = append(order, a.JobID)
		}
		d.Anomalies = append(d.Anomalies, a)
	}
	out := make([]Diagnosis, 0, len(order))
	for _, id := range order {
		d := byJob[id]
		d.Cause = inferCause(d)
		out = append(out, *d)
	}
	return out
}

// inferCause applies the linkage heuristics: which subsystem's log
// traffic co-occurs with which metric anomaly.
func inferCause(d *Diagnosis) string {
	hasComponent := func(c string) bool {
		for _, ev := range d.Events {
			if ev.Component == c {
				return true
			}
		}
		return false
	}
	hasMetric := func(m store.Metric, positive bool) bool {
		for _, a := range d.Anomalies {
			if a.Metric == m && (a.Score > 0) == positive {
				return true
			}
		}
		return false
	}
	switch {
	case hasComponent("oom") && (hasMetric(store.MetricMemUsedMax, true) || hasMetric(store.MetricMemUsed, true)):
		return "memory exhaustion (OOM events with outlier memory usage)"
	case hasComponent("lustre") && (hasMetric(store.MetricScratchWrite, true) || hasMetric(store.MetricLnetTx, true)):
		return "filesystem contention (Lustre errors under outlier IO load)"
	case hasComponent("kernel") && hasMetric(store.MetricCPUIdle, true):
		return "node soft lockup (kernel events with anomalous idle time)"
	case hasMetric(store.MetricCPUIdle, true):
		return "inefficient resource use (high idle, no correlated faults)"
	case len(d.Events) > 0:
		return "unclassified fault (log events without matching metric signature)"
	default:
		return "statistical outlier (no correlated log events)"
	}
}

// FailureProfile is one row of the job-completion failure report.
type FailureProfile struct {
	Key        string // app or user
	Jobs       int
	Completed  int
	Failed     int
	Timeout    int
	NodeFail   int
	FailurePct float64 // non-COMPLETED share
}

// FailureProfiles computes completion/failure rates grouped by app or
// user (§4.3.1 "job completion failure profiles").
func FailureProfiles(st store.Reader, by store.GroupKey, f store.Filter) []FailureProfile {
	acc := make(map[string]*FailureProfile)
	var order []string
	for _, rec := range st.Records(f) {
		var key string
		switch by {
		case store.ByApp:
			key = rec.App
		case store.ByUser:
			key = rec.User
		default:
			key = rec.Cluster
		}
		p := acc[key]
		if p == nil {
			p = &FailureProfile{Key: key}
			acc[key] = p
			order = append(order, key)
		}
		p.Jobs++
		switch rec.Status {
		case "COMPLETED":
			p.Completed++
		case "FAILED":
			p.Failed++
		case "TIMEOUT":
			p.Timeout++
		case "NODE_FAIL":
			p.NodeFail++
		}
	}
	out := make([]FailureProfile, 0, len(order))
	for _, key := range order {
		p := acc[key]
		if p.Jobs > 0 {
			p.FailurePct = float64(p.Jobs-p.Completed) / float64(p.Jobs) * 100
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Jobs != out[j].Jobs {
			return out[i].Jobs > out[j].Jobs
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// String summarizes a diagnosis for reports.
func (d Diagnosis) String() string {
	return fmt.Sprintf("job %d (%s/%s): %s [%d anomalies, %d events]",
		d.JobID, d.User, d.App, d.Cause, len(d.Anomalies), len(d.Events))
}

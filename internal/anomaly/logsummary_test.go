package anomaly

import (
	"testing"

	"supremm/internal/eventlog"
)

func logFixture() []eventlog.Event {
	return []eventlog.Event{
		{Time: 100, Host: "n1", JobID: 5, Severity: eventlog.Info, Component: "sge", Message: "start"},
		{Time: 200, Host: "n1", JobID: 5, Severity: eventlog.Error, Component: "lustre", Message: "timeout"},
		{Time: 250, Host: "n1", JobID: 5, Severity: eventlog.Error, Component: "lustre", Message: "timeout"},
		{Time: 300, Host: "n1", JobID: 0, Severity: eventlog.Critical, Component: "kernel", Message: "soft lockup"},
		{Time: 400, Host: "n2", JobID: 0, Severity: eventlog.Critical, Component: "kernel", Message: "soft lockup"},
		{Time: 500, Host: "n3", JobID: 7, Severity: eventlog.Warning, Component: "syslog", Message: "retry"},
	}
}

func TestSummarizeLog(t *testing.T) {
	s := SummarizeLog(logFixture(), 10)
	if s.Total != 6 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.JobTagged != 4 {
		t.Errorf("job tagged = %d, want 4", s.JobTagged)
	}
	if s.BySeverity[eventlog.Critical] != 2 || s.BySeverity[eventlog.Error] != 2 {
		t.Errorf("severity counts: %v", s.BySeverity)
	}
	// Components ordered by count: lustre (2) and kernel (2) tie —
	// alphabetical; then sge, syslog.
	if len(s.ByComponent) != 4 {
		t.Fatalf("components = %d", len(s.ByComponent))
	}
	if s.ByComponent[0].Component != "kernel" || s.ByComponent[1].Component != "lustre" {
		t.Errorf("component order: %+v", s.ByComponent)
	}
	if s.ByComponent[1].Errors != 2 {
		t.Errorf("lustre errors = %d", s.ByComponent[1].Errors)
	}
	// Noisy hosts: n1 has 3 error+ events, n2 has 1.
	if len(s.NoisyHosts) != 2 || s.NoisyHosts[0].Host != "n1" || s.NoisyHosts[0].Errors != 3 {
		t.Errorf("noisy hosts: %+v", s.NoisyHosts)
	}
	// Top-host clamp.
	if got := SummarizeLog(logFixture(), 1); len(got.NoisyHosts) != 1 {
		t.Errorf("clamp: %+v", got.NoisyHosts)
	}
	empty := SummarizeLog(nil, 5)
	if empty.Total != 0 || len(empty.ByComponent) != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}

func TestFindPrecursors(t *testing.T) {
	rep := FindPrecursors(logFixture(), 600)
	// Two critical kernel events: n1's at t=300 had lustre errors at
	// 200/250 (precursors); n2's at t=400 had none.
	if rep.Failures != 2 {
		t.Fatalf("failures = %d", rep.Failures)
	}
	if rep.WithPrecursors != 1 {
		t.Errorf("with precursors = %d, want 1", rep.WithPrecursors)
	}
	// A tight window excludes the n1 precursors (gap 50s is inside, so
	// shrink below it).
	tight := FindPrecursors(logFixture(), 10)
	if tight.WithPrecursors != 0 {
		t.Errorf("tight window precursors = %d", tight.WithPrecursors)
	}
}

func TestFindPrecursorsSelfExclusion(t *testing.T) {
	// A lone critical kernel event must not count itself as precursor
	// (it is also error-severity traffic on the host).
	events := []eventlog.Event{
		{Time: 100, Host: "n1", Severity: eventlog.Critical, Component: "kernel", Message: "lockup"},
	}
	rep := FindPrecursors(events, 600)
	if rep.Failures != 1 || rep.WithPrecursors != 0 {
		t.Errorf("self-exclusion broken: %+v", rep)
	}
}

package anomaly

import (
	"math"
	"strings"
	"testing"

	"supremm/internal/eventlog"
	"supremm/internal/store"
)

// population builds a store with `n` normal jobs of one app plus
// injected outliers.
func population(n int) *store.Store {
	st := store.New()
	for i := 0; i < n; i++ {
		st.Add(store.JobRecord{
			JobID: int64(i + 1), Cluster: "ranger", User: "normal",
			App: "namd", Science: "Physics", Nodes: 4,
			Start: 0, End: 7200, Status: "COMPLETED", Samples: 12,
			CPUIdleFrac: 0.08 + 0.001*float64(i%20), CPUUserFrac: 0.87, CPUSysFrac: 0.05,
			MemUsedGB: 6 + 0.05*float64(i%10), MemUsedMaxGB: 7 + 0.06*float64(i%10),
			FlopsGF: 5 + 0.1*float64(i%10), ScratchWriteMB: 1, WorkWriteMB: 0.1,
			ReadMB: 0.5, IBTxMB: 20, IBRxMB: 19, LnetTxMB: 2,
		})
	}
	return st
}

func addOutlier(st *store.Store, id int64, idle, memMax float64) {
	st.Add(store.JobRecord{
		JobID: id, Cluster: "ranger", User: "suspect",
		App: "namd", Science: "Physics", Nodes: 4,
		Start: 0, End: 7200, Status: "FAILED", Samples: 12,
		CPUIdleFrac: idle, CPUUserFrac: 1 - idle - 0.05, CPUSysFrac: 0.05,
		MemUsedGB: 6, MemUsedMaxGB: memMax,
		FlopsGF: 5, ScratchWriteMB: 1, WorkWriteMB: 0.1,
		ReadMB: 0.5, IBTxMB: 20, IBRxMB: 19, LnetTxMB: 2,
	})
}

func TestDetectFlagsOutliers(t *testing.T) {
	st := population(100)
	addOutlier(st, 900, 0.9, 30) // very idle, huge memory peak
	d := NewDetector()
	found := d.Detect(st, store.Filter{}, []store.Metric{store.MetricCPUIdle, store.MetricMemUsedMax})
	if len(found) == 0 {
		t.Fatal("outlier not detected")
	}
	seen := map[store.Metric]bool{}
	for _, a := range found {
		if a.JobID != 900 {
			t.Errorf("false positive: job %d metric %s score %v", a.JobID, a.Metric, a.Score)
		}
		seen[a.Metric] = true
		if math.Abs(a.Score) < d.MinScore {
			t.Errorf("score %v below threshold", a.Score)
		}
	}
	if !seen[store.MetricCPUIdle] || !seen[store.MetricMemUsedMax] {
		t.Errorf("expected both metrics flagged, got %v", seen)
	}
}

func TestDetectSkipsSmallPopulations(t *testing.T) {
	st := population(5) // below MinPopulation
	addOutlier(st, 900, 0.9, 30)
	found := NewDetector().Detect(st, store.Filter{}, []store.Metric{store.MetricCPUIdle})
	if len(found) != 0 {
		t.Errorf("small population should not be scored, got %d anomalies", len(found))
	}
}

func TestDetectPerAppPopulations(t *testing.T) {
	// A datamover's IO rate is normal for datamovers even though it
	// would be a wild outlier among NAMD jobs.
	st := population(50)
	for i := 0; i < 50; i++ {
		st.Add(store.JobRecord{
			JobID: int64(1000 + i), Cluster: "ranger", User: "io",
			App: "datamover", Science: "Other", Nodes: 1,
			Start: 0, End: 7200, Status: "COMPLETED", Samples: 12,
			CPUIdleFrac: 0.7, CPUUserFrac: 0.25, CPUSysFrac: 0.05,
			MemUsedGB: 4, MemUsedMaxGB: 5, FlopsGF: 0.1,
			ScratchWriteMB: 20 + 0.2*float64(i%10), WorkWriteMB: 2,
			ReadMB: 30, IBTxMB: 2, IBRxMB: 2, LnetTxMB: 50,
		})
	}
	found := NewDetector().Detect(st, store.Filter{}, []store.Metric{store.MetricScratchWrite})
	if len(found) != 0 {
		t.Errorf("per-app scoring broken: %d false positives", len(found))
	}
}

func TestRobustZDegenerate(t *testing.T) {
	if !math.IsNaN(robustZ(1, 1, 0)) {
		t.Error("zero IQR should give NaN")
	}
}

func TestLinkInfersCauses(t *testing.T) {
	anomalies := []Anomaly{
		{JobID: 1, User: "a", App: "vasp", Metric: store.MetricMemUsedMax, Score: 6, Value: 30},
		{JobID: 2, User: "b", App: "enzo", Metric: store.MetricScratchWrite, Score: 5, Value: 80},
		{JobID: 3, User: "c", App: "namd", Metric: store.MetricCPUIdle, Score: 5, Value: 0.9},
		{JobID: 4, User: "d", App: "namd", Metric: store.MetricCPUIdle, Score: 7, Value: 0.95},
		{JobID: 5, User: "e", App: "milc", Metric: store.MetricFlops, Score: -5, Value: 0.1},
	}
	events := []eventlog.Event{
		{Time: 1, Host: "h1", JobID: 1, Severity: eventlog.Critical, Component: "oom", Message: "killed"},
		{Time: 2, Host: "h2", JobID: 2, Severity: eventlog.Error, Component: "lustre", Message: "timeout"},
		{Time: 3, Host: "h3", JobID: 3, Severity: eventlog.Critical, Component: "kernel", Message: "soft lockup"},
		{Time: 4, Host: "h4", JobID: 99, Severity: eventlog.Info, Component: "sge", Message: "unrelated"},
		{Time: 5, Host: "h5", JobID: 5, Severity: eventlog.Warning, Component: "sge", Message: "requeue"},
	}
	diags := Link(anomalies, events)
	if len(diags) != 5 {
		t.Fatalf("diagnoses = %d, want 5", len(diags))
	}
	byJob := map[int64]Diagnosis{}
	for _, d := range diags {
		byJob[d.JobID] = d
	}
	if !strings.Contains(byJob[1].Cause, "memory exhaustion") {
		t.Errorf("job 1 cause = %q", byJob[1].Cause)
	}
	if !strings.Contains(byJob[2].Cause, "filesystem contention") {
		t.Errorf("job 2 cause = %q", byJob[2].Cause)
	}
	if !strings.Contains(byJob[3].Cause, "soft lockup") {
		t.Errorf("job 3 cause = %q", byJob[3].Cause)
	}
	if !strings.Contains(byJob[4].Cause, "inefficient resource use") {
		t.Errorf("job 4 cause = %q", byJob[4].Cause)
	}
	if !strings.Contains(byJob[5].Cause, "unclassified") {
		t.Errorf("job 5 cause = %q", byJob[5].Cause)
	}
	if len(byJob[1].Events) != 1 {
		t.Errorf("job 1 events = %d", len(byJob[1].Events))
	}
	if s := byJob[1].String(); !strings.Contains(s, "job 1") {
		t.Errorf("diagnosis string = %q", s)
	}
}

func TestLinkNoEvents(t *testing.T) {
	diags := Link([]Anomaly{{JobID: 9, Metric: store.MetricFlops, Score: 5}}, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Cause, "statistical outlier") {
		t.Errorf("diags = %+v", diags)
	}
}

func TestFailureProfiles(t *testing.T) {
	st := store.New()
	add := func(id int64, app, status string) {
		st.Add(store.JobRecord{
			JobID: id, Cluster: "ranger", User: "u", App: app,
			Start: 0, End: 3600, Status: status, Samples: 6, Nodes: 1,
		})
	}
	add(1, "namd", "COMPLETED")
	add(2, "namd", "COMPLETED")
	add(3, "namd", "FAILED")
	add(4, "namd", "TIMEOUT")
	add(5, "amber", "NODE_FAIL")
	profiles := FailureProfiles(st, store.ByApp, store.Filter{})
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	namd := profiles[0] // most jobs first
	if namd.Key != "namd" || namd.Jobs != 4 || namd.Completed != 2 || namd.Failed != 1 || namd.Timeout != 1 {
		t.Errorf("namd profile: %+v", namd)
	}
	if math.Abs(namd.FailurePct-50) > 1e-9 {
		t.Errorf("namd failure pct = %v", namd.FailurePct)
	}
	amber := profiles[1]
	if amber.NodeFail != 1 || amber.FailurePct != 100 {
		t.Errorf("amber profile: %+v", amber)
	}
	byUser := FailureProfiles(st, store.ByUser, store.Filter{})
	if len(byUser) != 1 || byUser[0].Key != "u" {
		t.Errorf("by user: %+v", byUser)
	}
}

package anomaly

import (
	"sort"

	"supremm/internal/eventlog"
)

// LogSummary is the systems-administrator view of the rationalized log
// stream (§4.3.4): traffic by component and severity, the noisiest
// hosts, and how much of the traffic could be attributed to jobs — the
// payoff of the job-ID tagging.
type LogSummary struct {
	Total       int
	ByComponent []ComponentCount
	BySeverity  map[eventlog.Severity]int
	NoisyHosts  []HostCount
	// JobTagged is how many events carried a job ID.
	JobTagged int
}

// ComponentCount is one component's traffic.
type ComponentCount struct {
	Component string
	Count     int
	Errors    int // Error or Critical
}

// HostCount is one host's error traffic.
type HostCount struct {
	Host   string
	Errors int
}

// SummarizeLog builds the summary. topHosts bounds the noisy-host list.
func SummarizeLog(events []eventlog.Event, topHosts int) LogSummary {
	s := LogSummary{BySeverity: make(map[eventlog.Severity]int)}
	comp := make(map[string]*ComponentCount)
	var compOrder []string
	hostErrs := make(map[string]int)
	for _, ev := range events {
		s.Total++
		s.BySeverity[ev.Severity]++
		c := comp[ev.Component]
		if c == nil {
			c = &ComponentCount{Component: ev.Component}
			comp[ev.Component] = c
			compOrder = append(compOrder, ev.Component)
		}
		c.Count++
		if ev.Severity >= eventlog.Error {
			c.Errors++
			hostErrs[ev.Host]++
		}
		if ev.JobID != 0 {
			s.JobTagged++
		}
	}
	for _, name := range compOrder {
		s.ByComponent = append(s.ByComponent, *comp[name])
	}
	sort.Slice(s.ByComponent, func(i, j int) bool {
		if s.ByComponent[i].Count != s.ByComponent[j].Count {
			return s.ByComponent[i].Count > s.ByComponent[j].Count
		}
		return s.ByComponent[i].Component < s.ByComponent[j].Component
	})
	for host, n := range hostErrs {
		s.NoisyHosts = append(s.NoisyHosts, HostCount{Host: host, Errors: n})
	}
	sort.Slice(s.NoisyHosts, func(i, j int) bool {
		if s.NoisyHosts[i].Errors != s.NoisyHosts[j].Errors {
			return s.NoisyHosts[i].Errors > s.NoisyHosts[j].Errors
		}
		return s.NoisyHosts[i].Host < s.NoisyHosts[j].Host
	})
	if topHosts > 0 && len(s.NoisyHosts) > topHosts {
		s.NoisyHosts = s.NoisyHosts[:topHosts]
	}
	return s
}

// FailurePrecursors finds node failures that were preceded by error
// traffic on the same host within the window — the predictive claim of
// the ANCOR line of work ("anomalous resource use patterns ... are also
// commonly the precursors of job failures", §4.3.1). It returns the
// fraction of NODE_FAIL-ish critical events that had earlier warnings.
type PrecursorReport struct {
	Failures       int // critical kernel/hw events (the failures)
	WithPrecursors int // failures with earlier error traffic on the host
	WindowSec      int64
}

// FindPrecursors scans the event stream for critical kernel/hardware
// events and checks each for earlier error-severity traffic on the same
// host inside the window.
func FindPrecursors(events []eventlog.Event, windowSec int64) PrecursorReport {
	rep := PrecursorReport{WindowSec: windowSec}
	// Index error events per host, sorted by time.
	errTimes := make(map[string][]int64)
	for _, ev := range events {
		if ev.Severity >= eventlog.Error {
			errTimes[ev.Host] = append(errTimes[ev.Host], ev.Time)
		}
	}
	for _, ts := range errTimes {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	for _, ev := range events {
		if ev.Severity != eventlog.Critical || (ev.Component != "kernel" && ev.Component != "hw") {
			continue
		}
		rep.Failures++
		ts := errTimes[ev.Host]
		// Any error strictly earlier but within the window?
		i := sort.Search(len(ts), func(i int) bool { return ts[i] >= ev.Time })
		if i > 0 && ev.Time-ts[i-1] <= windowSec && ts[i-1] < ev.Time {
			rep.WithPrecursors++
		}
	}
	return rep
}

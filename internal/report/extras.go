package report

import (
	"fmt"
	"io"

	"supremm/internal/anomaly"
	"supremm/internal/appkernels"
	"supremm/internal/core"
	"supremm/internal/sched"
)

// Trends renders the §4.3.5 resource-manager trend report.
func Trends(w io.Writer, cluster string, trends []core.Trend) error {
	t := NewTable(fmt.Sprintf("== resource use trends, %s ==", cluster),
		"metric", "slope/day", "rel/month", "p-value", "significant")
	for _, tr := range trends {
		sig := ""
		if tr.Significant {
			sig = "yes"
		}
		t.AddRow(tr.Metric,
			fmt.Sprintf("%+.4g", tr.SlopePerDay),
			fmt.Sprintf("%+.1f%%", tr.RelativePerMonth*100),
			fmt.Sprintf("%.3g", tr.P), sig)
	}
	return t.Render(w)
}

// Characterization renders the workload-characterization report.
func Characterization(w io.Writer, cluster string, c core.Characterization) error {
	ew := newErrWriter(w)
	ew.printf("== workload characterization, %s ==\n", cluster)
	ew.printf("jobs analyzed: %d   node-hours: %.0f\n", c.Jobs, c.TotalNodeHours)
	ew.printf("runtime: median %.0f min, mean %.0f, node-hour-weighted mean %.0f (the paper's 549/446-min statistic)\n",
		c.Runtime.Median, c.Runtime.Mean, c.WeightedMeanRuntimeMin)
	if ew.err != nil {
		return ew.err
	}

	t := NewTable("job-size mix", "size", "jobs", "node-hours", "share")
	for _, b := range c.SizeBuckets {
		t.AddRow(b.Label, fmt.Sprintf("%d", b.Jobs),
			fmt.Sprintf("%.0f", b.NodeHours), fmt.Sprintf("%.1f%%", b.NodeHoursShare*100))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	s := NewTable("node-hours by parent science", "science", "share", "jobs")
	for _, row := range c.ScienceShare {
		s.AddRow(row.Key, fmt.Sprintf("%.1f%%", row.Share*100), fmt.Sprintf("%d", row.Jobs))
	}
	if err := s.Render(w); err != nil {
		return err
	}

	a := NewTable("node-hours by application (top 10)", "app", "share", "jobs")
	for i, row := range c.AppShare {
		if i >= 10 {
			break
		}
		a.AddRow(row.Key, fmt.Sprintf("%.1f%%", row.Share*100), fmt.Sprintf("%d", row.Jobs))
	}
	return a.Render(w)
}

// WaitReport renders queue-wait statistics.
func WaitReport(w io.Writer, cluster string, ws sched.WaitStats) error {
	if _, err := fmt.Fprintf(w, "== queue waits, %s (%d jobs) ==\n", cluster, ws.Jobs); err != nil {
		return err
	}
	t := NewTable("", "population", "mean wait (min)")
	t.AddRow("all", fmt.Sprintf("%.1f", ws.MeanWaitMin))
	t.AddRow("median", fmt.Sprintf("%.1f", ws.MedianWaitMin))
	t.AddRow("max", fmt.Sprintf("%.1f", ws.MaxWaitMin))
	t.AddRow("1 node", fmt.Sprintf("%.1f", ws.SmallMeanMin))
	t.AddRow("2-15 nodes", fmt.Sprintf("%.1f", ws.MediumMeanMin))
	t.AddRow("16+ nodes", fmt.Sprintf("%.1f", ws.LargeMeanMin))
	return t.Render(w)
}

// KernelAudit renders application-kernel verdicts.
func KernelAudit(w io.Writer, verdicts []appkernels.Verdict) error {
	t := NewTable("== application kernel audit ==",
		"kernel", "runs", "baseline GF/s", "recent GF/s", "delta", "state")
	for _, v := range verdicts {
		state := "OK"
		if v.Degraded {
			state = "DEGRADED"
		}
		t.AddRow(v.Kernel, fmt.Sprintf("%d", v.Runs),
			fmt.Sprintf("%.1f", v.BaselineMean), fmt.Sprintf("%.1f", v.RecentMean),
			fmt.Sprintf("%+.1f%%", v.DeltaPct), state)
	}
	return t.Render(w)
}

// ForecastReport renders forecaster skill at the Table 1 offsets plus
// the current scheduling hints.
func ForecastReport(w io.Writer, r *core.Realm) error {
	if _, err := fmt.Fprintf(w, "== persistence forecasts, %s ==\n", r.Cluster); err != nil {
		return err
	}
	t := NewTable("forecast skill vs climatology (cpu_flops)",
		"offset (min)", "MAE", "naive MAE", "skill")
	f, err := r.NewForecaster("cpu_flops", 10)
	if err != nil {
		return err
	}
	for _, off := range []float64{10, 30, 100, 500, 1000} {
		ev, err := f.Evaluate(r.Series, off)
		if err != nil {
			continue
		}
		t.AddRow(fmt.Sprintf("%.0f", off),
			fmt.Sprintf("%.4f", ev.MAE), fmt.Sprintf("%.4f", ev.NaiveMAE),
			fmt.Sprintf("%+.2f", ev.Skill))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	h := NewTable("scheduling hints (60 min ahead)",
		"resource", "current", "forecast", "typical", "headroom", "verdict")
	for _, metric := range []string{"io_scratch_write", "net_ib_tx"} {
		hint, err := r.Hint(metric, 60)
		if err != nil {
			continue
		}
		verdict := "hold back"
		if hint.Favorable {
			verdict = "launch now"
		}
		h.AddRow(hint.Metric,
			fmt.Sprintf("%.1f", hint.Current), fmt.Sprintf("%.1f", hint.ForecastMean),
			fmt.Sprintf("%.1f", hint.FleetMean), fmt.Sprintf("%+.0f%%", hint.Headroom*100), verdict)
	}
	return h.Render(w)
}

// Diagnoses renders ANCOR linkage results.
func Diagnoses(w io.Writer, cluster string, diags []anomaly.Diagnosis, limit int) error {
	ew := newErrWriter(w)
	ew.printf("== ANCOR diagnoses, %s (%d anomalous jobs) ==\n", cluster, len(diags))
	for i, d := range diags {
		if limit > 0 && i >= limit {
			ew.printf("  ... %d more\n", len(diags)-limit)
			break
		}
		ew.println(" ", d.String())
	}
	return ew.err
}

package report

import (
	"fmt"
	"io"
	"strings"

	"supremm/internal/core"
	"supremm/internal/ingest"
)

// DataCompleteness renders the ingest data-quality report as text — the
// operations-staff view of how much of the raw archive actually made it
// into the warehouse, and where the rest went. Pairs with the §4.3.3
// failure profiles: one explains failed jobs, this explains missing
// measurements.
func DataCompleteness(w io.Writer, q *ingest.DataQuality) error {
	ew := newErrWriter(w)
	ew.printf("== data completeness (ingest quality report) ==\n")
	ew.printf("  files ingested      %d of %d (%.1f%%)\n",
		q.FilesScanned-q.FilesQuarantined, q.FilesScanned, q.Completeness()*100)
	ew.printf("  records dropped     %d (out-of-order timestamps)\n", q.RecordsDropped)
	ew.printf("  duplicates skipped  %d\n", q.DuplicatesSkipped)
	ew.printf("  counter resets      %d (node reboots mid-archive)\n", q.ResetsDetected)
	ew.printf("  intervals clamped   %d (gaps past the sanity bound)\n", q.IntervalsClamped)
	ew.printf("  transient retries   %d\n", q.RetriesPerformed)
	ew.printf("  jobs without data   %d\n", q.JobsNoData)
	if !q.Degraded() {
		ew.printf("  no degradation: every scanned file ingested cleanly\n")
		return ew.err
	}
	if ew.err != nil {
		return ew.err
	}
	if len(q.Quarantined) == 0 {
		return nil
	}
	t := NewTable("quarantined files", "host", "file", "reason")
	for i, qf := range q.Quarantined {
		if i >= 20 {
			t.AddRow("...", fmt.Sprintf("%d more files", len(q.Quarantined)-20), "")
			break
		}
		t.AddRow(qf.Host, qf.File, qf.Reason)
	}
	return t.Render(w)
}

// SuiteWithQuality renders a stakeholder suite like Suite, then appends
// the data-completeness view for the classes that operate the pipeline:
// support staff (§4.3.3, triaging "where did my job's data go") and
// admins (§4.3.4, judging whether the archive is trustworthy). A nil
// quality report degrades to plain Suite — callers without a
// quality.json lose nothing.
func SuiteWithQuality(w io.Writer, who Stakeholder, q *ingest.DataQuality, realms ...*core.Realm) error {
	if err := Suite(w, who, realms...); err != nil {
		return err
	}
	if q == nil {
		return nil
	}
	switch who {
	case StakeholderSupport, StakeholderAdmin:
		if _, err := fmt.Fprintf(w, "\n######## %s suite: data completeness ########\n",
			strings.ToUpper(string(who))); err != nil {
			return err
		}
		return DataCompleteness(w, q)
	}
	return nil
}

package report

import (
	"fmt"
	"io"

	"supremm/internal/core"
	"supremm/internal/stats"
	"supremm/internal/store"
)

// Fig2 renders the Fig 2 reproduction: normalized usage profiles of the
// n heaviest users.
func Fig2(w io.Writer, r *core.Realm, n int) error {
	if _, err := fmt.Fprintf(w, "== Figure 2: usage profiles of the %d heaviest %s users (fleet mean = 1.0) ==\n", n, r.Cluster); err != nil {
		return err
	}
	for _, p := range r.TopUserProfiles(n) {
		if err := Radar(w, p); err != nil {
			return err
		}
	}
	return nil
}

// Fig3 renders the Fig 3 reproduction: MD application profiles.
func Fig3(w io.Writer, realms []*core.Realm, apps []string) error {
	if _, err := fmt.Fprintln(w, "== Figure 3: resource profiles of the MD codes across clusters =="); err != nil {
		return err
	}
	for _, r := range realms {
		for _, p := range r.AppProfiles(apps) {
			if err := Radar(w, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig4 renders the Fig 4 reproduction: node-hours vs wasted node-hours
// per user with the fleet-efficiency reference line and the worst user
// marked.
func Fig4(w io.Writer, r *core.Realm) error {
	report := r.EfficiencyReport()
	if len(report) == 0 {
		return fmt.Errorf("report: no users for Fig 4")
	}
	xs := make([]float64, len(report))
	ys := make([]float64, len(report))
	markIdx := -1
	worst := r.WorstUsers(1, 50)
	for i, u := range report {
		xs[i] = u.NodeHours
		ys[i] = u.WastedNodeHours
		if len(worst) > 0 && u.User == worst[0].User {
			markIdx = i
		}
	}
	eff := r.FleetEfficiency()
	if _, err := fmt.Fprintf(w, "== Figure 4: %s node-hours vs wasted node-hours (fleet efficiency %.0f%%) ==\n",
		r.Cluster, eff*100); err != nil {
		return err
	}
	sc := &Scatter{
		Title:  fmt.Sprintf("each '+' is a user; 'O' marks the most idle heavy user; '-' is the %.0f%% efficiency line", eff*100),
		XLabel: "node-hours (log)", YLabel: "wasted node-hours (log)",
		LogX: true, LogY: true,
		Xs: xs, Ys: ys, MarkIdx: markIdx,
		RefLineSlope: 1 - eff,
	}
	if err := sc.Render(w); err != nil {
		return err
	}
	t := NewTable("top users by wasted node-hours",
		"user", "node-hours", "wasted", "idle%", "jobs")
	byWaste := append([]core.UserEfficiency(nil), report...)
	for i := 0; i < len(byWaste); i++ {
		for j := i + 1; j < len(byWaste); j++ {
			if byWaste[j].WastedNodeHours > byWaste[i].WastedNodeHours {
				byWaste[i], byWaste[j] = byWaste[j], byWaste[i]
			}
		}
	}
	for i, u := range byWaste {
		if i >= 10 {
			break
		}
		t.AddRow(u.User, fmt.Sprintf("%.0f", u.NodeHours),
			fmt.Sprintf("%.0f", u.WastedNodeHours),
			fmt.Sprintf("%.1f", u.IdleFrac*100), fmt.Sprintf("%d", u.Jobs))
	}
	return t.Render(w)
}

// Fig5 renders the Fig 5 reproduction: the profile of the worst idle
// user (the "circled" user of Fig 4).
func Fig5(w io.Writer, r *core.Realm) error {
	worst := r.WorstUsers(1, 50)
	if len(worst) == 0 {
		return fmt.Errorf("report: no worst user for Fig 5")
	}
	if _, err := fmt.Fprintf(w, "== Figure 5: profile of the circled user (%s, %.0f%% idle) ==\n",
		worst[0].User, worst[0].IdleFrac*100); err != nil {
		return err
	}
	return Radar(w, r.UserProfile(worst[0].User))
}

// Table1 renders the Table 1 reproduction: persistence ratios at the
// paper's offsets with per-metric fit R^2.
func Table1(w io.Writer, tab *core.PersistenceTable) error {
	t := NewTable("== Table 1: persistence ratios (offset-difference sd normalized; see DESIGN.md) ==",
		"offset(min)", "flops", "mem", "write", "ib_tx", "cpu_idle")
	cols := []string{"cpu_flops", "mem_used", "io_scratch_write", "net_ib_tx", "cpu_idle"}
	for i, off := range tab.OffsetsMin {
		row := []string{fmt.Sprintf("%d", off)}
		for _, m := range cols {
			row = append(row, fmt.Sprintf("%.3f", tab.Ratios[m][i]))
		}
		t.AddRow(row...)
	}
	fitRow := []string{"fit R^2"}
	for _, m := range cols {
		fitRow = append(fitRow, fmt.Sprintf("%.3f", tab.Fits[m].R2))
	}
	t.AddRow(fitRow...)
	return t.Render(w)
}

// Fig6 renders the Fig 6 reproduction: the combined logarithmic
// persistence fit with the significance statistics the paper quotes.
func Fig6(w io.Writer, cluster string, tab *core.PersistenceTable) error {
	f := tab.Combined
	ew := newErrWriter(w)
	ew.printf("== Figure 6: combined persistence fit, %s ==\n", cluster)
	ew.printf("  ratio = %.3f + %.3f*ln(offset_min)\n", f.Intercept, f.Slope)
	ew.printf("  intercept %.2f(%.0f) p=%.2g   slope %.2f(%.0f) p=%.2g   R^2=%.2f\n",
		f.Intercept, f.InterceptSE*100, f.InterceptP,
		f.Slope, f.SlopeSE*100, f.SlopeP, f.R2)
	ew.printf("  prediction horizon (ratio=0.9): %.0f min\n", tab.PredictionHorizonMin(0.9))
	return ew.err
}

// Fig7 renders the three Fig 7 sample reports.
func Fig7(w io.Writer, r *core.Realm) error {
	if _, err := fmt.Fprintf(w, "== Figure 7: system reports, %s ==\n", r.Cluster); err != nil {
		return err
	}
	a := NewTable("(a) average memory per core by parent science",
		"science", "mem/core GB", "node-hours", "jobs")
	for _, row := range r.MemoryByScience() {
		a.AddRow(row.Science, fmt.Sprintf("%.2f", row.MemPerCoreGB),
			fmt.Sprintf("%.0f", row.NodeHours), fmt.Sprintf("%d", row.Jobs))
	}
	if err := a.Render(w); err != nil {
		return err
	}
	h := r.CPUHoursReport()
	b := NewTable("(b) CPU hours split", "state", "core-hours", "share")
	for _, row := range []struct {
		name string
		v    float64
	}{{"user", h.UserCoreHours}, {"system", h.SysCoreHours}, {"idle", h.IdleCoreHours}} {
		b.AddRow(row.name, fmt.Sprintf("%.0f", row.v), fmt.Sprintf("%.1f%%", row.v/h.TotalCoreHours*100))
	}
	if err := b.Render(w); err != nil {
		return err
	}
	c := NewTable("(c) Lustre traffic by mount", "mount", "mean MB/s", "peak MB/s")
	for _, row := range r.LustreByMount() {
		c.AddRow(row.Mount, fmt.Sprintf("%.1f", row.MeanMBps), fmt.Sprintf("%.1f", row.PeakMBps))
	}
	return c.Render(w)
}

// Fig8 renders the active-nodes time series.
func Fig8(w io.Writer, r *core.Realm) error {
	a := r.ActiveNodesReport()
	if _, err := fmt.Fprintf(w, "== Figure 8: %s active nodes (mean %.1f, min %.0f, %d zero samples of %d) ==\n",
		r.Cluster, a.MeanActive, a.MinActive, a.ZeroSamples, a.TotalSamples); err != nil {
		return err
	}
	return TimeSeries(w, "active nodes per day", r.SeriesDaily("active_nodes"), 10)
}

// Fig9 renders the cluster FLOPS time series with the peak comparison.
func Fig9(w io.Writer, r *core.Realm) error {
	f := r.FlopsReport()
	ew := newErrWriter(w)
	ew.printf("== Figure 9: %s delivered SSE FLOPS (mean %.2f TF, peak %.2f TF, machine peak %.0f TF) ==\n",
		r.Cluster, f.MeanTFlops, f.PeakTFlops, f.MachinePeakTF)
	ew.printf("  mean is %.1f%% of peak; max observed is %.1f%% of peak\n",
		f.MeanFraction*100, f.PeakFraction*100)
	if ew.err != nil {
		return ew.err
	}
	return TimeSeries(w, "cluster TFLOP/s per day", r.SeriesDaily("total_tflops"), 10)
}

// Fig10 renders the FLOPS kernel density.
func Fig10(w io.Writer, r *core.Realm) error {
	kde, curve := r.FlopsDistribution(128)
	if _, err := fmt.Fprintf(w, "== Figure 10: %s FLOPS distribution (kernel density, mode %.2f TF) ==\n",
		r.Cluster, kde.Mode()); err != nil {
		return err
	}
	return Density(w, "cluster TFLOP/s density", "TFLOP/s",
		map[string][]stats.CurvePoint{"flops": curve}, 64, 12)
}

// Fig11 renders the memory-per-node time series.
func Fig11(w io.Writer, r *core.Realm) error {
	m := r.MemoryReport()
	if _, err := fmt.Fprintf(w, "== Figure 11: %s memory per node (mean %.1f GB of %.0f GB, peak %.1f GB) ==\n",
		r.Cluster, m.MeanGB, m.CapacityGB, m.PeakGB); err != nil {
		return err
	}
	return TimeSeries(w, "mean GB per node per day", r.SeriesDaily("mem_used"), 10)
}

// Fig12 renders the memory kernel densities (mem_used and mem_used_max).
func Fig12(w io.Writer, r *core.Realm) error {
	used, maxCurve := r.MemoryDistribution(128)
	if used == nil {
		return fmt.Errorf("report: no jobs for Fig 12")
	}
	m := r.MemoryReport()
	if _, err := fmt.Fprintf(w, "== Figure 12: %s job memory distributions (job-max mean %.1f GB of %.0f GB) ==\n",
		r.Cluster, m.JobMaxMeanGB, m.CapacityGB); err != nil {
		return err
	}
	return Density(w, "per-job memory density", "GB per node",
		map[string][]stats.CurvePoint{"mem_used": used, "mem_used_max": maxCurve}, 64, 12)
}

// CorrelationReport renders the §4.2 metric-selection evidence.
func CorrelationReport(w io.Writer, r *core.Realm) error {
	matrix := r.CorrelationMatrix(store.AllMetrics())
	if _, err := fmt.Fprintf(w, "== Metric correlation (sec 4.2), %s ==\n", r.Cluster); err != nil {
		return err
	}
	t := NewTable("strongly correlated pairs (|rho| >= 0.9)", "metric A", "metric B", "rho")
	for _, p := range core.CorrelatedPairs(matrix, 0.9) {
		t.AddRow(string(p.A), string(p.B), fmt.Sprintf("%+.3f", core.Correlation(matrix, p.A, p.B)))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	picked := core.SelectIndependent(matrix,
		append(store.KeyMetrics(), store.MetricCPUUser, store.MetricIBRx, store.MetricCPUSys, store.MetricRead, store.MetricLnetTx), 0.98)
	_, err := fmt.Fprintf(w, "independent set (threshold 0.98): %v\n", picked)
	return err
}

package report

import (
	"bytes"
	"fmt"
	"io"

	"supremm/internal/core"
	"supremm/internal/ingest"
)

// HTMLDashboard writes a single self-contained HTML page — the
// reproduction's stand-in for XDMoD's web UI: headline tiles per
// cluster, the vector figures inline, and the cross-system table.
// Everything is embedded; the file opens offline in any browser.
func HTMLDashboard(w io.Writer, realms ...*core.Realm) error {
	return HTMLDashboardQuality(w, nil, realms...)
}

// HTMLDashboardQuality is HTMLDashboard plus a data-completeness
// section rendered from the ingest quality report; nil q omits the
// section (the simulate path has no quality report to show).
func HTMLDashboardQuality(w io.Writer, q *ingest.DataQuality, realms ...*core.Realm) error {
	if len(realms) == 0 {
		return fmt.Errorf("report: dashboard needs at least one realm")
	}
	var b bytes.Buffer
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>SUPReMM dashboard</title>
<style>
body { font-family: sans-serif; margin: 24px; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { border: 1px solid #ccc; border-radius: 6px; padding: 10px 16px; min-width: 130px; }
.tile .v { font-size: 22px; font-weight: bold; } .tile .k { font-size: 11px; color: #666; }
table { border-collapse: collapse; margin-top: 8px; }
td, th { border: 1px solid #ccc; padding: 4px 10px; font-size: 13px; text-align: right; }
th { background: #f2f2f2; } td:first-child, th:first-child { text-align: left; }
figure { display: inline-block; margin: 8px; border: 1px solid #eee; }
</style></head><body>
<h1>SUPReMM dashboard &mdash; data-driven system management</h1>
`)
	for _, r := range realms {
		flops := r.FlopsReport()
		mem := r.MemoryReport()
		eff := r.EffectiveUse()
		fmt.Fprintf(&b, "<h2>%s</h2>\n<div class=\"tiles\">\n", svgEscape(r.Cluster))
		tile := func(value, key string) {
			fmt.Fprintf(&b, `<div class="tile"><div class="v">%s</div><div class="k">%s</div></div>`+"\n",
				svgEscape(value), svgEscape(key))
		}
		tile(fmt.Sprintf("%d", r.JobCount()), "jobs analyzed")
		tile(fmt.Sprintf("%.0f", r.TotalNodeHours()), "node-hours")
		tile(fmt.Sprintf("%.1f%%", r.FleetEfficiency()*100), "fleet efficiency")
		tile(fmt.Sprintf("%.2f TF", flops.MeanTFlops), fmt.Sprintf("delivered (peak %.0f TF)", flops.MachinePeakTF))
		tile(fmt.Sprintf("%.1f GB", mem.MeanGB), fmt.Sprintf("mem/node of %.0f GB", mem.CapacityGB))
		tile(fmt.Sprintf("%.1f%%", eff.AllocatedFraction*100), "capacity allocated")
		b.WriteString("</div>\n")

		// Inline the vector figures.
		if err := SVGFigures(r, func(name string) (io.WriteCloser, error) {
			fmt.Fprintf(&b, "<figure><!-- %s -->\n", svgEscape(name))
			return &htmlInline{buf: &b}, nil
		}); err != nil {
			return err
		}
	}
	if len(realms) > 1 {
		cmp := core.CompareSystems(realms...)
		b.WriteString("<h2>cross-system comparison</h2>\n<table><tr><th>cluster</th><th>jobs</th><th>node-hours</th><th>efficiency</th><th>mean TF</th><th>mem used</th><th>allocated</th></tr>\n")
		for _, row := range cmp.Rows {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%.0f</td><td>%.1f%%</td><td>%.2f</td><td>%.1f%%</td><td>%.1f%%</td></tr>\n",
				svgEscape(row.Cluster), row.Jobs, row.NodeHours, row.Efficiency*100,
				row.MeanTFlops, row.MemFraction*100, row.AllocatedFraction*100)
		}
		b.WriteString("</table>\n")
	}
	if q != nil {
		htmlQualitySection(&b, q)
	}
	b.WriteString("</body></html>\n")
	_, err := w.Write(b.Bytes())
	return err
}

// htmlQualitySection renders the ingest quality report as dashboard
// tiles plus the quarantine table — the web-UI twin of DataCompleteness.
func htmlQualitySection(b *bytes.Buffer, q *ingest.DataQuality) {
	b.WriteString("<h2>data completeness</h2>\n<div class=\"tiles\">\n")
	tile := func(value, key string) {
		fmt.Fprintf(b, `<div class="tile"><div class="v">%s</div><div class="k">%s</div></div>`+"\n",
			svgEscape(value), svgEscape(key))
	}
	tile(fmt.Sprintf("%.1f%%", q.Completeness()*100),
		fmt.Sprintf("of %d files ingested", q.FilesScanned))
	tile(fmt.Sprintf("%d", q.FilesQuarantined), "files quarantined")
	tile(fmt.Sprintf("%d", q.RecordsDropped), "records dropped")
	tile(fmt.Sprintf("%d", q.ResetsDetected), "counter resets")
	tile(fmt.Sprintf("%d", q.IntervalsClamped), "intervals clamped")
	tile(fmt.Sprintf("%d", q.JobsNoData), "jobs without data")
	b.WriteString("</div>\n")
	if len(q.Quarantined) == 0 {
		return
	}
	b.WriteString("<table><tr><th>host</th><th>file</th><th>reason</th></tr>\n")
	for _, qf := range q.Quarantined {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			svgEscape(qf.Host), svgEscape(qf.File), svgEscape(qf.Reason))
	}
	b.WriteString("</table>\n")
}

// htmlInline adapts the SVGFigures writer contract to in-page embedding.
type htmlInline struct{ buf *bytes.Buffer }

func (h *htmlInline) Write(p []byte) (int, error) { return h.buf.Write(p) }
func (h *htmlInline) Close() error {
	h.buf.WriteString("</figure>\n")
	return nil
}

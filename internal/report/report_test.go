package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"supremm/internal/cluster"
	"supremm/internal/core"
	"supremm/internal/sim"
	"supremm/internal/stats"
)

var (
	fixtureOnce sync.Once
	realm       *core.Realm
)

func testRealm(t *testing.T) *core.Realm {
	t.Helper()
	fixtureOnce.Do(func() {
		cc := cluster.RangerConfig().Scaled(48)
		cfg := sim.DefaultConfig(cc, 7)
		cfg.DurationMin = 14 * 24 * 60
		res, err := sim.Run(cfg)
		if err != nil {
			panic(err)
		}
		realm = core.NewRealm(cc.Name, cc.CoresPerNode(), cc.MemPerNodeGB, cc.PeakTFlops(), res.Store, res.Series)
	})
	return realm
}

func TestTableRender(t *testing.T) {
	tab := NewTable("title", "a", "bb", "ccc")
	tab.AddRow("1", "2")
	tab.AddRow("longvalue", "x", "y")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "longvalue") {
		t.Errorf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: "bb" and "x" start at the same offset.
	hdr := lines[1]
	row := lines[4]
	if strings.Index(hdr, "bb") != strings.Index(row, "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "name", "value")
	tab.AddRow(`has,comma`, `has"quote`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,value\n\"has,comma\",\"has\"\"quote\"\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRowf("%d\t%.1f", 3, 2.5)
	if tab.Rows[0][0] != "3" || tab.Rows[0][1] != "2.5" {
		t.Errorf("AddRowf row = %v", tab.Rows[0])
	}
}

func TestRadarMarksUnity(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := Radar(&buf, r.TopUserProfiles(1)[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|") {
		t.Error("no unity marker in radar output")
	}
	if !strings.Contains(out, "cpu_idle") || !strings.Contains(out, "cpu_flops") {
		t.Errorf("radar missing metrics:\n%s", out)
	}
	// One row per key metric plus header.
	if got := strings.Count(out, "x "); got < 8 {
		t.Errorf("radar rows = %d, want >= 8:\n%s", got, out)
	}
}

func TestScatterRender(t *testing.T) {
	sc := &Scatter{
		Xs: []float64{1, 10, 100, 1000}, Ys: []float64{0.5, 2, 30, 100},
		LogX: true, LogY: true, MarkIdx: 2, RefLineSlope: 0.1,
		XLabel: "x", YLabel: "y", Width: 40, Height: 10,
	}
	var buf bytes.Buffer
	if err := sc.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+") || !strings.Contains(out, "O") {
		t.Errorf("scatter missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Error("scatter missing reference line")
	}
	// Errors on bad input.
	bad := &Scatter{Xs: []float64{1}, Ys: []float64{}}
	if err := bad.Render(&buf); err == nil {
		t.Error("mismatched series should error")
	}
}

func TestTimeSeriesRender(t *testing.T) {
	pts := []core.TimePoint{{Time: 0, Value: 1}, {Time: 86400, Value: 5}, {Time: 172800, Value: 3}}
	var buf bytes.Buffer
	if err := TimeSeries(&buf, "title", pts, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "#") {
		t.Errorf("timeseries output:\n%s", out)
	}
	if err := TimeSeries(&buf, "t", nil, 5); err == nil {
		t.Error("empty series should error")
	}
}

func TestDensityRender(t *testing.T) {
	kde := stats.NewKDE([]float64{1, 2, 2, 3, 3, 3, 4})
	curve := kde.SupportCurve(64)
	var buf bytes.Buffer
	err := Density(&buf, "d", "x", map[string][]stats.CurvePoint{"a": curve, "b": curve}, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "*") {
		t.Errorf("density missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("density missing legend")
	}
	if err := Density(&buf, "d", "x", nil, 40, 8); err == nil {
		t.Error("no curves should error")
	}
}

func TestAllFigureRenderers(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	tab, err := r.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    func() error
	}{
		{"Fig2", func() error { return Fig2(&buf, r, 3) }},
		{"Fig3", func() error { return Fig3(&buf, []*core.Realm{r}, []string{"namd", "amber", "gromacs"}) }},
		{"Fig4", func() error { return Fig4(&buf, r) }},
		{"Fig5", func() error { return Fig5(&buf, r) }},
		{"Table1", func() error { return Table1(&buf, tab) }},
		{"Fig6", func() error { return Fig6(&buf, r.Cluster, tab) }},
		{"Fig7", func() error { return Fig7(&buf, r) }},
		{"Fig8", func() error { return Fig8(&buf, r) }},
		{"Fig9", func() error { return Fig9(&buf, r) }},
		{"Fig10", func() error { return Fig10(&buf, r) }},
		{"Fig11", func() error { return Fig11(&buf, r) }},
		{"Fig12", func() error { return Fig12(&buf, r) }},
		{"Corr", func() error { return CorrelationReport(&buf, r) }},
	}
	for _, c := range cases {
		buf.Reset()
		if err := c.f(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty output", c.name)
		}
	}
}

func TestTable1ContainsAllOffsets(t *testing.T) {
	r := testRealm(t)
	tab, err := r.Persistence(10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Table1(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, off := range []string{"10", "30", "100", "500", "1000"} {
		if !strings.Contains(out, off) {
			t.Errorf("Table 1 missing offset %s:\n%s", off, out)
		}
	}
	if !strings.Contains(out, "fit R^2") {
		t.Error("Table 1 missing fit row")
	}
}

package report

import (
	"fmt"
	"io"
)

// errWriter latches the first error from a sequence of formatted
// writes, so line-oriented renderers can emit unconditionally and
// report one error at the end instead of checking every Fprintf. After
// a write fails, subsequent writes are no-ops: the renderer stops
// touching a broken sink (full disk, closed pipe) but produces no
// partial-success lie — err carries the failure to the caller.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

// printf formats to the underlying writer unless a write already
// failed.
func (ew *errWriter) printf(format string, args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintf(ew.w, format, args...)
	}
}

// println writes its operands like fmt.Println unless a write already
// failed.
func (ew *errWriter) println(args ...any) {
	if ew.err == nil {
		_, ew.err = fmt.Fprintln(ew.w, args...)
	}
}

package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"supremm/internal/ingest"
)

func degradedQuality() *ingest.DataQuality {
	return &ingest.DataQuality{
		FilesScanned:      40,
		FilesQuarantined:  2,
		RecordsDropped:    3,
		DuplicatesSkipped: 1,
		ResetsDetected:    1,
		IntervalsClamped:  2,
		RetriesPerformed:  4,
		JobsNoData:        1,
		Quarantined: []ingest.QuarantinedFile{
			{Host: "c101-001.ranger", File: "15126.raw", Reason: "parse: bad counter"},
			{Host: "c101-002.ranger", File: "15127.raw", Reason: "open: permission denied"},
		},
	}
}

func TestDataCompleteness(t *testing.T) {
	var buf bytes.Buffer
	if err := DataCompleteness(&buf, degradedQuality()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"38 of 40 (95.0%)", "records dropped     3", "jobs without data   1",
		"quarantined files", "c101-001.ranger", "15127.raw", "permission denied",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// A clean archive says so and renders no quarantine table.
	buf.Reset()
	if err := DataCompleteness(&buf, &ingest.DataQuality{FilesScanned: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no degradation") {
		t.Errorf("clean report:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "quarantined files") {
		t.Error("clean report rendered a quarantine table")
	}

	// A long quarantine list is elided, not dumped wholesale.
	q := degradedQuality()
	for i := 0; i < 30; i++ {
		q.Quarantined = append(q.Quarantined, ingest.QuarantinedFile{Host: "h", File: "f", Reason: "r"})
	}
	buf.Reset()
	if err := DataCompleteness(&buf, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12 more files") {
		t.Errorf("long list not elided:\n%s", buf.String())
	}
}

// failWriter fails every write, for error-propagation checks.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink broken") }

func TestDataCompletenessPropagatesWriteErrors(t *testing.T) {
	if err := DataCompleteness(failWriter{}, degradedQuality()); err == nil {
		t.Error("broken sink should error")
	}
	if err := DataCompleteness(failWriter{}, &ingest.DataQuality{}); err == nil {
		t.Error("broken sink should error on the clean path too")
	}
}

func TestSuiteWithQuality(t *testing.T) {
	r := testRealm(t)
	q := degradedQuality()
	for _, who := range []Stakeholder{StakeholderSupport, StakeholderAdmin} {
		var buf bytes.Buffer
		if err := SuiteWithQuality(&buf, who, q, r); err != nil {
			t.Fatalf("%s: %v", who, err)
		}
		if !strings.Contains(buf.String(), "data completeness") {
			t.Errorf("%s suite missing completeness section", who)
		}
	}

	// Other stakeholders don't get the operations view.
	var buf bytes.Buffer
	if err := SuiteWithQuality(&buf, StakeholderUser, q, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "data completeness") {
		t.Error("user suite should not carry the completeness section")
	}

	// Nil quality report degrades to the plain suite.
	var plain, withNil bytes.Buffer
	if err := Suite(&plain, StakeholderSupport, r); err != nil {
		t.Fatal(err)
	}
	if err := SuiteWithQuality(&withNil, StakeholderSupport, nil, r); err != nil {
		t.Fatal(err)
	}
	if plain.String() != withNil.String() {
		t.Error("nil quality should render exactly the plain suite")
	}
}

func TestHTMLDashboardQuality(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := HTMLDashboardQuality(&buf, degradedQuality(), r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"data completeness", "files quarantined", "c101-001.ranger"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	// The plain dashboard is unchanged: no quality section.
	buf.Reset()
	if err := HTMLDashboard(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "data completeness") {
		t.Error("plain dashboard should not render a quality section")
	}
}

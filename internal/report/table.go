// Package report renders the analytics layer's outputs as text: aligned
// tables, CSV, radar profiles, scatter plots, time series and density
// curves as ASCII charts. It is the stand-in for XDMoD's chart UI — every
// figure of the paper has a renderer here that emits both the underlying
// series (CSV) and a human-readable view.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w2 := range widths {
		total += w2 + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV emits the table as CSV with a header row. Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(csvEscape(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"supremm/internal/core"
	"supremm/internal/stats"
	"supremm/internal/store"
)

// Radar renders a profile as a labelled bar view — the textual analogue
// of the paper's radar charts, with one row per metric, the fleet-mean
// line at 1.0 marked with '|'.
func Radar(w io.Writer, p core.Profile) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile %s on %s  (%d jobs, %.0f node-hours)\n",
		p.Key, p.Cluster, p.N, p.NodeHours)
	metrics := sortedMetrics(p.Normalized)
	scale := 20.0 // columns per 1.0x
	maxCols := 64
	for _, m := range metrics {
		v := p.Normalized[m]
		cols := int(v * scale)
		if cols > maxCols {
			cols = maxCols
		}
		if cols < 0 || math.IsNaN(v) {
			cols = 0
		}
		bar := strings.Repeat("#", cols)
		// Mark the unity line.
		unity := int(scale)
		line := bar
		if len(line) < unity {
			line += strings.Repeat(" ", unity-len(line))
		}
		line = line[:unity] + "|" + line[unity:]
		fmt.Fprintf(&sb, "  %-18s %6.2fx %s\n", m, v, line)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func sortedMetrics(m map[store.Metric]float64) []store.Metric {
	out := make([]store.Metric, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Scatter renders an XY point cloud as an ASCII grid — used for Fig 4's
// node-hours vs wasted node-hours plot. Log-scale axes clamp at
// logFloor when values are zero.
type Scatter struct {
	Title        string
	XLabel       string
	YLabel       string
	Width        int
	Height       int
	LogX, LogY   bool
	Xs, Ys       []float64
	MarkIdx      int     // index drawn as 'O' (the "circled user"); -1 none
	RefLineSlope float64 // y = slope*x reference (efficiency line); 0 none
}

// Render draws the scatter.
func (s *Scatter) Render(w io.Writer) error {
	if len(s.Xs) != len(s.Ys) || len(s.Xs) == 0 {
		return fmt.Errorf("report: scatter needs matching non-empty series")
	}
	width, height := s.Width, s.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	tx := func(v float64) float64 {
		if s.LogX {
			return math.Log10(math.Max(v, 1e-3))
		}
		return v
	}
	ty := func(v float64) float64 {
		if s.LogY {
			return math.Log10(math.Max(v, 1e-3))
		}
		return v
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for i := range s.Xs {
		x, y := tx(s.Xs[i]), ty(s.Ys[i])
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
		ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	place := func(xv, yv float64, ch byte) {
		cx := int((tx(xv) - xmin) / (xmax - xmin) * float64(width-1))
		cy := int((ty(yv) - ymin) / (ymax - ymin) * float64(height-1))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = ch
		}
	}
	if s.RefLineSlope > 0 {
		for c := 0; c < width; c++ {
			xv := xmin + (xmax-xmin)*float64(c)/float64(width-1)
			realX := xv
			if s.LogX {
				realX = math.Pow(10, xv)
			}
			place(realX, s.RefLineSlope*realX, '-')
		}
	}
	for i := range s.Xs {
		place(s.Xs[i], s.Ys[i], '+')
	}
	if s.MarkIdx >= 0 && s.MarkIdx < len(s.Xs) {
		place(s.Xs[s.MarkIdx], s.Ys[s.MarkIdx], 'O')
	}
	var sb strings.Builder
	if s.Title != "" {
		sb.WriteString(s.Title + "\n")
	}
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "   x: %s   y: %s\n", s.XLabel, s.YLabel)
	_, err := io.WriteString(w, sb.String())
	return err
}

// TimeSeries renders a downsampled series as a column chart — the view
// of Figs 8, 9 and 11.
func TimeSeries(w io.Writer, title string, points []core.TimePoint, height int) error {
	if len(points) == 0 {
		return fmt.Errorf("report: empty time series")
	}
	if height <= 0 {
		height = 12
	}
	ymax := math.Inf(-1)
	for _, p := range points {
		if p.Value > ymax {
			ymax = p.Value
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for r := height; r >= 1; r-- {
		threshold := ymax * float64(r) / float64(height)
		lineLabel := "        "
		if r == height {
			lineLabel = fmt.Sprintf("%7.1f ", ymax)
		}
		sb.WriteString(lineLabel + "|")
		for _, p := range points {
			if p.Value >= threshold-1e-12 {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("    0.0 +" + strings.Repeat("-", len(points)) + "\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// Density renders a KDE curve — the view of Figs 10 and 12. Multiple
// curves overlay with distinct glyphs.
func Density(w io.Writer, title, xlabel string, curves map[string][]stats.CurvePoint, width, height int) error {
	if len(curves) == 0 {
		return fmt.Errorf("report: no density curves")
	}
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 14
	}
	glyphs := []byte{'#', '*', 'o', '^'}
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)

	xmin, xmax, dmax := math.Inf(1), math.Inf(-1), 0.0
	for _, n := range names {
		for _, p := range curves[n] {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			dmax = math.Max(dmax, p.Density)
		}
	}
	if xmax == xmin || dmax == 0 {
		return fmt.Errorf("report: degenerate density curves")
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for gi, n := range names {
		g := glyphs[gi%len(glyphs)]
		for _, p := range curves[n] {
			cx := int((p.X - xmin) / (xmax - xmin) * float64(width-1))
			cy := int(p.Density / dmax * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = g
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "   %g%s%g  (%s)   legend:", xmin, strings.Repeat(" ", width-18), xmax, xlabel)
	for gi, n := range names {
		fmt.Fprintf(&sb, " %c=%s", glyphs[gi%len(glyphs)], n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

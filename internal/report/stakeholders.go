package report

import (
	"fmt"
	"io"
	"strings"

	"supremm/internal/anomaly"
	"supremm/internal/core"
	"supremm/internal/store"
)

// Stakeholder identifies one of the six §4.3 stakeholder classes.
type Stakeholder string

// The paper's stakeholder classes, §4.3.1-§4.3.6.
const (
	StakeholderUser      Stakeholder = "user"
	StakeholderDeveloper Stakeholder = "developer"
	StakeholderSupport   Stakeholder = "support"
	StakeholderAdmin     Stakeholder = "admin"
	StakeholderManager   Stakeholder = "manager"
	StakeholderFunding   Stakeholder = "funding"
)

// Stakeholders lists the classes in paper order.
func Stakeholders() []Stakeholder {
	return []Stakeholder{
		StakeholderUser, StakeholderDeveloper, StakeholderSupport,
		StakeholderAdmin, StakeholderManager, StakeholderFunding,
	}
}

// Suite renders the named stakeholder's report set, assembling the §4.3
// reports that section assigns to the class. Realms beyond the first
// enable the cross-system pieces (Fig 3, advice, comparison); a single
// realm renders the single-system subset.
func Suite(w io.Writer, who Stakeholder, realms ...*core.Realm) error {
	if len(realms) == 0 {
		return fmt.Errorf("report: suite needs at least one realm")
	}
	r := realms[0]
	head := func(title string) {
		fmt.Fprintf(w, "\n######## %s suite: %s ########\n", strings.ToUpper(string(who)), title)
	}
	switch who {
	case StakeholderUser:
		// §4.3.1: resource use profile, comparative use, anomalous
		// patterns, system choice.
		head("usage profiles (Fig 2)")
		if err := Fig2(w, r, 3); err != nil {
			return err
		}
		head("anomalous resource use")
		for i, p := range r.AnomalousUsers(store.MetricCPUIdle, 3, 50) {
			if i >= 2 {
				break
			}
			if err := Radar(w, p); err != nil {
				return err
			}
		}
		if len(realms) > 1 {
			head("which system suits the top codes (Fig 3 reading)")
			for _, app := range []string{"namd", "amber", "gromacs"} {
				choice := core.AdviseSystem(app, realms...)
				if choice.Best != "" {
					fmt.Fprintf(w, "  %-10s -> %s\n", app, choice.Best)
				}
			}
		}
		return nil
	case StakeholderDeveloper:
		// §4.3.2: app profiles, comparative profiles, variability.
		head("application profiles (Fig 3)")
		return Fig3(w, realms, []string{"namd", "amber", "gromacs"})
	case StakeholderSupport:
		// §4.3.3: inefficient users, abnormal terminations.
		head("wasted node-hours (Fig 4)")
		if err := Fig4(w, r); err != nil {
			return err
		}
		head("the circled user (Fig 5)")
		if err := Fig5(w, r); err != nil {
			return err
		}
		head("job completion failure profiles")
		t := NewTable("", "app", "jobs", "failure%")
		for _, p := range anomaly.FailureProfiles(r.Store, store.ByApp, r.JobFilter()) {
			t.AddRow(p.Key, fmt.Sprintf("%d", p.Jobs), fmt.Sprintf("%.1f", p.FailurePct))
		}
		return t.Render(w)
	case StakeholderAdmin:
		// §4.3.4: persistence/prediction, scheduler effectiveness.
		tab, err := r.Persistence(10)
		if err != nil {
			return err
		}
		head("persistence (Table 1)")
		if err := Table1(w, tab); err != nil {
			return err
		}
		head("persistence fit (Fig 6)")
		if err := Fig6(w, r.Cluster, tab); err != nil {
			return err
		}
		head("forecasts and scheduling hints")
		return ForecastReport(w, r)
	case StakeholderManager:
		// §4.3.5: workload characterization, system-level reports,
		// trends.
		head("system reports (Fig 7)")
		if err := Fig7(w, r); err != nil {
			return err
		}
		head("workload characterization")
		if err := Characterization(w, r.Cluster, r.Characterize()); err != nil {
			return err
		}
		head("resource use trends")
		return Trends(w, r.Cluster, r.TrendReport())
	case StakeholderFunding:
		// §4.3.6: cross-system accountability.
		head("system operation profiles (Figs 8-12 headlines)")
		for _, f := range []func() error{
			func() error { return Fig8(w, r) },
			func() error { return Fig9(w, r) },
			func() error { return Fig11(w, r) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		head("usage by discipline over time")
		t := NewTable("", "week start", "science", "node-hours", "share")
		points := r.UsageByScienceOverTime(7)
		for i, p := range points {
			if i >= 18 {
				t.AddRow("...", fmt.Sprintf("%d more rows", len(points)-18), "", "")
				break
			}
			t.AddRow(fmt.Sprintf("%d", p.BucketStart), p.Science,
				fmt.Sprintf("%.0f", p.NodeHours), fmt.Sprintf("%.0f%%", p.Share*100))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if len(realms) > 1 {
			head("cross-system comparison")
			cmp := core.CompareSystems(realms...)
			ct := NewTable("", "cluster", "node-hours", "efficiency", "allocated")
			for _, row := range cmp.Rows {
				ct.AddRow(row.Cluster, fmt.Sprintf("%.0f", row.NodeHours),
					fmt.Sprintf("%.1f%%", row.Efficiency*100),
					fmt.Sprintf("%.1f%%", row.AllocatedFraction*100))
			}
			return ct.Render(w)
		}
		return nil
	default:
		return fmt.Errorf("report: unknown stakeholder %q", who)
	}
}

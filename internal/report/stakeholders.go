package report

import (
	"fmt"
	"io"
	"strings"

	"supremm/internal/anomaly"
	"supremm/internal/core"
	"supremm/internal/store"
)

// Stakeholder identifies one of the six §4.3 stakeholder classes.
type Stakeholder string

// The paper's stakeholder classes, §4.3.1-§4.3.6.
const (
	StakeholderUser      Stakeholder = "user"
	StakeholderDeveloper Stakeholder = "developer"
	StakeholderSupport   Stakeholder = "support"
	StakeholderAdmin     Stakeholder = "admin"
	StakeholderManager   Stakeholder = "manager"
	StakeholderFunding   Stakeholder = "funding"
)

// Stakeholders lists the classes in paper order.
func Stakeholders() []Stakeholder {
	return []Stakeholder{
		StakeholderUser, StakeholderDeveloper, StakeholderSupport,
		StakeholderAdmin, StakeholderManager, StakeholderFunding,
	}
}

// Suite renders the named stakeholder's report set, assembling the §4.3
// reports that section assigns to the class. Realms beyond the first
// enable the cross-system pieces (Fig 3, advice, comparison); a single
// realm renders the single-system subset.
func Suite(w io.Writer, who Stakeholder, realms ...*core.Realm) error {
	if len(realms) == 0 {
		return fmt.Errorf("report: suite needs at least one realm")
	}
	r := realms[0]
	head := func(title string) error {
		_, err := fmt.Fprintf(w, "\n######## %s suite: %s ########\n", strings.ToUpper(string(who)), title)
		return err
	}
	switch who {
	case StakeholderUser:
		// §4.3.1: resource use profile, comparative use, anomalous
		// patterns, system choice.
		if err := head("usage profiles (Fig 2)"); err != nil {
			return err
		}
		if err := Fig2(w, r, 3); err != nil {
			return err
		}
		if err := head("anomalous resource use"); err != nil {
			return err
		}
		for i, p := range r.AnomalousUsers(store.MetricCPUIdle, 3, 50) {
			if i >= 2 {
				break
			}
			if err := Radar(w, p); err != nil {
				return err
			}
		}
		if len(realms) > 1 {
			if err := head("which system suits the top codes (Fig 3 reading)"); err != nil {
				return err
			}
			for _, app := range []string{"namd", "amber", "gromacs"} {
				choice := core.AdviseSystem(app, realms...)
				if choice.Best != "" {
					if _, err := fmt.Fprintf(w, "  %-10s -> %s\n", app, choice.Best); err != nil {
						return err
					}
				}
			}
		}
		return nil
	case StakeholderDeveloper:
		// §4.3.2: app profiles, comparative profiles, variability.
		if err := head("application profiles (Fig 3)"); err != nil {
			return err
		}
		return Fig3(w, realms, []string{"namd", "amber", "gromacs"})
	case StakeholderSupport:
		// §4.3.3: inefficient users, abnormal terminations.
		if err := head("wasted node-hours (Fig 4)"); err != nil {
			return err
		}
		if err := Fig4(w, r); err != nil {
			return err
		}
		if err := head("the circled user (Fig 5)"); err != nil {
			return err
		}
		if err := Fig5(w, r); err != nil {
			return err
		}
		if err := head("job completion failure profiles"); err != nil {
			return err
		}
		t := NewTable("", "app", "jobs", "failure%")
		for _, p := range anomaly.FailureProfiles(r.Store, store.ByApp, r.JobFilter()) {
			t.AddRow(p.Key, fmt.Sprintf("%d", p.Jobs), fmt.Sprintf("%.1f", p.FailurePct))
		}
		return t.Render(w)
	case StakeholderAdmin:
		// §4.3.4: persistence/prediction, scheduler effectiveness.
		tab, err := r.Persistence(10)
		if err != nil {
			return err
		}
		if err := head("persistence (Table 1)"); err != nil {
			return err
		}
		if err := Table1(w, tab); err != nil {
			return err
		}
		if err := head("persistence fit (Fig 6)"); err != nil {
			return err
		}
		if err := Fig6(w, r.Cluster, tab); err != nil {
			return err
		}
		if err := head("forecasts and scheduling hints"); err != nil {
			return err
		}
		return ForecastReport(w, r)
	case StakeholderManager:
		// §4.3.5: workload characterization, system-level reports,
		// trends.
		if err := head("system reports (Fig 7)"); err != nil {
			return err
		}
		if err := Fig7(w, r); err != nil {
			return err
		}
		if err := head("workload characterization"); err != nil {
			return err
		}
		if err := Characterization(w, r.Cluster, r.Characterize()); err != nil {
			return err
		}
		if err := head("resource use trends"); err != nil {
			return err
		}
		return Trends(w, r.Cluster, r.TrendReport())
	case StakeholderFunding:
		// §4.3.6: cross-system accountability.
		if err := head("system operation profiles (Figs 8-12 headlines)"); err != nil {
			return err
		}
		for _, f := range []func() error{
			func() error { return Fig8(w, r) },
			func() error { return Fig9(w, r) },
			func() error { return Fig11(w, r) },
		} {
			if err := f(); err != nil {
				return err
			}
		}
		if err := head("usage by discipline over time"); err != nil {
			return err
		}
		t := NewTable("", "week start", "science", "node-hours", "share")
		points := r.UsageByScienceOverTime(7)
		for i, p := range points {
			if i >= 18 {
				t.AddRow("...", fmt.Sprintf("%d more rows", len(points)-18), "", "")
				break
			}
			t.AddRow(fmt.Sprintf("%d", p.BucketStart), p.Science,
				fmt.Sprintf("%.0f", p.NodeHours), fmt.Sprintf("%.0f%%", p.Share*100))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		if len(realms) > 1 {
			if err := head("cross-system comparison"); err != nil {
				return err
			}
			cmp := core.CompareSystems(realms...)
			ct := NewTable("", "cluster", "node-hours", "efficiency", "allocated")
			for _, row := range cmp.Rows {
				ct.AddRow(row.Cluster, fmt.Sprintf("%.0f", row.NodeHours),
					fmt.Sprintf("%.1f%%", row.Efficiency*100),
					fmt.Sprintf("%.1f%%", row.AllocatedFraction*100))
			}
			return ct.Render(w)
		}
		return nil
	default:
		return fmt.Errorf("report: unknown stakeholder %q", who)
	}
}

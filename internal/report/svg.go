package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"supremm/internal/core"
	"supremm/internal/stats"
)

// SVG renderers: publication-style vector versions of the paper's
// figures, emitted with nothing but the standard library. Each renderer
// writes a self-contained <svg> document.

const (
	svgW, svgH             = 640, 420
	svgMarginL, svgMarginB = 60, 40
	svgMarginT, svgMarginR = 30, 20
)

type svgCanvas struct {
	sb   strings.Builder
	w, h int
}

func newSVG(title string) *svgCanvas {
	c := &svgCanvas{w: svgW, h: svgH}
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.w, c.h, c.w, c.h)
	c.sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&c.sb, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		svgMarginL, svgEscape(title))
	return c
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// plot area in pixel coordinates
func (c *svgCanvas) plotRect() (x0, y0, x1, y1 float64) {
	return svgMarginL, svgMarginT, float64(c.w - svgMarginR), float64(c.h - svgMarginB)
}

// axes draws the frame and labels.
func (c *svgCanvas) axes(xlabel, ylabel string, xmin, xmax, ymin, ymax float64) {
	x0, y0, x1, y1 := c.plotRect()
	fmt.Fprintf(&c.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="black"/>`+"\n",
		x0, y0, x1-x0, y1-y0)
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		(x0+x1)/2, float64(c.h)-8, svgEscape(xlabel))
	fmt.Fprintf(&c.sb, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		(y0+y1)/2, (y0+y1)/2, svgEscape(ylabel))
	// Min/max tick labels.
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%s</text>`+"\n",
		x0, y1+14, svgNum(xmin))
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		x1, y1+14, svgNum(xmax))
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		x0-4, y1, svgNum(ymin))
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		x0-4, y0+10, svgNum(ymax))
}

func svgNum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000 || math.Abs(v) < 0.01:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func (c *svgCanvas) finish(w io.Writer) error {
	c.sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, c.sb.String())
	return err
}

// SVGScatter renders a log-log scatter with a reference line — the
// vector Fig 4.
func SVGScatter(w io.Writer, title, xlabel, ylabel string, xs, ys []float64, refSlope float64, markIdx int) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("report: svg scatter needs matching non-empty series")
	}
	c := newSVG(title)
	tx := func(v float64) float64 { return math.Log10(math.Max(v, 1e-2)) }
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for i := range xs {
		xmin, xmax = math.Min(xmin, tx(xs[i])), math.Max(xmax, tx(xs[i]))
		ymin, ymax = math.Min(ymin, tx(ys[i])), math.Max(ymax, tx(ys[i]))
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	x0, y0, x1, y1 := c.plotRect()
	px := func(v float64) float64 { return x0 + (tx(v)-xmin)/(xmax-xmin)*(x1-x0) }
	py := func(v float64) float64 { return y1 - (tx(v)-ymin)/(ymax-ymin)*(y1-y0) }
	c.axes(xlabel+" (log)", ylabel+" (log)", math.Pow(10, xmin), math.Pow(10, xmax),
		math.Pow(10, ymin), math.Pow(10, ymax))
	if refSlope > 0 {
		// y = refSlope * x is a straight line in log-log space.
		lx0, lx1 := math.Pow(10, xmin), math.Pow(10, xmax)
		fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="red" stroke-dasharray="4 3"/>`+"\n",
			px(lx0), py(refSlope*lx0), px(lx1), py(refSlope*lx1))
	}
	for i := range xs {
		fill := "steelblue"
		r := 3.0
		if i == markIdx {
			fill, r = "red", 6
		}
		fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.7"/>`+"\n",
			px(xs[i]), py(ys[i]), r, fill)
	}
	return c.finish(w)
}

// SVGTimeSeries renders one or more named series against time — the
// vector Figs 8, 9, 11.
func SVGTimeSeries(w io.Writer, title, ylabel string, series map[string][]core.TimePoint) error {
	if len(series) == 0 {
		return fmt.Errorf("report: svg timeseries needs at least one series")
	}
	names := make([]string, 0, len(series))
	for n := range series {
		if len(series[n]) == 0 {
			return fmt.Errorf("report: empty series %q", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	c := newSVG(title)
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, n := range names {
		for _, p := range series[n] {
			xmin = math.Min(xmin, float64(p.Time))
			xmax = math.Max(xmax, float64(p.Time))
			ymax = math.Max(ymax, p.Value)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == 0 {
		ymax = 1
	}
	x0, y0, x1, y1 := c.plotRect()
	px := func(t float64) float64 { return x0 + (t-xmin)/(xmax-xmin)*(x1-x0) }
	py := func(v float64) float64 { return y1 - v/ymax*(y1-y0) }
	c.axes("day", ylabel, 0, (xmax-xmin)/86400, 0, ymax)
	colors := []string{"steelblue", "darkred", "seagreen", "darkorange"}
	for ni, n := range names {
		var path strings.Builder
		for i, p := range series[n] {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(float64(p.Time)), py(p.Value))
		}
		fmt.Fprintf(&c.sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.2"/>`+"\n",
			strings.TrimSpace(path.String()), colors[ni%len(colors)])
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="%s">%s</text>`+"\n",
			x1-100, y0+14+float64(ni)*13, colors[ni%len(colors)], svgEscape(n))
	}
	return c.finish(w)
}

// SVGDensity renders KDE curves — the vector Figs 10 and 12.
func SVGDensity(w io.Writer, title, xlabel string, curves map[string][]stats.CurvePoint) error {
	if len(curves) == 0 {
		return fmt.Errorf("report: svg density needs curves")
	}
	names := make([]string, 0, len(curves))
	for n := range curves {
		if len(curves[n]) == 0 {
			return fmt.Errorf("report: empty curve %q", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	c := newSVG(title)
	xmin, xmax, dmax := math.Inf(1), math.Inf(-1), 0.0
	for _, n := range names {
		for _, p := range curves[n] {
			xmin, xmax = math.Min(xmin, p.X), math.Max(xmax, p.X)
			dmax = math.Max(dmax, p.Density)
		}
	}
	if xmax == xmin || dmax == 0 {
		return fmt.Errorf("report: degenerate density curves")
	}
	x0, y0, x1, y1 := c.plotRect()
	px := func(v float64) float64 { return x0 + (v-xmin)/(xmax-xmin)*(x1-x0) }
	py := func(v float64) float64 { return y1 - v/dmax*(y1-y0) }
	c.axes(xlabel, "density", xmin, xmax, 0, dmax)
	colors := []string{"black", "red", "steelblue"}
	for ni, n := range names {
		var path strings.Builder
		for i, p := range curves[n] {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(p.X), py(p.Density))
		}
		fmt.Fprintf(&c.sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.TrimSpace(path.String()), colors[ni%len(colors)])
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="%s">%s</text>`+"\n",
			x1-120, y0+14+float64(ni)*13, colors[ni%len(colors)], svgEscape(n))
	}
	return c.finish(w)
}

// SVGRadar renders a normalized profile as a true radar polygon — the
// vector Figs 2, 3 and 5. The unity octagon (fleet mean) is drawn as a
// dashed reference.
func SVGRadar(w io.Writer, p core.Profile) error {
	metrics := sortedMetrics(p.Normalized)
	if len(metrics) < 3 {
		return fmt.Errorf("report: radar needs >= 3 metrics")
	}
	title := fmt.Sprintf("%s on %s (%d jobs, %.0f node-hours)", p.Key, p.Cluster, p.N, p.NodeHours)
	c := newSVG(title)
	cx, cy := float64(c.w)/2, float64(c.h)/2+10
	maxR := math.Min(float64(c.w), float64(c.h))/2 - 70
	// Radial scale: the max axis value or 2.0, whichever is larger.
	scaleMax := math.Max(2, p.MaxAxis()*1.1)
	angle := func(i int) float64 {
		return 2*math.Pi*float64(i)/float64(len(metrics)) - math.Pi/2
	}
	pt := func(i int, v float64) (float64, float64) {
		r := v / scaleMax * maxR
		return cx + r*math.Cos(angle(i)), cy + r*math.Sin(angle(i))
	}
	// Spokes and labels.
	for i, m := range metrics {
		sx, sy := pt(i, scaleMax)
		fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n", cx, cy, sx, sy)
		lx, ly := pt(i, scaleMax*1.12)
		anchor := "middle"
		if lx > cx+5 {
			anchor = "start"
		} else if lx < cx-5 {
			anchor = "end"
		}
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="%s">%s</text>`+"\n",
			lx, ly, anchor, svgEscape(string(m)))
	}
	polygon := func(val func(i int) float64, style string) {
		var pts strings.Builder
		for i := range metrics {
			x, y := pt(i, val(i))
			fmt.Fprintf(&pts, "%.1f,%.1f ", x, y)
		}
		fmt.Fprintf(&c.sb, `<polygon points="%s" %s/>`+"\n", strings.TrimSpace(pts.String()), style)
	}
	// Unity reference (the "perfect octagon" of the average user).
	polygon(func(int) float64 { return 1 },
		`fill="none" stroke="gray" stroke-dasharray="4 3"`)
	// The profile itself.
	polygon(func(i int) float64 {
		v := p.Normalized[metrics[i]]
		if math.IsNaN(v) || v < 0 {
			return 0
		}
		if v > scaleMax {
			return scaleMax
		}
		return v
	}, `fill="steelblue" fill-opacity="0.35" stroke="steelblue" stroke-width="1.5"`)
	return c.finish(w)
}

// SVGFigures writes the headline vector figures for a realm into the
// writer-producing callback (one writer per file name).
func SVGFigures(r *core.Realm, open func(name string) (io.WriteCloser, error)) error {
	write := func(name string, render func(io.Writer) error) error {
		wc, err := open(name)
		if err != nil {
			return err
		}
		if err := render(wc); err != nil {
			_ = wc.Close() // render error wins; close is cleanup here
			return err
		}
		return wc.Close()
	}
	// Fig 2: heaviest user's radar.
	profiles := r.TopUserProfiles(1)
	if len(profiles) > 0 {
		if err := write("fig2_"+r.Cluster+".svg", func(w io.Writer) error {
			return SVGRadar(w, profiles[0])
		}); err != nil {
			return err
		}
	}
	// Fig 4: efficiency scatter.
	eff := r.EfficiencyReport()
	if len(eff) > 0 {
		xs := make([]float64, len(eff))
		ys := make([]float64, len(eff))
		mark := -1
		worst := r.WorstUsers(1, 50)
		for i, u := range eff {
			xs[i], ys[i] = u.NodeHours, u.WastedNodeHours
			if len(worst) > 0 && u.User == worst[0].User {
				mark = i
			}
		}
		if err := write("fig4_"+r.Cluster+".svg", func(w io.Writer) error {
			return SVGScatter(w, fmt.Sprintf("Fig 4: %s wasted node-hours", r.Cluster),
				"node-hours", "wasted node-hours", xs, ys, 1-r.FleetEfficiency(), mark)
		}); err != nil {
			return err
		}
	}
	// Figs 8/9/11: time series.
	if err := write("fig8_9_11_"+r.Cluster+".svg", func(w io.Writer) error {
		return SVGTimeSeries(w, fmt.Sprintf("Figs 8/9/11: %s system series (daily means)", r.Cluster),
			"value", map[string][]core.TimePoint{
				"active nodes": r.SeriesDaily("active_nodes"),
				"TFLOP/s":      r.SeriesDaily("total_tflops"),
				"mem GB/node":  r.SeriesDaily("mem_used"),
			})
	}); err != nil {
		return err
	}
	// Fig 10: flops KDE.
	_, flopsCurve := r.FlopsDistribution(256)
	if err := write("fig10_"+r.Cluster+".svg", func(w io.Writer) error {
		return SVGDensity(w, fmt.Sprintf("Fig 10: %s FLOPS distribution", r.Cluster),
			"TFLOP/s", map[string][]stats.CurvePoint{"flops": flopsCurve})
	}); err != nil {
		return err
	}
	// Fig 12: memory KDEs.
	used, maxCurve := r.MemoryDistribution(256)
	if used != nil {
		if err := write("fig12_"+r.Cluster+".svg", func(w io.Writer) error {
			return SVGDensity(w, fmt.Sprintf("Fig 12: %s job memory distributions", r.Cluster),
				"GB per node", map[string][]stats.CurvePoint{"mem_used": used, "mem_used_max": maxCurve})
		}); err != nil {
			return err
		}
	}
	return nil
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"supremm/internal/anomaly"
	"supremm/internal/appkernels"
	"supremm/internal/sched"
)

func TestTrendsRender(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := Trends(&buf, r.Cluster, r.TrendReport()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"total_tflops", "slope/day", "p-value"} {
		if !strings.Contains(out, want) {
			t.Errorf("trends missing %q:\n%s", want, out)
		}
	}
}

func TestCharacterizationRender(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := Characterization(&buf, r.Cluster, r.Characterize()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job-size mix", "1 node", "64+", "by parent science", "by application"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterization missing %q", want)
		}
	}
}

func TestWaitReportRender(t *testing.T) {
	ws := sched.WaitStats{Jobs: 10, MeanWaitMin: 12.5, MedianWaitMin: 5, MaxWaitMin: 99,
		SmallMeanMin: 1, MediumMeanMin: 10, LargeMeanMin: 50}
	var buf bytes.Buffer
	if err := WaitReport(&buf, "ranger", ws); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12.5") || !strings.Contains(buf.String(), "16+ nodes") {
		t.Errorf("wait report:\n%s", buf.String())
	}
}

func TestKernelAuditRender(t *testing.T) {
	verdicts := []appkernels.Verdict{
		{Kernel: "ak.compute", Runs: 20, BaselineMean: 100, RecentMean: 99, DeltaPct: -1},
		{Kernel: "ak.io", Runs: 20, BaselineMean: 50, RecentMean: 30, DeltaPct: -40, Degraded: true},
	}
	var buf bytes.Buffer
	if err := KernelAudit(&buf, verdicts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "OK") {
		t.Errorf("kernel audit:\n%s", out)
	}
}

func TestForecastReportRender(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := ForecastReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"forecast skill", "scheduling hints", "io_scratch_write"} {
		if !strings.Contains(out, want) {
			t.Errorf("forecast report missing %q:\n%s", want, out)
		}
	}
}

func TestDiagnosesRender(t *testing.T) {
	diags := []anomaly.Diagnosis{
		{JobID: 1, User: "a", App: "x", Cause: "memory exhaustion"},
		{JobID: 2, User: "b", App: "y", Cause: "statistical outlier"},
		{JobID: 3, User: "c", App: "z", Cause: "statistical outlier"},
	}
	var buf bytes.Buffer
	if err := Diagnoses(&buf, "ranger", diags, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "job 1") || !strings.Contains(out, "1 more") {
		t.Errorf("diagnoses:\n%s", out)
	}
}

func TestHTMLDashboard(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := HTMLDashboard(&buf, r, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<!DOCTYPE html>") || !strings.HasSuffix(strings.TrimSpace(out), "</html>") {
		t.Fatal("not a complete html document")
	}
	for _, want := range []string{"fleet efficiency", "<svg", "cross-system comparison", "node-hours"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Each inline figure closes its wrapper.
	if strings.Count(out, "<figure>") != strings.Count(out, "</figure>") {
		t.Error("unbalanced figure tags")
	}
	if err := HTMLDashboard(&buf); err == nil {
		t.Error("no realms should error")
	}
}

package report

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"supremm/internal/core"
	"supremm/internal/stats"
)

func checkSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete svg document:\n%.120s...", out)
	}
	// Basic well-formedness: every opened quote closes (even count).
	if strings.Count(out, `"`)%2 != 0 {
		t.Error("odd quote count")
	}
}

func TestSVGScatter(t *testing.T) {
	var buf bytes.Buffer
	err := SVGScatter(&buf, "t", "x", "y",
		[]float64{1, 10, 100}, []float64{0.5, 5, 60}, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkSVG(t, out)
	if strings.Count(out, "<circle") != 3 {
		t.Errorf("circles = %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, `stroke="red"`) {
		t.Error("missing reference line and mark")
	}
	if err := SVGScatter(&buf, "t", "x", "y", []float64{1}, nil, 0, -1); err == nil {
		t.Error("mismatched series should error")
	}
}

func TestSVGTimeSeries(t *testing.T) {
	var buf bytes.Buffer
	series := map[string][]core.TimePoint{
		"a": {{Time: 0, Value: 1}, {Time: 86400, Value: 3}},
		"b": {{Time: 0, Value: 2}, {Time: 86400, Value: 1}},
	}
	if err := SVGTimeSeries(&buf, "t", "v", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkSVG(t, out)
	if strings.Count(out, "<path") != 2 {
		t.Errorf("paths = %d", strings.Count(out, "<path"))
	}
	if err := SVGTimeSeries(&buf, "t", "v", nil); err == nil {
		t.Error("empty series map should error")
	}
	if err := SVGTimeSeries(&buf, "t", "v", map[string][]core.TimePoint{"x": {}}); err == nil {
		t.Error("empty series should error")
	}
}

func TestSVGDensity(t *testing.T) {
	kde := stats.NewKDE([]float64{1, 2, 2, 3})
	var buf bytes.Buffer
	err := SVGDensity(&buf, "t", "x", map[string][]stats.CurvePoint{
		"black": kde.SupportCurve(64), "red": kde.SupportCurve(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkSVG(t, buf.String())
	if err := SVGDensity(&buf, "t", "x", nil); err == nil {
		t.Error("no curves should error")
	}
	flat := []stats.CurvePoint{{X: 1, Density: 0}, {X: 1, Density: 0}}
	if err := SVGDensity(&buf, "t", "x", map[string][]stats.CurvePoint{"flat": flat}); err == nil {
		t.Error("degenerate curve should error")
	}
}

func TestSVGRadar(t *testing.T) {
	r := testRealm(t)
	p := r.TopUserProfiles(1)[0]
	var buf bytes.Buffer
	if err := SVGRadar(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	checkSVG(t, out)
	// Two polygons: the unity reference and the profile.
	if strings.Count(out, "<polygon") != 2 {
		t.Errorf("polygons = %d", strings.Count(out, "<polygon"))
	}
	// All eight metric labels present.
	if strings.Count(out, "cpu_") < 2 {
		t.Error("metric labels missing")
	}
	if err := SVGRadar(&buf, core.Profile{}); err == nil {
		t.Error("radar without metrics should error")
	}
}

type memFile struct{ bytes.Buffer }

func (m *memFile) Close() error { return nil }

func TestSVGFiguresProducesAllFiles(t *testing.T) {
	r := testRealm(t)
	files := map[string]*memFile{}
	open := func(name string) (io.WriteCloser, error) {
		f := &memFile{}
		files[name] = f
		return f, nil
	}
	if err := SVGFigures(r, open); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2_ranger.svg", "fig4_ranger.svg", "fig8_9_11_ranger.svg", "fig10_ranger.svg", "fig12_ranger.svg"} {
		f, ok := files[want]
		if !ok {
			t.Errorf("missing %s (have %v)", want, len(files))
			continue
		}
		checkSVG(t, f.String())
	}
}

package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestSuiteRendersEveryStakeholder(t *testing.T) {
	r := testRealm(t)
	if len(Stakeholders()) != 6 {
		t.Fatalf("stakeholder classes = %d, want the paper's 6", len(Stakeholders()))
	}
	for _, who := range Stakeholders() {
		var buf bytes.Buffer
		if err := Suite(&buf, who, r); err != nil {
			t.Errorf("%s: %v", who, err)
			continue
		}
		out := buf.String()
		if len(out) < 200 {
			t.Errorf("%s: suspiciously small suite (%d bytes)", who, len(out))
		}
		if !strings.Contains(out, strings.ToUpper(string(who))) {
			t.Errorf("%s: missing suite banner", who)
		}
	}
}

func TestSuiteCrossSystemSections(t *testing.T) {
	// With two realms the user suite gains system advice and the
	// funding suite gains the comparison table.
	r := testRealm(t)
	var buf bytes.Buffer
	if err := Suite(&buf, StakeholderUser, r, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "which system suits") {
		t.Error("user suite missing cross-system advice")
	}
	buf.Reset()
	if err := Suite(&buf, StakeholderFunding, r, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cross-system comparison") {
		t.Error("funding suite missing comparison")
	}
}

func TestSuiteErrors(t *testing.T) {
	r := testRealm(t)
	var buf bytes.Buffer
	if err := Suite(&buf, Stakeholder("alien"), r); err == nil {
		t.Error("unknown stakeholder should error")
	}
	if err := Suite(&buf, StakeholderUser); err == nil {
		t.Error("no realms should error")
	}
}

package eventlog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventStringAndParseRoundTrip(t *testing.T) {
	e := Event{
		Time: 1307000600, Host: "c101-304.ranger", JobID: 12345,
		Severity: Error, Component: "lustre",
		Message: "ost_write operation failed with -122",
	}
	parsed, err := ParseEvent(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != e {
		t.Errorf("round trip:\n in  %+v\n out %+v", e, parsed)
	}
	// Job 0 renders as "-".
	e.JobID = 0
	if !strings.Contains(e.String(), " - ") {
		t.Errorf("no-job event should use '-': %q", e.String())
	}
	parsed, err = ParseEvent(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.JobID != 0 {
		t.Errorf("job id = %d, want 0", parsed.JobID)
	}
}

func TestParseEventErrors(t *testing.T) {
	bad := []string{
		"",
		"1 2 3",
		"X host - INFO comp msg",
		"100 host BAD INFO comp msg",
		"100 host - WEIRD comp msg",
	}
	for _, line := range bad {
		if _, err := ParseEvent(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestSeverityStrings(t *testing.T) {
	for s, want := range map[Severity]string{Info: "INFO", Warning: "WARN", Error: "ERROR", Critical: "CRIT"} {
		if s.String() != want {
			t.Errorf("%d -> %q, want %q", s, s.String(), want)
		}
		back, err := ParseSeverity(want)
		if err != nil || back != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", want, back, err)
		}
	}
	if !strings.Contains(Severity(9).String(), "9") {
		t.Error("unknown severity string")
	}
	if _, err := ParseSeverity("NOPE"); err == nil {
		t.Error("unknown severity should error")
	}
}

func lookupFixed(id int64) JobLookup {
	return func(host string, unix int64) int64 { return id }
}

func TestRationalizeBSDSyslog(t *testing.T) {
	r := NewRationalizer(lookupFixed(777))
	ev := r.Rationalize("Jun  5 04:32:10 c101-304 sshd[2211]: error: connection reset", "ignored", 0)
	if ev.Host != "c101-304" {
		t.Errorf("host = %q", ev.Host)
	}
	if ev.Component != "sshd" {
		t.Errorf("component = %q", ev.Component)
	}
	if ev.Severity != Error {
		t.Errorf("severity = %v", ev.Severity)
	}
	if ev.JobID != 777 {
		t.Errorf("job = %d, want lookup result", ev.JobID)
	}
	if ev.Time == 0 {
		t.Error("BSD time not parsed")
	}
	// The rationalized line itself parses.
	if _, err := ParseEvent(ev.String()); err != nil {
		t.Errorf("rationalized event unparseable: %v", err)
	}
}

func TestRationalizeKernelPrintk(t *testing.T) {
	r := NewRationalizer(lookupFixed(5))
	ev := r.Rationalize("<1>[ 8452.123] BUG: soft lockup - CPU#4 stuck for 67s!", "c005-002", 1307000000)
	if ev.Component != "kernel" || ev.Severity != Critical {
		t.Errorf("component/severity = %v/%v", ev.Component, ev.Severity)
	}
	if ev.Time != 1307000000+8452 {
		t.Errorf("time = %d", ev.Time)
	}
	if ev.Host != "c005-002" {
		t.Errorf("host = %q", ev.Host)
	}
	// Printk level 4 is a warning.
	ev = r.Rationalize("<4>[ 1.0] something odd", "h", 100)
	if ev.Severity != Warning {
		t.Errorf("printk <4> severity = %v", ev.Severity)
	}
	ev = r.Rationalize("<6>[ 1.0] informational", "h", 100)
	if ev.Severity != Info {
		t.Errorf("printk <6> severity = %v", ev.Severity)
	}
}

func TestRationalizeLustre(t *testing.T) {
	r := NewRationalizer(nil)
	ev := r.Rationalize("LustreError: 11234:0:(client.c:1060:ptlrpc_import_delay_req()) IMP_INVALID", "c009-011", 500)
	if ev.Component != "lustre" || ev.Severity != Error {
		t.Errorf("lustre error: %+v", ev)
	}
	ev = r.Rationalize("Lustre: 4321:0:(import.c:517:import_select_connection()) reconnecting", "c009-011", 500)
	if ev.Component != "lustre" || ev.Severity != Warning {
		t.Errorf("lustre info: %+v", ev)
	}
	if ev.JobID != 0 {
		t.Errorf("nil lookup should give job 0, got %d", ev.JobID)
	}
}

func TestRationalizeOOM(t *testing.T) {
	r := NewRationalizer(lookupFixed(31))
	ev := r.Rationalize("Out of memory: Kill process 9876 (vasp) score 905 or sacrifice child", "c100-001", 42)
	if ev.Component != "oom" || ev.Severity != Critical {
		t.Errorf("oom: %+v", ev)
	}
	if !strings.Contains(ev.Message, "9876") || !strings.Contains(ev.Message, "vasp") {
		t.Errorf("oom message lost details: %q", ev.Message)
	}
}

func TestRationalizeNestedPayloadInBSDLine(t *testing.T) {
	r := NewRationalizer(nil)
	// A BSD syslog line whose payload is an OOM event should be
	// reclassified to the oom component.
	ev := r.Rationalize("Jun 12 10:00:00 c001-001 kernel: Out of memory: Kill process 1 (x)", "h", 0)
	if ev.Component != "oom" || ev.Severity != Critical {
		t.Errorf("nested oom: %+v", ev)
	}
	ev = r.Rationalize("Jun 12 10:00:00 c001-001 kernel: LustreError: timeout on ost", "h", 0)
	if ev.Component != "lustre" {
		t.Errorf("nested lustre: %+v", ev)
	}
}

func TestRationalizeUnknownFormatFallsBack(t *testing.T) {
	r := NewRationalizer(lookupFixed(9))
	ev := r.Rationalize("completely novel format 123", "c001-001", 999)
	if ev.Component != "syslog" || ev.Time != 999 || ev.JobID != 9 {
		t.Errorf("fallback: %+v", ev)
	}
	if ev.Severity != Info {
		t.Errorf("benign unknown line severity = %v", ev.Severity)
	}
	ev = r.Rationalize("disk failure imminent", "c001-001", 999)
	if ev.Severity != Error {
		t.Errorf("failure keyword severity = %v", ev.Severity)
	}
}

func TestWriteReadEvents(t *testing.T) {
	events := []Event{
		{Time: 1, Host: "a", JobID: 2, Severity: Info, Component: "x", Message: "m one"},
		{Time: 2, Host: "b", JobID: 0, Severity: Critical, Component: "oom", Message: "killed"},
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := ReadEvents(strings.NewReader("junk\n")); err == nil {
		t.Error("corrupt stream should error")
	}
	// Blank lines tolerated.
	got, err = ReadEvents(strings.NewReader("\n" + events[0].String() + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank tolerance: %v %v", got, err)
	}
}

func TestRationalizeNeverPanicsProperty(t *testing.T) {
	// The rationalizer faces arbitrary log garbage in production; it
	// must classify, never crash.
	r := NewRationalizer(nil)
	f := func(raw string, boot int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ev := r.Rationalize(raw, "host", boot)
		// And whatever it produced must render and re-parse.
		_, err := ParseEvent(ev.String())
		return err == nil || strings.ContainsAny(ev.Message, "\n\r") ||
			strings.TrimSpace(ev.Message) == "" || strings.TrimSpace(ev.Host) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseEventNeverPanicsProperty(t *testing.T) {
	f := func(line string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseEvent(line)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-10) || !almostEqual(fit.Intercept, 3, 1e-10) {
		t.Errorf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-10) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 23, 1e-10) {
		t.Errorf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 1.5 - 0.4*xs[i] + rng.NormFloat64()*0.5
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+0.4) > 0.02 {
		t.Errorf("slope = %v, want ~-0.4", fit.Slope)
	}
	if math.Abs(fit.Intercept-1.5) > 0.15 {
		t.Errorf("intercept = %v, want ~1.5", fit.Intercept)
	}
	if fit.SlopeP > 1e-6 {
		t.Errorf("slope p-value = %v, should be highly significant", fit.SlopeP)
	}
	if fit.R2 < 0.8 {
		t.Errorf("R2 = %v, want > 0.8", fit.R2)
	}
}

func TestFitLinearInsignificantSlope(t *testing.T) {
	// Pure noise: the slope p-value should usually be large. Use a fixed
	// seed known to produce an insignificant fit.
	rng := rand.New(rand.NewSource(12))
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = rng.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.SlopeP < 0.01 {
		t.Errorf("noise slope p-value = %v, expected insignificant", fit.SlopeP)
	}
	if fit.R2 > 0.2 {
		t.Errorf("noise R2 = %v, expected near 0", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err != ErrLength {
		t.Errorf("length mismatch: err = %v", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1, 2}); err != ErrEmpty {
		t.Errorf("too few points: err = %v", err)
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrEmpty {
		t.Errorf("constant x: err = %v", err)
	}
}

func TestFitLogLinear(t *testing.T) {
	// y = -0.2 + 0.36*ln(x), the shape of the paper's Fig 6 Ranger fit.
	xs := []float64{10, 30, 100, 500, 1000}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = -0.2 + 0.36*math.Log(x)
	}
	fit, err := FitLogLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.36, 1e-9) || !almostEqual(fit.Intercept, -0.2, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if _, err := FitLogLinear([]float64{0, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("non-positive x should error")
	}
}

func TestTTestPValueAgainstKnownValues(t *testing.T) {
	// Reference values from R: 2*pt(-t, df).
	cases := []struct {
		t    float64
		dof  int
		want float64
	}{
		{2.0, 10, 0.07338803},
		{1.0, 5, 0.3632175},
		{3.5, 30, 0.001475},
		{0.0, 20, 1.0},
	}
	for _, c := range cases {
		got := tTestP(c.t, c.dof)
		if math.Abs(got-c.want) > 2e-5 {
			t.Errorf("tTestP(%v, %d) = %v, want %v", c.t, c.dof, got, c.want)
		}
	}
}

func TestRegIncBetaProperties(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.8} {
		a, b := 2.5, 1.5
		lhs := regIncBeta(a, b, x)
		rhs := 1 - regIncBeta(b, a, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("symmetry at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
	// Monotonic in x.
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.05 {
		v := regIncBeta(3, 2, x)
		if v < prev-1e-12 {
			t.Errorf("not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

// Package stats provides the statistical machinery used by the SUPReMM
// analytics layer: weighted and unweighted moments, Pearson correlation,
// ordinary least squares with significance tests, Gaussian kernel density
// estimation with Scott's-rule bandwidth, histograms, quantiles and
// autocorrelation.
//
// All routines are deterministic, allocation-conscious and operate on
// float64 slices. NaN handling policy: inputs containing NaN produce NaN
// outputs rather than panicking, mirroring the behaviour of R, which the
// paper used for its density plots.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that require at least one observation.
var ErrEmpty = errors.New("stats: empty input")

// ErrLength is returned when paired slices differ in length.
var ErrLength = errors.New("stats: mismatched input lengths")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WeightedMean returns sum(w_i*x_i)/sum(w_i). Weights must be non-negative;
// a zero total weight yields NaN.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) || len(xs) == 0 {
		return math.NaN()
	}
	var sw, swx float64
	for i, x := range xs {
		sw += ws[i]
		swx += ws[i] * x
	}
	if sw == 0 {
		return math.NaN()
	}
	return swx / sw
}

// Variance returns the unbiased (n-1 denominator) sample variance.
// Inputs with fewer than two observations yield NaN.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (n denominator) variance.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// PopStdDev returns the population standard deviation.
func PopStdDev(xs []float64) float64 { return math.Sqrt(PopVariance(xs)) }

// WeightedVariance returns the weighted population variance
// sum(w_i*(x_i-mu)^2)/sum(w_i) about the weighted mean.
func WeightedVariance(xs, ws []float64) float64 {
	if len(xs) != len(ws) || len(xs) == 0 {
		return math.NaN()
	}
	mu := WeightedMean(xs, ws)
	var sw, ss float64
	for i, x := range xs {
		d := x - mu
		sw += ws[i]
		ss += ws[i] * d * d
	}
	if sw == 0 {
		return math.NaN()
	}
	return ss / sw
}

// WeightedStdDev returns the weighted population standard deviation.
func WeightedStdDev(xs, ws []float64) float64 { return math.Sqrt(WeightedVariance(xs, ws)) }

// CoefficientOfVariation returns stddev/mean, the paper's dispersion
// measure used to order the predictability of metrics (§4.3.4).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (R type-7, the R default).
// The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted slice,
// avoiding the copy and sort.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := q * float64(n-1)
	i := int(math.Floor(h))
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(i)
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples xs, ys. Returns NaN if either sample is constant or
// the lengths mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Autocorrelation returns the lag-k autocorrelation of the series xs,
// computed about the global mean with the biased (n denominator)
// normalization that guarantees |rho| <= 1 (the standard time-series
// estimator). Lag 0 returns 1. Lags >= len(xs) return NaN.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return math.NaN()
	}
	if lag == 0 {
		return 1
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// OffsetDiffStdDev returns the standard deviation of the lagged
// differences x(t+lag) - x(t). This is the raw ingredient of the paper's
// persistence statistic (§4.3.4, Table 1).
func OffsetDiffStdDev(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return math.NaN()
	}
	diffs := make([]float64, 0, n-lag)
	for i := 0; i+lag < n; i++ {
		diffs = append(diffs, xs[i+lag]-xs[i])
	}
	return PopStdDev(diffs)
}

// PersistenceRatio returns the paper's persistence statistic for a series
// at a given lag: the offset-difference standard deviation normalized so
// that a fully decorrelated series yields 1.0 and a perfectly persistent
// series yields 0.0. As documented in DESIGN.md §2, the paper's Table 1
// converges to 1.0 at large offsets, which corresponds to
// stddev(diff)/(sqrt(2)*sigma) = sqrt(1 - rho(lag)) rather than the
// literal stddev ratio (which converges to sqrt(2)).
func PersistenceRatio(xs []float64, lag int) float64 {
	sigma := PopStdDev(xs)
	if sigma == 0 || math.IsNaN(sigma) {
		return math.NaN()
	}
	return OffsetDiffStdDev(xs, lag) / (math.Sqrt2 * sigma)
}

// Standardize returns (xs - mean)/stddev as a new slice.
func Standardize(xs []float64) []float64 {
	m, s := Mean(xs), StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = (x - m) / s
	}
	return out
}

// Describe bundles the summary statistics reported throughout §4.
type Describe struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q25    float64
	Median float64
	Q75    float64
	Max    float64
}

// Summarize computes a Describe for xs.
func Summarize(xs []float64) Describe {
	d := Describe{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		d.Mean, d.StdDev, d.Min, d.Q25, d.Median, d.Q75, d.Max = nan, nan, nan, nan, nan, nan, nan
		return d
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	d.Mean = Mean(xs)
	d.StdDev = StdDev(xs)
	d.Min = sorted[0]
	d.Max = sorted[len(sorted)-1]
	d.Q25 = quantileSorted(sorted, 0.25)
	d.Median = quantileSorted(sorted, 0.5)
	d.Q75 = quantileSorted(sorted, 0.75)
	return d
}

package stats

import (
	"math"
	"sort"
)

// KDE is a univariate Gaussian kernel density estimate. The paper's
// distribution figures (10 and 12) use R's kernel density rather than
// histograms "to avoid making binning choices"; R's default bandwidth
// family traces back to Scott (1992), which the paper cites, so Scott's
// rule is the default here.
type KDE struct {
	data      []float64 // sorted copy of the sample
	Bandwidth float64
}

// NewKDE builds a KDE over xs with Scott's-rule bandwidth. An explicit
// bandwidth can be set with NewKDEBandwidth. The sample is copied.
func NewKDE(xs []float64) *KDE {
	return NewKDEBandwidth(xs, ScottBandwidth(xs))
}

// NewKDEBandwidth builds a KDE with the given bandwidth (must be > 0 for
// meaningful output; non-positive bandwidths produce NaN densities).
func NewKDEBandwidth(xs []float64, bw float64) *KDE {
	data := make([]float64, len(xs))
	copy(data, xs)
	sort.Float64s(data)
	return &KDE{data: data, Bandwidth: bw}
}

// ScottBandwidth returns Scott's rule-of-thumb bandwidth
// h = sigma * n^(-1/5) * 1.06, using the robust sigma
// min(stddev, IQR/1.349) as in R's bw.nrd.
func ScottBandwidth(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	sd := StdDev(xs)
	iqr := Quantile(xs, 0.75) - Quantile(xs, 0.25)
	sigma := sd
	if iqr > 0 && iqr/1.349 < sigma {
		sigma = iqr / 1.349
	}
	if sigma == 0 {
		// Degenerate (constant) sample: fall back to a token width so
		// the density is a narrow spike rather than NaN everywhere.
		sigma = math.Max(math.Abs(xs[0])*1e-3, 1e-9)
	}
	return 1.06 * sigma * math.Pow(float64(n), -0.2)
}

const invSqrt2Pi = 0.3989422804014327

// Density evaluates the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	n := len(k.data)
	if n == 0 || !(k.Bandwidth > 0) {
		return math.NaN()
	}
	h := k.Bandwidth
	// Kernel support is effectively +/- 8h; restrict the sum to that
	// window via binary search so evaluation over large samples stays
	// O(window) instead of O(n).
	lo := sort.SearchFloat64s(k.data, x-8*h)
	hi := sort.SearchFloat64s(k.data, x+8*h)
	var sum float64
	for _, xi := range k.data[lo:hi] {
		u := (x - xi) / h
		sum += math.Exp(-0.5 * u * u)
	}
	return sum * invSqrt2Pi / (float64(n) * h)
}

// CurvePoint is one evaluation of a density curve.
type CurvePoint struct {
	X, Density float64
}

// Curve evaluates the density on a uniform grid of points from lo to hi
// inclusive. points must be >= 2.
func (k *KDE) Curve(lo, hi float64, points int) []CurvePoint {
	if points < 2 || hi <= lo {
		return nil
	}
	out := make([]CurvePoint, points)
	step := (hi - lo) / float64(points-1)
	for i := range out {
		x := lo + float64(i)*step
		out[i] = CurvePoint{X: x, Density: k.Density(x)}
	}
	return out
}

// SupportCurve evaluates the density over the sample range extended by
// three bandwidths on each side, matching R's default "cut" behaviour.
func (k *KDE) SupportCurve(points int) []CurvePoint {
	if len(k.data) == 0 {
		return nil
	}
	lo := k.data[0] - 3*k.Bandwidth
	hi := k.data[len(k.data)-1] + 3*k.Bandwidth
	return k.Curve(lo, hi, points)
}

// Mode returns the grid point of maximum estimated density over the
// sample support (512-point grid, R's default resolution).
func (k *KDE) Mode() float64 {
	curve := k.SupportCurve(512)
	best := math.NaN()
	bestD := math.Inf(-1)
	for _, p := range curve {
		if p.Density > bestD {
			bestD = p.Density
			best = p.X
		}
	}
	return best
}

// Histogram is a fixed-width binned frequency count, retained alongside
// KDE for the report layer and for validating density shapes in tests.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram bins xs into bins equal-width buckets across [lo, hi).
// Values outside the range are clamped into the end bins so totals are
// preserved.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		return &Histogram{Lo: lo, Hi: hi}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

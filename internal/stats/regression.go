package stats

import "math"

// LinearFit holds the result of a simple ordinary-least-squares regression
// y = Intercept + Slope*x, including the significance statistics the paper
// quotes for its persistence fits (Fig 6): standard errors, two-sided
// p-values for each coefficient and the coefficient of determination.
type LinearFit struct {
	Slope        float64
	Intercept    float64
	SlopeSE      float64
	InterceptSE  float64
	SlopeP       float64 // two-sided p-value, H0: slope = 0
	InterceptP   float64 // two-sided p-value, H0: intercept = 0
	R2           float64
	N            int
	ResidualSE   float64 // sqrt(SSR/(n-2))
	DegreesOfFre int     // n - 2
}

// FitLinear performs OLS of ys on xs. It requires at least three points
// (for a meaningful residual variance); otherwise it returns ErrEmpty or
// ErrLength.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLength
	}
	n := len(xs)
	if n < 3 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrEmpty
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// Residual sum of squares and R^2.
	var ssr float64
	for i := range xs {
		r := ys[i] - (intercept + slope*xs[i])
		ssr += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssr/syy
	}
	dof := n - 2
	resSE := math.Sqrt(ssr / float64(dof))
	slopeSE := resSE / math.Sqrt(sxx)
	var sumX2 float64
	for _, x := range xs {
		sumX2 += x * x
	}
	interceptSE := resSE * math.Sqrt(sumX2/(float64(n)*sxx))

	fit := LinearFit{
		Slope:        slope,
		Intercept:    intercept,
		SlopeSE:      slopeSE,
		InterceptSE:  interceptSE,
		R2:           r2,
		N:            n,
		ResidualSE:   resSE,
		DegreesOfFre: dof,
	}
	if slopeSE > 0 {
		fit.SlopeP = tTestP(slope/slopeSE, dof)
	}
	if interceptSE > 0 {
		fit.InterceptP = tTestP(intercept/interceptSE, dof)
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// FitLogLinear performs OLS of ys against ln(xs): y = a + b*ln(x), the
// logarithmic persistence model of §4.3.4. Non-positive xs are rejected.
func FitLogLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, ErrLength
	}
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LinearFit{}, ErrEmpty
		}
		lx[i] = math.Log(x)
	}
	return FitLinear(lx, ys)
}

// tTestP returns the two-sided p-value of a t statistic with dof degrees
// of freedom, computed from the regularized incomplete beta function.
func tTestP(t float64, dof int) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	v := float64(dof)
	x := v / (v + t*t)
	// P(|T| > |t|) = I_x(v/2, 1/2).
	return regIncBeta(v/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// via the continued-fraction expansion (Numerical Recipes betacf form),
// accurate to ~1e-12 for the parameter ranges used by t-tests.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{0, 0, 0, 0}, 0},
		{nil, math.NaN()},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 3}, []float64{1, 1}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("equal weights: got %v", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{3, 1}); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("unequal weights: got %v", got)
	}
	if got := WeightedMean([]float64{1, 3}, []float64{0, 0}); !math.IsNaN(got) {
		t.Errorf("zero weights should be NaN, got %v", got)
	}
	if got := WeightedMean([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("length mismatch should be NaN, got %v", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known example: population variance 4, sample variance 32/7.
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := PopStdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("PopStdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); !math.IsNaN(got) {
		t.Errorf("Variance of single value should be NaN, got %v", got)
	}
}

func TestWeightedVarianceReducesToPopVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	ws := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if got := WeightedVariance(xs, ws); !almostEqual(got, PopVariance(xs), 1e-12) {
		t.Errorf("uniform weights: got %v, want %v", got, PopVariance(xs))
	}
}

func TestWeightedVarianceRepeatEquivalence(t *testing.T) {
	// Integer weights must equal repeating each observation w times.
	xs := []float64{1, 5, 9}
	ws := []float64{2, 3, 1}
	expanded := []float64{1, 1, 5, 5, 5, 9}
	if got := WeightedVariance(xs, ws); !almostEqual(got, PopVariance(expanded), 1e-12) {
		t.Errorf("got %v, want %v", got, PopVariance(expanded))
	}
	if got := WeightedMean(xs, ws); !almostEqual(got, Mean(expanded), 1e-12) {
		t.Errorf("mean: got %v, want %v", got, Mean(expanded))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("median = %v, want 2.5", got)
	}
	// R type-7: quantile(c(1,2,3,4), 0.25) == 1.75
	if got := Quantile(xs, 0.25); !almostEqual(got, 1.75, 1e-12) {
		t.Errorf("q25 = %v, want 1.75", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile should be NaN")
	}
	if got := Quantile(xs, 1.5); !math.IsNaN(got) {
		t.Errorf("out-of-range q should be NaN")
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sorted := append([]float64(nil), xs...)
	sortFloats(sorted)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		if a, b := Quantile(xs, q), QuantileSorted(sorted, q); !almostEqual(a, b, 1e-12) {
			t.Errorf("q=%v: %v vs %v", q, a, b)
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive: got %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative: got %v", got)
	}
	konst := []float64{3, 3, 3, 3, 3}
	if got := Pearson(xs, konst); !math.IsNaN(got) {
		t.Errorf("constant series should be NaN, got %v", got)
	}
}

func TestPearsonSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		a, b := Pearson(xs, ys), Pearson(ys, xs)
		return almostEqual(a, b, 1e-12) && a >= -1-1e-12 && a <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly persistent AR(1) series should have high lag-1 rho.
	rng := rand.New(rand.NewSource(42))
	n := 20000
	xs := make([]float64, n)
	phi := 0.95
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	rho1 := Autocorrelation(xs, 1)
	if rho1 < 0.9 || rho1 > 1.0 {
		t.Errorf("AR(1) phi=0.95 lag-1 rho = %v, want ~0.95", rho1)
	}
	rho10 := Autocorrelation(xs, 10)
	want := math.Pow(phi, 10)
	if math.Abs(rho10-want) > 0.07 {
		t.Errorf("lag-10 rho = %v, want ~%v", rho10, want)
	}
	if got := Autocorrelation(xs, 0); got != 1 {
		t.Errorf("lag-0 rho = %v, want 1", got)
	}
	if got := Autocorrelation(xs, n); !math.IsNaN(got) {
		t.Errorf("lag >= n should be NaN")
	}
}

func TestPersistenceRatioBounds(t *testing.T) {
	// White noise: ratio should be ~1 at any lag.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, lag := range []int{1, 10, 100} {
		r := PersistenceRatio(xs, lag)
		if math.Abs(r-1) > 0.03 {
			t.Errorf("white noise lag %d: ratio %v, want ~1", lag, r)
		}
	}
	// Perfectly persistent constant-slope series over short lags ~ 0.
	lin := make([]float64, 1000)
	for i := range lin {
		lin[i] = math.Sin(float64(i) / 500)
	}
	if r := PersistenceRatio(lin, 1); r > 0.05 {
		t.Errorf("smooth series lag-1 ratio %v, want near 0", r)
	}
}

func TestPersistenceRatioMatchesAutocorrelation(t *testing.T) {
	// For long series the identity ratio = sqrt(1 - rho) should hold to
	// within edge-effect error.
	rng := rand.New(rand.NewSource(9))
	n := 100000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.9*xs[i-1] + rng.NormFloat64()
	}
	for _, lag := range []int{1, 5, 20} {
		want := math.Sqrt(1 - Autocorrelation(xs, lag))
		got := PersistenceRatio(xs, lag)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("lag %d: ratio %v vs sqrt(1-rho) %v", lag, got, want)
		}
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CoefficientOfVariation(xs); !almostEqual(got, 0, 1e-12) {
		t.Errorf("constant CV = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{-1, 1}); !math.IsNaN(got) {
		t.Errorf("zero-mean CV should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Mean != 3 || d.Min != 1 || d.Max != 5 || d.Median != 3 {
		t.Errorf("unexpected summary %+v", d)
	}
	e := Summarize(nil)
	if e.N != 0 || !math.IsNaN(e.Mean) {
		t.Errorf("empty summary %+v", e)
	}
}

func TestMinMaxSum(t *testing.T) {
	lo, hi := MinMax([]float64{3, -2, 7, 0})
	if lo != -2 || hi != 7 {
		t.Errorf("MinMax = %v,%v", lo, hi)
	}
	if s := Sum([]float64{1, 2, 3.5}); !almostEqual(s, 6.5, 1e-12) {
		t.Errorf("Sum = %v", s)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("empty MinMax should be NaN")
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("standardized mean = %v", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized sd = %v", StdDev(z))
	}
}

func TestOffsetDiffStdDev(t *testing.T) {
	// For a pure linear ramp the lagged differences are constant, so the
	// diff stddev must be exactly zero.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i) * 2
	}
	if got := OffsetDiffStdDev(xs, 5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("ramp diff sd = %v, want 0", got)
	}
	if got := OffsetDiffStdDev(xs, 0); !math.IsNaN(got) {
		t.Errorf("lag 0 should be NaN")
	}
	if got := OffsetDiffStdDev(xs, 100); !math.IsNaN(got) {
		t.Errorf("lag >= n should be NaN")
	}
}

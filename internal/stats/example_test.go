package stats_test

import (
	"fmt"

	"supremm/internal/stats"
)

func ExampleFitLinear() {
	// Fit y = 3 + 2x.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{5, 7, 9, 11, 13}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		panic(err)
	}
	fmt.Printf("y = %.1f + %.1f*x (R2=%.2f)\n", fit.Intercept, fit.Slope, fit.R2)
	fmt.Printf("prediction at x=10: %.1f\n", fit.Predict(10))
	// Output:
	// y = 3.0 + 2.0*x (R2=1.00)
	// prediction at x=10: 23.0
}

func ExamplePersistenceRatio() {
	// A perfectly persistent series (a slow ramp) has ratio ~0; the
	// paper's Table 1 computes this at offsets of 10..1000 minutes.
	series := make([]float64, 1000)
	for i := range series {
		series[i] = float64(i)
	}
	fmt.Printf("ramp, lag 1: %.2f\n", stats.PersistenceRatio(series, 1))
	// Output:
	// ramp, lag 1: 0.00
}

func ExampleWeightedMean() {
	// The paper weights every job statistic by node-hours (sec 4.1).
	idle := []float64{0.10, 0.50}      // two jobs' idle fractions
	nodeHours := []float64{90.0, 10.0} // big job, small job
	fmt.Printf("weighted idle: %.2f\n", stats.WeightedMean(idle, nodeHours))
	// Output:
	// weighted idle: 0.14
}

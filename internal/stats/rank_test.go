package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRanks(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
	// Ties share the average rank.
	got = Ranks([]float64{5, 1, 5, 2})
	want = []float64{3.5, 1, 3.5, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tied ranks = %v, want %v", got, want)
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Error("empty ranks should be empty")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is exactly 1 for any monotone relationship, linear or not.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x) // wildly non-linear but monotone
	}
	if got := Spearman(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Errorf("monotone spearman = %v, want 1", got)
	}
	for i, x := range xs {
		ys[i] = -x * x * x
	}
	if got := Spearman(xs, ys); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti-monotone spearman = %v, want -1", got)
	}
}

func TestSpearmanRobustToOutliers(t *testing.T) {
	// One wild outlier wrecks Pearson but barely moves Spearman.
	rng := rand.New(rand.NewSource(3))
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i] + 0.2*rng.NormFloat64()
	}
	clean := Spearman(xs, ys)
	xs[0], ys[0] = 1e9, -1e9
	dirtyS := Spearman(xs, ys)
	dirtyP := Pearson(xs, ys)
	if math.Abs(dirtyS-clean) > 0.05 {
		t.Errorf("spearman moved %v -> %v on one outlier", clean, dirtyS)
	}
	// The single (1e9, -1e9) point dominates Pearson and flips its sign
	// from ~+0.98 to ~-1: thoroughly wrecked.
	if dirtyP > 0 {
		t.Errorf("pearson = %v; expected the outlier to wreck it", dirtyP)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if !math.IsNaN(Spearman([]float64{1}, []float64{1})) {
		t.Error("n=1 should be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 2}, []float64{1})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("constant series should be NaN")
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
	}
	k := NewKDE(xs)
	curve := k.Curve(-5, 15, 2001)
	var integral float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].X - curve[i-1].X
		integral += 0.5 * (curve[i].Density + curve[i-1].Density) * dx
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("density integrates to %v, want ~1", integral)
	}
}

func TestKDEModeNearTrueMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 10
	}
	k := NewKDE(xs)
	if m := k.Mode(); math.Abs(m-10) > 0.3 {
		t.Errorf("mode = %v, want ~10", m)
	}
}

func TestKDEBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 4000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = rng.NormFloat64()*0.5 + 0
		} else {
			xs[i] = rng.NormFloat64()*0.5 + 8
		}
	}
	k := NewKDE(xs)
	// Density at the two modes should clearly exceed the valley.
	d0, d8, valley := k.Density(0), k.Density(8), k.Density(4)
	if d0 < 2*valley || d8 < 2*valley {
		t.Errorf("bimodal structure lost: d(0)=%v d(8)=%v d(4)=%v", d0, d8, valley)
	}
}

func TestScottBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	bw := ScottBandwidth(xs)
	// For n=1000 standard normal: h ~= 1.06 * 1 * 1000^-0.2 ~= 0.266.
	if bw < 0.15 || bw > 0.4 {
		t.Errorf("bandwidth = %v, want ~0.27", bw)
	}
	if got := ScottBandwidth([]float64{1}); !math.IsNaN(got) {
		t.Errorf("n=1 bandwidth should be NaN, got %v", got)
	}
	// Constant sample should still produce a positive token bandwidth.
	if got := ScottBandwidth([]float64{2, 2, 2, 2}); !(got > 0) {
		t.Errorf("constant sample bandwidth = %v, want > 0", got)
	}
}

func TestKDEEmptyAndDegenerate(t *testing.T) {
	k := NewKDE(nil)
	if !math.IsNaN(k.Density(0)) {
		t.Errorf("empty KDE density should be NaN")
	}
	if pts := k.SupportCurve(10); pts != nil {
		t.Errorf("empty support curve should be nil")
	}
	if pts := NewKDE([]float64{1, 2, 3}).Curve(5, 5, 10); pts != nil {
		t.Errorf("degenerate range should be nil")
	}
	if pts := NewKDE([]float64{1, 2, 3}).Curve(0, 5, 1); pts != nil {
		t.Errorf("single-point grid should be nil")
	}
}

func TestKDESymmetry(t *testing.T) {
	xs := []float64{-3, -1, 0, 1, 3}
	k := NewKDE(xs)
	for _, x := range []float64{0.5, 1, 2, 4} {
		if a, b := k.Density(x), k.Density(-x); math.Abs(a-b) > 1e-12 {
			t.Errorf("symmetric sample asymmetric density at %v: %v vs %v", x, a, b)
		}
	}
}

func TestKDEWindowedEvaluationMatchesFull(t *testing.T) {
	// The binary-search window optimization must not change results
	// beyond the truncation tolerance of the 8-sigma cutoff.
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	k := NewKDE(xs)
	h := k.Bandwidth
	full := func(x float64) float64 {
		var sum float64
		for _, xi := range xs {
			u := (x - xi) / h
			sum += math.Exp(-0.5 * u * u)
		}
		return sum * invSqrt2Pi / (float64(len(xs)) * h)
	}
	for _, x := range []float64{0, 13.7, 50, 99, 120} {
		if got, want := k.Density(x), full(x); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("windowed density at %v: %v vs %v", x, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 2.5, 2.6, 9.9, -1, 15}
	h := NewHistogram(xs, 0, 10, 10)
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Counts[0] != 2 { // 0.5 and clamped -1
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[2] != 2 { // 2.5, 2.6
		t.Errorf("bin2 = %d, want 2", h.Counts[2])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 15
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != h.N {
		t.Errorf("counts sum %d != N %d", total, h.N)
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.Fraction(0); !almostEqual(got, 2.0/7.0, 1e-12) {
		t.Errorf("Fraction(0) = %v", got)
	}
	empty := NewHistogram(nil, 0, 1, 0)
	if len(empty.Counts) != 0 {
		t.Errorf("zero-bin histogram should have no counts")
	}
}

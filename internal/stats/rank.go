package stats

import (
	"math"
	"sort"
)

// Ranks returns the fractional ranks of xs (average rank for ties),
// 1-based, as used by rank statistics.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation of the paired samples:
// Pearson correlation of the rank vectors. It is robust to the heavy
// tails of HPC resource metrics, which is why the analytics layer uses
// it to cross-check the §4.2 metric-redundancy conclusions drawn from
// Pearson.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

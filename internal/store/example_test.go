package store_test

import (
	"fmt"

	"supremm/internal/store"
)

func ExampleStore_Aggregate() {
	st := store.New()
	st.Add(store.JobRecord{
		JobID: 1, Cluster: "ranger", User: "alice", App: "namd",
		Nodes: 8, Start: 0, End: 3600 * 10, // 80 node-hours
		Status: "COMPLETED", Samples: 60, CPUIdleFrac: 0.05,
	})
	st.Add(store.JobRecord{
		JobID: 2, Cluster: "ranger", User: "bob", App: "serialfarm",
		Nodes: 2, Start: 0, End: 3600 * 10, // 20 node-hours
		Status: "COMPLETED", Samples: 60, CPUIdleFrac: 0.90,
	})
	agg := st.Aggregate(store.MetricCPUIdle, store.Filter{Cluster: "ranger", MinSamples: 1})
	fmt.Printf("jobs: %d\n", agg.N)
	fmt.Printf("node-hour-weighted idle: %.2f\n", agg.Mean)
	fmt.Printf("unweighted idle: %.2f\n", agg.UnweightedMean)
	// Output:
	// jobs: 2
	// node-hour-weighted idle: 0.22
	// unweighted idle: 0.48
}

func ExampleStore_GroupBy() {
	st := store.New()
	for i, user := range []string{"alice", "alice", "bob"} {
		st.Add(store.JobRecord{
			JobID: int64(i + 1), Cluster: "ranger", User: user, App: "namd",
			Nodes: 4, Start: 0, End: 3600, Status: "COMPLETED", Samples: 6,
			FlopsGF: float64(i + 1),
		})
	}
	groups := st.GroupBy(store.ByUser, []store.Metric{store.MetricFlops}, store.Filter{})
	for _, g := range groups {
		fmt.Printf("%s: %d jobs, %.1f GF/s\n", g.Key, g.N, g.Mean[store.MetricFlops])
	}
	// Output:
	// alice: 2 jobs, 1.5 GF/s
	// bob: 1 jobs, 3.0 GF/s
}

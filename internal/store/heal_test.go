package store

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// healFixture writes a multi-day shard directory plus both monolithic
// backings (jobs.supremm, jobs.jsonl) — the full redundant layout
// cmd/ingest produces — and returns the store, the decoded manifest,
// and the pristine bytes of every shard file.
func healFixture(t *testing.T, rows int) (dir string, st *Store, entries []ShardInfo, good map[string][]byte) {
	t.Helper()
	st = multiDayStore(rows)
	dir = t.TempDir()
	if err := WriteShardDir(dir, st); err != nil {
		t.Fatal(err)
	}
	bf, err := os.Create(filepath.Join(dir, "jobs.supremm"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBinary(bf); err != nil {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}
	jf, err := os.Create(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(jf); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}
	mdata, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	entries, err = DecodeManifest(mdata)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("fixture produced only %d shards, want >= 3", len(entries))
	}
	good = make(map[string][]byte, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, ShardFileName(e.ID)))
		if err != nil {
			t.Fatal(err)
		}
		good[ShardFileName(e.ID)] = b
	}
	return dir, st, entries, good
}

// rotShard flips one byte (xor with a non-zero mask) at a seeded
// position inside a shard file.
func rotShard(t *testing.T, dir string, e ShardInfo, good []byte, rng *rand.Rand) {
	t.Helper()
	data := append([]byte(nil), good...)
	data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
	if err := os.WriteFile(filepath.Join(dir, ShardFileName(e.ID)), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyShardDetectsRandomRot is the detection property: a single
// byte flipped anywhere in a shard must fail verification (CRC32
// detects all single-byte errors), and pristine shards must pass.
func TestVerifyShardDetectsRandomRot(t *testing.T) {
	dir, _, entries, good := healFixture(t, 2000)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		victim := entries[rng.Intn(len(entries))]
		rotShard(t, dir, victim, good[ShardFileName(victim.ID)], rng)
		if err := VerifyShard(dir, victim, nil); err == nil {
			t.Fatalf("trial %d: rotted shard %d passed verification", trial, victim.ID)
		}
		for _, e := range entries {
			if e.ID == victim.ID {
				continue
			}
			if err := VerifyShard(dir, e, nil); err != nil {
				t.Fatalf("trial %d: pristine shard %d failed verification: %v", trial, e.ID, err)
			}
		}
		// Heal for the next trial.
		name := ShardFileName(victim.ID)
		if err := os.WriteFile(filepath.Join(dir, name), good[name], 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScrubberFindsRotInOneSweep(t *testing.T) {
	dir, _, entries, good := healFixture(t, 2000)
	rng := rand.New(rand.NewSource(42))
	victim := entries[rng.Intn(len(entries))]
	rotShard(t, dir, victim, good[ShardFileName(victim.ID)], rng)

	sc := NewScrubber(dir, entries, nil)
	findings, sweeps := sc.Tick(-1) // negative budget: whole set in one tick
	if sweeps != 1 || sc.Sweeps() != 1 {
		t.Fatalf("full-sweep tick counted %d sweeps (total %d), want 1", sweeps, sc.Sweeps())
	}
	if sc.Verified() != int64(len(entries)) {
		t.Fatalf("verified %d shards, want %d", sc.Verified(), len(entries))
	}
	if len(findings) != 1 || findings[0].Info.ID != victim.ID {
		t.Fatalf("findings = %+v, want exactly shard %d", findings, victim.ID)
	}
}

// TestScrubberBudget pins the incremental sweep contract: a tick
// always verifies at least one shard, stops once the byte budget is
// spent, resumes from its cursor, and counts a sweep exactly when the
// cursor wraps — so a budget of one byte takes exactly len(entries)
// ticks per sweep.
func TestScrubberBudget(t *testing.T) {
	dir, _, entries, _ := healFixture(t, 2000)
	sc := NewScrubber(dir, entries, nil)
	for tick := 0; tick < len(entries); tick++ {
		findings, sweeps := sc.Tick(1)
		if len(findings) != 0 {
			t.Fatalf("tick %d: unexpected findings %+v", tick, findings)
		}
		wantSweeps := 0
		if tick == len(entries)-1 {
			wantSweeps = 1
		}
		if sweeps != wantSweeps {
			t.Fatalf("tick %d: %d sweeps, want %d", tick, sweeps, wantSweeps)
		}
		if sc.Verified() != int64(tick+1) {
			t.Fatalf("tick %d: verified %d, want %d", tick, sc.Verified(), tick+1)
		}
	}
	if sc.Sweeps() != 1 {
		t.Fatalf("after %d one-byte ticks: %d sweeps, want 1", len(entries), sc.Sweeps())
	}
}

func TestQuarantineLogRoundTrip(t *testing.T) {
	events := []QuarantineEvent{
		{Day: 3, Action: ActionQuarantine, Reason: "store: scrub shard-3.supremm: content hash 1 does not match manifest 2", At: 1700000000, Size: 4096, Hash: 0xdeadbeef},
		{Day: 3, Action: ActionRepair, Reason: "rebuilt from jobs.supremm", At: 1700000060, Size: 4096, Hash: 0xdeadbeef},
		{Day: -1, Action: ActionQuarantine, Reason: "", At: 0, Size: 0, Hash: 0},
	}
	enc := EncodeQuarantineLog(events)
	dec, err := DecodeQuarantineLog(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(dec), len(events))
	}
	for i := range events {
		if dec[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, dec[i], events[i])
		}
	}
	if re := EncodeQuarantineLog(dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	if _, err := DecodeQuarantineLog(EncodeQuarantineLog(nil)); err != nil {
		t.Fatalf("empty log rejected: %v", err)
	}
}

func TestQuarantineLogRejectMatrix(t *testing.T) {
	valid := EncodeQuarantineLog([]QuarantineEvent{
		{Day: 3, Action: ActionQuarantine, Reason: "r", At: 1, Size: 2, Hash: 3},
	})
	line := valid[len("SUPRMMQ1\n") : len(valid)-1] // the JSON line, sans newline
	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        append([]byte("SUPRMMQ2\n"), valid[len("SUPRMMQ1\n"):]...),
		"unterminated":     valid[:len(valid)-1],
		"unknown action":   []byte("SUPRMMQ1\n" + strings.Replace(string(line), "quarantine", "destroy", 1) + "\n"),
		"unknown field":    []byte("SUPRMMQ1\n" + `{"day":3,"action":"quarantine","reason":"r","at":1,"size":2,"hash":3,"x":1}` + "\n"),
		"non-canonical":    []byte("SUPRMMQ1\n" + " " + string(line) + "\n"),
		"reordered keys":   []byte("SUPRMMQ1\n" + `{"action":"quarantine","day":3,"reason":"r","at":1,"size":2,"hash":3}` + "\n"),
		"negative size":    []byte("SUPRMMQ1\n" + `{"day":3,"action":"quarantine","reason":"r","at":1,"size":-2,"hash":3}` + "\n"),
		"day out of range": []byte("SUPRMMQ1\n" + fmt.Sprintf(`{"day":%d,"action":"quarantine","reason":"r","at":1,"size":2,"hash":3}`, int64(1)<<41) + "\n"),
		"trailing data":    []byte("SUPRMMQ1\n" + string(line) + " {}" + "\n"),
		"not json":         []byte("SUPRMMQ1\nhello\n"),
	}
	for name, data := range cases {
		if _, err := DecodeQuarantineLog(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := DecodeQuarantineLog(valid); err != nil {
		t.Fatalf("pristine log rejected: %v", err)
	}
}

func TestQuarantineShardLifecycle(t *testing.T) {
	dir, _, entries, good := healFixture(t, 2500)
	e := entries[1]
	name := ShardFileName(e.ID)
	if err := QuarantineShard(dir, e, "test damage", 1700000000); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
		t.Fatalf("shard file still present after quarantine: %v", err)
	}
	aside, err := os.ReadFile(filepath.Join(dir, QuarantinedShardFile(e.ID)))
	if err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if !bytes.Equal(aside, good[name]) {
		t.Fatal("quarantine altered the shard bytes (evidence destroyed)")
	}
	if !IsQuarantined(dir, e.ID) {
		t.Fatal("IsQuarantined = false after quarantine")
	}
	days, err := QuarantinedDays(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 1 || days[0] != e.ID {
		t.Fatalf("QuarantinedDays = %v, want [%d]", days, e.ID)
	}
	events, err := LoadQuarantineLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("quarantine log holds %d events, want 1", len(events))
	}
	want := QuarantineEvent{Day: e.ID, Action: ActionQuarantine, Reason: "test damage",
		At: 1700000000, Size: e.Size, Hash: e.Hash}
	if events[0] != want {
		t.Fatalf("logged %+v, want %+v", events[0], want)
	}
}

// TestRepairRestoresBytesExactly is the repair property: whatever byte
// rot hit a shard, rebuilding it from either monolithic backing yields
// bytes identical to the originals — proven against the manifest hash,
// then against the pristine bytes themselves.
func TestRepairRestoresBytesExactly(t *testing.T) {
	dir, _, entries, good := healFixture(t, 2500)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		victim := entries[rng.Intn(len(entries))]
		name := ShardFileName(victim.ID)
		rotShard(t, dir, victim, good[name], rng)
		if err := QuarantineShard(dir, victim, "trial rot", int64(trial)); err != nil {
			t.Fatal(err)
		}
		if trial%2 == 1 {
			// Odd trials repair from the jsonl fallback.
			if err := os.Remove(filepath.Join(dir, "jobs.supremm")); err != nil {
				t.Fatal(err)
			}
		}
		backing, src, err := LoadBackingStore(dir, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantSrc := "jobs.supremm"
		if trial%2 == 1 {
			wantSrc = "jobs.jsonl"
		}
		if src != wantSrc {
			t.Fatalf("trial %d: repaired from %q, want %q", trial, src, wantSrc)
		}
		if err := RepairShard(dir, victim, backing); err != nil {
			t.Fatalf("trial %d: repair: %v", trial, err)
		}
		repaired, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(repaired, good[name]) {
			t.Fatalf("trial %d: repaired shard %d differs from pristine bytes", trial, victim.ID)
		}
		if crc32.ChecksumIEEE(repaired) != victim.Hash {
			t.Fatalf("trial %d: repaired hash does not match manifest", trial)
		}
		if IsQuarantined(dir, victim.ID) {
			t.Fatalf("trial %d: quarantined copy survived repair", trial)
		}
		if trial%2 == 1 {
			// Put the binary backing back for the next trial.
			if err := os.WriteFile(filepath.Join(dir, "jobs.supremm"), EncodeColumns(backing.Columns()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRepairRefusesWrongBacking(t *testing.T) {
	dir, _, entries, good := healFixture(t, 2500)
	victim := entries[0]
	name := ShardFileName(victim.ID)
	if err := QuarantineShard(dir, victim, "rot", 0); err != nil {
		t.Fatal(err)
	}
	// A backing missing the victim day cannot repair: row count check.
	partial := New()
	full, _, err := LoadBackingStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < full.Len(); i++ {
		if r := full.Record(i); EpochDay(r.End) != victim.ID {
			partial.Add(r)
		}
	}
	if err := RepairShard(dir, victim, partial); err == nil {
		t.Fatal("repair accepted a backing missing the victim day")
	}
	if _, statErr := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(statErr) {
		t.Fatal("failed repair landed a shard file anyway")
	}
	if !IsQuarantined(dir, victim.ID) {
		t.Fatal("failed repair removed the quarantined copy")
	}
	// The true backing still repairs.
	if err := RepairShard(dir, victim, full); err != nil {
		t.Fatal(err)
	}
	repaired, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(repaired, good[name]) {
		t.Fatal("repair after refusal is not byte-identical")
	}
}

// TestDegradedAggregatesMatchBaseline is the isolation property:
// quarantining day N must leave every aggregate over days != N
// bit-identical to the same query against the full store — degraded
// serving never perturbs the healthy days.
func TestDegradedAggregatesMatchBaseline(t *testing.T) {
	dir, _, entries, _ := healFixture(t, 2500)
	full, err := LoadShardSet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	full.BuildIndex()
	rng := rand.New(rand.NewSource(44))
	metrics := []Metric{MetricCPUUser, MetricMemUsed, MetricFlops}
	for trial := 0; trial < len(entries); trial++ {
		victim := entries[trial]
		if err := QuarantineShard(dir, victim, "trial", int64(trial)); err != nil {
			t.Fatal(err)
		}
		degraded, faults := LoadShardsDegraded(dir, entries, nil, nil)
		if len(faults) != 1 || faults[0].Info.ID != victim.ID {
			t.Fatalf("trial %d: faults = %+v, want exactly day %d", trial, faults, victim.ID)
		}
		degraded.BuildIndex()
		if degraded.NumShards() != len(entries)-1 {
			t.Fatalf("trial %d: degraded set has %d shards, want %d", trial, degraded.NumShards(), len(entries)-1)
		}
		// Windows that exclude the quarantined day: everything before it
		// (a bound of 0 means unbounded, so day 0 has no "before"),
		// everything after it, and a random healthy single day.
		windows := []Filter{
			{EndAfter: (victim.ID + 1) * SecondsPerDay},
		}
		if victim.ID > 0 {
			windows = append(windows, Filter{EndBefore: victim.ID * SecondsPerDay})
		}
		if healthy := pickOtherDay(rng, entries, victim.ID); healthy >= 0 {
			windows = append(windows, Filter{
				EndAfter:  healthy * SecondsPerDay,
				EndBefore: (healthy + 1) * SecondsPerDay,
			})
		}
		for wi, f := range windows {
			m := metrics[rng.Intn(len(metrics))]
			a, b := full.Aggregate(m, f), degraded.Aggregate(m, f)
			if !aggBitsEqual(b, a) {
				t.Fatalf("trial %d window %d: degraded aggregate %+v != baseline %+v", trial, wi, b, a)
			}
			ga := full.GroupBy(ByUser, metrics, f)
			gb := degraded.GroupBy(ByUser, metrics, f)
			if !groupsBitsEqual(ga, gb) {
				t.Fatalf("trial %d window %d: degraded groupby differs from baseline", trial, wi)
			}
		}
		// Restore: move the quarantined copy back for the next trial.
		if err := os.Rename(filepath.Join(dir, QuarantinedShardFile(victim.ID)),
			filepath.Join(dir, ShardFileName(victim.ID))); err != nil {
			t.Fatal(err)
		}
	}
}

func pickOtherDay(rng *rand.Rand, entries []ShardInfo, not int64) int64 {
	others := make([]int64, 0, len(entries))
	for _, e := range entries {
		if e.ID != not {
			others = append(others, e.ID)
		}
	}
	if len(others) == 0 {
		return -1
	}
	return others[rng.Intn(len(others))]
}

// TestLoadShardsDegradedReuse pins that fault isolation composes with
// incremental reuse: against a previous healthy set, a degraded load
// adopts every healthy shard by pointer and faults only the damaged
// one.
func TestLoadShardsDegradedReuse(t *testing.T) {
	dir, _, entries, _ := healFixture(t, 2000)
	prev, err := LoadShardSet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := entries[len(entries)/2]
	if err := os.Remove(filepath.Join(dir, ShardFileName(victim.ID))); err != nil {
		t.Fatal(err)
	}
	set, faults := LoadShardsDegraded(dir, entries, prev, nil)
	if len(faults) != 1 || faults[0].Info.ID != victim.ID {
		t.Fatalf("faults = %+v, want exactly day %d", faults, victim.ID)
	}
	stats := set.LoadStats()
	if stats.Reused != len(entries)-1 {
		t.Fatalf("reused %d shards, want %d", stats.Reused, len(entries)-1)
	}
	if stats.Loaded != 0 {
		t.Fatalf("loaded %d shards, want 0", stats.Loaded)
	}
	for i := 0; i < set.NumShards(); i++ {
		sh := set.ShardAt(i)
		if prevSh := prev.shardByID(sh.ID()); prevSh != sh {
			t.Fatalf("shard %d was copied, not adopted by pointer", sh.ID())
		}
	}
}

package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

// codecStore builds a store with awkward codec inputs: NaN/Inf metric
// bits, negative ints, empty strings, non-ASCII strings, repeated and
// unique dictionary values.
func codecStore(n int) *Store {
	st := New()
	for i := 0; i < n; i++ {
		r := JobRecord{
			JobID:   int64(i) - 3, // negative ids in range
			Cluster: "ranger",
			User:    []string{"alice", "böb", "", "alice"}[i%4],
			App:     "app" + string(rune('a'+i%11)),
			Science: []string{"Chem", "Phys"}[i%2],
			Nodes:   i % 100,
			Submit:  int64(i) * 1e6,
			Start:   int64(i)*1e6 + 17,
			End:     int64(i)*1e6 + 17 + int64(i%5000),
			Status:  "completed",
			Samples: i % 9,
		}
		r.FlopsGF = float64(i) * 1.25
		r.MemUsedGB = -float64(i % 7)
		if i%13 == 0 {
			r.CPUIdleFrac = math.NaN()
		}
		if i%17 == 0 {
			r.ReadMB = math.Inf(-1)
		}
		st.Add(r)
	}
	return st
}

// TestCodecRoundTrip proves encode→decode reproduces every record
// exactly (bit-level for floats, via Float64bits through the JSON-tag
// comparison below being reflect.DeepEqual on the structs).
func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 5000} {
		st := codecStore(n)
		data := EncodeColumns(st.Columns())
		got, err := DecodeColumns(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		st2 := FromColumns(got)
		if st2.Len() != st.Len() {
			t.Fatalf("n=%d: %d rows, want %d", n, st2.Len(), st.Len())
		}
		for i := 0; i < st.Len(); i++ {
			a, b := st.Record(i), st2.Record(i)
			if !recordsBitEqual(a, b) {
				t.Fatalf("n=%d row %d: %+v != %+v", n, i, b, a)
			}
		}
	}
}

// recordsBitEqual compares records treating NaN bit patterns as equal.
func recordsBitEqual(a, b JobRecord) bool {
	fa, fb := metricBits(a), metricBits(b)
	a = zeroMetrics(a)
	b = zeroMetrics(b)
	return a == b && fa == fb
}

func metricBits(r JobRecord) [NumMetrics]uint64 {
	var out [NumMetrics]uint64
	for k, m := range AllMetrics() {
		out[k] = math.Float64bits(r.Value(m))
	}
	return out
}

func zeroMetrics(r JobRecord) JobRecord {
	r.CPUIdleFrac, r.CPUUserFrac, r.CPUSysFrac = 0, 0, 0
	r.MemUsedGB, r.MemUsedMaxGB, r.FlopsGF = 0, 0, 0
	r.ScratchWriteMB, r.WorkWriteMB, r.ReadMB = 0, 0, 0
	r.IBTxMB, r.IBRxMB, r.LnetTxMB = 0, 0, 0
	return r
}

// TestCodecByteStable proves encode→decode→encode reproduces the exact
// bytes — the dictionary order, codes and numeric payloads are all pure
// functions of the serialized form.
func TestCodecByteStable(t *testing.T) {
	st := codecStore(4096)
	first := EncodeColumns(st.Columns())
	c, err := DecodeColumns(first)
	if err != nil {
		t.Fatal(err)
	}
	second := EncodeColumns(c)
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(first), len(second))
	}
}

// TestCodecDerivedState proves a decoded store answers queries exactly
// like the store it was encoded from (the derived dictionaries, weight
// cache and vacuity bounds are rebuilt correctly).
func TestCodecDerivedState(t *testing.T) {
	st := equivStore(3000)
	c, err := DecodeColumns(EncodeColumns(st.Columns()))
	if err != nil {
		t.Fatal(err)
	}
	st2 := FromColumns(c)
	for fi, f := range equivFilters {
		if got, want := st2.Aggregate(MetricFlops, f), st.Aggregate(MetricFlops, f); !aggBitsEqual(got, want) {
			t.Errorf("filter#%d: decoded store aggregate %+v != original %+v", fi, got, want)
		}
		if got, want := st2.Select(f), st.Select(f); !reflect.DeepEqual(got, want) {
			t.Errorf("filter#%d: decoded store selects %d rows, original %d", fi, len(got), len(want))
		}
	}
	if got, want := st2.TotalNodeHours(Filter{}), st.TotalNodeHours(Filter{}); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("TotalNodeHours %v != %v", got, want)
	}
}

// TestSaveLoadBinary covers the io.Reader/Writer wrappers.
func TestSaveLoadBinary(t *testing.T) {
	st := codecStore(257)
	var buf bytes.Buffer
	if err := st.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("%d rows, want %d", st2.Len(), st.Len())
	}
	for i := 0; i < st.Len(); i++ {
		if !recordsBitEqual(st.Record(i), st2.Record(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestDecodeRejectsMalformed enumerates the structured corruption cases
// the decoder must reject with an error (matching the fuzz corpus
// seeds): truncations at every boundary, bad magic/version/flags,
// corrupted CRCs, reordered blocks, hostile lengths, out-of-range
// dictionary codes and trailing garbage.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeColumns(codecStore(50).Columns())
	if _, err := DecodeColumns(valid); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), valid...)
		b = f(b)
		if _, err := DecodeColumns(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}

	mutate("empty", func(b []byte) []byte { return nil })
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("future version", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 99)
		return b
	})
	mutate("unknown flags", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], 1)
		return b
	})
	mutate("row count beyond file", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:], 1<<40)
		return b
	})
	mutate("row count off by one", func(b []byte) []byte {
		n := binary.LittleEndian.Uint64(b[16:])
		binary.LittleEndian.PutUint64(b[16:], n+1)
		return b
	})
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("truncated mid-block", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated last byte", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) })
	mutate("corrupted payload vs CRC", func(b []byte) []byte {
		b[codecHeaderLen+blockHeaderLen] ^= 0x01 // first byte of first payload
		return b
	})
	mutate("corrupted CRC field", func(b []byte) []byte {
		b[codecHeaderLen+12] ^= 0x01 // CRC of first block
		return b
	})
	mutate("reordered block id", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[codecHeaderLen:], blockCluster)
		return b
	})
	mutate("hostile block length", func(b []byte) []byte {
		// First block claims a huge payload; must be caught against
		// remaining bytes, not allocated.
		binary.LittleEndian.PutUint64(b[codecHeaderLen+4:], 1<<50)
		return b
	})

	// Dictionary-specific damage needs the cluster block (id 2): it
	// follows the job-id block.
	dictOff := codecHeaderLen + blockHeaderLen + 50*8
	mutate("hostile dictionary count", func(b []byte) []byte {
		payloadStart := dictOff + blockHeaderLen
		binary.LittleEndian.PutUint32(b[payloadStart:], 1<<30)
		fixBlockCRC(b, dictOff)
		return b
	})
	mutate("hostile dictionary string length", func(b []byte) []byte {
		payloadStart := dictOff + blockHeaderLen
		binary.LittleEndian.PutUint32(b[payloadStart+4:], 1<<31)
		fixBlockCRC(b, dictOff)
		return b
	})
	mutate("dictionary code out of range", func(b []byte) []byte {
		// The cluster dictionary has 1 value ("ranger", 6 bytes); the
		// codes start after count+len+bytes.
		payloadStart := dictOff + blockHeaderLen
		binary.LittleEndian.PutUint32(b[payloadStart+4+4+6:], 7)
		fixBlockCRC(b, dictOff)
		return b
	})
}

// fixBlockCRC recomputes the CRC of the block at off so payload
// mutations exercise the structural checks rather than the checksum.
func fixBlockCRC(b []byte, off int) {
	length := binary.LittleEndian.Uint64(b[off+4:])
	payload := b[off+blockHeaderLen : off+blockHeaderLen+int(length)]
	binary.LittleEndian.PutUint32(b[off+12:], crc32.ChecksumIEEE(payload))
}

// BenchmarkColumnsCodec measures raw encode/decode throughput on the
// 100k-job floor corpus (make bench-store).
func BenchmarkColumnsCodec(b *testing.B) {
	st := floorStore(100_000)
	data := EncodeColumns(st.Columns())
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = EncodeColumns(st.Columns())
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := DecodeColumns(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package store

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func aggCtxFixture(n int) *Store {
	st := New()
	for i := 0; i < n; i++ {
		r := JobRecord{
			JobID:   int64(i + 1),
			Cluster: "ranger",
			User:    fmt.Sprintf("u%d", i%5),
			App:     "namd",
			Nodes:   1 + i%8,
			Start:   int64(100 * i),
			End:     int64(100*i + 3600),
			Status:  "completed",
			Samples: 2,
		}
		r.CPUIdleFrac = float64(i%10) / 10
		st.Add(r)
	}
	return st
}

// TestAggregateParallelCtx: with a live context the result is
// bit-identical to AggregateParallel; with a cancelled context the
// call reports the cancellation instead of a silent partial result.
func TestAggregateParallelCtx(t *testing.T) {
	st := aggCtxFixture(10000)
	want := st.AggregateParallel(MetricCPUIdle, Filter{}, 4)

	got, err := st.AggregateParallelCtx(context.Background(), MetricCPUIdle, Filter{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ctx aggregate %+v != plain %+v", got, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.AggregateParallelCtx(ctx, MetricCPUIdle, Filter{}, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled aggregate err = %v, want context.Canceled", err)
	}

	// A nil context degrades to the uncancellable path.
	got, err = st.AggregateParallelCtx(nil, MetricCPUIdle, Filter{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nil-ctx aggregate %+v != plain %+v", got, want)
	}
}

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// Shard manifest format ("MANIFEST.supremm", DESIGN.md §14).
//
// The job store is time-partitioned into one immutable columnar file
// per job-end epoch day ("shard-<epochday>.supremm", each in the
// jobs.supremm codec), and the manifest is the authoritative list of
// the partitions one ingest batch produced: for each shard its
// partition key, row count, end-time range, file size and content
// hash, little-endian, followed by a CRC32 over everything before it.
//
// Layout:
//
//	magic "SUPRMMS1" | version u32 | flags u32 | count u64
//	count × entry { id i64 | rows u64 | minEnd i64 | maxEnd i64 | size u64 | hash u32 }
//	crc32 u32 (IEEE, over all preceding bytes)
//
// Decoding is as strict as the columnar codec's: the CRC must match,
// the entry region must be exactly count entries long (no trailing
// bytes), shard IDs must be strictly ascending (no duplicates), every
// shard must hold at least one row, and each entry's end-time range
// must lie inside its own day — which structurally rejects overlapping
// shard time ranges. encode(decode(m)) == m for every accepted m.
const (
	manifestMagic   = "SUPRMMS1"
	manifestVersion = 1
	// manifestHeaderLen is magic + version + flags + entry count.
	manifestHeaderLen = 8 + 4 + 4 + 8
	// manifestEntryLen is one fixed-width shard entry.
	manifestEntryLen = 8 + 8 + 8 + 8 + 8 + 4
	// manifestMaxID bounds |shard ID| so id*SecondsPerDay can never
	// overflow int64 on hostile input (2^40 days is ~3e9 years).
	manifestMaxID = 1 << 40
)

// SecondsPerDay is the shard partition width: one epoch day.
const SecondsPerDay = 86400

// ManifestFile is the manifest's file name inside a data directory.
const ManifestFile = "MANIFEST.supremm"

// ShardFileName returns the shard file name for an epoch day.
func ShardFileName(day int64) string { return fmt.Sprintf("shard-%d.supremm", day) }

// EpochDay returns the epoch day containing the unix timestamp
// (floored division, so pre-1970 timestamps land in negative days).
func EpochDay(ts int64) int64 {
	d := ts / SecondsPerDay
	if ts%SecondsPerDay < 0 {
		d--
	}
	return d
}

// ShardInfo is one manifest entry: the identity and integrity metadata
// of a single shard file.
type ShardInfo struct {
	// ID is the epoch day of every job end in the shard.
	ID int64
	// Rows is the shard's record count (always >= 1; empty days have no
	// shard).
	Rows int
	// MinEnd and MaxEnd bound the shard's job-end timestamps, used for
	// whole-shard time pruning without opening the file.
	MinEnd int64
	MaxEnd int64
	// Size is the shard file's byte length and Hash the CRC32 (IEEE) of
	// its full contents; loads verify both before trusting the decode.
	Size int64
	Hash uint32
}

// EncodeManifest serializes manifest entries. Entries must already be
// in ascending ID order (WriteShardDir's partition order).
func EncodeManifest(entries []ShardInfo) []byte {
	buf := make([]byte, 0, manifestHeaderLen+len(entries)*manifestEntryLen+4)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // flags, reserved
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.ID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Rows))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.MinEnd))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.MaxEnd))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Size))
		buf = binary.LittleEndian.AppendUint32(buf, e.Hash)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeManifest parses and validates manifest bytes. Any structural
// damage — truncation, checksum mismatch, trailing bytes, duplicate or
// unordered shard IDs, hostile counts or out-of-day time ranges — is
// an error, never a panic and never a silently wrong shard list.
func DecodeManifest(data []byte) ([]ShardInfo, error) {
	if len(data) < manifestHeaderLen+4 {
		return nil, fmt.Errorf("store: manifest is %d bytes, shorter than any valid manifest", len(data))
	}
	body := data[:len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("store: manifest checksum mismatch (%08x != %08x)", got, sum)
	}
	d := decoder{data: body}
	magic, err := d.take(len(manifestMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != manifestMagic {
		return nil, fmt.Errorf("store: bad manifest magic %q", magic)
	}
	version, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if version != manifestVersion {
		return nil, fmt.Errorf("store: unsupported manifest version %d (want %d)", version, manifestVersion)
	}
	flags, err := d.uint32()
	if err != nil {
		return nil, err
	}
	if flags != 0 {
		return nil, fmt.Errorf("store: unsupported manifest flags %#x", flags)
	}
	count, err := d.uint64()
	if err != nil {
		return nil, err
	}
	// The entry region must hold exactly count entries: checked against
	// the remaining bytes before the allocation is sized from it.
	if count > uint64(d.remaining())/manifestEntryLen {
		return nil, fmt.Errorf("store: manifest claims %d shards in %d bytes", count, d.remaining())
	}
	if int(count)*manifestEntryLen != d.remaining() {
		return nil, fmt.Errorf("store: manifest has %d entry bytes, want %d for %d shards",
			d.remaining(), int(count)*manifestEntryLen, count)
	}
	entries := make([]ShardInfo, 0, count)
	for k := uint64(0); k < count; k++ {
		id, err := d.uint64()
		if err != nil {
			return nil, err
		}
		rows, err := d.uint64()
		if err != nil {
			return nil, err
		}
		minEnd, err := d.uint64()
		if err != nil {
			return nil, err
		}
		maxEnd, err := d.uint64()
		if err != nil {
			return nil, err
		}
		size, err := d.uint64()
		if err != nil {
			return nil, err
		}
		hash, err := d.uint32()
		if err != nil {
			return nil, err
		}
		e := ShardInfo{
			ID: int64(id), MinEnd: int64(minEnd), MaxEnd: int64(maxEnd), Hash: hash,
		}
		if e.ID < -manifestMaxID || e.ID > manifestMaxID {
			return nil, fmt.Errorf("store: manifest shard id %d out of range", e.ID)
		}
		if rows == 0 {
			return nil, fmt.Errorf("store: manifest shard %d claims zero rows", e.ID)
		}
		if size > uint64(1)<<62 || rows > size/4 {
			// A shard row costs far more than 4 bytes in the columnar
			// codec; a count past this is hostile, not merely corrupt.
			return nil, fmt.Errorf("store: manifest shard %d claims %d rows in %d bytes", e.ID, rows, size)
		}
		e.Rows = int(rows)
		e.Size = int64(size)
		if len(entries) > 0 && e.ID <= entries[len(entries)-1].ID {
			return nil, fmt.Errorf("store: manifest shard ids not strictly ascending (%d after %d)",
				e.ID, entries[len(entries)-1].ID)
		}
		// The shard's end-time range must lie inside its own day; this
		// also makes overlapping time ranges between shards impossible.
		dayLo := e.ID * SecondsPerDay
		if e.MinEnd < dayLo || e.MaxEnd >= dayLo+SecondsPerDay || e.MinEnd > e.MaxEnd {
			return nil, fmt.Errorf("store: manifest shard %d time range [%d,%d] outside its day [%d,%d)",
				e.ID, e.MinEnd, e.MaxEnd, dayLo, dayLo+SecondsPerDay)
		}
		entries = append(entries, e)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("store: manifest has %d trailing bytes", d.remaining())
	}
	return entries, nil
}

// ReorderByEndDay stably reorders the store's rows so they are grouped
// by job-end epoch day, days ascending, preserving the existing order
// within each day. This makes the monolithic row order identical to
// the concatenation of the day shards WriteShardDir produces — the
// invariant that keeps the jsonl, binary and sharded load paths
// answering byte-identically. Drops any index (like Add).
func (s *Store) ReorderByEndDay() {
	recs := make([]JobRecord, s.Len())
	for i := range recs {
		recs[i] = s.Record(i)
	}
	sort.SliceStable(recs, func(a, b int) bool {
		return EpochDay(recs[a].End) < EpochDay(recs[b].End)
	})
	*s = Store{}
	for _, r := range recs {
		s.Add(r)
	}
}

// partitionByEndDay splits the store into per-epoch-day columnar
// partitions, days ascending, preserving row order within each day.
func (s *Store) partitionByEndDay() ([]int64, []*Columns) {
	byDay := make(map[int64]*Columns)
	var days []int64
	for i, n := 0, s.Len(); i < n; i++ {
		r := s.Record(i)
		d := EpochDay(r.End)
		c := byDay[d]
		if c == nil {
			c = &Columns{}
			byDay[d] = c
			days = append(days, d)
		}
		c.appendRecord(r)
	}
	sort.Slice(days, func(a, b int) bool { return days[a] < days[b] })
	cols := make([]*Columns, len(days))
	for i, d := range days {
		cols[i] = byDay[d]
	}
	return days, cols
}

// WriteShardDir writes the store's time-partitioned form into dir: one
// shard-<epochday>.supremm per job-end day plus MANIFEST.supremm. Each
// file lands atomically (temp + fsync + rename + directory fsync, see
// AtomicWriteFile), shards before the manifest, so a poller never sees
// a manifest naming a shard that has not landed; shard files from an
// earlier batch whose day dropped out of the manifest are removed
// afterwards, along with any quarantine leftovers (*.quarantined
// files, the QUARANTINE.supremm log) and orphaned temp files from a
// killed writer or scrubber — a fresh batch supersedes whatever
// healing state the previous generation accumulated. Shard content is
// a pure function of the rows, so rewriting an unchanged day produces
// byte-identical files (same size, same hash) and the incremental
// loader reuses the in-memory shard.
func WriteShardDir(dir string, s *Store) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	days, cols := s.partitionByEndDay()
	entries := make([]ShardInfo, len(days))
	keep := make(map[string]bool, len(days)+1)
	for i, day := range days {
		payload := EncodeColumns(cols[i])
		name := ShardFileName(day)
		entries[i] = ShardInfo{
			ID:     day,
			Rows:   cols[i].Len(),
			MinEnd: cols[i].minEnd,
			MaxEnd: cols[i].maxEnd,
			Size:   int64(len(payload)),
			Hash:   crc32.ChecksumIEEE(payload),
		}
		if err := AtomicWriteBytes(dir, name, payload); err != nil {
			return err
		}
		keep[name] = true
	}
	if err := AtomicWriteBytes(dir, ManifestFile, EncodeManifest(entries)); err != nil {
		return err
	}
	return cleanShardDir(dir, keep)
}

// cleanShardDir removes files superseded by a fresh batch: shard files
// no longer in the manifest, quarantined shards and the quarantine log
// from a previous generation, and temp files a killed writer, repair
// or legacy non-fsyncing ingest left behind. Live temp files cannot be
// confused with orphans here: every writer in this process renames its
// temp before WriteShardDir's cleanup runs, and concurrent ingests
// into one directory are outside the design (the manifest would race
// regardless).
func cleanShardDir(dir string, keep map[string]bool) error {
	for _, pattern := range []string{"shard-*.supremm", "shard-*.supremm" + QuarantineSuffix, ".*.tmp*"} {
		paths, err := filepath.Glob(filepath.Join(dir, pattern))
		if err != nil {
			return err
		}
		for _, p := range paths {
			if !keep[filepath.Base(p)] {
				if err := os.Remove(p); err != nil {
					return err
				}
			}
		}
	}
	if err := os.Remove(filepath.Join(dir, QuarantineFile)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return FsyncDir(dir)
}

// Opener abstracts file opening for shard loads; nil means os.Open.
// The serve layer passes its Config.Open seam through here so chaos
// harnesses can inject slow or failing reads.
type Opener func(path string) (io.ReadCloser, error)

func defaultOpener(path string) (io.ReadCloser, error) { return os.Open(path) }

// LoadShardSet reads dir's manifest and loads (or, against prev,
// reuses) every shard it lists.
func LoadShardSet(dir string, prev *ShardSet) (*ShardSet, error) {
	return LoadShardSetOpen(dir, prev, nil)
}

// LoadShardSetOpen is LoadShardSet with the file opener injected.
func LoadShardSetOpen(dir string, prev *ShardSet, open Opener) (*ShardSet, error) {
	if open == nil {
		open = defaultOpener
	}
	data, err := readAllClose(open, filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, err
	}
	entries, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", ManifestFile, err)
	}
	return LoadShards(dir, entries, prev, open)
}

// LoadShards assembles a shard set from already-decoded manifest
// entries. A shard whose manifest entry is unchanged from prev — same
// ID, rows, size, hash — and whose on-disk file still has the manifest
// size is adopted from prev by pointer (columns shared, no copy, no
// decode); everything else is read, CRC-verified against the manifest,
// and decoded, in parallel. This is what makes a one-day append reload
// O(1 day) instead of O(history).
func LoadShards(dir string, entries []ShardInfo, prev *ShardSet, open Opener) (*ShardSet, error) {
	if open == nil {
		open = defaultOpener
	}
	shards := make([]*Shard, len(entries))
	var work []int
	for i, e := range entries {
		if prev != nil {
			if sh := prev.shardByID(e.ID); sh != nil && sh.info == e {
				// The entry matches the previous generation's, but the
				// file on disk may still have been replaced or torn with
				// the manifest left stale: verify at least its size before
				// trusting the in-memory copy. (Writers producing a
				// different same-size content also produce a different
				// hash, which already failed the entry equality.)
				if st, err := os.Stat(filepath.Join(dir, ShardFileName(e.ID))); err == nil && st.Size() == e.Size {
					shards[i] = sh
					continue
				}
			}
		}
		work = append(work, i)
	}
	errs := make([]error, len(work))
	runChunks(nil, len(work), runtime.GOMAXPROCS(0), func(c int) {
		i := work[c]
		shards[i], errs[c] = loadShard(dir, entries[i], open)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return newShardSet(shards, ShardLoadStats{
		Loaded: len(work),
		Reused: len(entries) - len(work),
	}), nil
}

// loadShard reads and verifies one shard file against its manifest
// entry: byte length, content CRC, decoded row count and time range
// must all agree, so a stale manifest or a torn/substituted shard file
// fails the load instead of serving mixed generations.
func loadShard(dir string, e ShardInfo, open Opener) (*Shard, error) {
	name := ShardFileName(e.ID)
	data, err := readAllClose(open, filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("store: shard %s: %w", name, err)
	}
	if int64(len(data)) != e.Size {
		return nil, fmt.Errorf("store: shard %s is %d bytes, manifest says %d", name, len(data), e.Size)
	}
	if got := crc32.ChecksumIEEE(data); got != e.Hash {
		return nil, fmt.Errorf("store: shard %s content hash %08x does not match manifest %08x", name, got, e.Hash)
	}
	c, err := DecodeColumns(data)
	if err != nil {
		return nil, fmt.Errorf("store: shard %s: %w", name, err)
	}
	if c.Len() != e.Rows {
		return nil, fmt.Errorf("store: shard %s decoded %d rows, manifest says %d", name, c.Len(), e.Rows)
	}
	if c.minEnd != e.MinEnd || c.maxEnd != e.MaxEnd {
		return nil, fmt.Errorf("store: shard %s end range [%d,%d] does not match manifest [%d,%d]",
			name, c.minEnd, c.maxEnd, e.MinEnd, e.MaxEnd)
	}
	return &Shard{info: e, st: FromColumns(c)}, nil
}

// readAllClose opens, fully reads and closes one file.
func readAllClose(open Opener, path string) ([]byte, error) {
	rc, err := open(path)
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(rc)
	cerr := rc.Close()
	if rerr != nil {
		return nil, rerr
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

package store

import (
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// Background shard scrubbing (DESIGN.md §15).
//
// A loaded shard is verified once, at load time — but disks rot after
// the load: a flipped bit in a committed shard changes neither the
// file's size nor its mtime, so the poll fingerprint never notices and
// the next reload would only read the file when its manifest entry
// changes (which bit rot does not do). The scrubber closes that hole:
// it re-reads shard bytes from disk on a byte budget per poll tick,
// round-robin across the shard set, and reports any shard whose bytes
// no longer hash to the manifest entry. The budget bounds the extra
// I/O per tick (one slow disk must not starve the poll loop); a full
// pass over the set is a "sweep", counted so operators can see rot
// detection latency (set size / budget ticks) in /metrics.

// ScrubFinding is one shard that failed re-verification.
type ScrubFinding struct {
	Info ShardInfo
	Err  error
}

// Scrubber incrementally re-verifies a fixed shard set against its
// manifest entries. It is a cursor over one snapshot generation's
// entries: the serve layer builds a fresh Scrubber per published
// snapshot (over the shards actually held, so quarantined days are
// not re-found every tick). Not safe for concurrent use; the caller
// serializes ticks.
type Scrubber struct {
	dir     string
	entries []ShardInfo
	open    Opener

	pos      int
	sweeps   int64
	verified int64
}

// NewScrubber builds a scrubber over entries in dir; nil open means
// os.Open.
func NewScrubber(dir string, entries []ShardInfo, open Opener) *Scrubber {
	if open == nil {
		open = defaultOpener
	}
	return &Scrubber{dir: dir, entries: entries, open: open}
}

// Tick verifies shards starting at the cursor until at least
// budgetBytes of shard data have been read (always at least one shard
// when the set is non-empty), or one full pass completes, whichever
// comes first; a negative budget verifies the entire set. It returns
// the shards that failed verification and how many full sweeps
// completed during this tick.
func (sc *Scrubber) Tick(budgetBytes int64) (findings []ScrubFinding, sweeps int) {
	n := len(sc.entries)
	if n == 0 {
		return nil, 0
	}
	var read int64
	for checked := 0; checked < n; checked++ {
		e := sc.entries[sc.pos]
		if err := VerifyShard(sc.dir, e, sc.open); err != nil {
			findings = append(findings, ScrubFinding{Info: e, Err: err})
		}
		sc.verified++
		read += e.Size
		sc.pos++
		if sc.pos == n {
			sc.pos = 0
			sc.sweeps++
			sweeps++
		}
		if budgetBytes >= 0 && read >= budgetBytes {
			break
		}
	}
	return findings, sweeps
}

// Sweeps returns the full verification passes this scrubber completed.
func (sc *Scrubber) Sweeps() int64 { return sc.sweeps }

// Verified returns the total shard verifications performed.
func (sc *Scrubber) Verified() int64 { return sc.verified }

// VerifyShard re-reads day e.ID's shard file and checks it against the
// manifest entry: byte length and content CRC must both agree. It does
// not decode — the manifest hash is authoritative for the bytes, and
// decode validity is (re-)established at load time.
func VerifyShard(dir string, e ShardInfo, open Opener) error {
	if open == nil {
		open = defaultOpener
	}
	name := ShardFileName(e.ID)
	data, err := readAllClose(open, filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("store: scrub %s: %w", name, err)
	}
	if int64(len(data)) != e.Size {
		return fmt.Errorf("store: scrub %s: %d bytes on disk, manifest says %d", name, len(data), e.Size)
	}
	if got := crc32.ChecksumIEEE(data); got != e.Hash {
		return fmt.Errorf("store: scrub %s: content hash %08x does not match manifest %08x", name, got, e.Hash)
	}
	return nil
}

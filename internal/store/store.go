// Package store is the embedded data warehouse standing in for the
// paper's IBM Netezza appliance and MySQL database: job-level records
// with the per-job metric summaries the SUPReMM analyses consume, held
// in a struct-of-arrays columnar layout (Columns) with filtering,
// grouping and node-hour-weighted aggregation, plus a versioned binary
// snapshot format (codec.go) for fast daemon loads.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JobRecord is one job's summary row: identity from the accounting join
// plus per-job resource metrics computed over all nodes and sampling
// intervals. Rates are per node; the paper's job-level statistics are
// "calculated by the job weighted by node*hour" (§4.1), which Query
// supports via NodeHours weighting.
type JobRecord struct {
	JobID   int64  `json:"job_id"`
	Cluster string `json:"cluster"`
	User    string `json:"user"`
	App     string `json:"app"`
	Science string `json:"science"`
	Nodes   int    `json:"nodes"`

	Submit int64  `json:"submit"` // unix seconds
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Status string `json:"status"`

	// The eight key metrics of §4.2 and their companions.
	CPUIdleFrac    float64 `json:"cpu_idle"`
	CPUUserFrac    float64 `json:"cpu_user"`
	CPUSysFrac     float64 `json:"cpu_sys"`
	MemUsedGB      float64 `json:"mem_used"`         // mean per node
	MemUsedMaxGB   float64 `json:"mem_used_max"`     // peak over nodes and intervals
	FlopsGF        float64 `json:"cpu_flops"`        // mean GF/s per node
	ScratchWriteMB float64 `json:"io_scratch_write"` // MB/s per node
	WorkWriteMB    float64 `json:"io_work_write"`
	ReadMB         float64 `json:"io_read"`
	IBTxMB         float64 `json:"net_ib_tx"`
	IBRxMB         float64 `json:"net_ib_rx"`
	LnetTxMB       float64 `json:"net_lnet_tx"`

	// Samples is how many monitor intervals contributed; the paper's
	// analyses exclude jobs shorter than one sampling interval (§4.1).
	Samples int `json:"samples"`
}

// WallclockSec returns the job's wall time.
func (r *JobRecord) WallclockSec() int64 { return r.End - r.Start }

// NodeHours returns nodes * wallclock hours, the §4.1 weighting.
func (r *JobRecord) NodeHours() float64 {
	return float64(r.Nodes) * float64(r.WallclockSec()) / 3600
}

// Metric identifies one numeric column of a JobRecord.
type Metric string

// Metric names follow the paper's vocabulary (§4.2).
const (
	MetricCPUIdle      Metric = "cpu_idle"
	MetricCPUUser      Metric = "cpu_user"
	MetricCPUSys       Metric = "cpu_sys"
	MetricMemUsed      Metric = "mem_used"
	MetricMemUsedMax   Metric = "mem_used_max"
	MetricFlops        Metric = "cpu_flops"
	MetricScratchWrite Metric = "io_scratch_write"
	MetricWorkWrite    Metric = "io_work_write"
	MetricRead         Metric = "io_read"
	MetricIBTx         Metric = "net_ib_tx"
	MetricIBRx         Metric = "net_ib_rx"
	MetricLnetTx       Metric = "net_lnet_tx"
)

// KeyMetrics returns the paper's eight-metric independent set (§4.2).
func KeyMetrics() []Metric {
	return []Metric{
		MetricCPUIdle, MetricMemUsed, MetricMemUsedMax, MetricFlops,
		MetricScratchWrite, MetricWorkWrite, MetricIBTx, MetricLnetTx,
	}
}

// AllMetrics returns every numeric column, in the fixed order the
// columnar layout and binary snapshot use (metricPos).
func AllMetrics() []Metric {
	return []Metric{
		MetricCPUIdle, MetricCPUUser, MetricCPUSys, MetricMemUsed,
		MetricMemUsedMax, MetricFlops, MetricScratchWrite,
		MetricWorkWrite, MetricRead, MetricIBTx, MetricIBRx, MetricLnetTx,
	}
}

// Value extracts a metric from a record.
func (r *JobRecord) Value(m Metric) float64 {
	switch m {
	case MetricCPUIdle:
		return r.CPUIdleFrac
	case MetricCPUUser:
		return r.CPUUserFrac
	case MetricCPUSys:
		return r.CPUSysFrac
	case MetricMemUsed:
		return r.MemUsedGB
	case MetricMemUsedMax:
		return r.MemUsedMaxGB
	case MetricFlops:
		return r.FlopsGF
	case MetricScratchWrite:
		return r.ScratchWriteMB
	case MetricWorkWrite:
		return r.WorkWriteMB
	case MetricRead:
		return r.ReadMB
	case MetricIBTx:
		return r.IBTxMB
	case MetricIBRx:
		return r.IBRxMB
	case MetricLnetTx:
		return r.LnetTxMB
	default:
		return 0
	}
}

// Store holds job records in the struct-of-arrays Columns layout:
// identity columns as contiguous slices (strings dictionary-encoded)
// plus one float64 column per metric, which keeps aggregation scans
// cache-friendly (see BenchmarkAggregateColumnar).
type Store struct {
	c Columns

	// idx holds the secondary indexes built by BuildIndex; nil means
	// every Select is a scan. Mutation invalidates it (see Add).
	idx *Index
}

// New creates an empty store.
func New() *Store { return &Store{} }

// Len returns the number of records.
func (s *Store) Len() int { return s.c.Len() }

// Columns exposes the struct-of-arrays layout for columnar kernels and
// the binary codec. Callers must treat it as read-only; mutate through
// Add.
func (s *Store) Columns() *Columns { return &s.c }

// FromColumns wraps a decoded columnar layout in a Store. The Columns
// must have derived state populated (DecodeColumns does this); the
// store takes ownership.
func FromColumns(c *Columns) *Store { return &Store{c: *c} }

// Add appends one record. Adding drops any index built by BuildIndex:
// stale postings would silently exclude the new row, whereas a scan is
// merely slower. Not safe concurrently with queries.
func (s *Store) Add(r JobRecord) {
	s.idx = nil
	s.c.appendRecord(r)
}

// Record materializes row i back into a JobRecord.
func (s *Store) Record(i int) JobRecord { return s.c.record(i) }

// col returns the metric column, or nil for an unknown metric name
// (matching the old map-lookup behavior).
func (s *Store) col(m Metric) []float64 {
	pos := metricPos(m)
	if pos < 0 {
		return nil
	}
	return s.c.Metrics[pos]
}

// nodeHours returns the §4.1 weight for row i.
func (s *Store) nodeHours(i int) float64 { return s.c.weight[i] }

// Save writes the store as JSON lines.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < s.Len(); i++ {
		if err := enc.Encode(s.Record(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a JSON-lines store file.
func Load(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec JobRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("store: load: %w", err)
		}
		s.Add(rec)
	}
	return s, nil
}

// SortByJobID orders rows by job ID for deterministic output.
func (s *Store) SortByJobID() {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.c.JobID[idx[a]] < s.c.JobID[idx[b]] })
	recs := make([]JobRecord, s.Len())
	for pos, i := range idx {
		recs[pos] = s.Record(i)
	}
	*s = Store{}
	for _, r := range recs {
		s.Add(r)
	}
}

// Package store is the embedded data warehouse standing in for the
// paper's IBM Netezza appliance and MySQL database: job-level records
// with the per-job metric summaries the SUPReMM analyses consume, held
// in a column-oriented layout with filtering, grouping and node-hour-
// weighted aggregation.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JobRecord is one job's summary row: identity from the accounting join
// plus per-job resource metrics computed over all nodes and sampling
// intervals. Rates are per node; the paper's job-level statistics are
// "calculated by the job weighted by node*hour" (§4.1), which Query
// supports via NodeHours weighting.
type JobRecord struct {
	JobID   int64  `json:"job_id"`
	Cluster string `json:"cluster"`
	User    string `json:"user"`
	App     string `json:"app"`
	Science string `json:"science"`
	Nodes   int    `json:"nodes"`

	Submit int64  `json:"submit"` // unix seconds
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Status string `json:"status"`

	// The eight key metrics of §4.2 and their companions.
	CPUIdleFrac    float64 `json:"cpu_idle"`
	CPUUserFrac    float64 `json:"cpu_user"`
	CPUSysFrac     float64 `json:"cpu_sys"`
	MemUsedGB      float64 `json:"mem_used"`         // mean per node
	MemUsedMaxGB   float64 `json:"mem_used_max"`     // peak over nodes and intervals
	FlopsGF        float64 `json:"cpu_flops"`        // mean GF/s per node
	ScratchWriteMB float64 `json:"io_scratch_write"` // MB/s per node
	WorkWriteMB    float64 `json:"io_work_write"`
	ReadMB         float64 `json:"io_read"`
	IBTxMB         float64 `json:"net_ib_tx"`
	IBRxMB         float64 `json:"net_ib_rx"`
	LnetTxMB       float64 `json:"net_lnet_tx"`

	// Samples is how many monitor intervals contributed; the paper's
	// analyses exclude jobs shorter than one sampling interval (§4.1).
	Samples int `json:"samples"`
}

// WallclockSec returns the job's wall time.
func (r *JobRecord) WallclockSec() int64 { return r.End - r.Start }

// NodeHours returns nodes * wallclock hours, the §4.1 weighting.
func (r *JobRecord) NodeHours() float64 {
	return float64(r.Nodes) * float64(r.WallclockSec()) / 3600
}

// Metric identifies one numeric column of a JobRecord.
type Metric string

// Metric names follow the paper's vocabulary (§4.2).
const (
	MetricCPUIdle      Metric = "cpu_idle"
	MetricCPUUser      Metric = "cpu_user"
	MetricCPUSys       Metric = "cpu_sys"
	MetricMemUsed      Metric = "mem_used"
	MetricMemUsedMax   Metric = "mem_used_max"
	MetricFlops        Metric = "cpu_flops"
	MetricScratchWrite Metric = "io_scratch_write"
	MetricWorkWrite    Metric = "io_work_write"
	MetricRead         Metric = "io_read"
	MetricIBTx         Metric = "net_ib_tx"
	MetricIBRx         Metric = "net_ib_rx"
	MetricLnetTx       Metric = "net_lnet_tx"
)

// KeyMetrics returns the paper's eight-metric independent set (§4.2).
func KeyMetrics() []Metric {
	return []Metric{
		MetricCPUIdle, MetricMemUsed, MetricMemUsedMax, MetricFlops,
		MetricScratchWrite, MetricWorkWrite, MetricIBTx, MetricLnetTx,
	}
}

// AllMetrics returns every numeric column, for correlation analysis.
func AllMetrics() []Metric {
	return []Metric{
		MetricCPUIdle, MetricCPUUser, MetricCPUSys, MetricMemUsed,
		MetricMemUsedMax, MetricFlops, MetricScratchWrite,
		MetricWorkWrite, MetricRead, MetricIBTx, MetricIBRx, MetricLnetTx,
	}
}

// Value extracts a metric from a record.
func (r *JobRecord) Value(m Metric) float64 {
	switch m {
	case MetricCPUIdle:
		return r.CPUIdleFrac
	case MetricCPUUser:
		return r.CPUUserFrac
	case MetricCPUSys:
		return r.CPUSysFrac
	case MetricMemUsed:
		return r.MemUsedGB
	case MetricMemUsedMax:
		return r.MemUsedMaxGB
	case MetricFlops:
		return r.FlopsGF
	case MetricScratchWrite:
		return r.ScratchWriteMB
	case MetricWorkWrite:
		return r.WorkWriteMB
	case MetricRead:
		return r.ReadMB
	case MetricIBTx:
		return r.IBTxMB
	case MetricIBRx:
		return r.IBRxMB
	case MetricLnetTx:
		return r.LnetTxMB
	default:
		return 0
	}
}

// Store holds job records in a column-oriented layout: identity columns
// as slices plus one float64 column per metric, which keeps aggregation
// scans cache-friendly (see BenchmarkStoreColumnarVsRows).
type Store struct {
	jobID   []int64
	cluster []string
	user    []string
	app     []string
	science []string
	nodes   []int
	submit  []int64
	start   []int64
	end     []int64
	status  []string
	samples []int

	cols map[Metric][]float64

	// idx holds the secondary indexes built by BuildIndex; nil means
	// every Select is a scan. Mutation invalidates it (see Add).
	idx *Index
}

// New creates an empty store.
func New() *Store {
	s := &Store{cols: make(map[Metric][]float64)}
	for _, m := range AllMetrics() {
		s.cols[m] = nil
	}
	return s
}

// Len returns the number of records.
func (s *Store) Len() int { return len(s.jobID) }

// Add appends one record. Adding drops any index built by BuildIndex:
// stale postings would silently exclude the new row, whereas a scan is
// merely slower. Not safe concurrently with queries.
func (s *Store) Add(r JobRecord) {
	s.idx = nil
	s.jobID = append(s.jobID, r.JobID)
	s.cluster = append(s.cluster, r.Cluster)
	s.user = append(s.user, r.User)
	s.app = append(s.app, r.App)
	s.science = append(s.science, r.Science)
	s.nodes = append(s.nodes, r.Nodes)
	s.submit = append(s.submit, r.Submit)
	s.start = append(s.start, r.Start)
	s.end = append(s.end, r.End)
	s.status = append(s.status, r.Status)
	s.samples = append(s.samples, r.Samples)
	for _, m := range AllMetrics() {
		s.cols[m] = append(s.cols[m], r.Value(m))
	}
}

// Record materializes row i back into a JobRecord.
func (s *Store) Record(i int) JobRecord {
	r := JobRecord{
		JobID: s.jobID[i], Cluster: s.cluster[i], User: s.user[i],
		App: s.app[i], Science: s.science[i], Nodes: s.nodes[i],
		Submit: s.submit[i], Start: s.start[i], End: s.end[i],
		Status: s.status[i], Samples: s.samples[i],
	}
	r.CPUIdleFrac = s.cols[MetricCPUIdle][i]
	r.CPUUserFrac = s.cols[MetricCPUUser][i]
	r.CPUSysFrac = s.cols[MetricCPUSys][i]
	r.MemUsedGB = s.cols[MetricMemUsed][i]
	r.MemUsedMaxGB = s.cols[MetricMemUsedMax][i]
	r.FlopsGF = s.cols[MetricFlops][i]
	r.ScratchWriteMB = s.cols[MetricScratchWrite][i]
	r.WorkWriteMB = s.cols[MetricWorkWrite][i]
	r.ReadMB = s.cols[MetricRead][i]
	r.IBTxMB = s.cols[MetricIBTx][i]
	r.IBRxMB = s.cols[MetricIBRx][i]
	r.LnetTxMB = s.cols[MetricLnetTx][i]
	return r
}

// nodeHours returns the §4.1 weight for row i.
func (s *Store) nodeHours(i int) float64 {
	return float64(s.nodes[i]) * float64(s.end[i]-s.start[i]) / 3600
}

// Save writes the store as JSON lines.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < s.Len(); i++ {
		if err := enc.Encode(s.Record(i)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a JSON-lines store file.
func Load(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var rec JobRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("store: load: %w", err)
		}
		s.Add(rec)
	}
	return s, nil
}

// SortByJobID orders rows by job ID for deterministic output.
func (s *Store) SortByJobID() {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.jobID[idx[a]] < s.jobID[idx[b]] })
	recs := make([]JobRecord, s.Len())
	for pos, i := range idx {
		recs[pos] = s.Record(i)
	}
	*s = *New()
	for _, r := range recs {
		s.Add(r)
	}
}

package store

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// splitParts cuts st's rows at the given strictly-ascending interior
// positions into columnar partitions — the in-memory analogue of an
// arbitrary day partitioning, so equivalence can be checked for any
// split, not just the day splits production produces.
func splitParts(st *Store, cuts []int) []*Columns {
	bounds := append(append([]int{0}, cuts...), st.Len())
	parts := make([]*Columns, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		p := New()
		for r := bounds[i]; r < bounds[i+1]; r++ {
			p.Add(st.Record(r))
		}
		parts = append(parts, p.Columns())
	}
	return parts
}

// randomCuts draws n distinct interior split points.
func randomCuts(rng *rand.Rand, rows, n int) []int {
	set := map[int]bool{}
	for len(set) < n {
		set[1+rng.Intn(rows-1)] = true
	}
	cuts := make([]int, 0, n)
	for c := range set {
		cuts = append(cuts, c)
	}
	sort.Ints(cuts)
	return cuts
}

func groupsBitsEqual(a, b []Group) bool {
	if len(a) != len(b) {
		return false
	}
	feq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range a {
		if a[i].Key != b[i].Key || a[i].N != b[i].N || !feq(a[i].NodeHours, b[i].NodeHours) {
			return false
		}
		if len(a[i].Mean) != len(b[i].Mean) {
			return false
		}
		for m, av := range a[i].Mean {
			bv, ok := b[i].Mean[m]
			if !ok || !feq(av, bv) {
				return false
			}
		}
	}
	return true
}

func floatsBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestShardDifferentialEquivalence is the property-style suite: for
// seeded random split points, a ShardSet must answer every query API
// bit-identically to the monolithic store holding the same rows in the
// same order — serial and parallel, any worker count, selective and
// broad filters, indexed or not. This is the invariant that lets the
// serve layer treat the two backings as interchangeable.
func TestShardDifferentialEquivalence(t *testing.T) {
	const rows = 5000
	st := equivStore(rows)
	st.BuildIndex() // the reference; indexing never changes results
	rng := rand.New(rand.NewSource(1))
	metrics := []Metric{MetricCPUIdle, MetricMemUsed, MetricFlops, MetricRead}
	keys := []GroupKey{ByUser, ByApp, ByScience, ByCluster, ByStatus}

	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		ncuts := trial % 7 // 0 cuts = single shard through 6 cuts = 7 shards
		cuts := randomCuts(rng, rows, ncuts)
		ss := NewShardSet(splitParts(st, cuts))
		if trial%2 == 1 {
			ss.BuildIndex()
		}

		for fi, f := range equivFilters {
			fail := func(what string) {
				t.Fatalf("trial %d (cuts %v, indexed %v), filter %d %+v: %s diverges from monolithic",
					trial, cuts, ss.HasIndex(), fi, f, what)
			}
			wantSel := st.Select(f)
			gotSel := ss.Select(f)
			if len(gotSel) != len(wantSel) {
				fail("Select length")
			}
			for i := range gotSel {
				if gotSel[i] != wantSel[i] {
					fail("Select")
				}
			}
			wantRecs := st.Records(f)
			gotRecs := ss.Records(f)
			if len(gotRecs) != len(wantRecs) {
				fail("Records length")
			}
			for i := range gotRecs {
				// equivStore plants NaN metric values, so struct equality
				// would reject identical records; formatted comparison
				// treats NaN == NaN while still seeing every field.
				if fmt.Sprintf("%+v", gotRecs[i]) != fmt.Sprintf("%+v", wantRecs[i]) {
					fail("Records")
				}
			}
			if math.Float64bits(ss.TotalNodeHours(f)) != math.Float64bits(st.TotalNodeHours(f)) {
				fail("TotalNodeHours")
			}
			for _, m := range metrics {
				// Serial compares against serial and chunked against
				// chunked: the two monolithic kernels accumulate in
				// different orders by design (fixed 4096-row chunks vs one
				// running sum), and the shard set replicates each exactly.
				want := st.Aggregate(m, f)
				if got := ss.Aggregate(m, f); !aggBitsEqual(got, want) {
					fail("Aggregate " + string(m))
				}
				wantPar := st.AggregateParallel(m, f, 4)
				for _, w := range []int{1, 3, 5} {
					if got := ss.AggregateParallel(m, f, w); !aggBitsEqual(got, wantPar) {
						fail("AggregateParallel " + string(m))
					}
				}
				got, err := ss.AggregateParallelCtx(context.Background(), m, f, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !aggBitsEqual(got, wantPar) {
					fail("AggregateParallelCtx " + string(m))
				}
				wv, ww := st.Values(m, f)
				gv, gw := ss.Values(m, f)
				if !floatsBitsEqual(gv, wv) || !floatsBitsEqual(gw, ww) {
					fail("Values " + string(m))
				}
			}
			for _, k := range keys {
				want := st.GroupBy(k, metrics[:2], f)
				if got := ss.GroupBy(k, metrics[:2], f); !groupsBitsEqual(got, want) {
					fail("GroupBy")
				}
			}
		}
	}
}

// TestShardDifferentialDayParts pins the production split — partition
// by end day, exactly what WriteShardDir writes — against the same
// store reordered by day, including parallel paths under every worker
// count a small machine would see.
func TestShardDifferentialDayParts(t *testing.T) {
	st := multiDayStore(4000)
	st.BuildIndex()
	_, cols := st.partitionByEndDay()
	ss := NewShardSet(cols)
	ss.BuildIndex()
	for _, f := range equivFilters {
		for _, m := range []Metric{MetricCPUIdle, MetricMemUsed, MetricFlops} {
			want := st.AggregateParallel(m, f, 2)
			for w := 1; w <= 6; w++ {
				if got := ss.AggregateParallel(m, f, w); !aggBitsEqual(got, want) {
					t.Fatalf("day split, %s, %d workers, %+v: parallel diverges", m, w, f)
				}
			}
			if got := ss.Aggregate(m, f); !aggBitsEqual(got, st.Aggregate(m, f)) {
				t.Fatalf("day split, %s, %+v: serial diverges", m, f)
			}
		}
	}
}

// TestShardAggregateCtxCancel mirrors the monolithic contract: a
// cancelled context aborts the cross-shard aggregation with an error.
func TestShardAggregateCtxCancel(t *testing.T) {
	st := equivStore(3000)
	_, cols := st.partitionByEndDay()
	ss := NewShardSet(cols)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ss.AggregateParallelCtx(ctx, MetricCPUIdle, Filter{}, 4); err == nil {
		t.Error("cancelled context did not abort cross-shard aggregation")
	}
}

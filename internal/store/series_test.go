package store

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleSeries() []SystemSample {
	return []SystemSample{
		{Time: 100, ActiveNodes: 10, BusyNodes: 8, QueuedJobs: 3, RunningJobs: 5,
			TotalTFlops: 1.5, MemPerNode: 8, CPUUserFrac: 0.8, CPUSysFrac: 0.05,
			CPUIdleFrac: 0.15, ScratchMBps: 100, WorkMBps: 10, ShareMBps: 1,
			IBTxMBps: 500, LnetTxMBps: 120},
		{Time: 700, ActiveNodes: 10, BusyNodes: 9, QueuedJobs: 1, RunningJobs: 6,
			TotalTFlops: 2.5, MemPerNode: 9, CPUUserFrac: 0.85, CPUSysFrac: 0.05,
			CPUIdleFrac: 0.10, ScratchMBps: 80, WorkMBps: 12, ShareMBps: 2,
			IBTxMBps: 600, LnetTxMBps: 100},
	}
}

func TestSeriesMetricCoversAllNames(t *testing.T) {
	s := sampleSeries()[0]
	cases := map[string]float64{
		"active_nodes": 10, "busy_nodes": 8, "cpu_flops": 1.5,
		"total_tflops": 1.5, "mem_used": 8, "mem_per_node_gb": 8,
		"cpu_idle": 0.15, "cpu_user": 0.8, "cpu_sys": 0.05,
		"io_scratch_write": 100, "io_work_write": 10,
		"net_ib_tx": 500, "net_lnet_tx": 120,
	}
	for name, want := range cases {
		got, ok := s.SeriesMetric(name)
		if !ok || got != want {
			t.Errorf("SeriesMetric(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := s.SeriesMetric("nope"); ok {
		t.Error("unknown metric should not be ok")
	}
}

func TestSeriesColumn(t *testing.T) {
	col := SeriesColumn(sampleSeries(), "total_tflops")
	if len(col) != 2 || col[0] != 1.5 || col[1] != 2.5 {
		t.Errorf("column = %v", col)
	}
	if SeriesColumn(sampleSeries(), "bogus") != nil {
		t.Error("unknown column should be nil")
	}
	if SeriesColumn(nil, "total_tflops") != nil {
		t.Error("empty series should be nil")
	}
}

func TestSaveLoadSeries(t *testing.T) {
	in := sampleSeries()
	var buf bytes.Buffer
	if err := SaveSeries(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("loaded %d samples", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("sample %d differs:\n in  %+v\n out %+v", i, in[i], out[i])
		}
	}
	if _, err := LoadSeries(strings.NewReader("{broken")); err == nil {
		t.Error("corrupt series should error")
	}
	empty, err := LoadSeries(strings.NewReader(""))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty stream: %v, %v", empty, err)
	}
}

func TestSeriesSummary(t *testing.T) {
	d := SeriesSummary(sampleSeries(), "mem_used")
	if d.N != 2 || math.Abs(d.Mean-8.5) > 1e-12 || d.Min != 8 || d.Max != 9 {
		t.Errorf("summary = %+v", d)
	}
	e := SeriesSummary(nil, "mem_used")
	if e.N != 0 || !math.IsNaN(e.Mean) {
		t.Errorf("empty summary = %+v", e)
	}
}

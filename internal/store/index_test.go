package store

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testStore builds a deterministic store with n jobs spread over
// clusters, users and apps.
func testStore(n int) *Store {
	s := New()
	clusters := []string{"ranger", "lonestar4"}
	for i := 0; i < n; i++ {
		r := JobRecord{
			JobID:   int64(1000 + i),
			Cluster: clusters[i%len(clusters)],
			User:    fmt.Sprintf("u%03d", i%97),
			App:     fmt.Sprintf("app%02d", i%13),
			Science: fmt.Sprintf("sci%d", i%7),
			Nodes:   1 + i%32,
			Submit:  int64(1000 * i),
			Start:   int64(1000*i + 60),
			End:     int64(1000*i + 60 + 3600*(1+i%8)),
			Status:  "completed",
			Samples: i % 5,
		}
		r.CPUIdleFrac = float64(i%100) / 100
		r.MemUsedGB = float64(i % 17)
		r.FlopsGF = float64(i%23) * 1.5
		s.Add(r)
	}
	return s
}

func TestSelectIndexedMatchesScan(t *testing.T) {
	s := testStore(5000)
	s.BuildIndex()
	filters := []Filter{
		{},
		{Cluster: "ranger"},
		{User: "u042"},
		{App: "app07"},
		{Cluster: "lonestar4", User: "u011", MinSamples: 2},
		{Cluster: "ranger", App: "app03", Science: "sci2"},
		{User: "nobody"},
		{Cluster: "ranger", EndAfter: 1_000_000, EndBefore: 3_000_000},
		{Science: "sci4"}, // unindexed column: falls back to scan
	}
	for _, f := range filters {
		want := s.SelectScan(f)
		got := s.Select(f)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("filter %+v: indexed select %d rows, scan %d rows", f, len(got), len(want))
		}
	}
}

func TestIndexInvalidatedByAdd(t *testing.T) {
	s := testStore(100)
	s.BuildIndex()
	if !s.HasIndex() {
		t.Fatal("BuildIndex did not install an index")
	}
	s.Add(JobRecord{JobID: 9999, Cluster: "ranger", User: "newuser", Status: "completed"})
	if s.HasIndex() {
		t.Fatal("Add must drop the index: stale postings would hide the new row")
	}
	got := s.Select(Filter{User: "newuser"})
	if len(got) != 1 {
		t.Fatalf("new row not visible after Add: got %d rows", len(got))
	}
}

func TestClustersSorted(t *testing.T) {
	s := testStore(10)
	if s.Clusters() != nil {
		t.Fatal("unindexed store must report nil shards")
	}
	s.BuildIndex()
	want := []string{"lonestar4", "ranger"}
	if !reflect.DeepEqual(s.Clusters(), want) {
		t.Fatalf("Clusters() = %v, want %v", s.Clusters(), want)
	}
}

// TestAggregateParallelMatchesSequential checks the chunked parallel
// aggregation against the reference Aggregate: counts, extrema and
// node-hours exactly, means to float tolerance (summation order
// differs), and bit-identical results across worker counts.
func TestAggregateParallelMatchesSequential(t *testing.T) {
	s := testStore(20000)
	s.BuildIndex()
	filters := []Filter{{}, {Cluster: "ranger"}, {User: "u042"}, {User: "nobody"}}
	for _, f := range filters {
		for _, m := range []Metric{MetricCPUIdle, MetricMemUsed, MetricFlops} {
			want := s.Aggregate(m, f)
			got := s.AggregateParallel(m, f, 8)
			if got.N != want.N {
				t.Fatalf("%v %s: N=%d want %d", f, m, got.N, want.N)
			}
			if want.N == 0 {
				continue
			}
			if got.Min != want.Min || got.Max != want.Max {
				t.Errorf("%v %s: min/max %v/%v want %v/%v", f, m, got.Min, got.Max, want.Min, want.Max)
			}
			for _, pair := range [][2]float64{
				{got.Mean, want.Mean}, {got.StdDev, want.StdDev},
				{got.NodeHours, want.NodeHours}, {got.UnweightedMean, want.UnweightedMean},
			} {
				if !closeEnough(pair[0], pair[1]) {
					t.Errorf("%v %s: parallel %v vs sequential %v", f, m, pair[0], pair[1])
				}
			}
			// Worker-count independence: the chunk merge order is fixed,
			// so any worker count must produce identical bits.
			for _, w := range []int{1, 2, 3, 16} {
				again := s.AggregateParallel(m, f, w)
				if again != got {
					t.Fatalf("%v %s: workers=%d changed the result: %+v vs %+v", f, m, w, again, got)
				}
			}
		}
	}
}

func closeEnough(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func BenchmarkStoreSelect(b *testing.B) {
	s := testStore(100_000)
	f := Filter{User: "u042"}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.SelectScan(f)
		}
	})
	s.BuildIndex()
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Select(f)
		}
	})
}

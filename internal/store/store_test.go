package store

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func rec(id int64, user, app string, nodes int, hours float64, idle, flops float64) JobRecord {
	return JobRecord{
		JobID: id, Cluster: "ranger", User: user, App: app,
		Science: "Physics", Nodes: nodes,
		Submit: 1000, Start: 2000, End: 2000 + int64(hours*3600),
		Status: "COMPLETED", Samples: int(hours * 6),
		CPUIdleFrac: idle, CPUUserFrac: 1 - idle - 0.05, CPUSysFrac: 0.05,
		MemUsedGB: 8, MemUsedMaxGB: 12, FlopsGF: flops,
		ScratchWriteMB: 1.5, WorkWriteMB: 0.1, ReadMB: 0.5,
		IBTxMB: 20, IBRxMB: 19, LnetTxMB: 2,
	}
}

func TestAddAndRecordRoundTrip(t *testing.T) {
	s := New()
	r := rec(1, "alice", "namd", 4, 2, 0.1, 5)
	s.Add(r)
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	got := s.Record(0)
	if got != r {
		t.Errorf("round trip:\n in  %+v\n out %+v", r, got)
	}
}

func TestJobRecordDerived(t *testing.T) {
	r := rec(1, "a", "x", 4, 2, 0.1, 5)
	if r.WallclockSec() != 7200 {
		t.Errorf("wallclock = %d", r.WallclockSec())
	}
	if r.NodeHours() != 8 {
		t.Errorf("node-hours = %v", r.NodeHours())
	}
}

func TestValueCoversAllMetrics(t *testing.T) {
	r := rec(1, "a", "x", 4, 2, 0.1, 5)
	for _, m := range AllMetrics() {
		if math.IsNaN(r.Value(m)) {
			t.Errorf("metric %s is NaN", m)
		}
	}
	if r.Value(Metric("bogus")) != 0 {
		t.Error("unknown metric should read 0")
	}
	if len(KeyMetrics()) != 8 {
		t.Errorf("key metrics = %d, want 8 (the paper's set)", len(KeyMetrics()))
	}
}

func TestSaveLoad(t *testing.T) {
	s := New()
	s.Add(rec(1, "alice", "namd", 4, 2, 0.1, 5))
	s.Add(rec(2, "bob", "amber", 2, 1, 0.3, 2))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d records", loaded.Len())
	}
	for i := 0; i < 2; i++ {
		if loaded.Record(i) != s.Record(i) {
			t.Errorf("record %d differs after save/load", i)
		}
	}
	if _, err := Load(strings.NewReader("{bad json")); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestFilter(t *testing.T) {
	s := New()
	s.Add(rec(1, "alice", "namd", 4, 2, 0.1, 5))
	s.Add(rec(2, "bob", "amber", 2, 1, 0.3, 2))
	s.Add(rec(3, "alice", "amber", 2, 3, 0.2, 3))
	short := rec(4, "alice", "namd", 1, 0.05, 0.1, 5)
	short.Samples = 0
	s.Add(short)
	failed := rec(5, "bob", "namd", 1, 1, 0.1, 5)
	failed.Status = "FAILED"
	s.Add(failed)

	if got := len(s.Select(Filter{})); got != 5 {
		t.Errorf("no filter: %d rows", got)
	}
	if got := len(s.Select(Filter{User: "alice"})); got != 3 {
		t.Errorf("user filter: %d rows", got)
	}
	if got := len(s.Select(Filter{App: "amber"})); got != 2 {
		t.Errorf("app filter: %d rows", got)
	}
	if got := len(s.Select(Filter{MinSamples: 1})); got != 4 {
		t.Errorf("min samples: %d rows", got)
	}
	if got := len(s.Select(Filter{Status: "FAILED"})); got != 1 {
		t.Errorf("status filter: %d rows", got)
	}
	if got := len(s.Select(Filter{User: "alice", App: "namd", MinSamples: 1})); got != 1 {
		t.Errorf("combined filter: %d rows", got)
	}
	if got := len(s.Select(Filter{Cluster: "lonestar4"})); got != 0 {
		t.Errorf("cluster filter: %d rows", got)
	}
	if got := len(s.Select(Filter{Science: "Physics"})); got != 5 {
		t.Errorf("science filter: %d rows", got)
	}
	// Time window on End: first record ends at 2000+7200.
	if got := len(s.Select(Filter{EndAfter: 9000})); got != 2 {
		t.Errorf("EndAfter: %d rows", got)
	}
	if got := len(s.Select(Filter{EndBefore: 9000})); got != 3 {
		t.Errorf("EndBefore: %d rows", got)
	}
	recs := s.Records(Filter{User: "bob"})
	if len(recs) != 2 || recs[0].User != "bob" {
		t.Errorf("Records: %+v", recs)
	}
}

func TestAggregateWeighted(t *testing.T) {
	s := New()
	// Job 1: 8 node-hours at idle 0.1; job 2: 2 node-hours at idle 0.5.
	s.Add(rec(1, "a", "x", 4, 2, 0.1, 5))
	s.Add(rec(2, "b", "y", 2, 1, 0.5, 5))
	agg := s.Aggregate(MetricCPUIdle, Filter{})
	want := (8*0.1 + 2*0.5) / 10
	if math.Abs(agg.Mean-want) > 1e-12 {
		t.Errorf("weighted mean = %v, want %v", agg.Mean, want)
	}
	if math.Abs(agg.UnweightedMean-0.3) > 1e-12 {
		t.Errorf("unweighted mean = %v, want 0.3", agg.UnweightedMean)
	}
	if agg.N != 2 || agg.NodeHours != 10 {
		t.Errorf("agg counts: %+v", agg)
	}
	if agg.Min != 0.1 || agg.Max != 0.5 {
		t.Errorf("min/max: %+v", agg)
	}
	// Weighted stddev about weighted mean.
	mu := want
	wantSD := math.Sqrt((8*(0.1-mu)*(0.1-mu) + 2*(0.5-mu)*(0.5-mu)) / 10)
	if math.Abs(agg.StdDev-wantSD) > 1e-12 {
		t.Errorf("weighted sd = %v, want %v", agg.StdDev, wantSD)
	}
	// Empty aggregate is NaN, not a panic.
	empty := s.Aggregate(MetricCPUIdle, Filter{User: "nobody"})
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty agg: %+v", empty)
	}
}

func TestGroupBy(t *testing.T) {
	s := New()
	s.Add(rec(1, "alice", "namd", 4, 2, 0.1, 5))  // 8 nh
	s.Add(rec(2, "alice", "amber", 2, 1, 0.3, 2)) // 2 nh
	s.Add(rec(3, "bob", "namd", 1, 4, 0.2, 3))    // 4 nh
	groups := s.GroupBy(ByUser, []Metric{MetricCPUIdle}, Filter{})
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	// Sorted by node-hours descending: alice (10) then bob (4).
	if groups[0].Key != "alice" || groups[1].Key != "bob" {
		t.Errorf("order: %v, %v", groups[0].Key, groups[1].Key)
	}
	wantAlice := (8*0.1 + 2*0.3) / 10
	if math.Abs(groups[0].Mean[MetricCPUIdle]-wantAlice) > 1e-12 {
		t.Errorf("alice idle = %v, want %v", groups[0].Mean[MetricCPUIdle], wantAlice)
	}
	if groups[0].N != 2 || groups[1].N != 1 {
		t.Errorf("group Ns: %d, %d", groups[0].N, groups[1].N)
	}
	byApp := s.GroupBy(ByApp, []Metric{MetricFlops}, Filter{})
	if len(byApp) != 2 || byApp[0].Key != "namd" {
		t.Errorf("by app: %+v", byApp)
	}
	byScience := s.GroupBy(ByScience, nil, Filter{})
	if len(byScience) != 1 || byScience[0].Key != "Physics" {
		t.Errorf("by science: %+v", byScience)
	}
	byCluster := s.GroupBy(ByCluster, nil, Filter{})
	if len(byCluster) != 1 || byCluster[0].Key != "ranger" {
		t.Errorf("by cluster: %+v", byCluster)
	}
	byStatus := s.GroupBy(ByStatus, nil, Filter{})
	if len(byStatus) != 1 || byStatus[0].Key != "COMPLETED" {
		t.Errorf("by status: %+v", byStatus)
	}
}

func TestValuesAndTotalNodeHours(t *testing.T) {
	s := New()
	s.Add(rec(1, "a", "x", 4, 2, 0.1, 5))
	s.Add(rec(2, "b", "y", 2, 1, 0.5, 7))
	vals, weights := s.Values(MetricFlops, Filter{})
	if len(vals) != 2 || vals[0] != 5 || vals[1] != 7 {
		t.Errorf("vals = %v", vals)
	}
	if weights[0] != 8 || weights[1] != 2 {
		t.Errorf("weights = %v", weights)
	}
	if got := s.TotalNodeHours(Filter{}); got != 10 {
		t.Errorf("total nh = %v", got)
	}
	if got := s.TotalNodeHours(Filter{User: "a"}); got != 8 {
		t.Errorf("filtered nh = %v", got)
	}
}

func TestSortByJobID(t *testing.T) {
	s := New()
	s.Add(rec(3, "c", "z", 1, 1, 0.1, 1))
	s.Add(rec(1, "a", "x", 1, 1, 0.1, 1))
	s.Add(rec(2, "b", "y", 1, 1, 0.1, 1))
	s.SortByJobID()
	for i := 0; i < 3; i++ {
		if s.Record(i).JobID != int64(i+1) {
			t.Fatalf("row %d: job %d", i, s.Record(i).JobID)
		}
	}
}

func TestSaveLoadPropertyRoundTrip(t *testing.T) {
	f := func(id int64, nodes uint8, idle8 uint8, flops uint16) bool {
		if id < 0 {
			id = -id
		}
		r := rec(id, "u", "app", int(nodes)+1, 1, float64(idle8)/255, float64(flops))
		s := New()
		s.Add(r)
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		loaded, err := Load(&buf)
		if err != nil || loaded.Len() != 1 {
			return false
		}
		return loaded.Record(0) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

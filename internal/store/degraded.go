package store

import (
	"os"
	"path/filepath"
	"runtime"
)

// Degraded shard loading (DESIGN.md §15).
//
// LoadShards is all-or-nothing: one damaged shard fails the whole
// reload, which is the right default for a data directory that is
// supposed to be a consistent batch. Under self-healing the policy
// inverts — one rotted day must not take 364 healthy days off the air
// — so LoadShardsDegraded loads what it can, reports what it could
// not, and lets the serve layer quarantine/repair the faults and
// publish the healthy remainder with honest coverage accounting.

// ShardFault is one manifest entry that could not be served: the entry
// and the load or verification error that disqualified it.
type ShardFault struct {
	Info ShardInfo
	Err  error
}

// LoadShardsDegraded is LoadShards with per-shard fault isolation: a
// shard that fails to load becomes a ShardFault instead of failing the
// set, and the returned set holds only the healthy shards (in manifest
// order, so the global row order is the healthy subsequence of the
// full order). Reuse against prev works exactly as in LoadShards.
// len(faults) == 0 is the fully-healthy case and the set is then
// identical to what LoadShards would have produced.
func LoadShardsDegraded(dir string, entries []ShardInfo, prev *ShardSet, open Opener) (*ShardSet, []ShardFault) {
	if open == nil {
		open = defaultOpener
	}
	shards := make([]*Shard, len(entries))
	var work []int
	for i, e := range entries {
		if prev != nil {
			if sh := prev.shardByID(e.ID); sh != nil && sh.info == e {
				// Same stat guard as LoadShards: the in-memory copy is only
				// trusted while the on-disk file still plausibly matches the
				// manifest, so a quarantine rename (file gone) forces this
				// entry down the load path and into the faults.
				if st, err := os.Stat(filepath.Join(dir, ShardFileName(e.ID))); err == nil && st.Size() == e.Size {
					shards[i] = sh
					continue
				}
			}
		}
		work = append(work, i)
	}
	errs := make([]error, len(work))
	runChunks(nil, len(work), runtime.GOMAXPROCS(0), func(c int) {
		i := work[c]
		shards[i], errs[c] = loadShard(dir, entries[i], open)
	})
	var faults []ShardFault
	for c, err := range errs {
		if err != nil {
			faults = append(faults, ShardFault{Info: entries[work[c]], Err: err})
		}
	}
	healthy := shards[:0]
	loaded := 0
	for _, sh := range shards {
		if sh != nil {
			healthy = append(healthy, sh)
			loaded++
		}
	}
	loaded -= len(entries) - len(work) // reused shards are not "loaded"
	return newShardSet(healthy, ShardLoadStats{
		Loaded: loaded,
		Reused: len(entries) - len(work),
	}), faults
}

package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
)

// Shard repair (DESIGN.md §15).
//
// cmd/ingest writes every batch in four redundant forms — day shards,
// the monolithic columnar binary (jobs.supremm), the monolithic JSON
// lines (jobs.jsonl), and the manifest describing the shards — and all
// of them hold exactly the same rows in exactly the same global order
// (ReorderByEndDay is the invariant). That redundancy is the repair
// path: a quarantined shard can be rebuilt by partitioning a surviving
// monolithic backing by end day and re-encoding the lost day. Shard
// bytes are a pure function of the rows, so a correct rebuild is
// byte-identical to the original — and the manifest entry's size and
// hash let us PROVE it before the rebuilt shard is trusted. A backing
// that was itself damaged (decode failure, or rows that re-encode to
// different bytes) is refused; repair never lowers the store's
// integrity to "probably right".

// LoadBackingStore loads the monolithic job store for repair:
// jobs.supremm first, jobs.jsonl as fallback. Unlike the serve load
// path — where a damaged preferred form must fail the load loudly — a
// damaged backing here just means that source cannot repair, so errors
// demote to the next source; (nil, reason) means no usable backing.
// The returned label names the source used ("jobs.supremm" or
// "jobs.jsonl") for repair provenance.
func LoadBackingStore(dir string, open Opener) (*Store, string, error) {
	if open == nil {
		open = defaultOpener
	}
	var firstErr error
	if data, err := readAllClose(open, filepath.Join(dir, "jobs.supremm")); err == nil {
		c, derr := DecodeColumns(data)
		if derr == nil {
			return FromColumns(c), "jobs.supremm", nil
		}
		firstErr = fmt.Errorf("jobs.supremm: %w", derr)
	} else if !errors.Is(err, fs.ErrNotExist) {
		firstErr = err
	}
	rc, err := open(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		if firstErr == nil {
			firstErr = err
		}
		return nil, "", fmt.Errorf("store: no usable repair backing: %w", firstErr)
	}
	st, lerr := Load(rc)
	cerr := rc.Close()
	if lerr == nil && cerr != nil {
		lerr = cerr
	}
	if lerr != nil {
		if firstErr == nil {
			firstErr = lerr
		}
		return nil, "", fmt.Errorf("store: no usable repair backing: %w (jobs.jsonl: %v)", firstErr, lerr)
	}
	return st, "jobs.jsonl", nil
}

// RepairShard rebuilds day e.ID's shard from backing and, only if the
// rebuilt bytes are bit-identical to what the manifest promised (same
// row count, same byte length, same CRC32), lands the shard file
// atomically and removes the quarantined copy. A backing whose rows do
// not reproduce the manifest's bytes — damaged, from another batch, or
// simply missing the day — is an error and the directory is left
// untouched.
func RepairShard(dir string, e ShardInfo, backing *Store) error {
	c := &Columns{}
	for i, n := 0, backing.Len(); i < n; i++ {
		if r := backing.Record(i); EpochDay(r.End) == e.ID {
			c.appendRecord(r)
		}
	}
	name := ShardFileName(e.ID)
	if c.Len() != e.Rows {
		return fmt.Errorf("store: repair %s: backing holds %d rows for day %d, manifest says %d",
			name, c.Len(), e.ID, e.Rows)
	}
	payload := EncodeColumns(c)
	if int64(len(payload)) != e.Size {
		return fmt.Errorf("store: repair %s: rebuilt %d bytes, manifest says %d", name, len(payload), e.Size)
	}
	if got := crc32.ChecksumIEEE(payload); got != e.Hash {
		return fmt.Errorf("store: repair %s: rebuilt hash %08x does not match manifest %08x", name, got, e.Hash)
	}
	if err := AtomicWriteBytes(dir, name, payload); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(dir, QuarantinedShardFile(e.ID))); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return FsyncDir(dir)
}

package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedSnapshots builds the in-code seed inputs: a valid snapshot
// plus the structured corruption classes (truncated blocks, corrupted
// CRC, hostile lengths). The committed corpus under
// testdata/fuzz/FuzzColumnsDecode holds the same classes so `go test`
// replays them even without -fuzz.
func fuzzSeedSnapshots() [][]byte {
	valid := EncodeColumns(codecStore(20).Columns())
	seeds := [][]byte{
		valid,
		EncodeColumns(New().Columns()), // zero rows
		valid[:len(valid)/3],           // truncated mid-block
		valid[:codecHeaderLen],         // header only
		{},
	}
	crc := append([]byte(nil), valid...)
	crc[codecHeaderLen+12] ^= 0xff // first block's CRC field
	seeds = append(seeds, crc)

	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<60) // absurd row count
	seeds = append(seeds, hostile)

	hostileBlock := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostileBlock[codecHeaderLen+4:], 1<<50) // absurd block length
	seeds = append(seeds, hostileBlock)
	return seeds
}

// FuzzColumnsDecode hammers the binary snapshot decoder with arbitrary
// bytes: it must either return an error or produce a store whose
// re-encoding is byte-identical to a re-decode (self-consistency); it
// must never panic, and the decoder's bounds checks keep allocations
// within a small multiple of the input size (a hostile length that
// over-allocated would OOM the fuzz engine).
func FuzzColumnsDecode(f *testing.F) {
	for _, seed := range fuzzSeedSnapshots() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeColumns(data)
		if err != nil {
			return
		}
		// Accepted input: the decode must be internally consistent —
		// re-encoding yields a canonical snapshot that decodes to the
		// same bytes again (idempotent canonical form).
		enc := EncodeColumns(c)
		c2, err := DecodeColumns(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(enc, EncodeColumns(c2)) {
			t.Fatal("encode→decode→encode not byte-stable")
		}
		// The decoded store must be queryable without panics: the code
		// arrays were validated against the dictionaries.
		st := FromColumns(c)
		_ = st.Aggregate(MetricFlops, Filter{})
		if st.Len() > 0 {
			_ = st.Record(0)
			_ = st.Record(st.Len() - 1)
		}
	})
}

package store

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedSnapshots builds the in-code seed inputs: a valid snapshot
// plus the structured corruption classes (truncated blocks, corrupted
// CRC, hostile lengths). The committed corpus under
// testdata/fuzz/FuzzColumnsDecode holds the same classes so `go test`
// replays them even without -fuzz.
func fuzzSeedSnapshots() [][]byte {
	valid := EncodeColumns(codecStore(20).Columns())
	seeds := [][]byte{
		valid,
		EncodeColumns(New().Columns()), // zero rows
		valid[:len(valid)/3],           // truncated mid-block
		valid[:codecHeaderLen],         // header only
		{},
	}
	crc := append([]byte(nil), valid...)
	crc[codecHeaderLen+12] ^= 0xff // first block's CRC field
	seeds = append(seeds, crc)

	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<60) // absurd row count
	seeds = append(seeds, hostile)

	hostileBlock := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostileBlock[codecHeaderLen+4:], 1<<50) // absurd block length
	seeds = append(seeds, hostileBlock)
	return seeds
}

// FuzzColumnsDecode hammers the binary snapshot decoder with arbitrary
// bytes: it must either return an error or produce a store whose
// re-encoding is byte-identical to a re-decode (self-consistency); it
// must never panic, and the decoder's bounds checks keep allocations
// within a small multiple of the input size (a hostile length that
// over-allocated would OOM the fuzz engine).
func FuzzColumnsDecode(f *testing.F) {
	for _, seed := range fuzzSeedSnapshots() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeColumns(data)
		if err != nil {
			return
		}
		// Accepted input: the decode must be internally consistent —
		// re-encoding yields a canonical snapshot that decodes to the
		// same bytes again (idempotent canonical form).
		enc := EncodeColumns(c)
		c2, err := DecodeColumns(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(enc, EncodeColumns(c2)) {
			t.Fatal("encode→decode→encode not byte-stable")
		}
		// The decoded store must be queryable without panics: the code
		// arrays were validated against the dictionaries.
		st := FromColumns(c)
		_ = st.Aggregate(MetricFlops, Filter{})
		if st.Len() > 0 {
			_ = st.Record(0)
			_ = st.Record(st.Len() - 1)
		}
	})
}

// fuzzSeedManifests builds the manifest seed inputs: valid one- and
// multi-entry manifests plus each structured corruption class the
// decoder must reject (truncation, hostile counts, duplicate shard IDs,
// overlapping/out-of-day time ranges, resealed header damage). The
// committed corpus under testdata/fuzz/FuzzManifestDecode holds the
// same classes so `go test` replays them even without -fuzz.
func fuzzSeedManifests() [][]byte {
	valid := EncodeManifest(manifestFixture())
	one := EncodeManifest(manifestFixture()[:1])
	empty := EncodeManifest(nil)
	seeds := [][]byte{valid, one, empty, {}, valid[:manifestHeaderLen], valid[:len(valid)-5]}

	crc := append([]byte(nil), valid...)
	crc[len(crc)/2] ^= 0xff
	seeds = append(seeds, crc)

	body := valid[:len(valid)-4]
	hostileCount := append([]byte(nil), body...)
	binary.LittleEndian.PutUint64(hostileCount[16:], 1<<60)
	seeds = append(seeds, reseal(hostileCount))

	day := int64(7)
	lo := day * SecondsPerDay
	seeds = append(seeds,
		// duplicate shard IDs
		EncodeManifest([]ShardInfo{
			{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 1},
			{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo, Size: 64, Hash: 2},
		}),
		// time range spilling past its day (the overlap shape)
		EncodeManifest([]ShardInfo{{ID: day, Rows: 1, MinEnd: lo, MaxEnd: lo + SecondsPerDay, Size: 64, Hash: 1}}),
		// trailing garbage after the entry region
		reseal(append(append([]byte(nil), body...), 1, 2, 3, 4)),
	)
	return seeds
}

// FuzzManifestDecode hammers the shard-manifest decoder with arbitrary
// bytes: it must either reject with an error or accept — and every
// accepted input must re-encode byte-identically (the manifest format
// is a bijection on its valid set), with entries that honor the
// decoder's own invariants. It must never panic and never over-allocate
// from a hostile count.
func FuzzManifestDecode(f *testing.F) {
	for _, seed := range fuzzSeedManifests() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if re := EncodeManifest(entries); !bytes.Equal(re, data) {
			t.Fatalf("accepted manifest does not re-encode to itself (%d entries)", len(entries))
		}
		for i, e := range entries {
			if e.Rows < 1 {
				t.Fatalf("entry %d: accepted zero rows", i)
			}
			if i > 0 && e.ID <= entries[i-1].ID {
				t.Fatalf("entry %d: accepted non-ascending id %d after %d", i, e.ID, entries[i-1].ID)
			}
			if EpochDay(e.MinEnd) != e.ID || EpochDay(e.MaxEnd) != e.ID || e.MinEnd > e.MaxEnd {
				t.Fatalf("entry %d: accepted time range [%d,%d] outside day %d", i, e.MinEnd, e.MaxEnd, e.ID)
			}
		}
	})
}

func fuzzSeedQuarantineLogs() [][]byte {
	pair := EncodeQuarantineLog([]QuarantineEvent{
		{Day: 3, Action: ActionQuarantine, Reason: "store: scrub shard-3.supremm: content hash 00000001 does not match manifest 00000002", At: 1700000000, Size: 4096, Hash: 0xdeadbeef},
		{Day: 3, Action: ActionRepair, Reason: "rebuilt from jobs.supremm", At: 1700000060, Size: 4096, Hash: 0xdeadbeef},
	})
	empty := EncodeQuarantineLog(nil)
	one := EncodeQuarantineLog([]QuarantineEvent{{Day: -7, Action: ActionQuarantine}})
	seeds := [][]byte{pair, empty, one, {}, pair[:len(pair)-1], pair[:9]}

	flipped := append([]byte(nil), pair...)
	flipped[len(flipped)/2] ^= 0xff
	seeds = append(seeds,
		flipped,
		// hostile shapes the decoder must reject without panicking
		[]byte("SUPRMMQ1\n{\"day\":1,\"action\":\"destroy\",\"reason\":\"\",\"at\":0,\"size\":0,\"hash\":0}\n"),
		[]byte("SUPRMMQ1\n {\"day\":1}\n"),
		[]byte("SUPRMMQ1\nnull\n"),
		[]byte("SUPRMMQ2\n"),
	)
	return seeds
}

// FuzzQuarantineRecord hammers the quarantine-log decoder with
// arbitrary bytes: reject with an error or accept, and every accepted
// log must re-encode byte-identically (the canonical-line check makes
// the format a bijection on its valid set) with events honoring the
// decoder's own invariants. Never panic, never over-allocate from a
// hostile line count.
func FuzzQuarantineRecord(f *testing.F) {
	for _, seed := range fuzzSeedQuarantineLogs() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeQuarantineLog(data)
		if err != nil {
			return
		}
		if re := EncodeQuarantineLog(events); !bytes.Equal(re, data) {
			t.Fatalf("accepted quarantine log does not re-encode to itself (%d events)", len(events))
		}
		for i, ev := range events {
			if ev.Action != ActionQuarantine && ev.Action != ActionRepair {
				t.Fatalf("event %d: accepted unknown action %q", i, ev.Action)
			}
			if ev.Day < -manifestMaxID || ev.Day > manifestMaxID {
				t.Fatalf("event %d: accepted out-of-range day %d", i, ev.Day)
			}
			if ev.Size < 0 {
				t.Fatalf("event %d: accepted negative size %d", i, ev.Size)
			}
		}
	})
}

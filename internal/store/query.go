package store

import (
	"math"
	"sort"
)

// Filter restricts a query to matching rows. Zero values mean "any".
type Filter struct {
	Cluster string
	User    string
	App     string
	Science string
	Status  string
	// MinSamples excludes jobs with fewer monitor intervals; the paper
	// analyzes only jobs longer than the 10-minute sampling interval.
	MinSamples int
	// Time window on job end (unix seconds); 0 means unbounded.
	EndAfter  int64
	EndBefore int64
}

// match reports whether row i passes the filter.
func (s *Store) match(i int, f Filter) bool {
	switch {
	case f.Cluster != "" && s.cluster[i] != f.Cluster:
		return false
	case f.User != "" && s.user[i] != f.User:
		return false
	case f.App != "" && s.app[i] != f.App:
		return false
	case f.Science != "" && s.science[i] != f.Science:
		return false
	case f.Status != "" && s.status[i] != f.Status:
		return false
	case f.MinSamples > 0 && s.samples[i] < f.MinSamples:
		return false
	case f.EndAfter != 0 && s.end[i] < f.EndAfter:
		return false
	case f.EndBefore != 0 && s.end[i] >= f.EndBefore:
		return false
	}
	return true
}

// Select returns the row indices passing the filter, ascending. With
// an index built (BuildIndex) and an equality predicate on an indexed
// column, the candidates come from the narrowest posting list instead
// of a full scan; the result is identical either way.
func (s *Store) Select(f Filter) []int {
	if s.idx != nil {
		return s.selectIndexed(f)
	}
	return s.SelectScan(f)
}

// SelectScan is the always-scan path, kept exported as the reference
// implementation the index equivalence tests and benchmarks compare
// against.
func (s *Store) SelectScan(f Filter) []int {
	var idx []int
	for i := 0; i < s.Len(); i++ {
		if s.match(i, f) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Records returns materialized records passing the filter.
func (s *Store) Records(f Filter) []JobRecord {
	idx := s.Select(f)
	out := make([]JobRecord, len(idx))
	for p, i := range idx {
		out[p] = s.Record(i)
	}
	return out
}

// Agg is a weighted aggregate of one metric over a row set.
type Agg struct {
	N         int
	NodeHours float64
	Mean      float64 // node-hour weighted
	StdDev    float64 // node-hour weighted population sd
	Min, Max  float64
	// UnweightedMean is the plain per-job mean, kept for the ablation
	// benchmark comparing weighted vs unweighted statistics.
	UnweightedMean float64
}

// Aggregate computes the node-hour-weighted aggregate of metric m over
// rows passing the filter.
func (s *Store) Aggregate(m Metric, f Filter) Agg {
	col := s.cols[m]
	agg := Agg{Min: math.Inf(1), Max: math.Inf(-1)}
	var sw, swx, plain float64
	idx := s.Select(f)
	for _, i := range idx {
		w := s.nodeHours(i)
		v := col[i]
		sw += w
		swx += w * v
		plain += v
		if v < agg.Min {
			agg.Min = v
		}
		if v > agg.Max {
			agg.Max = v
		}
	}
	agg.N = len(idx)
	agg.NodeHours = sw
	if agg.N == 0 {
		agg.Mean, agg.StdDev, agg.Min, agg.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		agg.UnweightedMean = math.NaN()
		return agg
	}
	agg.UnweightedMean = plain / float64(agg.N)
	if sw == 0 {
		agg.Mean, agg.StdDev = math.NaN(), math.NaN()
		return agg
	}
	agg.Mean = swx / sw
	var ss float64
	for _, i := range idx {
		d := col[i] - agg.Mean
		ss += s.nodeHours(i) * d * d
	}
	agg.StdDev = math.Sqrt(ss / sw)
	return agg
}

// GroupKey selects the grouping dimension.
type GroupKey int

// Grouping dimensions.
const (
	ByUser GroupKey = iota
	ByApp
	ByScience
	ByCluster
	ByStatus
)

func (s *Store) key(i int, k GroupKey) string {
	switch k {
	case ByUser:
		return s.user[i]
	case ByApp:
		return s.app[i]
	case ByScience:
		return s.science[i]
	case ByCluster:
		return s.cluster[i]
	case ByStatus:
		return s.status[i]
	default:
		return ""
	}
}

// Group is one group-by bucket.
type Group struct {
	Key       string
	N         int
	NodeHours float64
	// Mean holds the node-hour-weighted mean of each requested metric.
	Mean map[Metric]float64
}

// GroupBy computes node-hour-weighted means of the metrics per group,
// over rows passing the filter, sorted by descending node-hours.
func (s *Store) GroupBy(k GroupKey, metrics []Metric, f Filter) []Group {
	type acc struct {
		n   int
		sw  float64
		swx map[Metric]float64
	}
	accs := make(map[string]*acc)
	for _, i := range s.Select(f) {
		key := s.key(i, k)
		a := accs[key]
		if a == nil {
			a = &acc{swx: make(map[Metric]float64)}
			accs[key] = a
		}
		w := s.nodeHours(i)
		a.n++
		a.sw += w
		for _, m := range metrics {
			a.swx[m] += w * s.cols[m][i]
		}
	}
	out := make([]Group, 0, len(accs))
	for key, a := range accs {
		g := Group{Key: key, N: a.n, NodeHours: a.sw, Mean: make(map[Metric]float64)}
		for _, m := range metrics {
			if a.sw > 0 {
				g.Mean[m] = a.swx[m] / a.sw
			} else {
				g.Mean[m] = math.NaN()
			}
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NodeHours != out[j].NodeHours {
			return out[i].NodeHours > out[j].NodeHours
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Values extracts metric m for rows passing the filter, paired with
// node-hour weights (for weighted statistics and KDE inputs).
func (s *Store) Values(m Metric, f Filter) (vals, weights []float64) {
	col := s.cols[m]
	for _, i := range s.Select(f) {
		vals = append(vals, col[i])
		weights = append(weights, s.nodeHours(i))
	}
	return vals, weights
}

// TotalNodeHours sums weights over the filtered rows.
func (s *Store) TotalNodeHours(f Filter) float64 {
	var sw float64
	for _, i := range s.Select(f) {
		sw += s.nodeHours(i)
	}
	return sw
}
